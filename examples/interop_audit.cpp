// Interoperability audit: the paper's §2 motivating example run against
// every integration strategy.
//
// A transaction spans a PrA participant and a PrC participant. The
// decision lands, the participant whose protocol would NOT acknowledge it
// crashes before making the decision durable, and it recovers only after
// the coordinator has forgotten the transaction. We run this schedule
// against U2PC (each native protocol), C2PC and PrAny, and print what
// each strategy got wrong — an executable tour of Theorems 1-3.

#include <cstdio>

#include "harness/scenario.h"

namespace {

void Audit(const char* label, prany::ProtocolKind kind,
           prany::ProtocolKind native, prany::Outcome outcome) {
  using namespace prany;
  ScenarioResult r =
      RunIncompatiblePresumptionScenario(kind, native, outcome);
  std::printf("--- %s, %s decision ---\n", label,
              ToString(outcome).c_str());
  std::printf("  PrA participant finally: %s\n",
              r.enforced.count(1) ? ToString(r.enforced.at(1)).c_str()
                                  : "(never enforced)");
  std::printf("  PrC participant finally: %s\n",
              r.enforced.count(2) ? ToString(r.enforced.at(2)).c_str()
                                  : "(never enforced)");
  std::printf("  atomicity: %-8s  safe state: %-8s  operational: %s\n",
              r.summary.atomicity.ok() ? "OK" : "VIOLATED",
              r.summary.safe_state.ok() ? "OK" : "VIOLATED",
              r.summary.operational.ok() ? "OK" : "FAILED");
  if (!r.summary.operational.ok()) {
    for (const std::string& p : r.summary.operational.problems) {
      std::printf("    - %s\n", p.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace prany;
  std::printf(
      "=== incompatible-presumptions audit ===\n"
      "Schedule: coordinator decides; the participant whose protocol\n"
      "does not acknowledge that outcome crashes before logging it and\n"
      "recovers after the coordinator forgot the transaction (§2).\n\n");

  std::printf("================ U2PC: Theorem 1 ================\n");
  Audit("U2PC speaking PrN", ProtocolKind::kU2PC, ProtocolKind::kPrN,
        Outcome::kCommit);  // Part I
  Audit("U2PC speaking PrA", ProtocolKind::kU2PC, ProtocolKind::kPrA,
        Outcome::kCommit);  // Part II
  Audit("U2PC speaking PrC", ProtocolKind::kU2PC, ProtocolKind::kPrC,
        Outcome::kAbort);   // Part III

  std::printf("================ C2PC: Theorem 2 ================\n");
  Audit("C2PC (never forgets, never presumes)", ProtocolKind::kC2PC,
        ProtocolKind::kPrN, Outcome::kCommit);
  Audit("C2PC (never forgets, never presumes)", ProtocolKind::kC2PC,
        ProtocolKind::kPrN, Outcome::kAbort);

  std::printf("================ PrAny: Theorem 3 ===============\n");
  Audit("PrAny (dynamic presumption)", ProtocolKind::kPrAny,
        ProtocolKind::kPrN, Outcome::kCommit);
  Audit("PrAny (dynamic presumption)", ProtocolKind::kPrAny,
        ProtocolKind::kPrN, Outcome::kAbort);

  std::printf(
      "Verdict: U2PC forgets too early and answers late inquiries with\n"
      "its own presumption (atomicity violations); C2PC stays atomic by\n"
      "never forgetting (unbounded protocol table); PrAny forgets after\n"
      "exactly the acknowledgments that leave a single valid presumption\n"
      "per inquirer — atomic AND operationally correct.\n");
  return 0;
}
