// Quickstart: commit one distributed transaction across a heterogeneous
// federation with a PrAny coordinator, and watch the protocol run.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "harness/run_result.h"
#include "harness/system.h"

int main() {
  using namespace prany;

  // 1. Build the federation: one coordinator site running PrAny and three
  //    participant sites, each speaking a different 2PC variant (their
  //    protocols are registered in the coordinator's stable PCP table).
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);  // site 0
  system.AddSite(ProtocolKind::kPrN);                        // site 1
  system.AddSite(ProtocolKind::kPrA);                        // site 2
  system.AddSite(ProtocolKind::kPrC);                        // site 3

  // 2. Turn on tracing so the protocol is visible.
  system.sim().trace().Enable();

  // 3. Submit a transaction that executed at sites 1-3 and run the
  //    simulation to quiescence. The selector (§4.1 of the paper) sees a
  //    mixed participant set and picks PrAny mode.
  TxnId txn = system.Submit(/*coordinator=*/0, /*participants=*/{1, 2, 3});
  system.Run();

  // 4. Show what happened on the wire and in the logs.
  std::printf("=== protocol trace (txn %llu) ===\n%s\n",
              static_cast<unsigned long long>(txn),
              system.sim().trace().ToString().c_str());
  std::printf("=== ACTA history of significant events ===\n%s\n",
              system.history().ToString().c_str());

  // 5. Evaluate the paper's correctness criteria over the recorded run.
  RunSummary summary = Summarize(system);
  std::printf("=== run summary ===\n%s\n", summary.ToString().c_str());
  return summary.AllCorrect() ? 0 : 1;
}
