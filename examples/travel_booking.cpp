// Travel booking across three independently-operated databases — the
// multi-database interoperability scenario the paper's introduction
// motivates (electronic commerce / multi-organizational workflows).
//
//   airline reservations  : a PrA system (commercial mainstream)
//   hotel inventory       : a PrC system (commit-optimized)
//   payment processor     : a PrN system (vanilla 2PC)
//
// The travel agency's transaction manager coordinates bookings with
// PrAny. We book three trips: one clean commit, one aborted because the
// hotel is sold out (votes no), and one where the hotel database crashes
// at the worst possible moment — after receiving the commit decision,
// before making it durable — and recovers only after the coordinator has
// forgotten the booking. PrAny's dynamic presumption answers its inquiry
// correctly.

#include <cstdio>

#include "harness/run_result.h"
#include "harness/system.h"

namespace {

constexpr prany::SiteId kAgency = 0;
constexpr prany::SiteId kAirline = 1;
constexpr prany::SiteId kHotel = 2;
constexpr prany::SiteId kPayments = 3;

const char* SiteName(prany::SiteId site) {
  switch (site) {
    case kAgency:
      return "agency";
    case kAirline:
      return "airline(PrA)";
    case kHotel:
      return "hotel(PrC)";
    case kPayments:
      return "payments(PrN)";
    default:
      return "?";
  }
}

void ReportBooking(const prany::System& system, prany::TxnId txn,
                   const char* label) {
  using namespace prany;
  const SigEvent* decide = system.history().FirstWhere(
      [&](const SigEvent& e) {
        return e.txn == txn && e.type == SigEventType::kCoordDecide;
      });
  std::printf("booking %llu (%s): decision = %s\n",
              static_cast<unsigned long long>(txn), label,
              decide == nullptr ? "none"
                                : ToString(*decide->outcome).c_str());
  for (const SigEvent& e : system.history().events()) {
    if (e.txn == txn && e.type == SigEventType::kPartEnforce) {
      std::printf("  %-14s applied %s\n", SiteName(e.site),
                  ToString(*e.outcome).c_str());
    }
    if (e.txn == txn && e.type == SigEventType::kCoordRespond) {
      std::printf("  agency answered %s's inquiry: %s%s\n",
                  SiteName(e.peer), ToString(*e.outcome).c_str(),
                  e.by_presumption ? " (by the inquirer's presumption)"
                                   : " (from the protocol table)");
    }
  }
}

}  // namespace

int main() {
  using namespace prany;

  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);  // agency
  system.AddSite(ProtocolKind::kPrA);                        // airline
  system.AddSite(ProtocolKind::kPrC);                        // hotel
  system.AddSite(ProtocolKind::kPrN);                        // payments

  // Trip 1: everything available — must commit everywhere.
  TxnId trip1 = system.Submit(kAgency, {kAirline, kHotel, kPayments});

  // Trip 2: the hotel is sold out and votes no — global abort.
  Transaction t2 = system.MakeTransaction(kAgency,
                                          {kAirline, kHotel, kPayments},
                                          {{kHotel, Vote::kNo}});
  system.SubmitAt(system.sim().Now() + 10'000, t2);

  // Trip 3: the hotel database crashes on receiving the commit decision,
  // before logging it, and stays down for a full second — long past the
  // point where the agency forgot the booking (the airline and payment
  // systems acknowledged). On recovery the hotel is in doubt and asks the
  // agency; PrAny answers with the *hotel's* protocol presumption
  // (PrC -> commit), which matches the real outcome.
  Transaction t3 =
      system.MakeTransaction(kAgency, {kAirline, kHotel, kPayments});
  system.SubmitAt(system.sim().Now() + 20'000, t3);
  system.injector().CrashAtPoint(kHotel,
                                 CrashPoint::kPartOnDecisionReceived,
                                 t3.id, /*downtime=*/1'000'000);

  system.Run();

  std::printf("=== travel agency over PrA + PrC + PrN databases ===\n\n");
  ReportBooking(system, trip1, "all available");
  ReportBooking(system, t2.id, "hotel sold out");
  ReportBooking(system, t3.id, "hotel crashed at decision time");

  RunSummary summary = Summarize(system);
  std::printf("\n=== correctness over the whole day ===\n%s",
              summary.operational.ToString().c_str());
  std::printf("(hotel site crashed %llu time(s); %lld inquiries were "
              "answered by presumption)\n",
              static_cast<unsigned long long>(
                  system.site(kHotel)->crash_count()),
              static_cast<long long>(summary.presumed_answers));
  return summary.AllCorrect() ? 0 : 1;
}
