// Failure storm: a heterogeneous federation under sustained chaos —
// message loss, duplication, and random site crashes at arbitrary
// protocol points — with every transaction's fate machine-checked at the
// end. Run it with different seeds; the checks hold for all of them.
//
//   ./build/examples/failure_storm [seed]

#include <cstdio>
#include <cstdlib>

#include "harness/run_result.h"
#include "harness/workload.h"

int main(int argc, char** argv) {
  using namespace prany;
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;

  SystemConfig cfg;
  cfg.seed = seed;
  cfg.drop_probability = 0.05;      // 5% of messages vanish
  cfg.duplicate_probability = 0.05; // 5% are delivered twice
  cfg.max_events = 20'000'000;
  System system(cfg);

  // Two PrAny coordinators and six participants across all variants.
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);  // 0
  system.AddSite(ProtocolKind::kPrA, ProtocolKind::kPrAny);  // 1
  system.AddSite(ProtocolKind::kPrN);                        // 2
  system.AddSite(ProtocolKind::kPrN);                        // 3
  system.AddSite(ProtocolKind::kPrA);                        // 4
  system.AddSite(ProtocolKind::kPrA);                        // 5
  system.AddSite(ProtocolKind::kPrC);                        // 6
  system.AddSite(ProtocolKind::kPrC);                        // 7

  // Sites fall over at random protocol points, for up to 200ms each.
  system.injector().SetRandomCrashes(/*p=*/0.005, /*min_downtime=*/2'000,
                                     /*max_downtime=*/200'000);
  system.injector().SetRandomCrashBudget(40);

  WorkloadConfig wl;
  wl.num_txns = 250;
  wl.min_participants = 2;
  wl.max_participants = 5;
  wl.no_vote_probability = 0.15;
  wl.mean_interarrival_us = 2'500;
  wl.coordinators = {0, 1};
  wl.participant_pool = {2, 3, 4, 5, 6, 7};
  WorkloadGenerator generator(&system, wl);
  generator.GenerateAndSchedule();

  RunStats stats = system.Run();
  RunSummary summary = Summarize(system);

  std::printf("=== failure storm (seed %llu) ===\n",
              static_cast<unsigned long long>(seed));
  std::printf("simulated %.1f ms in %llu events%s\n\n",
              static_cast<double>(stats.end_time) / 1000.0,
              static_cast<unsigned long long>(stats.events_executed),
              stats.hit_event_limit ? " (EVENT LIMIT HIT)" : "");
  std::printf("%s\n", summary.ToString().c_str());

  const NetworkStats& net = system.net().stats();
  std::printf("network: %llu sent, %llu dropped, %llu duplicated, %llu "
              "lost to down sites\n",
              static_cast<unsigned long long>(net.messages_sent),
              static_cast<unsigned long long>(net.messages_dropped),
              static_cast<unsigned long long>(net.messages_duplicated),
              static_cast<unsigned long long>(net.messages_lost_down));

  if (!summary.AllCorrect() || stats.hit_event_limit) {
    std::printf("\nSTORM SURFACED A BUG — full history follows:\n%s",
                system.history().ToString().c_str());
    return 1;
  }
  std::printf("\nAll %lld transactions atomic; every site forgot "
              "everything; logs fully collectible. (Theorem 3 held.)\n",
              static_cast<long long>(summary.txns_begun));
  return 0;
}
