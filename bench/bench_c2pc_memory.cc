// Experiment E6 (Theorem 2 measured): protocol-table and log growth of a
// C2PC coordinator versus U2PC and PrAny under a stream of
// mixed-presumption transactions.
//
// Expected shape: C2PC's residual entries and unreleasable log records
// grow LINEARLY with the number of mixed commits/aborts processed (it can
// never collect the acknowledgments its completion rule demands), while
// PrAny and U2PC return to zero after every batch.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "harness/system.h"
#include "harness/observability.h"

namespace prany {
namespace {

struct GrowthPoint {
  size_t table_entries;
  size_t unreleased_txns;
  size_t stable_records;
};

std::vector<GrowthPoint> MeasureGrowth(ProtocolKind coordinator,
                                       const std::vector<int>& batch_marks) {
  SystemConfig cfg;
  cfg.seed = 9;
  System system(cfg);
  system.AddSite(ProtocolKind::kPrN, coordinator, ProtocolKind::kPrN);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);

  std::vector<GrowthPoint> points;
  int submitted = 0;
  for (int mark : batch_marks) {
    for (; submitted < mark; ++submitted) {
      // Alternate commit and abort over the paper's {PrA, PrC} mix; both
      // directions pin C2PC entries (commit: PrC never acks; abort: PrA
      // never acks).
      TxnId txn = system.Submit(0, {1, 2});
      if (submitted % 2 == 1) {
        system.sim().Schedule(800, [&system, txn]() {
          system.site(0)->coordinator()->ForceAbort(txn);
        });
      }
      system.Run();  // drain to quiescence between submissions
    }
    points.push_back(GrowthPoint{
        system.site(0)->coordinator()->table().Size(),
        system.site(0)->wal()->UnreleasedTxns().size(),
        system.site(0)->wal()->StableSize()});
  }
  return points;
}

void Run() {
  std::printf("== bench_c2pc_memory: Theorem 2 measured — coordinator "
              "state growth over mixed {PrA, PrC} transactions ==\n\n");
  const std::vector<int> marks = {10, 20, 40, 80, 160};
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"txns processed"};
  for (int m : marks) header.push_back(std::to_string(m));
  rows.push_back(header);

  struct V {
    const char* label;
    ProtocolKind kind;
  };
  for (const V& v : {V{"C2PC", ProtocolKind::kC2PC},
                     V{"U2PC(PrN)", ProtocolKind::kU2PC},
                     V{"PrAny", ProtocolKind::kPrAny}}) {
    std::vector<GrowthPoint> points = MeasureGrowth(v.kind, marks);
    std::vector<std::string> entries = {std::string(v.label) +
                                        " table entries"};
    std::vector<std::string> log = {std::string(v.label) +
                                    " unreleasable log txns"};
    for (const GrowthPoint& p : points) {
      entries.push_back(std::to_string(p.table_entries));
      log.push_back(std::to_string(p.unreleased_txns));
    }
    rows.push_back(entries);
    rows.push_back(log);
  }
  std::printf("%s\n", RenderTable(rows).c_str());
  std::printf(
      "C2PC rows grow linearly (it must remember every mixed transaction\n"
      "forever — Theorem 2); U2PC and PrAny return to zero, U2PC by\n"
      "forgetting unsafely (see bench_violation_rates), PrAny safely via\n"
      "outcome-dependent ack sets + dynamic presumption (Theorem 3).\n");
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  prany::Run();
  return 0;
}
