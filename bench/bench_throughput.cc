// Experiment E10: coordinator throughput under a mixed workload.
//
// Sweeps the offered load (mean interarrival time) against a PrAny
// coordinator over a heterogeneous federation and reports simulated
// throughput, mean/percentile commit latency, protocol-table high-water
// mark and per-transaction I/O. Also compares coordinator variants at a
// fixed load. Expected shape: throughput tracks offered load (the
// simulated coordinator pipeline has no queueing bottleneck) while the
// table high-water mark grows with load; C2PC's residual entries grow
// with the mixed-transaction count.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "harness/run_result.h"
#include "harness/workload.h"
#include "harness/observability.h"

namespace prany {
namespace {

RunSummary RunLoad(ProtocolKind coordinator, double interarrival_us,
                   uint32_t txns, size_t* max_table, SimTime* makespan) {
  SystemConfig cfg;
  cfg.seed = 42;
  System system(cfg);
  system.AddSite(ProtocolKind::kPrN, coordinator, ProtocolKind::kPrN);
  system.AddSite(ProtocolKind::kPrN);
  system.AddSite(ProtocolKind::kPrN);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  system.AddSite(ProtocolKind::kPrC);

  WorkloadConfig wl;
  wl.num_txns = txns;
  wl.min_participants = 2;
  wl.max_participants = 4;
  wl.no_vote_probability = 0.1;
  wl.mean_interarrival_us = interarrival_us;
  wl.coordinators = {0};
  wl.participant_pool = {1, 2, 3, 4, 5, 6};
  WorkloadGenerator gen(&system, wl);
  gen.GenerateAndSchedule();
  RunStats stats = system.Run();
  *max_table = system.site(0)->coordinator()->table().MaxSize();
  *makespan = stats.end_time;
  return Summarize(system);
}

void Run() {
  std::printf("== bench_throughput: PrAny coordinator under offered-load "
              "sweep (1000 txns, 6 mixed participants) ==\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"interarrival us", "txns/s (sim)", "commit p50 us",
                  "commit p95 us", "table max", "msgs/txn",
                  "forced writes/txn", "checks"});
  for (double ia : {10'000.0, 5'000.0, 2'000.0, 1'000.0, 500.0, 200.0}) {
    size_t max_table = 0;
    SimTime makespan = 0;
    RunSummary s = RunLoad(ProtocolKind::kPrAny, ia, 1'000, &max_table,
                           &makespan);
    double tput = 1e6 * static_cast<double>(s.commits + s.aborts) /
                  static_cast<double>(makespan);
    rows.push_back(
        {StrFormat("%.0f", ia), StrFormat("%.0f", tput),
         StrFormat("%.0f", s.commit_latency.p50),
         StrFormat("%.0f", s.commit_latency.p95),
         std::to_string(max_table),
         StrFormat("%.1f", static_cast<double>(s.messages_total) /
                               static_cast<double>(s.txns_begun)),
         StrFormat("%.1f", static_cast<double>(s.forced_appends) /
                               static_cast<double>(s.txns_begun)),
         s.AllCorrect() ? "ok" : "FAIL"});
  }
  std::printf("%s\n", RenderTable(rows).c_str());

  std::printf("Coordinator variants at 1ms interarrival, 500 txns:\n");
  std::vector<std::vector<std::string>> vrows;
  vrows.push_back({"coordinator", "txns/s (sim)", "msgs/txn",
                   "forced writes/txn", "residual entries", "atomic",
                   "operational"});
  struct V {
    const char* label;
    ProtocolKind kind;
  };
  for (const V& v :
       {V{"PrAny", ProtocolKind::kPrAny}, V{"U2PC(PrN)", ProtocolKind::kU2PC},
        V{"C2PC", ProtocolKind::kC2PC}}) {
    size_t max_table = 0;
    SimTime makespan = 0;
    RunSummary s = RunLoad(v.kind, 1'000.0, 500, &max_table, &makespan);
    double tput = 1e6 * static_cast<double>(s.commits + s.aborts) /
                  static_cast<double>(makespan);
    vrows.push_back(
        {v.label, StrFormat("%.0f", tput),
         StrFormat("%.1f", static_cast<double>(s.messages_total) /
                               static_cast<double>(s.txns_begun)),
         StrFormat("%.1f", static_cast<double>(s.forced_appends) /
                               static_cast<double>(s.txns_begun)),
         std::to_string(s.residual_table_entries),
         s.atomicity.ok() ? "yes" : "NO",
         s.operational.ok() ? "yes" : "NO"});
  }
  std::printf("%s\n", RenderTable(vrows).c_str());
  std::printf(
      "Note: failure-free runs keep U2PC atomic (its flaw needs the\n"
      "adversarial schedules of bench_violation_rates); C2PC already\n"
      "leaks protocol-table entries here (Theorem 2).\n");
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  prany::Run();
  return 0;
}
