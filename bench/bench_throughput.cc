// Experiment E10: coordinator throughput under a mixed workload.
//
// Default (`--runtime=sim`): sweeps the offered load (mean interarrival
// time) against a PrAny coordinator over a heterogeneous federation and
// reports simulated throughput, mean/percentile commit latency,
// protocol-table high-water mark and per-transaction I/O. Also compares
// coordinator variants at a fixed load. Expected shape: throughput tracks
// offered load (the simulated coordinator pipeline has no queueing
// bottleneck) while the table high-water mark grows with load; C2PC's
// residual entries grow with the mixed-transaction count.
//
// `--runtime=live`: closed-loop wall-clock throughput on the live runtime
// (real threads, file-backed group-commit WALs). Sweeps protocol x client
// count, prints commits/s, forced writes and fsyncs per commit, and p50/
// p99 latency, and writes the machine-readable BENCH_live_commit.json.
// Extra flags: --duration-ms=N per cell (default 1500), --log-dir=DIR for
// the WAL files (default: a fresh directory under the working directory —
// put it on a real filesystem; fsync latency IS the experiment).
//
// `--runtime=live --crash-every-ms=K`: same closed loop, but a rotating
// site is killed and restarted every K ms — threads torn down, WAL tail
// torn, recovery and §4.2 re-inquiry on the serving path. Reports
// commits/s with crash-cycle counts and writes BENCH_live_crash.json;
// exits nonzero if atomicity or safe state breaks.

#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>
#include <memory>

#include "common/string_util.h"
#include "harness/run_result.h"
#include "harness/workload.h"
#include "harness/observability.h"
#include "history/atomicity_checker.h"
#include "runtime/live_system.h"
#include "runtime/load_gen.h"

namespace prany {
namespace {

RunSummary RunLoad(ProtocolKind coordinator, double interarrival_us,
                   uint32_t txns, size_t* max_table, SimTime* makespan) {
  SystemConfig cfg;
  cfg.seed = 42;
  System system(cfg);
  system.AddSite(ProtocolKind::kPrN, coordinator, ProtocolKind::kPrN);
  system.AddSite(ProtocolKind::kPrN);
  system.AddSite(ProtocolKind::kPrN);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  system.AddSite(ProtocolKind::kPrC);

  WorkloadConfig wl;
  wl.num_txns = txns;
  wl.min_participants = 2;
  wl.max_participants = 4;
  wl.no_vote_probability = 0.1;
  wl.mean_interarrival_us = interarrival_us;
  wl.coordinators = {0};
  wl.participant_pool = {1, 2, 3, 4, 5, 6};
  WorkloadGenerator gen(&system, wl);
  gen.GenerateAndSchedule();
  RunStats stats = system.Run();
  *max_table = system.site(0)->coordinator()->table().MaxSize();
  *makespan = stats.end_time;
  return Summarize(system);
}

void Run() {
  std::printf("== bench_throughput: PrAny coordinator under offered-load "
              "sweep (1000 txns, 6 mixed participants) ==\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"interarrival us", "txns/s (sim)", "commit p50 us",
                  "commit p95 us", "table max", "msgs/txn",
                  "forced writes/txn", "checks"});
  for (double ia : {10'000.0, 5'000.0, 2'000.0, 1'000.0, 500.0, 200.0}) {
    size_t max_table = 0;
    SimTime makespan = 0;
    RunSummary s = RunLoad(ProtocolKind::kPrAny, ia, 1'000, &max_table,
                           &makespan);
    double tput = 1e6 * static_cast<double>(s.commits + s.aborts) /
                  static_cast<double>(makespan);
    rows.push_back(
        {StrFormat("%.0f", ia), StrFormat("%.0f", tput),
         StrFormat("%.0f", s.commit_latency.p50),
         StrFormat("%.0f", s.commit_latency.p95),
         std::to_string(max_table),
         StrFormat("%.1f", static_cast<double>(s.messages_total) /
                               static_cast<double>(s.txns_begun)),
         StrFormat("%.1f", static_cast<double>(s.forced_appends) /
                               static_cast<double>(s.txns_begun)),
         s.AllCorrect() ? "ok" : "FAIL"});
  }
  std::printf("%s\n", RenderTable(rows).c_str());

  std::printf("Coordinator variants at 1ms interarrival, 500 txns:\n");
  std::vector<std::vector<std::string>> vrows;
  vrows.push_back({"coordinator", "txns/s (sim)", "msgs/txn",
                   "forced writes/txn", "residual entries", "atomic",
                   "operational"});
  struct V {
    const char* label;
    ProtocolKind kind;
  };
  for (const V& v :
       {V{"PrAny", ProtocolKind::kPrAny}, V{"U2PC(PrN)", ProtocolKind::kU2PC},
        V{"C2PC", ProtocolKind::kC2PC}}) {
    size_t max_table = 0;
    SimTime makespan = 0;
    RunSummary s = RunLoad(v.kind, 1'000.0, 500, &max_table, &makespan);
    double tput = 1e6 * static_cast<double>(s.commits + s.aborts) /
                  static_cast<double>(makespan);
    vrows.push_back(
        {v.label, StrFormat("%.0f", tput),
         StrFormat("%.1f", static_cast<double>(s.messages_total) /
                               static_cast<double>(s.txns_begun)),
         StrFormat("%.1f", static_cast<double>(s.forced_appends) /
                               static_cast<double>(s.txns_begun)),
         std::to_string(s.residual_table_entries),
         s.atomicity.ok() ? "yes" : "NO",
         s.operational.ok() ? "yes" : "NO"});
  }
  std::printf("%s\n", RenderTable(vrows).c_str());
  std::printf(
      "Note: failure-free runs keep U2PC atomic (its flaw needs the\n"
      "adversarial schedules of bench_violation_rates); C2PC already\n"
      "leaks protocol-table entries here (Theorem 2).\n");
}

// ---------------------------------------------------------------------------
// Live-runtime mode

struct LiveCell {
  const char* label = "";
  int clients = 0;
  runtime::LoadGenReport report;
  DistributionStats latency;
  uint64_t forced_appends = 0;
  uint64_t fsyncs = 0;
  runtime::CrashStats crash;  ///< Only populated in --crash-every-ms mode.
  bool correct = false;
  /// Process CPU consumed between load start and quiesce end (µs), from
  /// getrusage(RUSAGE_SELF) deltas — excludes site construction and the
  /// post-run correctness checkers so it isolates the serving path.
  double user_cpu_us = 0.0;
  double sys_cpu_us = 0.0;
  /// Mean group-commit linger the adaptive policy actually chose
  /// (wal.batch_window_us distribution, all sites pooled).
  double adaptive_window_us_mean = 0.0;
  runtime::LiveTransportStats transport;

  double PerCommit(uint64_t n) const {
    uint64_t decided = report.committed + report.aborted;
    return decided > 0
               ? static_cast<double>(n) / static_cast<double>(decided)
               : 0.0;
  }
};

/// Tuning knobs for the live sweep, all overridable from the command line
/// (see --help text in main). Zeros mean "use the built-in heuristic".
struct LiveBenchOptions {
  uint64_t duration_us = 1'500'000;
  bool duration_set = false;
  std::string log_dir = "prany_bench_wal";
  int workers = 0;           ///< 0 = scale with client count
  uint64_t window_us = 0;    ///< group-commit linger window (0 = heuristic)
  size_t trigger = 48;       ///< early-cut queue depth
  int sites = 4;
  std::vector<int> client_counts = {8, 32, 128};
  /// Offered-load points for the latency sweep (closed-loop clients).
  std::vector<int> latency_client_counts = {1, 4, 8, 16, 32};
  uint64_t crash_every_us = 0;  ///< --crash-every-ms: kill/restart cadence
  std::string socket_transport = "uds";  ///< --transport: socket sweep kind
  /// --latency-smoke=FILE: regression-gate mode. Runs only the 8-client
  /// latency cell per protocol and exits nonzero if any p50 exceeds 2x
  /// the committed baseline in FILE (see bench/latency_baseline.json).
  std::string latency_smoke_baseline;
};

LiveCell RunLiveCell(const char* label, ProtocolKind participant,
                     ProtocolKind coordinator, int clients,
                     const LiveBenchOptions& opts, const std::string& dir,
                     uint64_t crash_every_us = 0) {
  LiveCell cell;
  cell.label = label;
  cell.clients = clients;
  mkdir(dir.c_str(), 0755);  // ok if it already exists

  const SiteId kSites = static_cast<SiteId>(opts.sites);
  runtime::LiveSystemConfig config;
  config.log_dir = dir;
  // Wall-clock queueing latency at high client counts dwarfs the
  // sim-scaled defaults; a 50ms vote timeout would abort healthy
  // transactions and measure the timeout path instead of throughput.
  config.timing.vote_timeout = 10'000'000;
  config.timing.decision_resend_interval = 2'000'000;
  config.timing.inquiry_interval = 2'000'000;
  // Worker depth bounds how many forces can be in flight per site, and
  // with sticky batching the batch size is exactly the forces that arrive
  // during one fsync — so the pool must be deep enough that a parked
  // durability wait never starves message processing. The group-commit
  // window is left on the adaptive policy (batch_window_us == 0): it
  // derives the linger from observed arrival rate and fsync duration, so
  // the old per-client-count fixed-window heuristic is gone.
  // --gc-window-us still forces the legacy fixed window for comparison.
  config.workers_per_site =
      opts.workers > 0 ? opts.workers
                       : (clients >= 96 ? 24 : (clients >= 32 ? 16 : 4));
  config.group_commit.batch_window_us = opts.window_us;
  config.group_commit.queue_depth_trigger = opts.trigger;
  runtime::LiveSystem system(config);
  for (SiteId i = 0; i < kSites; ++i) system.AddSite(participant, coordinator);

  runtime::LoadGenConfig gen_config;
  gen_config.clients = clients;
  gen_config.duration_us = opts.duration_us;
  gen_config.participants_per_txn = 2;
  if (crash_every_us > 0) {
    // A client whose transaction dies with its coordinator should requeue
    // after a short await, not camp on the default 10s timeout.
    gen_config.await_timeout_us = 2'000'000;
  }
  runtime::LoadGen gen(&system, gen_config);

  // Crash driver: kill-and-restart a rotating site every crash_every_us
  // while the load runs. CrashRestartSite blocks until the victim has
  // torn down, recovered its WAL and rejoined, so cycles never overlap.
  std::atomic<bool> crash_done{false};
  std::thread crasher;
  if (crash_every_us > 0) {
    crasher = std::thread([&]() {
      SiteId next = 0;
      while (!crash_done.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(crash_every_us));
        if (crash_done.load()) break;
        system.CrashRestartSite(next, /*downtime_us=*/50'000);
        next = static_cast<SiteId>((next + 1) % kSites);
      }
    });
  }
  struct rusage ru_start;
  getrusage(RUSAGE_SELF, &ru_start);
  cell.report = gen.Run();
  crash_done.store(true);
  if (crasher.joinable()) crasher.join();
  system.Quiesce(20'000'000);
  struct rusage ru_end;
  getrusage(RUSAGE_SELF, &ru_end);
  auto tv_delta_us = [](const timeval& a, const timeval& b) {
    return 1e6 * static_cast<double>(b.tv_sec - a.tv_sec) +
           static_cast<double>(b.tv_usec - a.tv_usec);
  };
  cell.user_cpu_us = tv_delta_us(ru_start.ru_utime, ru_end.ru_utime);
  cell.sys_cpu_us = tv_delta_us(ru_start.ru_stime, ru_end.ru_stime);
  cell.transport = system.transport().stats();

  cell.latency = system.metrics().Summarize("livegen.latency_us");
  cell.adaptive_window_us_mean =
      system.metrics().Summarize("wal.batch_window_us").mean;
  for (SiteId s = 0; s < kSites; ++s) {
    cell.forced_appends +=
        system.live_site(s)->wal()->stats().forced_appends;
    cell.fsyncs += system.live_site(s)->wal()->fsyncs();
  }
  cell.crash = system.crash_stats();
  // Crash cells exempt the operational check: transactions in flight at
  // the final kill can legitimately finish as undecided-at-a-participant
  // until the inquiry round after the load stops.
  cell.correct = system.CheckAtomicity().ok() &&
                 system.CheckSafeState().ok() &&
                 (crash_every_us > 0 || system.CheckOperational().ok());
  system.Stop();
  // The WAL files are the experiment's scratch state, not a result.
  for (SiteId s = 0; s < kSites; ++s) {
    unlink((dir + "/site" + std::to_string(s) + ".wal").c_str());
  }
  return cell;
}

// ---------------------------------------------------------------------------
// Socket-transport sweep: the same four protocols with every protocol
// message crossing a real kernel socket. Three LiveSystems in this
// process — each hosting one site, exactly as the multi-process harness
// runs them — wired over UDS or TCP loopback; each node drives its own
// closed-loop load against the other two. correct = the merged per-node
// histories pass the atomicity checker.

struct SocketCell {
  const char* label = "";
  int clients_per_node = 0;
  runtime::LoadGenReport report;  ///< Summed over the three nodes.
  uint64_t net_frames_delivered = 0;
  uint64_t net_bytes_sent = 0;
  uint64_t net_frames_dropped_backlog = 0;  ///< Outbound queue overflow.
  uint64_t net_frames_dropped_corrupt = 0;  ///< Inbound stream desync.
  bool correct = false;
};

SocketCell RunSocketCell(const char* label, ProtocolKind participant,
                         ProtocolKind coordinator, int clients,
                         const LiveBenchOptions& opts,
                         const std::string& dir, int base_port) {
  SocketCell cell;
  cell.label = label;
  cell.clients_per_node = clients;
  mkdir(dir.c_str(), 0755);

  constexpr SiteId kNodes = 3;
  std::vector<std::string> addresses;
  for (SiteId i = 0; i < kNodes; ++i) {
    addresses.push_back(
        opts.socket_transport == "uds"
            ? "uds:" + dir + "/s" + std::to_string(i) + ".sock"
            : "tcp:127.0.0.1:" + std::to_string(base_port + i));
  }
  std::vector<std::unique_ptr<runtime::LiveSystem>> nodes;
  for (SiteId i = 0; i < kNodes; ++i) {
    runtime::LiveSystemConfig config;
    config.log_dir = dir;
    config.listen_address = addresses[i];
    // Socket round-trips put wall-clock queueing on every vote; the
    // sim-scaled timeouts would measure the abort path, not throughput.
    config.timing.vote_timeout = 10'000'000;
    config.timing.decision_resend_interval = 2'000'000;
    config.timing.inquiry_interval = 2'000'000;
    config.txn_id_base = static_cast<TxnId>(i + 1) << 40;
    for (SiteId j = 0; j < kNodes; ++j) {
      if (j == i) continue;
      config.remote_sites.push_back(
          runtime::LiveSystemConfig::RemoteSite{j, participant, addresses[j]});
    }
    nodes.push_back(std::make_unique<runtime::LiveSystem>(std::move(config)));
    CoordinatorSpec spec;
    spec.kind = coordinator;
    nodes.back()->AddSiteWithId(i, participant, spec);
  }

  std::vector<runtime::LoadGenReport> reports(kNodes);
  std::vector<std::thread> loaders;
  for (SiteId i = 0; i < kNodes; ++i) {
    loaders.emplace_back([&, i]() {
      runtime::LoadGenConfig gen_config;
      gen_config.clients = clients;
      gen_config.duration_us = opts.duration_us;
      gen_config.participants_per_txn = 2;
      gen_config.sites = {0, 1, 2};
      gen_config.coordinators = {i};
      gen_config.seed = 1 + i;
      runtime::LoadGen gen(nodes[i].get(), gen_config);
      reports[i] = gen.Run();
    });
  }
  for (std::thread& t : loaders) t.join();
  // A message can be in flight between two nodes when a single node's
  // check runs, so the cluster must be observed idle in one sweep, twice.
  for (int stable = 0; stable < 2; ++stable) {
    for (auto& node : nodes) node->Quiesce(10'000'000);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  for (SiteId i = 0; i < kNodes; ++i) {
    cell.report.submitted += reports[i].submitted;
    cell.report.committed += reports[i].committed;
    cell.report.aborted += reports[i].aborted;
    cell.report.timeouts += reports[i].timeouts;
    cell.report.dropped += reports[i].dropped;
    cell.report.elapsed_seconds =
        std::max(cell.report.elapsed_seconds, reports[i].elapsed_seconds);
    runtime::SocketTransportStats stats =
        nodes[i]->socket_transport()->stats();
    cell.net_frames_delivered += stats.messages_delivered;
    cell.net_bytes_sent += stats.bytes_sent;
    cell.net_frames_dropped_backlog += stats.frames_dropped_backlog;
    cell.net_frames_dropped_corrupt += stats.frames_dropped_corrupt;
  }
  // The checkers' view of a multi-process run: per-node partial histories
  // concatenated (sound — the atomicity criterion never relies on
  // cross-site event order).
  EventLog merged;
  for (auto& node : nodes) {
    for (const SigEvent& event : node->history().events()) {
      merged.Record(event);
    }
  }
  cell.correct = AtomicityChecker::Check(merged).ok() &&
                 cell.report.committed > 0;
  for (auto& node : nodes) node->Stop();
  for (SiteId i = 0; i < kNodes; ++i) {
    unlink((dir + "/site" + std::to_string(i) + ".wal").c_str());
    unlink((dir + "/s" + std::to_string(i) + ".sock").c_str());
  }
  return cell;
}

void WriteLiveJson(const std::vector<LiveCell>& cells,
                   const std::vector<LiveCell>& latency_cells,
                   uint64_t latency_duration_us,
                   const std::vector<SocketCell>& socket_cells,
                   const std::string& socket_transport, uint64_t duration_us,
                   const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"live_commit\",\n");
  std::fprintf(f, "  \"duration_us\": %llu,\n",
               static_cast<unsigned long long>(duration_us));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const LiveCell& c = cells[i];
    std::fprintf(
        f,
        "    {\"protocol\": \"%s\", \"clients\": %d, \"submitted\": %llu, "
        "\"committed\": %llu, \"aborted\": %llu, \"timeouts\": %llu, "
        "\"dropped\": %llu, "
        "\"commits_per_sec\": %.1f, \"forced_writes_per_commit\": %.3f, "
        "\"fsyncs_per_commit\": %.3f, \"latency_us\": {\"p50\": %.1f, "
        "\"p95\": %.1f, \"p99\": %.1f}, \"correct\": %s}%s\n",
        c.label, c.clients,
        static_cast<unsigned long long>(c.report.submitted),
        static_cast<unsigned long long>(c.report.committed),
        static_cast<unsigned long long>(c.report.aborted),
        static_cast<unsigned long long>(c.report.timeouts),
        static_cast<unsigned long long>(c.report.dropped),
        c.report.commits_per_sec(), c.PerCommit(c.forced_appends),
        c.PerCommit(c.fsyncs), c.latency.p50, c.latency.p95, c.latency.p99,
        c.correct ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Offered load vs commit latency, adaptive group commit. The knee in
  // each protocol's p50 is where queueing at the device overtakes the
  // protocol's own forced-write chain.
  std::fprintf(f, "  \"latency_sweep_duration_us\": %llu,\n",
               static_cast<unsigned long long>(latency_duration_us));
  std::fprintf(f, "  \"latency_sweep\": [\n");
  for (size_t i = 0; i < latency_cells.size(); ++i) {
    const LiveCell& c = latency_cells[i];
    std::fprintf(
        f,
        "    {\"protocol\": \"%s\", \"clients\": %d, \"committed\": %llu, "
        "\"commits_per_sec\": %.1f, \"latency_us\": {\"p50\": %.1f, "
        "\"p95\": %.1f, \"p99\": %.1f}, \"adaptive_window_us_mean\": %.1f, "
        "\"correct\": %s}%s\n",
        c.label, c.clients,
        static_cast<unsigned long long>(c.report.committed),
        c.report.commits_per_sec(), c.latency.p50, c.latency.p95,
        c.latency.p99, c.adaptive_window_us_mean,
        c.correct ? "true" : "false",
        i + 1 < latency_cells.size() ? "," : "");
  }
  if (socket_cells.empty()) {
    std::fprintf(f, "  ]\n}\n");
  } else {
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"socket_transport\": \"%s\",\n",
                 socket_transport.c_str());
    std::fprintf(f,
                 "  \"socket_topology\": \"3 single-site LiveSystems, every "
                 "protocol message over a kernel socket, merged-history "
                 "atomicity check\",\n");
    std::fprintf(f, "  \"socket_results\": [\n");
    for (size_t i = 0; i < socket_cells.size(); ++i) {
      const SocketCell& c = socket_cells[i];
      std::fprintf(
          f,
          "    {\"protocol\": \"%s\", \"clients_per_node\": %d, "
          "\"nodes\": 3, \"submitted\": %llu, \"committed\": %llu, "
          "\"aborted\": %llu, \"timeouts\": %llu, \"dropped\": %llu, "
          "\"commits_per_sec\": %.1f, \"net_frames_delivered\": %llu, "
          "\"net_bytes_sent\": %llu, "
          "\"net_frames_dropped_backlog\": %llu, "
          "\"net_frames_dropped_corrupt\": %llu, \"correct\": %s}%s\n",
          c.label, c.clients_per_node,
          static_cast<unsigned long long>(c.report.submitted),
          static_cast<unsigned long long>(c.report.committed),
          static_cast<unsigned long long>(c.report.aborted),
          static_cast<unsigned long long>(c.report.timeouts),
          static_cast<unsigned long long>(c.report.dropped),
          c.report.commits_per_sec(),
          static_cast<unsigned long long>(c.net_frames_delivered),
          static_cast<unsigned long long>(c.net_bytes_sent),
          static_cast<unsigned long long>(c.net_frames_dropped_backlog),
          static_cast<unsigned long long>(c.net_frames_dropped_corrupt),
          c.correct ? "true" : "false",
          i + 1 < socket_cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
  }
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

/// Pre-optimization per-commit CPU: the mutex+condvar inbox with
/// per-frame allocation, string-keyed hot-path metrics and the global
/// history mutex. Measured with this same instrumentation (getrusage
/// around the load window, 4 sites, tmpfs WALs, --clients=128
/// --duration-ms=2500) by building the pre-rewrite bench and running it
/// interleaved with the optimized one on the same box — mean of 4
/// alternating rounds, because run-to-run box noise exceeds the effect
/// size, so only a paired comparison is meaningful. Kept here so
/// BENCH_live_cpu.json records before/after.
struct CpuBaseline {
  const char* protocol;
  double user_us_per_commit;
  double sys_us_per_commit;
};
constexpr CpuBaseline kCpuBaseline[] = {
    {"PrN", 61.2, 35.1},
    {"PrA", 58.2, 33.4},
    {"PrC", 52.2, 35.5},
    {"PrAny", 61.1, 33.3},
};

void WriteLiveCpuJson(const std::vector<LiveCell>& cells,
                      uint64_t duration_us, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"live_cpu\",\n");
  std::fprintf(f, "  \"duration_us\": %llu,\n",
               static_cast<unsigned long long>(duration_us));
  std::fprintf(f,
               "  \"cpu_us_per_commit\": \"getrusage(RUSAGE_SELF) delta "
               "across the load window / decided txns\",\n");
  std::fprintf(f, "  \"baseline\": {\n");
  std::fprintf(f,
               "    \"transport\": \"mutex+condvar inbox, per-frame "
               "allocation (pre-ring)\",\n");
  std::fprintf(f,
               "    \"methodology\": \"pre-rewrite bench run interleaved "
               "with the optimized one on the same box; mean of 4 "
               "alternating rounds\",\n");
  std::fprintf(f, "    \"results\": [\n");
  constexpr size_t kBaselines =
      sizeof(kCpuBaseline) / sizeof(kCpuBaseline[0]);
  for (size_t i = 0; i < kBaselines; ++i) {
    const CpuBaseline& b = kCpuBaseline[i];
    std::fprintf(f,
                 "      {\"protocol\": \"%s\", \"clients\": 128, "
                 "\"user_us_per_commit\": %.1f, "
                 "\"sys_us_per_commit\": %.1f}%s\n",
                 b.protocol, b.user_us_per_commit, b.sys_us_per_commit,
                 i + 1 < kBaselines ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const LiveCell& c = cells[i];
    uint64_t pool_total =
        c.transport.buffer_pool_hits + c.transport.buffer_pool_misses;
    std::fprintf(
        f,
        "    {\"protocol\": \"%s\", \"clients\": %d, \"committed\": %llu, "
        "\"commits_per_sec\": %.1f, \"user_us_per_commit\": %.1f, "
        "\"sys_us_per_commit\": %.1f, \"messages_sent\": %llu, "
        "\"buffer_pool_hits\": %llu, \"buffer_pool_misses\": %llu, "
        "\"buffer_pool_hit_rate\": %.4f, \"correct\": %s}%s\n",
        c.label, c.clients,
        static_cast<unsigned long long>(c.report.committed),
        c.report.commits_per_sec(),
        c.PerCommit(static_cast<uint64_t>(c.user_cpu_us)),
        c.PerCommit(static_cast<uint64_t>(c.sys_cpu_us)),
        static_cast<unsigned long long>(c.transport.messages_sent),
        static_cast<unsigned long long>(c.transport.buffer_pool_hits),
        static_cast<unsigned long long>(c.transport.buffer_pool_misses),
        pool_total > 0 ? static_cast<double>(c.transport.buffer_pool_hits) /
                             static_cast<double>(pool_total)
                       : 0.0,
        c.correct ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void RunLive(const LiveBenchOptions& opts) {
  std::printf("== bench_throughput --runtime=live: closed-loop wall-clock "
              "commits over 4 sites, group-commit WAL ==\n\n");
  struct P {
    const char* label;
    ProtocolKind participant;
    ProtocolKind coordinator;
  };
  const std::vector<P> protocols = {
      {"PrN", ProtocolKind::kPrN, ProtocolKind::kPrN},
      {"PrA", ProtocolKind::kPrA, ProtocolKind::kPrA},
      {"PrC", ProtocolKind::kPrC, ProtocolKind::kPrC},
      {"PrAny", ProtocolKind::kPrN, ProtocolKind::kPrAny},
  };

  std::vector<LiveCell> cells;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"protocol", "clients", "commits/s", "forced/commit",
                  "fsyncs/commit", "user us/c", "sys us/c", "pool hit",
                  "p50 us", "p99 us", "checks"});
  int cell_index = 0;
  for (const P& p : protocols) {
    for (int clients : opts.client_counts) {
      std::string dir =
          opts.log_dir + "/cell" + std::to_string(cell_index++);
      LiveCell cell = RunLiveCell(p.label, p.participant, p.coordinator,
                                  clients, opts, dir);
      uint64_t pool_total = cell.transport.buffer_pool_hits +
                            cell.transport.buffer_pool_misses;
      rows.push_back(
          {cell.label, std::to_string(clients),
           StrFormat("%.0f", cell.report.commits_per_sec()),
           StrFormat("%.2f", cell.PerCommit(cell.forced_appends)),
           StrFormat("%.2f", cell.PerCommit(cell.fsyncs)),
           StrFormat("%.1f",
                     cell.PerCommit(static_cast<uint64_t>(cell.user_cpu_us))),
           StrFormat("%.1f",
                     cell.PerCommit(static_cast<uint64_t>(cell.sys_cpu_us))),
           pool_total > 0
               ? StrFormat("%.1f%%",
                           100.0 *
                               static_cast<double>(
                                   cell.transport.buffer_pool_hits) /
                               static_cast<double>(pool_total))
               : std::string("n/a"),
           StrFormat("%.0f", cell.latency.p50),
           StrFormat("%.0f", cell.latency.p99),
           cell.correct ? "ok" : "FAIL"});
      cells.push_back(cell);
    }
  }
  std::printf("%s\n", RenderTable(rows).c_str());
  std::printf(
      "Note: forced/commit is the paper's cost signature on a real WAL —\n"
      "PrC must sit strictly below PrN. fsyncs/commit < forced/commit is\n"
      "group commit coalescing concurrent forces into one fdatasync.\n"
      "user/sys us/c is the load window's getrusage delta per decided\n"
      "txn; pool hit is the wire-buffer pool reuse rate.\n\n");
  // Latency sweep: offered load (closed-loop client count) vs commit
  // latency percentiles, adaptive group commit throughout. Shorter cells
  // than the throughput sweep — percentiles stabilize in a few hundred
  // milliseconds of closed-loop traffic and the sweep has 5 points per
  // protocol.
  const uint64_t latency_duration_us =
      opts.duration_set ? opts.duration_us : 600'000;
  std::printf("== latency sweep: offered load vs commit-latency "
              "percentiles (adaptive group commit) ==\n\n");
  LiveBenchOptions lat_opts = opts;
  lat_opts.duration_us = latency_duration_us;
  std::vector<LiveCell> latency_cells;
  std::vector<std::vector<std::string>> lrows;
  lrows.push_back({"protocol", "clients", "commits/s", "p50 us", "p95 us",
                   "p99 us", "window us", "checks"});
  int lat_index = 0;
  for (const P& p : protocols) {
    for (int clients : opts.latency_client_counts) {
      std::string dir = opts.log_dir + "/lat" + std::to_string(lat_index++);
      LiveCell cell = RunLiveCell(p.label, p.participant, p.coordinator,
                                  clients, lat_opts, dir);
      lrows.push_back({cell.label, std::to_string(clients),
                       StrFormat("%.0f", cell.report.commits_per_sec()),
                       StrFormat("%.0f", cell.latency.p50),
                       StrFormat("%.0f", cell.latency.p95),
                       StrFormat("%.0f", cell.latency.p99),
                       StrFormat("%.1f", cell.adaptive_window_us_mean),
                       cell.correct ? "ok" : "FAIL"});
      latency_cells.push_back(cell);
    }
  }
  std::printf("%s\n", RenderTable(lrows).c_str());
  std::printf(
      "Note: window us is the mean linger the adaptive policy chose —\n"
      "near zero while arrivals are sparse (a second fsync is cheaper\n"
      "than waiting out an inter-arrival gap), rising toward the fsync\n"
      "duration as the offered load outpaces the device.\n\n");
  // The socket sweep: same four protocols, every message over a real
  // kernel socket. One client count per protocol — this section measures
  // the transport, not the protocol/client surface the table above covers.
  std::printf("== socket transport (%s): 3 single-site nodes, kernel "
              "sockets ==\n\n", opts.socket_transport.c_str());
  std::vector<SocketCell> socket_cells;
  std::vector<std::vector<std::string>> srows;
  srows.push_back({"protocol", "clients/node", "commits/s", "frames",
                   "kB sent", "net drops", "checks"});
  for (size_t i = 0; i < protocols.size(); ++i) {
    const P& p = protocols[i];
    SocketCell cell = RunSocketCell(
        p.label, p.participant, p.coordinator, /*clients=*/16, opts,
        opts.log_dir + "/sock" + std::to_string(i),
        /*base_port=*/23000 + static_cast<int>(i) * 10);
    srows.push_back({cell.label, "16",
                     StrFormat("%.0f", cell.report.commits_per_sec()),
                     std::to_string(cell.net_frames_delivered),
                     StrFormat("%.0f",
                               static_cast<double>(cell.net_bytes_sent) /
                                   1024.0),
                     std::to_string(cell.net_frames_dropped_backlog +
                                    cell.net_frames_dropped_corrupt),
                     cell.correct ? "ok" : "FAIL"});
    socket_cells.push_back(cell);
  }
  std::printf("%s\n", RenderTable(srows).c_str());
  WriteLiveJson(cells, latency_cells, latency_duration_us, socket_cells,
                opts.socket_transport, opts.duration_us,
                "BENCH_live_commit.json");
  WriteLiveCpuJson(cells, opts.duration_us, "BENCH_live_cpu.json");
}

// ---------------------------------------------------------------------------
// Latency-smoke mode (--latency-smoke=FILE): the CI regression gate.
// One 8-client cell per protocol at a small budget; fails (exit 1) if any
// protocol's p50 regresses past 2x the committed baseline, or any cell
// breaks a correctness check. The 2x bar is deliberately loose — CI boxes
// are noisy and the gate is for order-of-magnitude latency-path breakage
// (a lost wakeup, an accidental fixed window), not for 10% drift.

/// Pulls `"<key>": <number>` out of a flat JSON object. Good enough for
/// the baseline file this bench itself writes; returns NaN if absent.
double JsonNumberField(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return std::nan("");
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + pos + 1, nullptr);
}

bool RunLatencySmoke(LiveBenchOptions opts) {
  std::string baseline_text;
  if (FILE* f = std::fopen(opts.latency_smoke_baseline.c_str(), "r")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      baseline_text.append(buf, n);
    }
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot read baseline %s\n",
                 opts.latency_smoke_baseline.c_str());
    return false;
  }
  if (!opts.duration_set) opts.duration_us = 800'000;
  const int clients = 8;
  std::printf("== bench_throughput --latency-smoke: p50 at %d clients vs "
              "2x baseline (%s) ==\n\n",
              clients, opts.latency_smoke_baseline.c_str());
  struct P {
    const char* label;
    ProtocolKind participant;
    ProtocolKind coordinator;
  };
  const std::vector<P> protocols = {
      {"PrN", ProtocolKind::kPrN, ProtocolKind::kPrN},
      {"PrA", ProtocolKind::kPrA, ProtocolKind::kPrA},
      {"PrC", ProtocolKind::kPrC, ProtocolKind::kPrC},
      {"PrAny", ProtocolKind::kPrN, ProtocolKind::kPrAny},
  };
  bool ok = true;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"protocol", "p50 us", "baseline us", "limit us",
                  "commits/s", "verdict"});
  int index = 0;
  for (const P& p : protocols) {
    const double base = JsonNumberField(baseline_text, p.label);
    if (std::isnan(base) || base <= 0.0) {
      std::fprintf(stderr, "baseline has no p50 for %s\n", p.label);
      return false;
    }
    std::string dir = opts.log_dir + "/smoke" + std::to_string(index++);
    LiveCell cell = RunLiveCell(p.label, p.participant, p.coordinator,
                                clients, opts, dir);
    const double limit = 2.0 * base;
    const bool cell_ok =
        cell.correct && cell.latency.p50 > 0.0 && cell.latency.p50 <= limit;
    ok = ok && cell_ok;
    rows.push_back({p.label, StrFormat("%.0f", cell.latency.p50),
                    StrFormat("%.0f", base), StrFormat("%.0f", limit),
                    StrFormat("%.0f", cell.report.commits_per_sec()),
                    cell_ok ? "ok" : (cell.correct ? "REGRESSED" : "FAIL")});
  }
  std::printf("%s\n", RenderTable(rows).c_str());
  return ok;
}

// ---------------------------------------------------------------------------
// Live crash-restart mode (--crash-every-ms)

void WriteLiveCrashJson(const std::vector<LiveCell>& cells,
                        const LiveBenchOptions& opts, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"live_crash\",\n");
  std::fprintf(f, "  \"duration_us\": %llu,\n",
               static_cast<unsigned long long>(opts.duration_us));
  std::fprintf(f, "  \"crash_every_us\": %llu,\n",
               static_cast<unsigned long long>(opts.crash_every_us));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const LiveCell& c = cells[i];
    std::fprintf(
        f,
        "    {\"protocol\": \"%s\", \"clients\": %d, \"submitted\": %llu, "
        "\"committed\": %llu, \"aborted\": %llu, \"timeouts\": %llu, "
        "\"dropped\": %llu, "
        "\"commits_per_sec\": %.1f, \"crash_cycles\": %llu, "
        "\"torn_tails\": %llu, \"records_replayed\": %llu, "
        "\"latency_us\": {\"p50\": %.1f, \"p99\": %.1f}, \"correct\": %s}%s\n",
        c.label, c.clients,
        static_cast<unsigned long long>(c.report.submitted),
        static_cast<unsigned long long>(c.report.committed),
        static_cast<unsigned long long>(c.report.aborted),
        static_cast<unsigned long long>(c.report.timeouts),
        static_cast<unsigned long long>(c.report.dropped),
        c.report.commits_per_sec(),
        static_cast<unsigned long long>(c.crash.cycles),
        static_cast<unsigned long long>(c.crash.torn_tail_cycles),
        static_cast<unsigned long long>(c.crash.records_recovered_total),
        c.latency.p50, c.latency.p99, c.correct ? "true" : "false",
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

/// Commits/s while a rotating site is killed and restarted every
/// opts.crash_every_us, WAL recovery and §4.2 re-inquiry included in the
/// serving path. Returns false if any cell breaks atomicity / safe state.
bool RunLiveCrash(LiveBenchOptions opts) {
  if (!opts.duration_set) {
    // The default 1.5s window fits only ~3 crash cycles at the 500ms
    // cadence; measure across enough cycles that recovery cost, not
    // startup noise, dominates the number.
    opts.duration_us = 6'000'000;
  }
  std::printf("== bench_throughput --runtime=live --crash-every-ms=%llu: "
              "commits/s while a rotating site crash-restarts ==\n\n",
              static_cast<unsigned long long>(opts.crash_every_us / 1000));
  struct P {
    const char* label;
    ProtocolKind participant;
    ProtocolKind coordinator;
  };
  const std::vector<P> protocols = {
      {"PrN", ProtocolKind::kPrN, ProtocolKind::kPrN},
      {"PrA", ProtocolKind::kPrA, ProtocolKind::kPrA},
      {"PrC", ProtocolKind::kPrC, ProtocolKind::kPrC},
      {"PrAny", ProtocolKind::kPrN, ProtocolKind::kPrAny},
  };
  const int clients = opts.client_counts.empty() ? 16
                                                 : opts.client_counts.front();

  std::vector<LiveCell> cells;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"protocol", "clients", "commits/s", "crash cycles",
                  "torn tails", "records replayed", "p99 us", "checks"});
  int cell_index = 0;
  for (const P& p : protocols) {
    std::string dir =
        opts.log_dir + "/crash" + std::to_string(cell_index++);
    LiveCell cell = RunLiveCell(p.label, p.participant, p.coordinator,
                                clients, opts, dir, opts.crash_every_us);
    rows.push_back({cell.label, std::to_string(clients),
                    StrFormat("%.0f", cell.report.commits_per_sec()),
                    std::to_string(cell.crash.cycles),
                    std::to_string(cell.crash.torn_tail_cycles),
                    std::to_string(cell.crash.records_recovered_total),
                    StrFormat("%.0f", cell.latency.p99),
                    cell.correct ? "ok" : "FAIL"});
    cells.push_back(cell);
  }
  std::printf("%s\n", RenderTable(rows).c_str());
  std::printf(
      "Note: every cycle tears the victim's threads down mid-batch,\n"
      "truncates the WAL's torn tail, replays the survivors and re-runs\n"
      "the paper's recovery over the live transport. checks = atomicity\n"
      "and Definition-2 safe state over the merged cross-crash history.\n\n");
  WriteLiveCrashJson(cells, opts, "BENCH_live_crash.json");
  bool all_correct = true;
  for (const LiveCell& c : cells) all_correct = all_correct && c.correct;
  return all_correct;
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  bool live = false;
  prany::LiveBenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--runtime=live") == 0) {
      live = true;
    } else if (std::strcmp(arg, "--runtime=sim") == 0) {
      live = false;
    } else if (std::strncmp(arg, "--duration-ms=", 14) == 0) {
      opts.duration_us = std::strtoull(arg + 14, nullptr, 10) * 1000;
      opts.duration_set = true;
    } else if (std::strncmp(arg, "--crash-every-ms=", 17) == 0) {
      opts.crash_every_us = std::strtoull(arg + 17, nullptr, 10) * 1000;
      if (opts.crash_every_us == 0) {
        std::fprintf(stderr, "--crash-every-ms must be > 0\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--transport=", 12) == 0) {
      opts.socket_transport = arg + 12;
      if (opts.socket_transport != "uds" && opts.socket_transport != "tcp") {
        std::fprintf(stderr, "--transport must be uds or tcp\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--latency-smoke=", 16) == 0) {
      opts.latency_smoke_baseline = arg + 16;
      live = true;
    } else if (std::strncmp(arg, "--log-dir=", 10) == 0) {
      opts.log_dir = arg + 10;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      opts.workers = static_cast<int>(std::strtol(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--gc-window-us=", 15) == 0) {
      opts.window_us = std::strtoull(arg + 15, nullptr, 10);
    } else if (std::strncmp(arg, "--gc-trigger=", 13) == 0) {
      opts.trigger = std::strtoull(arg + 13, nullptr, 10);
    } else if (std::strncmp(arg, "--sites=", 8) == 0) {
      opts.sites = static_cast<int>(std::strtol(arg + 8, nullptr, 10));
      if (opts.sites < 3) {
        std::fprintf(stderr, "--sites must be >= 3\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--clients=", 10) == 0) {
      opts.client_counts.clear();
      for (const char* p = arg + 10; *p != '\0';) {
        char* end = nullptr;
        long n = std::strtol(p, &end, 10);
        if (end == p || n <= 0) {
          std::fprintf(stderr, "bad --clients list: %s\n", arg + 10);
          return 2;
        }
        opts.client_counts.push_back(static_cast<int>(n));
        p = (*end == ',') ? end + 1 : end;
      }
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (expect --runtime=sim|live "
                   "--transport=uds|tcp --duration-ms=N --crash-every-ms=N "
                   "--latency-smoke=BASELINE.json --log-dir=DIR --workers=N "
                   "--gc-window-us=N --gc-trigger=N --sites=N "
                   "--clients=A,B,C)\n",
                   arg);
      return 2;
    }
  }
  if (opts.crash_every_us > 0 && !live) {
    std::fprintf(stderr, "--crash-every-ms needs --runtime=live\n");
    return 2;
  }
  if (live) {
    mkdir(opts.log_dir.c_str(), 0755);
    if (!opts.latency_smoke_baseline.empty()) {
      return prany::RunLatencySmoke(opts) ? 0 : 1;
    }
    if (opts.crash_every_us > 0) {
      return prany::RunLiveCrash(opts) ? 0 : 1;
    }
    prany::RunLive(opts);
  } else {
    prany::Run();
  }
  return 0;
}
