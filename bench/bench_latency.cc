// Experiment E9: commit-processing latency vs. participant count.
//
// Reports, per protocol and outcome, the simulated time from BeginCommit
// to (a) the decision being durable and (b) the coordinator forgetting
// the transaction, with a 1ms forced-write cost and 500us one-way network
// latency. Expected shapes: decision latency is protocol-independent
// (same voting phase) except for PrC/PrAny's initiation record; completion
// latency is dominated by whether acknowledgments (behind forced
// participant writes) are awaited — PrC commits and PrA aborts complete
// at decision time.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "harness/scenario.h"
#include "harness/observability.h"

namespace prany {
namespace {

constexpr SimDuration kForcedWriteUs = 1'000;

void Run() {
  std::printf("== bench_latency: decision / completion latency (us), "
              "forced write = 1ms, one-way latency = 500us ==\n\n");
  struct Config {
    const char* label;
    ProtocolKind coordinator;
    std::vector<ProtocolKind> cycle;
  };
  const std::vector<Config> configs = {
      {"PrN", ProtocolKind::kPrN, {ProtocolKind::kPrN}},
      {"PrA", ProtocolKind::kPrA, {ProtocolKind::kPrA}},
      {"PrC", ProtocolKind::kPrC, {ProtocolKind::kPrC}},
      {"PrAny(mix)", ProtocolKind::kPrAny,
       {ProtocolKind::kPrA, ProtocolKind::kPrC, ProtocolKind::kPrN}},
  };

  for (Outcome outcome : {Outcome::kCommit, Outcome::kAbort}) {
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> header = {"protocol"};
    const std::vector<size_t> ns = {1, 2, 4, 8, 16};
    for (size_t n : ns) {
      header.push_back(StrFormat("n=%zu decide", n));
      header.push_back(StrFormat("n=%zu forget", n));
    }
    rows.push_back(header);
    for (const Config& config : configs) {
      std::vector<std::string> row = {config.label};
      for (size_t n : ns) {
        std::vector<ProtocolKind> participants;
        for (size_t i = 0; i < n; ++i) {
          participants.push_back(config.cycle[i % config.cycle.size()]);
        }
        FlowResult r = RunFlow(config.coordinator, ProtocolKind::kPrN,
                               participants, outcome, /*seed=*/1,
                               kForcedWriteUs);
        row.push_back(StrFormat("%.0f", r.decision_latency_us));
        row.push_back(StrFormat("%.0f", r.completion_latency_us));
      }
      rows.push_back(row);
    }
    std::printf("%s case:\n%s\n", ToString(outcome).c_str(),
                RenderTable(rows).c_str());
  }

  std::printf(
      "Reading guide: 'decide' = BeginCommit -> decision durable;\n"
      "'forget' = BeginCommit -> protocol-table entry deleted. PrC commit\n"
      "and PrA abort forget at decision time (no acks); PrN waits for\n"
      "acknowledgments behind every participant's forced decision write;\n"
      "PrAny matches the cheap side per outcome plus the forced\n"
      "initiation record up front.\n");
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  prany::Run();
  return 0;
}
