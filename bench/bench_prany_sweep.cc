// Experiment E7 (Theorem 3 measured): the exhaustive crash-point sweep,
// head to head across coordinator strategies.
//
// For each coordinator, runs one single-transaction scenario per
// (participant mix x outcome x crash point x crash target) over the
// standard mixes and reports how many scenarios failed each correctness
// criterion. Expected shape: PrAny all-zero (Theorem 3); U2PC with
// non-zero atomicity failures (Theorem 1); C2PC with zero atomicity but
// non-zero operational failures (Theorem 2).

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "harness/scenario.h"
#include "harness/observability.h"

namespace prany {
namespace {

void Run() {
  std::printf("== bench_prany_sweep: exhaustive crash sweep over the "
              "standard participant mixes ==\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"coordinator", "scenarios", "atomicity fail",
                  "safe-state fail", "operational fail", "non-quiescent"});
  struct V {
    const char* label;
    ProtocolKind kind;
    ProtocolKind native;
  };
  for (const V& v : {V{"PrAny", ProtocolKind::kPrAny, ProtocolKind::kPrN},
                     V{"U2PC(PrN)", ProtocolKind::kU2PC, ProtocolKind::kPrN},
                     V{"U2PC(PrA)", ProtocolKind::kU2PC, ProtocolKind::kPrA},
                     V{"U2PC(PrC)", ProtocolKind::kU2PC, ProtocolKind::kPrC},
                     V{"C2PC", ProtocolKind::kC2PC, ProtocolKind::kPrN}}) {
    SweepResult s = RunCrashSweep(v.kind, v.native, StandardMixes());
    rows.push_back({v.label, std::to_string(s.scenarios),
                    std::to_string(s.atomicity_failures),
                    std::to_string(s.safe_state_failures),
                    std::to_string(s.operational_failures),
                    std::to_string(s.non_quiescent)});
  }
  std::printf("%s\n", RenderTable(rows).c_str());
  std::printf(
      "Each scenario: one transaction, one injected crash at a named\n"
      "protocol point (5 coordinator points, 6 per participant), the\n"
      "crashed site down for 1s, run to quiescence, all three checkers\n"
      "evaluated. PrAny must be all-zero (Theorem 3); U2PC rows show\n"
      "Theorem 1; the C2PC row shows Theorem 2 (operational only).\n"
      "Note U2PC/C2PC sweeps include homogeneous mixes, where they are\n"
      "correct — the failures concentrate in the mixed-presumption rows.\n");
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  prany::Run();
  return 0;
}
