// Experiment E12: what the §4.1 dynamic protocol selection saves.
//
// Runs homogeneous workloads (all-PrN, all-PrA, all-PrC) and a mixed
// workload under (a) PrAny with the selector and (b) PrAny forced into
// mixed mode for every transaction, comparing forced log writes and
// messages per transaction. Expected shape: on homogeneous sets the
// selector recovers the native protocol's cost exactly — most visibly the
// skipped forced initiation record for PrN/PrA sets — while on mixed sets
// the two configurations coincide.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "harness/run_result.h"
#include "harness/workload.h"
#include "harness/observability.h"

namespace prany {
namespace {

struct AblationResult {
  double msgs_per_txn;
  double forced_per_txn;
  double records_per_txn;
  bool correct;
};

AblationResult RunConfig(ProtocolKind participant_protocol, bool mixed_pool,
                         bool always_mixed_mode) {
  SystemConfig cfg;
  cfg.seed = 33;
  System system(cfg);
  CoordinatorSpec spec;
  spec.kind = ProtocolKind::kPrAny;
  spec.prany_always_mixed_mode = always_mixed_mode;
  system.AddSiteWithSpec(ProtocolKind::kPrN, spec);
  if (mixed_pool) {
    system.AddSite(ProtocolKind::kPrN);
    system.AddSite(ProtocolKind::kPrA);
    system.AddSite(ProtocolKind::kPrC);
    system.AddSite(ProtocolKind::kPrA);
  } else {
    for (int i = 0; i < 4; ++i) system.AddSite(participant_protocol);
  }

  WorkloadConfig wl;
  wl.num_txns = 300;
  wl.min_participants = 2;
  wl.max_participants = 4;
  wl.no_vote_probability = 0.2;
  wl.coordinators = {0};
  wl.participant_pool = {1, 2, 3, 4};
  WorkloadGenerator gen(&system, wl);
  gen.GenerateAndSchedule();
  system.Run();
  RunSummary s = Summarize(system);
  double txns = static_cast<double>(s.txns_begun);
  return AblationResult{
      static_cast<double>(s.messages_total) / txns,
      static_cast<double>(s.forced_appends) / txns,
      static_cast<double>(s.log_appends) / txns,
      s.AllCorrect()};
}

void Run() {
  std::printf("== bench_selector_ablation: PrAny with vs. without the "
              "Section 4.1 protocol selector (300 txns, 20%% aborts) ==\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"participant set", "config", "msgs/txn",
                  "forced writes/txn", "log records/txn", "checks"});
  struct Case {
    const char* label;
    ProtocolKind protocol;
    bool mixed;
  };
  for (const Case& c :
       {Case{"all PrN", ProtocolKind::kPrN, false},
        Case{"all PrA", ProtocolKind::kPrA, false},
        Case{"all PrC", ProtocolKind::kPrC, false},
        Case{"mixed PrN/PrA/PrC", ProtocolKind::kPrN, true}}) {
    for (bool always_mixed : {false, true}) {
      AblationResult r = RunConfig(c.protocol, c.mixed, always_mixed);
      rows.push_back({c.label,
                      always_mixed ? "always-PrAny-mode" : "with selector",
                      StrFormat("%.2f", r.msgs_per_txn),
                      StrFormat("%.2f", r.forced_per_txn),
                      StrFormat("%.2f", r.records_per_txn),
                      r.correct ? "ok" : "FAIL"});
    }
  }
  std::printf("%s\n", RenderTable(rows).c_str());
  std::printf(
      "The selector's saving is the homogeneous rows' delta: pure PrN/PrA\n"
      "sets skip the forced initiation record entirely, and pure-mode ack\n"
      "sets match the native protocol. Mixed rows coincide by design.\n");
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  prany::Run();
  return 0;
}
