// Wall-clock microbenchmarks of the substrate (google-benchmark): event
// loop throughput, message/log-record codecs, stable-log appends, and
// end-to-end simulated transactions per wall second. These gate the
// simulator itself — the protocol experiments above report *simulated*
// cost, this one reports what the harness costs to run.

#include <benchmark/benchmark.h>

#include "harness/system.h"
#include "net/message.h"
#include "sim/simulator.h"
#include "wal/log_record.h"
#include "harness/observability.h"
#include "wal/stable_log.h"

namespace prany {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(1);
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.Schedule(static_cast<SimDuration>(i % 97), [&sink]() { ++sink; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1'000)->Arg(10'000);

void BM_MessageEncode(benchmark::State& state) {
  Message msg = Message::Decision(123456, 3, 9, Outcome::kCommit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.Encode());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageEncode);

void BM_MessageDecode(benchmark::State& state) {
  std::vector<uint8_t> wire =
      Message::Decision(123456, 3, 9, Outcome::kCommit).Encode();
  for (auto _ : state) {
    Result<Message> decoded = Message::Decode(wire);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageDecode);

void BM_LogRecordRoundTrip(benchmark::State& state) {
  std::vector<ParticipantInfo> participants;
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    participants.push_back({i, static_cast<ProtocolKind>(i % 3)});
  }
  LogRecord rec =
      LogRecord::Initiation(42, ProtocolKind::kPrAny, participants);
  for (auto _ : state) {
    Result<LogRecord> decoded = LogRecord::Decode(rec.Encode());
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogRecordRoundTrip)->Arg(2)->Arg(16)->Arg(128);

void BM_StableLogAppendForced(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    StableLog log;
    state.ResumeTiming();
    for (int i = 0; i < 1'000; ++i) {
      log.Append(LogRecord::Commit(static_cast<TxnId>(i)), /*force=*/true);
    }
    benchmark::DoNotOptimize(log.StableSize());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_StableLogAppendForced);

void BM_EndToEndTransactions(benchmark::State& state) {
  // Simulated transactions fully processed (PrAny, 3 mixed participants)
  // per wall second.
  for (auto _ : state) {
    SystemConfig cfg;
    cfg.seed = 1;
    System system(cfg);
    system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
    system.AddSite(ProtocolKind::kPrN);
    system.AddSite(ProtocolKind::kPrA);
    system.AddSite(ProtocolKind::kPrC);
    for (int i = 0; i < state.range(0); ++i) {
      system.Submit(0, {1, 2, 3});
    }
    system.Run();
    benchmark::DoNotOptimize(system.metrics().Get("coord.forget"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EndToEndTransactions)->Arg(100)->Arg(1'000);

}  // namespace
}  // namespace prany

// Expanded BENCHMARK_MAIN so the shared --trace-json / --metrics-json
// flags are stripped before google-benchmark sees the argument list.
int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
