// Experiments E1-E4: the paper's protocol figures as executable traces.
//
// For each of Figures 2 (PrN), 3 (PrA), 4 (PrC) and 1 (PrAny over the
// paper's {PrA, PrC} mix), runs the commit and abort flows with two
// participants and prints the measured message counts and coordinator/
// participant log activity. These are the numbers a reader would count
// off the arrows and boxes of each figure.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "harness/scenario.h"
#include "harness/observability.h"

namespace prany {
namespace {

void PrintFlow(const std::string& label,
               const std::vector<ProtocolKind>& participants,
               ProtocolKind coordinator, ProtocolKind native) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"outcome", "mode", "PREPARE", "VOTE", "DECISION", "ACK",
                  "coord appends(forced)", "part appends(forced)",
                  "decide us", "forget us", "checks"});
  for (Outcome outcome : {Outcome::kCommit, Outcome::kAbort}) {
    FlowResult r = RunFlow(coordinator, native, participants, outcome);
    auto msg = [&](const char* type) {
      auto it = r.messages.find(type);
      return it == r.messages.end() ? int64_t{0} : it->second;
    };
    rows.push_back(
        {ToString(outcome), ToString(r.mode),
         std::to_string(msg("PREPARE")), std::to_string(msg("VOTE")),
         std::to_string(msg("DECISION")), std::to_string(msg("ACK")),
         StrFormat("%llu(%llu)",
                   static_cast<unsigned long long>(r.coord_appends),
                   static_cast<unsigned long long>(r.coord_forced)),
         StrFormat("%llu(%llu)",
                   static_cast<unsigned long long>(r.part_appends),
                   static_cast<unsigned long long>(r.part_forced)),
         StrFormat("%.0f", r.decision_latency_us),
         StrFormat("%.0f", r.completion_latency_us),
         r.correct ? "ok" : "FAIL"});
  }
  std::printf("%s\n%s\n", label.c_str(), RenderTable(rows).c_str());
}

void Run() {
  std::printf("== bench_protocol_flows: Figures 1-4 as measured traces "
              "(2 participants, 500us one-way latency) ==\n\n");
  PrintFlow("Figure 2 - basic 2PC / presumed nothing (PrN x PrN):",
            {ProtocolKind::kPrN, ProtocolKind::kPrN}, ProtocolKind::kPrN,
            ProtocolKind::kPrN);
  PrintFlow("Figure 3 - presumed abort (PrA x PrA):",
            {ProtocolKind::kPrA, ProtocolKind::kPrA}, ProtocolKind::kPrA,
            ProtocolKind::kPrA);
  PrintFlow("Figure 4 - presumed commit (PrC x PrC):",
            {ProtocolKind::kPrC, ProtocolKind::kPrC}, ProtocolKind::kPrC,
            ProtocolKind::kPrC);
  PrintFlow("Figure 1 - presumed any over the paper's mix (PrA + PrC):",
            {ProtocolKind::kPrA, ProtocolKind::kPrC}, ProtocolKind::kPrAny,
            ProtocolKind::kPrN);
  PrintFlow("Figure 1 extended - presumed any over PrN + PrA + PrC:",
            {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC},
            ProtocolKind::kPrAny, ProtocolKind::kPrN);
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  prany::Run();
  return 0;
}
