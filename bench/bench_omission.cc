// Experiment E14 (derived): the price of unreliability — per-transaction
// overhead of PrAny as the message-loss rate grows.
//
// Lost messages are absorbed by decision retransmission (push) and
// in-doubt inquiries answered from the table or by presumption (pull).
// Expected shape: messages/txn and completion latency grow smoothly with
// the loss rate; correctness is flat green. Also prints the exhaustive
// single-omission sweep verdicts per protocol (the qualitative result:
// only U2PC's mismatched-presumption direction breaks).

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "harness/run_result.h"
#include "harness/scenario.h"
#include "harness/workload.h"
#include "harness/observability.h"

namespace prany {
namespace {

void LossRateSweep() {
  std::printf("Loss-rate sweep: PrAny over PrN/PrA/PrC participants, "
              "300 mixed txns per point:\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"loss", "msgs/txn", "resends/txn", "inquiries/txn",
                  "commit p95 us", "checks"});
  for (double p : {0.0, 0.02, 0.05, 0.10, 0.20, 0.30}) {
    SystemConfig cfg;
    cfg.seed = 71;
    cfg.drop_probability = p;
    cfg.max_events = 50'000'000;
    System system(cfg);
    system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
    system.AddSite(ProtocolKind::kPrN);
    system.AddSite(ProtocolKind::kPrA);
    system.AddSite(ProtocolKind::kPrC);
    system.AddSite(ProtocolKind::kPrA);
    WorkloadConfig wl;
    wl.num_txns = 300;
    wl.min_participants = 2;
    wl.max_participants = 4;
    wl.no_vote_probability = 0.15;
    wl.coordinators = {0};
    wl.participant_pool = {1, 2, 3, 4};
    WorkloadGenerator gen(&system, wl);
    gen.GenerateAndSchedule();
    system.Run();
    RunSummary s = Summarize(system);
    double txns = static_cast<double>(s.txns_begun);
    rows.push_back(
        {StrFormat("%.0f%%", p * 100),
         StrFormat("%.1f", static_cast<double>(s.messages_total) / txns),
         StrFormat("%.2f", static_cast<double>(s.decision_resends) / txns),
         StrFormat("%.2f",
                   static_cast<double>(s.messages_by_type["INQUIRY"]) /
                       txns),
         StrFormat("%.0f", s.commit_latency.p95),
         s.AllCorrect() ? "ok" : "FAIL"});
  }
  std::printf("%s\n", RenderTable(rows).c_str());
}

void OmissionVerdicts() {
  std::printf("Exhaustive single-omission sweeps (drop each message of "
              "the flow in its own run):\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"configuration", "outcome", "runs", "violations"});
  struct Case {
    const char* label;
    ProtocolKind kind;
    ProtocolKind native;
    std::vector<ProtocolKind> mix;
  };
  const std::vector<Case> cases = {
      {"PrN homogeneous", ProtocolKind::kPrN, ProtocolKind::kPrN,
       {ProtocolKind::kPrN, ProtocolKind::kPrN}},
      {"PrA homogeneous", ProtocolKind::kPrA, ProtocolKind::kPrA,
       {ProtocolKind::kPrA, ProtocolKind::kPrA}},
      {"PrC homogeneous", ProtocolKind::kPrC, ProtocolKind::kPrC,
       {ProtocolKind::kPrC, ProtocolKind::kPrC}},
      {"PrAny {PrA,PrC}", ProtocolKind::kPrAny, ProtocolKind::kPrN,
       {ProtocolKind::kPrA, ProtocolKind::kPrC}},
      {"U2PC(PrC) {PrA,PrC}", ProtocolKind::kU2PC, ProtocolKind::kPrC,
       {ProtocolKind::kPrA, ProtocolKind::kPrC}},
  };
  for (const Case& c : cases) {
    for (Outcome outcome : {Outcome::kCommit, Outcome::kAbort}) {
      SweepResult sweep =
          RunSingleOmissionSweep(c.kind, c.native, c.mix, outcome);
      rows.push_back({c.label, ToString(outcome),
                      std::to_string(sweep.scenarios),
                      std::to_string(sweep.atomicity_failures)});
    }
  }
  std::printf("%s", RenderTable(rows).c_str());
  std::printf(
      "\nOnly U2PC's mismatched-presumption direction (abort under a\n"
      "PrC-native coordinator) violates — Theorem 1 without any crash.\n");
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  std::printf("== bench_omission: message-loss overhead and single-"
              "omission verdicts ==\n\n");
  prany::LossRateSweep();
  prany::OmissionVerdicts();
  return 0;
}
