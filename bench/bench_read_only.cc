// Experiment E13 (extension, §5): what the read-only optimization saves.
//
// Sweeps the fraction of read-only participants in a PrAny-coordinated
// mixed federation and reports messages, forced writes and log records
// per transaction. Expected shape: every cost column falls roughly
// linearly with the read-only fraction; the fully-read-only row skips the
// decision phase entirely (one forced initiation record is the whole
// footprint). Correctness checks stay green throughout.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "harness/run_result.h"
#include "harness/system.h"
#include "harness/observability.h"

namespace prany {
namespace {

void Run() {
  std::printf("== bench_read_only: R*-style read-only optimization under a "
              "PrAny coordinator (4 participants, 200 txns each) ==\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"read-only members", "msgs/txn", "forced/txn",
                  "records/txn", "decisions/txn", "acks/txn", "checks"});
  for (int ro_members = 0; ro_members <= 4; ++ro_members) {
    SystemConfig cfg;
    cfg.seed = 61;
    System system(cfg);
    system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
    system.AddSite(ProtocolKind::kPrN);
    system.AddSite(ProtocolKind::kPrA);
    system.AddSite(ProtocolKind::kPrC);
    system.AddSite(ProtocolKind::kPrA);
    constexpr int kTxns = 200;
    for (int i = 0; i < kTxns; ++i) {
      std::map<SiteId, Vote> votes;
      for (int m = 0; m < ro_members; ++m) {
        votes[static_cast<SiteId>(1 + m)] = Vote::kReadOnly;
      }
      system.Submit(0, {1, 2, 3, 4}, votes);
    }
    system.Run();
    RunSummary s = Summarize(system);
    double txns = static_cast<double>(kTxns);
    rows.push_back(
        {std::to_string(ro_members) + "/4",
         StrFormat("%.2f", static_cast<double>(s.messages_total) / txns),
         StrFormat("%.2f", static_cast<double>(s.forced_appends) / txns),
         StrFormat("%.2f", static_cast<double>(s.log_appends) / txns),
         StrFormat("%.2f",
                   static_cast<double>(s.messages_by_type["DECISION"]) /
                       txns),
         StrFormat("%.2f", static_cast<double>(s.messages_by_type["ACK"]) /
                               txns),
         s.AllCorrect() ? "ok" : "FAIL"});
  }
  std::printf("%s\n", RenderTable(rows).c_str());
  std::printf(
      "Each read-only member saves its forced prepared record, its\n"
      "decision message, its commit record and (for PrN/PrA members) its\n"
      "acknowledgment; the 4/4 row keeps only PREPARE + read-only votes\n"
      "plus the coordinator's initiation record.\n");
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  prany::Run();
  return 0;
}
