// Experiment E5: atomicity-violation rates under the §2 / Theorem 1
// adversarial schedules, across coordinator variants.
//
// Part 1 runs the paper's exact counterexamples (coordinator native
// protocol x outcome, participants {PrA, PrC}, decision-window crash of
// the non-acknowledging participant) and reports which violate.
// Part 2 is a randomized campaign: many seeds of a mixed workload with
// random decision-window crashes, reporting the fraction of transactions
// whose atomicity broke. Expected shape: U2PC > 0 exactly on the
// mismatched-presumption cases; PrAny and C2PC identically zero (C2PC
// paying with unbounded protocol-table residue instead).

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "harness/run_result.h"
#include "harness/scenario.h"
#include "harness/workload.h"
#include "harness/observability.h"

namespace prany {
namespace {

void DeterministicSchedules() {
  std::printf("Part 1: the paper's deterministic schedules "
              "(participants {PrA, PrC}):\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"coordinator", "outcome", "atomicity", "safe state",
                  "operational", "matches paper"});
  struct Case {
    const char* label;
    ProtocolKind kind;
    ProtocolKind native;
    Outcome outcome;
    bool expect_violation;  // Theorem 1 parts I-III
  };
  const std::vector<Case> cases = {
      {"U2PC(PrN)", ProtocolKind::kU2PC, ProtocolKind::kPrN,
       Outcome::kCommit, true},   // Part I
      {"U2PC(PrA)", ProtocolKind::kU2PC, ProtocolKind::kPrA,
       Outcome::kCommit, true},   // Part II
      {"U2PC(PrC)", ProtocolKind::kU2PC, ProtocolKind::kPrC,
       Outcome::kAbort, true},    // Part III
      {"U2PC(PrN)", ProtocolKind::kU2PC, ProtocolKind::kPrN,
       Outcome::kAbort, false},   // agreeing presumption
      {"U2PC(PrC)", ProtocolKind::kU2PC, ProtocolKind::kPrC,
       Outcome::kCommit, false},  // agreeing presumption
      {"C2PC", ProtocolKind::kC2PC, ProtocolKind::kPrN, Outcome::kCommit,
       false},
      {"C2PC", ProtocolKind::kC2PC, ProtocolKind::kPrN, Outcome::kAbort,
       false},
      {"PrAny", ProtocolKind::kPrAny, ProtocolKind::kPrN, Outcome::kCommit,
       false},
      {"PrAny", ProtocolKind::kPrAny, ProtocolKind::kPrN, Outcome::kAbort,
       false},
  };
  for (const Case& c : cases) {
    ScenarioResult r =
        RunIncompatiblePresumptionScenario(c.kind, c.native, c.outcome);
    bool violated = !r.summary.atomicity.ok();
    rows.push_back({c.label, ToString(c.outcome),
                    violated ? "VIOLATED" : "ok",
                    r.summary.safe_state.ok() ? "ok" : "VIOLATED",
                    r.summary.operational.ok() ? "ok" : "FAILED",
                    violated == c.expect_violation ? "yes" : "NO"});
  }
  std::printf("%s\n", RenderTable(rows).c_str());
}

void RandomizedCampaign() {
  std::printf("Part 2: randomized campaign — 40 seeds x 30 mixed txns, "
              "random decision-window crashes (p=0.03, long outages):\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"coordinator", "txns", "violated txns", "rate",
                  "residual entries", "presumed answers"});
  struct V {
    const char* label;
    ProtocolKind kind;
    ProtocolKind native;
  };
  for (const V& v : {V{"U2PC(PrN)", ProtocolKind::kU2PC, ProtocolKind::kPrN},
                     V{"U2PC(PrC)", ProtocolKind::kU2PC, ProtocolKind::kPrC},
                     V{"C2PC", ProtocolKind::kC2PC, ProtocolKind::kPrN},
                     V{"PrAny", ProtocolKind::kPrAny, ProtocolKind::kPrN}}) {
    uint64_t txns = 0, violated = 0, residual = 0;
    int64_t presumed = 0;
    for (uint64_t seed = 1; seed <= 40; ++seed) {
      SystemConfig cfg;
      cfg.seed = seed;
      cfg.max_events = 5'000'000;
      System system(cfg);
      system.AddSite(ProtocolKind::kPrN, v.kind, v.native);
      system.AddSite(ProtocolKind::kPrA);
      system.AddSite(ProtocolKind::kPrA);
      system.AddSite(ProtocolKind::kPrC);
      system.AddSite(ProtocolKind::kPrC);
      system.injector().SetRandomCrashes(0.03, 300'000, 900'000);
      system.injector().SetRandomCrashBudget(6);
      WorkloadConfig wl;
      wl.num_txns = 30;
      wl.min_participants = 2;
      wl.max_participants = 4;
      wl.no_vote_probability = 0.3;
      wl.coordinators = {0};
      wl.participant_pool = {1, 2, 3, 4};
      WorkloadGenerator gen(&system, wl);
      gen.GenerateAndSchedule();
      system.Run();
      RunSummary s = Summarize(system);
      txns += static_cast<uint64_t>(s.txns_begun);
      violated += s.atomicity.violations.size();
      residual += s.residual_table_entries;
      presumed += s.presumed_answers;
    }
    rows.push_back({v.label, std::to_string(txns),
                    std::to_string(violated),
                    StrFormat("%.2f%%", 100.0 * static_cast<double>(violated) /
                                            static_cast<double>(txns)),
                    std::to_string(residual), std::to_string(presumed)});
  }
  std::printf("%s\n", RenderTable(rows).c_str());
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  std::printf("== bench_violation_rates: Theorem 1 measured ==\n\n");
  prany::DeterministicSchedules();
  prany::RandomizedCampaign();
  return 0;
}
