// Experiment E8: the analytic cost table implied by Figures 1-4.
//
// For every protocol (PrN, PrA, PrC homogeneous; PrAny over mixed sets)
// and both outcomes, sweeps the participant count and reports messages,
// forced log writes and total log records per transaction. Expected
// shapes: PrC cheapest on commits (no commit acks, lazy participant
// commit records), PrA cheapest on aborts (nothing logged, no acks);
// PrAny tracks the cheaper native side per outcome, paying one forced
// initiation record for mixed sets.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "harness/scenario.h"
#include "harness/observability.h"

namespace prany {
namespace {

struct Config {
  const char* label;
  ProtocolKind coordinator;
  ProtocolKind native;
  // Per-participant protocol chosen by index (cycled).
  std::vector<ProtocolKind> cycle;
};

void Run() {
  const std::vector<Config> configs = {
      {"PrN (homogeneous)", ProtocolKind::kPrN, ProtocolKind::kPrN,
       {ProtocolKind::kPrN}},
      {"PrA (homogeneous)", ProtocolKind::kPrA, ProtocolKind::kPrA,
       {ProtocolKind::kPrA}},
      {"PrC (homogeneous)", ProtocolKind::kPrC, ProtocolKind::kPrC,
       {ProtocolKind::kPrC}},
      {"PrAny (PrA+PrC mix)", ProtocolKind::kPrAny, ProtocolKind::kPrN,
       {ProtocolKind::kPrA, ProtocolKind::kPrC}},
      {"PrAny (PrN+PrA+PrC mix)", ProtocolKind::kPrAny, ProtocolKind::kPrN,
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}},
  };
  const std::vector<size_t> participant_counts = {2, 4, 8, 16};

  std::printf("== bench_cost_table: per-transaction cost by protocol, "
              "outcome and participant count n ==\n\n");
  for (const Config& config : configs) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"outcome", "n", "messages", "forced writes",
                    "log records", "coord forced", "checks"});
    for (Outcome outcome : {Outcome::kCommit, Outcome::kAbort}) {
      for (size_t n : participant_counts) {
        std::vector<ProtocolKind> participants;
        for (size_t i = 0; i < n; ++i) {
          participants.push_back(config.cycle[i % config.cycle.size()]);
        }
        FlowResult r =
            RunFlow(config.coordinator, config.native, participants, outcome);
        rows.push_back(
            {ToString(outcome), std::to_string(n),
             std::to_string(r.total_messages),
             std::to_string(r.coord_forced + r.part_forced),
             std::to_string(r.coord_appends + r.part_appends),
             std::to_string(r.coord_forced), r.correct ? "ok" : "FAIL"});
      }
    }
    std::printf("%s\n%s\n", config.label, RenderTable(rows).c_str());
  }

  // The summary comparison the paper's appendix argues over, at n = 4.
  std::printf("Head-to-head at n=4 (messages + forced writes):\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"protocol", "commit cost", "abort cost"});
  for (const Config& config : configs) {
    std::vector<ProtocolKind> participants;
    for (size_t i = 0; i < 4; ++i) {
      participants.push_back(config.cycle[i % config.cycle.size()]);
    }
    auto cost = [&](Outcome o) {
      FlowResult r =
          RunFlow(config.coordinator, config.native, participants, o);
      return r.total_messages +
             static_cast<int64_t>(r.coord_forced + r.part_forced);
    };
    rows.push_back({config.label, std::to_string(cost(Outcome::kCommit)),
                    std::to_string(cost(Outcome::kAbort))});
  }
  std::printf("%s\n", RenderTable(rows).c_str());
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  prany::Run();
  return 0;
}
