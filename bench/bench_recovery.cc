// Experiment E11: coordinator crash-recovery cost (§4.2) vs. the number
// of transactions in flight at the moment of the crash.
//
// A burst of mixed transactions is started, the coordinator is crashed
// mid-decision-phase, and we measure: transactions re-initiated from the
// log, recovery-driven decision messages, inquiry traffic from in-doubt
// participants, and the simulated time from recovery until the system
// quiesces. Expected shape: all four grow linearly with the in-flight
// count; correctness holds at every size.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "harness/run_result.h"
#include "harness/system.h"
#include "harness/observability.h"

namespace prany {
namespace {

void Run() {
  std::printf("== bench_recovery: PrAny coordinator crash with N "
              "transactions in flight ==\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"in-flight txns", "reinitiated", "inquiries",
                  "resends", "drain us", "messages total", "checks"});
  for (int n : {1, 5, 10, 25, 50, 100}) {
    SystemConfig cfg;
    cfg.seed = 21;
    cfg.max_events = 20'000'000;
    System system(cfg);
    system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
    system.AddSite(ProtocolKind::kPrN);
    system.AddSite(ProtocolKind::kPrA);
    system.AddSite(ProtocolKind::kPrC);
    for (int i = 0; i < n; ++i) {
      system.Submit(0, {1, 2, 3});
    }
    // All transactions decide (commit record durable) at t=1000; crash the
    // coordinator right then, before acks can complete anything, and bring
    // it back 50ms later.
    system.ScheduleCrash(0, /*when=*/1'100, /*downtime=*/50'000);
    RunStats stats = system.Run();
    RunSummary s = Summarize(system);
    SimTime recovered_at = 1'100 + 50'000;
    SimTime drain = stats.end_time > recovered_at
                        ? stats.end_time - recovered_at
                        : 0;
    rows.push_back(
        {std::to_string(n),
         std::to_string(system.metrics().Get("coord.recovery_reinitiate")),
         std::to_string(system.metrics().Get("net.msg.INQUIRY")),
         std::to_string(s.decision_resends),
         std::to_string(drain),
         std::to_string(s.messages_total),
         s.AllCorrect() ? "ok" : "FAIL"});
  }
  std::printf("%s\n", RenderTable(rows).c_str());

  std::printf("Crash-timing sweep at 25 in-flight txns (when the crash "
              "lands relative to the protocol):\n");
  std::vector<std::vector<std::string>> trows;
  trows.push_back({"crash at us", "phase hit", "reinitiated",
                   "presumed answers", "checks"});
  struct Timing {
    SimTime when;
    const char* phase;
  };
  for (const Timing& t :
       {Timing{300, "voting (initiations logged)"},
        Timing{1'100, "decision logged, acks pending"},
        Timing{2'600, "after completion"}}) {
    SystemConfig cfg;
    cfg.seed = 22;
    cfg.max_events = 20'000'000;
    System system(cfg);
    system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
    system.AddSite(ProtocolKind::kPrN);
    system.AddSite(ProtocolKind::kPrA);
    system.AddSite(ProtocolKind::kPrC);
    for (int i = 0; i < 25; ++i) system.Submit(0, {1, 2, 3});
    system.ScheduleCrash(0, t.when, 50'000);
    system.Run();
    RunSummary s = Summarize(system);
    trows.push_back(
        {std::to_string(t.when), t.phase,
         std::to_string(system.metrics().Get("coord.recovery_reinitiate")),
         std::to_string(s.presumed_answers),
         s.AllCorrect() ? "ok" : "FAIL"});
  }
  std::printf("%s\n", RenderTable(trows).c_str());
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::ObservabilityScope observability(&argc, argv);
  prany::Run();
  return 0;
}
