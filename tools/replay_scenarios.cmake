# Replays every scenario file the model-checker gate emitted and fails if
# any does not reproduce its recorded violation. Run as a ctest script so
# the glob happens after the gate test wrote its artifacts.
if(NOT DEFINED PRANY_CHECK OR NOT DEFINED SCENARIO_DIR)
  message(FATAL_ERROR "usage: cmake -DPRANY_CHECK=... -DSCENARIO_DIR=... -P replay_scenarios.cmake")
endif()

file(GLOB scenarios "${SCENARIO_DIR}/*.scenario")
if(NOT scenarios)
  message(FATAL_ERROR "no scenario files in ${SCENARIO_DIR} (did the gate test run?)")
endif()

foreach(scenario IN LISTS scenarios)
  execute_process(COMMAND "${PRANY_CHECK}" --replay "${scenario}"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  message(STATUS "${out}")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "replay of ${scenario} failed (exit ${rc}): ${out}${err}")
  endif()
endforeach()
list(LENGTH scenarios n)
message(STATUS "replayed ${n} scenario(s) OK")
