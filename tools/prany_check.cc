// prany_check — bounded exhaustive model checker for the commit protocols.
//
// Explores all message delivery orders, loss/duplication choices and
// crash-point injections of bounded configurations, checking every
// execution against the invariant oracles (atomicity, safe state, WAL
// discipline, operational correctness, determinism). Violations are
// minimized and emitted as replayable scenario files.
//
// Examples:
//   # rediscover the paper's Theorem 1 violations, no hand-written schedule:
//   prany_check --protocol u2pc --participants 2 --depth-budget small
//               --expect theorem1
//
//   # verify PrAny is clean at the same budget, saving artifacts:
//   prany_check --protocol prany --participants 2 --depth-budget small
//               --expect clean --out out/mc
//
//   # replay an emitted counterexample:
//   prany_check --replay out/mc/u2pc_prc_atomicity_1.scenario
//
// Exit status: 0 when the expectation (default: clean) holds, 1 when it
// does not, 2 on usage errors.

#include <sys/stat.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/timeline.h"
#include "common/trace_export.h"
#include "mc/explorer.h"
#include "mc/scenario_file.h"

namespace prany {
namespace {

enum class Expectation { kClean, kViolations, kTheorem1 };

struct Options {
  ProtocolKind protocol = ProtocolKind::kPrAny;
  std::optional<ProtocolKind> native_filter;
  uint32_t participants = 2;
  McBudget budget = SmallBudget();
  std::optional<uint64_t> max_executions_override;
  std::optional<uint32_t> depth_override;
  uint64_t seed = 1;
  std::string out_dir;
  std::string replay_path;
  Expectation expect = Expectation::kClean;
  bool expect_given = false;
  bool verbose = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --protocol NAME        PrN|PrA|PrC|U2PC|C2PC|PrAny (default PrAny)\n"
      "  --native NAME          restrict U2PC to one native protocol\n"
      "  --participants N       participant count, 2 or 3 (default 2)\n"
      "  --depth-budget NAME    small|medium|large (default small)\n"
      "  --depth N              override max choice points per execution\n"
      "  --budget N             override max executions per configuration\n"
      "  --seed N               deterministic seed (default 1)\n"
      "  --out DIR              write scenario files + Perfetto traces\n"
      "  --replay FILE          replay one scenario file and exit\n"
      "  --expect WHAT          clean|violations|theorem1 — exit 0 iff the\n"
      "                         expectation holds (default clean)\n"
      "  --verbose              print per-configuration statistics\n"
      "All flags accept both '--flag value' and '--flag=value'.\n",
      argv0);
}

/// Matches `--flag=value` or `--flag value`; exits with usage error status
/// when the separate-argument form has no value.
bool MatchFlag(int argc, char** argv, int* i, const char* flag,
               std::string* value) {
  std::string arg = argv[*i];
  std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) == 0) {
    *value = arg.substr(prefix.size());
    return true;
  }
  if (arg == flag) {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag);
      std::exit(2);
    }
    *value = argv[++*i];
    return true;
  }
  return false;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string v;
    if (arg == "--help" || arg == "-h") {
      return false;
    } else if (arg == "--verbose") {
      opts->verbose = true;
    } else if (MatchFlag(argc, argv, &i, "--protocol", &v)) {
      if (!ParseProtocolKind(v, &opts->protocol)) {
        std::fprintf(stderr, "unknown protocol: %s\n", v.c_str());
        return false;
      }
    } else if (MatchFlag(argc, argv, &i, "--native", &v)) {
      ProtocolKind native;
      if (!ParseProtocolKind(v, &native) || !IsBaseProtocol(native)) {
        std::fprintf(stderr,
                     "unknown native: %s (expected PrN, PrA or PrC)\n",
                     v.c_str());
        return false;
      }
      opts->native_filter = native;
    } else if (MatchFlag(argc, argv, &i, "--participants", &v)) {
      opts->participants =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
      if (opts->participants < 2 || opts->participants > 3) {
        std::fprintf(stderr, "--participants must be 2 or 3\n");
        return false;
      }
    } else if (MatchFlag(argc, argv, &i, "--depth-budget", &v)) {
      if (!ParseBudget(v, &opts->budget)) {
        std::fprintf(stderr,
                     "unknown budget: %s (expected small, medium or "
                     "large)\n",
                     v.c_str());
        return false;
      }
    } else if (MatchFlag(argc, argv, &i, "--depth", &v)) {
      opts->depth_override =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (MatchFlag(argc, argv, &i, "--budget", &v)) {
      opts->max_executions_override = std::strtoull(v.c_str(), nullptr, 10);
    } else if (MatchFlag(argc, argv, &i, "--seed", &v)) {
      opts->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (MatchFlag(argc, argv, &i, "--out", &v)) {
      opts->out_dir = v;
    } else if (MatchFlag(argc, argv, &i, "--replay", &v)) {
      opts->replay_path = v;
    } else if (MatchFlag(argc, argv, &i, "--expect", &v)) {
      opts->expect_given = true;
      if (v == "clean") {
        opts->expect = Expectation::kClean;
      } else if (v == "violations") {
        opts->expect = Expectation::kViolations;
      } else if (v == "theorem1") {
        opts->expect = Expectation::kTheorem1;
      } else {
        std::fprintf(stderr,
                     "unknown expectation: %s (expected clean, violations "
                     "or theorem1)\n",
                     v.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (opts->depth_override.has_value()) {
    opts->budget.max_choice_points = *opts->depth_override;
  }
  if (opts->max_executions_override.has_value()) {
    opts->budget.max_executions = *opts->max_executions_override;
  }
  if (opts->expect == Expectation::kTheorem1 &&
      opts->protocol != ProtocolKind::kU2PC) {
    std::fprintf(stderr, "--expect theorem1 requires --protocol u2pc\n");
    return false;
  }
  return true;
}

bool EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  std::fprintf(stderr, "mkdir %s: %s\n", path.c_str(),
               SafeStrError(errno).c_str());
  return false;
}

std::string Lowered(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

/// Writes the scenario file and its Perfetto trace; returns the scenario
/// path (empty on failure).
std::string EmitArtifacts(const std::string& dir, const McConfig& config,
                          const McCounterexample& ce, int index) {
  std::string stem = StrFormat(
      "%s_%s_%s_%d", Lowered(ToString(config.coordinator)).c_str(),
      Lowered(ToString(config.u2pc_native)).c_str(), ce.oracle.c_str(),
      index);
  McScenario scenario;
  scenario.config = config;
  scenario.choices = ce.choices;
  scenario.oracle = ce.oracle;
  scenario.description = ce.description;

  std::string scenario_path = dir + "/" + stem + ".scenario";
  if (!WriteStringToFile(scenario_path, SerializeScenario(scenario))) {
    std::fprintf(stderr, "failed to write %s\n", scenario_path.c_str());
    return "";
  }
  std::vector<TraceEvent> trace;
  McExplorer::RunSchedule(config, ce.choices, &trace);
  std::string trace_path = dir + "/" + stem + ".trace.json";
  if (!WriteStringToFile(trace_path,
                         ChromeTraceJson(trace, BuildTimelines(trace)))) {
    std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
    return "";
  }
  return scenario_path;
}

int Replay(const Options& opts) {
  std::ifstream in(opts.replay_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", opts.replay_path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  Result<McScenario> parsed = ParseScenario(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", opts.replay_path.c_str(),
                 parsed.status().ToString().c_str());
    return 2;
  }
  const McScenario& scenario = *parsed;
  std::printf("replaying %s\n  %s\n", opts.replay_path.c_str(),
              scenario.config.Describe().c_str());
  ReplayOutcome outcome = ReplayScenario(scenario);
  for (const McViolation& v : outcome.report.violations) {
    std::printf("  violation[%s]: %s\n", v.oracle.c_str(),
                v.description.c_str());
  }
  if (outcome.report.violations.empty()) {
    std::printf("  no violations\n");
  }
  if (!scenario.oracle.empty()) {
    std::printf("  recorded oracle '%s': %s\n", scenario.oracle.c_str(),
                outcome.reproduced ? "reproduced" : "NOT reproduced");
  }
  return outcome.reproduced ? 0 : 1;
}

int Check(const Options& opts) {
  if (!opts.out_dir.empty() && !EnsureDir(opts.out_dir)) return 2;

  std::vector<McConfig> configs = StandardModelCheckConfigs(
      opts.protocol, opts.participants, opts.budget, opts.seed,
      opts.native_filter);

  uint64_t total_counterexamples = 0;
  uint64_t total_executions = 0;
  uint64_t total_lint = 0;
  bool all_replays_deterministic = true;
  // For --expect theorem1: which U2PC natives produced an atomicity
  // counterexample.
  std::set<ProtocolKind> natives_explored;
  std::set<ProtocolKind> natives_with_atomicity;
  int artifact_index = 0;

  for (const McConfig& config : configs) {
    McExplorer explorer(config);
    McResult result = explorer.Explore();
    total_executions += result.stats.executions;
    natives_explored.insert(config.u2pc_native);

    std::printf("== %s\n", config.Describe().c_str());
    if (opts.verbose) {
      std::printf(
          "   executions=%llu choice_points=%llu dedup_skips=%llu "
          "sleep_skips=%llu quiescent=%llu truncated=%llu "
          "minimization_runs=%llu %s\n",
          static_cast<unsigned long long>(result.stats.executions),
          static_cast<unsigned long long>(result.stats.choice_points),
          static_cast<unsigned long long>(result.stats.dedup_skips),
          static_cast<unsigned long long>(result.stats.sleep_skips),
          static_cast<unsigned long long>(result.stats.quiescent_runs),
          static_cast<unsigned long long>(result.stats.truncated_runs),
          static_cast<unsigned long long>(result.stats.minimization_runs),
          result.stats.frontier_exhausted ? "frontier-exhausted"
                                          : "execution-budget-hit");
    }
    for (const PresumptionLintFinding& finding : result.lint) {
      ++total_lint;
      std::printf("   lint: %s\n", finding.description.c_str());
    }
    for (const McCounterexample& ce : result.counterexamples) {
      ++total_counterexamples;
      if (ce.oracle == "atomicity") {
        natives_with_atomicity.insert(config.u2pc_native);
      }
      if (!ce.replay_deterministic) all_replays_deterministic = false;
      std::printf("   counterexample[%s]: %s\n", ce.oracle.c_str(),
                  ce.description.c_str());
      std::printf("     choices: [%s] (discovered as %zu choices)%s\n",
                  JoinNumbers(ce.choices, ",").c_str(),
                  ce.original_choices.size(),
                  ce.replay_deterministic ? "" : "  REPLAY NONDETERMINISTIC");
      for (const std::string& step : ce.schedule) {
        std::printf("       %s\n", step.c_str());
      }
      if (!opts.out_dir.empty()) {
        std::string path =
            EmitArtifacts(opts.out_dir, config, ce, artifact_index++);
        if (!path.empty()) {
          std::printf("     wrote %s\n", path.c_str());
        }
      }
    }
    if (result.counterexamples.empty()) {
      std::printf("   clean (%llu executions)\n",
                  static_cast<unsigned long long>(result.stats.executions));
    }
  }

  std::printf(
      "total: %llu configuration(s), %llu execution(s), "
      "%llu counterexample(s), %llu lint finding(s)\n",
      static_cast<unsigned long long>(configs.size()),
      static_cast<unsigned long long>(total_executions),
      static_cast<unsigned long long>(total_counterexamples),
      static_cast<unsigned long long>(total_lint));
  if (!all_replays_deterministic) {
    std::printf("FAIL: some counterexamples did not replay "
                "deterministically\n");
    return 1;
  }

  switch (opts.expect) {
    case Expectation::kClean:
      if (total_counterexamples != 0) {
        std::printf("FAIL: expected clean, found %llu counterexample(s)\n",
                    static_cast<unsigned long long>(total_counterexamples));
        return 1;
      }
      std::printf("PASS: clean\n");
      return 0;
    case Expectation::kViolations:
      if (total_counterexamples == 0) {
        std::printf("FAIL: expected violations, found none\n");
        return 1;
      }
      std::printf("PASS: violations found\n");
      return 0;
    case Expectation::kTheorem1: {
      bool ok = true;
      for (ProtocolKind native : natives_explored) {
        bool found = natives_with_atomicity.count(native) > 0;
        std::printf("theorem1 native=%s: %s\n", ToString(native).c_str(),
                    found ? "atomicity violation rediscovered"
                          : "NO atomicity violation found");
        if (!found) ok = false;
      }
      std::printf("%s: Theorem 1\n", ok ? "PASS" : "FAIL");
      return ok ? 0 : 1;
    }
  }
  return 1;
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::Options opts;
  if (!prany::ParseArgs(argc, argv, &opts)) {
    prany::Usage(argv[0]);
    return 2;
  }
  if (!opts.replay_path.empty()) return prany::Replay(opts);
  return prany::Check(opts);
}
