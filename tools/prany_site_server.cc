// One site of a multi-process cluster: hosts a single LiveSystem site on
// a socket transport, generates closed-loop load coordinating locally
// with participants drawn from the whole topology, then keeps serving
// (participants answer inquiries, coordinators resend decisions) until
// SIGTERM. On a clean exit it dumps its load counters and its partial
// significant-event history to files the ProcessCluster harness merges.
//
// Launched by harness::ProcessCluster (tests) and prany_cli --transport
// (interactive runs); see src/harness/process_cluster.h for the argv
// contract. Exits 0 on a clean run, 2 on bad usage.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "harness/process_cluster.h"
#include "runtime/live_system.h"
#include "runtime/load_gen.h"

namespace prany {
namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

struct ServerOptions {
  SiteId site = kInvalidSite;
  ProtocolKind protocol = ProtocolKind::kPrN;
  /// Coordinator kind; defaults to `protocol` (set at parse end).
  std::optional<ProtocolKind> coordinator;
  std::string listen;
  std::vector<runtime::LiveSystemConfig::RemoteSite> peers;
  std::string log_dir = ".";
  std::string result_path;
  std::string history_path;
  uint64_t duration_us = 1'000'000;
  int clients = 2;  ///< 0 = serve only, generate no load.
  int participants_per_txn = 2;
  double abort_fraction = 0.0;
  uint64_t await_timeout_us = 10'000'000;
  uint64_t seed = 1;
  int incarnation = 0;
};

int Usage(const char* msg) {
  std::fprintf(stderr, "prany_site_server: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: prany_site_server --site=N --protocol=PrC --listen=ADDR\n"
      "         [--coordinator=PrAny]\n"
      "         [--peer=ID:PROTO:ADDR]... [--log-dir=DIR] [--result=FILE]\n"
      "         [--history=FILE] [--duration-us=N] [--clients=N]\n"
      "         [--participants=N] [--abort-fraction=F]\n"
      "         [--await-timeout-us=N] [--seed=N] [--incarnation=N]\n"
      "ADDR is uds:<path> or tcp:host:port.\n");
  return 2;
}

bool ParsePeer(const std::string& value, runtime::LiveSystemConfig::RemoteSite* out) {
  const size_t c1 = value.find(':');
  if (c1 == std::string::npos) return false;
  const size_t c2 = value.find(':', c1 + 1);
  if (c2 == std::string::npos) return false;
  char* end = nullptr;
  const unsigned long id = std::strtoul(value.c_str(), &end, 10);
  if (end != value.c_str() + c1) return false;
  out->id = static_cast<SiteId>(id);
  if (!ParseProtocolKind(value.substr(c1 + 1, c2 - c1 - 1),
                         &out->participant_protocol)) {
    return false;
  }
  out->address = value.substr(c2 + 1);  // addresses contain ':' (tcp)
  return !out->address.empty();
}

/// --flag=value argv convention; returns the value when `arg` matches.
bool FlagValue(const char* arg, const char* flag, std::string* value) {
  const size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

int RunServer(const ServerOptions& options) {
  runtime::LiveSystemConfig config;
  config.log_dir = options.log_dir;
  config.listen_address = options.listen;
  config.remote_sites = options.peers;
  // Globally unique ids across processes *and* incarnations: a restarted
  // process must not reuse ids its predecessor already spent.
  config.txn_id_base =
      (static_cast<TxnId>(options.site) + 1) << 40 |
      static_cast<TxnId>(options.incarnation) << 32;

  runtime::LiveSystem system(std::move(config));
  CoordinatorSpec spec;
  spec.kind = options.coordinator.value_or(options.protocol);
  runtime::LiveSite* ls =
      system.AddSiteWithId(options.site, options.protocol, spec);

  if (options.incarnation > 0) {
    // The WAL Open() above already rescanned the file and truncated any
    // torn tail the SIGKILL left; now rebuild engine state from it and
    // run the paper's §4.2 procedure — redo decisions, re-inquire
    // in-doubt transactions — over the live sockets.
    ls->RunInline([&]() { ls->site()->RecoverNow(); });
  }

  runtime::LoadGenReport report;
  if (options.clients > 0) {
    runtime::LoadGenConfig gen_config;
    gen_config.clients = options.clients;
    gen_config.duration_us = options.duration_us;
    gen_config.participants_per_txn = options.participants_per_txn;
    gen_config.abort_fraction = options.abort_fraction;
    gen_config.await_timeout_us = options.await_timeout_us;
    gen_config.seed = options.seed;
    gen_config.sites.push_back(options.site);
    for (const runtime::LiveSystemConfig::RemoteSite& peer : options.peers) {
      gen_config.sites.push_back(peer.id);
    }
    gen_config.coordinators = {options.site};
    runtime::LoadGen gen(&system, gen_config);
    // A SIGTERM during the load must end the run promptly, not after the
    // full configured duration. g_stop is never cleared — a signal that
    // lands mid-load also satisfies the serve loop below.
    std::atomic<bool> load_done{false};
    std::thread stopper([&gen, &load_done]() {
      while (!g_stop.load() && !load_done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      if (g_stop.load()) gen.Stop();
    });
    report = gen.Run();
    load_done.store(true);
    stopper.join();
  }

  // Load done, but remote coordinators may still need this participant
  // (inquiries, decision resends — §4.2 depends on survivors answering).
  // Serve until the harness says everyone is finished.
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Drain in-flight work best-effort; peers may already be gone, so a
  // timeout here is not an error.
  system.Quiesce(5'000'000);

  if (!options.history_path.empty()) {
    // Dump via a temp file + rename: the harness must never parse a
    // half-written dump if this process dies mid-write.
    const std::string tmp = options.history_path + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    for (const SigEvent& event : system.history().events()) {
      out << harness::SerializeSigEvent(event) << "\n";
    }
    out.close();
    if (!out || std::rename(tmp.c_str(), options.history_path.c_str()) != 0) {
      std::fprintf(stderr, "prany_site_server: history dump failed\n");
      return 1;
    }
  }
  if (!options.result_path.empty()) {
    const std::string tmp = options.result_path + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    out << "site=" << options.site << "\n"
        << "incarnation=" << options.incarnation << "\n"
        << "submitted=" << report.submitted << "\n"
        << "committed=" << report.committed << "\n"
        << "aborted=" << report.aborted << "\n"
        << "timeouts=" << report.timeouts << "\n"
        << "dropped=" << report.dropped << "\n";
    if (runtime::SocketTransport* socket = system.socket_transport()) {
      runtime::SocketTransportStats stats = socket->stats();
      out << "net_messages_delivered=" << stats.messages_delivered << "\n"
          << "net_connects_completed=" << stats.connects_completed << "\n"
          << "net_accepts=" << stats.accepts << "\n"
          << "net_frames_dropped_corrupt=" << stats.frames_dropped_corrupt
          << "\n";
    }
    if (options.incarnation > 0) {
      const WalRecoveryInfo& recovery = ls->wal()->recovery_info();
      out << "wal_records_recovered=" << recovery.records_recovered << "\n"
          << "wal_tail_truncated=" << (recovery.tail_truncated ? 1 : 0)
          << "\n";
    }
    out.close();
    if (!out || std::rename(tmp.c_str(), options.result_path.c_str()) != 0) {
      std::fprintf(stderr, "prany_site_server: result dump failed\n");
      return 1;
    }
  }
  system.Stop();
  return 0;
}

int Main(int argc, char** argv) {
  ServerOptions options;
  bool have_site = false;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (FlagValue(argv[i], "--site", &value)) {
      options.site = static_cast<SiteId>(std::strtoul(value.c_str(),
                                                      nullptr, 10));
      have_site = true;
    } else if (FlagValue(argv[i], "--protocol", &value)) {
      if (!ParseProtocolKind(value, &options.protocol)) {
        return Usage(("unknown protocol: " + value).c_str());
      }
    } else if (FlagValue(argv[i], "--coordinator", &value)) {
      ProtocolKind kind;
      if (!ParseProtocolKind(value, &kind)) {
        return Usage(("unknown protocol: " + value).c_str());
      }
      options.coordinator = kind;
    } else if (FlagValue(argv[i], "--listen", &value)) {
      options.listen = value;
    } else if (FlagValue(argv[i], "--peer", &value)) {
      runtime::LiveSystemConfig::RemoteSite peer;
      if (!ParsePeer(value, &peer)) {
        return Usage(("bad --peer (want ID:PROTO:ADDR): " + value).c_str());
      }
      options.peers.push_back(std::move(peer));
    } else if (FlagValue(argv[i], "--log-dir", &value)) {
      options.log_dir = value;
    } else if (FlagValue(argv[i], "--result", &value)) {
      options.result_path = value;
    } else if (FlagValue(argv[i], "--history", &value)) {
      options.history_path = value;
    } else if (FlagValue(argv[i], "--duration-us", &value)) {
      options.duration_us = std::strtoull(value.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--clients", &value)) {
      options.clients = std::atoi(value.c_str());
    } else if (FlagValue(argv[i], "--participants", &value)) {
      options.participants_per_txn = std::atoi(value.c_str());
    } else if (FlagValue(argv[i], "--abort-fraction", &value)) {
      options.abort_fraction = std::atof(value.c_str());
    } else if (FlagValue(argv[i], "--await-timeout-us", &value)) {
      options.await_timeout_us = std::strtoull(value.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--incarnation", &value)) {
      options.incarnation = std::atoi(value.c_str());
    } else {
      return Usage((std::string("unknown flag: ") + argv[i]).c_str());
    }
  }
  if (!have_site) return Usage("--site is required");
  if (options.listen.empty()) return Usage("--listen is required");
  if (options.clients > 0 &&
      options.peers.size() <
          static_cast<size_t>(options.participants_per_txn)) {
    return Usage("need at least participants-per-txn peers");
  }

  struct sigaction action = {};
  action.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  return RunServer(options);
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) { return prany::Main(argc, argv); }
