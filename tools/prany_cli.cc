// prany_cli — run a configurable commit-protocol scenario from the shell.
//
// Examples:
//   # the paper's §2 counterexample, with the full protocol trace:
//   prany_cli --coordinator=U2PC --native=PrC --participants=PrA,PrC
//             --outcome=abort --crash-site=1
//             --crash-point=part.on_decision_received --trace
//
//   # a 100-transaction PrAny workload with 5% message loss:
//   prany_cli --coordinator=PrAny --participants=PrN,PrA,PrC
//             --txns=100 --loss=0.05 --seed=7
//
// Exit status: 0 if all correctness checks passed, 1 otherwise.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/trace_export.h"
#include "harness/process_cluster.h"
#include "harness/run_result.h"
#include "harness/workload.h"
#include "protocol/crash_points.h"
#include "runtime/live_system.h"

namespace prany {
namespace {

struct Options {
  ProtocolKind coordinator = ProtocolKind::kPrAny;
  ProtocolKind native = ProtocolKind::kPrN;
  std::vector<ProtocolKind> participants = {ProtocolKind::kPrA,
                                            ProtocolKind::kPrC};
  Outcome outcome = Outcome::kCommit;
  std::optional<SiteId> crash_site;
  std::optional<CrashPoint> crash_point;
  SimDuration downtime = 1'000'000;
  uint64_t seed = 1;
  double loss = 0.0;
  uint32_t txns = 1;
  bool trace = false;
  bool show_history = false;
  std::string trace_json_path;
  std::string metrics_json_path;
  bool live = false;           ///< --runtime=live: wall-clock backend
  std::string log_dir;         ///< live WAL directory ("" = temp dir)
  bool downtime_set = false;   ///< --downtime given without --crash-*
  bool loss_set = false;       ///< sim-only, --runtime=live conflict check
  std::string transport;       ///< "" (in-process) | "uds" | "tcp"
  uint64_t duration_ms = 1000; ///< per-site load window (--transport only)
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --runtime=sim|live            execution backend (default sim);\n"
      "                                live = real threads + file WALs\n"
      "  --transport=uds|tcp           live only: multi-process mode — one\n"
      "                                OS process per site (PrN, PrA, PrC\n"
      "                                and a PrAny coordinator) exchanging\n"
      "                                every protocol message over real\n"
      "                                sockets; merged-history checks\n"
      "  --duration-ms=N               per-site load window in multi-\n"
      "                                process mode (default 1000)\n"
      "  --log-dir=DIR                 live WAL directory (default: a\n"
      "                                temporary directory, deleted after)\n"
      "  --coordinator=PrN|PrA|PrC|U2PC|C2PC|PrAny   (default PrAny)\n"
      "  --native=PrN|PrA|PrC          U2PC's native protocol\n"
      "  --participants=P1,P2,...      base protocols (default PrA,PrC)\n"
      "  --outcome=commit|abort        single-txn mode outcome\n"
      "  --txns=N                      workload mode when N > 1\n"
      "  --crash-site=ID               inject a crash at this site (on\n"
      "                                live: real teardown + WAL recovery)\n"
      "  --crash-point=NAME            e.g. part.on_decision_received\n"
      "  --downtime=USECS              crash duration (default 1s)\n"
      "  --loss=P                      message drop probability (sim only)\n"
      "  --seed=N                      deterministic seed\n"
      "  --trace                       print the protocol trace\n"
      "  --trace-json=FILE             write Chrome trace-event JSON\n"
      "                                (load in Perfetto / chrome://tracing)\n"
      "  --metrics-json=FILE           write counters + distributions JSON\n"
      "  --history                     print the ACTA event history\n"
      "crash points:\n",
      argv0);
  for (CrashPoint p : kAllCrashPoints) {
    std::fprintf(stderr, "  %s\n", ToString(p).c_str());
  }
}

bool ParseCrashPoint(const std::string& name, CrashPoint* out) {
  for (CrashPoint p : kAllCrashPoints) {
    if (ToString(p) == name) {
      *out = p;
      return true;
    }
  }
  return false;
}

bool ParseOutcome(const std::string& name, Outcome* out) {
  if (name == "commit") {
    *out = Outcome::kCommit;
  } else if (name == "abort") {
    *out = Outcome::kAbort;
  } else {
    return false;
  }
  return true;
}

bool ParseParticipants(const std::string& list,
                       std::vector<ProtocolKind>* out) {
  out->clear();
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    std::string token = list.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    ProtocolKind kind;
    if (token.empty() || !ParseProtocolKind(token, &kind) ||
        !IsBaseProtocol(kind)) {
      return false;
    }
    out->push_back(kind);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out->empty();
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::optional<std::string> {
      std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--trace") {
      opts->trace = true;
    } else if (arg == "--history") {
      opts->show_history = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (auto v = value_of("--coordinator")) {
      if (!ParseProtocolKind(*v, &opts->coordinator)) {
        std::fprintf(stderr, "unknown protocol: %s\n", v->c_str());
        return false;
      }
    } else if (auto v = value_of("--native")) {
      if (!ParseProtocolKind(*v, &opts->native) ||
          !IsBaseProtocol(opts->native)) {
        std::fprintf(stderr,
                     "unknown protocol: %s (--native takes PrN, PrA or "
                     "PrC)\n",
                     v->c_str());
        return false;
      }
    } else if (auto v = value_of("--participants")) {
      if (!ParseParticipants(*v, &opts->participants)) {
        std::fprintf(stderr,
                     "unknown protocol in participant list: %s "
                     "(comma-separated PrN, PrA or PrC)\n",
                     v->c_str());
        return false;
      }
    } else if (auto v = value_of("--outcome")) {
      if (!ParseOutcome(*v, &opts->outcome)) {
        std::fprintf(stderr,
                     "unknown outcome: %s (expected commit or abort)\n",
                     v->c_str());
        return false;
      }
    } else if (auto v = value_of("--crash-site")) {
      opts->crash_site = static_cast<SiteId>(std::strtoul(
          v->c_str(), nullptr, 10));
    } else if (auto v = value_of("--crash-point")) {
      CrashPoint point;
      if (!ParseCrashPoint(*v, &point)) {
        std::fprintf(stderr, "unknown crash point: %s\n", v->c_str());
        return false;
      }
      opts->crash_point = point;
    } else if (auto v = value_of("--trace-json")) {
      opts->trace_json_path = *v;
    } else if (auto v = value_of("--metrics-json")) {
      opts->metrics_json_path = *v;
    } else if (auto v = value_of("--downtime")) {
      opts->downtime = std::strtoull(v->c_str(), nullptr, 10);
      opts->downtime_set = true;
    } else if (auto v = value_of("--runtime")) {
      if (*v == "live") {
        opts->live = true;
      } else if (*v == "sim") {
        opts->live = false;
      } else {
        std::fprintf(stderr, "unknown runtime: %s (expected sim or live)\n",
                     v->c_str());
        return false;
      }
    } else if (auto v = value_of("--transport")) {
      if (*v != "uds" && *v != "tcp") {
        std::fprintf(stderr, "unknown transport: %s (expected uds or tcp)\n",
                     v->c_str());
        return false;
      }
      opts->transport = *v;
    } else if (auto v = value_of("--duration-ms")) {
      opts->duration_ms = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = value_of("--log-dir")) {
      opts->log_dir = *v;
    } else if (auto v = value_of("--seed")) {
      opts->seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = value_of("--loss")) {
      opts->loss = std::strtod(v->c_str(), nullptr);
      opts->loss_set = true;
    } else if (auto v = value_of("--txns")) {
      opts->txns = static_cast<uint32_t>(
          std::strtoul(v->c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Rejects combinations that only make sense on the simulator. Crash
/// injection works on both backends (live crashes tear down the site's
/// threads and WAL for real); message loss still needs the simulated
/// network.
bool ValidateLiveOptions(const Options& opts) {
  if (opts.live && opts.loss_set) {
    std::fprintf(stderr,
                 "--loss is sim-only: deterministic message drops need the "
                 "simulated network and are not supported with "
                 "--runtime=live (drop --loss or use --runtime=sim)\n");
    return false;
  }
  if (opts.transport.empty()) return true;
  if (!opts.live) {
    std::fprintf(stderr, "--transport needs --runtime=live\n");
    return false;
  }
  // Multi-process mode: the sites live in child processes, so in-process
  // probes and trace collection cannot reach them. A --crash-site alone
  // is supported (SIGKILL + relaunch); a --crash-point is not.
  if (opts.crash_point.has_value()) {
    std::fprintf(stderr,
                 "--crash-point is in-process only; with --transport use "
                 "--crash-site alone (SIGKILL + relaunch)\n");
    return false;
  }
  if (opts.trace || !opts.trace_json_path.empty() ||
      !opts.metrics_json_path.empty()) {
    std::fprintf(stderr,
                 "--trace/--trace-json/--metrics-json are not available "
                 "with --transport (the trace lives in the site "
                 "processes)\n");
    return false;
  }
  return true;
}

/// --transport=uds|tcp: one OS process per site, every protocol message
/// over a real socket. The four paper protocols each get a site: PrN,
/// PrA, PrC participants coordinating with their own kind, plus a PrAny
/// coordinator over a PrN participant. Load runs inside the site
/// processes; this process only orchestrates and checks the merged
/// history.
int RunClusterLive(const Options& opts) {
  std::string dir = opts.log_dir;
  const bool temp_dir = dir.empty();
  if (temp_dir) {
    std::string templ = "/tmp/prany_cli_XXXXXX";
    char* made = mkdtemp(templ.data());
    if (made == nullptr) {
      std::fprintf(stderr, "failed to create temp directory\n");
      return 1;
    }
    dir = templ;
  }

  harness::ProcessClusterConfig config;
  config.log_dir = dir;
  config.duration_us = opts.duration_ms * 1000;
  config.clients = 2;
  config.participants_per_txn = 2;
  config.abort_fraction = opts.outcome == Outcome::kAbort ? 1.0 : 0.1;
  config.seed = opts.seed;
  struct SiteKind {
    const char* label;
    ProtocolKind participant;
    std::optional<ProtocolKind> coordinator;
  };
  const std::vector<SiteKind> kinds = {
      {"PrN", ProtocolKind::kPrN, std::nullopt},
      {"PrA", ProtocolKind::kPrA, std::nullopt},
      {"PrC", ProtocolKind::kPrC, std::nullopt},
      {"PrAny", ProtocolKind::kPrN, ProtocolKind::kPrAny},
  };
  const int base_port = 22000 + static_cast<int>(getpid() % 20000);
  for (size_t i = 0; i < kinds.size(); ++i) {
    harness::ProcessSiteSpec spec;
    spec.id = static_cast<SiteId>(i);
    spec.protocol = kinds[i].participant;
    spec.coordinator = kinds[i].coordinator;
    spec.address = opts.transport == "uds"
                       ? "uds:" + dir + "/site" + std::to_string(i) + ".sock"
                       : "tcp:127.0.0.1:" +
                             std::to_string(base_port + static_cast<int>(i));
    config.sites.push_back(std::move(spec));
  }

  harness::ProcessCluster cluster(config);
  Status launched = cluster.LaunchAll();
  if (!launched.ok()) {
    std::fprintf(stderr, "launch failed: %s\n",
                 launched.ToString().c_str());
    return 1;
  }

  auto sleep_ms = [](uint64_t ms) {
    usleep(static_cast<useconds_t>(ms * 1000));
  };
  bool restarted_ok = true;
  if (opts.crash_site.has_value()) {
    if (*opts.crash_site >= config.sites.size()) {
      std::fprintf(stderr, "--crash-site=%u: no such site (have %zu)\n",
                   *opts.crash_site, config.sites.size());
      return 1;
    }
    // Kill for real mid-load, leave it down for the requested downtime,
    // then relaunch against the same WAL (the server re-runs recovery
    // and the §4.2 procedure over the sockets).
    sleep_ms(opts.duration_ms * 2 / 5);
    cluster.KillSite(*opts.crash_site);
    sleep_ms(opts.downtime / 1000);
    Status restart = cluster.RestartSite(*opts.crash_site);
    if (!restart.ok()) {
      std::fprintf(stderr, "restart failed: %s\n",
                   restart.ToString().c_str());
      restarted_ok = false;
    }
    // The restarted incarnation runs a fresh full-length load window.
    sleep_ms(opts.duration_ms + 500);
  } else {
    sleep_ms(opts.duration_ms + 300);
  }
  cluster.SignalAll(SIGTERM);
  const bool clean_exit = cluster.WaitAll(60'000'000);

  harness::ClusterLoadTotals totals = cluster.CollectTotals();
  EventLog merged;
  const size_t events = cluster.MergeHistories(&merged);
  AtomicityReport atomicity = AtomicityChecker::Check(merged);

  std::printf("runtime:        live, %zu site processes over %s\n",
              config.sites.size(), opts.transport.c_str());
  for (size_t i = 0; i < kinds.size(); ++i) {
    std::map<std::string, std::string> result =
        cluster.ResultFor(static_cast<SiteId>(i));
    std::printf("  site %zu %-5s  committed=%-6s aborted=%-6s "
                "timeouts=%-4s incarnation=%s\n",
                i, kinds[i].label, result["committed"].c_str(),
                result["aborted"].c_str(), result["timeouts"].c_str(),
                result["incarnation"].c_str());
    if (result.count("wal_records_recovered")) {
      std::printf("         recovery: %s records replayed, torn tail: %s\n",
                  result["wal_records_recovered"].c_str(),
                  result["wal_tail_truncated"] == "1" ? "yes" : "no");
    }
  }
  std::printf("transactions:   %llu committed, %llu aborted, %llu "
              "timeouts, %llu dropped\n",
              static_cast<unsigned long long>(totals.committed),
              static_cast<unsigned long long>(totals.aborted),
              static_cast<unsigned long long>(totals.timeouts),
              static_cast<unsigned long long>(totals.dropped));
  std::printf("merged history: %zu events from %zu processes\n", events,
              config.sites.size());
  if (opts.show_history) {
    std::printf("=== history ===\n%s\n", merged.ToString().c_str());
  }
  std::printf("atomicity:      %s\n", atomicity.ok() ? "ok" : "VIOLATED");
  if (!atomicity.ok()) {
    std::fprintf(stderr, "%s", atomicity.ToString().c_str());
  }
  if (!clean_exit) {
    std::fprintf(stderr, "WARNING: a site process exited uncleanly or "
                         "had to be killed\n");
  }

  if (temp_dir) {
    for (size_t i = 0; i < config.sites.size(); ++i) {
      const std::string base = dir + "/site" + std::to_string(i);
      unlink((base + ".wal").c_str());
      unlink((base + ".result").c_str());
      unlink((base + ".history").c_str());
      unlink((base + ".sock").c_str());
    }
    rmdir(dir.c_str());
  }

  const bool ok = clean_exit && restarted_ok && atomicity.ok() &&
                  totals.committed > 0;
  return ok ? 0 : 1;
}

int RunScenarioLive(const Options& opts) {
  runtime::LiveSystemConfig cfg;
  // Wall-clock timers: scale the sim-tuned defaults up so queueing delay
  // on a loaded machine is never mistaken for a vote timeout.
  cfg.timing.vote_timeout = 10'000'000;
  cfg.timing.decision_resend_interval = 2'000'000;
  cfg.timing.inquiry_interval = 2'000'000;
  std::string dir = opts.log_dir;
  bool temp_dir = dir.empty();
  if (temp_dir) {
    std::string templ = "/tmp/prany_cli_XXXXXX";
    char* made = mkdtemp(templ.data());
    if (made == nullptr) {
      std::fprintf(stderr, "failed to create temp WAL directory\n");
      return 1;
    }
    dir = templ;
  }
  cfg.log_dir = dir;

  runtime::LiveSystem system(cfg);
  bool want_trace = opts.trace || !opts.trace_json_path.empty() ||
                    !opts.metrics_json_path.empty();
  if (want_trace) system.loop().trace().Enable();

  system.AddSite(ProtocolKind::kPrN, opts.coordinator, opts.native);
  std::vector<SiteId> participant_sites;
  for (ProtocolKind p : opts.participants) {
    system.AddSite(p, opts.coordinator, opts.native);
    participant_sites.push_back(
        static_cast<SiteId>(participant_sites.size() + 1));
  }

  const bool inject_crash =
      opts.crash_site.has_value() && opts.crash_point.has_value();
  if (inject_crash) {
    if (*opts.crash_site >= system.site_count()) {
      std::fprintf(stderr, "--crash-site=%u: no such site (have %zu)\n",
                   *opts.crash_site, system.site_count());
      return 1;
    }
    system.EnableCrashInjection(opts.seed);
    system.InjectCrashAtPoint(*opts.crash_site, *opts.crash_point,
                              static_cast<uint64_t>(opts.downtime));
  }

  constexpr uint64_t kAwaitUs = 30'000'000;
  uint32_t txns = opts.txns < 1 ? 1 : opts.txns;
  uint64_t commits = 0, aborts = 0, undecided = 0;
  for (uint32_t i = 0; i < txns; ++i) {
    std::map<SiteId, Vote> votes;
    if (opts.outcome == Outcome::kAbort) {
      votes[participant_sites.front()] = Vote::kNo;
    }
    TxnId txn = system.Submit(0, participant_sites, votes);
    std::optional<Outcome> outcome = system.Await(txn, kAwaitUs);
    if (!outcome.has_value()) {
      ++undecided;
    } else if (*outcome == Outcome::kCommit) {
      ++commits;
    } else {
      ++aborts;
    }
  }
  if (inject_crash) {
    // Give the one-shot rule a chance to fire and the restart to finish
    // before judging the run; a point the workload never passes is
    // reported, not an error.
    if (!system.AwaitCrashCycles(1, kAwaitUs)) {
      std::fprintf(stderr,
                   "WARNING: crash point %s never fired on site %u\n",
                   ToString(*opts.crash_point).c_str(), *opts.crash_site);
    }
  }
  bool quiesced = system.Quiesce(kAwaitUs);
  AtomicityReport atomicity = system.CheckAtomicity();
  SafeStateReport safe_state = system.CheckSafeState();
  OperationalReport operational = system.CheckOperational();
  uint64_t forced = 0;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    forced += system.live_site(s)->wal()->stats().forced_appends;
  }
  system.Stop();  // folds timelines, closes the WALs

  if (opts.trace) {
    std::printf("=== trace ===\n%s\n",
                system.loop().trace().ToString().c_str());
  }
  if (opts.show_history) {
    std::printf("=== history ===\n%s\n",
                system.history().ToString().c_str());
  }
  if (!opts.trace_json_path.empty()) {
    std::string json =
        ChromeTraceJson(system.loop().trace().events(), system.timelines());
    if (!WriteStringToFile(opts.trace_json_path, json)) {
      std::fprintf(stderr, "failed to write %s\n",
                   opts.trace_json_path.c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu events)\n",
                opts.trace_json_path.c_str(),
                system.loop().trace().events().size());
  }
  if (!opts.metrics_json_path.empty()) {
    if (!WriteStringToFile(opts.metrics_json_path,
                           MetricsJson(system.metrics()))) {
      std::fprintf(stderr, "failed to write %s\n",
                   opts.metrics_json_path.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", opts.metrics_json_path.c_str());
  }

  std::printf("runtime:        live (%zu sites, WALs in %s%s)\n",
              system.site_count(), dir.c_str(),
              temp_dir ? ", temporary" : "");
  std::printf("transactions:   %llu committed, %llu aborted, %llu "
              "undecided\n",
              static_cast<unsigned long long>(commits),
              static_cast<unsigned long long>(aborts),
              static_cast<unsigned long long>(undecided));
  std::printf("forced writes:  %llu\n",
              static_cast<unsigned long long>(forced));
  if (inject_crash) {
    runtime::CrashStats cs = system.crash_stats();
    std::printf("crash cycles:   %llu (%llu torn tails, %llu records "
                "replayed)\n",
                static_cast<unsigned long long>(cs.cycles),
                static_cast<unsigned long long>(cs.torn_tail_cycles),
                static_cast<unsigned long long>(cs.records_recovered_total));
  }
  std::printf("atomicity:      %s\n", atomicity.ok() ? "ok" : "VIOLATED");
  std::printf("safe state:     %s\n", safe_state.ok() ? "ok" : "VIOLATED");
  std::printf("operational:    %s\n", operational.ok() ? "ok" : "VIOLATED");

  if (temp_dir) {
    for (SiteId s = 0; s < system.site_count(); ++s) {
      unlink(system.live_site(s)->wal()->path().c_str());
    }
    rmdir(dir.c_str());
  }

  if (!quiesced) {
    std::fprintf(stderr, "WARNING: system did not quiesce\n");
    return 1;
  }
  if (!atomicity.ok()) {
    std::fprintf(stderr, "%s", atomicity.ToString().c_str());
  }
  if (!safe_state.ok()) {
    std::fprintf(stderr, "%s", safe_state.ToString().c_str());
  }
  if (!operational.ok()) {
    std::fprintf(stderr, "%s", operational.ToString().c_str());
  }
  bool ok = atomicity.ok() && safe_state.ok() && operational.ok() &&
            undecided == 0;
  return ok ? 0 : 1;
}

int RunScenario(const Options& opts) {
  SystemConfig cfg;
  cfg.seed = opts.seed;
  cfg.drop_probability = opts.loss;
  cfg.max_events = 50'000'000;
  System system(cfg);
  // --trace-json / --metrics-json need the structured events (and the
  // timeline metrics derived from them) even without --trace.
  if (opts.trace || !opts.trace_json_path.empty() ||
      !opts.metrics_json_path.empty()) {
    system.sim().trace().Enable();
  }

  system.AddSite(ProtocolKind::kPrN, opts.coordinator, opts.native);
  std::vector<SiteId> participant_sites;
  for (ProtocolKind p : opts.participants) {
    system.AddSite(p);
    participant_sites.push_back(
        static_cast<SiteId>(participant_sites.size() + 1));
  }

  if (opts.txns <= 1) {
    Transaction txn = system.MakeTransaction(0, participant_sites);
    system.SubmitAt(0, txn);
    if (opts.outcome == Outcome::kAbort) {
      system.sim().ScheduleAt(800, [&system, &txn]() {
        system.site(0)->coordinator()->ForceAbort(txn.id);
      });
    }
    if (opts.crash_site.has_value() && opts.crash_point.has_value()) {
      system.injector().CrashAtPoint(*opts.crash_site, *opts.crash_point,
                                     txn.id, opts.downtime);
    }
  } else {
    WorkloadConfig wl;
    wl.num_txns = opts.txns;
    wl.min_participants = 1;
    wl.max_participants =
        static_cast<uint32_t>(participant_sites.size());
    wl.no_vote_probability = opts.outcome == Outcome::kAbort ? 1.0 : 0.1;
    wl.coordinators = {0};
    wl.participant_pool = participant_sites;
    WorkloadGenerator gen(&system, wl);
    gen.GenerateAndSchedule();
    if (opts.crash_site.has_value() && opts.crash_point.has_value()) {
      system.injector().CrashAtPoint(*opts.crash_site, *opts.crash_point,
                                     kInvalidTxn, opts.downtime);
    }
  }

  RunStats stats = system.Run();
  if (opts.trace) {
    std::printf("=== trace ===\n%s\n",
                system.sim().trace().ToString().c_str());
  }
  if (opts.show_history) {
    std::printf("=== history ===\n%s\n",
                system.history().ToString().c_str());
  }
  if (!opts.trace_json_path.empty()) {
    std::string json =
        ChromeTraceJson(system.sim().trace().events(), system.timelines());
    if (!WriteStringToFile(opts.trace_json_path, json)) {
      std::fprintf(stderr, "failed to write %s\n",
                   opts.trace_json_path.c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu events)\n",
                opts.trace_json_path.c_str(),
                system.sim().trace().events().size());
  }
  if (!opts.metrics_json_path.empty()) {
    if (!WriteStringToFile(opts.metrics_json_path,
                           MetricsJson(system.metrics()))) {
      std::fprintf(stderr, "failed to write %s\n",
                   opts.metrics_json_path.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", opts.metrics_json_path.c_str());
  }
  RunSummary summary = Summarize(system);
  std::printf("%s", summary.ToString().c_str());
  if (stats.hit_event_limit) {
    std::printf("WARNING: event limit hit before quiescence\n");
    return 1;
  }
  if (!summary.AllCorrect()) {
    // A failing check must be diagnosable from the output alone: dump the
    // violating history (unless --history already did) and every failing
    // checker's report.
    if (!opts.show_history) {
      std::fprintf(stderr, "=== violating history ===\n%s\n",
                   system.history().ToString().c_str());
    }
    if (!summary.atomicity.ok()) {
      std::fprintf(stderr, "%s", summary.atomicity.ToString().c_str());
    }
    if (!summary.safe_state.ok()) {
      std::fprintf(stderr, "%s", summary.safe_state.ToString().c_str());
    }
    if (!summary.operational.ok()) {
      std::fprintf(stderr, "%s", summary.operational.ToString().c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace prany

int main(int argc, char** argv) {
  prany::Options opts;
  if (!prany::ParseArgs(argc, argv, &opts)) {
    prany::Usage(argv[0]);
    return 2;
  }
  if (!prany::ValidateLiveOptions(opts)) return 2;
  if (opts.live && !opts.transport.empty()) {
    return prany::RunClusterLive(opts);
  }
  if (opts.live) return prany::RunScenarioLive(opts);
  return prany::RunScenario(opts);
}
