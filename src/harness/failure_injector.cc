#include "harness/failure_injector.h"

namespace prany {

void FailureInjector::CrashAtPoint(SiteId site, CrashPoint point, TxnId txn,
                                   SimDuration downtime, uint32_t skip) {
  rules_.push_back(PointRule{site, point, txn, downtime, skip});
}

void FailureInjector::SetRandomCrashes(double p, SimDuration min_downtime,
                                       SimDuration max_downtime) {
  random_p_ = p;
  random_min_downtime_ = min_downtime;
  random_max_downtime_ = max_downtime;
}

std::optional<SimDuration> FailureInjector::Probe(SiteId site,
                                                  CrashPoint point,
                                                  TxnId txn) {
  ++probe_counts_[point];
  for (PointRule& rule : rules_) {
    if (rule.fired || rule.site != site || rule.point != point) continue;
    if (rule.txn != kInvalidTxn && rule.txn != txn) continue;
    if (rule.skip > 0) {
      --rule.skip;
      continue;
    }
    rule.fired = true;
    ++crashes_injected_;
    return rule.downtime;
  }
  if (random_p_ > 0.0 &&
      (random_budget_ == 0 || random_crashes_ < random_budget_) &&
      rng_.Bernoulli(random_p_)) {
    ++random_crashes_;
    ++crashes_injected_;
    return rng_.Uniform(random_min_downtime_, random_max_downtime_);
  }
  return std::nullopt;
}

}  // namespace prany
