// The top-level harness: builds a federation of sites over one simulated
// network, submits transactions, runs to quiescence, and evaluates the
// paper's correctness criteria over the recorded history.
//
// This is the main public entry point of the library — see
// examples/quickstart.cc for typical use.

#ifndef PRANY_HARNESS_SYSTEM_H_
#define PRANY_HARNESS_SYSTEM_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/timeline.h"
#include "core/safe_state.h"
#include "harness/failure_injector.h"
#include "harness/site.h"
#include "history/operational_checker.h"
#include "net/network.h"
#include "txn/transaction.h"

namespace prany {

/// Construction-time parameters for a System.
struct SystemConfig {
  uint64_t seed = 1;
  TimingConfig timing;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  /// Fixed one-way message latency; replaceable afterwards via
  /// net().SetDefaultLatency().
  SimDuration fixed_latency = 500;
  /// Safety valve for Run(): the simulation stops after this many events.
  uint64_t max_events = 50'000'000;
};

class System {
 public:
  explicit System(SystemConfig config = {});
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Adds a site speaking `participant_protocol` (as participant) and
  /// running `coordinator_kind` (as coordinator; `u2pc_native` applies to
  /// kU2PC only). Site ids are assigned sequentially from 0. The site is
  /// registered in the shared PCP table.
  Site* AddSite(ProtocolKind participant_protocol,
                ProtocolKind coordinator_kind = ProtocolKind::kPrAny,
                ProtocolKind u2pc_native = ProtocolKind::kPrN);

  /// Full-control variant of AddSite.
  Site* AddSiteWithSpec(ProtocolKind participant_protocol,
                        const CoordinatorSpec& spec);

  /// Builds a transaction descriptor with protocols resolved from the PCP.
  Transaction MakeTransaction(SiteId coordinator,
                              const std::vector<SiteId>& participants,
                              const std::map<SiteId, Vote>& votes = {});

  /// Schedules commit processing of `txn` at simulated time `when`
  /// (participants' planned votes are installed at submission time).
  void SubmitAt(SimTime when, const Transaction& txn);

  /// Convenience: MakeTransaction + SubmitAt(now). Returns the txn id.
  TxnId Submit(SiteId coordinator, const std::vector<SiteId>& participants,
               const std::map<SiteId, Vote>& votes = {});

  /// Schedules a timed crash of `site` at `when`, down for `downtime`.
  void ScheduleCrash(SiteId site, SimTime when, SimDuration downtime);

  /// Runs the event loop until quiescence (or the event cap). When tracing
  /// is enabled, rebuilds per-transaction timelines from the trace and
  /// records each newly completed transaction's metrics (txn.messages,
  /// txn.forced_writes, txn.latency.*) exactly once.
  RunStats Run();

  /// Per-transaction timelines from the last Run() (empty unless tracing
  /// was enabled via sim().trace().Enable()).
  const std::map<TxnId, TxnTimeline>& timelines() const {
    return timelines_;
  }

  /// End-of-run site snapshots for the operational checker.
  std::vector<SiteEndState> EndStates() const;

  // Correctness evaluations over the recorded history / end state.
  AtomicityReport CheckAtomicity() const;
  SafeStateReport CheckSafeState() const;
  OperationalReport CheckOperational() const;

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  EventLog& history() { return history_; }
  const EventLog& history() const { return history_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  FailureInjector& injector() { return injector_; }
  const PcpTable& pcp() const { return pcp_; }

  Site* site(SiteId id);
  const Site* site(SiteId id) const;
  size_t site_count() const { return sites_.size(); }

  TxnIdGenerator& txn_ids() { return txn_ids_; }
  const SystemConfig& config() const { return config_; }

 private:
  SystemConfig config_;
  Simulator sim_;
  MetricsRegistry metrics_;
  EventLog history_;
  Network net_;
  PcpTable pcp_;
  FailureInjector injector_;
  TxnIdGenerator txn_ids_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::map<TxnId, TxnTimeline> timelines_;
  std::set<TxnId> timeline_recorded_;
};

}  // namespace prany

#endif  // PRANY_HARNESS_SYSTEM_H_
