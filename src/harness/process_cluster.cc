#include "harness/process_cluster.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <utility>

#include "common/string_util.h"

namespace prany {
namespace harness {

namespace {

/// Directory part of `path` ("" if none).
std::string DirName(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), X_OK) == 0;
}

/// See ProcessClusterConfig::server_binary for the search order.
std::string ResolveServerBinary(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("PRANY_SITE_SERVER")) {
    if (env[0] != '\0') return env;
  }
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n > 0) {
    exe[n] = '\0';
    const std::string dir = DirName(exe);
    for (const std::string& candidate :
         {dir + "/prany_site_server", dir + "/../tools/prany_site_server"}) {
      if (FileExists(candidate)) return candidate;
    }
  }
  return "prany_site_server";  // hope for $PATH
}

}  // namespace

std::string SerializeSigEvent(const SigEvent& event) {
  const long long outcome =
      event.outcome.has_value() ? static_cast<long long>(*event.outcome) : -1;
  return StrFormat("%llu %llu %u %u %llu %lld %u %u",
                   static_cast<unsigned long long>(event.seq),
                   static_cast<unsigned long long>(event.time),
                   static_cast<unsigned>(event.type), event.site,
                   static_cast<unsigned long long>(event.txn), outcome,
                   event.peer, event.by_presumption ? 1u : 0u);
}

bool ParseSigEvent(const std::string& line, SigEvent* out) {
  unsigned long long seq = 0;
  unsigned long long time = 0;
  unsigned type = 0;
  unsigned site = 0;
  unsigned long long txn = 0;
  long long outcome = 0;
  unsigned peer = 0;
  unsigned by_presumption = 0;
  if (std::sscanf(line.c_str(), "%llu %llu %u %u %llu %lld %u %u", &seq,
                  &time, &type, &site, &txn, &outcome, &peer,
                  &by_presumption) != 8) {
    return false;
  }
  if (type > static_cast<unsigned>(SigEventType::kSiteRecover)) return false;
  if (outcome < -1 || outcome > static_cast<long long>(Outcome::kAbort)) {
    return false;
  }
  out->seq = seq;
  out->time = time;
  out->type = static_cast<SigEventType>(type);
  out->site = static_cast<SiteId>(site);
  out->txn = txn;
  out->outcome = outcome < 0
                     ? std::nullopt
                     : std::optional<Outcome>(static_cast<Outcome>(outcome));
  out->peer = static_cast<SiteId>(peer);
  out->by_presumption = by_presumption != 0;
  return true;
}

ProcessCluster::ProcessCluster(ProcessClusterConfig config)
    : config_(std::move(config)),
      server_binary_(ResolveServerBinary(config_.server_binary)) {
  for (const ProcessSiteSpec& spec : config_.sites) {
    Proc proc;
    proc.spec = spec;
    procs_.push_back(proc);
  }
}

ProcessCluster::~ProcessCluster() {
  for (Proc& proc : procs_) {
    if (!proc.running) continue;
    ::kill(proc.pid, SIGKILL);
    ::waitpid(proc.pid, nullptr, 0);
    proc.running = false;
  }
}

std::string ProcessCluster::ResultPath(SiteId site) const {
  return config_.log_dir + "/site" + std::to_string(site) + ".result";
}

std::string ProcessCluster::HistoryPath(SiteId site) const {
  return config_.log_dir + "/site" + std::to_string(site) + ".history";
}

Status ProcessCluster::Launch(Proc* proc) {
  std::vector<std::string> args;
  args.push_back(server_binary_);
  args.push_back("--site=" + std::to_string(proc->spec.id));
  args.push_back("--protocol=" + ToString(proc->spec.protocol));
  if (proc->spec.coordinator.has_value()) {
    args.push_back("--coordinator=" + ToString(*proc->spec.coordinator));
  }
  args.push_back("--listen=" + proc->spec.address);
  for (const ProcessSiteSpec& peer : config_.sites) {
    if (peer.id == proc->spec.id) continue;
    args.push_back("--peer=" + std::to_string(peer.id) + ":" +
                   ToString(peer.protocol) + ":" + peer.address);
  }
  args.push_back("--log-dir=" + config_.log_dir);
  args.push_back("--result=" + ResultPath(proc->spec.id));
  args.push_back("--history=" + HistoryPath(proc->spec.id));
  args.push_back("--duration-us=" + std::to_string(config_.duration_us));
  args.push_back("--clients=" + std::to_string(config_.clients));
  args.push_back("--participants=" +
                 std::to_string(config_.participants_per_txn));
  args.push_back("--abort-fraction=" +
                 StrFormat("%.6f", config_.abort_fraction));
  args.push_back("--await-timeout-us=" +
                 std::to_string(config_.await_timeout_us));
  args.push_back("--seed=" + std::to_string(config_.seed));
  args.push_back("--incarnation=" + std::to_string(proc->incarnation));

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Internal(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    // exec failed; nothing sensible to do in the child but die loudly.
    std::fprintf(stderr, "execv(%s): %s\n", argv[0], std::strerror(errno));
    ::_exit(127);
  }
  proc->pid = pid;
  proc->running = true;
  return Status::OK();
}

Status ProcessCluster::LaunchAll() {
  for (Proc& proc : procs_) {
    Status launched = Launch(&proc);
    if (!launched.ok()) {
      for (Proc& started : procs_) {
        if (started.running) {
          ::kill(started.pid, SIGKILL);
          ::waitpid(started.pid, nullptr, 0);
          started.running = false;
        }
      }
      return launched;
    }
  }
  return Status::OK();
}

void ProcessCluster::KillSite(SiteId site) {
  for (Proc& proc : procs_) {
    if (proc.spec.id != site || !proc.running) continue;
    ::kill(proc.pid, SIGKILL);
    ::waitpid(proc.pid, nullptr, 0);
    proc.running = false;
    return;
  }
}

Status ProcessCluster::RestartSite(SiteId site) {
  for (Proc& proc : procs_) {
    if (proc.spec.id != site) continue;
    if (proc.running) {
      return Status::FailedPrecondition("site still running");
    }
    ++proc.incarnation;
    return Launch(&proc);
  }
  return Status::NotFound("unknown site");
}

void ProcessCluster::SignalAll(int sig) {
  for (const Proc& proc : procs_) {
    if (proc.running) ::kill(proc.pid, sig);
  }
}

bool ProcessCluster::WaitAll(uint64_t timeout_us) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  bool all_clean = true;
  for (Proc& proc : procs_) {
    while (proc.running) {
      int wstatus = 0;
      const pid_t reaped = ::waitpid(proc.pid, &wstatus, WNOHANG);
      if (reaped == proc.pid) {
        proc.running = false;
        all_clean = all_clean && WIFEXITED(wstatus) &&
                    WEXITSTATUS(wstatus) == 0;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(proc.pid, SIGKILL);
        ::waitpid(proc.pid, nullptr, 0);
        proc.running = false;
        all_clean = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return all_clean;
}

bool ProcessCluster::Running(SiteId site) const {
  for (const Proc& proc : procs_) {
    if (proc.spec.id == site) return proc.running;
  }
  return false;
}

std::map<std::string, std::string> ProcessCluster::ResultFor(
    SiteId site) const {
  std::map<std::string, std::string> kv;
  std::ifstream in(ResultPath(site));
  std::string line;
  while (std::getline(in, line)) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return kv;
}

ClusterLoadTotals ProcessCluster::CollectTotals() const {
  ClusterLoadTotals totals;
  for (const Proc& proc : procs_) {
    std::map<std::string, std::string> kv = ResultFor(proc.spec.id);
    auto add = [&kv](const char* key, uint64_t* into) {
      auto it = kv.find(key);
      if (it != kv.end()) *into += std::strtoull(it->second.c_str(), nullptr, 10);
    };
    add("submitted", &totals.submitted);
    add("committed", &totals.committed);
    add("aborted", &totals.aborted);
    add("timeouts", &totals.timeouts);
    add("dropped", &totals.dropped);
  }
  return totals;
}

size_t ProcessCluster::MergeHistories(EventLog* out) const {
  out->Clear();
  size_t merged = 0;
  for (const Proc& proc : procs_) {
    std::ifstream in(HistoryPath(proc.spec.id));
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      SigEvent event;
      if (!ParseSigEvent(line, &event)) continue;
      out->Record(event);
      ++merged;
    }
  }
  return merged;
}

AtomicityReport ProcessCluster::CheckAtomicity() const {
  EventLog merged;
  MergeHistories(&merged);
  return AtomicityChecker::Check(merged);
}

}  // namespace harness
}  // namespace prany
