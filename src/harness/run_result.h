// End-of-run aggregation: message/IO counts, latencies, table high-water
// marks, and the three correctness reports, in one printable summary.

#ifndef PRANY_HARNESS_RUN_RESULT_H_
#define PRANY_HARNESS_RUN_RESULT_H_

#include <map>
#include <string>

#include "harness/system.h"

namespace prany {

/// Aggregate results of one run (collect with Summarize after Run()).
struct RunSummary {
  // Transactions.
  int64_t txns_begun = 0;
  int64_t commits = 0;
  int64_t aborts = 0;
  int64_t vote_timeouts = 0;

  // Network.
  std::map<std::string, int64_t> messages_by_type;
  int64_t messages_total = 0;
  int64_t bytes_sent = 0;

  // Logging (summed over all sites).
  uint64_t log_appends = 0;
  uint64_t forced_appends = 0;
  uint64_t flushes = 0;

  // Memory.
  size_t max_protocol_table = 0;        ///< Max across sites.
  size_t residual_table_entries = 0;    ///< Entries left at quiescence.
  size_t residual_unreleased_txns = 0;  ///< Log txns left unreleasable.

  // Latency (coordinator begin -> forget).
  DistributionStats commit_latency;
  DistributionStats abort_latency;

  // Failure counts.
  uint64_t crashes = 0;
  int64_t presumed_answers = 0;
  int64_t decision_resends = 0;

  // Correctness.
  AtomicityReport atomicity;
  SafeStateReport safe_state;
  OperationalReport operational;

  /// Whether the run quiesced and all checks passed.
  bool AllCorrect() const {
    return atomicity.ok() && safe_state.ok() && operational.ok();
  }

  std::string ToString() const;
};

/// Collects a RunSummary from a quiesced system (runs the checkers).
RunSummary Summarize(const System& system);

}  // namespace prany

#endif  // PRANY_HARNESS_RUN_RESULT_H_
