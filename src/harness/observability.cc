#include "harness/observability.h"

#include <cstdio>
#include <cstring>

#include "common/trace_export.h"

namespace prany {

namespace {

ObservabilityScope* g_current = nullptr;

/// If `arg` is `--<flag>=VALUE`, stores VALUE and returns true.
bool MatchFlag(const char* arg, const char* flag, std::string* value) {
  size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

ObservabilityScope::ObservabilityScope(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (MatchFlag(argv[i], "--trace-json", &trace_path_) ||
        MatchFlag(argv[i], "--metrics-json", &metrics_path_)) {
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  previous_ = g_current;
  g_current = this;
}

ObservabilityScope::~ObservabilityScope() {
  Flush();
  g_current = previous_;
}

void ObservabilityScope::Collect(
    const TraceLog& trace, const std::map<TxnId, TxnTimeline>& timelines,
    const MetricsRegistry& metrics) {
  if (!active()) return;
  if (!trace.events().empty()) {
    last_trace_ = trace.events();
    last_timelines_ = timelines;
  }
  for (const auto& [name, value] : metrics.counters()) {
    merged_metrics_.Add(name, value);
  }
  for (const std::string& name : metrics.DistributionNames()) {
    for (double sample : metrics.samples(name)) {
      merged_metrics_.Observe(name, sample);
    }
  }
}

bool ObservabilityScope::Flush() {
  bool ok = true;
  if (!trace_path_.empty()) {
    if (!WriteStringToFile(trace_path_,
                           ChromeTraceJson(last_trace_, last_timelines_))) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_path_.c_str());
      ok = false;
    }
  }
  if (!metrics_path_.empty()) {
    if (!WriteStringToFile(metrics_path_, MetricsJson(merged_metrics_))) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_path_.c_str());
      ok = false;
    }
  }
  return ok;
}

ObservabilityScope* ObservabilityScope::Current() { return g_current; }

}  // namespace prany
