#include "harness/system.h"

#include "common/status.h"
#include "harness/observability.h"

namespace prany {

System::System(SystemConfig config)
    : config_(config),
      sim_(config.seed),
      net_(&sim_, &metrics_),
      injector_(sim_.rng().Fork()) {
  net_.SetDefaultLatency(
      std::make_unique<FixedLatency>(config.fixed_latency));
  net_.SetDropProbability(config.drop_probability);
  net_.SetDuplicateProbability(config.duplicate_probability);
  ObservabilityScope* scope = ObservabilityScope::Current();
  if (scope != nullptr && scope->tracing()) sim_.trace().Enable(false);
}

System::~System() = default;

Site* System::AddSite(ProtocolKind participant_protocol,
                      ProtocolKind coordinator_kind,
                      ProtocolKind u2pc_native) {
  CoordinatorSpec spec;
  spec.kind = coordinator_kind;
  spec.u2pc_native = u2pc_native;
  return AddSiteWithSpec(participant_protocol, spec);
}

Site* System::AddSiteWithSpec(ProtocolKind participant_protocol,
                              const CoordinatorSpec& spec) {
  SiteId id = static_cast<SiteId>(sites_.size());
  Status registered = pcp_.RegisterSite(id, participant_protocol);
  PRANY_CHECK_MSG(registered.ok(), registered.ToString());

  auto site = std::make_unique<Site>(id, participant_protocol, spec, &sim_,
                                     &net_, &history_, &metrics_, &pcp_,
                                     config_.timing);
  site->SetCrashProbeHandler(
      [this](SiteId s, CrashPoint point, TxnId txn) {
        return injector_.Probe(s, point, txn);
      });
  sites_.push_back(std::move(site));
  return sites_.back().get();
}

Transaction System::MakeTransaction(SiteId coordinator,
                                    const std::vector<SiteId>& participants,
                                    const std::map<SiteId, Vote>& votes) {
  Transaction txn;
  txn.id = txn_ids_.Next();
  txn.coordinator = coordinator;
  for (SiteId p : participants) {
    std::optional<ProtocolKind> protocol = pcp_.ProtocolFor(p);
    PRANY_CHECK_MSG(protocol.has_value(), "participant not registered");
    txn.participants.push_back(ParticipantInfo{p, *protocol});
  }
  txn.planned_votes = votes;
  Status valid = txn.Validate();
  PRANY_CHECK_MSG(valid.ok(), valid.ToString());
  return txn;
}

void System::SubmitAt(SimTime when, const Transaction& txn) {
  sim_.ScheduleAt(when, [this, txn]() {
    // Install the planned votes (the result of each participant's local
    // execution), then start commit processing at the coordinator. A
    // coordinator that is down at submission time drops the transaction —
    // it never reached commit processing.
    for (const auto& [site_id, vote] : txn.planned_votes) {
      site(site_id)->participant()->SetPlannedVote(txn.id, vote);
    }
    Site* coord = site(txn.coordinator);
    if (!coord->IsUp()) {
      metrics_.Add("system.dropped_submissions");
      return;
    }
    coord->coordinator()->BeginCommit(txn);
  });
}

TxnId System::Submit(SiteId coordinator,
                     const std::vector<SiteId>& participants,
                     const std::map<SiteId, Vote>& votes) {
  Transaction txn = MakeTransaction(coordinator, participants, votes);
  SubmitAt(sim_.Now(), txn);
  return txn.id;
}

void System::ScheduleCrash(SiteId site_id, SimTime when,
                           SimDuration downtime) {
  sim_.ScheduleAt(when, [this, site_id, downtime]() {
    Site* s = site(site_id);
    if (s->IsUp()) s->Crash(downtime);
  });
}

RunStats System::Run() {
  RunStats stats = sim_.Run(config_.max_events);
  if (sim_.trace().enabled()) {
    timelines_ = BuildTimelines(sim_.trace().events());
    for (const auto& [txn, timeline] : timelines_) {
      // Record each transaction at most once, and only once its coordinator
      // has forgotten it (Complete()); C2PC coordinators that never forget
      // therefore never contribute latency samples.
      if (!timeline.Complete() || timeline_recorded_.count(txn) > 0) {
        continue;
      }
      ObserveTimeline(timeline, &metrics_);
      timeline_recorded_.insert(txn);
    }
  }
  if (ObservabilityScope* scope = ObservabilityScope::Current()) {
    scope->Collect(sim_.trace(), timelines_, metrics_);
  }
  return stats;
}

std::vector<SiteEndState> System::EndStates() const {
  std::vector<SiteEndState> out;
  out.reserve(sites_.size());
  for (const auto& site : sites_) out.push_back(site->EndState());
  return out;
}

AtomicityReport System::CheckAtomicity() const {
  return AtomicityChecker::Check(history_);
}

SafeStateReport System::CheckSafeState() const {
  return SafeStateChecker::Check(history_);
}

OperationalReport System::CheckOperational() const {
  return OperationalChecker::Check(history_, EndStates());
}

Site* System::site(SiteId id) {
  PRANY_CHECK_MSG(id < sites_.size(), "unknown site id");
  return sites_[id].get();
}

const Site* System::site(SiteId id) const {
  PRANY_CHECK_MSG(id < sites_.size(), "unknown site id");
  return sites_[id].get();
}

}  // namespace prany
