// Canned experiment scenarios shared by the tests, benches and examples:
//   * single-transaction protocol flows (the executable form of
//     Figures 1-4),
//   * the incompatible-presumption crash schedules behind Theorem 1,
//   * exhaustive crash-point sweeps behind Theorem 3.

#ifndef PRANY_HARNESS_SCENARIO_H_
#define PRANY_HARNESS_SCENARIO_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/timeline.h"
#include "common/trace.h"
#include "harness/run_result.h"
#include "harness/system.h"

namespace prany {

/// Measured costs of one failure-free transaction flow.
struct FlowResult {
  Outcome outcome = Outcome::kCommit;
  ProtocolKind mode = ProtocolKind::kPrN;  ///< Mode the coordinator chose.

  // Message counts by type name ("PREPARE", "VOTE", "DECISION", "ACK").
  std::map<std::string, int64_t> messages;
  int64_t total_messages = 0;

  // Coordinator-site log I/O.
  uint64_t coord_appends = 0;
  uint64_t coord_forced = 0;

  // Participant-site log I/O (summed).
  uint64_t part_appends = 0;
  uint64_t part_forced = 0;

  /// Coordinator begin -> decision durable.
  double decision_latency_us = 0;
  /// Coordinator begin -> transaction forgotten.
  double completion_latency_us = 0;

  bool correct = false;  ///< All three checkers passed.

  /// The full structured trace of the run (tracing is always enabled for
  /// flows) and the transaction's aggregated timeline.
  std::vector<TraceEvent> trace;
  TxnTimeline timeline;

  /// Summaries of the "txn."-prefixed distributions the timeline layer
  /// recorded (txn.messages, txn.forced_writes, txn.latency.*).
  std::map<std::string, DistributionStats> txn_metrics;
};

/// Runs one failure-free transaction: a coordinator of `coordinator_kind`
/// (with `u2pc_native` when kU2PC) against participants speaking
/// `participant_protocols`. Abort outcomes are produced with ForceAbort
/// while every participant is prepared, matching the paper's abort-case
/// figures. `forced_write_latency` > 0 separates protocols by forced-write
/// count in the latency columns.
FlowResult RunFlow(ProtocolKind coordinator_kind, ProtocolKind u2pc_native,
                   const std::vector<ProtocolKind>& participant_protocols,
                   Outcome outcome, uint64_t seed = 1,
                   SimDuration forced_write_latency = 0);

/// Result of one adversarial-schedule scenario.
struct ScenarioResult {
  RunStats run;
  RunSummary summary;
  /// Outcome each participant site finally enforced (from the history).
  std::map<SiteId, Outcome> enforced;
};

/// The §2 / Theorem 1 schedule: coordinator (site 0) of
/// `coordinator_kind`, participants {site 1: PrA, site 2: PrC}. For a
/// commit outcome, the PrC participant crashes on receiving the decision;
/// for an abort, the PrA participant does. The crashed participant
/// recovers only after the coordinator has forgotten the transaction and
/// inquires. U2PC coordinators answer with their native presumption and
/// violate atomicity; PrAny adopts the inquirer's presumption and does
/// not; C2PC stays consistent but never forgets.
ScenarioResult RunIncompatiblePresumptionScenario(
    ProtocolKind coordinator_kind, ProtocolKind u2pc_native, Outcome outcome,
    uint64_t seed = 1);

/// Aggregate result of an exhaustive crash sweep.
struct SweepResult {
  uint64_t scenarios = 0;
  uint64_t atomicity_failures = 0;
  uint64_t safe_state_failures = 0;
  uint64_t operational_failures = 0;
  uint64_t non_quiescent = 0;
  std::vector<std::string> failure_descriptions;

  bool AllCorrect() const {
    return atomicity_failures == 0 && safe_state_failures == 0 &&
           operational_failures == 0 && non_quiescent == 0;
  }
};

/// Runs one single-transaction scenario per (crash point x crash target x
/// outcome) for each participant-protocol mix, and evaluates all checkers.
/// Crash targets are the coordinator (site 0) for coordinator points and
/// each participant for participant points. `downtime` is chosen long
/// enough that the coordinator forgets before the crashed site returns.
SweepResult RunCrashSweep(
    ProtocolKind coordinator_kind, ProtocolKind u2pc_native,
    const std::vector<std::vector<ProtocolKind>>& participant_mixes,
    SimDuration downtime = 1'000'000, uint64_t seed = 1);

/// Common participant-protocol mixes used across tests and benches.
std::vector<std::vector<ProtocolKind>> StandardMixes();

/// Exhaustive single-omission sweep: runs the failure-free scenario once
/// to count its messages (M), then re-runs it M times, silently dropping
/// the n-th message of run n. Every run must quiesce (retransmission,
/// inquiries and presumptions absorb any single loss) and satisfy all
/// three checkers. A model-checker-flavoured complement to the random
/// loss tests.
SweepResult RunSingleOmissionSweep(
    ProtocolKind coordinator_kind, ProtocolKind u2pc_native,
    const std::vector<ProtocolKind>& participant_protocols, Outcome outcome,
    uint64_t seed = 1);

}  // namespace prany

#endif  // PRANY_HARNESS_SCENARIO_H_
