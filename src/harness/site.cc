#include "harness/site.h"

#include "common/status.h"
#include "common/string_util.h"
#include "core/prany_coordinator.h"
#include "protocol/coordinator_c2pc.h"
#include "protocol/coordinator_pra.h"
#include "protocol/coordinator_prc.h"
#include "protocol/coordinator_prn.h"
#include "protocol/coordinator_u2pc.h"

namespace prany {

namespace {
std::unique_ptr<CoordinatorBase> MakeCoordinator(const CoordinatorSpec& spec,
                                                 const EngineContext& ctx,
                                                 const PcpTable* pcp) {
  switch (spec.kind) {
    case ProtocolKind::kPrN:
      return std::make_unique<CoordinatorPrN>(ctx);
    case ProtocolKind::kPrA:
      return std::make_unique<CoordinatorPrA>(ctx);
    case ProtocolKind::kPrC:
      return std::make_unique<CoordinatorPrC>(ctx);
    case ProtocolKind::kU2PC:
      return std::make_unique<CoordinatorU2PC>(ctx, spec.u2pc_native);
    case ProtocolKind::kC2PC:
      return std::make_unique<CoordinatorC2PC>(ctx, spec.c2pc_resend_cap);
    case ProtocolKind::kPrAny:
      return std::make_unique<PrAnyCoordinator>(ctx, pcp,
                                                spec.prany_always_mixed_mode);
  }
  PRANY_CHECK_MSG(false, "unknown coordinator kind");
  return nullptr;
}
}  // namespace

Site::Site(SiteId id, ProtocolKind participant_protocol, CoordinatorSpec spec,
           EventLoop* sim, ITransport* net, EventLog* history,
           MetricsRegistry* metrics, const PcpTable* pcp, TimingConfig timing,
           std::unique_ptr<StableLog> log)
    : id_(id), sim_(sim), history_(history), log_(std::move(log)) {
  if (log_ == nullptr) log_ = std::make_unique<StableLog>("wal", metrics);
  log_->BindTrace(&sim->trace(), id, [sim]() { return sim->Now(); });
  EngineContext ctx;
  ctx.self = id;
  ctx.sim = sim;
  ctx.net = net;
  ctx.log = log_.get();
  ctx.history = history;
  ctx.metrics = metrics;
  ctx.timing = timing;
  ctx.is_up = [this]() { return up_.load(std::memory_order_acquire); };
  ctx.crash_probe = [this](CrashPoint point, TxnId txn) {
    if (!crash_probe_handler_) return false;
    std::optional<SimDuration> downtime =
        crash_probe_handler_(id_, point, txn);
    if (!downtime.has_value()) return false;
    sim_->Trace(StrFormat("site %u crash injected at %s txn=%llu", id_,
                          ToString(point).c_str(),
                          static_cast<unsigned long long>(txn)));
    Crash(*downtime);
    return true;
  };

  participant_ = std::make_unique<ParticipantEngine>(ctx, participant_protocol);
  coordinator_ = MakeCoordinator(spec, ctx, pcp);
  is_prany_ = spec.kind == ProtocolKind::kPrAny;
  net->RegisterEndpoint(id, this);
}

Site::~Site() = default;

void Site::OnMessage(const Message& msg) {
  if (!up_) return;  // Defensive; the network already drops to down sites.
  switch (msg.type) {
    case MessageType::kPrepare:
      participant_->OnPrepare(msg);
      break;
    case MessageType::kDecision:
      participant_->OnDecision(msg);
      break;
    case MessageType::kInquiryReply:
      participant_->OnInquiryReply(msg);
      break;
    case MessageType::kVote:
      coordinator_->OnVote(msg);
      break;
    case MessageType::kAck:
      coordinator_->OnAck(msg);
      break;
    case MessageType::kInquiry:
      coordinator_->OnInquiry(msg);
      break;
  }
}

void Site::Crash(SimDuration downtime) {
  CrashNow(downtime);
  if (restart_handler_) {
    restart_handler_(id_, downtime);
  } else {
    sim_->Schedule(downtime, [this]() { RecoverNow(); },
                   StrFormat("site%u.recover", id_));
  }
}

void Site::CrashNow(SimDuration planned_downtime) {
  PRANY_CHECK_MSG(up_.load(), "crashing a site that is already down");
  // Release pairs with IsUp()'s acquire (see header).
  up_.store(false, std::memory_order_release);
  ++crash_count_;
  history_->Record(SigEvent{.time = sim_->Now(),
                            .type = SigEventType::kSiteCrash,
                            .site = id_});
  if (sim_->trace().enabled()) {
    TraceEvent e;
    e.kind = TraceEventKind::kSiteCrash;
    e.site = id_;
    e.value = planned_downtime;
    sim_->Emit(std::move(e));
  }
  // Volatile state is lost: the unflushed log tail, both engines' tables,
  // and the PrAny APP view.
  log_->Crash();
  participant_->Crash();
  coordinator_->Crash();
  if (is_prany_) {
    static_cast<PrAnyCoordinator*>(coordinator_.get())->ClearApp();
  }
}

void Site::RecoverNow() {
  // Release pairs with IsUp()'s acquire (see header).
  up_.store(true, std::memory_order_release);
  history_->Record(SigEvent{.time = sim_->Now(),
                            .type = SigEventType::kSiteRecover,
                            .site = id_});
  if (sim_->trace().enabled()) {
    TraceEvent e;
    e.kind = TraceEventKind::kSiteRecover;
    e.site = id_;
    sim_->Emit(std::move(e));
  }
  coordinator_->Recover();
  participant_->Recover();
}

void Site::SetCrashProbeHandler(CrashProbeHandler handler) {
  crash_probe_handler_ = std::move(handler);
}

void Site::SetRestartHandler(RestartHandler handler) {
  restart_handler_ = std::move(handler);
}

SiteEndState Site::EndState() const {
  SiteEndState state;
  state.site = id_;
  state.coord_table_size = coordinator_->table().Size();
  state.participant_entries = participant_->ActiveTxns();
  state.unreleased_txns = log_->UnreleasedTxns();
  state.stable_log_records = log_->StableSize();
  return state;
}

}  // namespace prany
