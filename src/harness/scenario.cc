#include "harness/scenario.h"

#include <cstring>
#include <memory>

#include "common/status.h"
#include "common/string_util.h"

namespace prany {

namespace {

/// Simulated time at which a ForceAbort lands strictly after every
/// participant prepared and strictly before the first vote reaches the
/// coordinator (one-way latency 500us; forced writes add `fw`).
SimTime AbortInstant(SimDuration fw) { return 800 + fw; }

/// Builds a system with site 0 as coordinator and one site per entry of
/// `participant_protocols`.
std::unique_ptr<System> BuildSystem(
    ProtocolKind coordinator_kind, ProtocolKind u2pc_native,
    const std::vector<ProtocolKind>& participant_protocols,
    uint64_t seed, SimDuration forced_write_latency, uint64_t max_events) {
  SystemConfig cfg;
  cfg.seed = seed;
  cfg.timing.forced_write_latency = forced_write_latency;
  cfg.max_events = max_events;
  auto system = std::make_unique<System>(cfg);
  // The coordinator site's own participant protocol is irrelevant here
  // (it never participates in these scenarios).
  system->AddSite(ProtocolKind::kPrN, coordinator_kind, u2pc_native);
  for (ProtocolKind p : participant_protocols) {
    system->AddSite(p, ProtocolKind::kPrAny);
  }
  return system;
}

std::vector<SiteId> ParticipantSites(size_t n) {
  std::vector<SiteId> out;
  for (size_t i = 0; i < n; ++i) out.push_back(static_cast<SiteId>(i + 1));
  return out;
}

void ScheduleForceAbort(System* system, TxnId txn, SimDuration fw) {
  system->sim().ScheduleAt(AbortInstant(fw), [system, txn]() {
    system->site(0)->coordinator()->ForceAbort(txn);
  });
}

}  // namespace

FlowResult RunFlow(ProtocolKind coordinator_kind, ProtocolKind u2pc_native,
                   const std::vector<ProtocolKind>& participant_protocols,
                   Outcome outcome, uint64_t seed,
                   SimDuration forced_write_latency) {
  auto system =
      BuildSystem(coordinator_kind, u2pc_native, participant_protocols, seed,
                  forced_write_latency, /*max_events=*/1'000'000);
  system->sim().trace().Enable(/*echo_to_stderr=*/false);
  Transaction txn = system->MakeTransaction(
      0, ParticipantSites(participant_protocols.size()));
  system->SubmitAt(0, txn);
  if (outcome == Outcome::kAbort) {
    ScheduleForceAbort(system.get(), txn.id, forced_write_latency);
  }
  system->Run();

  FlowResult result;
  result.outcome = outcome;
  for (const auto& [name, value] : system->metrics().counters()) {
    constexpr const char* kMsgPrefix = "net.msg.";
    constexpr const char* kModePrefix = "coord.mode.";
    if (name.rfind(kMsgPrefix, 0) == 0) {
      result.messages[name.substr(strlen(kMsgPrefix))] = value;
      result.total_messages += value;
    } else if (name.rfind(kModePrefix, 0) == 0 && value > 0) {
      ProtocolKind mode;
      if (ParseProtocolKind(name.substr(strlen(kModePrefix)), &mode)) {
        result.mode = mode;
      }
    }
  }
  result.coord_appends = system->site(0)->wal()->stats().appends;
  result.coord_forced = system->site(0)->wal()->stats().forced_appends;
  for (size_t i = 0; i < participant_protocols.size(); ++i) {
    const LogStats& stats =
        system->site(static_cast<SiteId>(i + 1))->wal()->stats();
    result.part_appends += stats.appends;
    result.part_forced += stats.forced_appends;
  }

  const SigEvent* decide = system->history().FirstWhere(
      [&](const SigEvent& e) {
        return e.txn == txn.id && e.type == SigEventType::kCoordDecide;
      });
  const SigEvent* forget = system->history().FirstWhere(
      [&](const SigEvent& e) {
        return e.txn == txn.id && e.type == SigEventType::kCoordForget;
      });
  if (decide != nullptr) {
    result.decision_latency_us = static_cast<double>(decide->time);
  }
  if (forget != nullptr) {
    result.completion_latency_us = static_cast<double>(forget->time);
  }
  result.correct = system->CheckAtomicity().ok() &&
                   system->CheckSafeState().ok() &&
                   system->CheckOperational().ok();

  result.trace = system->sim().trace().events();
  if (auto it = system->timelines().find(txn.id);
      it != system->timelines().end()) {
    result.timeline = it->second;
  }
  for (const std::string& name : system->metrics().DistributionNames()) {
    if (name.rfind("txn.", 0) == 0) {
      result.txn_metrics[name] = system->metrics().Summarize(name);
    }
  }
  return result;
}

ScenarioResult RunIncompatiblePresumptionScenario(
    ProtocolKind coordinator_kind, ProtocolKind u2pc_native, Outcome outcome,
    uint64_t seed) {
  auto system = BuildSystem(coordinator_kind, u2pc_native,
                            {ProtocolKind::kPrA, ProtocolKind::kPrC}, seed,
                            /*forced_write_latency=*/0,
                            /*max_events=*/1'000'000);
  Transaction txn = system->MakeTransaction(0, {1, 2});
  system->SubmitAt(0, txn);
  if (outcome == Outcome::kAbort) {
    ScheduleForceAbort(system.get(), txn.id, 0);
  }

  // The participant whose protocol does not acknowledge `outcome` fails on
  // receiving the decision, before writing it to its stable log — §2's
  // schedule — and recovers long after the coordinator forgot.
  SiteId victim = outcome == Outcome::kCommit ? 2 : 1;  // PrC : PrA.
  system->injector().CrashAtPoint(victim,
                                  CrashPoint::kPartOnDecisionReceived,
                                  txn.id, /*downtime=*/1'000'000);

  ScenarioResult result;
  result.run = system->Run();
  result.summary = Summarize(*system);
  for (const SigEvent& e : system->history().events()) {
    if (e.txn == txn.id && e.type == SigEventType::kPartEnforce) {
      result.enforced[e.site] = *e.outcome;
    }
  }
  return result;
}

SweepResult RunCrashSweep(
    ProtocolKind coordinator_kind, ProtocolKind u2pc_native,
    const std::vector<std::vector<ProtocolKind>>& participant_mixes,
    SimDuration downtime, uint64_t seed) {
  SweepResult sweep;
  uint64_t scenario_seed = seed;
  for (const std::vector<ProtocolKind>& mix : participant_mixes) {
    for (Outcome outcome : {Outcome::kCommit, Outcome::kAbort}) {
      struct Target {
        SiteId site;
        CrashPoint point;
      };
      std::vector<Target> targets;
      for (CrashPoint p : kCoordinatorCrashPoints) {
        targets.push_back({0, p});
      }
      for (size_t i = 0; i < mix.size(); ++i) {
        for (CrashPoint p : kParticipantCrashPoints) {
          targets.push_back({static_cast<SiteId>(i + 1), p});
        }
      }
      for (const Target& target : targets) {
        ++sweep.scenarios;
        auto system =
            BuildSystem(coordinator_kind, u2pc_native, mix,
                        ++scenario_seed, /*forced_write_latency=*/0,
                        /*max_events=*/500'000);
        Transaction txn =
            system->MakeTransaction(0, ParticipantSites(mix.size()));
        system->SubmitAt(0, txn);
        if (outcome == Outcome::kAbort) {
          ScheduleForceAbort(system.get(), txn.id, 0);
        }
        system->injector().CrashAtPoint(target.site, target.point, txn.id,
                                        downtime);
        RunStats run = system->Run();

        auto describe = [&](const char* what) {
          if (sweep.failure_descriptions.size() < 50) {
            std::string mix_names;
            for (ProtocolKind p : mix) mix_names += ToString(p) + " ";
            sweep.failure_descriptions.push_back(StrFormat(
                "%s: mix=[%s] outcome=%s crash site=%u at %s", what,
                mix_names.c_str(), ToString(outcome).c_str(), target.site,
                ToString(target.point).c_str()));
          }
        };
        if (run.hit_event_limit) {
          ++sweep.non_quiescent;
          describe("non-quiescent");
          continue;
        }
        if (!system->CheckAtomicity().ok()) {
          ++sweep.atomicity_failures;
          describe("atomicity");
        }
        if (!system->CheckSafeState().ok()) {
          ++sweep.safe_state_failures;
          describe("safe-state");
        }
        if (!system->CheckOperational().ok()) {
          ++sweep.operational_failures;
          describe("operational");
        }
      }
    }
  }
  return sweep;
}

SweepResult RunSingleOmissionSweep(
    ProtocolKind coordinator_kind, ProtocolKind u2pc_native,
    const std::vector<ProtocolKind>& participant_protocols, Outcome outcome,
    uint64_t seed) {
  auto run_once = [&](std::optional<uint64_t> drop_index,
                      uint64_t* messages_sent) {
    auto system =
        BuildSystem(coordinator_kind, u2pc_native, participant_protocols,
                    seed, /*forced_write_latency=*/0,
                    /*max_events=*/500'000);
    if (drop_index.has_value()) {
      system->net().DropSendIndex(*drop_index);
    }
    Transaction txn = system->MakeTransaction(
        0, ParticipantSites(participant_protocols.size()));
    system->SubmitAt(0, txn);
    if (outcome == Outcome::kAbort) {
      ScheduleForceAbort(system.get(), txn.id, 0);
    }
    RunStats run = system->Run();
    if (messages_sent != nullptr) {
      *messages_sent = system->net().SendsSoFar();
    }
    return std::make_tuple(run.hit_event_limit,
                           system->CheckAtomicity().ok(),
                           system->CheckSafeState().ok(),
                           system->CheckOperational().ok());
  };

  uint64_t baseline_messages = 0;
  run_once(std::nullopt, &baseline_messages);

  SweepResult sweep;
  for (uint64_t n = 1; n <= baseline_messages; ++n) {
    ++sweep.scenarios;
    auto [hit_limit, atomic, safe, operational] = run_once(n, nullptr);
    auto describe = [&](const char* what) {
      if (sweep.failure_descriptions.size() < 50) {
        sweep.failure_descriptions.push_back(StrFormat(
            "%s: %s outcome=%s dropped message #%llu", what,
            ToString(coordinator_kind).c_str(), ToString(outcome).c_str(),
            static_cast<unsigned long long>(n)));
      }
    };
    if (hit_limit) {
      ++sweep.non_quiescent;
      describe("non-quiescent");
      continue;
    }
    if (!atomic) {
      ++sweep.atomicity_failures;
      describe("atomicity");
    }
    if (!safe) {
      ++sweep.safe_state_failures;
      describe("safe-state");
    }
    if (!operational) {
      ++sweep.operational_failures;
      describe("operational");
    }
  }
  return sweep;
}

std::vector<std::vector<ProtocolKind>> StandardMixes() {
  using P = ProtocolKind;
  return {
      {P::kPrN, P::kPrN},           // homogeneous PrN
      {P::kPrA, P::kPrA},           // homogeneous PrA
      {P::kPrC, P::kPrC},           // homogeneous PrC
      {P::kPrA, P::kPrC},           // the paper's motivating mix
      {P::kPrN, P::kPrA},
      {P::kPrN, P::kPrC},
      {P::kPrN, P::kPrA, P::kPrC},  // all three
      {P::kPrA, P::kPrA, P::kPrC},
      {P::kPrA, P::kPrC, P::kPrC},
  };
}

}  // namespace prany
