// Process-wide observability hook for standalone binaries (benches, demos).
//
// An ObservabilityScope is constructed at the top of main() with the raw
// argv; it strips the shared `--trace-json=FILE` and `--metrics-json=FILE`
// flags so the rest of the program (e.g. google-benchmark's own flag
// parser) never sees them. While a scope is alive, every System that
// finishes a Run() reports its trace, per-transaction timelines, and
// metrics here; the scope keeps the most recent non-empty trace, and
// merges metrics across runs (counters summed, distribution samples
// concatenated). On destruction the scope writes the requested JSON files.
//
// When neither flag is given the scope is inert: Systems skip trace
// collection entirely, so wrapping a bench in a scope costs nothing in the
// normal (un-instrumented) run.

#ifndef PRANY_HARNESS_OBSERVABILITY_H_
#define PRANY_HARNESS_OBSERVABILITY_H_

#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/timeline.h"
#include "common/trace.h"

namespace prany {

class ObservabilityScope {
 public:
  /// Strips --trace-json= / --metrics-json= from (argc, argv) and
  /// registers this scope as the process-current one.
  ObservabilityScope(int* argc, char** argv);
  ~ObservabilityScope();

  ObservabilityScope(const ObservabilityScope&) = delete;
  ObservabilityScope& operator=(const ObservabilityScope&) = delete;

  /// True when either output flag was given.
  bool active() const {
    return !trace_path_.empty() || !metrics_path_.empty();
  }
  /// True when a trace file was requested (Systems should enable tracing).
  bool tracing() const { return !trace_path_.empty(); }

  /// Records one finished run. Keeps the latest non-empty trace (and its
  /// timelines) and folds `metrics` into the merged registry.
  void Collect(const TraceLog& trace,
               const std::map<TxnId, TxnTimeline>& timelines,
               const MetricsRegistry& metrics);

  /// Writes the requested files now (also done by the destructor; calling
  /// twice writes twice). Returns false if any write failed.
  bool Flush();

  /// The innermost live scope, or nullptr.
  static ObservabilityScope* Current();

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::vector<TraceEvent> last_trace_;
  std::map<TxnId, TxnTimeline> last_timelines_;
  MetricsRegistry merged_metrics_;
  ObservabilityScope* previous_ = nullptr;
};

}  // namespace prany

#endif  // PRANY_HARNESS_OBSERVABILITY_H_
