#include "harness/run_result.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/string_util.h"

namespace prany {

RunSummary Summarize(const System& system) {
  RunSummary s;
  const MetricsRegistry& m = system.metrics();

  s.txns_begun = m.Get("coord.begin") + m.Get("coord.recovery_reinitiate");
  s.commits = m.Get("coord.decide_commit");
  s.aborts = m.Get("coord.decide_abort");
  s.vote_timeouts = m.Get("coord.vote_timeout");
  s.presumed_answers = m.Get("coord.answered_by_presumption");
  s.decision_resends = m.Get("coord.decision_resend");

  for (const auto& [name, value] : m.counters()) {
    constexpr const char* kPrefix = "net.msg.";
    if (name.rfind(kPrefix, 0) == 0) {
      s.messages_by_type[name.substr(strlen(kPrefix))] = value;
      s.messages_total += value;
    }
  }
  s.bytes_sent = m.Get("net.bytes");

  for (size_t i = 0; i < system.site_count(); ++i) {
    const Site* site = system.site(static_cast<SiteId>(i));
    const LogStats& log = site->wal()->stats();
    s.log_appends += log.appends;
    s.forced_appends += log.forced_appends;
    s.flushes += log.flushes;
    s.max_protocol_table =
        std::max(s.max_protocol_table, site->coordinator()->table().MaxSize());
    s.residual_table_entries += site->coordinator()->table().Size();
    s.residual_unreleased_txns += site->wal()->UnreleasedTxns().size();
    s.crashes += site->crash_count();
  }

  s.commit_latency = m.Summarize("coord.commit_latency_us");
  s.abort_latency = m.Summarize("coord.abort_latency_us");

  s.atomicity = system.CheckAtomicity();
  s.safe_state = system.CheckSafeState();
  s.operational = system.CheckOperational();
  return s;
}

std::string RunSummary::ToString() const {
  std::ostringstream out;
  out << StrFormat(
      "txns=%lld commits=%lld aborts=%lld timeouts=%lld crashes=%llu\n",
      static_cast<long long>(txns_begun), static_cast<long long>(commits),
      static_cast<long long>(aborts), static_cast<long long>(vote_timeouts),
      static_cast<unsigned long long>(crashes));
  out << StrFormat("messages=%lld (", static_cast<long long>(messages_total));
  bool first = true;
  for (const auto& [type, count] : messages_by_type) {
    if (!first) out << ", ";
    out << type << "=" << count;
    first = false;
  }
  out << StrFormat(") bytes=%lld\n", static_cast<long long>(bytes_sent));
  out << StrFormat(
      "log: appends=%llu forced=%llu flushes=%llu\n",
      static_cast<unsigned long long>(log_appends),
      static_cast<unsigned long long>(forced_appends),
      static_cast<unsigned long long>(flushes));
  out << StrFormat(
      "tables: max=%zu residual=%zu unreleased_log_txns=%zu\n",
      max_protocol_table, residual_table_entries, residual_unreleased_txns);
  if (commit_latency.count > 0) {
    out << StrFormat("commit latency us: mean=%.0f p50=%.0f p95=%.0f\n",
                     commit_latency.mean, commit_latency.p50,
                     commit_latency.p95);
  }
  if (abort_latency.count > 0) {
    out << StrFormat("abort latency us:  mean=%.0f p50=%.0f p95=%.0f\n",
                     abort_latency.mean, abort_latency.p50,
                     abort_latency.p95);
  }
  out << StrFormat(
      "resends=%lld presumed_answers=%lld\n",
      static_cast<long long>(decision_resends),
      static_cast<long long>(presumed_answers));
  out << atomicity.ToString();
  out << safe_state.ToString();
  out << operational.ToString();
  return out.str();
}

}  // namespace prany
