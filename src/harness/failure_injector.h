// Deterministic and randomized failure injection.
//
// Two mechanisms:
//  * Point rules — "crash site S the Nth time it passes crash point P for
//    transaction T" — reproduce the paper's adversarial schedules exactly
//    (the proofs' "fails after receiving the outcome but before logging
//    it" becomes CrashPoint::kPartOnDecisionReceived).
//  * Random crashes — every probe trips with a configured probability —
//    drive the soak/property tests.
//
// Timed crashes ("site S goes down at t") are scheduled directly through
// the System, which owns the sites.

#ifndef PRANY_HARNESS_FAILURE_INJECTOR_H_
#define PRANY_HARNESS_FAILURE_INJECTOR_H_

#include <map>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "protocol/crash_points.h"

namespace prany {

class FailureInjector {
 public:
  explicit FailureInjector(Rng rng) : rng_(std::move(rng)) {}

  /// Installs a one-shot rule: crash `site` at `point` for `txn`
  /// (kInvalidTxn matches any transaction), after skipping the first
  /// `skip` matching probes. The site is down for `downtime`.
  void CrashAtPoint(SiteId site, CrashPoint point, TxnId txn,
                    SimDuration downtime, uint32_t skip = 0);

  /// Every probe crashes with probability `p`; downtime is uniform in
  /// [min_downtime, max_downtime].
  void SetRandomCrashes(double p, SimDuration min_downtime,
                        SimDuration max_downtime);

  /// Caps the total number of random crashes (0 = unlimited). Point rules
  /// are not affected.
  void SetRandomCrashBudget(uint64_t budget) { random_budget_ = budget; }

  /// Called by sites at every crash point; a value is the downtime of an
  /// injected crash.
  std::optional<SimDuration> Probe(SiteId site, CrashPoint point, TxnId txn);

  uint64_t crashes_injected() const { return crashes_injected_; }

  /// How often each crash point was probed, whether or not a crash fired.
  /// Reachability coverage for crash_points.h: a point absent from this map
  /// after a run was never exercised.
  const std::map<CrashPoint, uint64_t>& probe_counts() const {
    return probe_counts_;
  }

 private:
  struct PointRule {
    SiteId site;
    CrashPoint point;
    TxnId txn;
    SimDuration downtime;
    uint32_t skip;
    bool fired = false;
  };

  Rng rng_;
  std::vector<PointRule> rules_;
  double random_p_ = 0.0;
  SimDuration random_min_downtime_ = 0;
  SimDuration random_max_downtime_ = 0;
  uint64_t random_budget_ = 0;
  uint64_t random_crashes_ = 0;
  uint64_t crashes_injected_ = 0;
  std::map<CrashPoint, uint64_t> probe_counts_;
};

}  // namespace prany

#endif  // PRANY_HARNESS_FAILURE_INJECTOR_H_
