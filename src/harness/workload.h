// Randomized multi-transaction workload generation for throughput,
// memory-growth and soak experiments.

#ifndef PRANY_HARNESS_WORKLOAD_H_
#define PRANY_HARNESS_WORKLOAD_H_

#include <vector>

#include "harness/system.h"

namespace prany {

/// Parameters of a generated workload.
struct WorkloadConfig {
  uint32_t num_txns = 100;

  /// Participant-set size range (inclusive). Sites are sampled without
  /// replacement from `participant_pool`, excluding the coordinator.
  uint32_t min_participants = 2;
  uint32_t max_participants = 4;

  /// Probability that a transaction carries one randomly chosen no-voter
  /// (i.e. aborts during voting).
  double no_vote_probability = 0.0;

  /// Mean exponential interarrival time between submissions.
  double mean_interarrival_us = 2'000.0;

  /// Coordinators are drawn uniformly from this list.
  std::vector<SiteId> coordinators;

  /// Candidate participant sites.
  std::vector<SiteId> participant_pool;
};

/// Generates and schedules a workload against a System.
class WorkloadGenerator {
 public:
  WorkloadGenerator(System* system, WorkloadConfig config);

  /// Builds all transactions and schedules their submissions starting at
  /// the current simulated time. Returns the generated transaction ids.
  std::vector<TxnId> GenerateAndSchedule();

 private:
  System* system_;
  WorkloadConfig config_;
  Rng rng_;
};

}  // namespace prany

#endif  // PRANY_HARNESS_WORKLOAD_H_
