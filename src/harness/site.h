// One site of the distributed system: a stable log, a participant engine,
// a coordinator engine, and the crash/recovery lifecycle, all bound to the
// simulated network.
//
// Fail-stop semantics (§1 of the paper): a down site receives nothing and
// executes nothing; volatile state (protocol table, participant table,
// APP view, unflushed log tail) is lost; on recovery the engines re-build
// their state from the stable log and resume the protocol.

#ifndef PRANY_HARNESS_SITE_H_
#define PRANY_HARNESS_SITE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "history/operational_checker.h"
#include "protocol/coordinator_base.h"
#include "protocol/participant.h"
#include "txn/pcp_table.h"

namespace prany {

/// Which coordinator variant a site runs.
struct CoordinatorSpec {
  ProtocolKind kind = ProtocolKind::kPrAny;
  /// For kind == kU2PC: the native protocol the coordinator speaks.
  ProtocolKind u2pc_native = ProtocolKind::kPrN;
  /// For kind == kC2PC: retransmission cap (entries that can never
  /// complete must not retransmit forever).
  uint32_t c2pc_resend_cap = 3;

  /// For kind == kPrAny: disable the §4.1 selector (ablation knob).
  bool prany_always_mixed_mode = false;
};

/// A full site (participant + coordinator roles). Backend-agnostic: runs
/// over any EventLoop + ITransport + StableLog implementation.
class Site : public NetworkEndpoint {
 public:
  /// `pcp` must outlive the site (owned by the System). `log` may be null,
  /// in which case an in-memory StableLog is created; the live runtime
  /// injects a FileStableLog instead.
  Site(SiteId id, ProtocolKind participant_protocol, CoordinatorSpec spec,
       EventLoop* sim, ITransport* net, EventLog* history,
       MetricsRegistry* metrics, const PcpTable* pcp, TimingConfig timing,
       std::unique_ptr<StableLog> log = nullptr);
  ~Site() override;

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  // NetworkEndpoint:
  void OnMessage(const Message& msg) override;
  bool IsUp() const override { return up_; }

  SiteId id() const { return id_; }
  ProtocolKind participant_protocol() const {
    return participant_->protocol();
  }

  /// Crashes the site now; it recovers after `downtime`.
  void Crash(SimDuration downtime);

  /// Handler consulted at every CrashPoint probe; a non-nullopt return is
  /// the downtime of an injected crash. Installed by the FailureInjector.
  using CrashProbeHandler =
      std::function<std::optional<SimDuration>(SiteId, CrashPoint, TxnId)>;
  void SetCrashProbeHandler(CrashProbeHandler handler);

  CoordinatorBase* coordinator() { return coordinator_.get(); }
  const CoordinatorBase* coordinator() const { return coordinator_.get(); }
  ParticipantEngine* participant() { return participant_.get(); }
  const ParticipantEngine* participant() const { return participant_.get(); }
  StableLog* wal() { return log_.get(); }
  const StableLog* wal() const { return log_.get(); }

  uint64_t crash_count() const { return crash_count_; }

  /// Snapshot for the operational-correctness checker.
  SiteEndState EndState() const;

 private:
  void Recover();

  SiteId id_;
  EventLoop* sim_;
  EventLog* history_;
  std::unique_ptr<StableLog> log_;
  std::unique_ptr<ParticipantEngine> participant_;
  std::unique_ptr<CoordinatorBase> coordinator_;
  bool is_prany_ = false;
  bool up_ = true;
  uint64_t crash_count_ = 0;
  CrashProbeHandler crash_probe_handler_;
};

}  // namespace prany

#endif  // PRANY_HARNESS_SITE_H_
