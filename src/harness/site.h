// One site of the distributed system: a stable log, a participant engine,
// a coordinator engine, and the crash/recovery lifecycle, all bound to the
// simulated network.
//
// Fail-stop semantics (§1 of the paper): a down site receives nothing and
// executes nothing; volatile state (protocol table, participant table,
// APP view, unflushed log tail) is lost; on recovery the engines re-build
// their state from the stable log and resume the protocol.

#ifndef PRANY_HARNESS_SITE_H_
#define PRANY_HARNESS_SITE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "history/operational_checker.h"
#include "protocol/coordinator_base.h"
#include "protocol/participant.h"
#include "txn/pcp_table.h"

namespace prany {

/// Which coordinator variant a site runs.
struct CoordinatorSpec {
  ProtocolKind kind = ProtocolKind::kPrAny;
  /// For kind == kU2PC: the native protocol the coordinator speaks.
  ProtocolKind u2pc_native = ProtocolKind::kPrN;
  /// For kind == kC2PC: retransmission cap (entries that can never
  /// complete must not retransmit forever).
  uint32_t c2pc_resend_cap = 3;

  /// For kind == kPrAny: disable the §4.1 selector (ablation knob).
  bool prany_always_mixed_mode = false;
};

/// A full site (participant + coordinator roles). Backend-agnostic: runs
/// over any EventLoop + ITransport + StableLog implementation.
class Site : public NetworkEndpoint {
 public:
  /// `pcp` must outlive the site (owned by the System). `log` may be null,
  /// in which case an in-memory StableLog is created; the live runtime
  /// injects a FileStableLog instead.
  Site(SiteId id, ProtocolKind participant_protocol, CoordinatorSpec spec,
       EventLoop* sim, ITransport* net, EventLog* history,
       MetricsRegistry* metrics, const PcpTable* pcp, TimingConfig timing,
       std::unique_ptr<StableLog> log = nullptr);
  ~Site() override;

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  // NetworkEndpoint:
  void OnMessage(const Message& msg) override;
  /// Acquire pairs with the release stores in CrashNow/RecoverNow: an
  /// inbox thread that sees the site up also sees the lifecycle write
  /// that brought it up.
  bool IsUp() const override {
    return up_.load(std::memory_order_acquire);
  }

  SiteId id() const { return id_; }
  ProtocolKind participant_protocol() const {
    return participant_->protocol();
  }

  /// Crashes the site now; it recovers after `downtime`. Under the sim
  /// the recovery is a scheduled event; when a restart handler is
  /// installed (live runtime) the handler owns the restart instead.
  void Crash(SimDuration downtime);

  /// The crash half of Crash(): fail-stop the site and wipe volatile
  /// state (engine tables, APP view, unflushed/unsynced log tail), without
  /// scheduling recovery. The live runtime calls this, then tears down
  /// the site's threads before restarting.
  void CrashNow(SimDuration planned_downtime);

  /// The recovery half: mark the site up and re-build engine state from
  /// the stable log (§4.2). The live runtime calls this after re-opening
  /// the WAL, before restarting the site's worker threads.
  void RecoverNow();

  /// Installs `handler`, which takes over scheduling recovery after a
  /// Crash(): the live runtime enqueues an asynchronous thread+WAL
  /// teardown/restart instead of the sim's timer. Called with the site id
  /// and the requested downtime, under the engine serialization domain.
  using RestartHandler = std::function<void(SiteId, SimDuration)>;
  void SetRestartHandler(RestartHandler handler);

  /// Handler consulted at every CrashPoint probe; a non-nullopt return is
  /// the downtime of an injected crash. Installed by the FailureInjector.
  using CrashProbeHandler =
      std::function<std::optional<SimDuration>(SiteId, CrashPoint, TxnId)>;
  void SetCrashProbeHandler(CrashProbeHandler handler);

  /// Switches both engines to pipelined forced writes (see
  /// EngineContext::pipeline_forces). `post_task` must run its closure
  /// under this site's engine serialization domain. Live runtime only;
  /// call after construction, before traffic.
  void EnablePipelinedForces(
      std::function<void(std::function<void()>)> post_task) {
    coordinator_->EnablePipelinedForces(post_task);
    participant_->EnablePipelinedForces(std::move(post_task));
  }

  CoordinatorBase* coordinator() { return coordinator_.get(); }
  const CoordinatorBase* coordinator() const { return coordinator_.get(); }
  ParticipantEngine* participant() { return participant_.get(); }
  const ParticipantEngine* participant() const { return participant_.get(); }
  StableLog* wal() { return log_.get(); }
  const StableLog* wal() const { return log_.get(); }

  uint64_t crash_count() const { return crash_count_; }

  /// Snapshot for the operational-correctness checker.
  SiteEndState EndState() const;

 private:
  SiteId id_;
  EventLoop* sim_;
  EventLog* history_;
  std::unique_ptr<StableLog> log_;
  std::unique_ptr<ParticipantEngine> participant_;
  std::unique_ptr<CoordinatorBase> coordinator_;
  bool is_prany_ = false;
  /// Atomic: live transport inbox threads read IsUp() while the crash
  /// path flips it from the engine serialization domain (all other Site
  /// state is serialized by that domain — the owning LiveSite's engine
  /// mutex, or the simulator's single thread — and is deliberately
  /// unannotated: no Site mutex exists for GUARDED_BY to name).
  /// Release/acquire only; see IsUp().
  std::atomic<bool> up_{true};
  uint64_t crash_count_ = 0;
  CrashProbeHandler crash_probe_handler_;
  RestartHandler restart_handler_;
};

}  // namespace prany

#endif  // PRANY_HARNESS_SITE_H_
