// Multi-process cluster harness: launches one prany_site_server process
// per site (fork/exec), connected over UDS or TCP, and collects their
// results when they exit.
//
// This is the real-crash counterpart of the in-process crash controller:
// KillSite() delivers SIGKILL — no destructors, no flushes, the torn WAL
// tail and half-written sockets a genuine machine crash leaves behind —
// and RestartSite() relaunches the same site id against the same WAL
// with a fresh incarnation, driving FileStableLog recovery plus the
// paper's §4.2 procedure over live sockets while the surviving processes
// keep serving.
//
// History collection: each server appends its SigEvents to a per-site
// text file (see SerializeSigEvent) when it exits cleanly. The harness
// merges every file into one EventLog and runs the atomicity checker —
// sound because the checker compares enforced outcomes against
// decisions per transaction and never relies on cross-site event order.
// Events a SIGKILLed incarnation had recorded only in memory are lost
// with it, exactly as a real crash loses them; durable decisions are
// re-recorded by recovery in the next incarnation, so the merged history
// loses evidence, never gains contradictions.

#ifndef PRANY_HARNESS_PROCESS_CLUSTER_H_
#define PRANY_HARNESS_PROCESS_CLUSTER_H_

#include <sys/types.h>

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "history/atomicity_checker.h"
#include "history/event_log.h"

namespace prany {
namespace harness {

/// One line of the history dump:
/// "seq time type site txn outcome peer by_presumption" (outcome -1 when
/// absent; all fields decimal). Seqs are per-process and re-assigned at
/// merge time.
std::string SerializeSigEvent(const SigEvent& event);
bool ParseSigEvent(const std::string& line, SigEvent* out);

struct ProcessSiteSpec {
  SiteId id = kInvalidSite;
  /// Participant protocol the site runs (a base protocol).
  ProtocolKind protocol = ProtocolKind::kPrN;
  /// Coordinator kind; kInvalid-like sentinel is not needed — when unset
  /// it follows `protocol`. Set to e.g. kPrAny for a PrAny coordinator
  /// over base-protocol participants.
  std::optional<ProtocolKind> coordinator;
  /// Listen/dial address ("uds:<path>" or "tcp:host:port").
  std::string address;
};

struct ProcessClusterConfig {
  std::vector<ProcessSiteSpec> sites;
  /// WALs, result files, and history dumps live here. Must exist.
  std::string log_dir = ".";
  /// Path to the prany_site_server binary. Empty resolves, in order:
  /// $PRANY_SITE_SERVER, then prany_site_server next to /proc/self/exe,
  /// then ../tools/prany_site_server relative to it.
  std::string server_binary;

  // Load parameters forwarded to every server's generator.
  uint64_t duration_us = 1'000'000;
  int clients = 2;
  int participants_per_txn = 2;
  double abort_fraction = 0.0;
  uint64_t await_timeout_us = 10'000'000;
  uint64_t seed = 1;
};

/// Aggregated per-site load counters parsed from the result files.
struct ClusterLoadTotals {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t timeouts = 0;
  uint64_t dropped = 0;
};

class ProcessCluster {
 public:
  explicit ProcessCluster(ProcessClusterConfig config);
  /// Kills (SIGKILL) any site processes still running.
  ~ProcessCluster();

  ProcessCluster(const ProcessCluster&) = delete;
  ProcessCluster& operator=(const ProcessCluster&) = delete;

  /// Forks/execs one server per configured site. On failure, kills what
  /// already launched.
  Status LaunchAll();

  /// SIGKILL — the fail-stop crash. The process gets no chance to flush
  /// anything; its WAL keeps whatever the kernel had. No-op if the site
  /// is not running.
  void KillSite(SiteId site);

  /// Relaunches a killed site against its existing WAL with the next
  /// incarnation number (the server re-runs recovery before serving).
  Status RestartSite(SiteId site);

  /// Sends `sig` (typically SIGTERM: quiesce, dump results, exit) to
  /// every running site process.
  void SignalAll(int sig);

  /// Reaps every running process. Returns false if any is still alive at
  /// the deadline (they are then SIGKILLed and reaped anyway) or exited
  /// nonzero.
  bool WaitAll(uint64_t timeout_us);

  /// True while the site's current incarnation runs (as of the last
  /// launch/kill/wait call — this does not poll the kernel).
  bool Running(SiteId site) const;

  /// Parses every site's result file, summing the load counters.
  /// Missing files (site never exited cleanly) are skipped.
  ClusterLoadTotals CollectTotals() const;

  /// Merges every site's history dump into `out` (cleared first).
  /// Returns the number of events merged.
  size_t MergeHistories(EventLog* out) const;

  /// MergeHistories + the atomicity checker.
  AtomicityReport CheckAtomicity() const;

  /// Per-site result key=value map (empty if the file is absent).
  std::map<std::string, std::string> ResultFor(SiteId site) const;

 private:
  struct Proc {
    ProcessSiteSpec spec;
    pid_t pid = -1;
    int incarnation = 0;
    bool running = false;
  };

  Status Launch(Proc* proc);
  std::string ResultPath(SiteId site) const;
  std::string HistoryPath(SiteId site) const;

  ProcessClusterConfig config_;
  std::string server_binary_;  ///< Resolved once, at construction.
  std::vector<Proc> procs_;
};

}  // namespace harness
}  // namespace prany

#endif  // PRANY_HARNESS_PROCESS_CLUSTER_H_
