#include "harness/workload.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace prany {

WorkloadGenerator::WorkloadGenerator(System* system, WorkloadConfig config)
    : system_(system),
      config_(std::move(config)),
      rng_(system->sim().rng().Fork()) {
  PRANY_CHECK(!config_.coordinators.empty());
  PRANY_CHECK(!config_.participant_pool.empty());
  PRANY_CHECK(config_.min_participants >= 1);
  PRANY_CHECK(config_.min_participants <= config_.max_participants);
}

std::vector<TxnId> WorkloadGenerator::GenerateAndSchedule() {
  std::vector<TxnId> ids;
  ids.reserve(config_.num_txns);
  SimTime when = system_->sim().Now();
  for (uint32_t i = 0; i < config_.num_txns; ++i) {
    when += static_cast<SimDuration>(
        std::llround(rng_.Exponential(config_.mean_interarrival_us)));

    SiteId coordinator =
        config_.coordinators[rng_.Index(config_.coordinators.size())];

    std::vector<SiteId> candidates;
    candidates.reserve(config_.participant_pool.size());
    for (SiteId s : config_.participant_pool) {
      if (s != coordinator) candidates.push_back(s);
    }
    PRANY_CHECK_MSG(!candidates.empty(),
                    "participant pool contains only the coordinator");

    uint32_t want = static_cast<uint32_t>(rng_.Uniform(
        config_.min_participants, config_.max_participants));
    want = std::min<uint32_t>(want, static_cast<uint32_t>(candidates.size()));
    std::vector<size_t> picks =
        rng_.SampleWithoutReplacement(candidates.size(), want);
    std::vector<SiteId> participants;
    participants.reserve(picks.size());
    for (size_t p : picks) participants.push_back(candidates[p]);

    std::map<SiteId, Vote> votes;
    if (rng_.Bernoulli(config_.no_vote_probability)) {
      votes[participants[rng_.Index(participants.size())]] = Vote::kNo;
    }

    Transaction txn =
        system_->MakeTransaction(coordinator, participants, votes);
    system_->SubmitAt(when, txn);
    ids.push_back(txn.id);
  }
  return ids;
}

}  // namespace prany
