// The coordinator's volatile protocol table.
//
// One entry per in-flight transaction on the coordinator. The table lives
// in main memory: it is wiped by a crash and rebuilt from the stable log
// during recovery (§4.2). "Forgetting" a transaction (DeletePT in the
// paper's ACTA formulation) is exactly erasing its entry here.
//
// The table records its own high-water mark because Theorem 2's failure
// mode — C2PC entries that can never be deleted — is measured as unbounded
// growth of precisely this structure.

#ifndef PRANY_TXN_PROTOCOL_TABLE_H_
#define PRANY_TXN_PROTOCOL_TABLE_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.h"

namespace prany {

/// Commit-processing phase of one coordinator-side transaction.
enum class CoordPhase : uint8_t {
  kVoting = 0,    ///< PREPAREs sent, collecting votes.
  kDeciding = 1,  ///< Decision made and sent, collecting acks.
};

/// Coordinator-side volatile state for one transaction.
struct CoordTxnState {
  TxnId txn = kInvalidTxn;

  /// Protocol the coordinator chose for this transaction (for PrAny
  /// coordinators this may be any of PrN/PrA/PrC/PrAny, §4.1).
  ProtocolKind mode = ProtocolKind::kPrN;

  std::vector<ParticipantInfo> participants;
  CoordPhase phase = CoordPhase::kVoting;

  /// Votes received so far (voting phase).
  std::set<SiteId> yes_votes;
  std::set<SiteId> no_votes;

  /// Read-only voters: they left the protocol at voting time and are
  /// excluded from the decision phase (§5's read-only optimization).
  std::set<SiteId> read_only;

  /// False while a pipelined initiation force is in flight: the PREPAREs
  /// leave from the WAL sync thread, and until the completion task
  /// confirms they are all out, no decision may be made — a decision
  /// message racing ahead of a still-unsent PREPARE on the same link
  /// inverts the per-link PREPARE-before-DECISION order that footnote 5's
  /// no-memory acknowledgment relies on (the late PREPARE would prepare a
  /// participant into a transaction the coordinator already forgot).
  /// Votes accumulate normally in the meantime; FinishPipelinedBegin
  /// re-evaluates the decision condition once the sends are confirmed.
  bool prepares_sent = true;

  /// Decision, once made.
  std::optional<Outcome> decision;

  /// False only in the window between choosing the decision and its
  /// forced log write completing. Execution can yield inside that window
  /// (sim: scheduled write latency; live: the engine mutex is released
  /// across durability waits), and a decision that is not yet stable must
  /// not be exposed to inquirers — a crash could still tear the record
  /// away and recovery would then re-decide by presumption.
  bool decision_durable = false;

  /// Participants whose acknowledgment is still awaited (decision phase).
  std::set<SiteId> pending_acks;

  /// Whether any acknowledgment was expected when the decision went out;
  /// drives the END record (which closes an ack-collection phase).
  bool acks_expected = false;

  SimTime begin_time = 0;

  ProtocolKind ProtocolOf(SiteId site) const;
  bool HasParticipant(SiteId site) const;
};

/// Map of in-flight transactions with a high-water mark.
class ProtocolTable {
 public:
  /// Inserts a fresh entry; CHECKs on duplicate txn.
  CoordTxnState& Insert(CoordTxnState state);

  /// Entry lookup; nullptr if absent (= forgotten).
  CoordTxnState* Find(TxnId txn);
  const CoordTxnState* Find(TxnId txn) const;

  /// Forgets a transaction (DeletePT). Returns false if absent.
  bool Erase(TxnId txn);

  /// Wipes the table (site crash).
  void Clear();

  size_t Size() const { return entries_.size(); }
  size_t MaxSize() const { return max_size_; }

  std::vector<TxnId> TxnIds() const;

 private:
  std::map<TxnId, CoordTxnState> entries_;
  size_t max_size_ = 0;
};

}  // namespace prany

#endif  // PRANY_TXN_PROTOCOL_TABLE_H_
