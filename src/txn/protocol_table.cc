#include "txn/protocol_table.h"

#include <algorithm>

#include "common/status.h"

namespace prany {

ProtocolKind CoordTxnState::ProtocolOf(SiteId site) const {
  for (const ParticipantInfo& p : participants) {
    if (p.site == site) return p.protocol;
  }
  PRANY_CHECK_MSG(false, "site is not a participant of this transaction");
  return ProtocolKind::kPrN;
}

bool CoordTxnState::HasParticipant(SiteId site) const {
  return std::any_of(
      participants.begin(), participants.end(),
      [site](const ParticipantInfo& p) { return p.site == site; });
}

CoordTxnState& ProtocolTable::Insert(CoordTxnState state) {
  TxnId txn = state.txn;
  auto [it, inserted] = entries_.emplace(txn, std::move(state));
  PRANY_CHECK_MSG(inserted, "duplicate protocol-table entry");
  max_size_ = std::max(max_size_, entries_.size());
  return it->second;
}

CoordTxnState* ProtocolTable::Find(TxnId txn) {
  auto it = entries_.find(txn);
  return it == entries_.end() ? nullptr : &it->second;
}

const CoordTxnState* ProtocolTable::Find(TxnId txn) const {
  auto it = entries_.find(txn);
  return it == entries_.end() ? nullptr : &it->second;
}

bool ProtocolTable::Erase(TxnId txn) { return entries_.erase(txn) > 0; }

void ProtocolTable::Clear() { entries_.clear(); }

std::vector<TxnId> ProtocolTable::TxnIds() const {
  std::vector<TxnId> out;
  out.reserve(entries_.size());
  for (const auto& [txn, state] : entries_) {
    (void)state;
    out.push_back(txn);
  }
  return out;
}

}  // namespace prany
