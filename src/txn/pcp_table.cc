#include "txn/pcp_table.h"

#include "common/string_util.h"
#include "protocol/protocol_traits.h"

namespace prany {

Status PcpTable::RegisterSite(SiteId site, ProtocolKind protocol) {
  if (site == kInvalidSite) {
    return Status::InvalidArgument("invalid site id");
  }
  if (!IsBaseProtocol(protocol)) {
    return Status::InvalidArgument(
        "participants must speak PrN, PrA or PrC");
  }
  sites_[site] = protocol;
  return Status::OK();
}

Status PcpTable::UnregisterSite(SiteId site) {
  if (sites_.erase(site) == 0) {
    return Status::NotFound("site not registered");
  }
  return Status::OK();
}

std::optional<ProtocolKind> PcpTable::ProtocolFor(SiteId site) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) return std::nullopt;
  return it->second;
}

std::vector<ParticipantInfo> PcpTable::AllSites() const {
  std::vector<ParticipantInfo> out;
  out.reserve(sites_.size());
  for (const auto& [site, protocol] : sites_) {
    out.push_back(ParticipantInfo{site, protocol});
  }
  return out;
}

Status AppTable::Activate(SiteId site) {
  if (!pcp_->ProtocolFor(site).has_value()) {
    return Status::NotFound("site not in PCP");
  }
  ++active_[site];
  return Status::OK();
}

Status AppTable::Deactivate(SiteId site) {
  auto it = active_.find(site);
  if (it == active_.end()) {
    return Status::NotFound("site not active");
  }
  if (--it->second == 0) active_.erase(it);
  return Status::OK();
}

std::optional<ProtocolKind> AppTable::ProtocolFor(SiteId site) const {
  if (active_.count(site) == 0) {
    ++cache_misses_;
  }
  return pcp_->ProtocolFor(site);
}

bool AppTable::IsActive(SiteId site) const {
  return active_.count(site) > 0;
}

std::vector<PresumptionLintFinding> LintPresumptions(
    const PcpTable& pcp, ProtocolKind coordinator_kind,
    ProtocolKind u2pc_native) {
  std::vector<PresumptionLintFinding> findings;
  const std::optional<Outcome> fixed =
      CoordinatorFixedPresumption(coordinator_kind, u2pc_native);
  if (!fixed.has_value()) return findings;  // PrAny / C2PC: nothing to clash.
  for (const ParticipantInfo& p : pcp.AllSites()) {
    const std::optional<Outcome> relies = ParticipantRelianceOutcome(p.protocol);
    if (!relies.has_value() || *relies == *fixed) continue;
    PresumptionLintFinding f;
    f.site = p.site;
    f.participant = p.protocol;
    f.participant_relies_on = *relies;
    f.coordinator_presumes = *fixed;
    f.description = StrFormat(
        "site %u speaks %s and relies on presumed-%s for forgotten "
        "transactions, but a forgetful %s coordinator answers inquiries "
        "with presumed-%s (Theorem 1)",
        p.site, ToString(p.protocol).c_str(), ToString(*relies).c_str(),
        ToString(coordinator_kind).c_str(), ToString(*fixed).c_str());
    findings.push_back(std::move(f));
  }
  return findings;
}

}  // namespace prany
