#include "txn/pcp_table.h"

namespace prany {

Status PcpTable::RegisterSite(SiteId site, ProtocolKind protocol) {
  if (site == kInvalidSite) {
    return Status::InvalidArgument("invalid site id");
  }
  if (!IsBaseProtocol(protocol)) {
    return Status::InvalidArgument(
        "participants must speak PrN, PrA or PrC");
  }
  sites_[site] = protocol;
  return Status::OK();
}

Status PcpTable::UnregisterSite(SiteId site) {
  if (sites_.erase(site) == 0) {
    return Status::NotFound("site not registered");
  }
  return Status::OK();
}

std::optional<ProtocolKind> PcpTable::ProtocolFor(SiteId site) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) return std::nullopt;
  return it->second;
}

std::vector<ParticipantInfo> PcpTable::AllSites() const {
  std::vector<ParticipantInfo> out;
  out.reserve(sites_.size());
  for (const auto& [site, protocol] : sites_) {
    out.push_back(ParticipantInfo{site, protocol});
  }
  return out;
}

Status AppTable::Activate(SiteId site) {
  if (!pcp_->ProtocolFor(site).has_value()) {
    return Status::NotFound("site not in PCP");
  }
  ++active_[site];
  return Status::OK();
}

Status AppTable::Deactivate(SiteId site) {
  auto it = active_.find(site);
  if (it == active_.end()) {
    return Status::NotFound("site not active");
  }
  if (--it->second == 0) active_.erase(it);
  return Status::OK();
}

std::optional<ProtocolKind> AppTable::ProtocolFor(SiteId site) const {
  if (active_.count(site) == 0) {
    ++cache_misses_;
  }
  return pcp_->ProtocolFor(site);
}

bool AppTable::IsActive(SiteId site) const {
  return active_.count(site) > 0;
}

}  // namespace prany
