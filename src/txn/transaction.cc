#include "txn/transaction.h"

#include <set>

#include "common/string_util.h"

namespace prany {

std::vector<SiteId> Transaction::ParticipantSites() const {
  std::vector<SiteId> out;
  out.reserve(participants.size());
  for (const ParticipantInfo& p : participants) out.push_back(p.site);
  return out;
}

ProtocolKind Transaction::ProtocolOf(SiteId site) const {
  for (const ParticipantInfo& p : participants) {
    if (p.site == site) return p.protocol;
  }
  PRANY_CHECK_MSG(false, "site is not a participant");
  return ProtocolKind::kPrN;
}

bool Transaction::HasParticipant(SiteId site) const {
  for (const ParticipantInfo& p : participants) {
    if (p.site == site) return true;
  }
  return false;
}

bool Transaction::AllVotesYes() const {
  // Read-only votes do not block a commit.
  for (const auto& [site, vote] : planned_votes) {
    if (vote == Vote::kNo && HasParticipant(site)) return false;
  }
  return true;
}

Status Transaction::Validate() const {
  if (id == kInvalidTxn) {
    return Status::InvalidArgument("transaction id not set");
  }
  if (coordinator == kInvalidSite) {
    return Status::InvalidArgument("coordinator not set");
  }
  if (participants.empty()) {
    return Status::InvalidArgument("no participants");
  }
  std::set<SiteId> seen;
  for (const ParticipantInfo& p : participants) {
    if (!seen.insert(p.site).second) {
      return Status::InvalidArgument("duplicate participant site");
    }
    if (!IsBaseProtocol(p.protocol)) {
      return Status::InvalidArgument(
          "participants must speak PrN, PrA or PrC");
    }
    // The coordinator may also be a participant (a dual-role site): both
    // engines run at that site and share its stable log, exchanging
    // messages with themselves over the regular transport.
  }
  for (const auto& [site, vote] : planned_votes) {
    (void)vote;
    if (seen.count(site) == 0) {
      return Status::InvalidArgument("planned vote for non-participant");
    }
  }
  return Status::OK();
}

std::string Transaction::ToString() const {
  std::string out = StrFormat("txn %llu coord=%u participants=[",
                              static_cast<unsigned long long>(id),
                              coordinator);
  for (size_t i = 0; i < participants.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%u:%s", participants[i].site,
                     prany::ToString(participants[i].protocol).c_str());
  }
  out += "]";
  return out;
}

}  // namespace prany
