// Participants' Commit Protocol (PCP) table and its in-memory Active
// Participants' Protocols (APP) view (§4 of the paper).
//
// The PCP maps every site in the federation to the 2PC variant it speaks.
// It is kept on stable storage and updated when sites join or leave, so it
// survives coordinator crashes — this is what lets a recovering or
// forgetful PrAny coordinator adopt the *inquirer's* presumption. The APP
// is the main-memory subset covering sites with active transactions; the
// protocol selector (§4.1) reads it on the hot path.

#ifndef PRANY_TXN_PCP_TABLE_H_
#define PRANY_TXN_PCP_TABLE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace prany {

/// The stable site -> protocol registry.
class PcpTable {
 public:
  /// Registers (or re-registers, e.g. after an upgrade) a site. Only base
  /// protocols are valid for participants.
  Status RegisterSite(SiteId site, ProtocolKind protocol);

  /// Removes a site that left the federation.
  Status UnregisterSite(SiteId site);

  /// Protocol of `site`, or nullopt if unknown.
  std::optional<ProtocolKind> ProtocolFor(SiteId site) const;

  /// All registered sites with their protocols.
  std::vector<ParticipantInfo> AllSites() const;

  size_t Size() const { return sites_.size(); }

 private:
  std::map<SiteId, ProtocolKind> sites_;
};

/// Main-memory view over the PCP restricted to sites with active
/// transactions. Reference-counted: a site stays in the APP while at least
/// one in-flight transaction involves it. Volatile — cleared by a crash
/// and repopulated as recovery re-activates transactions.
class AppTable {
 public:
  explicit AppTable(const PcpTable* pcp) : pcp_(pcp) {}

  /// Notes that an in-flight transaction involves `site`. The site must be
  /// registered in the PCP.
  Status Activate(SiteId site);

  /// Releases one activation of `site`.
  Status Deactivate(SiteId site);

  /// Protocol of an *active* site; falls back to the stable PCP (a cache
  /// miss, counted separately) for inactive ones.
  std::optional<ProtocolKind> ProtocolFor(SiteId site) const;

  bool IsActive(SiteId site) const;
  size_t ActiveSites() const { return active_.size(); }
  uint64_t CacheMisses() const { return cache_misses_; }

  /// Crash: volatile view lost.
  void Clear() { active_.clear(); }

 private:
  const PcpTable* pcp_;
  std::map<SiteId, uint32_t> active_;  // site -> refcount
  mutable uint64_t cache_misses_ = 0;
};

/// One incompatible-presumption pairing found in a PCP table.
struct PresumptionLintFinding {
  SiteId site = kInvalidSite;
  ProtocolKind participant = ProtocolKind::kPrN;
  Outcome participant_relies_on = Outcome::kAbort;
  Outcome coordinator_presumes = Outcome::kAbort;
  std::string description;
};

/// Theorem 1's root cause as a table-level check: flags every registered
/// participant whose reliance outcome (the decision it neither acknowledges
/// nor force-logs, per protocol_traits) contradicts the fixed answer
/// `coordinator_kind` gives when asked about a forgotten transaction.
/// PrAny and C2PC coordinators have no fixed presumption and yield no
/// findings; PrN participants rely on no presumption and are never flagged.
std::vector<PresumptionLintFinding> LintPresumptions(
    const PcpTable& pcp, ProtocolKind coordinator_kind,
    ProtocolKind u2pc_native = ProtocolKind::kPrN);

}  // namespace prany

#endif  // PRANY_TXN_PCP_TABLE_H_
