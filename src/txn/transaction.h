// Distributed transaction descriptor.
//
// The paper abstracts transactions down to the commit-relevant facts: who
// coordinates, which sites participate (and which protocol each speaks),
// and how each participant will vote once asked to prepare. Data
// operations are irrelevant to atomic commitment and are not modelled.

#ifndef PRANY_TXN_TRANSACTION_H_
#define PRANY_TXN_TRANSACTION_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace prany {

/// A distributed transaction ready for commit processing.
struct Transaction {
  TxnId id = kInvalidTxn;
  SiteId coordinator = kInvalidSite;
  std::vector<ParticipantInfo> participants;

  /// How each participant will vote when it receives PREPARE. Participants
  /// missing from the map vote yes. (A "no" models a local
  /// serialization/integrity failure at that site.)
  std::map<SiteId, Vote> planned_votes;

  /// Participant sites only (no protocols).
  std::vector<SiteId> ParticipantSites() const;

  /// The protocol spoken by participant `site`; CHECKs that it is one.
  ProtocolKind ProtocolOf(SiteId site) const;

  bool HasParticipant(SiteId site) const;

  /// True iff every participant votes yes, i.e. the coordinator will
  /// decide commit absent failures.
  bool AllVotesYes() const;

  /// Validates structure: unique participant sites, base protocols only,
  /// coordinator set, planned votes reference participants.
  Status Validate() const;

  /// e.g. "txn 7 coord=0 participants=[1:PrA,2:PrC]".
  std::string ToString() const;
};

/// Monotonic transaction-id source (one per System).
class TxnIdGenerator {
 public:
  TxnId Next() { return next_++; }

  /// Starts allocation at `base` (must be > 0). Multi-process clusters
  /// give each process a disjoint range so ids stay globally unique.
  void Seed(TxnId base) { next_ = base; }

 private:
  TxnId next_ = 1;
};

}  // namespace prany

#endif  // PRANY_TXN_TRANSACTION_H_
