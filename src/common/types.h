// Core identifier and enumeration types shared by every prany module.
//
// Terminology follows the paper (Al-Houmaily & Chrysanthis, PODS 1999):
//  - A *site* hosts a transaction manager that may act as coordinator
//    and/or participant.
//  - Each participant site runs one of the classic two-phase-commit
//    variants: PrN (presumed nothing / basic 2PC), PrA (presumed abort) or
//    PrC (presumed commit).
//  - A coordinator runs one of the above, or one of the integration
//    protocols: U2PC (union 2PC), C2PC (coordinator 2PC) or PrAny
//    (presumed any, the paper's contribution).

#ifndef PRANY_COMMON_TYPES_H_
#define PRANY_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace prany {

/// Identifies a site (node) in the distributed system.
using SiteId = uint32_t;

/// Identifies a distributed transaction. Unique across the whole run.
using TxnId = uint64_t;

/// Simulated time in microseconds since the start of the run.
using SimTime = uint64_t;

/// A duration in simulated microseconds.
using SimDuration = uint64_t;

/// Sentinel for "no site".
inline constexpr SiteId kInvalidSite = static_cast<SiteId>(-1);

/// Sentinel for "no transaction".
inline constexpr TxnId kInvalidTxn = static_cast<TxnId>(-1);

/// The atomic commit protocol spoken by a site.
///
/// The first three are the classic 2PC variants a *participant* may use
/// (and a homogeneous coordinator as well). The last three are coordinator-
/// side integration protocols for heterogeneous participant sets.
enum class ProtocolKind : uint8_t {
  kPrN = 0,   ///< Presumed nothing (basic 2PC), Figure 2 of the paper.
  kPrA = 1,   ///< Presumed abort, Figure 3.
  kPrC = 2,   ///< Presumed commit, Figure 4.
  kU2PC = 3,  ///< Union 2PC: native protocol + "ignore violations" (S2).
  kC2PC = 4,  ///< Coordinator 2PC: never forgets until all acks (S3).
  kPrAny = 5  ///< Presumed any, the paper's contribution (S4).
};

/// Final outcome of a transaction.
enum class Outcome : uint8_t {
  kCommit = 0,
  kAbort = 1,
};

/// A participant's vote in the voting phase.
///
/// kReadOnly is the classic R* read-only optimization the paper's §5
/// names as integrable under its operational-correctness criterion: a
/// participant whose subtransaction wrote nothing votes read-only,
/// releases its resources immediately, writes no log records, and is
/// excluded from the decision phase entirely.
enum class Vote : uint8_t {
  kYes = 0,
  kNo = 1,
  kReadOnly = 2,
};

/// Returns the inverse outcome.
inline Outcome Opposite(Outcome o) {
  return o == Outcome::kCommit ? Outcome::kAbort : Outcome::kCommit;
}

/// A participant in a distributed transaction together with the 2PC
/// variant its site speaks. Initiation log records and the PCP table are
/// lists of these.
struct ParticipantInfo {
  SiteId site = kInvalidSite;
  ProtocolKind protocol = ProtocolKind::kPrN;

  bool operator==(const ParticipantInfo& other) const {
    return site == other.site && protocol == other.protocol;
  }
};

/// Human-readable name ("PrN", "PrAny", ...).
std::string ToString(ProtocolKind kind);

/// Human-readable name ("commit" / "abort").
std::string ToString(Outcome outcome);

/// Human-readable name ("yes" / "no").
std::string ToString(Vote vote);

/// True for the three base participant protocols (PrN, PrA, PrC).
bool IsBaseProtocol(ProtocolKind kind);

/// Parses "PrN"/"PrA"/"PrC"/"U2PC"/"C2PC"/"PrAny" (case-insensitive).
/// Returns false if the name is not recognized.
bool ParseProtocolKind(const std::string& name, ProtocolKind* out);

}  // namespace prany

#endif  // PRANY_COMMON_TYPES_H_
