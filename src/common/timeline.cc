#include "common/timeline.h"

#include <sstream>

namespace prany {

namespace {
void KeepEarliest(std::optional<SimTime>* slot, SimTime t) {
  if (!slot->has_value() || t < **slot) *slot = t;
}
void KeepLatest(std::optional<SimTime>* slot, SimTime t) {
  if (!slot->has_value() || t > **slot) *slot = t;
}
}  // namespace

SimDuration TxnTimeline::VotingLatency() const {
  if (!begin.has_value() || !decided.has_value() || *decided < *begin) {
    return 0;
  }
  return *decided - *begin;
}

SimDuration TxnTimeline::DecisionLatency() const {
  if (!decided.has_value() || !forgotten.has_value() ||
      *forgotten < *decided) {
    return 0;
  }
  return *forgotten - *decided;
}

SimDuration TxnTimeline::TotalLatency() const {
  if (!Complete() || *forgotten < *begin) return 0;
  return *forgotten - *begin;
}

std::string TxnTimeline::ToString() const {
  std::ostringstream out;
  out << "txn " << txn;
  if (mode.has_value()) out << " mode=" << prany::ToString(*mode);
  if (outcome.has_value()) out << " " << prany::ToString(*outcome);
  out << " msgs=" << messages << " appends=" << log_appends << "("
      << forced_writes << " forced)";
  if (Complete()) {
    out << " voting=" << VotingLatency() << "us decision="
        << DecisionLatency() << "us total=" << TotalLatency() << "us";
  } else {
    out << " incomplete";
  }
  if (messages_lost > 0) out << " lost=" << messages_lost;
  if (resends > 0) out << " resends=" << resends;
  if (inquiries > 0) out << " inquiries=" << inquiries;
  return out.str();
}

std::map<TxnId, TxnTimeline> BuildTimelines(
    const std::vector<TraceEvent>& events) {
  std::map<TxnId, TxnTimeline> timelines;
  for (const TraceEvent& e : events) {
    if (e.txn == kInvalidTxn) continue;
    TxnTimeline& t = timelines[e.txn];
    t.txn = e.txn;
    switch (e.kind) {
      case TraceEventKind::kCoordBegin:
        KeepEarliest(&t.begin, e.time);
        t.coordinator = e.site;
        if (e.protocol.has_value()) t.mode = e.protocol;
        break;
      case TraceEventKind::kCoordDecide:
        KeepEarliest(&t.decided, e.time);
        if (e.outcome.has_value()) t.outcome = e.outcome;
        if (t.coordinator == kInvalidSite) t.coordinator = e.site;
        break;
      case TraceEventKind::kCoordForget:
        KeepLatest(&t.forgotten, e.time);
        break;
      case TraceEventKind::kCoordResend:
        ++t.resends;
        break;
      case TraceEventKind::kMsgSend:
        ++t.messages;
        ++t.messages_by_type[e.label];
        if (e.label == "PREPARE") KeepEarliest(&t.first_prepare_sent, e.time);
        break;
      case TraceEventKind::kMsgDeliver:
        if (e.label == "VOTE") KeepLatest(&t.last_vote_delivered, e.time);
        if (e.label == "ACK") KeepLatest(&t.last_ack_delivered, e.time);
        break;
      case TraceEventKind::kMsgDrop:
      case TraceEventKind::kMsgLostDown:
      case TraceEventKind::kMsgBlocked:
        ++t.messages_lost;
        break;
      case TraceEventKind::kWalAppend:
        ++t.log_appends;
        if (e.forced) ++t.forced_writes;
        break;
      case TraceEventKind::kPartInquiry:
        ++t.inquiries;
        break;
      default:
        break;
    }
  }
  return timelines;
}

void ObserveTimeline(const TxnTimeline& timeline, MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->Observe("txn.messages", static_cast<double>(timeline.messages));
  metrics->Observe("txn.log_appends",
                   static_cast<double>(timeline.log_appends));
  metrics->Observe("txn.forced_writes",
                   static_cast<double>(timeline.forced_writes));
  if (!timeline.Complete()) return;
  metrics->Observe("txn.latency.total_us",
                   static_cast<double>(timeline.TotalLatency()));
  metrics->Observe("txn.latency.voting_us",
                   static_cast<double>(timeline.VotingLatency()));
  metrics->Observe("txn.latency.decision_us",
                   static_cast<double>(timeline.DecisionLatency()));
  if (timeline.outcome.has_value()) {
    metrics->Observe(*timeline.outcome == Outcome::kCommit
                         ? "txn.latency.commit_us"
                         : "txn.latency.abort_us",
                     static_cast<double>(timeline.TotalLatency()));
  }
}

void RecordTimelineMetrics(const std::map<TxnId, TxnTimeline>& timelines,
                           MetricsRegistry* metrics) {
  for (const auto& [txn, timeline] : timelines) {
    ObserveTimeline(timeline, metrics);
  }
}

}  // namespace prany
