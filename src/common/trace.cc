#include "common/trace.h"

#include <cstdio>
#include <sstream>

namespace prany {

void TraceLog::Emit(SimTime time, std::string text) {
  if (!enabled_) return;
  if (echo_) {
    std::fprintf(stderr, "t=%lluus %s\n",
                 static_cast<unsigned long long>(time), text.c_str());
  }
  events_.push_back(TraceEvent{time, std::move(text)});
}

std::string TraceLog::ToString() const {
  std::ostringstream out;
  for (const TraceEvent& e : events_) {
    out << "t=" << e.time << "us " << e.text << "\n";
  }
  return out.str();
}

}  // namespace prany
