#include "common/trace.h"

#include <cstdio>
#include <sstream>

namespace prany {

std::string ToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kNote:
      return "NOTE";
    case TraceEventKind::kMsgSend:
      return "MSG_SEND";
    case TraceEventKind::kMsgDeliver:
      return "MSG_DELIVER";
    case TraceEventKind::kMsgDrop:
      return "MSG_DROP";
    case TraceEventKind::kMsgDuplicate:
      return "MSG_DUPLICATE";
    case TraceEventKind::kMsgLostDown:
      return "MSG_LOST_DOWN";
    case TraceEventKind::kMsgBlocked:
      return "MSG_BLOCKED";
    case TraceEventKind::kWalAppend:
      return "WAL_APPEND";
    case TraceEventKind::kWalForce:
      return "WAL_FORCE";
    case TraceEventKind::kWalCrashLoss:
      return "WAL_CRASH_LOSS";
    case TraceEventKind::kWalTruncate:
      return "WAL_TRUNCATE";
    case TraceEventKind::kCoordBegin:
      return "COORD_BEGIN";
    case TraceEventKind::kCoordDecide:
      return "COORD_DECIDE";
    case TraceEventKind::kCoordForget:
      return "COORD_FORGET";
    case TraceEventKind::kCoordVoteTimeout:
      return "COORD_VOTE_TIMEOUT";
    case TraceEventKind::kCoordResend:
      return "COORD_RESEND";
    case TraceEventKind::kCoordInquiryRecv:
      return "COORD_INQUIRY_RECV";
    case TraceEventKind::kCoordReply:
      return "COORD_REPLY";
    case TraceEventKind::kCoordPresume:
      return "COORD_PRESUME";
    case TraceEventKind::kCoordRecover:
      return "COORD_RECOVER";
    case TraceEventKind::kPartPrepared:
      return "PART_PREPARED";
    case TraceEventKind::kPartVote:
      return "PART_VOTE";
    case TraceEventKind::kPartEnforce:
      return "PART_ENFORCE";
    case TraceEventKind::kPartForget:
      return "PART_FORGET";
    case TraceEventKind::kPartInquiry:
      return "PART_INQUIRY";
    case TraceEventKind::kPartRecover:
      return "PART_RECOVER";
    case TraceEventKind::kSiteCrash:
      return "SITE_CRASH";
    case TraceEventKind::kSiteRecover:
      return "SITE_RECOVER";
  }
  return "UNKNOWN";
}

const char* TraceCategory(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kNote:
      return "note";
    case TraceEventKind::kMsgSend:
    case TraceEventKind::kMsgDeliver:
    case TraceEventKind::kMsgDrop:
    case TraceEventKind::kMsgDuplicate:
    case TraceEventKind::kMsgLostDown:
    case TraceEventKind::kMsgBlocked:
      return "net";
    case TraceEventKind::kWalAppend:
    case TraceEventKind::kWalForce:
    case TraceEventKind::kWalCrashLoss:
    case TraceEventKind::kWalTruncate:
      return "wal";
    case TraceEventKind::kCoordBegin:
    case TraceEventKind::kCoordDecide:
    case TraceEventKind::kCoordForget:
    case TraceEventKind::kCoordVoteTimeout:
    case TraceEventKind::kCoordResend:
    case TraceEventKind::kCoordInquiryRecv:
    case TraceEventKind::kCoordReply:
    case TraceEventKind::kCoordPresume:
    case TraceEventKind::kCoordRecover:
      return "coord";
    case TraceEventKind::kPartPrepared:
    case TraceEventKind::kPartVote:
    case TraceEventKind::kPartEnforce:
    case TraceEventKind::kPartForget:
    case TraceEventKind::kPartInquiry:
    case TraceEventKind::kPartRecover:
      return "part";
    case TraceEventKind::kSiteCrash:
    case TraceEventKind::kSiteRecover:
      return "site";
  }
  return "note";
}

std::string TraceEvent::ToString() const {
  if (kind == TraceEventKind::kNote) return detail;
  std::ostringstream out;
  out << prany::ToString(kind);
  if (!label.empty()) out << " " << label;
  if (outcome.has_value()) out << "(" << prany::ToString(*outcome) << ")";
  if (txn != kInvalidTxn) out << " txn=" << txn;
  if (site != kInvalidSite) {
    out << " " << site;
    if (peer != kInvalidSite) out << "->" << peer;
  } else if (peer != kInvalidSite) {
    out << " peer=" << peer;
  }
  if (protocol.has_value()) out << " proto=" << prany::ToString(*protocol);
  if (forced) out << " forced";
  if (by_presumption) out << " by-presumption";
  if (value != 0) out << " value=" << value;
  if (!detail.empty()) out << " (" << detail << ")";
  return out.str();
}

void TraceLog::Emit(TraceEvent event) {
  if (!enabled_.load(std::memory_order_acquire)) return;
  if (echo_) {
    std::fprintf(stderr, "t=%lluus %s\n",
                 static_cast<unsigned long long>(event.time),
                 event.ToString().c_str());
  }
  MutexLock lock(mu_);
  events_.push_back(std::move(event));
}

void TraceLog::Clear() {
  // Previously mutated events_ with no lock; the GUARDED_BY conversion
  // made the compiler reject that, and a Clear racing a live Emit really
  // would corrupt the vector.
  MutexLock lock(mu_);
  events_.clear();
}

void TraceLog::Emit(SimTime time, std::string text) {
  TraceEvent event;
  event.time = time;
  event.kind = TraceEventKind::kNote;
  event.detail = std::move(text);
  Emit(std::move(event));
}

std::string TraceLog::ToString() const {
  std::ostringstream out;
  // events() is the quiescent-only unlocked accessor; this dump shares
  // its contract (all emitters stopped).
  for (const TraceEvent& e : events()) {
    out << "t=" << e.time << "us " << e.ToString() << "\n";
  }
  return out.str();
}

}  // namespace prany
