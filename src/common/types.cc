#include "common/types.h"

#include <algorithm>
#include <cctype>

namespace prany {

std::string ToString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPrN:
      return "PrN";
    case ProtocolKind::kPrA:
      return "PrA";
    case ProtocolKind::kPrC:
      return "PrC";
    case ProtocolKind::kU2PC:
      return "U2PC";
    case ProtocolKind::kC2PC:
      return "C2PC";
    case ProtocolKind::kPrAny:
      return "PrAny";
  }
  return "unknown";
}

std::string ToString(Outcome outcome) {
  return outcome == Outcome::kCommit ? "commit" : "abort";
}

std::string ToString(Vote vote) {
  switch (vote) {
    case Vote::kYes:
      return "yes";
    case Vote::kNo:
      return "no";
    case Vote::kReadOnly:
      return "read-only";
  }
  return "unknown";
}

bool IsBaseProtocol(ProtocolKind kind) {
  return kind == ProtocolKind::kPrN || kind == ProtocolKind::kPrA ||
         kind == ProtocolKind::kPrC;
}

bool ParseProtocolKind(const std::string& name, ProtocolKind* out) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "prn" || lower == "2pc") {
    *out = ProtocolKind::kPrN;
  } else if (lower == "pra") {
    *out = ProtocolKind::kPrA;
  } else if (lower == "prc") {
    *out = ProtocolKind::kPrC;
  } else if (lower == "u2pc") {
    *out = ProtocolKind::kU2PC;
  } else if (lower == "c2pc") {
    *out = ProtocolKind::kC2PC;
  } else if (lower == "prany") {
    *out = ProtocolKind::kPrAny;
  } else {
    return false;
  }
  return true;
}

}  // namespace prany
