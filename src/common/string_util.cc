#include "common/string_util.h"

#include <string.h>

#include <cstdarg>
#include <cstdio>

namespace prany {

std::string SafeStrError(int errnum) {
  char buf[256];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r returns the message (possibly static, possibly buf).
  return strerror_r(errnum, buf, sizeof(buf));
#else
  // POSIX strerror_r fills buf and returns 0 (or an error code).
  if (strerror_r(errnum, buf, sizeof(buf)) != 0) {
    std::snprintf(buf, sizeof(buf), "errno %d", errnum);
  }
  return buf;
#endif
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string RenderTable(const std::vector<std::vector<std::string>>& rows,
                        bool header_separator) {
  if (rows.empty()) return "";
  size_t cols = 0;
  for (const auto& row : rows) cols = std::max(cols, row.size());
  std::vector<size_t> widths(cols, 0);
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += "  ";
      out += PadRight(rows[r][c], widths[c]);
    }
    out += "\n";
    if (r == 0 && header_separator) {
      for (size_t c = 0; c < cols; ++c) {
        if (c > 0) out += "  ";
        out += std::string(widths[c], '-');
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace prany
