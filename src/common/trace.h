// Structured trace sink for protocol debugging and the example programs.
//
// Components emit one-line trace events ("t=1200us site=2 PREPARE received
// txn=7"). Tracing is off by default; examples and failing tests turn it on
// to print a readable protocol timeline.

#ifndef PRANY_COMMON_TRACE_H_
#define PRANY_COMMON_TRACE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace prany {

/// One trace line with its simulated timestamp.
struct TraceEvent {
  SimTime time = 0;
  std::string text;
};

/// Collects (and optionally echoes) trace events.
class TraceLog {
 public:
  /// When enabled, events are retained (and echoed if `echo` was set).
  void Enable(bool echo_to_stderr = false) {
    enabled_ = true;
    echo_ = echo_to_stderr;
  }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void Emit(SimTime time, std::string text);

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// All events joined as "t=<time>us <text>" lines.
  std::string ToString() const;

 private:
  bool enabled_ = false;
  bool echo_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace prany

#endif  // PRANY_COMMON_TRACE_H_
