// Structured trace layer: every subsystem (network, stable log, protocol
// engines, site lifecycle) emits typed TraceEvents into one per-run
// TraceLog owned by the Simulator.
//
// The paper's entire argument is conducted in per-transaction timelines —
// who sent which message, who forced which log record, when (Figures 1-5).
// Typed events make those timelines first-class artifacts: tests assert
// them arrow-for-arrow (trace_query.h), the harness aggregates them into
// per-transaction phase latencies and cost counts (timeline.h), and tools
// export them as Chrome trace-event JSON loadable in Perfetto
// (trace_export.h).
//
// Tracing is off by default; when disabled, Emit is a cheap no-op.

#ifndef PRANY_COMMON_TRACE_H_
#define PRANY_COMMON_TRACE_H_

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/types.h"

namespace prany {

/// What happened. Grouped by the emitting layer; see docs/OBSERVABILITY.md
/// for the full catalogue with field conventions.
enum class TraceEventKind : uint8_t {
  /// Free-text diagnostic line (legacy Emit(time, text) entry point).
  kNote = 0,

  // -- network fabric (site = sender for send-side kinds, receiver for
  //    delivery-side kinds; peer = the other end; label = message type).
  kMsgSend,       ///< Message handed to the network.
  kMsgDeliver,    ///< Message delivered to an up endpoint.
  kMsgDrop,       ///< Dropped (detail: "random", "targeted", "indexed").
  kMsgDuplicate,  ///< A second delivery was scheduled.
  kMsgLostDown,   ///< Destination was down at delivery time.
  kMsgBlocked,    ///< Link partitioned at send time.

  // -- stable log (label = record type; forced = append force flag).
  kWalAppend,     ///< Record appended (value = lsn).
  kWalForce,      ///< Physical forced-write I/O (value = records flushed).
  kWalCrashLoss,  ///< Crash discarded the volatile tail (value = records).
  kWalTruncate,   ///< GC removed released records (value = records).

  // -- coordinator engine (protocol = commit protocol in use).
  kCoordBegin,        ///< Commit processing started (voting phase).
  kCoordDecide,       ///< Decision reached (outcome set).
  kCoordForget,       ///< Entry erased; log records released.
  kCoordVoteTimeout,  ///< Voting phase timed out (decision will be abort).
  kCoordResend,       ///< Decision retransmitted to unacked participants.
  kCoordInquiryRecv,  ///< INQUIRY received (peer = inquirer).
  kCoordReply,        ///< INQUIRY answered (by_presumption when presumed).
  kCoordPresume,      ///< PrAny adopted the inquirer's presumption
                      ///< (protocol = the inquirer's protocol).
  kCoordRecover,      ///< Unfinished decision phase re-initiated (§4.2).

  // -- participant engine.
  kPartPrepared,  ///< PREPARED force-logged; vote will be yes.
  kPartVote,      ///< Vote sent (detail = "yes"/"no"/"read-only").
  kPartEnforce,   ///< Outcome enforced locally (outcome set).
  kPartForget,    ///< Participant released the transaction.
  kPartInquiry,   ///< In-doubt INQUIRY sent (peer = coordinator).
  kPartRecover,   ///< Post-crash log analysis acted on this transaction.

  // -- site lifecycle.
  kSiteCrash,    ///< Site failed (value = scheduled downtime in us).
  kSiteRecover,  ///< Site back up; engines recovering from the log.
};

/// Human-readable kind name ("MSG_SEND", "COORD_DECIDE", ...).
std::string ToString(TraceEventKind kind);

/// Coarse layer of a kind: "note", "net", "wal", "coord", "part", "site".
/// Used as the Chrome trace-event category.
const char* TraceCategory(TraceEventKind kind);

/// One structured trace event. Only `time` and `kind` are always
/// meaningful; the other fields follow the per-kind conventions above and
/// default to "absent" (kInvalidSite / kInvalidTxn / nullopt / empty).
struct TraceEvent {
  SimTime time = 0;
  TraceEventKind kind = TraceEventKind::kNote;
  SiteId site = kInvalidSite;  ///< Emitting site.
  TxnId txn = kInvalidTxn;
  SiteId peer = kInvalidSite;  ///< Message destination / inquirer / etc.
  std::optional<ProtocolKind> protocol;
  std::optional<Outcome> outcome;
  bool forced = false;          ///< kWalAppend: force flag.
  bool by_presumption = false;  ///< kCoordReply: answered by presumption.
  uint64_t value = 0;           ///< Kind-specific count (bytes, lsn, ...).
  std::string label;   ///< Message type / log record type name.
  std::string detail;  ///< Free text (the whole line for kNote).

  /// One-line rendering, e.g. "MSG_SEND DECISION(commit) txn=7 0->2".
  /// kNote events render as their detail text alone.
  std::string ToString() const;
};

/// Collects (and optionally echoes to stderr) trace events.
///
/// Emit() is thread-safe (the live runtime's sites emit concurrently);
/// enable/disable and the read accessors (events(), ToString()) are meant
/// for quiescent use — before the run starts or after all emitters have
/// stopped — as they hand out references into the live vector.
class TraceLog {
 public:
  /// When enabled, events are retained (and echoed if `echo` was set).
  /// The release store pairs with Emit's acquire load so a concurrent
  /// emitter that sees enabled also sees the echo flag.
  void Enable(bool echo_to_stderr = false) {
    echo_ = echo_to_stderr;
    enabled_.store(true, std::memory_order_release);
  }
  void Disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Records a structured event (no-op while disabled). Thread-safe.
  void Emit(TraceEvent event);

  /// Legacy free-text entry point: records a kNote event. Thread-safe.
  void Emit(SimTime time, std::string text);

  /// Quiescent read: hands out a reference into the live vector, so all
  /// emitters must have stopped (see class comment).
  const std::vector<TraceEvent>& events() const
      PRANY_NO_THREAD_SAFETY_ANALYSIS {
    // Unlocked by contract: quiescent-only accessor; a lock here could
    // not protect the returned reference anyway.
    return events_;
  }
  void Clear();

  /// All events joined as "t=<time>us <event>" lines.
  std::string ToString() const;

 private:
  std::atomic<bool> enabled_{false};
  bool echo_ = false;
  /// Leaf lock (metrics rank): guards events_ during concurrent Emit.
  mutable Mutex mu_ PRANY_ACQUIRED_AFTER(lock_order::kCrashRank);
  std::vector<TraceEvent> events_ PRANY_GUARDED_BY(mu_);
};

}  // namespace prany

#endif  // PRANY_COMMON_TRACE_H_
