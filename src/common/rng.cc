#include "common/rng.h"

#include <algorithm>

#include "common/status.h"

namespace prany {

uint64_t Rng::Uniform(uint64_t lo, uint64_t hi) {
  PRANY_CHECK(lo <= hi);
  std::uniform_int_distribution<uint64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  PRANY_CHECK(mean > 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

size_t Rng::Index(size_t n) {
  PRANY_CHECK(n >= 1);
  return static_cast<size_t>(Uniform(0, n - 1));
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  PRANY_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(0, n - 1 - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(engine_()); }

}  // namespace prany
