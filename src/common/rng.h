// Deterministic pseudo-random source. Every stochastic decision in the
// simulator (latency draws, message drops, workload arrivals) flows through
// one seeded Rng so that runs are exactly reproducible.

#ifndef PRANY_COMMON_RNG_H_
#define PRANY_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace prany {

/// Seeded mersenne-twister wrapper with the distributions the simulator
/// needs. Not thread-safe; the simulator is single-threaded by design.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Picks a uniformly random element index for a container of size n >= 1.
  size_t Index(size_t n);

  /// Returns k distinct values sampled uniformly from [0, n). k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks an independent deterministic child stream. Child streams keep
  /// subsystem randomness decoupled (e.g. workload vs. network) so adding
  /// draws in one does not perturb the other.
  Rng Fork();

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace prany

#endif  // PRANY_COMMON_RNG_H_
