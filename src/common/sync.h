// Annotated synchronization primitives for the live runtime.
//
// Thin zero-cost wrappers over std::mutex / std::condition_variable that
// carry Clang Thread Safety Analysis capability annotations
// (thread_annotations.h), so every lock-protected field can be declared
// PRANY_GUARDED_BY(its mutex) and the compiler rejects unguarded access,
// missing-REQUIRES calls and deadlock-shaped acquisition orders on every
// clang build. Under gcc the annotations vanish and these classes are
// exactly the std primitives they wrap.
//
// Lock-ordering hierarchy. The live runtime's locks form a strict order
// (outermost first):
//
//   engine  — per-site engine mutex (LiveSite::engine_mu_): serializes all
//             protocol-engine entry points; released across durability
//             waits. While held, code sends messages (taking destination
//             queue locks), arms timers (loop lock), appends to the WAL
//             (wal-sync lock), requests crash restarts (crash lock) and
//             records metrics/history/trace — so it precedes everything.
//   queue   — per-site worker-queue mutexes (LiveSite::queue_mu_), the
//             timer-loop mutex (LiveEventLoop::mu_) and the transport
//             parking mutexes (Inbox::park_mu): taken from engine code to
//             hand work over, never the other way around.
//   wal-sync— per-WAL group-commit queue mutex (FileStableLog::sync_mu_):
//             taken by engine-side Append/Flush and by the fsync thread;
//             never held while calling out.
//   crash   — crash-restart controller state (LiveSystem::crash_mu_,
//             injector_mu_): taken from engine code (crash probes, restart
//             requests) and from the controller thread.
//   metrics — leaf observability locks (MetricsRegistry::mu_, per-
//             Distribution locks, TraceLog::mu_, EventLog shard locks,
//             await-shard locks): innermost; code holding one never
//             acquires anything else.
//
// Each real mutex is declared PRANY_ACQUIRED_AFTER(the previous rank
// token) / PRANY_ACQUIRED_BEFORE(the next), anchoring it into the global
// chain below; -Wthread-safety-beta then statically rejects any
// acquisition order that inverts the hierarchy. The rank tokens are
// declarative only — they are never locked at runtime and occupy one byte
// of .bss each; they exist because ACQUIRED_BEFORE/AFTER arguments must
// name declarations visible at the mutex's declaration site, which member
// mutexes of other classes are not.

#ifndef PRANY_COMMON_SYNC_H_
#define PRANY_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.h"

namespace prany {

/// A std::mutex carrying the CAPABILITY annotation. Lock/Unlock/TryLock
/// update the analysis' lockset; native() exposes the underlying
/// std::mutex for condition-variable interop inside this header only.
class PRANY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PRANY_ACQUIRE() { mu_.lock(); }
  void Unlock() PRANY_RELEASE() { mu_.unlock(); }
  bool TryLock() PRANY_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// For CondVar. Deliberately not named lock()/unlock(): the BasicLockable
  /// spelling would invite unannotated std::lock_guard use that the
  /// analysis cannot see.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex (scoped capability). Supports the live runtime's
/// release-in-the-middle idiom (durability waits, handler dispatch):
/// Unlock()/Lock() toggle the capability mid-scope and the destructor
/// releases only if currently held — all visible to the analysis.
class PRANY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PRANY_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() PRANY_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (durability wait, running a handler).
  void Unlock() PRANY_RELEASE() {
    held_ = false;
    mu_.Unlock();
  }
  void Lock() PRANY_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to Mutex at each wait site. Waits take the
/// Mutex (declared REQUIRES, so the analysis checks the caller holds it)
/// and internally adopt/release its native handle; no predicate-lambda
/// overloads are offered — annotated code spells the predicate loop out
/// (`while (!cond) cv.Wait(mu);`) so the guarded reads in the predicate
/// are analyzed in the enclosing function instead of hiding in a lambda
/// the analysis treats as an unrelated function.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, reacquires. Spurious wakeups happen;
  /// always wrap in a predicate loop.
  void Wait(Mutex& mu) PRANY_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.native(), std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // ownership stays with the caller's MutexLock
  }

  /// Timed wait; true if the wait timed out (the predicate must be
  /// re-checked either way).
  bool WaitFor(Mutex& mu, std::chrono::microseconds timeout)
      PRANY_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.native(), std::adopt_lock);
    bool timed_out = cv_.wait_for(adopted, timeout) == std::cv_status::timeout;
    adopted.release();
    return timed_out;
  }

  /// Deadline wait against steady_clock; true if the deadline passed.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      PRANY_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.native(), std::adopt_lock);
    bool timed_out =
        cv_.wait_until(adopted, deadline) == std::cv_status::timeout;
    adopted.release();
    return timed_out;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

namespace lock_order {

/// Declarative rank tokens for the global lock-ordering hierarchy (see
/// the header comment). Never locked at runtime. A real mutex anchors
/// itself with, e.g.:
///
///   Mutex queue_mu_ PRANY_ACQUIRED_AFTER(lock_order::kEngineRank)
///                   PRANY_ACQUIRED_BEFORE(lock_order::kWalSyncRank);
///
/// and the analysis' transitive closure over these edges rejects any
/// acquisition that runs against the chain.
class PRANY_CAPABILITY("mutex") Rank {
 public:
  constexpr Rank() = default;
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;
};

// The chain: engine -> queue -> wal-sync -> crash -> metrics.
inline constinit Rank kEngineRank;
inline constinit Rank kQueueRank PRANY_ACQUIRED_AFTER(kEngineRank);
inline constinit Rank kWalSyncRank PRANY_ACQUIRED_AFTER(kQueueRank);
inline constinit Rank kCrashRank PRANY_ACQUIRED_AFTER(kWalSyncRank);
inline constinit Rank kMetricsRank PRANY_ACQUIRED_AFTER(kCrashRank);

}  // namespace lock_order

}  // namespace prany

#endif  // PRANY_COMMON_SYNC_H_
