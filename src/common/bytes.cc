#include "common/bytes.h"

namespace prany {

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

void ByteWriter::PutRaw(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

Status ByteReader::GetU8(uint8_t* out) { return GetFixed(out); }
Status ByteReader::GetU16(uint16_t* out) { return GetFixed(out); }
Status ByteReader::GetU32(uint32_t* out) { return GetFixed(out); }
Status ByteReader::GetU64(uint64_t* out) { return GetFixed(out); }

Status ByteReader::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::Corruption("truncated varint");
    if (shift >= 64) return Status::Corruption("varint too long");
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::OK();
}

Status ByteReader::GetString(std::string* out) {
  uint64_t len = 0;
  PRANY_RETURN_NOT_OK(GetVarint(&len));
  if (len > remaining()) {
    return Status::Corruption("truncated string payload");
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_),
              static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

}  // namespace prany
