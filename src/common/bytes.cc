#include "common/bytes.h"

namespace prany {

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

void ByteWriter::PutRaw(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

Status ByteReader::GetU8(uint8_t* out) { return GetFixed(out); }
Status ByteReader::GetU16(uint16_t* out) { return GetFixed(out); }
Status ByteReader::GetU32(uint32_t* out) { return GetFixed(out); }
Status ByteReader::GetU64(uint64_t* out) { return GetFixed(out); }

Status ByteReader::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::Corruption("truncated varint");
    if (shift >= 64) return Status::Corruption("varint too long");
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::OK();
}

Status ByteReader::GetString(std::string* out) {
  uint64_t len = 0;
  PRANY_RETURN_NOT_OK(GetVarint(&len));
  if (len > remaining()) {
    return Status::Corruption("truncated string payload");
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_),
              static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

namespace {
// Table-driven CRC-32 (IEEE, reflected polynomial 0xEDB88320).
const uint32_t* Crc32Table() {
  static const uint32_t* table = []() {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const uint32_t* table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace prany
