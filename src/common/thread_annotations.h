// Clang Thread Safety Analysis attribute macros.
//
// These wrap clang's capability-analysis attributes so the locking
// discipline of the live runtime is compiler-checked on every clang build
// (-Wthread-safety -Wthread-safety-beta; the clang-tsa CMake preset turns
// them into errors). Under gcc — and any compiler without the capability
// attribute — every macro expands to nothing, so annotated code compiles
// unchanged. See docs/STATIC_ANALYSIS.md for the annotation discipline
// and the global lock-ordering hierarchy.
//
// Naming follows the convention from the clang documentation (CAPABILITY,
// GUARDED_BY, REQUIRES, ...), prefixed PRANY_ so nothing collides with
// other libraries' annotation headers.

#ifndef PRANY_COMMON_THREAD_ANNOTATIONS_H_
#define PRANY_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PRANY_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef PRANY_THREAD_ANNOTATION
#define PRANY_THREAD_ANNOTATION(x)  // expands to nothing off-clang
#endif

/// Marks a class as a capability (a lock). Instances can then appear in
/// the other annotations' capability expressions.
#define PRANY_CAPABILITY(x) PRANY_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define PRANY_SCOPED_CAPABILITY PRANY_THREAD_ANNOTATION(scoped_lockable)

/// The field may only be read or written while holding `x`.
#define PRANY_GUARDED_BY(x) PRANY_THREAD_ANNOTATION(guarded_by(x))

/// The data the pointer/smart-pointer field points to may only be
/// dereferenced while holding `x` (the pointer itself is unguarded).
#define PRANY_PT_GUARDED_BY(x) PRANY_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding `...` exclusively; it
/// does not change what is held.
#define PRANY_REQUIRES(...) \
  PRANY_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function may only be called while NOT holding `...` (deadlock
/// guard for functions that acquire it themselves).
#define PRANY_EXCLUDES(...) \
  PRANY_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires `...` and returns with it held.
#define PRANY_ACQUIRE(...) \
  PRANY_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases `...`; the caller must hold it on entry.
#define PRANY_RELEASE(...) \
  PRANY_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function tries to acquire `...`; on returning `ret` it is held.
#define PRANY_TRY_ACQUIRE(ret, ...) \
  PRANY_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Lock-ordering edges (checked under -Wthread-safety-beta): this mutex
/// must be acquired before / after the listed mutexes. The analysis takes
/// the transitive closure, so ordering every real mutex against the
/// shared rank tokens in sync.h yields one global hierarchy.
#define PRANY_ACQUIRED_BEFORE(...) \
  PRANY_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PRANY_ACQUIRED_AFTER(...) \
  PRANY_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Returns a reference to the capability a wrapper stands for (lets
/// annotations name `wrapper` instead of `wrapper.native()`).
#define PRANY_RETURN_CAPABILITY(x) \
  PRANY_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Every use MUST carry
/// a rationale comment naming the invariant the analysis cannot see (the
/// only accepted reasons are in docs/STATIC_ANALYSIS.md: cross-function
/// lock handoff through a type-erased boundary, or an external
/// serialization domain the annotation language cannot name).
#define PRANY_NO_THREAD_SAFETY_ANALYSIS \
  PRANY_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PRANY_COMMON_THREAD_ANNOTATIONS_H_
