// Small string/formatting helpers shared by traces, benches and examples.

#ifndef PRANY_COMMON_STRING_UTIL_H_
#define PRANY_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prany {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins elements with `sep` using std::to_string-able values.
template <typename Container>
std::string JoinNumbers(const Container& values, const std::string& sep) {
  std::string out;
  bool first = true;
  for (const auto& v : values) {
    if (!first) out += sep;
    out += std::to_string(v);
    first = false;
  }
  return out;
}

/// Thread-safe strerror: formats `errnum` via strerror_r into a fresh
/// string. std::strerror may return a pointer into shared static storage
/// (clang-tidy concurrency-mt-unsafe), and the WAL's error paths run on
/// the fsync thread concurrently with engine threads.
std::string SafeStrError(int errnum);

/// Fixed-width left-aligned cell for plain-text tables.
std::string PadRight(const std::string& s, size_t width);

/// Fixed-width right-aligned cell for plain-text tables.
std::string PadLeft(const std::string& s, size_t width);

/// Renders a simple aligned plain-text table. `rows` includes the header
/// row if desired; a separator line is inserted after the first row when
/// `header_separator` is true.
std::string RenderTable(const std::vector<std::vector<std::string>>& rows,
                        bool header_separator = true);

}  // namespace prany

#endif  // PRANY_COMMON_STRING_UTIL_H_
