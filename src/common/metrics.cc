#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace prany {

namespace {
const std::vector<double>& EmptySamples() {
  static const std::vector<double> kEmpty;
  return kEmpty;
}

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}
}  // namespace

void MetricsRegistry::Add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  distributions_[name].push_back(value);
}

DistributionStats MetricsRegistry::Summarize(const std::string& name) const {
  DistributionStats stats;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = distributions_.find(name);
  if (it == distributions_.end() || it->second.empty()) return stats;
  std::vector<double> sorted = it->second;
  std::sort(sorted.begin(), sorted.end());
  stats.count = sorted.size();
  stats.min = sorted.front();
  stats.max = sorted.back();
  stats.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
               static_cast<double>(sorted.size());
  stats.p50 = Percentile(sorted, 0.50);
  stats.p95 = Percentile(sorted, 0.95);
  stats.p99 = Percentile(sorted, 0.99);
  return stats;
}

std::vector<std::string> MetricsRegistry::DistributionNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  names.reserve(distributions_.size());
  for (const auto& [name, samples] : distributions_) names.push_back(name);
  return names;
}

const std::vector<double>& MetricsRegistry::samples(
    const std::string& name) const {
  auto it = distributions_.find(name);
  return it == distributions_.end() ? EmptySamples() : it->second;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  distributions_.clear();
}

std::string MetricsRegistry::ToString(const std::string& prefix) const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    out << name << " = " << value << "\n";
  }
  return out.str();
}

}  // namespace prany
