#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace prany {

namespace {
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}
}  // namespace

MetricsRegistry::Counter* MetricsRegistry::CounterHandle(
    const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Counter>& cell = counters_[name];
  if (cell == nullptr) cell = std::make_unique<Counter>(0);
  return cell.get();
}

MetricsRegistry::Distribution* MetricsRegistry::DistributionHandle(
    const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Distribution>& cell = distributions_[name];
  if (cell == nullptr) cell = std::make_unique<Distribution>();
  return cell.get();
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second->load(std::memory_order_relaxed);
}

DistributionStats MetricsRegistry::Summarize(const std::string& name) const {
  DistributionStats stats;
  std::vector<double> sorted = samples(name);
  if (sorted.empty()) return stats;
  std::sort(sorted.begin(), sorted.end());
  stats.count = sorted.size();
  stats.min = sorted.front();
  stats.max = sorted.back();
  stats.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
               static_cast<double>(sorted.size());
  stats.p50 = Percentile(sorted, 0.50);
  stats.p95 = Percentile(sorted, 0.95);
  stats.p99 = Percentile(sorted, 0.99);
  return stats;
}

std::map<std::string, int64_t> MetricsRegistry::counters() const {
  std::map<std::string, int64_t> out;
  MutexLock lock(mu_);
  for (const auto& [name, cell] : counters_) {
    out.emplace(name, cell->load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::string> MetricsRegistry::DistributionNames() const {
  std::vector<std::string> names;
  MutexLock lock(mu_);
  names.reserve(distributions_.size());
  for (const auto& [name, cell] : distributions_) names.push_back(name);
  return names;
}

std::vector<double> MetricsRegistry::samples(const std::string& name) const {
  Distribution* cell = nullptr;
  {
    MutexLock lock(mu_);
    auto it = distributions_.find(name);
    if (it == distributions_.end()) return {};
    cell = it->second.get();
  }
  MutexLock lock(cell->mu_);
  return cell->samples_;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, cell] : counters_) {
    cell->store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : distributions_) {
    MutexLock cell_lock(cell->mu_);
    cell->samples_.clear();
  }
}

std::string MetricsRegistry::ToString(const std::string& prefix) const {
  std::ostringstream out;
  for (const auto& [name, value] : counters()) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    out << name << " = " << value << "\n";
  }
  return out.str();
}

}  // namespace prany
