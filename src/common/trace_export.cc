#include "common/trace_export.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace prany {

namespace {

/// Track id for events that carry no site (simulator-level notes).
constexpr uint64_t kSimTrack = 999999;

uint64_t TrackOf(SiteId site) {
  return site == kInvalidSite ? kSimTrack : static_cast<uint64_t>(site);
}

std::string JsonNumber(double value) {
  // %.12g round-trips every count and microsecond value we record while
  // staying valid JSON (no trailing garbage, no locale commas).
  std::string s = StrFormat("%.12g", value);
  return s;
}

void AppendThreadMetadata(std::ostringstream* out, uint64_t tid,
                          const std::string& name, bool* first) {
  if (!*first) *out << ",\n";
  *first = false;
  *out << "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const std::map<TxnId, TxnTimeline>& timelines) {
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;

  // Name one track per site (plus the simulator track if used).
  std::set<uint64_t> tracks;
  for (const TraceEvent& e : events) tracks.insert(TrackOf(e.site));
  for (const auto& [txn, t] : timelines) {
    if (t.coordinator != kInvalidSite) tracks.insert(TrackOf(t.coordinator));
  }
  for (uint64_t tid : tracks) {
    AppendThreadMetadata(&out, tid,
                         tid == kSimTrack ? "sim"
                                          : "site " + std::to_string(tid),
                         &first);
  }

  for (const TraceEvent& e : events) {
    if (!first) out << ",\n";
    first = false;
    std::string name = ToString(e.kind);
    if (!e.label.empty()) name += " " + e.label;
    out << "  {\"name\":\"" << JsonEscape(name) << "\",\"cat\":\""
        << TraceCategory(e.kind) << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
        << e.time << ",\"pid\":0,\"tid\":" << TrackOf(e.site) << ",\"args\":{";
    const char* sep = "";
    auto arg = [&](const char* key, const std::string& value, bool quote) {
      out << sep << "\"" << key << "\":";
      if (quote) {
        out << "\"" << JsonEscape(value) << "\"";
      } else {
        out << value;
      }
      sep = ",";
    };
    if (e.txn != kInvalidTxn) arg("txn", std::to_string(e.txn), false);
    if (e.peer != kInvalidSite) arg("peer", std::to_string(e.peer), false);
    if (e.protocol.has_value()) arg("protocol", ToString(*e.protocol), true);
    if (e.outcome.has_value()) arg("outcome", ToString(*e.outcome), true);
    if (e.forced) arg("forced", "true", false);
    if (e.by_presumption) arg("by_presumption", "true", false);
    if (e.value != 0) arg("value", std::to_string(e.value), false);
    if (!e.detail.empty()) arg("detail", e.detail, true);
    out << "}}";
  }

  // Phase slices: voting (begin -> decide) and decision (decide -> forget)
  // as duration events on the coordinator's track.
  for (const auto& [txn, t] : timelines) {
    uint64_t tid = TrackOf(t.coordinator);
    std::string mode = t.mode.has_value() ? ToString(*t.mode) : "?";
    auto slice = [&](const char* phase, SimTime start, SimTime end) {
      if (!first) out << ",\n";
      first = false;
      out << "  {\"name\":\"txn " << txn << " " << phase
          << "\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":" << start
          << ",\"dur\":" << (end - start) << ",\"pid\":0,\"tid\":" << tid
          << ",\"args\":{\"txn\":" << txn << ",\"mode\":\""
          << JsonEscape(mode) << "\"}}";
    };
    if (t.begin.has_value() && t.decided.has_value() &&
        *t.decided >= *t.begin) {
      slice("voting", *t.begin, *t.decided);
    }
    if (t.decided.has_value() && t.forgotten.has_value() &&
        *t.forgotten >= *t.decided) {
      slice("decision", *t.decided, *t.forgotten);
    }
  }

  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

std::string MetricsJson(const MetricsRegistry& metrics) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  const char* sep = "\n";
  for (const auto& [name, value] : metrics.counters()) {
    out << sep << "    \"" << JsonEscape(name) << "\": " << value;
    sep = ",\n";
  }
  out << "\n  },\n  \"distributions\": {";
  sep = "\n";
  for (const std::string& name : metrics.DistributionNames()) {
    DistributionStats s = metrics.Summarize(name);
    out << sep << "    \"" << JsonEscape(name) << "\": {\"count\": "
        << s.count << ", \"min\": " << JsonNumber(s.min)
        << ", \"max\": " << JsonNumber(s.max)
        << ", \"mean\": " << JsonNumber(s.mean)
        << ", \"p50\": " << JsonNumber(s.p50)
        << ", \"p95\": " << JsonNumber(s.p95)
        << ", \"p99\": " << JsonNumber(s.p99) << "}";
    sep = ",\n";
  }
  out << "\n  }\n}\n";
  return out.str();
}

bool WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out << content;
  out.flush();
  return out.good();
}

}  // namespace prany
