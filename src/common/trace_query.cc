#include "common/trace_query.h"

#include <sstream>

#include "common/string_util.h"

namespace prany {

bool TraceMatcher::Matches(const TraceEvent& event) const {
  if (kind.has_value() && event.kind != *kind) return false;
  if (txn.has_value() && event.txn != *txn) return false;
  if (site.has_value() && event.site != *site) return false;
  if (peer.has_value() && event.peer != *peer) return false;
  if (label.has_value() && event.label != *label) return false;
  if (outcome.has_value() &&
      (!event.outcome.has_value() || *event.outcome != *outcome)) {
    return false;
  }
  if (forced.has_value() && event.forced != *forced) return false;
  if (by_presumption.has_value() && event.by_presumption != *by_presumption) {
    return false;
  }
  return true;
}

std::string TraceMatcher::ToString() const {
  std::ostringstream out;
  out << "{";
  const char* sep = "";
  auto field = [&](const std::string& text) {
    out << sep << text;
    sep = " ";
  };
  if (kind.has_value()) field(prany::ToString(*kind));
  if (label.has_value()) field("label=" + *label);
  if (txn.has_value()) field("txn=" + std::to_string(*txn));
  if (site.has_value()) field("site=" + std::to_string(*site));
  if (peer.has_value()) field("peer=" + std::to_string(*peer));
  if (outcome.has_value()) field(prany::ToString(*outcome));
  if (forced.has_value()) field(*forced ? "forced" : "lazy");
  if (by_presumption.has_value()) {
    field(*by_presumption ? "by-presumption" : "from-memory");
  }
  out << "}";
  return out.str();
}

SequenceCheck ExpectSequence(const std::vector<TraceEvent>& events,
                             const std::vector<TraceMatcher>& sequence) {
  SequenceCheck check;
  size_t pos = 0;
  for (const TraceMatcher& matcher : sequence) {
    bool found = false;
    while (pos < events.size()) {
      if (matcher.Matches(events[pos])) {
        found = true;
        ++pos;
        break;
      }
      ++pos;
    }
    if (!found) {
      check.error = StrFormat(
          "matcher #%zu %s not found (matched %zu of %zu; scanned %zu "
          "events)",
          check.matched + 1, matcher.ToString().c_str(), check.matched,
          sequence.size(), events.size());
      return check;
    }
    ++check.matched;
  }
  check.ok = true;
  return check;
}

namespace {
template <typename Pred>
TraceQuery Filter(const std::vector<TraceEvent>& events, Pred pred) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (pred(e)) out.push_back(e);
  }
  return TraceQuery(std::move(out));
}
}  // namespace

TraceQuery TraceQuery::Txn(TxnId txn) const {
  return Filter(events_, [txn](const TraceEvent& e) { return e.txn == txn; });
}

TraceQuery TraceQuery::Site(SiteId site) const {
  return Filter(events_,
                [site](const TraceEvent& e) { return e.site == site; });
}

TraceQuery TraceQuery::Peer(SiteId peer) const {
  return Filter(events_,
                [peer](const TraceEvent& e) { return e.peer == peer; });
}

TraceQuery TraceQuery::Kind(TraceEventKind kind) const {
  return Filter(events_,
                [kind](const TraceEvent& e) { return e.kind == kind; });
}

TraceQuery TraceQuery::Label(const std::string& label) const {
  return Filter(events_,
                [&label](const TraceEvent& e) { return e.label == label; });
}

TraceQuery TraceQuery::OutcomeIs(Outcome outcome) const {
  return Filter(events_, [outcome](const TraceEvent& e) {
    return e.outcome.has_value() && *e.outcome == outcome;
  });
}

TraceQuery TraceQuery::ForcedOnly() const {
  return Filter(events_, [](const TraceEvent& e) { return e.forced; });
}

TraceQuery TraceQuery::Between(SimTime lo, SimTime hi) const {
  return Filter(events_, [lo, hi](const TraceEvent& e) {
    return e.time >= lo && e.time <= hi;
  });
}

TraceQuery TraceQuery::Matching(const TraceMatcher& matcher) const {
  return Filter(events_,
                [&matcher](const TraceEvent& e) { return matcher.Matches(e); });
}

TraceQuery TraceQuery::Where(
    const std::function<bool(const TraceEvent&)>& pred) const {
  return Filter(events_, pred);
}

}  // namespace prany
