// A small metrics registry: named counters and value distributions.
//
// Sites, the network and the log all record into a MetricsRegistry owned by
// the System; the bench harness and the checkers read them back out. Keys
// are plain strings ("net.msg.prepare", "wal.forced_writes", ...) so new
// metrics never require plumbing changes.
//
// Two write paths:
//   * Add(name)/Observe(name, v) — convenience, pays a registry-mutex
//     lookup per call. Fine for cold paths (recovery, teardown, tests).
//   * CounterHandle(name)/DistributionHandle(name) — resolve the name once
//     and keep the returned pointer; it stays valid for the registry's
//     lifetime (Reset() zeroes values but never invalidates handles). A
//     counter bump through a handle is one relaxed atomic add, an observe
//     is one per-distribution mutex — no string building, no global lock.
//     This is what per-commit call sites (WAL appends, coordinator
//     latency, load-generator latency) use.

#ifndef PRANY_COMMON_METRICS_H_
#define PRANY_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace prany {

/// Summary statistics over a recorded distribution.
struct DistributionStats {
  uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Named counters + distributions. All entry points are thread-safe; the
/// snapshot accessors (counters(), samples()) copy under the lock and are
/// meant for quiescent export, not hot-path reads.
class MetricsRegistry {
 public:
  /// A named counter. fetch_add with relaxed ordering is the intended use;
  /// exports read the same cell under the registry mutex.
  using Counter = std::atomic<int64_t>;

  /// A named distribution with its own lock, so concurrent observers of
  /// different metrics never contend on a global mutex.
  class Distribution {
   public:
    void Observe(double value) {
      MutexLock lock(mu_);
      samples_.push_back(value);
    }

   private:
    friend class MetricsRegistry;
    /// Leaf lock (metrics rank): held only for the push/copy, never while
    /// acquiring anything else.
    mutable Mutex mu_ PRANY_ACQUIRED_AFTER(lock_order::kCrashRank);
    std::vector<double> samples_ PRANY_GUARDED_BY(mu_);
  };

  /// Resolves `name` to its counter cell, creating it at zero. The pointer
  /// stays valid for the registry's lifetime.
  Counter* CounterHandle(const std::string& name);

  /// Resolves `name` to its distribution cell, creating it empty. The
  /// pointer stays valid for the registry's lifetime.
  Distribution* DistributionHandle(const std::string& name);

  /// Adds `delta` to counter `name` (creating it at zero).
  void Add(const std::string& name, int64_t delta = 1) {
    CounterHandle(name)->fetch_add(delta, std::memory_order_relaxed);
  }

  /// Current value of counter `name`; 0 if never touched.
  int64_t Get(const std::string& name) const;

  /// Records one sample into distribution `name`.
  void Observe(const std::string& name, double value) {
    DistributionHandle(name)->Observe(value);
  }

  /// Summarizes distribution `name` (all-zero stats if empty).
  DistributionStats Summarize(const std::string& name) const;

  /// Snapshot of all counters, sorted by name.
  std::map<std::string, int64_t> counters() const;

  /// Names of all recorded distributions, sorted.
  std::vector<std::string> DistributionNames() const;

  /// Snapshot of all samples of a distribution (empty if none).
  std::vector<double> samples(const std::string& name) const;

  /// Zeroes all counters and drops all samples. Handles stay valid.
  void Reset();

  /// Multi-line "name = value" dump of all counters, optionally filtered to
  /// names starting with `prefix`.
  std::string ToString(const std::string& prefix = "") const;

 private:
  /// Registry lock (metrics rank): guards the name->cell maps only; the
  /// cells themselves are atomics / own their own lock, so handle-based
  /// recording never touches this.
  mutable Mutex mu_ PRANY_ACQUIRED_AFTER(lock_order::kCrashRank);
  // Cells are heap-allocated so handle pointers survive map rebalancing
  // and stay valid across the registry's lifetime.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PRANY_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Distribution>> distributions_
      PRANY_GUARDED_BY(mu_);
};

}  // namespace prany

#endif  // PRANY_COMMON_METRICS_H_
