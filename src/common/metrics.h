// A small metrics registry: named counters and value distributions.
//
// Sites, the network and the log all record into a MetricsRegistry owned by
// the System; the bench harness and the checkers read them back out. Keys
// are plain strings ("net.msg.prepare", "wal.forced_writes", ...) so new
// metrics never require plumbing changes.

#ifndef PRANY_COMMON_METRICS_H_
#define PRANY_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace prany {

/// Summary statistics over a recorded distribution.
struct DistributionStats {
  uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Named counters + distributions. The mutating entry points (Add,
/// Observe) and the point reads (Get, Summarize) are thread-safe so the
/// live runtime's sites can record concurrently; the reference-returning
/// accessors (counters(), samples()) are for quiescent use only.
class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name` (creating it at zero).
  void Add(const std::string& name, int64_t delta = 1);

  /// Current value of counter `name`; 0 if never touched.
  int64_t Get(const std::string& name) const;

  /// Records one sample into distribution `name`.
  void Observe(const std::string& name, double value);

  /// Summarizes distribution `name` (all-zero stats if empty).
  DistributionStats Summarize(const std::string& name) const;

  /// All counters, sorted by name.
  const std::map<std::string, int64_t>& counters() const { return counters_; }

  /// Names of all recorded distributions, sorted.
  std::vector<std::string> DistributionNames() const;

  /// All samples of a distribution (empty if none).
  const std::vector<double>& samples(const std::string& name) const;

  /// Drops all counters and distributions.
  void Reset();

  /// Multi-line "name = value" dump of all counters, optionally filtered to
  /// names starting with `prefix`.
  std::string ToString(const std::string& prefix = "") const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, std::vector<double>> distributions_;
};

}  // namespace prany

#endif  // PRANY_COMMON_METRICS_H_
