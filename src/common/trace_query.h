// Query and assertion helpers over a recorded structured trace.
//
// TraceQuery is a small filter-chain for counting and inspecting events
// ("how many DECISION sends did txn 7 produce?"); ExpectSequence checks
// that a list of matchers appears in order (gaps allowed) — the executable
// form of reading a protocol figure arrow by arrow. Tests use both to pin
// the Figure 1-5 flows; see tests/protocol/coordinator_flow_test.cc.

#ifndef PRANY_COMMON_TRACE_QUERY_H_
#define PRANY_COMMON_TRACE_QUERY_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/trace.h"

namespace prany {

/// Predicate over one TraceEvent: every set field must match. Unset
/// fields are wildcards, so `TraceMatcher::Of(kMsgSend).WithLabel("ACK")`
/// matches any ACK handed to the network.
struct TraceMatcher {
  std::optional<TraceEventKind> kind;
  std::optional<TxnId> txn;
  std::optional<SiteId> site;
  std::optional<SiteId> peer;
  std::optional<std::string> label;
  std::optional<Outcome> outcome;
  std::optional<bool> forced;
  std::optional<bool> by_presumption;

  static TraceMatcher Of(TraceEventKind kind) {
    TraceMatcher m;
    m.kind = kind;
    return m;
  }
  TraceMatcher WithTxn(TxnId t) && { txn = t; return std::move(*this); }
  TraceMatcher WithSite(SiteId s) && { site = s; return std::move(*this); }
  TraceMatcher WithPeer(SiteId p) && { peer = p; return std::move(*this); }
  TraceMatcher WithLabel(std::string l) && {
    label = std::move(l);
    return std::move(*this);
  }
  TraceMatcher WithOutcome(Outcome o) && {
    outcome = o;
    return std::move(*this);
  }
  TraceMatcher WithForced(bool f) && { forced = f; return std::move(*this); }
  TraceMatcher WithPresumption(bool p) && {
    by_presumption = p;
    return std::move(*this);
  }

  bool Matches(const TraceEvent& event) const;

  /// Human-readable form of the constrained fields, for failure messages.
  std::string ToString() const;
};

/// Result of ExpectSequence: on failure, `error` names the first matcher
/// that could not be satisfied and how far the scan got.
struct SequenceCheck {
  bool ok = false;
  size_t matched = 0;  ///< Matchers satisfied before the first failure.
  std::string error;
};

/// Verifies that `sequence` occurs as a subsequence of `events`: each
/// matcher must match some event strictly after the previous matcher's
/// event. Extra events between matches are ignored.
SequenceCheck ExpectSequence(const std::vector<TraceEvent>& events,
                             const std::vector<TraceMatcher>& sequence);

/// Immutable filter-chain over a copy of the trace. Every filter returns
/// a narrowed TraceQuery; terminal accessors count or expose the events.
class TraceQuery {
 public:
  TraceQuery() = default;
  explicit TraceQuery(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}
  explicit TraceQuery(const TraceLog& log) : events_(log.events()) {}

  TraceQuery Txn(TxnId txn) const;
  TraceQuery Site(SiteId site) const;
  TraceQuery Peer(SiteId peer) const;
  TraceQuery Kind(TraceEventKind kind) const;
  TraceQuery Label(const std::string& label) const;
  TraceQuery OutcomeIs(Outcome outcome) const;
  TraceQuery ForcedOnly() const;
  TraceQuery Between(SimTime lo, SimTime hi) const;  ///< Inclusive bounds.
  TraceQuery Matching(const TraceMatcher& matcher) const;
  TraceQuery Where(const std::function<bool(const TraceEvent&)>& pred) const;

  size_t Count() const { return events_.size(); }
  bool Empty() const { return events_.empty(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// First / last surviving event; nullptr when empty.
  const TraceEvent* First() const {
    return events_.empty() ? nullptr : &events_.front();
  }
  const TraceEvent* Last() const {
    return events_.empty() ? nullptr : &events_.back();
  }

  /// ExpectSequence over the surviving events.
  SequenceCheck Expect(const std::vector<TraceMatcher>& sequence) const {
    return ExpectSequence(events_, sequence);
  }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace prany

#endif  // PRANY_COMMON_TRACE_QUERY_H_
