// Per-transaction timelines aggregated from the structured trace.
//
// One TxnTimeline condenses a transaction's trace events into the
// quantities the paper's figures are drawn in: phase boundary timestamps
// (begin -> votes -> decision -> acks -> forget), message counts by type,
// and log-append / forced-write counts summed over every site. The
// harness feeds these into MetricsRegistry distributions ("txn.latency.*",
// "txn.messages", "txn.forced_writes") after each run, and the Chrome
// trace exporter renders the phases as duration slices on the
// coordinator's track.

#ifndef PRANY_COMMON_TIMELINE_H_
#define PRANY_COMMON_TIMELINE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace prany {

/// Everything the trace says about one transaction, condensed.
struct TxnTimeline {
  TxnId txn = kInvalidTxn;
  SiteId coordinator = kInvalidSite;
  std::optional<ProtocolKind> mode;  ///< Commit protocol the coord chose.
  std::optional<Outcome> outcome;

  // Phase boundary timestamps (unset if the phase never happened).
  std::optional<SimTime> begin;                ///< kCoordBegin.
  std::optional<SimTime> first_prepare_sent;   ///< First PREPARE send.
  std::optional<SimTime> last_vote_delivered;  ///< Last VOTE delivery.
  std::optional<SimTime> decided;              ///< kCoordDecide.
  std::optional<SimTime> last_ack_delivered;   ///< Last ACK delivery.
  std::optional<SimTime> forgotten;            ///< kCoordForget.

  // Cost counters, summed over all sites.
  uint64_t messages = 0;  ///< Messages handed to the network.
  std::map<std::string, uint64_t> messages_by_type;
  uint64_t log_appends = 0;
  uint64_t forced_writes = 0;  ///< Appends with force=true.
  uint64_t messages_lost = 0;  ///< Drops + partition blocks + down losses.
  uint64_t resends = 0;
  uint64_t inquiries = 0;

  /// True once the coordinator forgot the transaction (C2PC's leaked
  /// entries never complete; their latencies are meaningless).
  bool Complete() const { return begin.has_value() && forgotten.has_value(); }

  /// Voting phase: begin -> decision (0 if either end is missing).
  SimDuration VotingLatency() const;
  /// Decision phase: decision -> forget (0 if either end is missing).
  SimDuration DecisionLatency() const;
  /// Whole protocol: begin -> forget (0 unless Complete()).
  SimDuration TotalLatency() const;

  /// One-line summary for logs and failure messages.
  std::string ToString() const;
};

/// Groups `events` by transaction id (events without a txn are skipped).
std::map<TxnId, TxnTimeline> BuildTimelines(
    const std::vector<TraceEvent>& events);

/// Records one transaction's timeline into `metrics`:
///   txn.messages, txn.log_appends, txn.forced_writes   (distributions)
///   txn.latency.total_us / voting_us / decision_us     (Complete() only)
///   txn.latency.commit_us or txn.latency.abort_us      (Complete() only)
void ObserveTimeline(const TxnTimeline& timeline, MetricsRegistry* metrics);

/// ObserveTimeline over every timeline in the map.
void RecordTimelineMetrics(const std::map<TxnId, TxnTimeline>& timelines,
                           MetricsRegistry* metrics);

}  // namespace prany

#endif  // PRANY_COMMON_TIMELINE_H_
