// Machine-readable exporters for the structured trace and the metrics
// registry.
//
// ChromeTraceJson emits the Chrome trace-event format (the JSON array
// flavour wrapped in {"traceEvents": [...]}), loadable in Perfetto or
// chrome://tracing: one track ("thread") per site, instant events for
// every TraceEvent, and duration slices for each transaction's voting and
// decision phases on its coordinator's track. MetricsJson dumps every
// counter and distribution summary. Both are wired into prany_cli
// (--trace-json / --metrics-json) and every bench binary; see
// docs/OBSERVABILITY.md.

#ifndef PRANY_COMMON_TRACE_EXPORT_H_
#define PRANY_COMMON_TRACE_EXPORT_H_

#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/timeline.h"
#include "common/trace.h"

namespace prany {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& text);

/// Renders `events` (plus per-transaction phase slices from `timelines`)
/// as Chrome trace-event JSON. Timestamps are simulated microseconds,
/// which is exactly the unit the format expects.
std::string ChromeTraceJson(
    const std::vector<TraceEvent>& events,
    const std::map<TxnId, TxnTimeline>& timelines = {});

/// Renders all counters and distribution summaries as one JSON object:
/// {"counters": {...}, "distributions": {name: {count, min, max, mean,
/// p50, p95, p99}}}.
std::string MetricsJson(const MetricsRegistry& metrics);

/// Writes `content` to `path` (truncating); returns false on I/O error.
bool WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace prany

#endif  // PRANY_COMMON_TRACE_EXPORT_H_
