// Bounds-checked binary encoding/decoding used by the wire (net/message)
// and stable-log (wal/log_record) codecs.
//
// Encoding is little-endian fixed-width for integral types plus
// length-prefixed byte strings. Decoding returns Status errors (never
// crashes) so that corrupted log tails and truncated frames are handled
// gracefully — a database-system requirement, not a nicety.

#ifndef PRANY_COMMON_BYTES_H_
#define PRANY_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace prany {

/// Append-only binary encoder.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Starts empty but keeps `reuse`'s allocation, so encoders on hot
  /// paths (wire frames, log records) can recycle buffer capacity
  /// instead of allocating per encode.
  explicit ByteWriter(std::vector<uint8_t> reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }

  /// Unsigned LEB128 varint (1-10 bytes).
  void PutVarint(uint64_t v);

  /// Length-prefixed (varint) byte string.
  void PutString(const std::string& s);

  /// Raw bytes, no length prefix.
  void PutRaw(const void* data, size_t n);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

/// Bounds-checked binary decoder over a byte span.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  Status GetU8(uint8_t* out);
  Status GetU16(uint16_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetString(std::string* out);

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  template <typename T>
  Status GetFixed(T* out) {
    if (remaining() < sizeof(T)) {
      return Status::Corruption("truncated fixed-width field");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    *out = v;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used to frame FileStableLog
/// records so a torn tail after a crash is detected, not decoded.
uint32_t Crc32(const void* data, size_t n);
inline uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace prany

#endif  // PRANY_COMMON_BYTES_H_
