// Arrow/RocksDB-style Status and Result<T> error handling.
//
// The prany library does not throw exceptions: fallible operations return
// Status (or Result<T> when they produce a value). Programming errors are
// reported via PRANY_CHECK, which aborts the process.

#ifndef PRANY_COMMON_STATUS_H_
#define PRANY_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace prany {

/// Error category for a failed operation.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCorruption = 5,     ///< Malformed on-disk/on-wire bytes.
  kFailedPrecondition = 6,
  kUnavailable = 7,    ///< Target site is down / unreachable.
  kInternal = 8,
};

/// Lightweight status object: kOk (cheap) or an error code + message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled on arrow::Result.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& ValueOrDie() const& {
    CheckOk();
    return *value_;
  }
  T& ValueOrDie() & {
    CheckOk();
    return *value_;
  }
  T ValueOrDie() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value if ok, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);
}  // namespace internal

/// Aborts the process with a diagnostic if `cond` is false. For programming
/// errors only — recoverable failures must use Status.
#define PRANY_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::prany::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                  \
  } while (false)

#define PRANY_CHECK_MSG(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::prany::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                   \
  } while (false)

/// Propagates an error Status from an expression.
#define PRANY_RETURN_NOT_OK(expr)             \
  do {                                        \
    ::prany::Status _st = (expr);             \
    if (!_st.ok()) return _st;                \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// assigns the value to `lhs`.
#define PRANY_ASSIGN_OR_RETURN(lhs, rexpr)        \
  auto PRANY_CONCAT_(res_, __LINE__) = (rexpr);   \
  if (!PRANY_CONCAT_(res_, __LINE__).ok())        \
    return PRANY_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(PRANY_CONCAT_(res_, __LINE__)).ValueOrDie()

#define PRANY_CONCAT_IMPL_(a, b) a##b
#define PRANY_CONCAT_(a, b) PRANY_CONCAT_IMPL_(a, b)

}  // namespace prany

#endif  // PRANY_COMMON_STATUS_H_
