#include "core/prany_coordinator.h"

#include "common/status.h"
#include "core/presumption.h"
#include "core/protocol_selector.h"

namespace prany {

PrAnyCoordinator::PrAnyCoordinator(EngineContext ctx, const PcpTable* pcp,
                                   bool always_mixed_mode)
    : CoordinatorBase(std::move(ctx), ProtocolKind::kPrAny),
      pcp_(pcp),
      app_(pcp),
      always_mixed_mode_(always_mixed_mode) {
  PRANY_CHECK(pcp != nullptr);
}

ProtocolKind PrAnyCoordinator::SelectMode(const Transaction& txn) {
  // §4.1: consult the APP (backed by the stable PCP) for each active
  // participant's protocol; homogeneous sets use their native protocol.
  std::vector<ParticipantInfo> resolved;
  resolved.reserve(txn.participants.size());
  for (const ParticipantInfo& p : txn.participants) {
    std::optional<ProtocolKind> protocol = app_.ProtocolFor(p.site);
    PRANY_CHECK_MSG(protocol.has_value(),
                    "participant missing from the PCP table");
    PRANY_CHECK_MSG(*protocol == p.protocol,
                    "transaction descriptor disagrees with the PCP");
    resolved.push_back(ParticipantInfo{p.site, *protocol});
  }
  if (always_mixed_mode_) return ProtocolKind::kPrAny;
  return SelectCommitProtocol(resolved);
}

bool PrAnyCoordinator::WritesInitiation(ProtocolKind mode) const {
  // Figure 1: PrAny forces an initiation record (with the participants'
  // protocols); pure-PrC mode keeps PrC's initiation record; pure PrN/PrA
  // modes write none.
  return mode == ProtocolKind::kPrC || mode == ProtocolKind::kPrAny;
}

DecisionLogPolicy PrAnyCoordinator::DecisionPolicy(ProtocolKind mode,
                                                   Outcome outcome) const {
  if (mode == ProtocolKind::kPrN) return DecisionLogPolicy::kForced;
  // PrA, PrC and PrAny modes all force commit records and never log
  // aborts (Figure 1(b): no decision record on abort).
  return outcome == Outcome::kCommit ? DecisionLogPolicy::kForced
                                     : DecisionLogPolicy::kNone;
}

bool PrAnyCoordinator::DecisionNamesParticipants(ProtocolKind mode) const {
  // Only modes without an initiation record need the participants in the
  // decision record for recovery.
  return mode == ProtocolKind::kPrN || mode == ProtocolKind::kPrA;
}

std::set<SiteId> PrAnyCoordinator::ExpectedAckers(const CoordTxnState& st,
                                                  Outcome outcome) const {
  // The uniform PrAny rule: await exactly the participants whose protocol
  // acknowledges this outcome. For homogeneous (pure-mode) sets this
  // degenerates to the native protocol's expectation.
  return AckersAmong(st.participants, outcome);
}

std::pair<Outcome, bool> PrAnyCoordinator::AnswerUnknownInquiry(
    TxnId txn, SiteId inquirer) {
  // §4.2: dynamically adopt the presumption of the inquiring participant's
  // protocol, looked up in the stable PCP.
  std::optional<ProtocolKind> protocol = pcp_->ProtocolFor(inquirer);
  if (!protocol.has_value()) {
    // An inquirer that left the federation; abort is the conservative
    // answer (and flagged in metrics for the operator).
    ctx().Count("prany.unknown_inquirer");
    return {Outcome::kAbort, /*by_presumption=*/true};
  }
  Outcome presumed = PresumptionOf(*protocol);
  {
    TraceEvent e;
    e.kind = TraceEventKind::kCoordPresume;
    e.txn = txn;
    e.peer = inquirer;
    e.protocol = protocol;
    e.outcome = presumed;
    e.by_presumption = true;
    ctx().Event(std::move(e));
  }
  return {presumed, /*by_presumption=*/true};
}

void PrAnyCoordinator::RecoverTxn(const TxnLogSummary& summary) {
  if (!summary.has_initiation) {
    // Decision record without initiation: PrN or PrA mode was used
    // (§4.2). Both re-send the recorded decision to every participant.
    if (!summary.coord_decision.has_value()) return;
    ProtocolKind mode = summary.participants.empty()
                            ? ProtocolKind::kPrN
                            : summary.participants.front().protocol;
    ReinitiateDecision(summary.txn, mode, summary.participants,
                       *summary.coord_decision,
                       SitesOf(summary.participants));
    return;
  }

  if (summary.commit_protocol == ProtocolKind::kPrC) {
    // Pure-PrC mode: commit record eliminates the initiation; otherwise
    // re-initiate the abort and collect the acks for the END record.
    if (summary.coord_decision == Outcome::kCommit) {
      ctx().log->ReleaseTransaction(summary.txn, LogSide::kCoordinator);
      return;
    }
    ReinitiateDecision(summary.txn, ProtocolKind::kPrC, summary.participants,
                       Outcome::kAbort, SitesOf(summary.participants));
    return;
  }

  // PrAny mode. Initiation + commit record -> re-submit commit to the PrN
  // and PrA participants (not PrC, per PrC's rules); initiation only ->
  // abort, re-submitted to the PrN and PrC participants (not PrA,
  // footnote 4).
  Outcome outcome = summary.coord_decision == Outcome::kCommit
                        ? Outcome::kCommit
                        : Outcome::kAbort;
  std::set<SiteId> recipients = AckersAmong(summary.participants, outcome);
  ReinitiateDecision(summary.txn, ProtocolKind::kPrAny, summary.participants,
                     outcome, recipients);
}

void PrAnyCoordinator::DidBegin(const CoordTxnState& st) {
  for (const ParticipantInfo& p : st.participants) {
    Status status = app_.Activate(p.site);
    PRANY_CHECK_MSG(status.ok(), status.ToString());
  }
}

void PrAnyCoordinator::WillForget(const CoordTxnState& st) {
  for (const ParticipantInfo& p : st.participants) {
    // Deactivation tolerates a crash having cleared the APP: recovery
    // re-activates via DidBegin (ReinitiateDecision), so refcounts match
    // unless the entry predates the crash — which cannot happen, as the
    // crash also wiped the protocol table.
    app_.Deactivate(p.site).ok();
  }
}

}  // namespace prany
