#include "core/protocol_selector.h"

#include "common/status.h"

namespace prany {

bool IsHomogeneous(const std::vector<ParticipantInfo>& participants) {
  PRANY_CHECK(!participants.empty());
  ProtocolKind first = participants.front().protocol;
  for (const ParticipantInfo& p : participants) {
    if (p.protocol != first) return false;
  }
  return true;
}

ProtocolKind SelectCommitProtocol(
    const std::vector<ParticipantInfo>& participants) {
  PRANY_CHECK(!participants.empty());
  if (IsHomogeneous(participants)) return participants.front().protocol;
  return ProtocolKind::kPrAny;
}

}  // namespace prany
