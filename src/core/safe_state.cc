#include "core/safe_state.h"

#include <map>
#include <optional>
#include <sstream>

#include "common/string_util.h"

namespace prany {

std::string SafeStateReport::ToString() const {
  std::ostringstream out;
  out << "safe state: " << (ok() ? "OK" : "VIOLATED") << " ("
      << txns_checked << " txns, " << responses_checked
      << " responses checked)\n";
  for (const SafeStateViolation& v : violations) {
    out << "  txn " << v.txn << ": " << v.description << "\n";
  }
  return out.str();
}

bool SafeStateChecker::HoldsFor(const EventLog& history, TxnId txn,
                                std::string* why) {
  // First pass: the transaction's decided outcome (first Decide wins;
  // conflicting decides are the atomicity checker's department).
  std::optional<Outcome> decided;
  for (const SigEvent& e : history.events()) {
    if (e.txn == txn && e.type == SigEventType::kCoordDecide) {
      decided = *e.outcome;
      break;
    }
  }
  const Outcome required = decided.value_or(Outcome::kAbort);

  std::optional<uint64_t> first_forget_seq;
  bool ok = true;

  // Sites that already enforced the *required* outcome, with the sequence
  // number of their first such enforcement (stale-inquiry exemption).
  std::map<SiteId, uint64_t> enforced_at;

  for (const SigEvent& e : history.events()) {
    if (e.txn != txn) continue;
    switch (e.type) {
      case SigEventType::kCoordForget:
        if (!first_forget_seq.has_value()) first_forget_seq = e.seq;
        break;
      case SigEventType::kPartEnforce:
        if (*e.outcome == required &&
            enforced_at.find(e.site) == enforced_at.end()) {
          enforced_at[e.site] = e.seq;
        }
        break;
      case SigEventType::kCoordRespond: {
        // The criterion constrains responses after DeletePT; responses
        // before it come from the protocol table and must match trivially,
        // so we check them too (a stricter, still-sound reading).
        // Stale-inquiry exemption (see header): a mismatched reply to a
        // participant that already enforced the required outcome answers
        // a delayed duplicate inquiry and is ignored by its recipient.
        if (*e.outcome != required) {
          auto it = enforced_at.find(e.peer);
          if (it != enforced_at.end() && it->second < e.seq) {
            break;
          }
        }
        if (*e.outcome != required) {
          ok = false;
          if (why != nullptr) {
            *why += StrFormat(
                "responded %s to site %u but transaction outcome is %s%s; ",
                ToString(*e.outcome).c_str(), e.peer,
                ToString(required).c_str(),
                (first_forget_seq.has_value() && e.seq > *first_forget_seq)
                    ? " (after DeletePT)"
                    : "");
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return ok;
}

SafeStateReport SafeStateChecker::Check(const EventLog& history) {
  // Identical semantics to calling HoldsFor per transaction (pinned by a
  // side-by-side regression test), but with the history folded in two
  // linear passes instead of one full rescan per transaction — the naive
  // loop is quadratic and cost ~1.8s of CPU per live bench cell.
  struct TxnState {
    bool decided_seen = false;
    Outcome required = Outcome::kAbort;
    std::optional<uint64_t> first_forget_seq;
    std::map<SiteId, uint64_t> enforced_at;
    uint64_t responses = 0;
    std::string why;
  };
  std::map<TxnId, TxnState> states;

  // Pass 1: each transaction's decided outcome (first Decide wins).
  for (const SigEvent& e : history.events()) {
    if (e.type != SigEventType::kCoordDecide) continue;
    TxnState& s = states[e.txn];
    if (!s.decided_seen) {
      s.decided_seen = true;
      s.required = *e.outcome;
    }
  }

  // Pass 2: fold forgets, enforcements and responses, applying exactly
  // HoldsFor's per-event logic.
  for (const SigEvent& e : history.events()) {
    switch (e.type) {
      case SigEventType::kCoordForget: {
        TxnState& s = states[e.txn];
        if (!s.first_forget_seq.has_value()) s.first_forget_seq = e.seq;
        break;
      }
      case SigEventType::kPartEnforce: {
        TxnState& s = states[e.txn];
        if (*e.outcome == s.required &&
            s.enforced_at.find(e.site) == s.enforced_at.end()) {
          s.enforced_at[e.site] = e.seq;
        }
        break;
      }
      case SigEventType::kCoordRespond: {
        TxnState& s = states[e.txn];
        ++s.responses;
        if (*e.outcome != s.required) {
          auto it = s.enforced_at.find(e.peer);
          if (it != s.enforced_at.end() && it->second < e.seq) {
            break;  // stale-inquiry exemption
          }
          s.why += StrFormat(
              "responded %s to site %u but transaction outcome is %s%s; ",
              ToString(*e.outcome).c_str(), e.peer,
              ToString(s.required).c_str(),
              (s.first_forget_seq.has_value() && e.seq > *s.first_forget_seq)
                  ? " (after DeletePT)"
                  : "");
        }
        break;
      }
      default:
        break;
    }
  }

  SafeStateReport report;
  for (TxnId txn : history.Txns()) {
    ++report.txns_checked;
    auto it = states.find(txn);
    if (it == states.end()) continue;
    report.responses_checked += it->second.responses;
    if (!it->second.why.empty()) {
      report.violations.push_back(
          SafeStateViolation{txn, std::move(it->second.why)});
    }
  }
  return report;
}

}  // namespace prany
