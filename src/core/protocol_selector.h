// Per-transaction commit-protocol selection (§4.1).
//
// A PrAny coordinator consults its APP and picks the cheapest sound
// protocol for each transaction: if all participants speak the same base
// protocol it simply runs that protocol (no extra logging); any mixed set
// runs PrAny mode.
//
// Deviation note (recorded in DESIGN.md): the paper mandates PrAny
// whenever PrA mixes with PrN or PrC and leaves the {PrN, PrC}-only mix
// unspecified; we run PrAny for every mixed set — sound, and one rule
// instead of two.

#ifndef PRANY_CORE_PROTOCOL_SELECTOR_H_
#define PRANY_CORE_PROTOCOL_SELECTOR_H_

#include <vector>

#include "common/types.h"

namespace prany {

/// True iff all participants speak the same protocol.
bool IsHomogeneous(const std::vector<ParticipantInfo>& participants);

/// The commit protocol a PrAny coordinator uses for this participant set:
/// the common base protocol if homogeneous, kPrAny otherwise.
/// CHECKs on an empty participant set.
ProtocolKind SelectCommitProtocol(
    const std::vector<ParticipantInfo>& participants);

}  // namespace prany

#endif  // PRANY_CORE_PROTOCOL_SELECTOR_H_
