// Presumed Any (PrAny) — the paper's contribution (§4).
//
// A PrAny coordinator integrates PrN, PrA and PrC participants while
// remaining operationally correct (Definition 1):
//
//  * Per-transaction protocol selection (§4.1): homogeneous participant
//    sets run their native protocol; mixed sets run PrAny mode, which
//    force-writes an initiation record listing each participant *and its
//    protocol*.
//  * Outcome-dependent acknowledgment sets: commits are acknowledged by
//    the PrN and PrA participants (PrC participants presume commit);
//    aborts by the PrN and PrC participants (PrA participants presume
//    abort). The coordinator forgets as soon as exactly those acks are in
//    and writes a non-forced END record.
//  * Dynamic presumption adoption (§4.2): PrAny makes no a-priori
//    presumption; an inquiry about a forgotten transaction is answered
//    with the presumption of the *inquirer's* protocol, looked up in the
//    stable PCP table. The safe-state argument (Definition 2, Theorem 3):
//    after a commit, only PrC participants can still inquire (everyone
//    else acked) and they are told commit; after an abort, only PrA
//    participants can still inquire and they are told abort.
//  * Recovery (§4.2): decision record without initiation -> a pure
//    PrN/PrA-mode transaction, re-send the decision; initiation recorded
//    as PrC-mode -> PrC rules; initiation recorded as PrAny-mode ->
//    initiation-only means abort (re-sent to PrN+PrC participants only,
//    footnote 4), initiation+commit means commit (re-sent to PrN+PrA
//    participants only).

#ifndef PRANY_CORE_PRANY_COORDINATOR_H_
#define PRANY_CORE_PRANY_COORDINATOR_H_

#include <utility>

#include "protocol/coordinator_base.h"
#include "txn/pcp_table.h"

namespace prany {

class PrAnyCoordinator : public CoordinatorBase {
 public:
  /// `pcp` is the stable participants'-commit-protocol table; it must
  /// outlive the coordinator. The in-memory APP view is owned here.
  /// `always_mixed_mode` disables the §4.1 selector (every transaction
  /// runs full PrAny mode) — an ablation knob for measuring what the
  /// dynamic selection saves; see bench_selector_ablation.
  PrAnyCoordinator(EngineContext ctx, const PcpTable* pcp,
                   bool always_mixed_mode = false);

  const AppTable& app() const { return app_; }

  /// Crash support for the volatile APP view (called by the Site).
  void ClearApp() { app_.Clear(); }

 protected:
  ProtocolKind SelectMode(const Transaction& txn) override;
  bool WritesInitiation(ProtocolKind mode) const override;
  DecisionLogPolicy DecisionPolicy(ProtocolKind mode,
                                   Outcome outcome) const override;
  bool DecisionNamesParticipants(ProtocolKind mode) const override;
  std::set<SiteId> ExpectedAckers(const CoordTxnState& st,
                                  Outcome outcome) const override;
  std::pair<Outcome, bool> AnswerUnknownInquiry(TxnId txn,
                                                SiteId inquirer) override;
  void RecoverTxn(const TxnLogSummary& summary) override;
  void DidBegin(const CoordTxnState& st) override;
  void WillForget(const CoordTxnState& st) override;

 private:
  const PcpTable* pcp_;
  AppTable app_;
  bool always_mixed_mode_;
};

}  // namespace prany

#endif  // PRANY_CORE_PRANY_COORDINATOR_H_
