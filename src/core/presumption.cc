#include "core/presumption.h"

#include "common/status.h"

namespace prany {

Outcome PresumptionOf(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPrN:
    case ProtocolKind::kPrA:
      return Outcome::kAbort;
    case ProtocolKind::kPrC:
      return Outcome::kCommit;
    default:
      PRANY_CHECK_MSG(false,
                      "integration protocols have no static presumption");
      return Outcome::kAbort;
  }
}

bool HasExplicitPresumption(ProtocolKind kind) {
  return kind == ProtocolKind::kPrA || kind == ProtocolKind::kPrC;
}

bool PresumptionsCompatible(ProtocolKind a, ProtocolKind b) {
  return PresumptionOf(a) == PresumptionOf(b);
}

}  // namespace prany
