// Presumption semantics of the base protocols (§§2-3 and appendix).
//
// A presumption is the outcome a coordinator attributes to a transaction
// it holds no information about. PrA presumes abort; PrC presumes commit;
// PrN has a *hidden* abort presumption (active transactions at the time of
// a coordinator failure are considered aborted). The incompatibility the
// paper studies is exactly that PrA's and PrC's presumptions conflict.
//
// PrAny's key move (§4.2) is to make the presumption *dynamic*: a
// coordinator that has forgotten a transaction answers each inquiry with
// the presumption of the inquirer's own protocol.

#ifndef PRANY_CORE_PRESUMPTION_H_
#define PRANY_CORE_PRESUMPTION_H_

#include "common/types.h"

namespace prany {

/// The outcome a `kind` coordinator/participant presumes for a forgotten
/// transaction. CHECKs on non-base kinds (integration protocols do not
/// have a single static presumption — that is the paper's point).
Outcome PresumptionOf(ProtocolKind kind);

/// True for protocols whose presumption is explicit in their design (PrA,
/// PrC); false for PrN, whose abort presumption is hidden.
bool HasExplicitPresumption(ProtocolKind kind);

/// True iff the two protocols' presumptions agree — i.e. they can be
/// integrated by a forgetful coordinator without PrAny's machinery.
bool PresumptionsCompatible(ProtocolKind a, ProtocolKind b);

}  // namespace prany

#endif  // PRANY_CORE_PRESUMPTION_H_
