// Executable form of the paper's safe-state criterion (Definition 2).
//
// SafeState_C(T) holds iff either
//   Decide_C(Abort_T) ∈ H  and  for every subtransaction t_i,
//     (DeletePT_C(T) -> INQ_{t_i})  implies  Respond_C(Abort_{t_i}) ∈ H,
// or the symmetric clause with Commit. Informally: once the coordinator
// has forgotten T, exactly one presumption may remain possible — the one
// matching T's actual outcome — so every post-forget inquiry must be
// answered with that outcome.
//
// The checker evaluates the criterion over a recorded history. U2PC runs
// under the Theorem 1 schedules violate it; PrAny runs never do
// (Theorem 3).
//
// Stale-inquiry refinement: the paper's proofs assume INQ_{t_i} comes
// from a participant still in doubt ("only a participant that employs PrC
// might inquire about the decision in the future"). Over an asynchronous
// network, an inquiry can also be a long-delayed duplicate from a
// participant that has since received the decision, enforced it, and
// acknowledged it — the very acknowledgment that allowed the coordinator
// to forget. The reply to such a message lands on a participant with no
// memory of the transaction, which ignores it (footnote 5), so it cannot
// affect atomicity. The checker therefore exempts a mismatched response
// when the inquirer had already enforced the transaction's decided
// outcome before the response was issued; every genuine Theorem-1
// violation (the inquirer still in doubt) is still flagged.

#ifndef PRANY_CORE_SAFE_STATE_H_
#define PRANY_CORE_SAFE_STATE_H_

#include <string>
#include <vector>

#include "history/event_log.h"

namespace prany {

/// One transaction whose post-forget responses contradict its outcome.
struct SafeStateViolation {
  TxnId txn = kInvalidTxn;
  std::string description;
};

/// Result of evaluating Definition 2 over a history.
struct SafeStateReport {
  std::vector<SafeStateViolation> violations;
  uint64_t txns_checked = 0;
  uint64_t responses_checked = 0;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

class SafeStateChecker {
 public:
  /// Evaluates SafeState over every transaction in the history.
  static SafeStateReport Check(const EventLog& history);

  /// Evaluates SafeState for a single transaction. Returns true iff the
  /// criterion holds; on failure, appends an explanation to `why` (if
  /// non-null).
  static bool HoldsFor(const EventLog& history, TxnId txn,
                       std::string* why = nullptr);
};

}  // namespace prany

#endif  // PRANY_CORE_SAFE_STATE_H_
