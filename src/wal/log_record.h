// Stable-log record types for the commit protocols, with a binary codec.
//
// The record vocabulary is the union of what Figures 1-4 of the paper
// write:
//   INITIATION  coordinator, forced   (PrC and PrAny only) — participant
//               identities *and their protocols* (PrAny §4.1)
//   PREPARED    participant, forced   — before voting yes; names the
//               coordinator so recovery knows whom to ask
//   COMMIT      decision record, forced or not depending on protocol/role
//   ABORT       decision record, forced or not depending on protocol/role
//   END         coordinator, non-forced — transaction is forgotten;
//               earlier records are garbage-collectible
//
// Which records are written, and which of them are force-written, is the
// essence of the presumed-nothing/abort/commit distinction; the protocol
// engines own those choices — this module only represents and stores them.

#ifndef PRANY_WAL_LOG_RECORD_H_
#define PRANY_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/types.h"

namespace prany {

/// Kind of stable-log record.
enum class LogRecordType : uint8_t {
  kInitiation = 0,
  kPrepared = 1,
  kCommit = 2,
  kAbort = 3,
  kEnd = 4,
};

/// Human-readable record-type name ("INITIATION", ...).
std::string ToString(LogRecordType type);

/// Which protocol role wrote a record. A dual-role site (coordinator of a
/// transaction it also participates in) interleaves both roles' records in
/// one physical log; recovery and garbage collection must tell them apart,
/// because a decision record alone is ambiguous: a participant's redo
/// record and a PrC coordinator's decision record are otherwise
/// byte-identical.
enum class LogSide : uint8_t {
  kCoordinator = 0,
  kParticipant = 1,
};

/// "coord" / "part".
std::string ToString(LogSide side);

/// One log record. `lsn` is assigned by StableLog on append.
struct LogRecord {
  LogRecordType type = LogRecordType::kCommit;
  TxnId txn = kInvalidTxn;
  uint64_t lsn = 0;

  /// kInitiation: the transaction's participants and the protocol each
  /// speaks. Also carried by *coordinator-side* decision records under
  /// protocols without an initiation record (PrN, PrA): their recovery has
  /// no other way to learn whom to re-contact. Participant-side decision
  /// records leave this empty.
  std::vector<ParticipantInfo> participants;

  /// kInitiation only: the commit protocol the coordinator chose for this
  /// transaction (PrC for a pure-PrC set, PrAny for a mixed set).
  ProtocolKind commit_protocol = ProtocolKind::kPrN;

  /// kPrepared only: the coordinator to inquire with after a failure.
  SiteId coordinator = kInvalidSite;

  /// The role that wrote this record. Fixed by type for kInitiation / kEnd
  /// (coordinator) and kPrepared (participant); decision records carry it
  /// explicitly so a dual-role site's log can be split by role during
  /// recovery (§4.2) and garbage collection.
  LogSide side = LogSide::kCoordinator;

  static LogRecord Initiation(TxnId txn, ProtocolKind commit_protocol,
                              std::vector<ParticipantInfo> participants);
  static LogRecord Prepared(TxnId txn, SiteId coordinator);
  static LogRecord Commit(TxnId txn, LogSide side = LogSide::kCoordinator);
  static LogRecord Abort(TxnId txn, LogSide side = LogSide::kCoordinator);
  static LogRecord End(TxnId txn);

  /// Decision record helper: kCommit or kAbort from an Outcome.
  static LogRecord Decision(TxnId txn, Outcome outcome,
                            LogSide side = LogSide::kCoordinator);

  /// Coordinator-side decision record that additionally names the
  /// participants (required by PrN/PrA recovery, which has no initiation
  /// record to consult).
  static LogRecord DecisionWithParticipants(
      TxnId txn, Outcome outcome, std::vector<ParticipantInfo> participants);

  /// True for kCommit / kAbort.
  bool IsDecision() const {
    return type == LogRecordType::kCommit || type == LogRecordType::kAbort;
  }

  /// Precondition: IsDecision().
  Outcome DecisionOutcome() const;

  /// Serializes the record body (excluding lsn, which is positional).
  std::vector<uint8_t> Encode() const;

  /// Parses a record body; rejects truncated/malformed bytes.
  static Result<LogRecord> Decode(const std::vector<uint8_t>& bytes);

  /// One-line rendering for traces, e.g. "COMMIT txn=7".
  std::string ToString() const;

  bool operator==(const LogRecord& other) const;
};

}  // namespace prany

#endif  // PRANY_WAL_LOG_RECORD_H_
