// Recovery-time log analysis (the "analyze the stable log" step of §4.2).
//
// Both coordinators and participants rebuild their volatile state after a
// crash by scanning their stable log. LogAnalyzer condenses the scan into
// one summary per transaction; the protocol-specific *interpretation* of a
// summary (which protocol was used, what to re-initiate, what presumption
// applies) lives in the protocol engines.

#ifndef PRANY_WAL_LOG_ANALYZER_H_
#define PRANY_WAL_LOG_ANALYZER_H_

#include <map>
#include <optional>
#include <vector>

#include "wal/log_record.h"

namespace prany {

/// Everything the stable log says about one transaction.
struct TxnLogSummary {
  TxnId txn = kInvalidTxn;

  // Coordinator-side facts.
  bool has_initiation = false;
  /// Valid iff has_initiation: the recorded participant set + protocols
  /// and the commit protocol chosen for the transaction.
  std::vector<ParticipantInfo> participants;
  ProtocolKind commit_protocol = ProtocolKind::kPrN;

  /// kCommit/kAbort decision record, if any (either side). A dual-role
  /// site's log can hold both roles' decision records for one transaction;
  /// they always agree (a decision is immutable once taken), so one slot
  /// suffices for participant redo.
  std::optional<Outcome> decision;

  /// Decision written by the *coordinator* role (side == kCoordinator).
  /// Coordinator recovery keys off this: on a dual-role site a
  /// participant-side redo record must not be mistaken for evidence that
  /// the coordinator decided.
  std::optional<Outcome> coord_decision;

  bool has_end = false;

  // Participant-side facts.
  bool has_prepared = false;
  /// Valid iff has_prepared: whom to inquire with.
  SiteId coordinator = kInvalidSite;

  /// Participant is in doubt: voted yes, never learned the outcome. A
  /// coordinator-side decision in the same (dual-role) log resolves the
  /// doubt — the decision is durable, so the outcome is fixed.
  bool InDoubt() const { return has_prepared && !decision.has_value(); }

  /// True if any coordinator-role record survives for this transaction.
  /// CoordinatorBase::Recover processes exactly these summaries, whether or
  /// not participant-side records (has_prepared) are interleaved with them.
  bool HasCoordinatorRecords() const {
    return has_initiation || coord_decision.has_value() || has_end;
  }
};

/// Scans records (LSN order) into per-transaction summaries.
class LogAnalyzer {
 public:
  /// Builds summaries from a stable-log scan.
  static std::map<TxnId, TxnLogSummary> Analyze(
      const std::vector<LogRecord>& records);
};

}  // namespace prany

#endif  // PRANY_WAL_LOG_ANALYZER_H_
