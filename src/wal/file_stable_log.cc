#include "wal/file_stable_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/status.h"
#include "common/string_util.h"

namespace prany {

namespace {

/// Frames larger than this are treated as corruption during recovery
/// (log records are tens of bytes; a huge length means a torn header).
constexpr uint32_t kMaxFrameBytes = 1u << 20;

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc.

}  // namespace

FileStableLog::FileStableLog(std::string path, std::string metric_prefix,
                             MetricsRegistry* metrics,
                             GroupCommitConfig config)
    : StableLog(std::move(metric_prefix), metrics),
      path_(std::move(path)),
      config_(config) {}

FileStableLog::~FileStableLog() { Close(); }

std::vector<uint8_t> FileStableLog::EncodeFrame(
    uint64_t lsn, const std::vector<uint8_t>& body) {
  ByteWriter payload;
  payload.PutU64(lsn);
  payload.PutRaw(body.data(), body.size());
  const std::vector<uint8_t>& pb = payload.bytes();
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(pb.size()));
  frame.PutU32(Crc32(pb));
  frame.PutRaw(pb.data(), pb.size());
  return frame.TakeBytes();
}

Status FileStableLog::Open() {
  PRANY_CHECK_MSG(fd_ < 0, "FileStableLog::Open called twice");
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::Unavailable(
        StrFormat("open(%s): %s", path_.c_str(), std::strerror(errno)));
  }

  // Recovery scan: read the whole file, accept the longest prefix of
  // CRC-valid frames, truncate the rest.
  off_t file_size = ::lseek(fd_, 0, SEEK_END);
  if (file_size < 0) {
    return Status::Unavailable(
        StrFormat("lseek(%s): %s", path_.c_str(), std::strerror(errno)));
  }
  std::vector<uint8_t> contents(static_cast<size_t>(file_size));
  size_t read_so_far = 0;
  while (read_so_far < contents.size()) {
    ssize_t n = ::pread(fd_, contents.data() + read_so_far,
                        contents.size() - read_so_far,
                        static_cast<off_t>(read_so_far));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::Unavailable(
          StrFormat("pread(%s): %s", path_.c_str(), std::strerror(errno)));
    }
    read_so_far += static_cast<size_t>(n);
  }

  size_t pos = 0;
  while (contents.size() - pos >= kFrameHeaderBytes) {
    ByteReader header(contents.data() + pos, kFrameHeaderBytes);
    uint32_t len = 0;
    uint32_t crc = 0;
    PRANY_CHECK(header.GetU32(&len).ok() && header.GetU32(&crc).ok());
    if (len == 0 || len > kMaxFrameBytes) break;
    if (contents.size() - pos - kFrameHeaderBytes < len) break;  // torn tail
    const uint8_t* payload = contents.data() + pos + kFrameHeaderBytes;
    if (Crc32(payload, len) != crc) break;  // corrupt frame ends the scan
    ByteReader reader(payload, len);
    uint64_t lsn = 0;
    if (!reader.GetU64(&lsn).ok()) break;
    std::vector<uint8_t> body(payload + reader.position(), payload + len);
    Result<LogRecord> decoded = LogRecord::Decode(body);
    if (!decoded.ok()) break;
    RestoreStableRecord(lsn, decoded->txn, std::move(body));
    ++recovery_.records_recovered;
    pos += kFrameHeaderBytes + len;
  }
  recovery_.bytes_recovered = pos;
  if (pos < contents.size()) {
    recovery_.tail_truncated = true;
    recovery_.torn_bytes_discarded = contents.size() - pos;
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      return Status::Unavailable(StrFormat("ftruncate(%s): %s", path_.c_str(),
                                           std::strerror(errno)));
    }
    if (metrics_ != nullptr) {
      metrics_->Add(metric_prefix_ + ".torn_bytes_discarded",
                    static_cast<int64_t>(recovery_.torn_bytes_discarded));
    }
  }
  synced_lsn_ = next_lsn_ - 1;
  synced_lsn_watermark_.store(synced_lsn_);

  running_ = true;
  sync_thread_ = std::thread([this]() { SyncThreadMain(); });
  return Status::OK();
}

void FileStableLog::SetWaitHooks(std::function<void()> before_wait,
                                 std::function<void()> after_wait) {
  before_wait_ = std::move(before_wait);
  after_wait_ = std::move(after_wait);
}

uint64_t FileStableLog::Append(const LogRecord& record, bool force) {
  PRANY_CHECK_MSG(fd_ >= 0, "FileStableLog::Append before Open()");
  uint64_t lsn = StampAndBuffer(record, force);
  std::vector<uint8_t> frame = EncodeFrame(lsn, buffer_.back().bytes);
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    pending_bytes_.insert(pending_bytes_.end(), frame.begin(), frame.end());
    pending_max_lsn_ = lsn;
    if (force) {
      ++pending_forces_;
      sync_cv_.notify_one();
    }
  }
  if (force) AwaitDurable(lsn);
  return lsn;
}

void FileStableLog::AwaitDurable(uint64_t lsn) {
  if (before_wait_) before_wait_();
  {
    std::unique_lock<std::mutex> lock(sync_mu_);
    done_cv_.wait(lock, [&]() { return synced_lsn_ >= lsn || !running_; });
  }
  if (after_wait_) after_wait_();
  // Back under the engine lock: reflect durability in the mirror. An
  // abrupt close may have woken us without syncing; promote only what is
  // actually durable.
  PromoteStableUpTo(std::min(lsn, synced_lsn_watermark_.load()));
  stats_.flushes = fsyncs_.load();
  stats_.bytes_flushed = bytes_synced_.load();
}

void FileStableLog::Flush() {
  uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    if (pending_bytes_.empty()) {
      target = synced_lsn_;
    } else {
      target = pending_max_lsn_;
      flush_requested_ = true;
      sync_cv_.notify_one();
    }
  }
  if (target > 0) AwaitDurable(target);
}

void FileStableLog::Crash() {
  // Pending (never-synced) bytes are the file counterpart of the sim's
  // volatile buffer: gone. Already-written bytes survive in the file.
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    pending_bytes_.clear();
    pending_forces_ = 0;
    flush_requested_ = false;
  }
  StableLog::Crash();
}

void FileStableLog::Close() {
  if (fd_ < 0) return;
  if (running_) {
    Flush();
    {
      std::lock_guard<std::mutex> lock(sync_mu_);
      running_ = false;
      sync_cv_.notify_all();
      done_cv_.notify_all();
    }
    sync_thread_.join();
  }
  stats_.flushes = fsyncs_.load();
  stats_.bytes_flushed = bytes_synced_.load();
  ::close(fd_);
  fd_ = -1;
}

void FileStableLog::CloseAbruptly() {
  if (fd_ < 0) return;
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    pending_bytes_.clear();
    pending_forces_ = 0;
    flush_requested_ = false;
    running_ = false;
    sync_cv_.notify_all();
    done_cv_.notify_all();
  }
  if (sync_thread_.joinable()) sync_thread_.join();
  ::close(fd_);
  fd_ = -1;
}

void FileStableLog::SyncThreadMain() {
  std::unique_lock<std::mutex> lock(sync_mu_);
  while (true) {
    sync_cv_.wait(lock, [&]() {
      return !running_ || pending_forces_ > 0 || flush_requested_;
    });
    if (!running_) break;
    if (config_.batch_window_us > 0 && !flush_requested_ &&
        pending_forces_ < config_.queue_depth_trigger) {
      // Linger for stragglers; a deep queue or an explicit flush cuts the
      // window short.
      sync_cv_.wait_for(
          lock, std::chrono::microseconds(config_.batch_window_us), [&]() {
            return !running_ || flush_requested_ ||
                   pending_forces_ >= config_.queue_depth_trigger;
          });
      if (!running_) break;
    }
    std::vector<uint8_t> batch = std::move(pending_bytes_);
    pending_bytes_.clear();
    uint64_t batch_lsn = pending_max_lsn_;
    pending_forces_ = 0;
    flush_requested_ = false;
    if (batch.empty()) {
      synced_lsn_ = std::max(synced_lsn_, batch_lsn);
      synced_lsn_watermark_.store(synced_lsn_);
      done_cv_.notify_all();
      continue;
    }
    lock.unlock();
    size_t written = 0;
    while (written < batch.size()) {
      ssize_t n = ::write(fd_, batch.data() + written, batch.size() - written);
      if (n < 0 && errno == EINTR) continue;
      PRANY_CHECK_MSG(n > 0, StrFormat("wal write(%s): %s", path_.c_str(),
                                       std::strerror(errno)));
      written += static_cast<size_t>(n);
    }
    PRANY_CHECK_MSG(::fdatasync(fd_) == 0,
                    StrFormat("wal fdatasync(%s): %s", path_.c_str(),
                              std::strerror(errno)));
    fsyncs_.fetch_add(1);
    bytes_synced_.fetch_add(batch.size());
    if (metrics_ != nullptr) metrics_->Add(metric_prefix_ + ".flushes");
    lock.lock();
    synced_lsn_ = std::max(synced_lsn_, batch_lsn);
    synced_lsn_watermark_.store(synced_lsn_);
    done_cv_.notify_all();
  }
}

}  // namespace prany
