#include "wal/file_stable_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstdio>

#include "common/bytes.h"
#include "common/status.h"
#include "common/string_util.h"

namespace prany {

namespace {

/// Frames larger than this are treated as corruption during recovery
/// (log records are tens of bytes; a huge length means a torn header).
constexpr uint32_t kMaxFrameBytes = 1u << 20;

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc.

/// EWMA smoothing for the arrival-rate / fsync-duration estimates:
/// 1/8 reacts within a few batches without chasing single outliers.
constexpr double kEwmaAlpha = 0.125;

/// An idle gap is not an arrival rate: cap the sample so the first
/// force after a lull doesn't poison the estimate for the burst that
/// follows it.
constexpr double kArrivalGapCapUs = 10'000.0;

}  // namespace

FileStableLog::FileStableLog(std::string path, std::string metric_prefix,
                             MetricsRegistry* metrics,
                             GroupCommitConfig config)
    : StableLog(std::move(metric_prefix), metrics),
      path_(std::move(path)),
      config_(config) {
  if (metrics != nullptr) {
    // Resolved here, not lazily on the hot path: the sync thread must
    // never take the registry mutex for a string-keyed lookup.
    m_window_ =
        metrics->DistributionHandle(metric_prefix_ + ".batch_window_us");
    m_batch_forces_ =
        metrics->DistributionHandle(metric_prefix_ + ".batch_forces");
  }
}

FileStableLog::~FileStableLog() { Close(); }

std::vector<uint8_t> FileStableLog::EncodeFrame(
    uint64_t lsn, const std::vector<uint8_t>& body) {
  std::vector<uint8_t> frame;
  AppendFrameTo(&frame, lsn, body);
  return frame;
}

void FileStableLog::AppendFrameTo(std::vector<uint8_t>* out, uint64_t lsn,
                                  const std::vector<uint8_t>& body) {
  // Reserve the header, write the payload (u64 lsn + body, little-endian
  // to match ByteWriter), then patch len and CRC back in — one in-place
  // append, no temporary payload or frame buffers.
  size_t header_at = out->size();
  out->resize(header_at + kFrameHeaderBytes);
  size_t payload_at = out->size();
  for (size_t i = 0; i < sizeof(uint64_t); ++i) {
    out->push_back(static_cast<uint8_t>(lsn >> (8 * i)));
  }
  out->insert(out->end(), body.begin(), body.end());
  uint32_t len = static_cast<uint32_t>(out->size() - payload_at);
  uint32_t crc = Crc32(out->data() + payload_at, len);
  uint8_t* header = out->data() + header_at;
  for (size_t i = 0; i < sizeof(uint32_t); ++i) {
    header[i] = static_cast<uint8_t>(len >> (8 * i));
    header[sizeof(uint32_t) + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
}

Status FileStableLog::Open() {
  PRANY_CHECK_MSG(fd_ < 0, "FileStableLog::Open called twice");
  return OpenAndScan();
}

Status FileStableLog::Reopen() {
  PRANY_CHECK_MSG(fd_ < 0, "FileStableLog::Reopen with the file still open");
  PRANY_CHECK_MSG(crashed_.load(), "FileStableLog::Reopen without a crash");
  ResetMirrorForRecovery();
  recovery_ = WalRecoveryInfo{};
  crashed_.store(false);
  return OpenAndScan();
}

Status FileStableLog::OpenAndScan() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::Unavailable(
        StrFormat("open(%s): %s", path_.c_str(), SafeStrError(errno).c_str()));
  }

  // Recovery scan: read the whole file, accept the longest prefix of
  // CRC-valid frames, truncate the rest.
  off_t file_size = ::lseek(fd_, 0, SEEK_END);
  if (file_size < 0) {
    return Status::Unavailable(
        StrFormat("lseek(%s): %s", path_.c_str(), SafeStrError(errno).c_str()));
  }
  std::vector<uint8_t> contents(static_cast<size_t>(file_size));
  size_t read_so_far = 0;
  while (read_so_far < contents.size()) {
    ssize_t n = ::pread(fd_, contents.data() + read_so_far,
                        contents.size() - read_so_far,
                        static_cast<off_t>(read_so_far));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::Unavailable(
          StrFormat("pread(%s): %s", path_.c_str(), SafeStrError(errno).c_str()));
    }
    read_so_far += static_cast<size_t>(n);
  }

  size_t pos = 0;
  while (contents.size() - pos >= kFrameHeaderBytes) {
    ByteReader header(contents.data() + pos, kFrameHeaderBytes);
    uint32_t len = 0;
    uint32_t crc = 0;
    PRANY_CHECK(header.GetU32(&len).ok() && header.GetU32(&crc).ok());
    if (len == 0 || len > kMaxFrameBytes) break;
    if (contents.size() - pos - kFrameHeaderBytes < len) break;  // torn tail
    const uint8_t* payload = contents.data() + pos + kFrameHeaderBytes;
    if (Crc32(payload, len) != crc) break;  // corrupt frame ends the scan
    ByteReader reader(payload, len);
    uint64_t lsn = 0;
    if (!reader.GetU64(&lsn).ok()) break;
    std::vector<uint8_t> body(payload + reader.position(), payload + len);
    Result<LogRecord> decoded = LogRecord::Decode(body);
    if (!decoded.ok()) break;
    RestoreStableRecord(lsn, decoded->txn, std::move(body));
    ++recovery_.records_recovered;
    pos += kFrameHeaderBytes + len;
  }
  recovery_.bytes_recovered = pos;
  if (pos < contents.size()) {
    recovery_.tail_truncated = true;
    recovery_.torn_bytes_discarded = contents.size() - pos;
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      return Status::Unavailable(StrFormat("ftruncate(%s): %s", path_.c_str(),
                                           SafeStrError(errno).c_str()));
    }
    if (metrics_ != nullptr) {
      metrics_->Add(metric_prefix_ + ".torn_bytes_discarded",
                    static_cast<int64_t>(recovery_.torn_bytes_discarded));
    }
  }
  {
    // Single-threaded here (the fsync thread is not running), but the
    // fields are guarded and the lock is uncontended — cheaper than an
    // analysis exception.
    MutexLock lock(sync_mu_);
    synced_lsn_ = next_lsn_ - 1;
    synced_lsn_watermark_.store(synced_lsn_, std::memory_order_release);
    durable_size_ = pos;
    pending_bytes_.clear();
    pending_max_lsn_ = 0;
    pending_forces_ = 0;
    flush_requested_ = false;
    pipeline_callbacks_.clear();
    callbacks_running_ = false;
    arrival_ewma_us_ = 0.0;
    last_force_at_ = {};
    fsync_ewma_us_ = 0.0;
    syncing_ = false;
    sync_waiting_ = false;
    running_ = true;
  }
  sync_thread_ = std::thread([this]() { SyncThreadMain(); });
  return Status::OK();
}

void FileStableLog::SetWaitHooks(std::function<void()> before_wait,
                                 std::function<void()> after_wait) {
  before_wait_ = std::move(before_wait);
  after_wait_ = std::move(after_wait);
}

void FileStableLog::NoteForcedArrival() {
  const auto now = std::chrono::steady_clock::now();
  if (last_force_at_.time_since_epoch().count() != 0) {
    double gap =
        std::chrono::duration<double, std::micro>(now - last_force_at_)
            .count();
    if (gap > kArrivalGapCapUs) gap = kArrivalGapCapUs;
    arrival_ewma_us_ = arrival_ewma_us_ <= 0.0
                           ? gap
                           : arrival_ewma_us_ +
                                 (gap - arrival_ewma_us_) * kEwmaAlpha;
  }
  last_force_at_ = now;
}

uint64_t FileStableLog::Append(const LogRecord& record, bool force) {
  // A zombie handler racing the crash teardown must unwind, not write.
  if (crashed_.load()) throw WalCrashedError{};
  PRANY_CHECK_MSG(fd_ >= 0, "FileStableLog::Append before Open()");
  uint64_t lsn = StampAndBuffer(record, force);
  {
    MutexLock lock(sync_mu_);
    AppendFrameTo(&pending_bytes_, lsn, buffer_.back().bytes);
    pending_max_lsn_ = lsn;
    if (force) {
      ++pending_forces_;
      NoteForcedArrival();
      // The guard pairs with SyncThreadMain: when the thread is not
      // waiting it is processing and re-checks the queue before it waits
      // again (same mutex), so skipping the notify loses nothing.
      if (sync_waiting_) sync_cv_.NotifyOne();
    }
  }
  if (force) AwaitDurable(lsn);
  return lsn;
}

uint64_t FileStableLog::AppendPipelined(const LogRecord& record,
                                        std::function<void()> on_durable) {
  if (crashed_.load()) throw WalCrashedError{};
  PRANY_CHECK_MSG(fd_ >= 0, "FileStableLog::AppendPipelined before Open()");
  // Counts as a forced append (stats, trace, presumption cost tables):
  // the record is still forced before the action it guards — only the
  // *wait* is detached onto the sync thread.
  uint64_t lsn = StampAndBuffer(record, /*force=*/true);
  {
    MutexLock lock(sync_mu_);
    AppendFrameTo(&pending_bytes_, lsn, buffer_.back().bytes);
    pending_max_lsn_ = lsn;
    ++pending_forces_;
    NoteForcedArrival();
    pipeline_callbacks_.push_back(PipelineCallback{lsn, std::move(on_durable)});
    if (sync_waiting_) sync_cv_.NotifyOne();
  }
  return lsn;
}

bool FileStableLog::PipelineIdle() {
  MutexLock lock(sync_mu_);
  return pipeline_callbacks_.empty() && !callbacks_running_;
}

void FileStableLog::ReconcileDurability() {
  PromoteStableUpTo(synced_lsn_watermark_.load(std::memory_order_acquire));
  stats_.flushes = fsyncs_.load(std::memory_order_relaxed);
  stats_.bytes_flushed = bytes_synced_.load(std::memory_order_relaxed);
}

uint64_t FileStableLog::ComputeAdaptiveWindow(const GroupCommitConfig& config,
                                              size_t pending_forces,
                                              double arrival_ewma_us,
                                              double fsync_ewma_us) {
  // At the trigger the batch is already worth syncing — cut it now.
  if (pending_forces >= config.queue_depth_trigger) return 0;
  // Shallow queue: lingering only pays once the backlog proves the
  // device is the bottleneck. Below this depth the workload is either
  // sparse or closed-loop with few clients, and in a closed loop the
  // arrivals the window is waiting for *stop* the moment every in-flight
  // transaction's force is queued — the linger then sits on each
  // commit's critical path buying nothing (measured at 8 closed-loop
  // clients: syncing immediately sustains ~40% more commits/s and ~35%
  // lower p50 than an unconditional rate-derived window, while a deep
  // queue at 32+ clients still earns the linger).
  if (pending_forces < config.adaptive_min_depth) return 0;
  // No rate estimate yet (cold start): don't stall anyone's commit on a
  // guess.
  if (arrival_ewma_us <= 0.0 || fsync_ewma_us <= 0.0) return 0;
  // Sparse arrivals: when the next force is further away than a whole
  // sync, lingering adds more latency than the sync it would save.
  if (arrival_ewma_us >= fsync_ewma_us) return 0;
  // Expected time for the queue to fill to the trigger at the current
  // rate, capped by the sync duration (a longer stall can never pay for
  // itself) and the configured ceiling; floored so a nonzero window is
  // long enough to actually collect someone.
  const double fill =
      arrival_ewma_us *
      static_cast<double>(config.queue_depth_trigger - pending_forces);
  const double ceiling =
      std::min(static_cast<double>(config.adaptive_max_window_us),
               fsync_ewma_us);
  double window = std::min(fill, ceiling);
  const double floor = static_cast<double>(config.adaptive_min_window_us);
  if (window < floor) window = floor;
  return static_cast<uint64_t>(window);
}

void FileStableLog::AwaitDurable(uint64_t lsn) {
  if (before_wait_) before_wait_();
  {
    MutexLock lock(sync_mu_);
    while (synced_lsn_ < lsn && running_) done_cv_.Wait(sync_mu_);
  }
  if (after_wait_) after_wait_();
  // Back under the engine lock. If a crash cut the wait short, the record
  // is not durable (even a physically completed sync was never
  // acknowledged and may be torn away) — unwind instead of letting the
  // engine act on a promise the disk never made.
  if (crashed_.load()) throw WalCrashedError{};
  // Reflect durability in the mirror. A graceful Close may have woken us
  // without syncing; promote only what is actually durable.
  // Acquire pairs with the sync thread's release store after fdatasync.
  PromoteStableUpTo(
      std::min(lsn, synced_lsn_watermark_.load(std::memory_order_acquire)));
  stats_.flushes = fsyncs_.load(std::memory_order_relaxed);
  stats_.bytes_flushed = bytes_synced_.load(std::memory_order_relaxed);
}

void FileStableLog::Flush() {
  uint64_t target = 0;
  {
    MutexLock lock(sync_mu_);
    if (pending_bytes_.empty()) {
      target = synced_lsn_;
    } else {
      target = pending_max_lsn_;
      flush_requested_ = true;
      if (sync_waiting_) sync_cv_.NotifyOne();
    }
  }
  if (target > 0) AwaitDurable(target);
}

void FileStableLog::TearDownNoSync() {
  {
    MutexLock lock(sync_mu_);
    crashed_.store(true);
    pending_bytes_.clear();
    pending_forces_ = 0;
    flush_requested_ = false;
    // Detached durability callbacks die with the crash: their records
    // were either never durable, or recovery re-drives the guarded
    // action (resend/inquiry timers) from the stable prefix.
    pipeline_callbacks_.clear();
    running_ = false;
    sync_cv_.NotifyAll();
    done_cv_.NotifyAll();
  }
  if (sync_thread_.joinable()) sync_thread_.join();
  // Torn write: the file may have physically grown past the last
  // acknowledged fdatasync (a batch handed to the sync thread before the
  // crash). A real crash stops that write at an arbitrary byte — pick one
  // uniformly in the unacknowledged suffix, which leaves anything from a
  // clean cut to half a frame header for recovery to truncate. Nothing
  // below durable_size_ is touched: acknowledged forces always survive.
  off_t physical = ::lseek(fd_, 0, SEEK_END);
  if (physical > 0 && static_cast<uint64_t>(physical) > durable_size_) {
    uint64_t span = static_cast<uint64_t>(physical) - durable_size_;
    uint64_t keep = durable_size_ + tear_rng_() % (span + 1);
    PRANY_CHECK_MSG(::ftruncate(fd_, static_cast<off_t>(keep)) == 0,
                    StrFormat("wal crash ftruncate(%s): %s", path_.c_str(),
                              SafeStrError(errno).c_str()));
  }
  ::close(fd_);
  fd_ = -1;
}

void FileStableLog::Crash() {
  if (fd_ >= 0) TearDownNoSync();
  StableLog::Crash();
}

void FileStableLog::Close() {
  if (fd_ < 0) return;
  bool was_running;
  {
    // Previously read running_ with no lock; benign on every path that
    // reaches Close today (the fsync thread never clears it while fd_ is
    // open), but the guarded conversion makes the read-for-the-decision
    // explicit and future-proof.
    MutexLock lock(sync_mu_);
    was_running = running_;
  }
  if (was_running) {
    Flush();
    {
      MutexLock lock(sync_mu_);
      running_ = false;
      sync_cv_.NotifyAll();
      done_cv_.NotifyAll();
    }
    sync_thread_.join();
  }
  stats_.flushes = fsyncs_.load(std::memory_order_relaxed);
  stats_.bytes_flushed = bytes_synced_.load(std::memory_order_relaxed);
  ::close(fd_);
  fd_ = -1;
}

void FileStableLog::CloseAbruptly() {
  if (fd_ < 0) return;
  TearDownNoSync();
}

Status FileStableLog::CompactAndResume() {
  PRANY_CHECK_MSG(fd_ >= 0,
                  "FileStableLog::CompactAndResume on a closed log");
  // Park the fsync thread: drain outstanding forces and any batch it has
  // in flight. The caller holds the engine lock, so no *new* force can be
  // enqueued (appends whose waiters are already parked at the durability
  // wait are fine — their records live in the mirror we rewrite below,
  // and we wake them once everything is durable).
  MutexLock lock(sync_mu_);
  PRANY_CHECK_MSG(running_,
                  "FileStableLog::CompactAndResume on a stopped log");
  while (syncing_ || pending_forces_ > 0 || flush_requested_ ||
         callbacks_running_ || !pipeline_callbacks_.empty()) {
    done_cv_.Wait(sync_mu_);
  }

  // Rewrite the file as exactly the live mirror (recovery replay has
  // already Truncate()d released transactions out of it), sync, and
  // atomically swap it in.
  ByteWriter compacted;
  for (const StoredRecord& rec : stable_) {
    std::vector<uint8_t> frame = EncodeFrame(rec.lsn, rec.bytes);
    compacted.PutRaw(frame.data(), frame.size());
  }
  for (const StoredRecord& rec : buffer_) {
    std::vector<uint8_t> frame = EncodeFrame(rec.lsn, rec.bytes);
    compacted.PutRaw(frame.data(), frame.size());
  }
  std::string tmp_path = path_ + ".compact";
  int tmp_fd = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) {
    return Status::Unavailable(
        StrFormat("open(%s): %s", tmp_path.c_str(), SafeStrError(errno).c_str()));
  }
  const std::vector<uint8_t>& bytes = compacted.bytes();
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n =
        ::write(tmp_fd, bytes.data() + written, bytes.size() - written);
    if (n < 0 && errno == EINTR) continue;
    // A 0 return is a legal short write (no error; nothing consumed) and
    // must be retried, not treated as failure.
    if (n == 0) continue;
    if (n < 0) {
      ::close(tmp_fd);
      return Status::Unavailable(
          StrFormat("write(%s): %s", tmp_path.c_str(), SafeStrError(errno).c_str()));
    }
    written += static_cast<size_t>(n);
  }
  int sync_rc;
  do {
    sync_rc = ::fdatasync(tmp_fd);
  } while (sync_rc != 0 && errno == EINTR);
  if (sync_rc != 0 ||
      ::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::close(tmp_fd);
    return Status::Unavailable(StrFormat("compact(%s): %s", path_.c_str(),
                                         SafeStrError(errno).c_str()));
  }
  // The sync thread only touches fd_ when a batch is pending; the queue is
  // empty and we hold sync_mu_, so the swap is safe.
  ::close(fd_);
  ::close(tmp_fd);
  fd_ = ::open(path_.c_str(), O_RDWR | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::Unavailable(
        StrFormat("reopen(%s): %s", path_.c_str(), SafeStrError(errno).c_str()));
  }
  // Everything in the mirror is now durable — including records whose
  // frames were still in the pending queue (the rewrite covered them).
  pending_bytes_.clear();
  pending_max_lsn_ = 0;
  synced_lsn_ = next_lsn_ - 1;
  synced_lsn_watermark_.store(synced_lsn_, std::memory_order_release);
  durable_size_ = bytes.size();
  lock.Unlock();
  done_cv_.NotifyAll();
  PromoteStableUpTo(synced_lsn_);
  return Status::OK();
}

std::vector<uint8_t> FileStableLog::TakePendingBatch(uint64_t* batch_lsn) {
  std::vector<uint8_t> batch = std::move(pending_bytes_);
  pending_bytes_.clear();
  *batch_lsn = pending_max_lsn_;
  pending_forces_ = 0;
  flush_requested_ = false;
  return batch;
}

void FileStableLog::SyncThreadMain() {
  MutexLock lock(sync_mu_);
  while (true) {
    sync_waiting_ = true;
    while (running_ && pending_forces_ == 0 && !flush_requested_) {
      sync_cv_.Wait(sync_mu_);
    }
    sync_waiting_ = false;
    if (!running_) break;
    // Pick this batch's linger: the legacy fixed window when configured,
    // else the adaptive policy (zero under sparse arrivals, rate-derived
    // under load). An explicit flush or a trigger-deep queue means the
    // batch is worth cutting immediately either way.
    uint64_t window_us = 0;
    if (!flush_requested_ && pending_forces_ < config_.queue_depth_trigger) {
      window_us = config_.batch_window_us > 0
                      ? config_.batch_window_us
                      : (config_.adaptive
                             ? ComputeAdaptiveWindow(config_, pending_forces_,
                                                     arrival_ewma_us_,
                                                     fsync_ewma_us_)
                             : 0);
    }
    if (window_us > 0) {
      // Linger for stragglers; a deep queue or an explicit flush cuts the
      // window short.
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(window_us);
      if (config_.batch_window_us == 0 &&
          window_us <= config_.adaptive_spin_us) {
        // Short adaptive windows spin-yield instead of sleeping: the
        // futex round trip of a condvar wait costs more than the whole
        // linger, and the yield hands the core to the workers whose
        // appends the spin is waiting for.
        while (running_ && !flush_requested_ &&
               pending_forces_ < config_.queue_depth_trigger &&
               std::chrono::steady_clock::now() < deadline) {
          lock.Unlock();
          std::this_thread::yield();
          lock.Lock();
        }
      } else {
        sync_waiting_ = true;
        while (running_ && !flush_requested_ &&
               pending_forces_ < config_.queue_depth_trigger) {
          if (sync_cv_.WaitUntil(sync_mu_, deadline)) break;
        }
        sync_waiting_ = false;
      }
      if (!running_) break;
    }
    const size_t batch_forces = pending_forces_;
    uint64_t batch_lsn = 0;
    std::vector<uint8_t> batch = TakePendingBatch(&batch_lsn);
    if (!batch.empty() && m_window_ != nullptr) {
      m_window_->Observe(static_cast<double>(window_us));
      m_batch_forces_->Observe(static_cast<double>(batch_forces));
    }
    if (batch.empty()) {
      synced_lsn_ = std::max(synced_lsn_, batch_lsn);
      synced_lsn_watermark_.store(synced_lsn_, std::memory_order_release);
      done_cv_.NotifyAll();
      continue;
    }
    syncing_ = true;
    lock.Unlock();
    const auto io_start = std::chrono::steady_clock::now();
    size_t written = 0;
    while (written < batch.size()) {
      ssize_t n = ::write(fd_, batch.data() + written, batch.size() - written);
      if (n < 0 && errno == EINTR) continue;
      // 0 is a legal short write (nothing consumed, no error set): retry.
      // The old CHECK(n > 0) took the whole fsync thread down on it.
      if (n == 0) continue;
      PRANY_CHECK_MSG(n > 0, StrFormat("wal write(%s): %s", path_.c_str(),
                                       SafeStrError(errno).c_str()));
      written += static_cast<size_t>(n);
    }
    // A crash that lands mid-batch must not complete the sync: the bytes
    // just written stay unacknowledged and the teardown may tear them.
    if (crashed_.load()) return;
    int sync_rc;
    do {
      sync_rc = ::fdatasync(fd_);
    } while (sync_rc != 0 && errno == EINTR);
    PRANY_CHECK_MSG(sync_rc == 0,
                    StrFormat("wal fdatasync(%s): %s", path_.c_str(),
                              SafeStrError(errno).c_str()));
    // Relaxed: monotonic stats counters; readers only fold them into
    // reports, ordering rides on sync_mu_ / the watermark instead.
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    bytes_synced_.fetch_add(batch.size(), std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      FlushesCounter()->fetch_add(1, std::memory_order_relaxed);
    }
    const double io_us = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - io_start)
                             .count();
    lock.Lock();
    syncing_ = false;
    fsync_ewma_us_ = fsync_ewma_us_ <= 0.0
                         ? io_us
                         : fsync_ewma_us_ + (io_us - fsync_ewma_us_) *
                                                kEwmaAlpha;
    // Same race, one window later (crash arrived during the fdatasync):
    // the data is on disk but nobody was acknowledged, so treating it as
    // not-durable is safe — and required, since the teardown's torn
    // truncate measures from durable_size_.
    if (!running_) break;
    durable_size_ += batch.size();
    synced_lsn_ = std::max(synced_lsn_, batch_lsn);
    // Release pairs with the acquire load in AwaitDurable/synced_lsn():
    // observing watermark >= L implies the fdatasync covering L completed.
    synced_lsn_watermark_.store(synced_lsn_, std::memory_order_release);
    done_cv_.NotifyAll();
    // Run the detached durability callbacks this sync made ready, in LSN
    // order, outside the lock. No running_ check: these records are
    // durable AND acknowledged, so their actions are legitimate even if
    // a graceful Close races the drain (the join waits for us). A crash
    // teardown clears the queue under sync_mu_, so at most the one
    // in-flight callback still runs — for a record that was durable.
    bool ran_callbacks = false;
    while (!pipeline_callbacks_.empty() &&
           pipeline_callbacks_.front().lsn <= synced_lsn_) {
      std::function<void()> cb = std::move(pipeline_callbacks_.front().fn);
      pipeline_callbacks_.pop_front();
      callbacks_running_ = true;
      lock.Unlock();
      if (cb) cb();
      lock.Lock();
      callbacks_running_ = false;
      ran_callbacks = true;
    }
    // CompactAndResume may be parked until the callback queue drains.
    if (ran_callbacks) done_cv_.NotifyAll();
  }
}

}  // namespace prany
