#include "wal/log_record.h"

#include "common/string_util.h"

namespace prany {

namespace {
// Version 2 added the role byte on decision records (dual-role recovery).
constexpr uint8_t kLogFormatVersion = 2;
// Guards against pathological participant lists in corrupted records.
constexpr uint64_t kMaxParticipants = 1 << 20;
}  // namespace

std::string ToString(LogRecordType type) {
  switch (type) {
    case LogRecordType::kInitiation:
      return "INITIATION";
    case LogRecordType::kPrepared:
      return "PREPARED";
    case LogRecordType::kCommit:
      return "COMMIT";
    case LogRecordType::kAbort:
      return "ABORT";
    case LogRecordType::kEnd:
      return "END";
  }
  return "UNKNOWN";
}

std::string ToString(LogSide side) {
  return side == LogSide::kCoordinator ? "coord" : "part";
}

LogRecord LogRecord::Initiation(TxnId txn, ProtocolKind commit_protocol,
                                std::vector<ParticipantInfo> participants) {
  LogRecord r;
  r.type = LogRecordType::kInitiation;
  r.txn = txn;
  r.commit_protocol = commit_protocol;
  r.participants = std::move(participants);
  return r;
}

LogRecord LogRecord::Prepared(TxnId txn, SiteId coordinator) {
  LogRecord r;
  r.type = LogRecordType::kPrepared;
  r.txn = txn;
  r.coordinator = coordinator;
  r.side = LogSide::kParticipant;
  return r;
}

LogRecord LogRecord::Commit(TxnId txn, LogSide side) {
  LogRecord r;
  r.type = LogRecordType::kCommit;
  r.txn = txn;
  r.side = side;
  return r;
}

LogRecord LogRecord::Abort(TxnId txn, LogSide side) {
  LogRecord r;
  r.type = LogRecordType::kAbort;
  r.txn = txn;
  r.side = side;
  return r;
}

LogRecord LogRecord::End(TxnId txn) {
  LogRecord r;
  r.type = LogRecordType::kEnd;
  r.txn = txn;
  return r;
}

LogRecord LogRecord::Decision(TxnId txn, Outcome outcome, LogSide side) {
  return outcome == Outcome::kCommit ? Commit(txn, side) : Abort(txn, side);
}

LogRecord LogRecord::DecisionWithParticipants(
    TxnId txn, Outcome outcome, std::vector<ParticipantInfo> participants) {
  LogRecord r = Decision(txn, outcome);
  r.participants = std::move(participants);
  return r;
}

Outcome LogRecord::DecisionOutcome() const {
  PRANY_CHECK(IsDecision());
  return type == LogRecordType::kCommit ? Outcome::kCommit : Outcome::kAbort;
}

std::vector<uint8_t> LogRecord::Encode() const {
  ByteWriter w;
  w.PutU8(kLogFormatVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(txn);
  if (type == LogRecordType::kInitiation) {
    w.PutU8(static_cast<uint8_t>(commit_protocol));
  }
  if (IsDecision()) {
    w.PutU8(static_cast<uint8_t>(side));
  }
  if (type == LogRecordType::kInitiation || IsDecision()) {
    w.PutVarint(participants.size());
    for (const ParticipantInfo& p : participants) {
      w.PutU32(p.site);
      w.PutU8(static_cast<uint8_t>(p.protocol));
    }
  }
  if (type == LogRecordType::kPrepared) {
    w.PutU32(coordinator);
  }
  return w.TakeBytes();
}

Result<LogRecord> LogRecord::Decode(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint8_t version = 0;
  PRANY_RETURN_NOT_OK(r.GetU8(&version));
  if (version != kLogFormatVersion) {
    return Status::Corruption("unsupported log format version");
  }
  LogRecord rec;
  uint8_t type = 0;
  PRANY_RETURN_NOT_OK(r.GetU8(&type));
  if (type > static_cast<uint8_t>(LogRecordType::kEnd)) {
    return Status::Corruption("unknown log record type");
  }
  rec.type = static_cast<LogRecordType>(type);
  PRANY_RETURN_NOT_OK(r.GetU64(&rec.txn));
  if (rec.type == LogRecordType::kInitiation) {
    uint8_t protocol = 0;
    PRANY_RETURN_NOT_OK(r.GetU8(&protocol));
    if (protocol > static_cast<uint8_t>(ProtocolKind::kPrAny)) {
      return Status::Corruption("invalid commit protocol");
    }
    rec.commit_protocol = static_cast<ProtocolKind>(protocol);
  }
  if (rec.IsDecision()) {
    uint8_t side = 0;
    PRANY_RETURN_NOT_OK(r.GetU8(&side));
    if (side > static_cast<uint8_t>(LogSide::kParticipant)) {
      return Status::Corruption("invalid log record side");
    }
    rec.side = static_cast<LogSide>(side);
  }
  if (rec.type == LogRecordType::kInitiation || rec.IsDecision()) {
    uint64_t count = 0;
    PRANY_RETURN_NOT_OK(r.GetVarint(&count));
    if (count > kMaxParticipants) {
      return Status::Corruption("implausible participant count");
    }
    rec.participants.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      ParticipantInfo p;
      PRANY_RETURN_NOT_OK(r.GetU32(&p.site));
      uint8_t pproto = 0;
      PRANY_RETURN_NOT_OK(r.GetU8(&pproto));
      if (pproto > static_cast<uint8_t>(ProtocolKind::kPrAny)) {
        return Status::Corruption("invalid participant protocol");
      }
      p.protocol = static_cast<ProtocolKind>(pproto);
      rec.participants.push_back(p);
    }
  }
  if (rec.type == LogRecordType::kPrepared) {
    PRANY_RETURN_NOT_OK(r.GetU32(&rec.coordinator));
    rec.side = LogSide::kParticipant;
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after log record");
  }
  return rec;
}

std::string LogRecord::ToString() const {
  std::string out = StrFormat("%s txn=%llu", prany::ToString(type).c_str(),
                              static_cast<unsigned long long>(txn));
  if (type == LogRecordType::kInitiation) {
    out += StrFormat(" protocol=%s participants=[",
                     prany::ToString(commit_protocol).c_str());
    for (size_t i = 0; i < participants.size(); ++i) {
      if (i > 0) out += ",";
      out += StrFormat("%u:%s", participants[i].site,
                       prany::ToString(participants[i].protocol).c_str());
    }
    out += "]";
  } else if (type == LogRecordType::kPrepared) {
    out += StrFormat(" coordinator=%u", coordinator);
  } else if (IsDecision()) {
    out += StrFormat(" side=%s", prany::ToString(side).c_str());
  }
  return out;
}

bool LogRecord::operator==(const LogRecord& other) const {
  return type == other.type && txn == other.txn &&
         participants == other.participants &&
         commit_protocol == other.commit_protocol &&
         coordinator == other.coordinator && side == other.side;
}

}  // namespace prany
