#include "wal/stable_log.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/status.h"

namespace prany {

StableLog::StableLog(std::string metric_prefix, MetricsRegistry* metrics)
    : metric_prefix_(std::move(metric_prefix)), metrics_(metrics) {}

void StableLog::BindTrace(TraceLog* trace, SiteId site,
                          std::function<SimTime()> clock) {
  trace_ = trace;
  trace_site_ = site;
  clock_ = std::move(clock);
}

void StableLog::EmitTrace(TraceEvent event) const {
  if (trace_ == nullptr || !trace_->enabled()) return;
  event.time = clock_ != nullptr ? clock_() : 0;
  event.site = trace_site_;
  trace_->Emit(std::move(event));
}

MetricsRegistry::Counter* StableLog::AppendsCounter() {
  if (m_appends_ == nullptr && metrics_ != nullptr) {
    m_appends_ = metrics_->CounterHandle(metric_prefix_ + ".appends");
  }
  return m_appends_;
}

MetricsRegistry::Counter* StableLog::ForcedAppendsCounter() {
  if (m_forced_appends_ == nullptr && metrics_ != nullptr) {
    m_forced_appends_ =
        metrics_->CounterHandle(metric_prefix_ + ".forced_appends");
  }
  return m_forced_appends_;
}

MetricsRegistry::Counter* StableLog::FlushesCounter() {
  if (m_flushes_ == nullptr && metrics_ != nullptr) {
    m_flushes_ = metrics_->CounterHandle(metric_prefix_ + ".flushes");
  }
  return m_flushes_;
}

MetricsRegistry::Counter* StableLog::TruncatedCounter() {
  if (m_truncated_ == nullptr && metrics_ != nullptr) {
    m_truncated_ = metrics_->CounterHandle(metric_prefix_ + ".truncated");
  }
  return m_truncated_;
}

MetricsRegistry::Counter* StableLog::AppendTypeCounter(LogRecordType type) {
  size_t index = static_cast<size_t>(type);
  PRANY_CHECK(index < kLogRecordTypes);
  if (m_append_type_[index] == nullptr && metrics_ != nullptr) {
    m_append_type_[index] =
        metrics_->CounterHandle(metric_prefix_ + ".append." + ToString(type));
  }
  return m_append_type_[index];
}

uint64_t StableLog::StampAndBuffer(const LogRecord& record, bool force) {
  LogRecord stamped = record;
  stamped.lsn = next_lsn_++;
  buffer_.push_back(
      StoredRecord{stamped.lsn, stamped.txn, stamped.side, stamped.Encode()});
  ++stats_.appends;
  if (metrics_ != nullptr) {
    AppendsCounter()->fetch_add(1, std::memory_order_relaxed);
    AppendTypeCounter(record.type)->fetch_add(1, std::memory_order_relaxed);
  }
  if (trace_ != nullptr && trace_->enabled()) {
    TraceEvent e;
    e.kind = TraceEventKind::kWalAppend;
    e.txn = stamped.txn;
    e.label = ToString(record.type);
    // The writing role, so checkers can split a dual-role site's log
    // discipline by role ("coord" / "part").
    e.detail = ToString(record.side);
    e.forced = force;
    e.value = stamped.lsn;
    EmitTrace(std::move(e));
  }
  if (force) {
    ++stats_.forced_appends;
    if (metrics_ != nullptr) {
      ForcedAppendsCounter()->fetch_add(1, std::memory_order_relaxed);
    }
  }
  return stamped.lsn;
}

uint64_t StableLog::Append(const LogRecord& record, bool force) {
  uint64_t lsn = StampAndBuffer(record, force);
  if (force) Flush();
  return lsn;
}

uint64_t StableLog::AppendPipelined(const LogRecord& record,
                                    std::function<void()> on_durable) {
  uint64_t lsn = Append(record, /*force=*/true);
  if (on_durable) on_durable();
  return lsn;
}

void StableLog::PromoteStableUpTo(uint64_t lsn) {
  // The buffer is in LSN order, so the promotable records are a prefix;
  // move them in one pass instead of erasing the front repeatedly (which
  // shifts the whole tail per record).
  size_t promoted = 0;
  while (promoted < buffer_.size() && buffer_[promoted].lsn <= lsn) {
    ++promoted;
  }
  if (promoted > 0) {
    stable_.insert(stable_.end(),
                   std::make_move_iterator(buffer_.begin()),
                   std::make_move_iterator(buffer_.begin() +
                                           static_cast<ptrdiff_t>(promoted)));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(promoted));
    TraceEvent e;
    e.kind = TraceEventKind::kWalForce;
    e.value = promoted;
    EmitTrace(std::move(e));
  }
}

void StableLog::RestoreStableRecord(uint64_t lsn, TxnId txn,
                                    std::vector<uint8_t> bytes) {
  // Recover the writing role from the record body so post-crash GC stays
  // role-aware. The bytes already passed the implementation's integrity
  // checks; a decode failure here is a programming error.
  Result<LogRecord> decoded = LogRecord::Decode(bytes);
  PRANY_CHECK_MSG(decoded.ok(), decoded.status().ToString());
  stable_.push_back(
      StoredRecord{lsn, txn, decoded.ValueOrDie().side, std::move(bytes)});
  if (lsn >= next_lsn_) next_lsn_ = lsn + 1;
}

void StableLog::Flush() {
  if (buffer_.empty()) return;
  ++stats_.flushes;
  size_t flushed = buffer_.size();
  for (StoredRecord& rec : buffer_) {
    stats_.bytes_flushed += rec.bytes.size();
    stable_.push_back(std::move(rec));
  }
  buffer_.clear();
  if (metrics_ != nullptr) {
    FlushesCounter()->fetch_add(1, std::memory_order_relaxed);
  }
  TraceEvent e;
  e.kind = TraceEventKind::kWalForce;
  e.value = flushed;
  EmitTrace(std::move(e));
}

void StableLog::Crash() {
  if (!buffer_.empty()) {
    TraceEvent e;
    e.kind = TraceEventKind::kWalCrashLoss;
    e.value = buffer_.size();
    EmitTrace(std::move(e));
  }
  buffer_.clear();
}

std::vector<LogRecord> StableLog::StableRecords() const {
  std::vector<LogRecord> out;
  out.reserve(stable_.size());
  for (const StoredRecord& rec : stable_) {
    Result<LogRecord> decoded = LogRecord::Decode(rec.bytes);
    PRANY_CHECK_MSG(decoded.ok(), decoded.status().ToString());
    LogRecord r = std::move(decoded).ValueOrDie();
    r.lsn = rec.lsn;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<LogRecord> StableLog::BufferedRecords() const {
  std::vector<LogRecord> out;
  out.reserve(buffer_.size());
  for (const StoredRecord& rec : buffer_) {
    Result<LogRecord> decoded = LogRecord::Decode(rec.bytes);
    PRANY_CHECK_MSG(decoded.ok(), decoded.status().ToString());
    LogRecord r = std::move(decoded).ValueOrDie();
    r.lsn = rec.lsn;
    out.push_back(std::move(r));
  }
  return out;
}

bool StableLog::HasRecordsFor(TxnId txn) const {
  return std::any_of(stable_.begin(), stable_.end(),
                     [txn](const StoredRecord& r) { return r.txn == txn; });
}

void StableLog::ReleaseTransaction(TxnId txn, LogSide side) {
  (side == LogSide::kCoordinator ? released_coord_ : released_part_)
      .insert(txn);
}

size_t StableLog::Truncate() {
  size_t before = stable_.size();
  // Remember which (txn, side) pairs actually lose records so their
  // release marks can be retired below.
  std::vector<std::pair<TxnId, LogSide>> removed_pairs;
  stable_.erase(std::remove_if(stable_.begin(), stable_.end(),
                               [this, &removed_pairs](const StoredRecord& r) {
                                 if (!ReleasedFor(r)) return false;
                                 removed_pairs.emplace_back(r.txn, r.side);
                                 return true;
                               }),
                stable_.end());
  size_t removed = before - stable_.size();
  // Retire release marks that can no longer match anything: the erase
  // above removed every stable record for a removed pair, so a mark is
  // still needed only while a not-yet-durable record for the pair sits in
  // the volatile buffer (a lazy decision record awaiting the next group
  // flush). Without this the released sets grow by one entry per
  // forgotten transaction for the life of the process, and probing them
  // comes to dominate Truncate.
  for (const auto& pair : removed_pairs) {
    const TxnId txn = pair.first;
    const LogSide side = pair.second;
    const bool pending =
        std::any_of(buffer_.begin(), buffer_.end(),
                    [txn, side](const StoredRecord& b) {
                      return b.txn == txn && b.side == side;
                    });
    if (!pending) {
      (side == LogSide::kCoordinator ? released_coord_ : released_part_)
          .erase(txn);
    }
  }
  stats_.records_truncated += removed;
  if (metrics_ != nullptr && removed > 0) {
    TruncatedCounter()->fetch_add(static_cast<int64_t>(removed),
                                  std::memory_order_relaxed);
  }
  if (removed > 0) {
    TraceEvent e;
    e.kind = TraceEventKind::kWalTruncate;
    e.value = removed;
    EmitTrace(std::move(e));
  }
  return removed;
}

std::set<TxnId> StableLog::UnreleasedTxns() const {
  std::set<TxnId> out;
  for (const StoredRecord& rec : stable_) {
    if (!ReleasedFor(rec)) out.insert(rec.txn);
  }
  return out;
}

}  // namespace prany
