#include "wal/stable_log.h"

#include <algorithm>

#include "common/status.h"

namespace prany {

StableLog::StableLog(std::string metric_prefix, MetricsRegistry* metrics)
    : metric_prefix_(std::move(metric_prefix)), metrics_(metrics) {}

void StableLog::BindTrace(TraceLog* trace, SiteId site,
                          std::function<SimTime()> clock) {
  trace_ = trace;
  trace_site_ = site;
  clock_ = std::move(clock);
}

void StableLog::EmitTrace(TraceEvent event) const {
  if (trace_ == nullptr || !trace_->enabled()) return;
  event.time = clock_ != nullptr ? clock_() : 0;
  event.site = trace_site_;
  trace_->Emit(std::move(event));
}

uint64_t StableLog::StampAndBuffer(const LogRecord& record, bool force) {
  LogRecord stamped = record;
  stamped.lsn = next_lsn_++;
  buffer_.push_back(StoredRecord{stamped.lsn, stamped.txn, stamped.Encode()});
  ++stats_.appends;
  if (metrics_ != nullptr) {
    metrics_->Add(metric_prefix_ + ".appends");
    metrics_->Add(metric_prefix_ + ".append." + ToString(record.type));
  }
  if (trace_ != nullptr && trace_->enabled()) {
    TraceEvent e;
    e.kind = TraceEventKind::kWalAppend;
    e.txn = stamped.txn;
    e.label = ToString(record.type);
    e.forced = force;
    e.value = stamped.lsn;
    EmitTrace(std::move(e));
  }
  if (force) {
    ++stats_.forced_appends;
    if (metrics_ != nullptr) {
      metrics_->Add(metric_prefix_ + ".forced_appends");
    }
  }
  return stamped.lsn;
}

uint64_t StableLog::Append(const LogRecord& record, bool force) {
  uint64_t lsn = StampAndBuffer(record, force);
  if (force) Flush();
  return lsn;
}

void StableLog::PromoteStableUpTo(uint64_t lsn) {
  size_t promoted = 0;
  while (!buffer_.empty() && buffer_.front().lsn <= lsn) {
    stable_.push_back(std::move(buffer_.front()));
    buffer_.erase(buffer_.begin());
    ++promoted;
  }
  if (promoted > 0) {
    TraceEvent e;
    e.kind = TraceEventKind::kWalForce;
    e.value = promoted;
    EmitTrace(std::move(e));
  }
}

void StableLog::RestoreStableRecord(uint64_t lsn, TxnId txn,
                                    std::vector<uint8_t> bytes) {
  stable_.push_back(StoredRecord{lsn, txn, std::move(bytes)});
  if (lsn >= next_lsn_) next_lsn_ = lsn + 1;
}

void StableLog::Flush() {
  if (buffer_.empty()) return;
  ++stats_.flushes;
  size_t flushed = buffer_.size();
  for (StoredRecord& rec : buffer_) {
    stats_.bytes_flushed += rec.bytes.size();
    stable_.push_back(std::move(rec));
  }
  buffer_.clear();
  if (metrics_ != nullptr) {
    metrics_->Add(metric_prefix_ + ".flushes");
  }
  TraceEvent e;
  e.kind = TraceEventKind::kWalForce;
  e.value = flushed;
  EmitTrace(std::move(e));
}

void StableLog::Crash() {
  if (!buffer_.empty()) {
    TraceEvent e;
    e.kind = TraceEventKind::kWalCrashLoss;
    e.value = buffer_.size();
    EmitTrace(std::move(e));
  }
  buffer_.clear();
}

std::vector<LogRecord> StableLog::StableRecords() const {
  std::vector<LogRecord> out;
  out.reserve(stable_.size());
  for (const StoredRecord& rec : stable_) {
    Result<LogRecord> decoded = LogRecord::Decode(rec.bytes);
    PRANY_CHECK_MSG(decoded.ok(), decoded.status().ToString());
    LogRecord r = std::move(decoded).ValueOrDie();
    r.lsn = rec.lsn;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<LogRecord> StableLog::BufferedRecords() const {
  std::vector<LogRecord> out;
  out.reserve(buffer_.size());
  for (const StoredRecord& rec : buffer_) {
    Result<LogRecord> decoded = LogRecord::Decode(rec.bytes);
    PRANY_CHECK_MSG(decoded.ok(), decoded.status().ToString());
    LogRecord r = std::move(decoded).ValueOrDie();
    r.lsn = rec.lsn;
    out.push_back(std::move(r));
  }
  return out;
}

bool StableLog::HasRecordsFor(TxnId txn) const {
  return std::any_of(stable_.begin(), stable_.end(),
                     [txn](const StoredRecord& r) { return r.txn == txn; });
}

void StableLog::ReleaseTransaction(TxnId txn) { released_.insert(txn); }

size_t StableLog::Truncate() {
  size_t before = stable_.size();
  stable_.erase(std::remove_if(stable_.begin(), stable_.end(),
                               [this](const StoredRecord& r) {
                                 return released_.count(r.txn) > 0;
                               }),
                stable_.end());
  size_t removed = before - stable_.size();
  stats_.records_truncated += removed;
  if (metrics_ != nullptr && removed > 0) {
    metrics_->Add(metric_prefix_ + ".truncated",
                  static_cast<int64_t>(removed));
  }
  if (removed > 0) {
    TraceEvent e;
    e.kind = TraceEventKind::kWalTruncate;
    e.value = removed;
    EmitTrace(std::move(e));
  }
  return removed;
}

std::set<TxnId> StableLog::UnreleasedTxns() const {
  std::set<TxnId> out;
  for (const StoredRecord& rec : stable_) {
    if (released_.count(rec.txn) == 0) out.insert(rec.txn);
  }
  return out;
}

}  // namespace prany
