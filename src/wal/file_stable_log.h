// File-backed StableLog with group commit.
//
// Records are framed as [u32 payload_len][u32 crc32(payload)][payload],
// payload = u64 lsn + LogRecord::Encode() bytes, appended to one
// append-only file per site. A forced Append() enqueues the frame and
// blocks until a dedicated fsync thread has written and fdatasync'd it;
// the fsync thread batches everything enqueued since the last sync into
// one physical I/O, so forced writes from concurrent transactions
// coalesce (group commit — the mechanism that makes a ~100us fsync device
// sustain tens of thousands of commits per second).
//
// Batching policy: the sync thread wakes as soon as a forced append is
// pending. By default the linger is *adaptive*: derived per batch from
// the observed forced-append arrival rate and fdatasync duration — zero
// while arrivals are sparse (a lone commit syncs immediately), a bounded
// spin-then-sleep window once arrivals outpace the device, always cut
// early at `queue_depth_trigger` pending forces. Setting
// `batch_window_us` > 0 selects the legacy fixed window instead; setting
// `adaptive = false` with window 0 leaves batching purely opportunistic
// ("sticky": whatever accumulates during the previous fdatasync forms
// the next batch). The chosen window and batch size are exported as the
// `<prefix>.batch_window_us` / `<prefix>.batch_forces` distributions.
//
// Crash recovery: Open() scans the file, verifies each frame's CRC and
// re-installs intact records; the first torn or corrupt frame ends the
// scan and the file is truncated there — mirroring the simulator's
// crash-discards-the-volatile-tail semantics (the torn tail is exactly
// the not-yet-acknowledged suffix).
//
// Concurrency contract: all StableLog methods must be called under the
// owning site's engine lock (one log belongs to one site). The wait hooks
// installed by the live site release/reacquire that lock around the
// durability wait so other workers of the same site can append — and
// coalesce — while an fdatasync is in flight. The fsync thread itself
// never touches the in-memory mirror or the engine lock.

#ifndef PRANY_WAL_FILE_STABLE_LOG_H_
#define PRANY_WAL_FILE_STABLE_LOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "wal/stable_log.h"

namespace prany {

/// Thrown out of a forced Append() whose durability wait was interrupted
/// by Crash(): the record is NOT durable, and the engine action that
/// demanded durability (sending a vote, enforcing a decision) must not
/// happen. The live runtime catches this at its dispatch boundaries and
/// abandons the in-flight handler — the exact analogue of the simulator
/// crashing a site at a forced-write yield point.
struct WalCrashedError {};

/// Group-commit tuning knobs (see header comment).
struct GroupCommitConfig {
  /// Fixed linger: how long the sync thread stalls for stragglers after
  /// the first pending forced append, in microseconds. Setting this > 0
  /// selects the legacy fixed window and disables the adaptive policy.
  /// 0 (the default) = adaptive when `adaptive` is true, else sync
  /// immediately (opportunistic batching only).
  uint64_t batch_window_us = 0;

  /// Cut the batch early once this many forced appends are pending.
  /// Applies to both the fixed and the adaptive window.
  size_t queue_depth_trigger = 8;

  /// Adaptive window (the default policy when batch_window_us == 0):
  /// the sync thread derives each batch's linger from the observed
  /// forced-append inter-arrival time and fdatasync duration — zero
  /// linger while arrivals are sparse (waiting a whole inter-arrival
  /// gap to grow the batch by one costs more latency than a second
  /// sync), a bounded spin-then-sleep linger once arrivals outpace the
  /// device. See ComputeAdaptiveWindow for the exact policy.
  bool adaptive = true;

  /// Linger only once this many forces are already pending when the
  /// window is chosen. Below this depth the device is not the
  /// bottleneck and a closed-loop workload's arrivals *stop* once its
  /// in-flight transactions are all queued — lingering then stalls the
  /// very clients whose forces the window is waiting for (measured at
  /// 8 closed-loop clients: zero linger sustains ~40% more commits/s
  /// than an unconditional rate-derived window).
  size_t adaptive_min_depth = 4;

  /// Floor for a nonzero adaptive window, microseconds.
  uint64_t adaptive_min_window_us = 5;

  /// Ceiling for the adaptive window, microseconds (also capped by the
  /// measured fdatasync duration — lingering longer than a sync takes
  /// can never pay for itself).
  uint64_t adaptive_max_window_us = 200;

  /// Adaptive windows at or below this spin (sched_yield loop) on the
  /// sync thread instead of sleeping on the condvar — a futex round
  /// trip costs more than the whole linger at these scales.
  uint64_t adaptive_spin_us = 30;
};

/// What Open() found in an existing file.
struct WalRecoveryInfo {
  uint64_t records_recovered = 0;
  uint64_t bytes_recovered = 0;      ///< Valid prefix length.
  uint64_t torn_bytes_discarded = 0; ///< Tail truncated after the prefix.
  bool tail_truncated = false;
};

/// Append-only file WAL with a group-commit fsync thread.
class FileStableLog : public StableLog {
 public:
  FileStableLog(std::string path, std::string metric_prefix = "wal",
                MetricsRegistry* metrics = nullptr,
                GroupCommitConfig config = {});
  ~FileStableLog() override;

  /// Opens (creating if absent) the file, runs the recovery scan, truncates
  /// any torn tail, and starts the fsync thread. Must be called (and must
  /// succeed) before the first Append.
  Status Open();

  /// Drains pending writes, stops the fsync thread and closes the file.
  /// Idempotent; also called by the destructor.
  void Close();

  /// Crash simulation: discards pending (never-synced) writes, stops the
  /// fsync thread without a final sync, and *torn-truncates* the file at a
  /// random byte inside the never-acknowledged suffix — what the process
  /// dying mid-batch leaves on disk. Every acknowledged forced append
  /// survives; anything after the last fdatasync may be partially written.
  /// Appends concurrently blocked in their durability wait are woken and
  /// throw WalCrashedError.
  void CloseAbruptly();

  /// Re-opens this same log object after Crash(): resets the in-memory
  /// mirror, reruns the recovery scan (recovery_info() describes what this
  /// restart found, including any torn tail) and restarts the fsync
  /// thread. The LSN allocator restarts from the recovered prefix.
  Status Reopen();

  /// Rewrites the file to exactly the live in-memory mirror (stable view +
  /// volatile buffer) and fdatasyncs it, then resumes appending. Called
  /// under the engine lock after recovery replay has Truncate()d released
  /// transactions, so the file stops growing without bound across
  /// crash-restart cycles (Truncate alone only trims the mirror). All
  /// mirror records are durable on return.
  Status CompactAndResume();

  /// Seeds the RNG that picks the torn-truncate byte (deterministic tests).
  void SetTornWriteSeed(uint64_t seed) { tear_rng_.seed(seed); }

  /// True between Crash()/CloseAbruptly() and the next Reopen().
  bool crashed() const { return crashed_.load(); }

  /// Installs hooks called immediately before/after the blocking
  /// durability wait in a forced Append. The live site uses these to
  /// release/reacquire the engine lock so concurrent transactions can
  /// coalesce into one fdatasync.
  void SetWaitHooks(std::function<void()> before_wait,
                    std::function<void()> after_wait);

  // StableLog write path:
  uint64_t Append(const LogRecord& record, bool force) override;
  void Flush() override;
  void Crash() override;

  /// Forced append whose durability wait is detached (see StableLog).
  /// Returns immediately; the fsync thread runs `on_durable` right after
  /// the covering fdatasync is acknowledged — no engine lock held, no
  /// worker wakeup on the latency path. Callbacks for one log run
  /// strictly in LSN order. A crash discards not-yet-run callbacks
  /// (their records were either never durable, or recovery re-drives
  /// the guarded action from the stable prefix).
  uint64_t AppendPipelined(const LogRecord& record,
                           std::function<void()> on_durable) override;

  /// True when no pipelined durability callback is queued or running.
  /// Quiesce folds this in: a batch can be durable with its callbacks
  /// (decision sends, completion tasks) still in flight on the sync
  /// thread, invisible to the transport/queue idle checks.
  bool PipelineIdle() PRANY_EXCLUDES(sync_mu_);

  /// Promotes the in-memory mirror up to the current durable watermark
  /// and folds the sync thread's flush counters into stats(). Pipelined
  /// appends skip the blocking AwaitDurable that normally does this, so
  /// the engine-side completion task calls it (under the engine lock)
  /// to keep the mirror's stable view — and Truncate's release-mark
  /// retirement — in step with the disk.
  void ReconcileDurability() override;

  /// The adaptive linger policy, pure so tests can pin the curve:
  /// zero at/above the depth trigger (cut now), zero with no arrival
  /// estimate, zero while arrivals are sparser than a sync is long,
  /// otherwise the expected time for the batch to fill —
  /// arrival_ewma_us * (trigger - depth) — clamped to
  /// [adaptive_min_window_us, min(adaptive_max_window_us, fsync_ewma_us)].
  static uint64_t ComputeAdaptiveWindow(const GroupCommitConfig& config,
                                        size_t pending_forces,
                                        double arrival_ewma_us,
                                        double fsync_ewma_us);

  const WalRecoveryInfo& recovery_info() const { return recovery_; }
  const std::string& path() const { return path_; }

  /// Highest LSN known durable. Acquire pairs with the sync thread's
  /// release store after each fdatasync.
  uint64_t synced_lsn() const {
    return synced_lsn_watermark_.load(std::memory_order_acquire);
  }

  /// Physical fdatasync count (the denominator of group-commit
  /// effectiveness: forced_appends / fsyncs = batch factor). Relaxed:
  /// a monotonic stat, no ordering carried.
  uint64_t fsyncs() const {
    return fsyncs_.load(std::memory_order_relaxed);
  }

 private:
  /// Encodes the CRC frame for a mirror record.
  static std::vector<uint8_t> EncodeFrame(uint64_t lsn,
                                          const std::vector<uint8_t>& body);

  /// Appends the CRC frame for (lsn, body) to `out` in place — the
  /// allocation-free path Append() uses to extend the pending batch
  /// directly instead of building (and copying) a temporary frame.
  static void AppendFrameTo(std::vector<uint8_t>* out, uint64_t lsn,
                            const std::vector<uint8_t>& body);

  /// Blocks until everything enqueued up to `lsn` is durable, running the
  /// wait hooks around the wait. Folds sync-thread counters into stats_
  /// and promotes the mirror afterwards (caller holds the engine lock).
  /// Throws WalCrashedError if the wait was cut short by a crash.
  /// EXCLUDES: takes sync_mu_ itself, and the before-wait hook releases
  /// the engine lock — holding sync_mu_ here would deadlock the fsync
  /// thread against the wait.
  void AwaitDurable(uint64_t lsn) PRANY_EXCLUDES(sync_mu_);

  /// Shared back half of Open()/Reopen(): opens the file if needed, runs
  /// the recovery scan, truncates the torn tail and starts the fsync
  /// thread.
  Status OpenAndScan();

  /// Folds a forced-append arrival into the inter-arrival EWMA the
  /// adaptive window is computed from.
  void NoteForcedArrival() PRANY_REQUIRES(sync_mu_);

  /// Stops the fsync thread without syncing, torn-truncates the
  /// unacknowledged suffix and closes the file. Wakes durability waiters
  /// (they throw). Shared by Crash() and CloseAbruptly().
  void TearDownNoSync() PRANY_EXCLUDES(sync_mu_);

  void SyncThreadMain() PRANY_EXCLUDES(sync_mu_);

  /// Swaps the pending batch out of the queue, consuming the force/flush
  /// requests it answers. Sync-thread helper, split out so the analysis
  /// checks the queue handoff holds the lock.
  std::vector<uint8_t> TakePendingBatch(uint64_t* batch_lsn)
      PRANY_REQUIRES(sync_mu_);

  std::string path_;
  GroupCommitConfig config_;
  /// Deliberately unguarded: opened/closed/swapped only from the engine
  /// serialization domain (Open/Close/Crash/CompactAndResume run under
  /// the owning site's engine lock or during single-threaded teardown);
  /// the fsync thread writes through it only while `syncing_` is true,
  /// and CompactAndResume waits that flag out before swapping.
  int fd_ = -1;
  WalRecoveryInfo recovery_;
  std::atomic<bool> crashed_{false};
  /// Picks where inside the in-flight suffix the torn write stops.
  std::mt19937_64 tear_rng_{0x9e3779b97f4a7c15ull};
  std::function<void()> before_wait_;
  std::function<void()> after_wait_;

  // Sync-queue state, guarded by sync_mu_. The engine side appends frames
  // and waits on done_cv_; the sync thread batches, writes, fdatasyncs and
  // advances synced_lsn_.
  /// Wal-sync rank: taken under the engine lock (Append/Flush) and by the
  /// fsync thread; nothing is ever acquired while holding it.
  Mutex sync_mu_ PRANY_ACQUIRED_AFTER(lock_order::kQueueRank)
      PRANY_ACQUIRED_BEFORE(lock_order::kCrashRank);
  CondVar sync_cv_;  ///< Wakes the sync thread.
  CondVar done_cv_;  ///< Wakes durability waiters.
  std::vector<uint8_t> pending_bytes_ PRANY_GUARDED_BY(sync_mu_);
  uint64_t pending_max_lsn_ PRANY_GUARDED_BY(sync_mu_) = 0;
  size_t pending_forces_ PRANY_GUARDED_BY(sync_mu_) = 0;
  bool flush_requested_ PRANY_GUARDED_BY(sync_mu_) = false;
  uint64_t synced_lsn_ PRANY_GUARDED_BY(sync_mu_) = 0;

  /// Detached durability callbacks in LSN order; the sync thread runs
  /// the ready prefix (lsn <= synced_lsn_) after each acknowledged
  /// fdatasync, outside sync_mu_. Crash teardown discards the queue.
  struct PipelineCallback {
    uint64_t lsn;
    std::function<void()> fn;
  };
  std::deque<PipelineCallback> pipeline_callbacks_ PRANY_GUARDED_BY(sync_mu_);
  /// True while the sync thread runs a callback outside sync_mu_;
  /// PipelineIdle and CompactAndResume wait it out.
  bool callbacks_running_ PRANY_GUARDED_BY(sync_mu_) = false;

  /// EWMA of the inter-arrival time between forced appends (µs), fed by
  /// the append side; gaps are capped so an idle spell doesn't poison
  /// the estimate for the next burst.
  double arrival_ewma_us_ PRANY_GUARDED_BY(sync_mu_) = 0.0;
  std::chrono::steady_clock::time_point last_force_at_
      PRANY_GUARDED_BY(sync_mu_){};
  /// EWMA of the write+fdatasync duration (µs), fed by the sync thread.
  double fsync_ewma_us_ PRANY_GUARDED_BY(sync_mu_) = 0.0;
  bool running_ PRANY_GUARDED_BY(sync_mu_) = false;
  /// True while the sync thread is blocked on sync_cv_; appends skip the
  /// notify when it is busy writing (it re-checks the queue before it
  /// waits again, so no wakeup is lost).
  bool sync_waiting_ PRANY_GUARDED_BY(sync_mu_) = false;
  /// True while the sync thread is writing a batch outside sync_mu_;
  /// CompactAndResume waits for it before swapping the file.
  bool syncing_ PRANY_GUARDED_BY(sync_mu_) = false;
  /// File size covered by the last completed fdatasync — the boundary
  /// below which a crash must not tear.
  uint64_t durable_size_ PRANY_GUARDED_BY(sync_mu_) = 0;

  // Lock-free mirrors for cheap reads outside sync_mu_.
  /// Release/acquire: written by the sync thread after fdatasync, read by
  /// engine-side durability checks — seeing LSN L implies L's sync ran.
  std::atomic<uint64_t> synced_lsn_watermark_{0};
  /// Relaxed-only stats counters (see fsyncs()).
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> bytes_synced_{0};

  /// Per-batch observability, resolved eagerly at construction (the sync
  /// thread must never take the registry mutex for a key lookup): the
  /// linger the policy chose and how many forces the batch carried.
  MetricsRegistry::Distribution* m_window_ = nullptr;
  MetricsRegistry::Distribution* m_batch_forces_ = nullptr;

  std::thread sync_thread_;
};

}  // namespace prany

#endif  // PRANY_WAL_FILE_STABLE_LOG_H_
