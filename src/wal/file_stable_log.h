// File-backed StableLog with group commit.
//
// Records are framed as [u32 payload_len][u32 crc32(payload)][payload],
// payload = u64 lsn + LogRecord::Encode() bytes, appended to one
// append-only file per site. A forced Append() enqueues the frame and
// blocks until a dedicated fsync thread has written and fdatasync'd it;
// the fsync thread batches everything enqueued since the last sync into
// one physical I/O, so forced writes from concurrent transactions
// coalesce (group commit — the mechanism that makes a ~100us fsync device
// sustain tens of thousands of commits per second).
//
// Batching policy: the sync thread wakes as soon as a forced append is
// pending. When `batch_window_us` > 0 it then lingers up to that long for
// stragglers, cutting the batch early once `queue_depth_trigger` forced
// appends are waiting. With the default config (window 0) batching is
// purely opportunistic: whatever accumulates while the previous fdatasync
// is in flight forms the next batch ("sticky" batching), which is already
// near-optimal under closed-loop load.
//
// Crash recovery: Open() scans the file, verifies each frame's CRC and
// re-installs intact records; the first torn or corrupt frame ends the
// scan and the file is truncated there — mirroring the simulator's
// crash-discards-the-volatile-tail semantics (the torn tail is exactly
// the not-yet-acknowledged suffix).
//
// Concurrency contract: all StableLog methods must be called under the
// owning site's engine lock (one log belongs to one site). The wait hooks
// installed by the live site release/reacquire that lock around the
// durability wait so other workers of the same site can append — and
// coalesce — while an fdatasync is in flight. The fsync thread itself
// never touches the in-memory mirror or the engine lock.

#ifndef PRANY_WAL_FILE_STABLE_LOG_H_
#define PRANY_WAL_FILE_STABLE_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "wal/stable_log.h"

namespace prany {

/// Thrown out of a forced Append() whose durability wait was interrupted
/// by Crash(): the record is NOT durable, and the engine action that
/// demanded durability (sending a vote, enforcing a decision) must not
/// happen. The live runtime catches this at its dispatch boundaries and
/// abandons the in-flight handler — the exact analogue of the simulator
/// crashing a site at a forced-write yield point.
struct WalCrashedError {};

/// Group-commit tuning knobs (see header comment).
struct GroupCommitConfig {
  /// How long the sync thread lingers for stragglers after the first
  /// pending forced append, in microseconds. 0 = sync immediately
  /// (opportunistic batching only).
  uint64_t batch_window_us = 0;

  /// Cut the batch early once this many forced appends are pending.
  /// Only meaningful with batch_window_us > 0.
  size_t queue_depth_trigger = 8;
};

/// What Open() found in an existing file.
struct WalRecoveryInfo {
  uint64_t records_recovered = 0;
  uint64_t bytes_recovered = 0;      ///< Valid prefix length.
  uint64_t torn_bytes_discarded = 0; ///< Tail truncated after the prefix.
  bool tail_truncated = false;
};

/// Append-only file WAL with a group-commit fsync thread.
class FileStableLog : public StableLog {
 public:
  FileStableLog(std::string path, std::string metric_prefix = "wal",
                MetricsRegistry* metrics = nullptr,
                GroupCommitConfig config = {});
  ~FileStableLog() override;

  /// Opens (creating if absent) the file, runs the recovery scan, truncates
  /// any torn tail, and starts the fsync thread. Must be called (and must
  /// succeed) before the first Append.
  Status Open();

  /// Drains pending writes, stops the fsync thread and closes the file.
  /// Idempotent; also called by the destructor.
  void Close();

  /// Crash simulation: discards pending (never-synced) writes, stops the
  /// fsync thread without a final sync, and *torn-truncates* the file at a
  /// random byte inside the never-acknowledged suffix — what the process
  /// dying mid-batch leaves on disk. Every acknowledged forced append
  /// survives; anything after the last fdatasync may be partially written.
  /// Appends concurrently blocked in their durability wait are woken and
  /// throw WalCrashedError.
  void CloseAbruptly();

  /// Re-opens this same log object after Crash(): resets the in-memory
  /// mirror, reruns the recovery scan (recovery_info() describes what this
  /// restart found, including any torn tail) and restarts the fsync
  /// thread. The LSN allocator restarts from the recovered prefix.
  Status Reopen();

  /// Rewrites the file to exactly the live in-memory mirror (stable view +
  /// volatile buffer) and fdatasyncs it, then resumes appending. Called
  /// under the engine lock after recovery replay has Truncate()d released
  /// transactions, so the file stops growing without bound across
  /// crash-restart cycles (Truncate alone only trims the mirror). All
  /// mirror records are durable on return.
  Status CompactAndResume();

  /// Seeds the RNG that picks the torn-truncate byte (deterministic tests).
  void SetTornWriteSeed(uint64_t seed) { tear_rng_.seed(seed); }

  /// True between Crash()/CloseAbruptly() and the next Reopen().
  bool crashed() const { return crashed_.load(); }

  /// Installs hooks called immediately before/after the blocking
  /// durability wait in a forced Append. The live site uses these to
  /// release/reacquire the engine lock so concurrent transactions can
  /// coalesce into one fdatasync.
  void SetWaitHooks(std::function<void()> before_wait,
                    std::function<void()> after_wait);

  // StableLog write path:
  uint64_t Append(const LogRecord& record, bool force) override;
  void Flush() override;
  void Crash() override;

  const WalRecoveryInfo& recovery_info() const { return recovery_; }
  const std::string& path() const { return path_; }

  /// Highest LSN known durable. Acquire pairs with the sync thread's
  /// release store after each fdatasync.
  uint64_t synced_lsn() const {
    return synced_lsn_watermark_.load(std::memory_order_acquire);
  }

  /// Physical fdatasync count (the denominator of group-commit
  /// effectiveness: forced_appends / fsyncs = batch factor). Relaxed:
  /// a monotonic stat, no ordering carried.
  uint64_t fsyncs() const {
    return fsyncs_.load(std::memory_order_relaxed);
  }

 private:
  /// Encodes the CRC frame for a mirror record.
  static std::vector<uint8_t> EncodeFrame(uint64_t lsn,
                                          const std::vector<uint8_t>& body);

  /// Appends the CRC frame for (lsn, body) to `out` in place — the
  /// allocation-free path Append() uses to extend the pending batch
  /// directly instead of building (and copying) a temporary frame.
  static void AppendFrameTo(std::vector<uint8_t>* out, uint64_t lsn,
                            const std::vector<uint8_t>& body);

  /// Blocks until everything enqueued up to `lsn` is durable, running the
  /// wait hooks around the wait. Folds sync-thread counters into stats_
  /// and promotes the mirror afterwards (caller holds the engine lock).
  /// Throws WalCrashedError if the wait was cut short by a crash.
  /// EXCLUDES: takes sync_mu_ itself, and the before-wait hook releases
  /// the engine lock — holding sync_mu_ here would deadlock the fsync
  /// thread against the wait.
  void AwaitDurable(uint64_t lsn) PRANY_EXCLUDES(sync_mu_);

  /// Shared back half of Open()/Reopen(): opens the file if needed, runs
  /// the recovery scan, truncates the torn tail and starts the fsync
  /// thread.
  Status OpenAndScan();

  /// Stops the fsync thread without syncing, torn-truncates the
  /// unacknowledged suffix and closes the file. Wakes durability waiters
  /// (they throw). Shared by Crash() and CloseAbruptly().
  void TearDownNoSync() PRANY_EXCLUDES(sync_mu_);

  void SyncThreadMain() PRANY_EXCLUDES(sync_mu_);

  /// Swaps the pending batch out of the queue, consuming the force/flush
  /// requests it answers. Sync-thread helper, split out so the analysis
  /// checks the queue handoff holds the lock.
  std::vector<uint8_t> TakePendingBatch(uint64_t* batch_lsn)
      PRANY_REQUIRES(sync_mu_);

  std::string path_;
  GroupCommitConfig config_;
  /// Deliberately unguarded: opened/closed/swapped only from the engine
  /// serialization domain (Open/Close/Crash/CompactAndResume run under
  /// the owning site's engine lock or during single-threaded teardown);
  /// the fsync thread writes through it only while `syncing_` is true,
  /// and CompactAndResume waits that flag out before swapping.
  int fd_ = -1;
  WalRecoveryInfo recovery_;
  std::atomic<bool> crashed_{false};
  /// Picks where inside the in-flight suffix the torn write stops.
  std::mt19937_64 tear_rng_{0x9e3779b97f4a7c15ull};
  std::function<void()> before_wait_;
  std::function<void()> after_wait_;

  // Sync-queue state, guarded by sync_mu_. The engine side appends frames
  // and waits on done_cv_; the sync thread batches, writes, fdatasyncs and
  // advances synced_lsn_.
  /// Wal-sync rank: taken under the engine lock (Append/Flush) and by the
  /// fsync thread; nothing is ever acquired while holding it.
  Mutex sync_mu_ PRANY_ACQUIRED_AFTER(lock_order::kQueueRank)
      PRANY_ACQUIRED_BEFORE(lock_order::kCrashRank);
  CondVar sync_cv_;  ///< Wakes the sync thread.
  CondVar done_cv_;  ///< Wakes durability waiters.
  std::vector<uint8_t> pending_bytes_ PRANY_GUARDED_BY(sync_mu_);
  uint64_t pending_max_lsn_ PRANY_GUARDED_BY(sync_mu_) = 0;
  size_t pending_forces_ PRANY_GUARDED_BY(sync_mu_) = 0;
  bool flush_requested_ PRANY_GUARDED_BY(sync_mu_) = false;
  uint64_t synced_lsn_ PRANY_GUARDED_BY(sync_mu_) = 0;
  bool running_ PRANY_GUARDED_BY(sync_mu_) = false;
  /// True while the sync thread is blocked on sync_cv_; appends skip the
  /// notify when it is busy writing (it re-checks the queue before it
  /// waits again, so no wakeup is lost).
  bool sync_waiting_ PRANY_GUARDED_BY(sync_mu_) = false;
  /// True while the sync thread is writing a batch outside sync_mu_;
  /// CompactAndResume waits for it before swapping the file.
  bool syncing_ PRANY_GUARDED_BY(sync_mu_) = false;
  /// File size covered by the last completed fdatasync — the boundary
  /// below which a crash must not tear.
  uint64_t durable_size_ PRANY_GUARDED_BY(sync_mu_) = 0;

  // Lock-free mirrors for cheap reads outside sync_mu_.
  /// Release/acquire: written by the sync thread after fdatasync, read by
  /// engine-side durability checks — seeing LSN L implies L's sync ran.
  std::atomic<uint64_t> synced_lsn_watermark_{0};
  /// Relaxed-only stats counters (see fsyncs()).
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> bytes_synced_{0};

  std::thread sync_thread_;
};

}  // namespace prany

#endif  // PRANY_WAL_FILE_STABLE_LOG_H_
