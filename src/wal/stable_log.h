// Per-site stable log with explicit forced / non-forced write semantics.
//
// Model: Append() places the encoded record in a volatile buffer; a
// *forced* append flushes the buffer (the new record and everything queued
// before it) to stable storage before returning, charging one forced-write
// I/O. A site crash discards the volatile buffer — non-forced records that
// were never flushed are simply gone, which is exactly the window the
// paper's presumptions are designed around (e.g. a PrA participant losing
// its non-forced abort record, §2).
//
// Garbage collection: a coordinator/participant calls ReleaseTransaction()
// for its *role* once a transaction may be forgotten; Truncate() then
// physically removes records whose writing role has released. Release is
// per-role because a dual-role site shares one log between its coordinator
// and participant engines: the participant enforcing an outcome must not
// collect the coordinator's initiation/decision records while the
// coordinator is still awaiting acks (and vice versa). The
// operational-correctness checker (Definition 1, clauses 2-3) asserts that
// every terminated transaction is eventually released on every site.

#ifndef PRANY_WAL_STABLE_LOG_H_
#define PRANY_WAL_STABLE_LOG_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "wal/log_record.h"

namespace prany {

/// I/O statistics for one site's log.
struct LogStats {
  uint64_t appends = 0;          ///< Records appended (any kind).
  uint64_t forced_appends = 0;   ///< Records appended with force=true.
  uint64_t flushes = 0;          ///< Physical forced-write I/Os.
  uint64_t bytes_flushed = 0;
  uint64_t records_truncated = 0;
};

/// One site's stable log. The base class is the in-memory simulator
/// implementation; FileStableLog overrides the write path (Append / Flush /
/// Crash) with a real append-only file and group-commit fsync thread while
/// reusing the in-memory mirror for reads, GC and recovery analysis.
class StableLog {
 public:
  /// `metrics` may be null; when set, counters are recorded under
  /// "wal.<name>" plus the per-site prefix chosen by the harness.
  explicit StableLog(std::string metric_prefix = "wal",
                     MetricsRegistry* metrics = nullptr);

  virtual ~StableLog() = default;

  StableLog(const StableLog&) = delete;
  StableLog& operator=(const StableLog&) = delete;

  /// Connects this log to a trace sink. `site` tags emitted events and
  /// `clock` supplies their timestamps (the log itself has no notion of
  /// simulated time). Installed by the owning Site.
  void BindTrace(TraceLog* trace, SiteId site,
                 std::function<SimTime()> clock);

  /// Appends `record`; assigns and returns its LSN. When `force` is true
  /// the record (and all earlier buffered records) is durable on return.
  virtual uint64_t Append(const LogRecord& record, bool force);

  /// Appends `record` as a *forced* write whose durability wait is
  /// detached: returns the LSN without blocking and invokes `on_durable`
  /// exactly once after the record (and everything buffered before it)
  /// is durable — or never, if a crash discards the batch first (the
  /// record was not durable, so the action the callback guards must not
  /// happen; recovery re-drives it from the stable prefix). The base
  /// (simulator) implementation is synchronous: force, then run the
  /// callback inline, so sim schedules are unchanged. Durable
  /// implementations may run the callback on their sync thread, outside
  /// any engine lock — it must only do thread-safe work.
  virtual uint64_t AppendPipelined(const LogRecord& record,
                                   std::function<void()> on_durable);

  /// Folds any asynchronously-completed durability into the readable
  /// mirror (see FileStableLog::ReconcileDurability). No-op for the
  /// in-memory log, whose Append already completes synchronously.
  virtual void ReconcileDurability() {}

  /// Flushes the volatile buffer (group write). No-op if empty.
  virtual void Flush();

  /// Simulates a crash: the volatile buffer is lost. Stable records
  /// survive.
  virtual void Crash();

  /// Decoded stable records in LSN order. A corrupted stable record is a
  /// programming error (stable storage does not decay in the fail-stop
  /// model) and trips a CHECK.
  std::vector<LogRecord> StableRecords() const;

  /// Decoded records still in the volatile buffer, in append order. These
  /// are the records a crash right now would lose.
  std::vector<LogRecord> BufferedRecords() const;

  /// True if some stable record for `txn` exists (post-Truncate view).
  bool HasRecordsFor(TxnId txn) const;

  /// Marks `txn`'s records written by `side` as garbage-collectible.
  void ReleaseTransaction(TxnId txn, LogSide side);

  /// Convenience: releases both roles' records (single-role harnesses and
  /// tests; a dual-role engine must release only its own side).
  void ReleaseTransaction(TxnId txn) {
    ReleaseTransaction(txn, LogSide::kCoordinator);
    ReleaseTransaction(txn, LogSide::kParticipant);
  }

  /// Physically removes records whose writing role released them; returns
  /// how many records were dropped.
  size_t Truncate();

  /// Transactions that still have stable records and were never released.
  /// C2PC's failure of Definition 1 shows up as this set growing without
  /// bound.
  std::set<TxnId> UnreleasedTxns() const;

  /// Number of stable (not yet truncated) records.
  size_t StableSize() const { return stable_.size(); }

  /// Number of buffered, not-yet-durable records.
  size_t VolatileSize() const { return buffer_.size(); }

  const LogStats& stats() const { return stats_; }

 protected:
  struct StoredRecord {
    uint64_t lsn;
    TxnId txn;
    LogSide side;
    std::vector<uint8_t> bytes;
  };

  /// True if the role that wrote `rec` has released its transaction.
  bool ReleasedFor(const StoredRecord& rec) const {
    const auto& released = rec.side == LogSide::kCoordinator
                               ? released_coord_
                               : released_part_;
    return released.count(rec.txn) > 0;
  }

  /// Emits `event` (stamped with clock time and site) if tracing is bound
  /// and enabled.
  void EmitTrace(TraceEvent event) const;

  /// Shared front half of Append: stamps the next LSN, places the encoded
  /// record in the volatile mirror, and does the append-side accounting
  /// (stats, metrics, WAL_APPEND trace). Returns the assigned LSN.
  uint64_t StampAndBuffer(const LogRecord& record, bool force);

  /// Moves mirror records with lsn <= `lsn` from the volatile buffer to the
  /// stable view and emits a WAL_FORCE trace event. Used by durable
  /// implementations once those records are physically synced. Does not
  /// touch flush statistics (the implementation counts physical syncs).
  void PromoteStableUpTo(uint64_t lsn);

  /// Recovery helper: re-installs an already-durable record into the stable
  /// mirror and advances the LSN allocator past it.
  void RestoreStableRecord(uint64_t lsn, TxnId txn,
                           std::vector<uint8_t> bytes);

  /// Recovery helper: wipes the in-memory mirror (stable view, volatile
  /// buffer, released set) and rewinds the LSN allocator, ready for a fresh
  /// recovery scan to Restore records. Durable implementations use this
  /// when re-opening the same log object after a crash.
  void ResetMirrorForRecovery() {
    stable_.clear();
    buffer_.clear();
    released_coord_.clear();
    released_part_.clear();
    next_lsn_ = 1;
  }

  /// Lazily resolved registry handles for the per-append/per-truncate
  /// counters, so the hot write path never rebuilds key strings or takes
  /// the registry mutex (see MetricsRegistry handle contract). All null
  /// when `metrics_` is null.
  MetricsRegistry::Counter* AppendsCounter();
  MetricsRegistry::Counter* ForcedAppendsCounter();
  MetricsRegistry::Counter* FlushesCounter();
  MetricsRegistry::Counter* TruncatedCounter();
  MetricsRegistry::Counter* AppendTypeCounter(LogRecordType type);

  std::string metric_prefix_;
  MetricsRegistry* metrics_;
  TraceLog* trace_ = nullptr;
  SiteId trace_site_ = kInvalidSite;
  std::function<SimTime()> clock_;
  uint64_t next_lsn_ = 1;
  std::vector<StoredRecord> stable_;
  std::vector<StoredRecord> buffer_;
  // Hash sets: release marks accumulate for every forgotten transaction,
  // and Truncate() probes them once per stable record per call — with
  // ordered sets those probes walk an ever-deepening tree and dominate
  // per-commit CPU in the live runtime.
  std::unordered_set<TxnId> released_coord_;
  std::unordered_set<TxnId> released_part_;
  LogStats stats_;

 private:
  static constexpr size_t kLogRecordTypes = 5;
  MetricsRegistry::Counter* m_appends_ = nullptr;
  MetricsRegistry::Counter* m_forced_appends_ = nullptr;
  MetricsRegistry::Counter* m_flushes_ = nullptr;
  MetricsRegistry::Counter* m_truncated_ = nullptr;
  MetricsRegistry::Counter* m_append_type_[kLogRecordTypes] = {};
};

}  // namespace prany

#endif  // PRANY_WAL_STABLE_LOG_H_
