#include "wal/log_analyzer.h"

namespace prany {

std::map<TxnId, TxnLogSummary> LogAnalyzer::Analyze(
    const std::vector<LogRecord>& records) {
  std::map<TxnId, TxnLogSummary> out;
  for (const LogRecord& rec : records) {
    TxnLogSummary& summary = out[rec.txn];
    summary.txn = rec.txn;
    switch (rec.type) {
      case LogRecordType::kInitiation:
        summary.has_initiation = true;
        summary.participants = rec.participants;
        summary.commit_protocol = rec.commit_protocol;
        break;
      case LogRecordType::kPrepared:
        summary.has_prepared = true;
        summary.coordinator = rec.coordinator;
        break;
      case LogRecordType::kCommit:
      case LogRecordType::kAbort:
        summary.decision = rec.DecisionOutcome();
        if (rec.side == LogSide::kCoordinator) {
          summary.coord_decision = rec.DecisionOutcome();
        }
        // PrN/PrA coordinator decision records carry the participant list
        // (they have no initiation record); participant-side decision
        // records leave it empty.
        if (!rec.participants.empty()) {
          summary.participants = rec.participants;
        }
        break;
      case LogRecordType::kEnd:
        summary.has_end = true;
        break;
    }
  }
  return out;
}

}  // namespace prany
