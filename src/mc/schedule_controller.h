// Schedule controller: drives one System execution under an explicit
// choice vector, turning the simulator into a controlled-nondeterminism
// machine for the model checker.
//
// Mechanics: a Network send interceptor captures every encoded message
// into per-directed-link FIFO queues instead of scheduling delivery, and a
// per-site crash-probe handler turns every CrashPoint probe into a binary
// choice. Execution alternates between draining all zero-delay simulator
// work (deterministic continuations) and consuming one choice from the
// vector at each nondeterministic point:
//   - deliver the head frame of some link (preserving per-link FIFO —
//     the session ordering the protocols assume, see net/network.h),
//   - drop or duplicate a head frame (while the loss/dup budgets last),
//   - advance time to the next pending simulator event and fire it
//     (timeouts, recoveries — a "timer" transition), or
//   - crash / don't crash at a probed CrashPoint.
// Choices beyond the end of the vector default to 0, which always means
// "deliver the first available message in deterministic order" (or
// "don't crash"), so a prefix describes a full execution.

#ifndef PRANY_MC_SCHEDULE_CONTROLLER_H_
#define PRANY_MC_SCHEDULE_CONTROLLER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mc/fingerprint.h"
#include "net/message.h"
#include "protocol/crash_points.h"

namespace prany {

class System;

/// Exploration budgets. The per-execution knobs bound a single controlled
/// run; the whole-exploration knobs bound the explorer's search.
struct McBudget {
  // Per-execution bounds. The floor for max_choice_points is set by the
  // longest forced tail: a coordinator resending a decision to a crashed
  // site burns one (single-option) choice point per resend interval for
  // the whole downtime (~50 at the default timings) before recovery can
  // unblock it, and a useful execution must reach past that.
  uint32_t max_choice_points = 80;
  uint64_t max_steps = 900;
  uint32_t loss_budget = 0;        ///< Messages that may be dropped.
  uint32_t dup_budget = 0;         ///< Messages that may be duplicated.
  uint32_t crash_budget = 1;       ///< Crash probes that may fire.
  uint32_t timer_choice_budget = 1;  ///< Optional (non-forced) timer fires.
  SimDuration crash_downtime = 1'000'000;

  // Whole-exploration bounds (consumed by McExplorer).
  uint64_t max_executions = 4000;
  bool dedup = true;       ///< (state, action) fingerprint deduplication.
  bool sleep_sets = true;  ///< Sleep-set partial-order reduction.
};

/// Named presets for the --depth-budget flag.
McBudget SmallBudget();
McBudget MediumBudget();
McBudget LargeBudget();
bool ParseBudget(const std::string& name, McBudget* out);

/// Kind of one alternative at a choice point.
enum class McChoiceKind : uint8_t {
  kDeliver = 0,  ///< Deliver the head frame of a link.
  kDrop,         ///< Lose the head frame of a link.
  kDuplicate,    ///< Deliver a copy of a head frame, leaving the original.
  kTimer,        ///< Advance to the next pending simulator event.
  kNoCrash,      ///< Survive a probed crash point.
  kCrash,        ///< Crash at a probed crash point.
};
std::string ToString(McChoiceKind kind);

/// One alternative at a choice point.
struct McTransition {
  McChoiceKind kind = McChoiceKind::kDeliver;
  SiteId from = kInvalidSite;  ///< Link source (message kinds).
  SiteId to = kInvalidSite;    ///< Link target, or the probed site.
  MessageType msg_type = MessageType::kPrepare;
  TxnId txn = kInvalidTxn;
  CrashPoint point = CrashPoint::kPartOnPrepareReceived;  ///< Crash kinds.
  uint64_t payload_hash = 0;  ///< Hash of the affected wire frame.

  /// Stable identity for sleep sets and (state, action) deduplication.
  uint64_t Id() const;
  std::string Describe() const;
};

/// Conservative independence relation for the sleep-set reduction: two
/// transitions commute when they touch disjoint sites. Message transitions
/// execute entirely at their destination; crash choices at the probed
/// site. kTimer is dependent with everything (it moves global time, and
/// timeout behaviour can change with any site's state).
bool Independent(const McTransition& a, const McTransition& b);

/// One decided choice point of an execution.
struct McChoicePoint {
  uint32_t chosen = 0;
  uint64_t fingerprint = 0;  ///< State fingerprint before choosing.
  std::vector<McTransition> options;
};

/// Result of one controlled execution.
struct McExecution {
  std::vector<McChoicePoint> points;
  bool quiescent = false;  ///< Message pool and event queue both drained.
  bool truncated = false;  ///< Hit max_choice_points or max_steps.
  uint64_t steps = 0;
  uint64_t run_hash = 0;    ///< RunHash of the final history.
  uint64_t trace_hash = 0;  ///< TraceHash of the final trace.
};

/// Takes over a freshly built (not yet run) System and executes it under a
/// choice vector. One controller drives one execution.
class ScheduleController {
 public:
  ScheduleController(System* system, McBudget budget);
  ~ScheduleController();

  ScheduleController(const ScheduleController&) = delete;
  ScheduleController& operator=(const ScheduleController&) = delete;

  McExecution Run(const std::vector<uint32_t>& choices);

 private:
  using LinkKey = std::pair<SiteId, SiteId>;

  /// Runs every simulator event scheduled for the current instant
  /// (deterministic continuations: submits, forced-write completions,
  /// zero-delay sends).
  void DrainNow();

  bool AllLinksEmpty() const;
  std::vector<McTransition> EnumerateOptions();
  McTransition TransitionFor(McChoiceKind kind, const LinkKey& key,
                             const std::vector<uint8_t>& wire) const;
  uint32_t NextChoice(std::vector<McTransition> options);
  void Apply(const McTransition& t);
  std::optional<SimDuration> OnCrashProbe(SiteId site, CrashPoint point,
                                          TxnId txn);
  McBudgetsUsed Used() const;

  System* system_;
  McBudget budget_;
  std::map<LinkKey, std::deque<std::vector<uint8_t>>> links_;
  const std::vector<uint32_t>* choices_ = nullptr;
  size_t cursor_ = 0;
  uint32_t loss_used_ = 0;
  uint32_t dup_used_ = 0;
  uint32_t crash_used_ = 0;
  uint32_t timer_used_ = 0;
  McExecution exec_;
};

}  // namespace prany

#endif  // PRANY_MC_SCHEDULE_CONTROLLER_H_
