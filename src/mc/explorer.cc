#include "mc/explorer.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/status.h"
#include "common/string_util.h"
#include "harness/system.h"
#include "history/wal_discipline_checker.h"

namespace prany {

namespace {

/// A schedule prefix queued for execution, with the sleep set valid at the
/// state where its last (branching) choice was made.
struct PendingRun {
  std::vector<uint32_t> prefix;
  std::vector<McTransition> sleep;
};

bool InSleepSet(const std::vector<McTransition>& sleep,
                const McTransition& t) {
  const uint64_t id = t.Id();
  return std::any_of(sleep.begin(), sleep.end(),
                     [id](const McTransition& z) { return z.Id() == id; });
}

std::vector<uint32_t> TrimTrailingZeros(std::vector<uint32_t> v) {
  while (!v.empty() && v.back() == 0) v.pop_back();
  return v;
}

/// Greedy delta-debugging of a violating schedule: find the shortest
/// violating prefix, then zero out remaining non-default choices one at a
/// time, keeping every candidate that still trips the same oracle.
std::vector<uint32_t> Minimize(const McConfig& config,
                               const std::vector<uint32_t>& choices,
                               const std::string& oracle, McStats* stats) {
  auto violates = [&](const std::vector<uint32_t>& cand) {
    ++stats->minimization_runs;
    return McExplorer::RunSchedule(config, cand).HasOracle(oracle);
  };
  std::vector<uint32_t> cur = TrimTrailingZeros(choices);
  for (size_t len = 0; len < cur.size(); ++len) {
    std::vector<uint32_t> cand(cur.begin(),
                               cur.begin() + static_cast<long>(len));
    if (violates(cand)) {
      cur = std::move(cand);
      break;
    }
  }
  for (size_t i = cur.size(); i-- > 0;) {
    if (cur[i] == 0) continue;
    std::vector<uint32_t> cand = cur;
    cand[i] = 0;
    if (violates(cand)) cur = std::move(cand);
  }
  return TrimTrailingZeros(cur);
}

}  // namespace

std::string McConfig::Describe() const {
  std::string parts;
  for (size_t i = 0; i < participants.size(); ++i) {
    if (i > 0) parts += ",";
    parts += ToString(participants[i]);
  }
  std::string vote_str;
  for (const auto& [site, vote] : votes) {
    if (!vote_str.empty()) vote_str += ",";
    vote_str += StrFormat("%u:%s", site, ToString(vote).c_str());
  }
  std::string out = ToString(coordinator);
  if (coordinator == ProtocolKind::kU2PC) {
    out += StrFormat("(native=%s)", ToString(u2pc_native).c_str());
  }
  out += StrFormat(" participants=[%s]", parts.c_str());
  if (!vote_str.empty()) out += StrFormat(" votes={%s}", vote_str.c_str());
  out += StrFormat(" seed=%llu", static_cast<unsigned long long>(seed));
  return out;
}

bool McRunReport::HasOracle(const std::string& oracle) const {
  return std::any_of(
      violations.begin(), violations.end(),
      [&oracle](const McViolation& v) { return v.oracle == oracle; });
}

bool McResult::HasOracle(const std::string& oracle) const {
  return std::any_of(
      counterexamples.begin(), counterexamples.end(),
      [&oracle](const McCounterexample& c) { return c.oracle == oracle; });
}

McExplorer::McExplorer(McConfig config) : config_(std::move(config)) {}

McRunReport McExplorer::RunSchedule(const McConfig& config,
                                    const std::vector<uint32_t>& choices,
                                    std::vector<TraceEvent>* trace_out,
                                    McExecution* exec_out) {
  SystemConfig scfg;
  scfg.seed = config.seed;
  scfg.max_events = 5'000'000;
  System system(scfg);
  // The WAL-discipline oracle reads the structured trace.
  system.sim().trace().Enable();
  system.AddSite(ProtocolKind::kPrN, config.coordinator, config.u2pc_native);
  std::vector<SiteId> participant_sites;
  std::map<SiteId, ProtocolKind> participant_protocols;
  for (ProtocolKind p : config.participants) {
    Site* site = system.AddSite(p, ProtocolKind::kPrAny);
    participant_sites.push_back(site->id());
    participant_protocols[site->id()] = p;
  }
  Transaction txn = system.MakeTransaction(0, participant_sites, config.votes);
  system.SubmitAt(0, txn);

  ScheduleController controller(&system, config.budget);
  McExecution exec = controller.Run(choices);

  McRunReport report;
  report.quiescent = exec.quiescent;
  report.truncated = exec.truncated;
  report.run_hash = exec.run_hash;
  report.trace_hash = exec.trace_hash;

  AtomicityReport atomicity = system.CheckAtomicity();
  for (const AtomicityViolation& v : atomicity.violations) {
    report.violations.push_back(McViolation{"atomicity", v.description});
  }
  SafeStateReport safe = system.CheckSafeState();
  for (const SafeStateViolation& v : safe.violations) {
    report.violations.push_back(McViolation{"safe-state", v.description});
  }
  WalDisciplineReport wal = WalDisciplineChecker::Check(
      system.sim().trace().events(), participant_protocols);
  for (const WalViolation& v : wal.violations) {
    report.violations.push_back(McViolation{
        "wal-discipline",
        StrFormat("[%s] %s", v.rule.c_str(), v.description.c_str())});
  }
  // Clauses 2/3 of Definition 1 are meaningful only at quiescence: a
  // truncated run legitimately leaves tables populated.
  if (exec.quiescent) {
    OperationalReport op = system.CheckOperational();
    if (!op.coordinators_forget || !op.participants_forget) {
      for (const std::string& problem : op.problems) {
        report.violations.push_back(McViolation{"operational", problem});
      }
    }
  }

  if (trace_out != nullptr) *trace_out = system.sim().trace().events();
  if (exec_out != nullptr) *exec_out = std::move(exec);
  return report;
}

McResult McExplorer::Explore() {
  McResult result;
  result.config = config_;

  // Static presumption lint over this configuration's PCP pairing.
  {
    PcpTable pcp;
    for (size_t i = 0; i < config_.participants.size(); ++i) {
      Status s = pcp.RegisterSite(static_cast<SiteId>(i + 1),
                                  config_.participants[i]);
      PRANY_CHECK_MSG(s.ok(), s.ToString());
    }
    result.lint =
        LintPresumptions(pcp, config_.coordinator, config_.u2pc_native);
  }

  const McBudget& budget = config_.budget;
  std::set<std::string> reported_oracles;

  // Determinism smoke: the default schedule, executed twice, must agree
  // bit-for-bit on history and trace digests.
  {
    McRunReport first = RunSchedule(config_, {});
    McRunReport second = RunSchedule(config_, {});
    result.stats.executions += 2;
    if (first.run_hash != second.run_hash ||
        first.trace_hash != second.trace_hash) {
      McCounterexample ce;
      ce.oracle = "determinism";
      ce.description =
          "default schedule produced different history/trace digests on "
          "re-execution";
      ce.run_hash = first.run_hash;
      ce.replay_deterministic = false;
      result.counterexamples.push_back(std::move(ce));
      reported_oracles.insert("determinism");
    }
  }

  std::vector<PendingRun> stack;
  stack.push_back(PendingRun{});
  std::set<std::pair<uint64_t, uint64_t>> seen;  // (state, action)

  auto build_counterexample = [&](const McViolation& v,
                                  const std::vector<uint32_t>& discovered) {
    McCounterexample ce;
    ce.oracle = v.oracle;
    ce.description = v.description;
    ce.original_choices = discovered;
    ce.choices = Minimize(config_, discovered, v.oracle, &result.stats);
    // Replay the minimized schedule twice: once for the human-readable
    // step list and the final description, once to confirm determinism.
    McExecution final_exec;
    McRunReport replay = RunSchedule(config_, ce.choices, nullptr, &final_exec);
    McRunReport replay2 = RunSchedule(config_, ce.choices);
    result.stats.minimization_runs += 2;
    ce.replay_deterministic = replay.run_hash == replay2.run_hash &&
                              replay.trace_hash == replay2.trace_hash;
    ce.run_hash = replay.run_hash;
    for (const McViolation& rv : replay.violations) {
      if (rv.oracle == v.oracle) {
        ce.description = rv.description;
        break;
      }
    }
    for (const McChoicePoint& point : final_exec.points) {
      ce.schedule.push_back(point.options[point.chosen].Describe());
    }
    return ce;
  };

  while (!stack.empty()) {
    if (result.stats.executions >= budget.max_executions) {
      result.stats.execution_budget_hit = true;
      break;
    }
    PendingRun pending = std::move(stack.back());
    stack.pop_back();

    McExecution exec;
    McRunReport report = RunSchedule(config_, pending.prefix, nullptr, &exec);
    ++result.stats.executions;
    result.stats.choice_points += exec.points.size();
    if (exec.truncated) ++result.stats.truncated_runs;
    if (exec.quiescent) ++result.stats.quiescent_runs;

    for (const McViolation& v : report.violations) {
      if (reported_oracles.count(v.oracle) > 0) continue;
      reported_oracles.insert(v.oracle);
      result.counterexamples.push_back(
          build_counterexample(v, pending.prefix));
    }

    // Expand non-default alternatives at every point this run decided
    // beyond its prefix; thread the sleep set through the taken
    // transitions. The pending sleep set is valid at the state of the
    // prefix's last (branching) point, so propagation starts there while
    // expansion starts one point later (the parent already expanded the
    // branch point itself).
    const size_t prefix_len = pending.prefix.size();
    std::vector<McTransition> sleep = std::move(pending.sleep);
    const size_t start = prefix_len == 0 ? 0 : prefix_len - 1;
    for (size_t i = start; i < exec.points.size(); ++i) {
      const McChoicePoint& point = exec.points[i];
      const McTransition& taken = point.options[point.chosen];
      if (i >= prefix_len) {
        std::vector<McTransition> pushed;
        for (uint32_t c = 0; c < point.options.size(); ++c) {
          if (c == point.chosen) continue;
          const McTransition& alt = point.options[c];
          if (budget.sleep_sets && InSleepSet(sleep, alt)) {
            ++result.stats.sleep_skips;
            continue;
          }
          if (budget.dedup &&
              !seen.insert({point.fingerprint, alt.Id()}).second) {
            ++result.stats.dedup_skips;
            continue;
          }
          PendingRun child;
          child.prefix.reserve(i + 1);
          for (size_t j = 0; j < i; ++j) {
            child.prefix.push_back(exec.points[j].chosen);
          }
          child.prefix.push_back(c);
          child.sleep = sleep;
          child.sleep.push_back(taken);
          for (const McTransition& p : pushed) child.sleep.push_back(p);
          stack.push_back(std::move(child));
          pushed.push_back(alt);
        }
      }
      std::vector<McTransition> next_sleep;
      next_sleep.reserve(sleep.size());
      for (const McTransition& z : sleep) {
        if (Independent(z, taken)) next_sleep.push_back(z);
      }
      sleep = std::move(next_sleep);
    }
  }
  if (!result.stats.execution_budget_hit) {
    result.stats.frontier_exhausted = true;
  }
  return result;
}

std::vector<McConfig> StandardModelCheckConfigs(
    ProtocolKind protocol, uint32_t participants, const McBudget& budget,
    uint64_t seed, std::optional<ProtocolKind> native_filter) {
  std::vector<ProtocolKind> mix;
  if (IsBaseProtocol(protocol)) {
    // A base coordinator over a mismatched participant set cannot even
    // quiesce (e.g. PrN awaits acks a PrC participant never sends for
    // commit); that pairing is the presumption lint's territory. Explore
    // the self-consistent homogeneous deployment.
    mix.assign(participants, protocol);
  } else {
    mix = {ProtocolKind::kPrA, ProtocolKind::kPrC};
    if (participants >= 3) mix.push_back(ProtocolKind::kPrN);
    while (mix.size() < participants) mix.push_back(ProtocolKind::kPrN);
    mix.resize(participants);
  }

  std::vector<ProtocolKind> natives = {ProtocolKind::kPrN};
  if (protocol == ProtocolKind::kU2PC) {
    if (native_filter.has_value()) {
      natives = {*native_filter};
    } else {
      natives = {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC};
    }
  }

  std::vector<std::map<SiteId, Vote>> vote_variants;
  vote_variants.push_back({});  // all yes
  for (uint32_t i = 0; i < participants; ++i) {
    vote_variants.push_back({{static_cast<SiteId>(i + 1), Vote::kNo}});
  }

  std::vector<McConfig> out;
  for (ProtocolKind native : natives) {
    for (const auto& votes : vote_variants) {
      McConfig config;
      config.coordinator = protocol;
      config.u2pc_native = native;
      config.participants = mix;
      config.votes = votes;
      config.seed = seed;
      config.budget = budget;
      out.push_back(std::move(config));
    }
  }
  return out;
}

}  // namespace prany
