// Replayable counterexample scenario files.
//
// A scenario pins everything a choice vector's interpretation depends on:
// the configuration (coordinator, native, participants, planned votes,
// seed) and the full execution budget (choice indexes are positions in the
// option list EnumerateOptions produces, which the budgets shape). The
// format is line-based `key=value` with `#` comments, so counterexamples
// are diffable and hand-editable:
//
//   # prany_check counterexample
//   protocol=U2PC
//   native=PrC
//   participants=PrA,PrC
//   votes=2:no
//   seed=1
//   max_choice_points=80
//   ...
//   choices=0,0,1
//   oracle=atomicity
//   description=txn 1: site 1 enforced commit but site 2 aborted

#ifndef PRANY_MC_SCENARIO_FILE_H_
#define PRANY_MC_SCENARIO_FILE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mc/explorer.h"

namespace prany {

/// One replayable scenario: a configuration plus a choice vector, with the
/// oracle and description it was recorded for.
struct McScenario {
  McConfig config;
  std::vector<uint32_t> choices;
  std::string oracle;
  std::string description;
};

/// Renders a scenario in the key=value format above.
std::string SerializeScenario(const McScenario& scenario);

/// Parses the key=value format. Unknown keys are errors (they would change
/// replay semantics silently); missing keys keep their defaults.
Result<McScenario> ParseScenario(const std::string& text);

/// Outcome of replaying a scenario.
struct ReplayOutcome {
  /// The recorded oracle fired again (always true for a faithful replay of
  /// a deterministic counterexample).
  bool reproduced = false;
  McRunReport report;
};

/// Re-executes the scenario's schedule and re-evaluates every oracle.
ReplayOutcome ReplayScenario(const McScenario& scenario,
                             std::vector<TraceEvent>* trace_out = nullptr);

}  // namespace prany

#endif  // PRANY_MC_SCENARIO_FILE_H_
