// State fingerprints and execution digests for the model checker.
//
// The explorer dedupes (state, next-action) pairs by a 64-bit FNV-1a
// fingerprint of the *protocol-relevant* state: the canonicalized history,
// each site's volatile and stable state, the captured in-flight messages,
// the pending simulator events (relative to now) and the consumed
// exploration budgets. Absolute simulated time is deliberately excluded so
// schedules that reach the same protocol state along different timings
// coalesce. The fingerprint is approximate — a hash collision can prune a
// genuinely new state — which is why deduplication is an optional budget
// knob (McBudget::dedup) and the soundness discussion lives in
// docs/MODEL_CHECKING.md.

#ifndef PRANY_MC_FINGERPRINT_H_
#define PRANY_MC_FINGERPRINT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/trace.h"
#include "history/event_log.h"

namespace prany {

class System;

/// Incremental FNV-1a 64-bit hasher.
class Fnv1a {
 public:
  void Bytes(const void* data, size_t n);
  void U64(uint64_t v);
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = 14695981039346656037ull;
};

/// Exploration budget already consumed along the current execution; part
/// of the state because it changes which transitions remain enabled.
struct McBudgetsUsed {
  uint32_t loss = 0;
  uint32_t dup = 0;
  uint32_t crash = 0;
  uint32_t timer = 0;
};

/// Order-independent hash of one history event with seq and time stripped.
uint64_t HashSigEventCanonical(const SigEvent& e);

/// Digest of the full ordered history (seq, time and all) — the
/// determinism oracle compares this across re-executions.
uint64_t RunHash(const EventLog& history);

/// Digest of the structured trace (order-sensitive, times included).
uint64_t TraceHash(const std::vector<TraceEvent>& trace);

/// Fingerprint of the complete model-checking state: history (canonical
/// multiset), per-site volatile + stable state, captured wire frames per
/// link, pending simulator events (relative times), and used budgets.
uint64_t StateFingerprint(
    System& system,
    const std::map<std::pair<SiteId, SiteId>,
                   std::deque<std::vector<uint8_t>>>& links,
    const McBudgetsUsed& used);

}  // namespace prany

#endif  // PRANY_MC_FINGERPRINT_H_
