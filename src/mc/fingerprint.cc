#include "mc/fingerprint.h"

#include "harness/system.h"
#include "txn/protocol_table.h"
#include "wal/log_record.h"

namespace prany {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t HashBytes(const std::vector<uint8_t>& bytes) {
  Fnv1a h;
  h.U64(bytes.size());
  h.Bytes(bytes.data(), bytes.size());
  return h.digest();
}

void HashOutcome(Fnv1a* h, const std::optional<Outcome>& o) {
  h->U64(o.has_value() ? static_cast<uint64_t>(*o) + 1 : 0);
}

void HashSiteSet(Fnv1a* h, const std::set<SiteId>& sites) {
  h->U64(sites.size());
  for (SiteId s : sites) h->U64(s);
}

void HashCoordEntry(Fnv1a* h, const CoordTxnState& st) {
  h->U64(st.txn);
  h->U64(static_cast<uint64_t>(st.mode));
  h->U64(static_cast<uint64_t>(st.phase));
  HashOutcome(h, st.decision);
  h->U64(st.decision_durable ? 1 : 0);
  HashSiteSet(h, st.yes_votes);
  HashSiteSet(h, st.no_votes);
  HashSiteSet(h, st.read_only);
  HashSiteSet(h, st.pending_acks);
  h->U64(st.acks_expected ? 1 : 0);
  h->U64(st.participants.size());
  for (const ParticipantInfo& p : st.participants) {
    h->U64(p.site);
    h->U64(static_cast<uint64_t>(p.protocol));
  }
}

}  // namespace

void Fnv1a::Bytes(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= kFnvPrime;
  }
}

void Fnv1a::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (i * 8)) & 0xff;
    h_ *= kFnvPrime;
  }
}

uint64_t HashSigEventCanonical(const SigEvent& e) {
  Fnv1a h;
  h.U64(static_cast<uint64_t>(e.type));
  h.U64(e.site);
  h.U64(e.txn);
  h.U64(e.peer);
  HashOutcome(&h, e.outcome);
  h.U64(e.by_presumption ? 1 : 0);
  return h.digest();
}

uint64_t RunHash(const EventLog& history) {
  Fnv1a h;
  h.U64(history.events().size());
  for (const SigEvent& e : history.events()) {
    h.U64(e.seq);
    h.U64(e.time);
    h.U64(static_cast<uint64_t>(e.type));
    h.U64(e.site);
    h.U64(e.txn);
    h.U64(e.peer);
    HashOutcome(&h, e.outcome);
    h.U64(e.by_presumption ? 1 : 0);
  }
  return h.digest();
}

uint64_t TraceHash(const std::vector<TraceEvent>& trace) {
  Fnv1a h;
  h.U64(trace.size());
  for (const TraceEvent& e : trace) {
    h.U64(e.time);
    h.U64(static_cast<uint64_t>(e.kind));
    h.U64(e.site);
    h.U64(e.txn);
    h.U64(e.peer);
    h.U64(e.protocol.has_value() ? static_cast<uint64_t>(*e.protocol) + 1
                                 : 0);
    HashOutcome(&h, e.outcome);
    h.U64((e.forced ? 1 : 0) | (e.by_presumption ? 2 : 0));
    h.U64(e.value);
    h.Str(e.label);
    h.Str(e.detail);
  }
  return h.digest();
}

uint64_t StateFingerprint(
    System& system,
    const std::map<std::pair<SiteId, SiteId>,
                   std::deque<std::vector<uint8_t>>>& links,
    const McBudgetsUsed& used) {
  Fnv1a h;

  // History as an order-insensitive multiset (unsigned sum of per-event
  // hashes): schedules reaching the same protocol state through different
  // event interleavings coalesce.
  uint64_t history_sum = 0;
  for (const SigEvent& e : system.history().events()) {
    history_sum += HashSigEventCanonical(e);
  }
  h.U64(history_sum);
  h.U64(system.history().events().size());

  const SimTime now = system.sim().Now();
  for (SiteId id = 0; id < static_cast<SiteId>(system.site_count()); ++id) {
    Site* site = system.site(id);
    h.U64(id);
    h.U64(site->IsUp() ? 1 : 0);
    h.U64(static_cast<uint64_t>(site->participant_protocol()));

    const CoordinatorBase* coord = site->coordinator();
    h.U64(static_cast<uint64_t>(coord->kind()));
    const ProtocolTable& table = coord->table();
    h.U64(table.Size());
    for (TxnId txn : table.TxnIds()) {
      const CoordTxnState* st = table.Find(txn);
      if (st != nullptr) HashCoordEntry(&h, *st);
    }

    std::vector<TxnId> in_doubt = site->participant()->InDoubtTxns();
    h.U64(in_doubt.size());
    for (TxnId txn : in_doubt) h.U64(txn);

    const StableLog* wal = site->wal();
    std::vector<LogRecord> stable = wal->StableRecords();
    h.U64(stable.size());
    for (const LogRecord& rec : stable) h.U64(HashBytes(rec.Encode()));
    std::vector<LogRecord> buffered = wal->BufferedRecords();
    h.U64(buffered.size());
    for (const LogRecord& rec : buffered) h.U64(HashBytes(rec.Encode()));
  }

  // Captured in-flight frames: order-sensitive within a link (FIFO),
  // order-insensitive across links (the map iterates sorted anyway, but an
  // unsigned sum keeps the property explicit).
  uint64_t links_sum = 0;
  for (const auto& [key, queue] : links) {
    Fnv1a lh;
    lh.U64(key.first);
    lh.U64(key.second);
    lh.U64(queue.size());
    for (const std::vector<uint8_t>& wire : queue) lh.U64(HashBytes(wire));
    links_sum += lh.digest();
  }
  h.U64(links_sum);

  // Pending simulator events by relative firing time: two states that
  // differ only in absolute time hash alike.
  std::vector<std::pair<SimTime, std::string>> pending =
      system.sim().PendingEventSummaries();
  h.U64(pending.size());
  for (const auto& [when, label] : pending) {
    h.U64(when - now);
    h.Str(label);
  }

  h.U64(used.loss);
  h.U64(used.dup);
  h.U64(used.crash);
  h.U64(used.timer);
  return h.digest();
}

}  // namespace prany
