#include "mc/schedule_controller.h"

#include "common/status.h"
#include "common/string_util.h"
#include "harness/system.h"

namespace prany {

McBudget SmallBudget() { return McBudget{}; }

McBudget MediumBudget() {
  McBudget b;
  b.max_choice_points = 64;
  b.max_steps = 1000;
  b.loss_budget = 1;
  b.crash_budget = 1;
  b.timer_choice_budget = 2;
  b.max_executions = 20000;
  return b;
}

McBudget LargeBudget() {
  McBudget b;
  b.max_choice_points = 96;
  b.max_steps = 2000;
  b.loss_budget = 2;
  b.dup_budget = 1;
  b.crash_budget = 2;
  b.timer_choice_budget = 3;
  b.max_executions = 200000;
  return b;
}

bool ParseBudget(const std::string& name, McBudget* out) {
  if (name == "small") {
    *out = SmallBudget();
  } else if (name == "medium") {
    *out = MediumBudget();
  } else if (name == "large") {
    *out = LargeBudget();
  } else {
    return false;
  }
  return true;
}

std::string ToString(McChoiceKind kind) {
  switch (kind) {
    case McChoiceKind::kDeliver:
      return "deliver";
    case McChoiceKind::kDrop:
      return "drop";
    case McChoiceKind::kDuplicate:
      return "duplicate";
    case McChoiceKind::kTimer:
      return "timer";
    case McChoiceKind::kNoCrash:
      return "no-crash";
    case McChoiceKind::kCrash:
      return "crash";
  }
  return "unknown";
}

uint64_t McTransition::Id() const {
  Fnv1a h;
  h.U64(static_cast<uint64_t>(kind));
  h.U64(from);
  h.U64(to);
  h.U64(static_cast<uint64_t>(msg_type));
  h.U64(txn);
  h.U64(static_cast<uint64_t>(point));
  h.U64(payload_hash);
  return h.digest();
}

std::string McTransition::Describe() const {
  switch (kind) {
    case McChoiceKind::kDeliver:
    case McChoiceKind::kDrop:
    case McChoiceKind::kDuplicate:
      return StrFormat("%s %s txn=%llu %u->%u", ToString(kind).c_str(),
                       ToString(msg_type).c_str(),
                       static_cast<unsigned long long>(txn), from, to);
    case McChoiceKind::kTimer:
      return "timer";
    case McChoiceKind::kNoCrash:
    case McChoiceKind::kCrash:
      return StrFormat("%s site %u at %s txn=%llu", ToString(kind).c_str(),
                       to, ToString(point).c_str(),
                       static_cast<unsigned long long>(txn));
  }
  return "unknown";
}

bool Independent(const McTransition& a, const McTransition& b) {
  // Timer transitions move global time: dependent with everything.
  if (a.kind == McChoiceKind::kTimer || b.kind == McChoiceKind::kTimer) {
    return false;
  }
  // Deliveries, drops and duplications execute entirely at the destination
  // site; crash choices at the probed site (both stored in `to`).
  return a.to != b.to;
}

ScheduleController::ScheduleController(System* system, McBudget budget)
    : system_(system), budget_(budget) {
  system_->net().SetSendInterceptor(
      [this](const Message& msg, const std::vector<uint8_t>& wire) {
        links_[{msg.from, msg.to}].push_back(wire);
        return true;
      });
  for (SiteId id = 0; id < static_cast<SiteId>(system_->site_count()); ++id) {
    system_->site(id)->SetCrashProbeHandler(
        [this](SiteId site, CrashPoint point, TxnId txn) {
          return OnCrashProbe(site, point, txn);
        });
  }
}

ScheduleController::~ScheduleController() {
  system_->net().SetSendInterceptor(nullptr);
}

McBudgetsUsed ScheduleController::Used() const {
  return McBudgetsUsed{loss_used_, dup_used_, crash_used_, timer_used_};
}

void ScheduleController::DrainNow() {
  Simulator& sim = system_->sim();
  uint64_t guard = 0;
  while (true) {
    std::optional<SimTime> next = sim.NextEventTime();
    if (!next.has_value() || *next != sim.Now()) break;
    sim.Step();
    // A same-instant self-rescheduling loop would be a harness bug, but a
    // model checker must terminate on buggy inputs too.
    if (++guard > 100000) {
      exec_.truncated = true;
      break;
    }
  }
}

bool ScheduleController::AllLinksEmpty() const { return links_.empty(); }

McTransition ScheduleController::TransitionFor(
    McChoiceKind kind, const LinkKey& key,
    const std::vector<uint8_t>& wire) const {
  McTransition t;
  t.kind = kind;
  t.from = key.first;
  t.to = key.second;
  Result<Message> decoded = Message::Decode(wire);
  PRANY_CHECK_MSG(decoded.ok(), decoded.status().ToString());
  t.msg_type = decoded->type;
  t.txn = decoded->txn;
  Fnv1a h;
  h.U64(wire.size());
  h.Bytes(wire.data(), wire.size());
  t.payload_hash = h.digest();
  return t;
}

std::vector<McTransition> ScheduleController::EnumerateOptions() {
  std::vector<McTransition> out;
  for (const auto& [key, queue] : links_) {
    out.push_back(TransitionFor(McChoiceKind::kDeliver, key, queue.front()));
  }
  if (loss_used_ < budget_.loss_budget) {
    for (const auto& [key, queue] : links_) {
      out.push_back(TransitionFor(McChoiceKind::kDrop, key, queue.front()));
    }
  }
  if (dup_used_ < budget_.dup_budget) {
    for (const auto& [key, queue] : links_) {
      out.push_back(
          TransitionFor(McChoiceKind::kDuplicate, key, queue.front()));
    }
  }
  if (timer_used_ < budget_.timer_choice_budget &&
      system_->sim().NextEventTime().has_value()) {
    McTransition t;
    t.kind = McChoiceKind::kTimer;
    out.push_back(t);
  }
  return out;
}

uint32_t ScheduleController::NextChoice(std::vector<McTransition> options) {
  PRANY_CHECK(!options.empty());
  uint32_t chosen = cursor_ < choices_->size() ? (*choices_)[cursor_] : 0;
  ++cursor_;
  // Out-of-range indexes (possible while minimizing a schedule whose
  // branching shifted) deterministically fall back to the default.
  if (chosen >= options.size()) chosen = 0;
  McChoicePoint point;
  point.chosen = chosen;
  point.fingerprint = StateFingerprint(*system_, links_, Used());
  point.options = std::move(options);
  exec_.points.push_back(std::move(point));
  return chosen;
}

void ScheduleController::Apply(const McTransition& t) {
  const LinkKey key{t.from, t.to};
  switch (t.kind) {
    case McChoiceKind::kDeliver: {
      auto it = links_.find(key);
      PRANY_CHECK(it != links_.end() && !it->second.empty());
      std::vector<uint8_t> wire = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) links_.erase(it);
      system_->net().DeliverNow(wire);
      break;
    }
    case McChoiceKind::kDrop: {
      auto it = links_.find(key);
      PRANY_CHECK(it != links_.end() && !it->second.empty());
      it->second.pop_front();
      if (it->second.empty()) links_.erase(it);
      ++loss_used_;
      if (system_->sim().trace().enabled()) {
        TraceEvent e;
        e.kind = TraceEventKind::kMsgDrop;
        e.site = t.from;
        e.peer = t.to;
        e.txn = t.txn;
        e.label = ToString(t.msg_type);
        e.detail = "mc.drop";
        system_->sim().Emit(std::move(e));
      }
      break;
    }
    case McChoiceKind::kDuplicate: {
      auto it = links_.find(key);
      PRANY_CHECK(it != links_.end() && !it->second.empty());
      std::vector<uint8_t> wire = it->second.front();  // original stays
      ++dup_used_;
      if (system_->sim().trace().enabled()) {
        TraceEvent e;
        e.kind = TraceEventKind::kMsgDuplicate;
        e.site = t.from;
        e.peer = t.to;
        e.txn = t.txn;
        e.label = ToString(t.msg_type);
        e.detail = "mc.duplicate";
        system_->sim().Emit(std::move(e));
      }
      system_->net().DeliverNow(wire);
      break;
    }
    case McChoiceKind::kTimer:
      ++timer_used_;
      system_->sim().Step();
      break;
    case McChoiceKind::kNoCrash:
    case McChoiceKind::kCrash:
      // Crash choices are consumed inside OnCrashProbe, never applied here.
      PRANY_CHECK_MSG(false, "crash transitions are applied in-probe");
      break;
  }
}

std::optional<SimDuration> ScheduleController::OnCrashProbe(SiteId site,
                                                            CrashPoint point,
                                                            TxnId txn) {
  if (crash_used_ >= budget_.crash_budget) return std::nullopt;
  if (exec_.points.size() >= budget_.max_choice_points) return std::nullopt;
  McTransition stay;
  stay.kind = McChoiceKind::kNoCrash;
  stay.to = site;
  stay.txn = txn;
  stay.point = point;
  McTransition crash = stay;
  crash.kind = McChoiceKind::kCrash;
  uint32_t chosen = NextChoice({stay, crash});
  if (chosen == 1) {
    ++crash_used_;
    return budget_.crash_downtime;
  }
  return std::nullopt;
}

McExecution ScheduleController::Run(const std::vector<uint32_t>& choices) {
  choices_ = &choices;
  cursor_ = 0;
  exec_ = McExecution{};
  DrainNow();
  while (true) {
    if (exec_.points.size() >= budget_.max_choice_points ||
        exec_.steps >= budget_.max_steps || exec_.truncated) {
      exec_.truncated = true;
      break;
    }
    if (AllLinksEmpty()) {
      if (system_->sim().NextEventTime().has_value()) {
        // No message to schedule: time must advance. This is forced, not a
        // choice — there is no competing transition.
        system_->sim().Step();
        ++exec_.steps;
        DrainNow();
        continue;
      }
      exec_.quiescent = true;
      break;
    }
    std::vector<McTransition> options = EnumerateOptions();
    const uint32_t chosen = NextChoice(options);
    Apply(options[chosen]);
    ++exec_.steps;
    DrainNow();
  }
  exec_.run_hash = RunHash(system_->history());
  exec_.trace_hash = TraceHash(system_->sim().trace().events());
  return std::move(exec_);
}

}  // namespace prany
