// Bounded exhaustive exploration of protocol executions.
//
// Stateless model checking in the Godefroid/VeriSoft style: an execution
// is identified by its choice vector (one integer per nondeterministic
// point, see mc/schedule_controller.h), and the explorer re-executes the
// deterministic simulator from scratch per schedule. The DFS frontier
// grows by taking each non-default alternative at each choice point of an
// executed run; two reductions keep it tractable:
//   - (state, action) deduplication by 64-bit fingerprint, and
//   - a simplified sleep-set reduction over a conservative independence
//     relation (transitions at disjoint sites commute).
// Both only prune *alternatives*; the default continuation of every
// scheduled prefix is always executed, so every reported violation is a
// real execution. See docs/MODEL_CHECKING.md for the soundness
// discussion.
//
// Every execution is checked against the invariant oracles (atomicity,
// safe state, WAL discipline, and — on quiescent runs — operational
// correctness). The first counterexample per oracle is minimized by
// delta-debugging its choice vector and re-executed to confirm
// determinism.

#ifndef PRANY_MC_EXPLORER_H_
#define PRANY_MC_EXPLORER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/trace.h"
#include "mc/schedule_controller.h"
#include "txn/pcp_table.h"

namespace prany {

/// One bounded configuration to explore: a coordinator, its participants
/// and their planned votes, all driving a single transaction.
struct McConfig {
  ProtocolKind coordinator = ProtocolKind::kPrAny;
  ProtocolKind u2pc_native = ProtocolKind::kPrN;
  std::vector<ProtocolKind> participants;  ///< Sites 1..N in order.
  std::map<SiteId, Vote> votes;            ///< Planned non-yes votes.
  uint64_t seed = 1;
  McBudget budget;

  std::string Describe() const;
};

/// One oracle violation observed in one execution.
struct McViolation {
  std::string oracle;  ///< "atomicity", "safe-state", "wal-discipline",
                       ///< "operational", "determinism".
  std::string description;
};

/// Oracle verdicts for a single executed schedule.
struct McRunReport {
  std::vector<McViolation> violations;
  bool quiescent = false;
  bool truncated = false;
  uint64_t run_hash = 0;
  uint64_t trace_hash = 0;

  bool HasOracle(const std::string& oracle) const;
};

/// A minimized, replayable counterexample.
struct McCounterexample {
  std::string oracle;
  std::string description;
  std::vector<uint32_t> choices;           ///< Minimized schedule.
  std::vector<uint32_t> original_choices;  ///< As first discovered.
  std::vector<std::string> schedule;  ///< Human-readable decided steps.
  bool replay_deterministic = true;
  uint64_t run_hash = 0;
};

/// Exploration statistics.
struct McStats {
  uint64_t executions = 0;
  uint64_t choice_points = 0;
  uint64_t dedup_skips = 0;
  uint64_t sleep_skips = 0;
  uint64_t truncated_runs = 0;
  uint64_t quiescent_runs = 0;
  uint64_t minimization_runs = 0;
  bool frontier_exhausted = false;  ///< Search space drained within bounds.
  bool execution_budget_hit = false;
};

/// Result of exploring one configuration.
struct McResult {
  McConfig config;
  McStats stats;
  std::vector<McCounterexample> counterexamples;
  std::vector<PresumptionLintFinding> lint;

  /// No dynamic counterexamples (lint findings are reported separately:
  /// they flag a table pairing, not an observed execution).
  bool Clean() const { return counterexamples.empty(); }
  bool HasOracle(const std::string& oracle) const;
};

class McExplorer {
 public:
  explicit McExplorer(McConfig config);

  /// Runs the bounded DFS and returns everything found.
  McResult Explore();

  /// Executes one schedule under `config` and evaluates every oracle.
  /// Also the replay entry point for emitted scenario files.
  static McRunReport RunSchedule(const McConfig& config,
                                 const std::vector<uint32_t>& choices,
                                 std::vector<TraceEvent>* trace_out = nullptr,
                                 McExecution* exec_out = nullptr);

 private:
  McConfig config_;
};

/// The standard configuration sweep for `prany_check --protocol X`:
/// vote patterns (all-yes plus each single no-voter) crossed with U2PC's
/// native protocols (restrictable via `native_filter`). Base protocols get
/// homogeneous participant sets (mixed sets under a base coordinator
/// cannot quiesce by design — that mismatch is the lint's job); U2PC,
/// C2PC and PrAny get the paper's mixed sets.
std::vector<McConfig> StandardModelCheckConfigs(
    ProtocolKind protocol, uint32_t participants, const McBudget& budget,
    uint64_t seed,
    std::optional<ProtocolKind> native_filter = std::nullopt);

}  // namespace prany

#endif  // PRANY_MC_EXPLORER_H_
