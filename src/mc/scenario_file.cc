#include "mc/scenario_file.h"

#include <cstdlib>
#include <sstream>

#include "common/string_util.h"

namespace prany {

namespace {

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

Status ParseU64(const std::string& key, const std::string& value,
                uint64_t* out) {
  if (value.empty()) {
    return Status::InvalidArgument(
        StrFormat("scenario: empty value for %s", key.c_str()));
  }
  char* end = nullptr;
  unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument(StrFormat(
        "scenario: bad number '%s' for %s", value.c_str(), key.c_str()));
  }
  *out = v;
  return Status::OK();
}

Status ParseU32(const std::string& key, const std::string& value,
                uint32_t* out) {
  uint64_t v = 0;
  PRANY_RETURN_NOT_OK(ParseU64(key, value, &v));
  *out = static_cast<uint32_t>(v);
  return Status::OK();
}

bool ParseVoteName(const std::string& name, Vote* out) {
  if (name == "yes") {
    *out = Vote::kYes;
  } else if (name == "no") {
    *out = Vote::kNo;
  } else if (name == "read-only" || name == "ro") {
    *out = Vote::kReadOnly;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string SerializeScenario(const McScenario& scenario) {
  const McConfig& c = scenario.config;
  const McBudget& b = c.budget;
  std::string out = "# prany_check counterexample scenario\n";
  out += StrFormat("# %s\n", c.Describe().c_str());
  out += StrFormat("protocol=%s\n", ToString(c.coordinator).c_str());
  out += StrFormat("native=%s\n", ToString(c.u2pc_native).c_str());
  std::string parts;
  for (size_t i = 0; i < c.participants.size(); ++i) {
    if (i > 0) parts += ",";
    parts += ToString(c.participants[i]);
  }
  out += StrFormat("participants=%s\n", parts.c_str());
  std::string votes;
  for (const auto& [site, vote] : c.votes) {
    if (!votes.empty()) votes += ",";
    votes += StrFormat("%u:%s", site, ToString(vote).c_str());
  }
  out += StrFormat("votes=%s\n", votes.c_str());
  out += StrFormat("seed=%llu\n", static_cast<unsigned long long>(c.seed));
  out += StrFormat("max_choice_points=%u\n", b.max_choice_points);
  out += StrFormat("max_steps=%llu\n",
                   static_cast<unsigned long long>(b.max_steps));
  out += StrFormat("loss_budget=%u\n", b.loss_budget);
  out += StrFormat("dup_budget=%u\n", b.dup_budget);
  out += StrFormat("crash_budget=%u\n", b.crash_budget);
  out += StrFormat("timer_choice_budget=%u\n", b.timer_choice_budget);
  out += StrFormat("crash_downtime=%llu\n",
                   static_cast<unsigned long long>(b.crash_downtime));
  out += StrFormat("choices=%s\n",
                   JoinNumbers(scenario.choices, ",").c_str());
  out += StrFormat("oracle=%s\n", scenario.oracle.c_str());
  out += StrFormat("description=%s\n", scenario.description.c_str());
  return out;
}

Result<McScenario> ParseScenario(const std::string& text) {
  McScenario scenario;
  McConfig& c = scenario.config;
  McBudget& b = c.budget;
  c.participants.clear();

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("scenario line %d: expected key=value", lineno));
    }
    std::string key = Trim(trimmed.substr(0, eq));
    std::string value = Trim(trimmed.substr(eq + 1));

    if (key == "protocol") {
      if (!ParseProtocolKind(value, &c.coordinator)) {
        return Status::InvalidArgument(
            StrFormat("scenario: unknown protocol '%s'", value.c_str()));
      }
    } else if (key == "native") {
      if (!ParseProtocolKind(value, &c.u2pc_native)) {
        return Status::InvalidArgument(
            StrFormat("scenario: unknown native '%s'", value.c_str()));
      }
    } else if (key == "participants") {
      for (const std::string& name : SplitOn(value, ',')) {
        ProtocolKind kind;
        if (!ParseProtocolKind(Trim(name), &kind)) {
          return Status::InvalidArgument(StrFormat(
              "scenario: unknown participant protocol '%s'", name.c_str()));
        }
        c.participants.push_back(kind);
      }
    } else if (key == "votes") {
      for (const std::string& entry : SplitOn(value, ',')) {
        size_t colon = entry.find(':');
        if (colon == std::string::npos) {
          return Status::InvalidArgument(StrFormat(
              "scenario: vote entry '%s' is not site:vote", entry.c_str()));
        }
        uint32_t site = 0;
        PRANY_RETURN_NOT_OK(
            ParseU32("votes", Trim(entry.substr(0, colon)), &site));
        Vote vote;
        if (!ParseVoteName(Trim(entry.substr(colon + 1)), &vote)) {
          return Status::InvalidArgument(StrFormat(
              "scenario: unknown vote in '%s'", entry.c_str()));
        }
        c.votes[site] = vote;
      }
    } else if (key == "seed") {
      PRANY_RETURN_NOT_OK(ParseU64(key, value, &c.seed));
    } else if (key == "max_choice_points") {
      PRANY_RETURN_NOT_OK(ParseU32(key, value, &b.max_choice_points));
    } else if (key == "max_steps") {
      PRANY_RETURN_NOT_OK(ParseU64(key, value, &b.max_steps));
    } else if (key == "loss_budget") {
      PRANY_RETURN_NOT_OK(ParseU32(key, value, &b.loss_budget));
    } else if (key == "dup_budget") {
      PRANY_RETURN_NOT_OK(ParseU32(key, value, &b.dup_budget));
    } else if (key == "crash_budget") {
      PRANY_RETURN_NOT_OK(ParseU32(key, value, &b.crash_budget));
    } else if (key == "timer_choice_budget") {
      PRANY_RETURN_NOT_OK(ParseU32(key, value, &b.timer_choice_budget));
    } else if (key == "crash_downtime") {
      PRANY_RETURN_NOT_OK(ParseU64(key, value, &b.crash_downtime));
    } else if (key == "choices") {
      for (const std::string& n : SplitOn(value, ',')) {
        std::string t = Trim(n);
        if (t.empty()) continue;
        uint32_t choice = 0;
        PRANY_RETURN_NOT_OK(ParseU32("choices", t, &choice));
        scenario.choices.push_back(choice);
      }
    } else if (key == "oracle") {
      scenario.oracle = value;
    } else if (key == "description") {
      scenario.description = value;
    } else {
      return Status::InvalidArgument(
          StrFormat("scenario: unknown key '%s'", key.c_str()));
    }
  }
  if (scenario.config.participants.empty()) {
    return Status::InvalidArgument("scenario: no participants");
  }
  return scenario;
}

ReplayOutcome ReplayScenario(const McScenario& scenario,
                             std::vector<TraceEvent>* trace_out) {
  ReplayOutcome out;
  out.report =
      McExplorer::RunSchedule(scenario.config, scenario.choices, trace_out);
  out.reproduced =
      scenario.oracle.empty() || out.report.HasOracle(scenario.oracle);
  return out;
}

}  // namespace prany
