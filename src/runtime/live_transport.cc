#include "runtime/live_transport.h"

#include <chrono>
#include <utility>

#include "common/status.h"

namespace prany {
namespace runtime {

namespace {
/// Frames a single inbox can hold before senders are backpressured. Deep
/// enough that parking only happens when a site is genuinely swamped
/// (each frame is one protocol message; a closed-loop client has at most
/// a handful in flight).
constexpr size_t kInboxCapacity = 1024;
/// Recycled wire buffers shared by all senders and inbox threads.
constexpr size_t kPoolCapacity = 1024;
/// Frames an inbox thread delivers under a single delivery claim before
/// releasing it and re-checking stop. Matches the ring capacity: one
/// claim can drain a full backlog, yet a continuously-fed inbox still
/// observes stopping within one bounded pass.
constexpr int kMaxDrainPerClaim = 1024;
}  // namespace

LiveTransport::LiveTransport(EventLoop* loop, MetricsRegistry* metrics)
    : loop_(loop), metrics_(metrics), pool_(kPoolCapacity) {
  PRANY_CHECK(loop != nullptr);
}

LiveTransport::~LiveTransport() { Stop(); }

void LiveTransport::RegisterEndpoint(SiteId site, NetworkEndpoint* endpoint) {
  PRANY_CHECK(endpoint != nullptr);
  MutexLock lock(mu_);
  PRANY_CHECK(!stopped_.load());
  InboxTable* cur = table_.load();
  if (cur != nullptr && site < cur->by_site.size() &&
      cur->by_site[site] != nullptr) {
    // Endpoint swap (LiveSite interposing on the harness Site); the inbox
    // thread keeps running.
    cur->by_site[site]->endpoint.store(endpoint);
    return;
  }
  auto inbox = std::make_unique<Inbox>(kInboxCapacity);
  inbox->endpoint.store(endpoint);
  Inbox* raw = inbox.get();
  inbox->thread = std::thread([this, raw]() { InboxThreadMain(raw); });
  owned_inboxes_.push_back(std::move(inbox));

  // Publish a new table; the old one stays alive (retired) because a
  // concurrent Send may still be reading it.
  auto table = std::make_unique<InboxTable>();
  if (cur != nullptr) table->by_site = cur->by_site;
  if (table->by_site.size() <= site) table->by_site.resize(site + 1, nullptr);
  table->by_site[site] = raw;
  table_.store(table.get());
  retired_tables_.push_back(std::move(table));
}

void LiveTransport::Send(const Message& msg) {
  PRANY_CHECK(msg.from != kInvalidSite && msg.to != kInvalidSite);
  std::vector<uint8_t> wire = pool_.Acquire();
  msg.EncodeInto(&wire);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(wire.size(), std::memory_order_relaxed);
  size_t type_index = static_cast<size_t>(msg.type);
  PRANY_CHECK(type_index < kMessageTypes);
  msg_type_counts_[type_index].fetch_add(1, std::memory_order_relaxed);
  if (loop_->trace().enabled()) {
    TraceEvent e = NetTraceEvent(TraceEventKind::kMsgSend, msg, false);
    e.value = wire.size();
    loop_->Emit(std::move(e));
  }

  if (stopped_.load(std::memory_order_acquire)) {
    pool_.Release(std::move(wire));  // late sends during shutdown dropped
    return;
  }
  InboxTable* table = table_.load(std::memory_order_acquire);
  Inbox* inbox = (table != nullptr && msg.to < table->by_site.size())
                     ? table->by_site[msg.to]
                     : nullptr;
  PRANY_CHECK_MSG(inbox != nullptr, "unknown destination site");
  if (inbox->stopping.load(std::memory_order_acquire)) {
    pool_.Release(std::move(wire));
    return;
  }

  int idle = kIdle;
  if (inbox->delivery.compare_exchange_strong(idle, kBusy)) {
    if (inbox->ring.Empty()) {
      // Direct handoff: the inbox is idle, so delivering on the sender's
      // thread skips a context switch (the dominant per-message cost on
      // small machines) without reordering anything — nothing is queued
      // ahead of this frame, and the inbox thread cannot claim the
      // delivery state while we hold it. Deliver() only enqueues into the
      // endpoint's worker queue; it never blocks on engine locks.
      Deliver(inbox, wire);
      // seq_cst store + the Empty() re-check below form a Dekker pair
      // with EnqueueFrame (push, then load delivery/parked): either we
      // see the late frame, or its producer sees delivery == kIdle and
      // wakes the consumer itself. Do not weaken.
      inbox->delivery.store(kIdle);
      pool_.Release(std::move(wire));
      // Frames queued behind the direct delivery: the inbox thread may
      // have parked against the busy delivery state; hand them over.
      if (!inbox->ring.Empty()) WakeConsumer(inbox);
      return;
    }
    // Frames are already queued; ours must go behind them. Unclaim and
    // fall through (EnqueueFrame wakes the consumer, which may be parked
    // waiting for the delivery state we briefly held).
    inbox->delivery.store(kIdle);
  }
  EnqueueFrame(inbox, std::move(wire));
}

void LiveTransport::EnqueueFrame(Inbox* inbox, std::vector<uint8_t>&& wire) {
  while (!inbox->ring.TryPush(std::move(wire))) {
    // Ring full: backpressure. Park briefly; the timed wait bounds any
    // lost-wakeup window, and a stop while parked drops the frame (the
    // shutdown contract — undelivered frames are dropped).
    if (inbox->stopping.load(std::memory_order_acquire)) {
      pool_.Release(std::move(wire));
      return;
    }
    MutexLock lk(inbox->park_mu);
    if (inbox->stopping.load(std::memory_order_acquire)) {
      pool_.Release(std::move(wire));
      return;
    }
    // Relaxed is enough for the parked count: park_mu orders it against
    // the consumer's notify decision, the atomic only avoids a lock on
    // the consumer's read side.
    inbox->producers_parked.fetch_add(1, std::memory_order_relaxed);
    inbox->producer_cv.WaitFor(inbox->park_mu, std::chrono::milliseconds(1));
    inbox->producers_parked.fetch_sub(1, std::memory_order_relaxed);
  }
  // Wake the consumer only when it is actually parked — the seq_cst pair
  // with InboxThreadMain's parked-flag store means a false read here
  // guarantees the consumer re-checks the ring before sleeping (our
  // TryPush is ordered before this load, its park store before its
  // re-check). Do not weaken either side.
  if (inbox->consumer_parked.load()) WakeConsumer(inbox);
}

void LiveTransport::WakeConsumer(Inbox* inbox) {
  // Empty critical section: serializes with the consumer's
  // predicate-check-then-wait so the notify cannot fall between them.
  { MutexLock lk(inbox->park_mu); }
  inbox->consumer_cv.NotifyOne();
}

void LiveTransport::Stop() {
  std::vector<Inbox*> to_join;
  {
    MutexLock lock(mu_);
    if (stopped_.exchange(true)) return;
    for (auto& inbox : owned_inboxes_) to_join.push_back(inbox.get());
  }
  for (Inbox* inbox : to_join) {
    {
      // The store under park_mu pairs with the parked waiters' re-check
      // under the same lock: no thread can miss the stop and sleep on.
      MutexLock lk(inbox->park_mu);
      inbox->stopping.store(true);
    }
    inbox->consumer_cv.NotifyAll();
    inbox->producer_cv.NotifyAll();
  }
  for (Inbox* inbox : to_join) {
    if (inbox->thread.joinable()) inbox->thread.join();
  }
  // Fold the per-type send counts into the registry under the same names
  // the simulated Network uses, so exported metrics stay comparable.
  if (metrics_ != nullptr) {
    for (size_t i = 0; i < kMessageTypes; ++i) {
      uint64_t n = msg_type_counts_[i].load(std::memory_order_relaxed);
      if (n == 0) continue;
      metrics_->Add("net.msg." + ToString(static_cast<MessageType>(i)),
                    static_cast<int64_t>(n));
    }
    uint64_t bytes = bytes_sent_.load(std::memory_order_relaxed);
    if (bytes != 0) {
      metrics_->Add("net.bytes", static_cast<int64_t>(bytes));
    }
  }
}

bool LiveTransport::Idle() const {
  InboxTable* table = table_.load(std::memory_order_acquire);
  if (table == nullptr) return true;
  for (Inbox* inbox : table->by_site) {
    if (inbox == nullptr) continue;
    if (!inbox->ring.Empty() || inbox->delivery.load() != kIdle) {
      return false;
    }
  }
  return true;
}

LiveTransportStats LiveTransport::stats() const {
  LiveTransportStats s;
  s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.messages_delivered = messages_delivered_.load(std::memory_order_relaxed);
  s.messages_lost_down = messages_lost_down_.load(std::memory_order_relaxed);
  s.buffer_pool_hits = pool_.hits();
  s.buffer_pool_misses = pool_.misses();
  return s;
}

void LiveTransport::InboxThreadMain(Inbox* inbox) {
  for (;;) {
    if (inbox->stopping.load(std::memory_order_acquire)) return;
    int idle = kIdle;
    if (inbox->delivery.compare_exchange_strong(idle, kBusy)) {
      // Claim the delivery state *before* popping: a frame must never sit
      // outside the ring unprotected, or a direct handoff could overtake
      // it and break per-link FIFO.
      //
      // Batched drain: deliver everything queued under one claim instead
      // of releasing and re-CASing per frame. Under load (e.g. a burst of
      // acks released by one group-commit fdatasync) this turns N
      // claim/release pairs plus up to N producer wakes into one pass;
      // FIFO is unchanged (pops stay in ring order, the claim is held
      // throughout). Bounded so a firehose sender cannot starve the
      // stopping check forever.
      std::vector<uint8_t> wire;
      bool delivered = false;
      for (int drained = 0; drained < kMaxDrainPerClaim; ++drained) {
        if (!inbox->ring.TryPop(&wire)) break;
        if (inbox->producers_parked.load(std::memory_order_relaxed) > 0) {
          // A missed wake self-heals: producers park with a 1ms timed
          // wait, so relaxed is fine here (the empty section only closes
          // the check-then-wait race for producers already parked).
          { MutexLock lk(inbox->park_mu); }
          inbox->producer_cv.NotifyAll();
        }
        Deliver(inbox, wire);
        pool_.Release(std::move(wire));
        delivered = true;
      }
      inbox->delivery.store(kIdle);
      if (delivered) continue;
    }
    // Nothing to do: ring empty, or a direct delivery holds the state
    // (its finisher re-wakes us if frames queued behind it). The parked
    // flag pairs with EnqueueFrame's guarded notify; its seq_cst store
    // must stay ordered before the predicate's ring re-check (Dekker
    // with the producer's push-then-load) — do not weaken.
    {
      MutexLock lk(inbox->park_mu);
      inbox->consumer_parked.store(true);
      while (!(inbox->stopping.load(std::memory_order_relaxed) ||
               (!inbox->ring.Empty() &&
                inbox->delivery.load(std::memory_order_relaxed) == kIdle))) {
        inbox->consumer_cv.Wait(inbox->park_mu);
      }
      inbox->consumer_parked.store(false);
    }
  }
}

void LiveTransport::Deliver(Inbox* inbox, const std::vector<uint8_t>& wire) {
  Result<Message> decoded = Message::Decode(wire);
  // The in-process channel never corrupts frames; a decode failure here is
  // a codec bug.
  PRANY_CHECK_MSG(decoded.ok(), decoded.status().ToString());
  const Message& msg = *decoded;
  NetworkEndpoint* endpoint =
      inbox->endpoint.load(std::memory_order_acquire);
  if (!endpoint->IsUp()) {
    messages_lost_down_.fetch_add(1, std::memory_order_relaxed);
    if (loop_->trace().enabled()) {
      loop_->Emit(NetTraceEvent(TraceEventKind::kMsgLostDown, msg, true));
    }
    return;
  }
  messages_delivered_.fetch_add(1, std::memory_order_relaxed);
  if (loop_->trace().enabled()) {
    loop_->Emit(NetTraceEvent(TraceEventKind::kMsgDeliver, msg, true));
  }
  endpoint->OnMessage(msg);
}

}  // namespace runtime
}  // namespace prany
