#include "runtime/live_transport.h"

#include <utility>

#include "common/status.h"

namespace prany {
namespace runtime {

LiveTransport::LiveTransport(EventLoop* loop, MetricsRegistry* metrics)
    : loop_(loop), metrics_(metrics) {
  PRANY_CHECK(loop != nullptr);
}

LiveTransport::~LiveTransport() { Stop(); }

void LiveTransport::RegisterEndpoint(SiteId site, NetworkEndpoint* endpoint) {
  PRANY_CHECK(endpoint != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  PRANY_CHECK(!stopped_);
  auto it = inboxes_.find(site);
  if (it != inboxes_.end()) {
    // Endpoint swap (LiveSite interposing on the harness Site); the inbox
    // thread keeps running.
    std::lock_guard<std::mutex> ilock(it->second->mu);
    it->second->endpoint = endpoint;
    return;
  }
  auto inbox = std::make_unique<Inbox>();
  inbox->endpoint = endpoint;
  Inbox* raw = inbox.get();
  inbox->thread = std::thread([this, raw]() { InboxThreadMain(raw); });
  inboxes_.emplace(site, std::move(inbox));
}

void LiveTransport::Send(const Message& msg) {
  PRANY_CHECK(msg.from != kInvalidSite && msg.to != kInvalidSite);
  std::vector<uint8_t> wire = msg.Encode();
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(wire.size(), std::memory_order_relaxed);
  size_t type_index = static_cast<size_t>(msg.type);
  PRANY_CHECK(type_index < kMessageTypes);
  msg_type_counts_[type_index].fetch_add(1, std::memory_order_relaxed);
  if (loop_->trace().enabled()) {
    TraceEvent e = NetTraceEvent(TraceEventKind::kMsgSend, msg, false);
    e.value = wire.size();
    loop_->Emit(std::move(e));
  }

  Inbox* inbox = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;  // late sends during shutdown are dropped
    auto it = inboxes_.find(msg.to);
    PRANY_CHECK_MSG(it != inboxes_.end(), "unknown destination site");
    inbox = it->second.get();
  }
  {
    std::unique_lock<std::mutex> ilock(inbox->mu);
    if (inbox->stopping) return;
    if (inbox->frames.empty() && !inbox->delivering) {
      // Direct handoff: the inbox is idle, so delivering on the sender's
      // thread skips a context switch (the dominant per-message cost on
      // small machines) without reordering anything — nothing is queued
      // ahead of this frame, and the inbox thread stays parked until
      // `delivering` clears. Deliver() only enqueues into the endpoint's
      // worker queue; it never blocks on engine locks.
      inbox->delivering = true;
      ilock.unlock();
      Deliver(inbox, wire);
      ilock.lock();
      inbox->delivering = false;
      if (inbox->frames.empty()) return;
      // Frames queued behind the direct delivery: hand them to the inbox
      // thread (it is waiting for delivering to clear).
    } else {
      inbox->frames.push_back(std::move(wire));
    }
  }
  inbox->cv.notify_one();
}

void LiveTransport::Stop() {
  std::vector<Inbox*> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    for (auto& [site, inbox] : inboxes_) to_join.push_back(inbox.get());
  }
  for (Inbox* inbox : to_join) {
    {
      std::lock_guard<std::mutex> ilock(inbox->mu);
      inbox->stopping = true;
    }
    inbox->cv.notify_all();
  }
  for (Inbox* inbox : to_join) {
    if (inbox->thread.joinable()) inbox->thread.join();
  }
  // Fold the per-type send counts into the registry under the same names
  // the simulated Network uses, so exported metrics stay comparable.
  if (metrics_ != nullptr) {
    for (size_t i = 0; i < kMessageTypes; ++i) {
      uint64_t n = msg_type_counts_[i].load(std::memory_order_relaxed);
      if (n == 0) continue;
      metrics_->Add("net.msg." + ToString(static_cast<MessageType>(i)),
                    static_cast<int64_t>(n));
    }
    uint64_t bytes = bytes_sent_.load(std::memory_order_relaxed);
    if (bytes != 0) {
      metrics_->Add("net.bytes", static_cast<int64_t>(bytes));
    }
  }
}

bool LiveTransport::Idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [site, inbox] : inboxes_) {
    std::lock_guard<std::mutex> ilock(inbox->mu);
    if (!inbox->frames.empty() || inbox->delivering) return false;
  }
  return true;
}

LiveTransportStats LiveTransport::stats() const {
  LiveTransportStats s;
  s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.messages_delivered = messages_delivered_.load(std::memory_order_relaxed);
  s.messages_lost_down = messages_lost_down_.load(std::memory_order_relaxed);
  return s;
}

void LiveTransport::InboxThreadMain(Inbox* inbox) {
  std::unique_lock<std::mutex> lock(inbox->mu);
  while (true) {
    // Waiting for `delivering` to clear keeps deliveries to this site
    // strictly serial even when senders take the direct-handoff path, which
    // is what preserves per-link FIFO order.
    inbox->cv.wait(lock, [&] {
      return inbox->stopping ||
             (!inbox->frames.empty() && !inbox->delivering);
    });
    if (inbox->stopping) return;  // undelivered frames dropped
    std::vector<uint8_t> wire = std::move(inbox->frames.front());
    inbox->frames.pop_front();
    inbox->delivering = true;
    lock.unlock();
    Deliver(inbox, wire);
    lock.lock();
    inbox->delivering = false;
  }
}

void LiveTransport::Deliver(Inbox* inbox, const std::vector<uint8_t>& wire) {
  Result<Message> decoded = Message::Decode(wire);
  // The in-process channel never corrupts frames; a decode failure here is
  // a codec bug.
  PRANY_CHECK_MSG(decoded.ok(), decoded.status().ToString());
  const Message& msg = *decoded;
  NetworkEndpoint* endpoint;
  {
    std::lock_guard<std::mutex> ilock(inbox->mu);
    endpoint = inbox->endpoint;
  }
  if (!endpoint->IsUp()) {
    messages_lost_down_.fetch_add(1, std::memory_order_relaxed);
    if (loop_->trace().enabled()) {
      loop_->Emit(NetTraceEvent(TraceEventKind::kMsgLostDown, msg, true));
    }
    return;
  }
  messages_delivered_.fetch_add(1, std::memory_order_relaxed);
  if (loop_->trace().enabled()) {
    loop_->Emit(NetTraceEvent(TraceEventKind::kMsgDeliver, msg, true));
  }
  endpoint->OnMessage(msg);
}

}  // namespace runtime
}  // namespace prany
