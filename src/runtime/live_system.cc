#include "runtime/live_system.h"

#include <chrono>
#include <utility>

#include "common/bytes.h"
#include "common/status.h"
#include "harness/observability.h"
#include "history/atomicity_checker.h"

namespace prany {
namespace runtime {

namespace {

/// Control-frame record tags (socket cluster mode). Wire-stable.
constexpr uint8_t kControlPlannedVote = 1;

/// [tag][u64 txn][u32 site][u8 vote] — the planned-vote setup a
/// coordinator ships to a remote participant before its PREPARE.
std::vector<uint8_t> EncodePlannedVote(TxnId txn, SiteId site, Vote vote) {
  ByteWriter writer;
  writer.PutU8(kControlPlannedVote);
  writer.PutU64(txn);
  writer.PutU32(site);
  writer.PutU8(static_cast<uint8_t>(vote));
  return writer.TakeBytes();
}

}  // namespace

// ---------------------------------------------------------------------------
// LiveSite

LiveSite::LiveSite(std::unique_ptr<Site> site, FileStableLog* wal,
                   ITransport* transport, int workers)
    : site_(std::move(site)), wal_(wal), worker_count_(workers) {
  PRANY_CHECK(wal_ != nullptr && transport != nullptr && workers >= 1);
  // The harness Site registered itself with the transport in its
  // constructor; interpose so deliveries enqueue instead of running the
  // engine on the inbox thread.
  transport->RegisterEndpoint(site_->id(), this);
  // Release the engine mutex across durability waits so concurrent
  // transactions coalesce into one fdatasync. The hooks run with no other
  // locks held (FileStableLog drops its own mutex around them).
  wal_->SetWaitHooks([this]() { UnlockEngineForDurabilityWait(); },
                     [this]() { RelockEngineAfterDurabilityWait(); });
  executor_ = [this](LiveEventLoop::Task task) {
    {
      MutexLock lock(queue_mu_);
      if (stopping_) return;  // post-shutdown timers are dropped
      tasks_.push_back(std::move(task));
    }
    queue_cv_.NotifyOne();
  };
  StartWorkers();
}

LiveSite::~LiveSite() {
  StopWorkers();
  // Detach the hooks before the Site (and its engines) die; the WAL
  // outlives us only until LiveSystem closes it.
  wal_->SetWaitHooks(nullptr, nullptr);
}

void LiveSite::OnMessage(const Message& msg) {
  {
    MutexLock lock(queue_mu_);
    if (stopping_) return;
    QueuedMessage qm;
    qm.msg = msg;
    // Ticket for the per-transaction FIFO gate: stamped under queue_mu_ in
    // delivery order, so admission order == per-link delivery order.
    qm.seq = txn_order_[msg.txn].next_stamp++;
    qm.epoch = queue_epoch_;
    msgs_.push_back(std::move(qm));
  }
  queue_cv_.NotifyOne();
}

void LiveSite::RunInline(const std::function<void()>& fn) {
  const LiveEventLoop::Executor* prev =
      LiveEventLoop::CurrentThreadExecutor();
  LiveEventLoop::BindThreadExecutor(&executor_);
  {
    MutexLock lock(engine_mu_);
    try {
      fn();
    } catch (const WalCrashedError&) {
      // The site crashed out of a durability wait inside fn (e.g. a
      // submission whose initiation force lost the race with a crash).
      // The partial work below the force is abandoned, as in the sim.
    }
  }
  LiveEventLoop::BindThreadExecutor(prev);
}

void LiveSite::StopWorkers() {
  {
    MutexLock lock(queue_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void LiveSite::StopWorkersAbruptly() {
  {
    MutexLock lock(queue_mu_);
    stopping_ = true;
    // Fail-stop: queued-but-undelivered messages and timer callbacks are
    // what the site would have executed had it stayed up — gone. (The
    // engines already cancelled their timers in Site::CrashNow; tasks
    // here are the already-posted remnants, which strong cancellation
    // would suppress anyway.)
    msgs_.clear();
    tasks_.clear();
    // Void the admission tickets of everything just discarded (and of any
    // handler still in flight): stamped-but-dropped messages would
    // otherwise leave next_run forever behind next_stamp and wedge the
    // transaction's gate after restart.
    txn_order_.clear();
    ++queue_epoch_;
  }
  queue_cv_.NotifyAll();
  order_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void LiveSite::BeginRestart() {
  MutexLock lock(queue_mu_);
  PRANY_CHECK_MSG(workers_.empty(), "BeginRestart with workers running");
  stopping_ = false;
}

void LiveSite::StartWorkers() {
  workers_.reserve(static_cast<size_t>(worker_count_));
  for (int i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this]() { WorkerMain(); });
  }
  queue_cv_.NotifyAll();
}

bool LiveSite::QueueIdle() const {
  MutexLock lock(queue_mu_);
  return msgs_.empty() && tasks_.empty() && executing_ == 0;
}

void LiveSite::WorkerMain() {
  LiveEventLoop::BindThreadExecutor(&executor_);
  MutexLock qlock(queue_mu_);
  while (true) {
    while (!stopping_ && tasks_.empty() && msgs_.empty()) {
      queue_cv_.Wait(queue_mu_);
    }
    // Drain what is already queued even when stopping: messages enqueued
    // before shutdown still complete their handlers.
    if (!tasks_.empty()) {
      LiveEventLoop::Task task = std::move(tasks_.front());
      tasks_.pop_front();
      ++executing_;
      qlock.Unlock();
      {
        // Timer callbacks bypass the admission gate: engines only arm timers
        // once a handler's forces are complete, and strong cancellation
        // (see LiveEventLoop) covers the rest.
        MutexLock elock(engine_mu_);
        try {
          task();
        } catch (const WalCrashedError&) {
          // Crash landed during a forced append inside the callback;
          // abandon it (the site is going down).
        }
      }
      qlock.Lock();
      --executing_;
      continue;
    }
    if (!msgs_.empty()) {
      QueuedMessage qm = std::move(msgs_.front());
      msgs_.pop_front();
      ++executing_;
      qlock.Unlock();
      HandleMessage(qm);
      qlock.Lock();
      --executing_;
      continue;
    }
    if (stopping_) return;
  }
}

void LiveSite::HandleMessage(const QueuedMessage& qm) {
  {
    // Per-transaction FIFO gate: run each transaction's messages one at a
    // time, in delivery order. Workers pop the queue in order but race to
    // the engine mutex, and the mutex is released at durability waits —
    // without the gate a DECISION can be *processed* before the PREPARE
    // it answers even though the transport delivered them in order (seen
    // live under PrC: the participant blind-acks the abort, the
    // coordinator forgets, the stale PREPARE then parks the participant
    // in doubt and the inquiry comes back presumed-commit). Distinct
    // transactions interleave freely — that is the point of group commit.
    //
    // No deadlock: workers pop in queue order, so every ticket below
    // `qm.seq` is already popped and either done or in flight; in-flight
    // handlers always advance the gate (the crash path unwinds them via
    // WalCrashedError and bumps the epoch).
    MutexLock qlock(queue_mu_);
    while (queue_epoch_ == qm.epoch &&
           txn_order_[qm.msg.txn].next_run != qm.seq) {
      ++order_waiters_;
      order_cv_.Wait(queue_mu_);
      --order_waiters_;
    }
    // Epoch bump = crash teardown discarded this transaction's queue;
    // fail-stop semantics drop the message (the site is going down).
    if (queue_epoch_ != qm.epoch) return;
  }
  {
    MutexLock elock(engine_mu_);
    try {
      site_->OnMessage(qm.msg);
    } catch (const WalCrashedError&) {
      // The site crashed while this handler was parked in a durability
      // wait. Everything the handler did after the force is undone by
      // the unwind — the live equivalent of the sim crashing a site at a
      // forced-write yield point. The gate below must still advance so
      // the drain finds no wedged waiters.
    }
  }
  MutexLock qlock(queue_mu_);
  if (queue_epoch_ != qm.epoch) return;  // teardown already reset the gate
  auto it = txn_order_.find(qm.msg.txn);
  PRANY_CHECK(it != txn_order_.end());
  it->second.next_run = qm.seq + 1;
  // Every stamped message has run: drop the entry so the map tracks only
  // transactions with queued or in-flight work.
  if (it->second.next_run == it->second.next_stamp) txn_order_.erase(it);
  // Same-transaction collisions are rare; skip the wakeup storm when no
  // worker is parked on the gate.
  if (order_waiters_ > 0) order_cv_.NotifyAll();
}

// ---------------------------------------------------------------------------
// LiveSystem

LiveSystem::LiveSystem(LiveSystemConfig config)
    : config_(std::move(config)), transport_(&loop_, &metrics_) {
  ObservabilityScope* scope = ObservabilityScope::Current();
  if (scope != nullptr && scope->tracing()) loop_.trace().Enable(false);
  if (!config_.listen_address.empty()) {
    SocketTransportConfig socket_config;
    socket_config.listen_address = config_.listen_address;
    for (const LiveSystemConfig::RemoteSite& peer : config_.remote_sites) {
      socket_config.peers[peer.id] = peer.address;
      Status registered =
          pcp_.RegisterSite(peer.id, peer.participant_protocol);
      PRANY_CHECK_MSG(registered.ok(), registered.ToString());
    }
    socket_transport_ = std::make_unique<SocketTransport>(
        &loop_, &metrics_, std::move(socket_config));
    socket_transport_->SetControlHandler(
        [this](const std::vector<uint8_t>& body) { HandleControl(body); });
    Status started = socket_transport_->Start();
    PRANY_CHECK_MSG(started.ok(), started.ToString());
    net_ = socket_transport_.get();
  } else {
    net_ = &transport_;
  }
  if (config_.txn_id_base != 0) {
    MutexLock lock(submit_mu_);
    txn_ids_.Seed(config_.txn_id_base);
  }
  history_.SetObserver([this](const SigEvent& event) {
    if (event.type != SigEventType::kCoordDecide) return;
    PRANY_CHECK(event.outcome.has_value());
    AwaitShard& shard = ShardFor(event.txn);
    {
      MutexLock lock(shard.mu);
      shard.decided[event.txn] = *event.outcome;
    }
    shard.cv.NotifyAll();
  });
  loop_.Start();
  controller_ = std::thread([this]() { ControllerMain(); });
}

LiveSystem::~LiveSystem() { Stop(); }

LiveSite* LiveSystem::AddSite(ProtocolKind participant_protocol,
                              ProtocolKind coordinator_kind,
                              ProtocolKind u2pc_native) {
  CoordinatorSpec spec;
  spec.kind = coordinator_kind;
  spec.u2pc_native = u2pc_native;
  return AddSiteWithSpec(participant_protocol, spec);
}

LiveSite* LiveSystem::AddSiteWithSpec(ProtocolKind participant_protocol,
                                      const CoordinatorSpec& spec) {
  return AddSiteWithId(static_cast<SiteId>(sites_.size()),
                       participant_protocol, spec);
}

LiveSite* LiveSystem::AddSiteWithId(SiteId id,
                                    ProtocolKind participant_protocol,
                                    const CoordinatorSpec& spec) {
  PRANY_CHECK_MSG(site_index_.count(id) == 0, "duplicate site id");
  Status registered = pcp_.RegisterSite(id, participant_protocol);
  PRANY_CHECK_MSG(registered.ok(), registered.ToString());

  auto wal = std::make_unique<FileStableLog>(
      config_.log_dir + "/site" + std::to_string(id) + ".wal", "wal",
      &metrics_, config_.group_commit);
  FileStableLog* wal_raw = wal.get();
  Status opened = wal_raw->Open();
  PRANY_CHECK_MSG(opened.ok(), opened.ToString());

  auto site = std::make_unique<Site>(id, participant_protocol, spec, &loop_,
                                     net_, &history_, &metrics_, &pcp_,
                                     config_.timing, std::move(wal));
  // A live crash cannot restart itself (it fires inside the handler being
  // crashed, under the engine lock): hand the restart to the controller.
  site->SetRestartHandler([this](SiteId sid, SimDuration downtime) {
    {
      MutexLock lock(crash_mu_);
      restart_queue_.push_back(RestartRequest{sid, downtime});
    }
    crash_cv_.NotifyOne();
  });
  sites_.push_back(std::make_unique<LiveSite>(
      std::move(site), wal_raw, net_, config_.workers_per_site));
  site_index_[id] = sites_.size() - 1;
  LiveSite* ls = sites_.back().get();
  if (config_.pipeline_forces) {
    // The completion seam: durability callbacks re-enter the engine by
    // posting onto the site's worker queue. The raw pointer is safe —
    // callbacks drain before the WAL closes, which precedes sites_
    // destruction (see Stop()).
    ls->site()->EnablePipelinedForces(
        [ls](std::function<void()> fn) { ls->PostTask(std::move(fn)); });
  }
  return ls;
}

Transaction LiveSystem::MakeTransaction(
    SiteId coordinator, const std::vector<SiteId>& participants,
    const std::map<SiteId, Vote>& votes) {
  Transaction txn;
  {
    MutexLock lock(submit_mu_);
    txn.id = txn_ids_.Next();
  }
  txn.coordinator = coordinator;
  for (SiteId p : participants) {
    std::optional<ProtocolKind> protocol = pcp_.ProtocolFor(p);
    PRANY_CHECK_MSG(protocol.has_value(), "participant not registered");
    txn.participants.push_back(ParticipantInfo{p, *protocol});
  }
  txn.planned_votes = votes;
  Status valid = txn.Validate();
  PRANY_CHECK_MSG(valid.ok(), valid.ToString());
  return txn;
}

TxnId LiveSystem::Submit(SiteId coordinator,
                         const std::vector<SiteId>& participants,
                         const std::map<SiteId, Vote>& votes) {
  Transaction txn = MakeTransaction(coordinator, participants, votes);
  SubmitTransaction(txn);
  return txn.id;
}

bool LiveSystem::SubmitTransaction(const Transaction& txn) {
  // Same semantics as System::SubmitAt: install the planned votes, then
  // start commit processing at the coordinator. Each step runs under that
  // site's engine mutex; BeginCommit's initiation force (PrC and friends)
  // releases it mid-call, which is what lets many client threads coalesce
  // their initiation records into one fdatasync.
  for (const auto& [site_id, vote] : txn.planned_votes) {
    LiveSite* ls = FindLocalSite(site_id);
    if (ls == nullptr) {
      // Remote participant: ship the planned vote as a control frame.
      // It is enqueued on the same link BeginCommit's PREPARE will use,
      // so per-link FIFO delivers the setup first.
      PRANY_CHECK_MSG(socket_transport_ != nullptr, "unknown site id");
      socket_transport_->SendControl(
          site_id, EncodePlannedVote(txn.id, site_id, vote));
      continue;
    }
    ls->RunInline(
        [&]() { ls->site()->participant()->SetPlannedVote(txn.id, vote); });
  }
  LiveSite* coord = FindLocalSite(txn.coordinator);
  PRANY_CHECK_MSG(coord != nullptr,
                  "coordinator must be hosted in this process");
  // Refusal must be visible to the caller: a dropped submission has no
  // decision coming, and a client awaiting it would camp on the full
  // timeout. (A crash *during* BeginCommit still counts as accepted — the
  // transaction entered commit processing and resolves by presumption.)
  bool accepted = false;
  coord->RunInline([&]() {
    if (!coord->site()->IsUp()) {
      metrics_.Add("system.dropped_submissions");
      return;
    }
    accepted = true;
    coord->site()->coordinator()->BeginCommit(txn);
  });
  return accepted;
}

std::optional<Outcome> LiveSystem::Await(TxnId txn, uint64_t timeout_us) {
  AwaitShard& shard = ShardFor(txn);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_us);
  MutexLock lock(shard.mu);
  while (shard.decided.count(txn) == 0) {
    if (shard.cv.WaitUntil(shard.mu, deadline)) break;
  }
  auto it = shard.decided.find(txn);
  if (it == shard.decided.end()) return std::nullopt;
  return it->second;
}

void LiveSystem::HandleControl(const std::vector<uint8_t>& body) {
  // Runs on the socket transport's epoll thread (or inline on the
  // sender's thread for a loopback SendControl). Malformed or misrouted
  // records are dropped — control frames are best-effort by contract.
  ByteReader reader(body.data(), body.size());
  uint8_t tag = 0;
  if (!reader.GetU8(&tag).ok() || tag != kControlPlannedVote) return;
  uint64_t txn = 0;
  uint32_t site = 0;
  uint8_t vote_raw = 0;
  if (!reader.GetU64(&txn).ok() || !reader.GetU32(&site).ok() ||
      !reader.GetU8(&vote_raw).ok()) {
    return;
  }
  if (vote_raw > static_cast<uint8_t>(Vote::kReadOnly)) return;
  LiveSite* ls = FindLocalSite(static_cast<SiteId>(site));
  if (ls == nullptr) return;
  ls->RunInline([&]() {
    ls->site()->participant()->SetPlannedVote(
        txn, static_cast<Vote>(vote_raw));
  });
}

bool LiveSystem::Quiesce(uint64_t timeout_us) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_us);
  while (true) {
    bool idle = net_ == socket_transport_.get() ? socket_transport_->Idle()
                                                : transport_.Idle();
    if (idle) {
      for (const auto& site : sites_) {
        // Pipeline before queue: a durability callback still running can
        // post a completion task, which the QueueIdle check then sees; a
        // task enqueued between the two checks implies a busy pipeline
        // (or an executing handler) that its own check caught.
        if (!site->wal()->PipelineIdle() || !site->QueueIdle()) {
          idle = false;
          break;
        }
      }
    }
    if (idle) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------------------
// Crash-restart controller

void LiveSystem::ControllerMain() {
  MutexLock lock(crash_mu_);
  while (true) {
    while (!controller_stop_ && restart_queue_.empty()) {
      crash_cv_.Wait(crash_mu_);
    }
    if (!restart_queue_.empty()) {
      RestartRequest req = restart_queue_.front();
      restart_queue_.pop_front();
      lock.Unlock();
      DoCrashRestart(req);
      lock.Lock();
      continue;
    }
    // Queue drained (every crashed site restarted) — now stop is safe.
    if (controller_stop_) return;
  }
}

void LiveSystem::DoCrashRestart(const RestartRequest& req) {
  LiveSite* ls = live_site(req.site);
  // 1. Tear down the worker pool. Site::CrashNow already crashed the WAL,
  // which woke workers parked in durability waits; they unwind via
  // WalCrashedError, so the join cannot hang on them. Queued messages
  // and timer tasks are discarded (fail-stop).
  ls->StopWorkersAbruptly();
  // 2. Stay down. The transport drops traffic to the site (IsUp is
  // false) while the other sites keep serving.
  std::this_thread::sleep_for(std::chrono::microseconds(req.downtime_us));
  // 3. WAL recovery: rescan the file, truncating the torn tail the crash
  // left behind.
  Status reopened = ls->wal()->Reopen();
  PRANY_CHECK_MSG(reopened.ok(), reopened.ToString());
  WalRecoveryInfo info = ls->wal()->recovery_info();
  // 4. Re-arm the queue *before* recovery so timers armed by the §4.2
  // procedure (inquiry retries, decision resends) buffer instead of
  // being dropped, then rebuild engine state from the recovered log.
  // Compaction afterwards rewrites the file as exactly the surviving
  // records, so the WAL does not grow (and recovery does not slow down)
  // across repeated cycles.
  ls->BeginRestart();
  ls->RunInline([&]() {
    ls->site()->RecoverNow();
    Status compacted = ls->wal()->CompactAndResume();
    PRANY_CHECK_MSG(compacted.ok(), compacted.ToString());
  });
  // 5. Back in business: workers drain whatever buffered during recovery.
  ls->StartWorkers();
  {
    MutexLock lock(crash_mu_);
    ++crash_stats_.cycles;
    if (info.tail_truncated) ++crash_stats_.torn_tail_cycles;
    crash_stats_.records_recovered_total += info.records_recovered;
    ++restart_generation_[req.site];
    last_recovery_[req.site] = info;
  }
  crash_done_cv_.NotifyAll();
  metrics_.Add("system.crash_restarts");
}

WalRecoveryInfo LiveSystem::CrashRestartSite(SiteId site,
                                             uint64_t downtime_us) {
  uint64_t gen0;
  {
    MutexLock lock(crash_mu_);
    gen0 = restart_generation_[site];
  }
  LiveSite* ls = live_site(site);
  ls->RunInline([&]() {
    // Already down: a cycle is in flight; wait for it instead of
    // crashing twice.
    if (!ls->site()->IsUp()) return;
    ls->site()->Crash(downtime_us);
  });
  MutexLock lock(crash_mu_);
  while (restart_generation_[site] <= gen0) crash_done_cv_.Wait(crash_mu_);
  return last_recovery_[site];
}

FailureInjector& LiveSystem::EnableCrashInjection(uint64_t seed) {
  FailureInjector* raw;
  {
    // Previously wrote injector_ with no lock. Callers are told to enable
    // before traffic, but nothing enforced it — a concurrent probe from an
    // earlier EnableCrashInjection's handler would race the install.
    MutexLock lock(injector_mu_);
    PRANY_CHECK_MSG(injector_ == nullptr, "crash injection already enabled");
    injector_ = std::make_unique<FailureInjector>(Rng(seed));
    raw = injector_.get();
  }
  for (const auto& ls : sites_) {
    ls->site()->SetCrashProbeHandler(
        [this](SiteId site, CrashPoint point, TxnId txn) {
          MutexLock lock(injector_mu_);
          return injector_->Probe(site, point, txn);
        });
  }
  // The reference is handed out for pre-traffic rule installs only (see
  // the header contract); rule installs during traffic go through
  // InjectCrashAtPoint, which takes the lock.
  return *raw;
}

void LiveSystem::InjectCrashAtPoint(SiteId site, CrashPoint point,
                                    uint64_t downtime_us) {
  MutexLock lock(injector_mu_);
  PRANY_CHECK_MSG(injector_ != nullptr,
                  "call EnableCrashInjection before installing rules");
  injector_->CrashAtPoint(site, point, kInvalidTxn, downtime_us);
}

bool LiveSystem::AwaitCrashCycles(uint64_t cycles, uint64_t timeout_us) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_us);
  MutexLock lock(crash_mu_);
  while (crash_stats_.cycles < cycles) {
    if (crash_done_cv_.WaitUntil(crash_mu_, deadline)) break;
  }
  return crash_stats_.cycles >= cycles;
}

CrashStats LiveSystem::crash_stats() const {
  MutexLock lock(crash_mu_);
  return crash_stats_;
}

void LiveSystem::Stop() {
  // Exchange, not check-then-set: the destructor and an explicit Stop()
  // (or two owners) may race, and the loser must not rerun the teardown.
  if (stopped_.exchange(true)) return;
  // The crash controller goes first: it finishes any in-flight restart
  // (and every queued one) so no site is left mid-teardown underneath
  // the shutdown sequence below.
  {
    MutexLock lock(crash_mu_);
    controller_stop_ = true;
  }
  crash_cv_.NotifyAll();
  if (controller_.joinable()) controller_.join();
  // Order matters: no new deliveries, then no new timers, then drain the
  // engines, and only then close the WALs (their sync threads must stay
  // alive until the last blocked durability wait has drained).
  transport_.Stop();
  if (socket_transport_ != nullptr) socket_transport_->Stop();
  loop_.Stop();
  for (const auto& site : sites_) site->StopWorkers();
  for (const auto& site : sites_) {
    // The workers are joined: nobody can be parked in a durability wait,
    // and Close()'s final Flush runs on *this* thread, which does not
    // hold the engine mutex — the unlock/lock hooks must not run for it.
    site->wal()->SetWaitHooks(nullptr, nullptr);
    site->wal()->Close();
  }
  history_.SetObserver(nullptr);

  if (loop_.trace().enabled()) {
    timelines_ = BuildTimelines(loop_.trace().events());
    for (const auto& [txn, timeline] : timelines_) {
      if (!timeline.Complete()) continue;
      ObserveTimeline(timeline, &metrics_);
    }
  }
  if (ObservabilityScope* scope = ObservabilityScope::Current()) {
    scope->Collect(loop_.trace(), timelines_, metrics_);
  }
}

AtomicityReport LiveSystem::CheckAtomicity() const {
  return AtomicityChecker::Check(history_);
}

SafeStateReport LiveSystem::CheckSafeState() const {
  return SafeStateChecker::Check(history_);
}

OperationalReport LiveSystem::CheckOperational() const {
  return OperationalChecker::Check(history_, EndStates());
}

std::vector<SiteEndState> LiveSystem::EndStates() const {
  std::vector<SiteEndState> out;
  out.reserve(sites_.size());
  for (const auto& site : sites_) out.push_back(site->site()->EndState());
  return out;
}

LiveSite* LiveSystem::live_site(SiteId id) {
  LiveSite* ls = FindLocalSite(id);
  PRANY_CHECK_MSG(ls != nullptr, "unknown site id");
  return ls;
}

LiveSite* LiveSystem::FindLocalSite(SiteId id) {
  auto it = site_index_.find(id);
  return it == site_index_.end() ? nullptr : sites_[it->second].get();
}

}  // namespace runtime
}  // namespace prany
