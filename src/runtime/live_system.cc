#include "runtime/live_system.h"

#include <chrono>
#include <utility>

#include "common/status.h"
#include "harness/observability.h"
#include "history/atomicity_checker.h"

namespace prany {
namespace runtime {

// ---------------------------------------------------------------------------
// LiveSite

LiveSite::LiveSite(std::unique_ptr<Site> site, FileStableLog* wal,
                   LiveTransport* transport, int workers)
    : site_(std::move(site)), wal_(wal) {
  PRANY_CHECK(wal_ != nullptr && transport != nullptr && workers >= 1);
  // The harness Site registered itself with the transport in its
  // constructor; interpose so deliveries enqueue instead of running the
  // engine on the inbox thread.
  transport->RegisterEndpoint(site_->id(), this);
  // Release the engine mutex across durability waits so concurrent
  // transactions coalesce into one fdatasync. The hooks run with no other
  // locks held (FileStableLog drops its own mutex around them).
  wal_->SetWaitHooks([this]() { engine_mu_.unlock(); },
                     [this]() { engine_mu_.lock(); });
  executor_ = [this](LiveEventLoop::Task task) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stopping_) return;  // post-shutdown timers are dropped
      tasks_.push_back(std::move(task));
    }
    queue_cv_.notify_one();
  };
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { WorkerMain(); });
  }
}

LiveSite::~LiveSite() {
  StopWorkers();
  // Detach the hooks before the Site (and its engines) die; the WAL
  // outlives us only until LiveSystem closes it.
  wal_->SetWaitHooks(nullptr, nullptr);
}

void LiveSite::OnMessage(const Message& msg) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) return;
    msgs_.push_back(msg);
  }
  queue_cv_.notify_one();
}

void LiveSite::RunInline(const std::function<void()>& fn) {
  const LiveEventLoop::Executor* prev =
      LiveEventLoop::CurrentThreadExecutor();
  LiveEventLoop::BindThreadExecutor(&executor_);
  {
    std::unique_lock<std::mutex> lock(engine_mu_);
    fn();
  }
  LiveEventLoop::BindThreadExecutor(prev);
}

void LiveSite::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool LiveSite::QueueIdle() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return msgs_.empty() && tasks_.empty() && executing_ == 0;
}

void LiveSite::WorkerMain() {
  LiveEventLoop::BindThreadExecutor(&executor_);
  std::unique_lock<std::mutex> qlock(queue_mu_);
  while (true) {
    queue_cv_.wait(qlock, [&] {
      return stopping_ || !tasks_.empty() || !msgs_.empty();
    });
    // Drain what is already queued even when stopping: messages enqueued
    // before shutdown still complete their handlers.
    if (!tasks_.empty()) {
      LiveEventLoop::Task task = std::move(tasks_.front());
      tasks_.pop_front();
      ++executing_;
      qlock.unlock();
      {
        // Timer callbacks need no busy-set entry: engines only arm timers
        // once a handler's forces are complete, and strong cancellation
        // (see LiveEventLoop) covers the rest.
        std::lock_guard<std::mutex> elock(engine_mu_);
        task();
      }
      qlock.lock();
      --executing_;
      continue;
    }
    if (!msgs_.empty()) {
      Message msg = std::move(msgs_.front());
      msgs_.pop_front();
      ++executing_;
      qlock.unlock();
      HandleMessage(msg);
      qlock.lock();
      --executing_;
      continue;
    }
    if (stopping_) return;
  }
}

void LiveSite::HandleMessage(const Message& msg) {
  std::unique_lock<std::mutex> elock(engine_mu_);
  // Serialize per transaction: the engine mutex is released at durability
  // waits, and message handlers are not idempotent under same-transaction
  // interleaving at those yield points. Distinct transactions interleave
  // freely — that is the whole point of group commit.
  while (busy_.count(msg.txn) != 0) {
    ++busy_waiters_;
    busy_cv_.wait(elock);
    --busy_waiters_;
  }
  busy_.insert(msg.txn);
  site_->OnMessage(msg);
  busy_.erase(msg.txn);
  // Same-transaction collisions are rare; skip the wakeup storm when no
  // worker is parked on the busy set.
  if (busy_waiters_ > 0) busy_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// LiveSystem

LiveSystem::LiveSystem(LiveSystemConfig config)
    : config_(config), transport_(&loop_, &metrics_) {
  ObservabilityScope* scope = ObservabilityScope::Current();
  if (scope != nullptr && scope->tracing()) loop_.trace().Enable(false);
  history_.SetObserver([this](const SigEvent& event) {
    if (event.type != SigEventType::kCoordDecide) return;
    PRANY_CHECK(event.outcome.has_value());
    AwaitShard& shard = ShardFor(event.txn);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.decided[event.txn] = *event.outcome;
    }
    shard.cv.notify_all();
  });
  loop_.Start();
}

LiveSystem::~LiveSystem() { Stop(); }

LiveSite* LiveSystem::AddSite(ProtocolKind participant_protocol,
                              ProtocolKind coordinator_kind,
                              ProtocolKind u2pc_native) {
  CoordinatorSpec spec;
  spec.kind = coordinator_kind;
  spec.u2pc_native = u2pc_native;
  return AddSiteWithSpec(participant_protocol, spec);
}

LiveSite* LiveSystem::AddSiteWithSpec(ProtocolKind participant_protocol,
                                      const CoordinatorSpec& spec) {
  SiteId id = static_cast<SiteId>(sites_.size());
  Status registered = pcp_.RegisterSite(id, participant_protocol);
  PRANY_CHECK_MSG(registered.ok(), registered.ToString());

  auto wal = std::make_unique<FileStableLog>(
      config_.log_dir + "/site" + std::to_string(id) + ".wal", "wal",
      &metrics_, config_.group_commit);
  FileStableLog* wal_raw = wal.get();
  Status opened = wal_raw->Open();
  PRANY_CHECK_MSG(opened.ok(), opened.ToString());

  auto site = std::make_unique<Site>(id, participant_protocol, spec, &loop_,
                                     &transport_, &history_, &metrics_,
                                     &pcp_, config_.timing, std::move(wal));
  sites_.push_back(std::make_unique<LiveSite>(
      std::move(site), wal_raw, &transport_, config_.workers_per_site));
  return sites_.back().get();
}

Transaction LiveSystem::MakeTransaction(
    SiteId coordinator, const std::vector<SiteId>& participants,
    const std::map<SiteId, Vote>& votes) {
  Transaction txn;
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    txn.id = txn_ids_.Next();
  }
  txn.coordinator = coordinator;
  for (SiteId p : participants) {
    std::optional<ProtocolKind> protocol = pcp_.ProtocolFor(p);
    PRANY_CHECK_MSG(protocol.has_value(), "participant not registered");
    txn.participants.push_back(ParticipantInfo{p, *protocol});
  }
  txn.planned_votes = votes;
  Status valid = txn.Validate();
  PRANY_CHECK_MSG(valid.ok(), valid.ToString());
  return txn;
}

TxnId LiveSystem::Submit(SiteId coordinator,
                         const std::vector<SiteId>& participants,
                         const std::map<SiteId, Vote>& votes) {
  Transaction txn = MakeTransaction(coordinator, participants, votes);
  SubmitTransaction(txn);
  return txn.id;
}

void LiveSystem::SubmitTransaction(const Transaction& txn) {
  // Same semantics as System::SubmitAt: install the planned votes, then
  // start commit processing at the coordinator. Each step runs under that
  // site's engine mutex; BeginCommit's initiation force (PrC and friends)
  // releases it mid-call, which is what lets many client threads coalesce
  // their initiation records into one fdatasync.
  for (const auto& [site_id, vote] : txn.planned_votes) {
    LiveSite* ls = live_site(site_id);
    ls->RunInline(
        [&]() { ls->site()->participant()->SetPlannedVote(txn.id, vote); });
  }
  LiveSite* coord = live_site(txn.coordinator);
  coord->RunInline([&]() {
    if (!coord->site()->IsUp()) {
      metrics_.Add("system.dropped_submissions");
      return;
    }
    coord->site()->coordinator()->BeginCommit(txn);
  });
}

std::optional<Outcome> LiveSystem::Await(TxnId txn, uint64_t timeout_us) {
  AwaitShard& shard = ShardFor(txn);
  std::unique_lock<std::mutex> lock(shard.mu);
  bool decided = shard.cv.wait_for(
      lock, std::chrono::microseconds(timeout_us),
      [&] { return shard.decided.count(txn) > 0; });
  if (!decided) return std::nullopt;
  return shard.decided[txn];
}

bool LiveSystem::Quiesce(uint64_t timeout_us) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_us);
  while (true) {
    bool idle = transport_.Idle();
    if (idle) {
      for (const auto& site : sites_) {
        if (!site->QueueIdle()) {
          idle = false;
          break;
        }
      }
    }
    if (idle) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void LiveSystem::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Order matters: no new deliveries, then no new timers, then drain the
  // engines, and only then close the WALs (their sync threads must stay
  // alive until the last blocked durability wait has drained).
  transport_.Stop();
  loop_.Stop();
  for (const auto& site : sites_) site->StopWorkers();
  for (const auto& site : sites_) {
    // The workers are joined: nobody can be parked in a durability wait,
    // and Close()'s final Flush runs on *this* thread, which does not
    // hold the engine mutex — the unlock/lock hooks must not run for it.
    site->wal()->SetWaitHooks(nullptr, nullptr);
    site->wal()->Close();
  }
  history_.SetObserver(nullptr);

  if (loop_.trace().enabled()) {
    timelines_ = BuildTimelines(loop_.trace().events());
    for (const auto& [txn, timeline] : timelines_) {
      if (!timeline.Complete()) continue;
      ObserveTimeline(timeline, &metrics_);
    }
  }
  if (ObservabilityScope* scope = ObservabilityScope::Current()) {
    scope->Collect(loop_.trace(), timelines_, metrics_);
  }
}

AtomicityReport LiveSystem::CheckAtomicity() const {
  return AtomicityChecker::Check(history_);
}

SafeStateReport LiveSystem::CheckSafeState() const {
  return SafeStateChecker::Check(history_);
}

OperationalReport LiveSystem::CheckOperational() const {
  return OperationalChecker::Check(history_, EndStates());
}

std::vector<SiteEndState> LiveSystem::EndStates() const {
  std::vector<SiteEndState> out;
  out.reserve(sites_.size());
  for (const auto& site : sites_) out.push_back(site->site()->EndState());
  return out;
}

LiveSite* LiveSystem::live_site(SiteId id) {
  PRANY_CHECK_MSG(id < sites_.size(), "unknown site id");
  return sites_[id].get();
}

}  // namespace runtime
}  // namespace prany
