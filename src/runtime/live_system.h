// The live execution backend: real threads, wall-clock timers, file-backed
// WALs — same protocol state machines as the simulator.
//
// Concurrency model. Each LiveSite wraps one harness Site and serializes
// every entry into its engines (message delivery, timer callbacks, client
// submissions) under a per-site engine mutex — the live analogue of the
// simulator's single thread. Three refinements make group commit work:
//
//   1. Forced WAL appends release the engine mutex for the duration of the
//      durability wait (FileStableLog wait hooks), so other transactions
//      at the same site can run and coalesce their forces into one
//      fdatasync. This mirrors the sim, where a forced write is a
//      scheduled-latency yield point.
//   2. Because the mutex is released mid-handler, two deliveries for the
//      *same* transaction could interleave at a yield point; a per-site
//      busy set serializes message handling per transaction (engine
//      handlers are not idempotent under that interleaving; distinct
//      transactions touch disjoint table entries and are safe).
//   3. Timer callbacks are bound to the scheduling site's executor
//      (LiveEventLoop thread-local binding), so they also run under the
//      engine mutex, and cancellation from engine code is strong.
//
// Shutdown order: transport → timer loop → site workers → WAL close. WAL
// sync threads outlive the workers so any worker blocked in a durability
// wait drains instead of deadlocking.

#ifndef PRANY_RUNTIME_LIVE_SYSTEM_H_
#define PRANY_RUNTIME_LIVE_SYSTEM_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/timeline.h"
#include "core/safe_state.h"
#include "harness/site.h"
#include "history/operational_checker.h"
#include "runtime/live_loop.h"
#include "runtime/live_transport.h"
#include "txn/transaction.h"
#include "wal/file_stable_log.h"

namespace prany {
namespace runtime {

/// Construction-time parameters for a LiveSystem.
struct LiveSystemConfig {
  TimingConfig timing;
  /// Engine worker threads per site. More than one only helps because
  /// durability waits release the engine mutex.
  int workers_per_site = 4;
  GroupCommitConfig group_commit;
  /// Directory for per-site WAL files (site<N>.wal). Must exist.
  std::string log_dir = ".";
};

/// One site of the live system: the harness Site plus its worker pool,
/// engine mutex, and file-backed WAL. Created via LiveSystem::AddSite.
class LiveSite : public NetworkEndpoint {
 public:
  LiveSite(std::unique_ptr<Site> site, FileStableLog* wal,
           LiveTransport* transport, int workers);
  ~LiveSite() override;

  LiveSite(const LiveSite&) = delete;
  LiveSite& operator=(const LiveSite&) = delete;

  // NetworkEndpoint (interposed in front of the harness Site): delivery
  // is a fast enqueue onto the worker queue, never blocking the inbox
  // thread on the engine mutex.
  void OnMessage(const Message& msg) override;
  bool IsUp() const override { return site_->IsUp(); }

  /// Runs `fn` on the caller's thread under the engine mutex, with the
  /// caller temporarily bound to this site's executor (so timers armed by
  /// `fn` fire under this site's serialization). Used for submissions and
  /// quiescent-state reads.
  void RunInline(const std::function<void()>& fn);

  /// Drains and joins the worker pool. Tasks/messages enqueued afterwards
  /// are dropped. Idempotent.
  void StopWorkers();

  /// True when no message/task is queued or executing.
  bool QueueIdle() const;

  Site* site() { return site_.get(); }
  const Site* site() const { return site_.get(); }
  FileStableLog* wal() { return wal_; }
  const FileStableLog* wal() const { return wal_; }

 private:
  void WorkerMain();
  void HandleMessage(const Message& msg);

  std::unique_ptr<Site> site_;
  FileStableLog* wal_;

  /// Serializes all engine entry points; released across durability waits.
  std::mutex engine_mu_;
  /// Transactions with a message handler in flight (possibly parked at a
  /// durability wait); guarded by engine_mu_.
  std::set<TxnId> busy_;
  std::condition_variable busy_cv_;
  int busy_waiters_ = 0;  ///< Workers parked on busy_cv_; guarded by engine_mu_.

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Message> msgs_;
  std::deque<LiveEventLoop::Task> tasks_;
  int executing_ = 0;  ///< Workers currently running an item.
  bool stopping_ = false;

  /// Posts to the worker queue; what timer callbacks bound to this site
  /// run through.
  LiveEventLoop::Executor executor_;

  std::vector<std::thread> workers_;
};

/// Drop-in live counterpart of harness::System: same site topology, same
/// submission semantics, wall-clock execution. Transactions are submitted
/// from client threads and awaited via the history observer.
class LiveSystem {
 public:
  explicit LiveSystem(LiveSystemConfig config = {});
  ~LiveSystem();

  LiveSystem(const LiveSystem&) = delete;
  LiveSystem& operator=(const LiveSystem&) = delete;

  /// Adds a site (ids sequential from 0); opens its WAL under
  /// config.log_dir. Add all sites before the first Submit.
  LiveSite* AddSite(ProtocolKind participant_protocol,
                    ProtocolKind coordinator_kind = ProtocolKind::kPrAny,
                    ProtocolKind u2pc_native = ProtocolKind::kPrN);
  LiveSite* AddSiteWithSpec(ProtocolKind participant_protocol,
                            const CoordinatorSpec& spec);

  /// Builds a transaction descriptor with protocols resolved from the PCP.
  /// Thread-safe.
  Transaction MakeTransaction(SiteId coordinator,
                              const std::vector<SiteId>& participants,
                              const std::map<SiteId, Vote>& votes = {});

  /// Installs planned votes and begins commit processing, synchronously on
  /// the calling thread (under the involved sites' engine mutexes). Safe
  /// to call from many client threads. Returns the txn id.
  TxnId Submit(SiteId coordinator, const std::vector<SiteId>& participants,
               const std::map<SiteId, Vote>& votes = {});
  void SubmitTransaction(const Transaction& txn);

  /// Blocks until the coordinator decides `txn` (observed on the history)
  /// or the wall-clock timeout (microseconds) elapses.
  std::optional<Outcome> Await(TxnId txn, uint64_t timeout_us);

  /// Waits until transport and all site queues are idle (best-effort; poll
  /// based). Returns false on timeout.
  bool Quiesce(uint64_t timeout_us);

  /// Shuts everything down in dependency order, folds timelines/metrics,
  /// and reports to the ambient ObservabilityScope. Idempotent; also run
  /// by the destructor. No Submit/Await after Stop.
  void Stop();

  // Correctness evaluations over the recorded history / end state
  // (quiescent use: after Stop or a successful Quiesce).
  AtomicityReport CheckAtomicity() const;
  SafeStateReport CheckSafeState() const;
  OperationalReport CheckOperational() const;
  std::vector<SiteEndState> EndStates() const;

  /// Per-transaction timelines, built by Stop() when tracing was enabled.
  const std::map<TxnId, TxnTimeline>& timelines() const {
    return timelines_;
  }

  LiveEventLoop& loop() { return loop_; }
  LiveTransport& transport() { return transport_; }
  EventLog& history() { return history_; }
  const EventLog& history() const { return history_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const PcpTable& pcp() const { return pcp_; }

  LiveSite* live_site(SiteId id);
  Site* site(SiteId id) { return live_site(id)->site(); }
  size_t site_count() const { return sites_.size(); }

  const LiveSystemConfig& config() const { return config_; }

 private:
  LiveSystemConfig config_;
  LiveEventLoop loop_;
  MetricsRegistry metrics_;
  EventLog history_;
  LiveTransport transport_;
  PcpTable pcp_;
  TxnIdGenerator txn_ids_;
  std::mutex submit_mu_;  ///< Guards txn_ids_.

  std::vector<std::unique_ptr<LiveSite>> sites_;

  /// Decision registry, sharded by txn id so a decide only wakes the
  /// clients parked on that shard (one cv for hundreds of closed-loop
  /// clients is a thundering herd).
  struct AwaitShard {
    std::mutex mu;
    std::condition_variable cv;
    std::map<TxnId, Outcome> decided;
  };
  static constexpr size_t kAwaitShards = 256;
  AwaitShard await_shards_[kAwaitShards];
  AwaitShard& ShardFor(TxnId txn) {
    return await_shards_[txn % kAwaitShards];
  }

  bool stopped_ = false;
  std::map<TxnId, TxnTimeline> timelines_;
};

}  // namespace runtime
}  // namespace prany

#endif  // PRANY_RUNTIME_LIVE_SYSTEM_H_
