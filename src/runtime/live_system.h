// The live execution backend: real threads, wall-clock timers, file-backed
// WALs — same protocol state machines as the simulator.
//
// Concurrency model. Each LiveSite wraps one harness Site and serializes
// every entry into its engines (message delivery, timer callbacks, client
// submissions) under a per-site engine mutex — the live analogue of the
// simulator's single thread. Three refinements make group commit work:
//
//   1. Forced WAL appends release the engine mutex for the duration of the
//      durability wait (FileStableLog wait hooks), so other transactions
//      at the same site can run and coalesce their forces into one
//      fdatasync. This mirrors the sim, where a forced write is a
//      scheduled-latency yield point.
//   2. Because the mutex is released mid-handler — and because workers
//      race from the FIFO queue to the mutex — deliveries for the *same*
//      transaction could interleave or even invert at a yield point. A
//      per-transaction admission gate (sequence numbers stamped at
//      enqueue) runs each transaction's messages one at a time, in
//      delivery order, preserving the transport's per-link FIFO contract
//      that the protocols assume (a DECISION must not overtake the
//      PREPARE it answers). Distinct transactions touch disjoint table
//      entries and interleave freely.
//   3. Timer callbacks are bound to the scheduling site's executor
//      (LiveEventLoop thread-local binding), so they also run under the
//      engine mutex, and cancellation from engine code is strong.
//
// Shutdown order: transport → timer loop → site workers → WAL close. WAL
// sync threads outlive the workers so any worker blocked in a durability
// wait drains instead of deadlocking.

#ifndef PRANY_RUNTIME_LIVE_SYSTEM_H_
#define PRANY_RUNTIME_LIVE_SYSTEM_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "common/timeline.h"
#include "core/safe_state.h"
#include "harness/failure_injector.h"
#include "harness/site.h"
#include "history/operational_checker.h"
#include "runtime/live_loop.h"
#include "runtime/live_transport.h"
#include "runtime/socket_transport.h"
#include "txn/transaction.h"
#include "wal/file_stable_log.h"

namespace prany {
namespace runtime {

/// What the crash-restart controller has done so far.
struct CrashStats {
  uint64_t cycles = 0;            ///< Completed crash-restart cycles.
  uint64_t torn_tail_cycles = 0;  ///< Cycles whose recovery truncated a tail.
  uint64_t records_recovered_total = 0;
};

/// Construction-time parameters for a LiveSystem.
struct LiveSystemConfig {
  TimingConfig timing;
  /// Engine worker threads per site. More than one only helps because
  /// durability waits release the engine mutex.
  int workers_per_site = 4;
  GroupCommitConfig group_commit;
  /// Pipeline latency-critical forced writes (see
  /// EngineContext::pipeline_forces): the decision/initiation/PREPARED
  /// forces stop blocking engine workers, and the sends they gate run
  /// from the WAL sync thread immediately after the fdatasync.
  /// Force-before-send (R1-R4) holds physically either way; this only
  /// removes scheduler hops from the commit latency path.
  bool pipeline_forces = true;
  /// Directory for per-site WAL files (site<N>.wal). Must exist.
  std::string log_dir = ".";

  // ---- Socket cluster mode (multi-process sites) --------------------
  //
  // When listen_address is non-empty the system runs on a SocketTransport
  // bound there instead of the in-memory transport. This process then
  // hosts only its own sites — add them with AddSiteWithId so their ids
  // match the global topology — while remote_sites describes every site
  // hosted elsewhere. Remote participants are reachable for PREPAREs and
  // planned-vote setup (sent as control frames ordered before the
  // PREPAREs on the same link); coordinators must be local.

  /// This process's listen address ("uds:<path>" or "tcp:host:port");
  /// empty selects the in-memory LiveTransport.
  std::string listen_address;
  struct RemoteSite {
    SiteId id = kInvalidSite;
    /// Registered in the local PCP so MakeTransaction can resolve the
    /// remote participant's protocol; must match what that process runs.
    ProtocolKind participant_protocol = ProtocolKind::kPrN;
    std::string address;  ///< Dial address, e.g. "uds:/tmp/site1.sock".
  };
  std::vector<RemoteSite> remote_sites;
  /// First transaction id this process allocates (0 keeps the default).
  /// Cluster processes must use disjoint ranges — e.g.
  /// (site_id + 1) << 40 — so ids are globally unique.
  TxnId txn_id_base = 0;
};

/// One site of the live system: the harness Site plus its worker pool,
/// engine mutex, and file-backed WAL. Created via LiveSystem::AddSite.
class LiveSite : public NetworkEndpoint {
 public:
  LiveSite(std::unique_ptr<Site> site, FileStableLog* wal,
           ITransport* transport, int workers);
  ~LiveSite() override;

  LiveSite(const LiveSite&) = delete;
  LiveSite& operator=(const LiveSite&) = delete;

  // NetworkEndpoint (interposed in front of the harness Site): delivery
  // is a fast enqueue onto the worker queue, never blocking the inbox
  // thread on the engine mutex.
  void OnMessage(const Message& msg) override;
  bool IsUp() const override { return site_->IsUp(); }

  /// Runs `fn` on the caller's thread under the engine mutex, with the
  /// caller temporarily bound to this site's executor (so timers armed by
  /// `fn` fire under this site's serialization). Used for submissions and
  /// quiescent-state reads.
  void RunInline(const std::function<void()>& fn);

  /// Posts `fn` onto the worker queue (it runs under the engine mutex,
  /// like a timer callback). Thread-safe; dropped once the site is
  /// stopping. The engines' pipelined-force completion seam.
  void PostTask(std::function<void()> fn) { executor_(std::move(fn)); }

  /// Drains and joins the worker pool. Tasks/messages enqueued afterwards
  /// are dropped. Idempotent.
  void StopWorkers();

  /// Crash teardown: discards queued messages and timer tasks (a down
  /// site executes nothing) and joins the worker pool. The WAL must
  /// already be crashed so workers parked in durability waits unwind via
  /// WalCrashedError instead of blocking the join.
  void StopWorkersAbruptly();

  /// Re-arms the queue after a crash teardown: messages and timer tasks
  /// arriving from here on are buffered (not dropped) until StartWorkers.
  /// Call before Site::RecoverNow so recovery-armed timers survive.
  void BeginRestart();

  /// Spawns a fresh worker pool (same size as at construction).
  void StartWorkers();

  /// True when no message/task is queued or executing.
  bool QueueIdle() const;

  Site* site() { return site_.get(); }
  const Site* site() const { return site_.get(); }
  FileStableLog* wal() { return wal_; }
  const FileStableLog* wal() const { return wal_; }

 private:
  /// A delivered message plus its admission ticket: `seq` is the
  /// per-transaction enqueue order, `epoch` the queue generation it was
  /// stamped under (crash teardown bumps the epoch, voiding stale tickets).
  struct QueuedMessage {
    Message msg;
    uint64_t seq = 0;
    uint64_t epoch = 0;
  };

  /// Per-transaction admission bookkeeping; guarded by queue_mu_.
  struct TxnOrder {
    uint64_t next_stamp = 0;  ///< Seq the next enqueued message gets.
    uint64_t next_run = 0;    ///< Seq the next admitted handler must hold.
  };

  void WorkerMain() PRANY_EXCLUDES(queue_mu_, engine_mu_);
  void HandleMessage(const QueuedMessage& qm)
      PRANY_EXCLUDES(queue_mu_, engine_mu_);

  /// The WAL wait hooks: release/reacquire the engine mutex around a
  /// durability wait so concurrent transactions coalesce their forces.
  /// Unanalyzed by declared exception (docs/STATIC_ANALYSIS.md): the
  /// lock handoff crosses the type-erased std::function hook boundary,
  /// which the annotation language cannot express — the caller's
  /// MutexLock still believes it holds engine_mu_, and the paired hook
  /// restores that truth before control returns to it.
  void UnlockEngineForDurabilityWait() PRANY_NO_THREAD_SAFETY_ANALYSIS {
    engine_mu_.Unlock();
  }
  void RelockEngineAfterDurabilityWait() PRANY_NO_THREAD_SAFETY_ANALYSIS {
    engine_mu_.Lock();
  }

  std::unique_ptr<Site> site_;
  FileStableLog* wal_;

  /// Serializes all engine entry points; released across durability waits.
  /// Engine rank: the outermost lock — everything else is acquired below
  /// it, never the reverse. (site_ is deliberately not PT_GUARDED_BY it:
  /// quiescent reads — EndStates, checkers — legitimately run unlocked.)
  Mutex engine_mu_ PRANY_ACQUIRED_BEFORE(lock_order::kQueueRank);

  /// Queue rank: taken from engine code (OnMessage via the inbox thread
  /// is lock-free until here) and by workers claiming items.
  mutable Mutex queue_mu_ PRANY_ACQUIRED_AFTER(lock_order::kEngineRank)
      PRANY_ACQUIRED_BEFORE(lock_order::kWalSyncRank);
  CondVar queue_cv_;
  std::deque<QueuedMessage> msgs_ PRANY_GUARDED_BY(queue_mu_);
  std::deque<LiveEventLoop::Task> tasks_ PRANY_GUARDED_BY(queue_mu_);
  /// Per-transaction FIFO gate. The transport delivers each link's
  /// messages in order and the protocols depend on it (a DECISION must
  /// never overtake the PREPARE it answers), but workers race from the
  /// queue to the engine mutex — so handler admission is gated on the
  /// enqueue-time sequence number instead. An entry is erased once every
  /// stamped message has run. Hash map: the stamp lookup runs once per
  /// delivered message, and no ordering is needed.
  std::unordered_map<TxnId, TxnOrder> txn_order_ PRANY_GUARDED_BY(queue_mu_);
  CondVar order_cv_;
  /// Workers parked on order_cv_.
  int order_waiters_ PRANY_GUARDED_BY(queue_mu_) = 0;
  /// Bumped by StopWorkersAbruptly.
  uint64_t queue_epoch_ PRANY_GUARDED_BY(queue_mu_) = 0;
  /// Workers currently running an item.
  int executing_ PRANY_GUARDED_BY(queue_mu_) = 0;
  bool stopping_ PRANY_GUARDED_BY(queue_mu_) = false;

  /// Posts to the worker queue; what timer callbacks bound to this site
  /// run through.
  LiveEventLoop::Executor executor_;

  int worker_count_;
  /// Unguarded by contract: the pool's lifecycle (spawn, join, clear) is
  /// driven from one thread at a time — construction, LiveSystem::Stop,
  /// or the crash controller between StopWorkersAbruptly and
  /// StartWorkers — never concurrently with itself.
  std::vector<std::thread> workers_;
};

/// Drop-in live counterpart of harness::System: same site topology, same
/// submission semantics, wall-clock execution. Transactions are submitted
/// from client threads and awaited via the history observer.
class LiveSystem {
 public:
  explicit LiveSystem(LiveSystemConfig config = {});
  ~LiveSystem();

  LiveSystem(const LiveSystem&) = delete;
  LiveSystem& operator=(const LiveSystem&) = delete;

  /// Adds a site (ids sequential from 0); opens its WAL under
  /// config.log_dir. Add all sites before the first Submit.
  LiveSite* AddSite(ProtocolKind participant_protocol,
                    ProtocolKind coordinator_kind = ProtocolKind::kPrAny,
                    ProtocolKind u2pc_native = ProtocolKind::kPrN);
  LiveSite* AddSiteWithSpec(ProtocolKind participant_protocol,
                            const CoordinatorSpec& spec);

  /// Cluster-mode variant: adds a local site with an explicit (globally
  /// meaningful, possibly sparse) id. Ids must be unique within the
  /// process and disjoint from config.remote_sites.
  LiveSite* AddSiteWithId(SiteId id, ProtocolKind participant_protocol,
                          const CoordinatorSpec& spec);

  /// Builds a transaction descriptor with protocols resolved from the PCP.
  /// Thread-safe.
  Transaction MakeTransaction(SiteId coordinator,
                              const std::vector<SiteId>& participants,
                              const std::map<SiteId, Vote>& votes = {});

  /// Installs planned votes and begins commit processing, synchronously on
  /// the calling thread (under the involved sites' engine mutexes). Safe
  /// to call from many client threads. Returns the txn id.
  TxnId Submit(SiteId coordinator, const std::vector<SiteId>& participants,
               const std::map<SiteId, Vote>& votes = {});

  /// Returns false iff the submission was refused because the coordinator
  /// was down: the transaction never entered commit processing and no
  /// decision will ever be recorded for its id — awaiting it can only time
  /// out, so callers must not camp on Await for a refused submission.
  bool SubmitTransaction(const Transaction& txn);

  /// Blocks until the coordinator decides `txn` (observed on the history)
  /// or the wall-clock timeout (microseconds) elapses.
  std::optional<Outcome> Await(TxnId txn, uint64_t timeout_us);

  /// Waits until transport and all site queues are idle (best-effort; poll
  /// based). Returns false on timeout.
  bool Quiesce(uint64_t timeout_us);

  // --- Crash-restart harness -----------------------------------------
  //
  // A live crash is the full fail-stop teardown: worker threads joined,
  // queued messages and timer tasks discarded, the WAL torn at a random
  // byte inside its unacknowledged suffix, and both engines' volatile
  // state wiped. Restart re-runs FileStableLog recovery and the paper's
  // §4.2 procedure (redo decisions, re-inquire in-doubt transactions)
  // while the other sites keep serving. Cycles run on a dedicated
  // controller thread, because a crash fired from a crash-point probe
  // happens *inside* the handler being crashed.

  /// Crashes `site` now and restarts it after ~`downtime_us` of wall
  /// clock. Blocks until the cycle completes; returns what the WAL
  /// recovery scan found. No-op returning the last recovery if the site
  /// is already down (the in-flight cycle is awaited instead).
  WalRecoveryInfo CrashRestartSite(SiteId site, uint64_t downtime_us);

  /// Installs a FailureInjector consulted at every engine crash point on
  /// every site — the sim harness's crash-point vocabulary, live. Crashes
  /// it injects restart through the controller with their requested
  /// downtime. Returns the injector for rule installation; call before
  /// traffic starts (probes are serialized internally).
  FailureInjector& EnableCrashInjection(uint64_t seed);

  /// Thread-safe one-shot rule install while traffic is running: crash
  /// `site` the next time it passes `point` (any transaction), then
  /// restart it after ~`downtime_us`. Requires EnableCrashInjection.
  /// (The injector reference itself is single-threaded; direct rule
  /// installs race with probes once workers are live.)
  void InjectCrashAtPoint(SiteId site, CrashPoint point,
                          uint64_t downtime_us);

  /// Blocks until `cycles` crash-restart cycles have completed or
  /// `timeout_us` elapses; false on timeout.
  bool AwaitCrashCycles(uint64_t cycles, uint64_t timeout_us);

  CrashStats crash_stats() const;

  /// Shuts everything down in dependency order, folds timelines/metrics,
  /// and reports to the ambient ObservabilityScope. Idempotent; also run
  /// by the destructor. No Submit/Await after Stop.
  void Stop();

  // Correctness evaluations over the recorded history / end state
  // (quiescent use: after Stop or a successful Quiesce).
  AtomicityReport CheckAtomicity() const;
  SafeStateReport CheckSafeState() const;
  OperationalReport CheckOperational() const;
  std::vector<SiteEndState> EndStates() const;

  /// Per-transaction timelines, built by Stop() when tracing was enabled.
  const std::map<TxnId, TxnTimeline>& timelines() const {
    return timelines_;
  }

  LiveEventLoop& loop() { return loop_; }
  LiveTransport& transport() { return transport_; }
  /// Null unless config.listen_address selected socket mode.
  SocketTransport* socket_transport() { return socket_transport_.get(); }
  /// The transport the sites actually use.
  ITransport* net() { return net_; }
  EventLog& history() { return history_; }
  const EventLog& history() const { return history_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const PcpTable& pcp() const { return pcp_; }

  LiveSite* live_site(SiteId id);
  Site* site(SiteId id) { return live_site(id)->site(); }
  size_t site_count() const { return sites_.size(); }

  const LiveSystemConfig& config() const { return config_; }

 private:
  /// Planned-vote setup record for a remote participant (control frame).
  /// Best-effort like any message: a lost frame means the participant
  /// falls back to its default vote, an omission the protocols absorb.
  void HandleControl(const std::vector<uint8_t>& body);
  /// live_site() that returns null instead of CHECKing — remote sites
  /// are legitimately absent from this process.
  LiveSite* FindLocalSite(SiteId id);

  LiveSystemConfig config_;
  LiveEventLoop loop_;
  MetricsRegistry metrics_;
  EventLog history_;
  LiveTransport transport_;
  /// Socket cluster mode only; sites then register here, not with
  /// transport_ (which stays idle).
  std::unique_ptr<SocketTransport> socket_transport_;
  /// Whichever of the two transports the sites use.
  ITransport* net_ = nullptr;
  PcpTable pcp_;
  TxnIdGenerator txn_ids_ PRANY_GUARDED_BY(submit_mu_);
  /// Guards txn_ids_. Leaf: nothing is acquired while holding it.
  Mutex submit_mu_ PRANY_ACQUIRED_AFTER(lock_order::kCrashRank);

  std::vector<std::unique_ptr<LiveSite>> sites_;
  /// SiteId -> index in sites_. Identity in-process; sparse in cluster
  /// mode (a process hosts a subset of the global topology). Written
  /// only during single-threaded setup (AddSite*).
  std::map<SiteId, size_t> site_index_;

  /// Decision registry, sharded by txn id so a decide only wakes the
  /// clients parked on that shard (one cv for hundreds of closed-loop
  /// clients is a thundering herd).
  struct AwaitShard {
    /// Leaf (metrics rank): the decide observer fires under history shard
    /// locks and acquires nothing further from here.
    Mutex mu PRANY_ACQUIRED_AFTER(lock_order::kCrashRank);
    CondVar cv;
    std::map<TxnId, Outcome> decided PRANY_GUARDED_BY(mu);
  };
  static constexpr size_t kAwaitShards = 256;
  AwaitShard await_shards_[kAwaitShards];
  AwaitShard& ShardFor(TxnId txn) {
    return await_shards_[txn % kAwaitShards];
  }

  // Crash-restart controller state. Site::Crash (running under the
  // crashing site's engine lock) enqueues a request; the controller
  // thread performs the teardown/restart asynchronously.
  struct RestartRequest {
    SiteId site = kInvalidSite;
    uint64_t downtime_us = 0;
  };
  void ControllerMain() PRANY_EXCLUDES(crash_mu_);
  void DoCrashRestart(const RestartRequest& req) PRANY_EXCLUDES(crash_mu_);

  std::thread controller_;
  /// Crash rank: requested from engine code (Site::Crash runs under the
  /// crashing site's engine lock, and a forced append's WAL lock may be
  /// in the caller's past but is never held across the request).
  mutable Mutex crash_mu_ PRANY_ACQUIRED_AFTER(lock_order::kWalSyncRank)
      PRANY_ACQUIRED_BEFORE(lock_order::kMetricsRank);
  CondVar crash_cv_;       ///< Wakes the controller.
  CondVar crash_done_cv_;  ///< Wakes cycle waiters.
  std::deque<RestartRequest> restart_queue_ PRANY_GUARDED_BY(crash_mu_);
  bool controller_stop_ PRANY_GUARDED_BY(crash_mu_) = false;
  CrashStats crash_stats_ PRANY_GUARDED_BY(crash_mu_);
  std::map<SiteId, uint64_t> restart_generation_ PRANY_GUARDED_BY(crash_mu_);
  std::map<SiteId, WalRecoveryInfo> last_recovery_ PRANY_GUARDED_BY(crash_mu_);

  /// Live crash injection: probes fire concurrently from every site's
  /// workers, so the (single-threaded) injector is wrapped in a mutex.
  /// Crash rank, same band as crash_mu_ (the two never nest).
  Mutex injector_mu_ PRANY_ACQUIRED_AFTER(lock_order::kWalSyncRank)
      PRANY_ACQUIRED_BEFORE(lock_order::kMetricsRank);
  std::unique_ptr<FailureInjector> injector_ PRANY_GUARDED_BY(injector_mu_);

  /// Exchange in Stop() makes concurrent Stop calls (explicit + the
  /// destructor, or two owners racing) run the teardown exactly once;
  /// the plain bool it replaced was a check-then-set race.
  std::atomic<bool> stopped_{false};
  std::map<TxnId, TxnTimeline> timelines_;
};

}  // namespace runtime
}  // namespace prany

#endif  // PRANY_RUNTIME_LIVE_SYSTEM_H_
