#include "runtime/load_gen.h"

#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace prany {
namespace runtime {

LoadGen::LoadGen(LiveSystem* system, LoadGenConfig config)
    : system_(system), config_(config) {
  PRANY_CHECK(system != nullptr);
  PRANY_CHECK(config.clients >= 1 && config.participants_per_txn >= 1);
  PRANY_CHECK_MSG(
      system->site_count() >
          static_cast<size_t>(config.participants_per_txn),
      "need more sites than participants per transaction");
}

LoadGenReport LoadGen::Run() {
  std::vector<LoadGenReport> per_client(
      static_cast<size_t>(config_.clients));
  std::vector<std::thread> clients;
  clients.reserve(per_client.size());
  running_.store(true);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < config_.clients; ++i) {
    clients.emplace_back(
        [this, i, &per_client]() { ClientMain(i, &per_client[i]); });
  }
  // Sleep out the duration in slices so an external Stop() ends the run
  // promptly instead of after the full configured duration.
  const auto deadline =
      start + std::chrono::microseconds(config_.duration_us);
  while (running_.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  running_.store(false);
  // Snapshot the clock *now*: clients stop submitting the moment
  // running_ flips, but each may spend up to await_timeout_us draining
  // its in-flight Await — drain time is not measurement time, and
  // counting it understates throughput.
  auto elapsed = std::chrono::steady_clock::now() - start;
  for (std::thread& client : clients) client.join();

  LoadGenReport total;
  for (const LoadGenReport& r : per_client) {
    total.submitted += r.submitted;
    total.committed += r.committed;
    total.aborted += r.aborted;
    total.timeouts += r.timeouts;
    total.dual_role_submitted += r.dual_role_submitted;
  }
  total.elapsed_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  return total;
}

void LoadGen::ClientMain(int client_index, LoadGenReport* report) {
  const size_t n_sites = system_->site_count();
  // Spread coordination duty across sites so one engine mutex is not the
  // bottleneck for the whole fleet.
  const SiteId coordinator =
      static_cast<SiteId>(client_index % static_cast<int>(n_sites));
  Rng rng(config_.seed * 1000003 + static_cast<uint64_t>(client_index));
  MetricsRegistry::Distribution* latency_dist = nullptr;

  // Relaxed: a client may run one extra iteration after Stop(); nothing
  // is published through this flag.
  while (running_.load(std::memory_order_relaxed)) {
    // Participants: consecutive sites after the coordinator, rotated per
    // transaction so every pairing occurs.
    std::vector<SiteId> participants;
    participants.reserve(static_cast<size_t>(config_.participants_per_txn));
    uint64_t offset = rng.Uniform(0, n_sites - 2);
    for (int k = 0; k < config_.participants_per_txn; ++k) {
      SiteId p = static_cast<SiteId>(
          (coordinator + 1 + (offset + static_cast<uint64_t>(k)) %
                                 (n_sites - 1)) %
          n_sites);
      participants.push_back(p);
    }
    // Dual role: the coordinator takes the first participant slot (the
    // other slots already exclude it, so the set stays duplicate-free).
    // A planned no vote may then land on the coordinator itself — a
    // self-unilateral abort, which the protocols must tolerate too.
    if (rng.Bernoulli(config_.dual_role_fraction)) {
      participants[0] = coordinator;
      ++report->dual_role_submitted;
    }
    std::map<SiteId, Vote> votes;
    if (rng.Bernoulli(config_.abort_fraction)) {
      votes[participants[0]] = Vote::kNo;
    }

    auto t0 = std::chrono::steady_clock::now();
    TxnId txn = system_->Submit(coordinator, participants, votes);
    ++report->submitted;
    std::optional<Outcome> outcome =
        system_->Await(txn, config_.await_timeout_us);
    auto t1 = std::chrono::steady_clock::now();
    if (!outcome.has_value()) {
      ++report->timeouts;
      continue;
    }
    double latency_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            t1 - t0)
            .count();
    // Resolve the distribution handle once; the per-commit observe is then
    // one push under the distribution's own lock instead of a string-keyed
    // lookup under the registry mutex.
    if (latency_dist == nullptr) {
      latency_dist = system_->metrics().DistributionHandle("livegen.latency_us");
    }
    latency_dist->Observe(latency_us);
    if (*outcome == Outcome::kCommit) {
      ++report->committed;
    } else {
      ++report->aborted;
    }
  }
}

}  // namespace runtime
}  // namespace prany
