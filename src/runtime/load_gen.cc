#include "runtime/load_gen.h"

#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace prany {
namespace runtime {

LoadGen::LoadGen(LiveSystem* system, LoadGenConfig config)
    : system_(system), config_(std::move(config)) {
  PRANY_CHECK(system != nullptr);
  PRANY_CHECK(config_.clients >= 1 && config_.participants_per_txn >= 1);
  if (config_.sites.empty()) {
    // Single-process default: the topology is the system's own sites.
    for (size_t i = 0; i < system->site_count(); ++i) {
      config_.sites.push_back(static_cast<SiteId>(i));
    }
  }
  if (config_.coordinators.empty()) config_.coordinators = config_.sites;
  PRANY_CHECK_MSG(
      config_.sites.size() >
          static_cast<size_t>(config_.participants_per_txn),
      "need more sites than participants per transaction");
  for (SiteId coordinator : config_.coordinators) {
    bool known = false;
    for (SiteId site : config_.sites) known = known || site == coordinator;
    PRANY_CHECK_MSG(known, "coordinator not in the site topology");
  }
}

LoadGenReport LoadGen::Run() {
  std::vector<LoadGenReport> per_client(
      static_cast<size_t>(config_.clients));
  std::vector<std::thread> clients;
  clients.reserve(per_client.size());
  running_.store(true);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < config_.clients; ++i) {
    clients.emplace_back(
        [this, i, &per_client]() { ClientMain(i, &per_client[i]); });
  }
  // Sleep out the duration in slices so an external Stop() ends the run
  // promptly instead of after the full configured duration.
  const auto deadline =
      start + std::chrono::microseconds(config_.duration_us);
  while (running_.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  running_.store(false);
  // Snapshot the clock *now*: clients stop submitting the moment
  // running_ flips, but each may spend up to await_timeout_us draining
  // its in-flight Await — drain time is not measurement time, and
  // counting it understates throughput.
  auto elapsed = std::chrono::steady_clock::now() - start;
  for (std::thread& client : clients) client.join();

  LoadGenReport total;
  for (const LoadGenReport& r : per_client) {
    total.submitted += r.submitted;
    total.committed += r.committed;
    total.aborted += r.aborted;
    total.timeouts += r.timeouts;
    total.dropped += r.dropped;
    total.dual_role_submitted += r.dual_role_submitted;
  }
  total.elapsed_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  return total;
}

void LoadGen::ClientMain(int client_index, LoadGenReport* report) {
  const std::vector<SiteId>& sites = config_.sites;
  const size_t n_sites = sites.size();
  // Spread coordination duty across the eligible sites so one engine
  // mutex is not the bottleneck for the whole fleet.
  const SiteId coordinator =
      config_.coordinators[static_cast<size_t>(client_index) %
                           config_.coordinators.size()];
  // The coordinator's position in the topology, for rotation arithmetic.
  size_t coord_index = 0;
  for (size_t i = 0; i < n_sites; ++i) {
    if (sites[i] == coordinator) coord_index = i;
  }
  Rng rng(config_.seed * 1000003 + static_cast<uint64_t>(client_index));
  // Resolve the distribution handle at worker startup, not lazily on the
  // first commit: the lazy branch put a string-keyed registry lookup (and
  // its branch) on the measured latency path of the first transactions of
  // every client — exactly the cold-start cells a latency sweep reads.
  MetricsRegistry::Distribution* latency_dist =
      system_->metrics().DistributionHandle("livegen.latency_us");

  // Relaxed: a client may run one extra iteration after Stop(); nothing
  // is published through this flag.
  while (running_.load(std::memory_order_relaxed)) {
    // Participants: consecutive sites after the coordinator, rotated per
    // transaction so every pairing occurs.
    std::vector<SiteId> participants;
    participants.reserve(static_cast<size_t>(config_.participants_per_txn));
    uint64_t offset = rng.Uniform(0, n_sites - 2);
    for (int k = 0; k < config_.participants_per_txn; ++k) {
      SiteId p = sites[(coord_index + 1 +
                        (offset + static_cast<uint64_t>(k)) % (n_sites - 1)) %
                       n_sites];
      participants.push_back(p);
    }
    // Dual role: the coordinator takes the first participant slot (the
    // other slots already exclude it, so the set stays duplicate-free).
    // A planned no vote may then land on the coordinator itself — a
    // self-unilateral abort, which the protocols must tolerate too.
    if (rng.Bernoulli(config_.dual_role_fraction)) {
      participants[0] = coordinator;
      ++report->dual_role_submitted;
    }
    std::map<SiteId, Vote> votes;
    if (rng.Bernoulli(config_.abort_fraction)) {
      votes[participants[0]] = Vote::kNo;
    }

    auto t0 = std::chrono::steady_clock::now();
    Transaction txn = system_->MakeTransaction(coordinator, participants,
                                               votes);
    ++report->submitted;
    if (!system_->SubmitTransaction(txn)) {
      // Refused at a down coordinator: no decision is coming, so awaiting
      // would only camp on the full timeout. Back off briefly instead of
      // hammering the down site's engine mutex.
      ++report->dropped;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    std::optional<Outcome> outcome =
        system_->Await(txn.id, config_.await_timeout_us);
    auto t1 = std::chrono::steady_clock::now();
    if (!outcome.has_value()) {
      ++report->timeouts;
      continue;
    }
    double latency_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            t1 - t0)
            .count();
    latency_dist->Observe(latency_us);
    if (*outcome == Outcome::kCommit) {
      ++report->committed;
    } else {
      ++report->aborted;
    }
  }
}

}  // namespace runtime
}  // namespace prany
