// In-process multithreaded transport for the live runtime.
//
// Each registered site gets an inbox: a bounded lock-free MPSC ring of
// encoded frames (runtime/mpsc_ring.h) drained by a dedicated delivery
// thread. Send() encodes on the sender's thread into a pooled wire buffer
// and enqueues on the destination ring, so per-directed-link FIFO order is
// preserved (one sender's sends are sequential, the ring pops in claim
// order), matching the simulated network's session-ordering guarantee.
// Delivery decodes and calls the endpoint's OnMessage — for a LiveSite
// that is a fast enqueue into its worker queue, so delivery never blocks
// on engine locks.
//
// The steady-state path takes no mutex: inbox lookup reads an immutable
// published table, the ring push/pop are single-CAS, the endpoint pointer
// is an atomic, and wire buffers recycle through a lock-free pool instead
// of allocating per frame. Mutexes and condition variables remain only
// for *parking* — the inbox thread sleeping on an empty ring, and senders
// backpressured on a full one — and the wakeups are guarded by parked
// flags so an unparked peer costs nothing.
//
// Direct handoff: when the destination inbox is idle (ring empty, no
// delivery in flight), Send() performs the delivery on the sender's own
// thread instead of waking the inbox thread — saving a context switch per
// message, which dominates per-message cost on small machines. The
// delivery claim is a single CAS on the inbox's delivery state; deliveries
// to a site remain strictly serial (the inbox thread cannot claim while a
// direct delivery holds the state), so the FIFO guarantee is unchanged.
//
// Trace/metric conventions are identical to net::Network (see
// NetTraceEvent): the equivalence test relies on both backends emitting
// the same MSG_SEND / MSG_DELIVER event streams per link.

#ifndef PRANY_RUNTIME_LIVE_TRANSPORT_H_
#define PRANY_RUNTIME_LIVE_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/sync.h"
#include "net/transport.h"
#include "runtime/event_loop.h"
#include "runtime/mpsc_ring.h"

namespace prany {
namespace runtime {

/// Counters folded across all inbox threads. Snapshot is only consistent
/// when the transport is quiescent.
struct LiveTransportStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_lost_down = 0;
  /// Wire-buffer pool reuse: Acquire()s served from the pool vs. falling
  /// back to a fresh allocation.
  uint64_t buffer_pool_hits = 0;
  uint64_t buffer_pool_misses = 0;
};

class LiveTransport : public ITransport {
 public:
  /// `loop` supplies timestamps for trace events; `metrics` may be null.
  LiveTransport(EventLoop* loop, MetricsRegistry* metrics);
  ~LiveTransport() override;

  LiveTransport(const LiveTransport&) = delete;
  LiveTransport& operator=(const LiveTransport&) = delete;

  /// Registering a site spawns its inbox thread. Re-registering an already
  /// registered site swaps the endpoint (used by LiveSite to interpose on
  /// the harness Site's self-registration) without restarting the thread.
  void RegisterEndpoint(SiteId site, NetworkEndpoint* endpoint) override;

  void Send(const Message& msg) override;

  /// Stops and joins all inbox threads; undelivered frames are dropped.
  /// Senders parked on a full inbox observe the stop and drop their frame.
  /// Idempotent. Sends after Stop() are counted but not delivered.
  void Stop();

  /// True when every inbox ring is empty and no delivery is in progress.
  bool Idle() const;

  LiveTransportStats stats() const;

 private:
  /// Who is delivering to a site right now. kBusy is held either by the
  /// inbox thread (popping the ring) or by a sender doing a direct
  /// handoff; both claim it with a CAS from kIdle, which is what keeps
  /// deliveries per site strictly serial.
  enum DeliveryState : int { kIdle = 0, kBusy = 1 };

  struct Inbox {
    BoundedMpmcRing<std::vector<uint8_t>> ring;
    std::atomic<NetworkEndpoint*> endpoint{nullptr};
    std::atomic<int> delivery{kIdle};
    std::atomic<bool> stopping{false};

    // Parking (slow path only). consumer_parked/producers_parked gate
    // the notifies so the lock-free fast path never pays a futex wake.
    // park_mu guards no plain fields (the shared state is all atomics);
    // it exists to serialize the check-then-wait against the notify.
    /// Queue rank: taken from engine code (Send backpressure) and the
    /// inbox thread; nothing is acquired while holding it.
    Mutex park_mu PRANY_ACQUIRED_AFTER(lock_order::kEngineRank)
        PRANY_ACQUIRED_BEFORE(lock_order::kWalSyncRank);
    CondVar consumer_cv;
    CondVar producer_cv;
    /// Both seq_cst Dekker flags: the waiter stores flag then re-checks
    /// the ring; the waker updates the ring then loads the flag. At least
    /// one side must see the other or a wakeup is lost — do not weaken.
    std::atomic<bool> consumer_parked{false};
    std::atomic<int> producers_parked{0};

    std::thread thread;

    explicit Inbox(size_t capacity) : ring(capacity) {}
  };

  /// Immutable site -> inbox table, republished on registration so Send()
  /// can look inboxes up without a lock. Holes are nullptr.
  struct InboxTable {
    std::vector<Inbox*> by_site;
  };

  void InboxThreadMain(Inbox* inbox);
  void Deliver(Inbox* inbox, const std::vector<uint8_t>& wire);
  void WakeConsumer(Inbox* inbox);
  /// Enqueues with backpressure; drops the frame if the inbox stops while
  /// full. Wakes the parked consumer when needed.
  void EnqueueFrame(Inbox* inbox, std::vector<uint8_t>&& wire);

  EventLoop* loop_;
  MetricsRegistry* metrics_;

  /// Guards registration (table publication) and stop; never taken by
  /// Send() or delivery. Queue rank: registration runs at setup, Stop()
  /// releases it before touching any park_mu.
  mutable Mutex mu_ PRANY_ACQUIRED_AFTER(lock_order::kEngineRank)
      PRANY_ACQUIRED_BEFORE(lock_order::kWalSyncRank);
  std::vector<std::unique_ptr<Inbox>> owned_inboxes_ PRANY_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<InboxTable>> retired_tables_
      PRANY_GUARDED_BY(mu_);
  std::atomic<InboxTable*> table_{nullptr};
  std::atomic<bool> stopped_{false};

  WireBufferPool pool_;

  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> messages_delivered_{0};
  std::atomic<uint64_t> messages_lost_down_{0};
  /// Per-MessageType send counts. The registry takes a global mutex and
  /// builds a string key per Add; at live message rates that is real CPU,
  /// so counts accumulate here and fold into `metrics_` once, in Stop().
  static constexpr size_t kMessageTypes = 6;
  std::atomic<uint64_t> msg_type_counts_[kMessageTypes] = {};
};

}  // namespace runtime
}  // namespace prany

#endif  // PRANY_RUNTIME_LIVE_TRANSPORT_H_
