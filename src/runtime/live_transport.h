// In-process multithreaded transport for the live runtime.
//
// Each registered site gets an inbox: an MPSC queue of encoded frames
// drained by a dedicated delivery thread. Send() encodes on the sender's
// thread and enqueues on the destination inbox, so per-directed-link FIFO
// order is preserved (enqueue order == delivery order), matching the
// simulated network's session-ordering guarantee. Delivery decodes and
// calls the endpoint's OnMessage — for a LiveSite that is a fast enqueue
// into its worker queue, so delivery never blocks on engine locks.
//
// Direct handoff: when the destination inbox is idle (queue empty, no
// delivery in flight), Send() performs the delivery on the sender's own
// thread instead of waking the inbox thread — saving a context switch per
// message, which dominates per-message cost on small machines. Deliveries
// to a site remain strictly serial (the inbox thread holds off while a
// direct delivery is in flight), so the FIFO guarantee is unchanged.
//
// Trace/metric conventions are identical to net::Network (see
// NetTraceEvent): the equivalence test relies on both backends emitting
// the same MSG_SEND / MSG_DELIVER event streams per link.

#ifndef PRANY_RUNTIME_LIVE_TRANSPORT_H_
#define PRANY_RUNTIME_LIVE_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "net/transport.h"
#include "runtime/event_loop.h"

namespace prany {
namespace runtime {

/// Counters folded across all inbox threads. Snapshot is only consistent
/// when the transport is quiescent.
struct LiveTransportStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_lost_down = 0;
};

class LiveTransport : public ITransport {
 public:
  /// `loop` supplies timestamps for trace events; `metrics` may be null.
  LiveTransport(EventLoop* loop, MetricsRegistry* metrics);
  ~LiveTransport() override;

  LiveTransport(const LiveTransport&) = delete;
  LiveTransport& operator=(const LiveTransport&) = delete;

  /// Registering a site spawns its inbox thread. Re-registering an already
  /// registered site swaps the endpoint (used by LiveSite to interpose on
  /// the harness Site's self-registration) without restarting the thread.
  void RegisterEndpoint(SiteId site, NetworkEndpoint* endpoint) override;

  void Send(const Message& msg) override;

  /// Stops and joins all inbox threads; undelivered frames are dropped.
  /// Idempotent. Sends after Stop() are counted but not delivered.
  void Stop();

  /// True when every inbox queue is empty and no delivery is in progress.
  bool Idle() const;

  LiveTransportStats stats() const;

 private:
  struct Inbox {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<uint8_t>> frames;
    NetworkEndpoint* endpoint = nullptr;
    bool delivering = false;
    bool stopping = false;
    std::thread thread;
  };

  void InboxThreadMain(Inbox* inbox);
  void Deliver(Inbox* inbox, const std::vector<uint8_t>& wire);

  EventLoop* loop_;
  MetricsRegistry* metrics_;

  mutable std::mutex mu_;  // guards inboxes_ map shape and stopped_
  std::map<SiteId, std::unique_ptr<Inbox>> inboxes_;
  bool stopped_ = false;

  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> messages_delivered_{0};
  std::atomic<uint64_t> messages_lost_down_{0};
  /// Per-MessageType send counts. The registry takes a global mutex and
  /// builds a string key per Add; at live message rates that is real CPU,
  /// so counts accumulate here and fold into `metrics_` once, in Stop().
  static constexpr size_t kMessageTypes = 6;
  std::atomic<uint64_t> msg_type_counts_[kMessageTypes] = {};
};

}  // namespace runtime
}  // namespace prany

#endif  // PRANY_RUNTIME_LIVE_TRANSPORT_H_
