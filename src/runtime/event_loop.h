// The execution-environment seam between the protocol state machines and
// their backend.
//
// Engines (coordinators, participants, timers) see time and deferred
// execution only through this interface. Two implementations exist:
//
//   - sim::Simulator — the deterministic single-threaded discrete-event
//     kernel. Time is virtual; Schedule() pushes onto one priority queue;
//     the model checker enumerates its schedules exhaustively.
//   - runtime::LiveEventLoop — wall-clock time, worker threads, and real
//     timers, backing the live multithreaded runtime.
//
// Because the engines are written against this interface (and ITransport /
// StableLog), the *same* compiled state machines run under both backends:
// what prany_check proves about the sim transfers to the live runtime up
// to the fidelity of this seam (see docs/RUNTIME.md).

#ifndef PRANY_RUNTIME_EVENT_LOOP_H_
#define PRANY_RUNTIME_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/trace.h"
#include "common/types.h"

namespace prany {

/// Handle for a scheduled event; usable to cancel it.
struct EventId {
  uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

/// Abstract event loop: a clock plus deferred callbacks plus the shared
/// trace sink. All durations are in microseconds (SimTime/SimDuration keep
/// their names from the sim; under the live loop they are microseconds
/// since loop start).
class EventLoop {
 public:
  using Callback = std::function<void()>;

  virtual ~EventLoop() = default;

  /// Current time (microseconds; virtual under the sim, wall-clock-derived
  /// under the live loop).
  virtual SimTime Now() const = 0;

  /// Schedules `cb` to run at Now() + delay. `label` shows up in traces
  /// and pending-event summaries.
  virtual EventId Schedule(SimDuration delay, Callback cb,
                           std::string label = "") = 0;

  /// Schedules `cb` at an absolute time >= Now().
  virtual EventId ScheduleAt(SimTime when, Callback cb,
                             std::string label = "") = 0;

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a no-op. Implementations guarantee that a Cancel()
  /// issued from within the engine's serialization domain suppresses the
  /// callback (the sim is single-threaded; the live loop re-checks the
  /// cancel set under the engine lock before invoking).
  virtual void Cancel(EventId id) = 0;

  /// Shared trace sink.
  TraceLog& trace() { return trace_; }

  /// Emits a trace line stamped with Now().
  void Trace(std::string text) { trace_.Emit(Now(), std::move(text)); }

  /// Emits a structured trace event stamped with Now(). Cheap when tracing
  /// is disabled, but callers building an expensive event should still
  /// guard on trace().enabled() first.
  void Emit(TraceEvent event) {
    event.time = Now();
    trace_.Emit(std::move(event));
  }

 protected:
  TraceLog trace_;
};

}  // namespace prany

#endif  // PRANY_RUNTIME_EVENT_LOOP_H_
