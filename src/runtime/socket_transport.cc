#include "runtime/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace prany {
namespace runtime {

namespace {

/// Read-side chunk; large enough that one recv() drains a burst of
/// protocol frames (each is tens of bytes).
constexpr size_t kRecvChunk = 64 * 1024;

/// Write-side coalescing: frames folded into one sendmsg() per flush
/// pass. Well under IOV_MAX (1024) and plenty for any decision/ack burst
/// a single group-commit fsync can release.
constexpr int kFlushIovBatch = 64;

int SetNoDelay(int fd) {
  int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Fills a sockaddr for `addr`. Returns the length, or 0 on failure
/// (path too long / bad IPv4 literal).
socklen_t FillSockaddr(const SocketAddress& addr, sockaddr_storage* out) {
  std::memset(out, 0, sizeof(*out));
  if (addr.uds) {
    auto* sun = reinterpret_cast<sockaddr_un*>(out);
    if (addr.path.size() >= sizeof(sun->sun_path)) return 0;
    sun->sun_family = AF_UNIX;
    std::memcpy(sun->sun_path, addr.path.c_str(), addr.path.size() + 1);
    return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  addr.path.size() + 1);
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(out);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(addr.port);
  if (addr.host.empty() || addr.host == "0.0.0.0") {
    sin->sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, addr.host.c_str(), &sin->sin_addr) != 1) {
    return 0;
  }
  return sizeof(sockaddr_in);
}

}  // namespace

Result<SocketAddress> ParseSocketAddress(const std::string& spec) {
  SocketAddress addr;
  addr.spelling = spec;
  if (spec.rfind("uds:", 0) == 0) {
    addr.uds = true;
    addr.path = spec.substr(4);
    if (addr.path.empty()) {
      return Status::InvalidArgument("empty uds path in \"" + spec + "\"");
    }
    if (addr.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument("uds path too long in \"" + spec + "\"");
    }
    return addr;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const size_t colon = spec.rfind(':');
    if (colon <= 3 || colon + 1 >= spec.size()) {
      return Status::InvalidArgument("expected tcp:host:port, got \"" +
                                     spec + "\"");
    }
    addr.host = spec.substr(4, colon - 4);
    uint64_t port = 0;
    for (size_t i = colon + 1; i < spec.size(); ++i) {
      const char c = spec[i];
      if (c < '0' || c > '9' || port > 65535) {
        return Status::InvalidArgument("bad port in \"" + spec + "\"");
      }
      port = port * 10 + static_cast<uint64_t>(c - '0');
    }
    if (port > 65535) {
      return Status::InvalidArgument("bad port in \"" + spec + "\"");
    }
    addr.port = static_cast<uint16_t>(port);
    sockaddr_storage ss;
    if (FillSockaddr(addr, &ss) == 0) {
      return Status::InvalidArgument("host must be an IPv4 literal in \"" +
                                     spec + "\"");
    }
    return addr;
  }
  return Status::InvalidArgument(
      "address must start with uds: or tcp:, got \"" + spec + "\"");
}

SocketTransport::SocketTransport(EventLoop* loop, MetricsRegistry* metrics,
                                 SocketTransportConfig config)
    : loop_(loop), metrics_(metrics), config_(std::move(config)) {
  PRANY_CHECK(loop != nullptr);
}

SocketTransport::~SocketTransport() { Stop(); }

Status SocketTransport::Start() {
  PRANY_CHECK(!started_.load() && !stopped_.load());

  Result<SocketAddress> listen = ParseSocketAddress(config_.listen_address);
  if (!listen.ok()) return listen.status();
  listen_address_ = *listen;

  for (const auto& [site, spec] : config_.peers) {
    PRANY_CHECK_MSG(site < kMaxSites, "peer SiteId out of range");
    Result<SocketAddress> peer = ParseSocketAddress(spec);
    if (!peer.ok()) return peer.status();
    auto link = std::make_unique<Link>();
    link->handle.owner = link.get();
    link->peer = site;
    link->address = *peer;
    link_by_site_[site] = link.get();
    links_.push_back(std::move(link));
  }

  auto fail = [this](std::string msg) {
    msg += ": ";
    msg += std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    listen_fd_ = wake_fd_ = epoll_fd_ = -1;
    return Status::Unavailable(std::move(msg));
  };

  const int af = listen_address_.uds ? AF_UNIX : AF_INET;
  listen_fd_ = ::socket(af, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket(" + listen_address_.spelling + ")");
  if (listen_address_.uds) {
    // A stale socket file from a previous (possibly SIGKILLed) process
    // would make bind fail; the path is ours by configuration.
    ::unlink(listen_address_.path.c_str());
  } else {
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  sockaddr_storage ss;
  socklen_t len = FillSockaddr(listen_address_, &ss);
  PRANY_CHECK(len > 0);  // ParseSocketAddress validated this
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&ss), len) != 0) {
    return fail("bind(" + listen_address_.spelling + ")");
  }
  if (::listen(listen_fd_, 128) != 0) {
    return fail("listen(" + listen_address_.spelling + ")");
  }
  if (listen_address_.uds) {
    bound_address_ = listen_address_.spelling;
  } else {
    // Report the kernel-chosen port for "tcp:host:0" listeners.
    sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &blen) != 0) {
      return fail("getsockname");
    }
    bound_address_ = StrFormat("tcp:%s:%u", listen_address_.host.c_str(),
                               static_cast<unsigned>(ntohs(bound.sin_port)));
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return fail("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = &wake_handle_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return fail("epoll_ctl(wake)");
  }
  ev.data.ptr = &listener_handle_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return fail("epoll_ctl(listener)");
  }

  started_.store(true);
  io_thread_ = std::thread([this]() { IoThreadMain(); });
  return Status::OK();
}

void SocketTransport::RegisterEndpoint(SiteId site,
                                       NetworkEndpoint* endpoint) {
  PRANY_CHECK(endpoint != nullptr);
  PRANY_CHECK_MSG(site < kMaxSites, "SiteId out of range");
  PRANY_CHECK_MSG(config_.peers.count(site) == 0,
                  "site is configured as a remote peer");
  endpoints_[site].store(endpoint, std::memory_order_release);
}

void SocketTransport::Send(const Message& msg) {
  PRANY_CHECK(msg.from != kInvalidSite && msg.to != kInvalidSite);
  std::vector<uint8_t> body = msg.Encode();
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(body.size(), std::memory_order_relaxed);
  const size_t type_index = static_cast<size_t>(msg.type);
  PRANY_CHECK(type_index < kMessageTypes);
  msg_type_counts_[type_index].fetch_add(1, std::memory_order_relaxed);
  if (loop_->trace().enabled()) {
    TraceEvent e = NetTraceEvent(TraceEventKind::kMsgSend, msg, false);
    e.value = static_cast<int64_t>(body.size());
    loop_->Emit(std::move(e));
  }
  if (stopped_.load(std::memory_order_acquire)) return;

  Link* link = msg.to < kMaxSites ? link_by_site_[msg.to] : nullptr;
  if (link == nullptr) {
    // Local site: deliver on the sender's thread (for a LiveSite,
    // OnMessage only enqueues into its worker queue).
    DeliverLocal(msg);
    return;
  }
  std::vector<uint8_t> framed;
  net::AppendFrame(&framed, net::FrameType::kMessage, body);
  EnqueueFrame(link, std::move(framed));
}

void SocketTransport::SendControl(SiteId to,
                                  const std::vector<uint8_t>& body) {
  controls_sent_.fetch_add(1, std::memory_order_relaxed);
  if (stopped_.load(std::memory_order_acquire)) return;
  Link* link = to < kMaxSites ? link_by_site_[to] : nullptr;
  if (link == nullptr) {
    if (control_handler_) {
      controls_delivered_.fetch_add(1, std::memory_order_relaxed);
      control_handler_(body);
    }
    return;
  }
  std::vector<uint8_t> framed;
  net::AppendFrame(&framed, net::FrameType::kControl, body);
  EnqueueFrame(link, std::move(framed));
}

void SocketTransport::EnqueueFrame(Link* link,
                                   std::vector<uint8_t>&& framed) {
  {
    MutexLock lock(link->mu);
    if (link->queue.size() >= config_.max_link_backlog) {
      // Never block a sender on a slow/dead peer; the drop is an
      // omission the protocols already tolerate.
      frames_dropped_backlog_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    link->queue.push_back(std::move(framed));
  }
  WakeIo();
}

void SocketTransport::WakeIo() {
  uint64_t one = 1;
  // EAGAIN means the counter is already nonzero — a wake is pending.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void SocketTransport::DeliverLocal(const Message& msg) {
  PRANY_CHECK_MSG(msg.to < kMaxSites, "SiteId out of range");
  NetworkEndpoint* endpoint =
      endpoints_[msg.to].load(std::memory_order_acquire);
  if (endpoint == nullptr) {
    // A peer can connect and deliver the instant the listener is up,
    // before this process has registered its own sites — the receiver
    // is "not up yet", and the drop is an ordinary omission.
    messages_lost_down_.fetch_add(1, std::memory_order_relaxed);
    if (loop_->trace().enabled()) {
      loop_->Emit(NetTraceEvent(TraceEventKind::kMsgLostDown, msg, true));
    }
    return;
  }
  if (!endpoint->IsUp()) {
    messages_lost_down_.fetch_add(1, std::memory_order_relaxed);
    if (loop_->trace().enabled()) {
      loop_->Emit(NetTraceEvent(TraceEventKind::kMsgLostDown, msg, true));
    }
    return;
  }
  messages_delivered_.fetch_add(1, std::memory_order_relaxed);
  if (loop_->trace().enabled()) {
    loop_->Emit(NetTraceEvent(TraceEventKind::kMsgDeliver, msg, true));
  }
  endpoint->OnMessage(msg);
}

void SocketTransport::IoThreadMain() {
  epoll_event events[64];
  while (!stopped_.load(std::memory_order_acquire)) {
    const int timeout_ms = MaintainLinks();
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      PRANY_CHECK_MSG(errno == EINTR, "epoll_wait failed");
      continue;
    }
    for (int i = 0; i < n; ++i) {
      auto* handle = static_cast<EpollHandle*>(events[i].data.ptr);
      switch (handle->kind) {
        case EpollHandle::kWake: {
          uint64_t drained;
          while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
          }
          break;  // MaintainLinks() on the next loop iteration reacts
        }
        case EpollHandle::kListener:
          HandleListener();
          break;
        case EpollHandle::kInbound:
          HandleInbound(static_cast<InboundConn*>(handle->owner),
                        events[i].events);
          break;
        case EpollHandle::kOutbound:
          HandleOutbound(static_cast<Link*>(handle->owner),
                         events[i].events);
          break;
      }
    }
  }
}

int SocketTransport::MaintainLinks() {
  const auto now = std::chrono::steady_clock::now();
  int timeout_ms = -1;
  auto wait_until = [&](std::chrono::steady_clock::time_point when) {
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  when - now)
                  .count();
    int clamped = ms <= 0 ? 0 : (ms > 1000 ? 1000 : static_cast<int>(ms) + 1);
    if (timeout_ms < 0 || clamped < timeout_ms) timeout_ms = clamped;
  };
  for (const auto& owned : links_) {
    Link* link = owned.get();
    bool has_data;
    {
      MutexLock lock(link->mu);
      has_data = !link->queue.empty();
    }
    if (link->state == Link::kConnecting && now >= link->connect_deadline) {
      CloseOutbound(link, /*backoff=*/true);
    }
    if (link->state == Link::kDisconnected && has_data &&
        now >= link->next_attempt) {
      StartConnect(link);
    }
    switch (link->state) {
      case Link::kConnected:
        if (has_data && !link->epollout_armed) {
          epoll_event ev{};
          ev.events = EPOLLOUT;
          ev.data.ptr = &link->handle;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, link->fd, &ev);
          link->epollout_armed = true;
        }
        break;
      case Link::kConnecting:
        wait_until(link->connect_deadline);
        break;
      case Link::kDisconnected:
        if (has_data) wait_until(link->next_attempt);
        break;
    }
  }
  return timeout_ms;
}

void SocketTransport::StartConnect(Link* link) {
  connects_attempted_.fetch_add(1, std::memory_order_relaxed);
  const int af = link->address.uds ? AF_UNIX : AF_INET;
  const int fd = ::socket(af, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  auto schedule_retry = [this, link]() {
    link->backoff_us = link->backoff_us == 0
                           ? config_.reconnect_min_us
                           : std::min(link->backoff_us * 2,
                                      config_.reconnect_max_us);
    link->next_attempt = std::chrono::steady_clock::now() +
                         std::chrono::microseconds(link->backoff_us);
  };
  if (fd < 0) {
    schedule_retry();
    return;
  }
  if (!link->address.uds) SetNoDelay(fd);
  sockaddr_storage ss;
  const socklen_t len = FillSockaddr(link->address, &ss);
  PRANY_CHECK(len > 0);  // validated in Start()
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&ss), len);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    schedule_retry();
    return;
  }
  link->fd = fd;
  epoll_event ev{};
  ev.events = EPOLLOUT;
  ev.data.ptr = &link->handle;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    link->fd = -1;
    schedule_retry();
    return;
  }
  link->epollout_armed = true;
  if (rc == 0) {
    link->state = Link::kConnected;
    link->backoff_us = 0;
    connects_completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    link->state = Link::kConnecting;
    link->connect_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(config_.connect_timeout_us);
  }
}

void SocketTransport::HandleOutbound(Link* link, uint32_t events) {
  if (link->state == Link::kConnecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    if ((events & (EPOLLERR | EPOLLHUP)) != 0 ||
        ::getsockopt(link->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      CloseOutbound(link, /*backoff=*/true);
      return;
    }
    link->state = Link::kConnected;
    link->backoff_us = 0;
    connects_completed_.fetch_add(1, std::memory_order_relaxed);
  } else if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseOutbound(link, /*backoff=*/true);
    return;
  }
  FlushLink(link);
}

void SocketTransport::FlushLink(Link* link) {
  bool broken = false;
  {
    MutexLock lock(link->mu);
    while (!link->queue.empty()) {
      // Coalesce queued frames into one writev: a group-commit fsync
      // releases a burst of decisions/acks onto the same link, and one
      // syscall carrying the whole burst beats one send() per frame
      // (syscall overhead dominates for our ~100-byte frames; Nagle is
      // off). write_off tracks bytes into the *first* queued frame only.
      iovec iov[kFlushIovBatch];
      int iov_cnt = 0;
      for (const std::vector<uint8_t>& f : link->queue) {
        if (iov_cnt == kFlushIovBatch) break;
        const size_t off = (iov_cnt == 0) ? link->write_off : 0;
        iov[iov_cnt].iov_base = const_cast<uint8_t*>(f.data()) + off;
        iov[iov_cnt].iov_len = f.size() - off;
        ++iov_cnt;
      }
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = static_cast<size_t>(iov_cnt);
      const ssize_t n = ::sendmsg(link->fd, &mh, MSG_NOSIGNAL);
      if (n > 0) {
        size_t remaining = static_cast<size_t>(n);
        while (remaining > 0) {
          const size_t front_left =
              link->queue.front().size() - link->write_off;
          if (remaining < front_left) {
            link->write_off += remaining;
            break;
          }
          // Popped only when fully written: an interrupted connection
          // rewinds write_off and resends the frame whole.
          remaining -= front_left;
          link->queue.pop_front();
          link->write_off = 0;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;  // socket buffer full; EPOLLOUT stays armed
      }
      broken = true;  // EPIPE/ECONNRESET/...: redial with backoff
      break;
    }
    if (!broken) {
      // Drained. Disarm EPOLLOUT so a connected-but-idle link doesn't
      // spin the epoll thread (EPOLLERR/HUP are always reported).
      epoll_event ev{};
      ev.events = 0;
      ev.data.ptr = &link->handle;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, link->fd, &ev);
      link->epollout_armed = false;
      return;
    }
  }
  CloseOutbound(link, /*backoff=*/true);
}

void SocketTransport::CloseOutbound(Link* link, bool backoff) {
  if (link->fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, link->fd, nullptr);
    ::close(link->fd);
    link->fd = -1;
  }
  link->state = Link::kDisconnected;
  link->epollout_armed = false;
  {
    MutexLock lock(link->mu);
    link->write_off = 0;
  }
  if (backoff) {
    link->backoff_us = link->backoff_us == 0
                           ? config_.reconnect_min_us
                           : std::min(link->backoff_us * 2,
                                      config_.reconnect_max_us);
    link->next_attempt = std::chrono::steady_clock::now() +
                         std::chrono::microseconds(link->backoff_us);
  }
}

void SocketTransport::HandleListener() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept error; epoll re-arms us
    }
    if (!listen_address_.uds) SetNoDelay(fd);
    auto conn = std::make_unique<InboundConn>();
    conn->handle.owner = conn.get();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &conn->handle;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    accepts_.fetch_add(1, std::memory_order_relaxed);
    inbound_.push_back(std::move(conn));
  }
}

void SocketTransport::HandleInbound(InboundConn* conn, uint32_t events) {
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 && (events & EPOLLIN) == 0) {
    CloseInbound(conn);
    return;
  }
  uint8_t buf[kRecvChunk];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->parser.Feed(buf, static_cast<size_t>(n));
      for (;;) {
        net::Frame frame;
        bool got = false;
        const Status s = conn->parser.Next(&frame, &got);
        if (!s.ok()) {
          // Desynchronized stream: drop the connection; the peer
          // redials and resends its queue from a clean boundary.
          frames_dropped_corrupt_.fetch_add(1, std::memory_order_relaxed);
          CloseInbound(conn);
          return;
        }
        if (!got) break;
        if (!DispatchFrame(frame)) {
          frames_dropped_corrupt_.fetch_add(1, std::memory_order_relaxed);
          CloseInbound(conn);
          return;
        }
      }
      continue;
    }
    if (n == 0) {
      // EOF: the peer closed (crash or clean shutdown). Any partial
      // frame in the parser dies with the connection.
      CloseInbound(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseInbound(conn);
    return;
  }
}

void SocketTransport::CloseInbound(InboundConn* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  for (size_t i = 0; i < inbound_.size(); ++i) {
    if (inbound_[i].get() == conn) {
      inbound_.erase(inbound_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

bool SocketTransport::DispatchFrame(const net::Frame& frame) {
  switch (frame.type) {
    case net::FrameType::kMessage: {
      Result<Message> decoded = Message::Decode(frame.body);
      if (!decoded.ok()) return false;
      DeliverLocal(*decoded);
      return true;
    }
    case net::FrameType::kControl:
      if (control_handler_) {
        controls_delivered_.fetch_add(1, std::memory_order_relaxed);
        control_handler_(frame.body);
      }
      return true;
  }
  return false;  // unknown frame type: stream is suspect
}

void SocketTransport::Stop() {
  if (stopped_.exchange(true)) return;
  if (started_.load()) {
    WakeIo();
    if (io_thread_.joinable()) io_thread_.join();
  }
  for (const auto& link : links_) {
    if (link->fd >= 0) {
      ::close(link->fd);
      link->fd = -1;
    }
  }
  for (const auto& conn : inbound_) ::close(conn->fd);
  inbound_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
  if (listen_address_.uds && !listen_address_.path.empty()) {
    ::unlink(listen_address_.path.c_str());
  }
  // Fold per-type send counts under the same names the other transports
  // use, so exported metrics stay comparable across backends.
  if (metrics_ != nullptr) {
    for (size_t i = 0; i < kMessageTypes; ++i) {
      const uint64_t n = msg_type_counts_[i].load(std::memory_order_relaxed);
      if (n == 0) continue;
      metrics_->Add("net.msg." + ToString(static_cast<MessageType>(i)),
                    static_cast<int64_t>(n));
    }
    const uint64_t bytes = bytes_sent_.load(std::memory_order_relaxed);
    if (bytes != 0) {
      metrics_->Add("net.bytes", static_cast<int64_t>(bytes));
    }
  }
}

bool SocketTransport::Idle() const {
  for (const auto& link : links_) {
    MutexLock lock(link->mu);
    if (!link->queue.empty()) return false;
  }
  return true;
}

SocketTransportStats SocketTransport::stats() const {
  SocketTransportStats s;
  s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.messages_delivered = messages_delivered_.load(std::memory_order_relaxed);
  s.messages_lost_down =
      messages_lost_down_.load(std::memory_order_relaxed);
  s.connects_attempted =
      connects_attempted_.load(std::memory_order_relaxed);
  s.connects_completed =
      connects_completed_.load(std::memory_order_relaxed);
  s.accepts = accepts_.load(std::memory_order_relaxed);
  s.frames_dropped_backlog =
      frames_dropped_backlog_.load(std::memory_order_relaxed);
  s.frames_dropped_corrupt =
      frames_dropped_corrupt_.load(std::memory_order_relaxed);
  s.controls_sent = controls_sent_.load(std::memory_order_relaxed);
  s.controls_delivered =
      controls_delivered_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace runtime
}  // namespace prany
