// Closed-loop load generator for the live runtime.
//
// N client threads each run a submit → await-decision loop against one
// LiveSystem for a fixed wall-clock duration. Closed-loop means a client
// has at most one transaction outstanding; aggregate concurrency equals
// the client count, and throughput is self-limiting rather than
// open-loop-overload. Per-transaction wall-clock latency (submit to
// coordinator decision) is recorded into the system's metrics registry as
// the `livegen.latency_us` distribution.

#ifndef PRANY_RUNTIME_LOAD_GEN_H_
#define PRANY_RUNTIME_LOAD_GEN_H_

#include <atomic>
#include <cstdint>

#include "runtime/live_system.h"

namespace prany {
namespace runtime {

struct LoadGenConfig {
  /// Concurrent client threads (= max in-flight transactions).
  int clients = 8;
  /// Wall-clock run length, microseconds.
  uint64_t duration_us = 1'000'000;
  /// Participant count per transaction (coordinator excluded). The system
  /// must have at least this many sites besides each coordinator.
  int participants_per_txn = 2;
  /// Fraction of transactions where one participant plans a no vote.
  double abort_fraction = 0.0;
  /// Fraction of transactions where the coordinator is also one of its own
  /// participants (dual-role): the coordinating site prepares, votes and
  /// acknowledges through the regular transport, and its stable log
  /// interleaves both roles' records — the shape that exercises dual-role
  /// crash recovery.
  double dual_role_fraction = 0.0;
  /// Per-transaction decision wait; an expiry counts as a timeout and the
  /// client moves on.
  uint64_t await_timeout_us = 10'000'000;
  uint64_t seed = 1;

  // ---- Cluster mode (socket transport) ------------------------------
  /// Global topology override. Empty means "all of the system's sites"
  /// (ids 0..site_count-1, the single-process default). In a
  /// multi-process cluster each process's generator lists every site
  /// here (participants may be remote) …
  std::vector<SiteId> sites;
  /// … but coordinates only at sites it hosts. Empty means any site in
  /// the topology may coordinate; clients round-robin over this list.
  std::vector<SiteId> coordinators;
};

struct LoadGenReport {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t timeouts = 0;
  /// Submissions the system refused because the coordinator was down.
  /// Counted apart from timeouts (a refusal is instant; a timeout is a
  /// decision that did not arrive in time), and never awaited. Every
  /// submission lands in exactly one bucket:
  ///   submitted == committed + aborted + timeouts + dropped.
  uint64_t dropped = 0;
  uint64_t dual_role_submitted = 0;  ///< Coordinator participated in these.
  double elapsed_seconds = 0.0;

  double commits_per_sec() const {
    return elapsed_seconds > 0 ? static_cast<double>(committed) /
                                     elapsed_seconds
                               : 0.0;
  }
};

class LoadGen {
 public:
  /// `system` must outlive the generator and have its sites added.
  LoadGen(LiveSystem* system, LoadGenConfig config);

  /// Runs the full closed loop: spawns the clients, sleeps out the
  /// duration, joins, and folds per-client counters. Call once.
  LoadGenReport Run();

  /// Ends the run early (thread-safe): clients stop submitting and Run()
  /// returns after draining in-flight awaits. The elapsed-seconds clock
  /// stops at the Stop() call, not at the drain.
  /// Relaxed would do (the flag carries no data, clients re-check every
  /// loop iteration), but a stop is rare and seq_cst keeps it simple.
  void Stop() { running_.store(false); }

 private:
  void ClientMain(int client_index, LoadGenReport* report);

  LiveSystem* system_;
  LoadGenConfig config_;
  std::atomic<bool> running_{false};
};

}  // namespace runtime
}  // namespace prany

#endif  // PRANY_RUNTIME_LOAD_GEN_H_
