// Wall-clock EventLoop implementation for the live runtime.
//
// A single timer thread owns a deadline heap. Callbacks scheduled from an
// engine thread are *bound* to that engine's executor (installed
// thread-locally by the LiveSite around every engine invocation): when the
// deadline arrives, the timer thread posts the callback to the executor,
// which runs it serialized under the same engine lock as every other
// engine entry point. Callbacks scheduled from unbound threads run inline
// on the timer thread.
//
// Cancellation is "strong" with respect to the engine lock: a Cancel()
// issued while holding the engine lock is guaranteed to suppress the
// callback, even if the timer thread has already posted it — the posted
// wrapper re-checks the cancel state under the loop mutex after the
// executor has acquired the engine lock, and executor tasks are sequenced
// against the canceller by that lock. This mirrors the simulator, where
// Cancel() from engine code always wins because everything is one thread.
// Protocol engines rely on it: erasing a transaction's resend timer must
// ensure the resend never fires afterwards.

#ifndef PRANY_RUNTIME_LIVE_LOOP_H_
#define PRANY_RUNTIME_LIVE_LOOP_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "runtime/event_loop.h"

namespace prany {
namespace runtime {

/// Wall-clock event loop; Now() is microseconds since construction.
class LiveEventLoop : public EventLoop {
 public:
  using Task = std::function<void()>;
  /// Posts a task to be run serialized under an engine lock. Must outlive
  /// every task scheduled while it was bound.
  using Executor = std::function<void(Task)>;

  LiveEventLoop();
  ~LiveEventLoop() override;

  LiveEventLoop(const LiveEventLoop&) = delete;
  LiveEventLoop& operator=(const LiveEventLoop&) = delete;

  /// Starts the timer thread. Idempotent.
  void Start();

  /// Stops the timer thread; never-fired timers are dropped. Idempotent.
  void Stop();

  SimTime Now() const override;
  EventId Schedule(SimDuration delay, Callback cb,
                   std::string label = "") override;
  EventId ScheduleAt(SimTime when, Callback cb,
                     std::string label = "") override;
  void Cancel(EventId id) override;

  /// Binds callbacks scheduled from the *current thread* to `executor`
  /// (nullptr unbinds; callbacks then run inline on the timer thread).
  /// LiveSite binds its executor on its worker threads and around inline
  /// engine invocations.
  static void BindThreadExecutor(const Executor* executor);
  static const Executor* CurrentThreadExecutor();

  /// Pending (not yet fired or cancelled) timer count.
  size_t PendingTimers() const;

 private:
  struct TimerTask {
    SimTime deadline = 0;
    Callback cb;
    const Executor* executor = nullptr;
    std::string label;
    bool cancelled = false;
    bool dispatched = false;
  };

  void TimerThreadMain();

  /// Executor-side wrapper: re-checks cancellation under mu_, then runs.
  void RunTask(uint64_t id);

  std::chrono::steady_clock::time_point epoch_;
  /// Queue-rank lock: engine threads take it to arm/cancel timers while
  /// holding their engine mutex; the timer thread always releases it
  /// before running a callback or posting to an executor, so nothing is
  /// ever acquired under it.
  mutable Mutex mu_ PRANY_ACQUIRED_AFTER(lock_order::kEngineRank)
      PRANY_ACQUIRED_BEFORE(lock_order::kWalSyncRank);
  CondVar cv_;
  uint64_t next_seq_ PRANY_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, TimerTask> tasks_ PRANY_GUARDED_BY(mu_);
  /// Min-heap of (deadline, id); entries may be stale (cancelled tasks).
  std::priority_queue<std::pair<SimTime, uint64_t>,
                      std::vector<std::pair<SimTime, uint64_t>>,
                      std::greater<>>
      heap_ PRANY_GUARDED_BY(mu_);
  bool running_ PRANY_GUARDED_BY(mu_) = false;
  /// Deadline the timer thread is currently sleeping toward (0 while it is
  /// awake, max() while parked on an empty heap); guarded by mu_.
  /// ScheduleAt only notifies when it beats this deadline.
  SimTime sleeping_until_ PRANY_GUARDED_BY(mu_) = 0;
  /// Lifecycle state: written by Start()/joined by Stop(), both on the
  /// owner's thread; never touched from the timer thread itself.
  std::thread timer_thread_;
};

}  // namespace runtime
}  // namespace prany

#endif  // PRANY_RUNTIME_LIVE_LOOP_H_
