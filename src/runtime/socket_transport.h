// Real-network transport: sites in different OS processes exchanging
// protocol messages over TCP or Unix-domain sockets.
//
// Topology. Each process runs one SocketTransport. It listens on one
// address (config.listen_address) and knows a dial address for every
// *remote* site (config.peers). Sites hosted in this process register
// endpoints exactly as they do with LiveTransport; a Send() to a local
// site is delivered in-memory on the sender's thread, so a process
// hosting several sites pays the socket only for genuinely remote links.
//
// Connections are unidirectional. For every remote peer the transport
// keeps one *outbound* connection it dials and only writes to; the
// listener accepts anonymous *inbound* connections it only reads from.
// This keeps connection state trivially per-directed-link: the frames
// queued on an outbound link are exactly the messages in flight A -> B,
// and per-link FIFO order falls out of the single queue + single writer.
//
// Framing is net/wire.h: length-prefixed frames carrying either an
// encoded protocol Message (FrameType::kMessage) or an opaque control
// record (FrameType::kControl — the runtime uses these for transaction
// setup that must order before the PREPAREs following on the same link).
//
// I/O model. One epoll thread owns every socket. Senders never touch a
// socket: Send() encodes and frames on the caller's thread, appends to
// the peer's queue under a per-link mutex, and wakes the epoll thread
// through an eventfd. The epoll thread writes queued frames with
// non-blocking send()s, tracking a byte offset into the front frame; a
// frame is popped only once fully written.
//
// Failure semantics match the omission model the protocols assume:
//
//   - A dead connection is redialed with exponential backoff
//     (reconnect_min_us doubling to reconnect_max_us). Queued frames
//     survive the reconnect; a frame that was only partially written is
//     rewound and resent whole. The receiver drops its partial tail with
//     the connection, so frames are never duplicated — but frames fully
//     written into a socket that then died may be lost, exactly the
//     loss the protocols already recover from via timers and inquiry.
//   - A full outbound queue (max_link_backlog frames) drops the new
//     frame, counted in stats. Send() never blocks on a slow peer.
//   - Messages to a local endpoint that is down are lost, with the same
//     MSG_LOST_DOWN trace event the other transports emit. Remote
//     deliveries check IsUp() on the receiving process's endpoint.
//
// Trace/metric conventions are identical to net::Network and
// LiveTransport (see NetTraceEvent): MSG_SEND fires on the sender's
// process, MSG_DELIVER on the receiver's, which is what lets the
// trace-equivalence suite compare protocol exchanges across backends and
// lets multi-process histories be merged for atomicity checking.

#ifndef PRANY_RUNTIME_SOCKET_TRANSPORT_H_
#define PRANY_RUNTIME_SOCKET_TRANSPORT_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/transport.h"
#include "net/wire.h"
#include "runtime/event_loop.h"

namespace prany {
namespace runtime {

/// A parsed socket address. Accepted spellings:
///   "uds:<path>"        — Unix-domain stream socket at <path>.
///   "tcp:<host>:<port>" — TCP; <host> must be an IPv4 literal (the
///                         transport never does DNS, so dials cannot
///                         block on a resolver).
struct SocketAddress {
  bool uds = false;
  std::string path;        ///< UDS only.
  std::string host;        ///< TCP only; IPv4 literal.
  uint16_t port = 0;       ///< TCP only.
  std::string spelling;    ///< The original string, for messages.
};

/// Parses an address spelling (see SocketAddress).
Result<SocketAddress> ParseSocketAddress(const std::string& spec);

struct SocketTransportConfig {
  /// Where this process accepts connections ("uds:..." or "tcp:...").
  std::string listen_address;
  /// Dial address per *remote* site. Sites absent from this map are
  /// local and must RegisterEndpoint before traffic reaches them.
  std::map<SiteId, std::string> peers;
  /// Reconnect backoff: first retry after min, doubling to max.
  uint64_t reconnect_min_us = 10'000;
  uint64_t reconnect_max_us = 1'000'000;
  /// A connect() pending longer than this is abandoned and retried.
  uint64_t connect_timeout_us = 1'000'000;
  /// Frames queued per remote link before new sends are dropped.
  size_t max_link_backlog = 4096;
};

/// Counters. A snapshot is only consistent when the transport is idle.
struct SocketTransportStats {
  uint64_t messages_sent = 0;       ///< Local and remote.
  uint64_t bytes_sent = 0;  ///< Encoded message bytes (comparable to the
                            ///< other transports' net.bytes metric).
  uint64_t messages_delivered = 0;  ///< Delivered to a local endpoint.
  uint64_t messages_lost_down = 0;  ///< Local endpoint was down.
  uint64_t connects_attempted = 0;
  uint64_t connects_completed = 0;
  uint64_t accepts = 0;
  uint64_t frames_dropped_backlog = 0;  ///< Outbound queue full.
  uint64_t frames_dropped_corrupt = 0;  ///< Inbound stream desync.
  uint64_t controls_sent = 0;
  uint64_t controls_delivered = 0;
};

class SocketTransport : public ITransport {
 public:
  /// `loop` supplies timestamps for trace events; `metrics` may be null.
  /// The constructor only records configuration — Start() does the
  /// binding and spawns the I/O thread, so a bad address surfaces as a
  /// Status instead of a constructor failure.
  SocketTransport(EventLoop* loop, MetricsRegistry* metrics,
                  SocketTransportConfig config);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Binds the listener, dials nothing yet (links connect lazily on
  /// first traffic), and starts the epoll thread.
  Status Start();

  /// Registers (or swaps — LiveSite interposes on the harness Site's
  /// self-registration) the endpoint for a *local* site. Registering a
  /// site listed in config.peers is a programming error.
  void RegisterEndpoint(SiteId site, NetworkEndpoint* endpoint) override;

  void Send(const Message& msg) override;

  /// Sends an opaque control record to `to`, FIFO-ordered with Send()s
  /// on the same link. For a local site the handler runs synchronously
  /// on the caller's thread. Control frames are best-effort like
  /// messages: callers must tolerate loss (e.g. make records idempotent
  /// and re-sendable).
  void SendControl(SiteId to, const std::vector<uint8_t>& body);

  /// Handler for received control frames; runs on the epoll thread (or
  /// the sender's thread for local loopback). Must be set before
  /// Start() and never changed after.
  void SetControlHandler(std::function<void(const std::vector<uint8_t>&)> fn) {
    control_handler_ = std::move(fn);
  }

  /// Stops the epoll thread and closes every socket. Undelivered queued
  /// frames are dropped (the shutdown contract all transports share).
  /// Idempotent; sends after Stop() are counted but dropped.
  void Stop();

  /// True when every outbound queue is empty (all frames handed to the
  /// kernel). Says nothing about remote processes.
  bool Idle() const;

  SocketTransportStats stats() const;

  /// The address actually bound — for "tcp:host:0" this carries the
  /// kernel-assigned port. Valid after Start().
  const std::string& bound_address() const { return bound_address_; }

 private:
  /// First member of every struct registered with epoll; data.ptr points
  /// here and `kind` says what to cast the pointer back to.
  struct EpollHandle {
    enum Kind : int { kWake, kListener, kInbound, kOutbound };
    Kind kind;
    /// The containing InboundConn/Link (casting back via the first-member
    /// trick would be UB for these non-standard-layout structs).
    void* owner = nullptr;
  };

  /// An accepted connection: read-only, anonymous. Owned and touched by
  /// the epoll thread exclusively.
  struct InboundConn {
    EpollHandle handle{EpollHandle::kInbound};
    int fd = -1;
    net::FrameParser parser;
  };

  /// The outbound link to one remote site. Queue state is shared with
  /// senders (guarded by mu); socket state belongs to the epoll thread.
  struct Link {
    EpollHandle handle{EpollHandle::kOutbound};
    SiteId peer = kInvalidSite;
    SocketAddress address;

    /// Queue rank: senders append while holding an engine mutex; the
    /// epoll thread acquires nothing while holding it.
    mutable Mutex mu PRANY_ACQUIRED_AFTER(lock_order::kEngineRank)
        PRANY_ACQUIRED_BEFORE(lock_order::kWalSyncRank);
    /// Framed bytes awaiting the socket, oldest first.
    std::deque<std::vector<uint8_t>> queue PRANY_GUARDED_BY(mu);
    /// Bytes of queue.front() already written. Rewound to 0 when the
    /// connection dies so the frame is resent whole.
    size_t write_off PRANY_GUARDED_BY(mu) = 0;

    // ---- epoll-thread-only state ----
    enum State { kDisconnected, kConnecting, kConnected };
    State state = kDisconnected;
    int fd = -1;
    bool epollout_armed = false;
    uint64_t backoff_us = 0;
    std::chrono::steady_clock::time_point next_attempt{};
    std::chrono::steady_clock::time_point connect_deadline{};
  };

  void IoThreadMain();
  /// Starts due connects, arms EPOLLOUT where data is pending, and
  /// returns the epoll timeout (ms) until the next reconnect attempt.
  int MaintainLinks();
  void StartConnect(Link* link);
  void HandleOutbound(Link* link, uint32_t events);
  /// Writes queued frames until EAGAIN or empty; disarms EPOLLOUT when
  /// drained. Closes + schedules reconnect on write errors.
  void FlushLink(Link* link);
  void CloseOutbound(Link* link, bool backoff);
  void HandleListener();
  void HandleInbound(InboundConn* conn, uint32_t events);
  void CloseInbound(InboundConn* conn);
  /// Decodes and delivers one received frame to the local endpoint /
  /// control handler. Returns false on a malformed message frame (the
  /// connection is then dropped).
  bool DispatchFrame(const net::Frame& frame);
  /// In-memory delivery to a registered local endpoint (both loopback
  /// sends and frames arriving over a socket).
  void DeliverLocal(const Message& msg);
  void EnqueueFrame(Link* link, std::vector<uint8_t>&& framed);
  void WakeIo();

  EventLoop* loop_;
  MetricsRegistry* metrics_;
  SocketTransportConfig config_;

  /// Local endpoints, indexed by SiteId. Lock-free readers; writers are
  /// setup-time registration (and LiveSite's endpoint swap).
  static constexpr size_t kMaxSites = 64;
  std::array<std::atomic<NetworkEndpoint*>, kMaxSites> endpoints_{};

  std::vector<std::unique_ptr<Link>> links_;
  std::array<Link*, kMaxSites> link_by_site_{};

  std::function<void(const std::vector<uint8_t>&)> control_handler_;

  EpollHandle wake_handle_{EpollHandle::kWake};
  EpollHandle listener_handle_{EpollHandle::kListener};
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  SocketAddress listen_address_;
  std::string bound_address_;
  /// Inbound connections, epoll-thread-owned.
  std::vector<std::unique_ptr<InboundConn>> inbound_;

  std::thread io_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> messages_delivered_{0};
  std::atomic<uint64_t> messages_lost_down_{0};
  std::atomic<uint64_t> connects_attempted_{0};
  std::atomic<uint64_t> connects_completed_{0};
  std::atomic<uint64_t> accepts_{0};
  std::atomic<uint64_t> frames_dropped_backlog_{0};
  std::atomic<uint64_t> frames_dropped_corrupt_{0};
  std::atomic<uint64_t> controls_sent_{0};
  std::atomic<uint64_t> controls_delivered_{0};
  /// Per-MessageType send counts, folded into `metrics_` once in Stop()
  /// (same reasoning as LiveTransport: the registry's mutex + string key
  /// per Add is real CPU at live message rates).
  static constexpr size_t kMessageTypes = 6;
  std::array<std::atomic<uint64_t>, kMessageTypes> msg_type_counts_{};
};

}  // namespace runtime
}  // namespace prany

#endif  // PRANY_RUNTIME_SOCKET_TRANSPORT_H_
