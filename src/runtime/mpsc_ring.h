// Bounded lock-free ring (Vyukov's bounded MPMC queue) used by the live
// transport for per-site inboxes and the shared wire-buffer pool.
//
// Each slot carries a sequence number that encodes whose turn it is:
// producers claim a slot by CAS-advancing `enqueue_pos_` when the slot's
// sequence matches the position (slot free for this lap), write the value,
// then publish by bumping the sequence; consumers mirror the dance on
// `dequeue_pos_`. Push and pop are wait-free in the common case (one CAS),
// never take a lock, and never allocate — TryPush/TryPop fail instead of
// blocking, so callers own the parking policy.
//
// Ordering guarantees the transport relies on:
//   * Pops observe pushes in claim order (the CAS on enqueue_pos_), and a
//     single producer's pushes claim in program order — so per-producer
//     FIFO holds, which is exactly the per-directed-link FIFO the protocol
//     engines assume (one sender's frames to one site stay ordered).
//   * A pop that returns true happens-after the push that filled the slot
//     (release/acquire on the slot sequence), so the value is safe to read.
//
// The queue is linearizable per slot, not globally: a producer stalled
// between claiming a slot and publishing it makes later-claimed slots
// temporarily invisible to the consumer (TryPop returns false as if
// empty). The stall window is a few instructions, and the transport's
// parking loops retry, so this costs a bounded spin at worst.

#ifndef PRANY_RUNTIME_MPSC_RING_H_
#define PRANY_RUNTIME_MPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace prany {
namespace runtime {

template <typename T>
class BoundedMpmcRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit BoundedMpmcRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      // Relaxed: single-threaded construction; publication to other
      // threads happens when the owner hands the ring out.
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpmcRing(const BoundedMpmcRing&) = delete;
  BoundedMpmcRing& operator=(const BoundedMpmcRing&) = delete;

  /// Multi-producer push. Moves from `v` only on success; returns false
  /// when the ring is full (caller decides whether to park, drop or spin).
  bool TryPush(T&& v) {
    Slot* slot;
    // Relaxed: a stale position only costs a CAS retry; the slot seq is
    // what carries the cross-thread ordering.
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      // Acquire pairs with TryPop's seq release: seeing the slot free for
      // this lap means the previous lap's value move-out is complete, so
      // the write below cannot race it.
      size_t seq = slot->seq.load(std::memory_order_acquire);
      intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        // Slot free for this lap: claim it by advancing enqueue_pos_.
        // Relaxed CAS: the claim needs atomicity only — value visibility
        // rides on the seq release below, not on the position counter.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full: the slot still holds last lap's value
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(v);
    // Release publishes the value write above to the consumer whose seq
    // acquire observes pos + 1 — the pop happens-after this push.
    slot->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Multi-consumer pop. Returns false when empty (or when the next slot's
  /// producer has claimed but not yet published — indistinguishable from
  /// empty, and retried by the caller's parking loop).
  bool TryPop(T* out) {
    Slot* slot;
    // Relaxed: stale position = one CAS retry (see TryPush).
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      // Acquire pairs with TryPush's seq release: seeing pos + 1 means
      // the producer's value write is visible before the move-out below.
      size_t seq = slot->seq.load(std::memory_order_acquire);
      intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        // Relaxed CAS: claim-only, as in TryPush.
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty (or next producer mid-publish)
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(slot->value);
    // Release frees the slot for the producers' next lap and pairs with
    // their seq acquire (the value move-out is done before reuse).
    slot->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Claim-level emptiness: true when every claimed push has been popped.
  /// Conservative for the transport's direct-handoff check — a push
  /// mid-publish already counts as non-empty, so "empty" really means no
  /// frame is (or is about to be) queued ahead of the caller's.
  bool Empty() const {
    // Acquire on both counters keeps the verdict no staler than the
    // claims it reports; the transport's idle-handoff correctness does
    // not rest on this alone — its seq_cst parked/delivery flags order
    // the push against the emptiness re-check (see live_transport.h).
    return dequeue_pos_.load(std::memory_order_acquire) ==
           enqueue_pos_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
  // Producers and the consumer hammer different counters; keep them on
  // separate cache lines so claims don't false-share with pops.
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
};

/// Recycles wire-frame buffers so steady-state Send/Deliver reuses vector
/// capacity instead of allocating per frame. Acquire/Release are lock-free
/// (one ring op); when the pool is empty Acquire falls back to a fresh
/// vector, and when it is full Release lets the buffer free itself — both
/// are counted so benchmarks can report the hit rate.
class WireBufferPool {
 public:
  explicit WireBufferPool(size_t capacity) : ring_(capacity) {}

  std::vector<uint8_t> Acquire() {
    std::vector<uint8_t> buf;
    // Relaxed counters: monotonic stats, read quiescently.
    if (ring_.TryPop(&buf)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return buf;  // pooled buffers were cleared on Release
  }

  void Release(std::vector<uint8_t>&& buf) {
    if (buf.capacity() == 0) return;  // nothing worth recycling
    buf.clear();
    ring_.TryPush(std::move(buf));  // full pool: buffer frees on return
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  BoundedMpmcRing<std::vector<uint8_t>> ring_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace runtime
}  // namespace prany

#endif  // PRANY_RUNTIME_MPSC_RING_H_
