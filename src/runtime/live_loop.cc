#include "runtime/live_loop.h"

#include <algorithm>
#include <limits>

namespace prany {
namespace runtime {

namespace {
thread_local const LiveEventLoop::Executor* t_executor = nullptr;
}  // namespace

LiveEventLoop::LiveEventLoop() : epoch_(std::chrono::steady_clock::now()) {}

LiveEventLoop::~LiveEventLoop() { Stop(); }

void LiveEventLoop::Start() {
  MutexLock lock(mu_);
  if (running_) return;
  running_ = true;
  timer_thread_ = std::thread([this]() { TimerThreadMain(); });
}

void LiveEventLoop::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    cv_.NotifyAll();
  }
  timer_thread_.join();
}

SimTime LiveEventLoop::Now() const {
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

EventId LiveEventLoop::Schedule(SimDuration delay, Callback cb,
                                std::string label) {
  return ScheduleAt(Now() + delay, std::move(cb), std::move(label));
}

EventId LiveEventLoop::ScheduleAt(SimTime when, Callback cb,
                                  std::string label) {
  MutexLock lock(mu_);
  uint64_t id = next_seq_++;
  TimerTask task;
  task.deadline = when;
  task.cb = std::move(cb);
  task.executor = t_executor;
  task.label = std::move(label);
  tasks_.emplace(id, std::move(task));
  heap_.emplace(when, id);
  // Only interrupt the timer thread when this deadline is earlier than the
  // one it is sleeping toward. Timer arms vastly outnumber timer fires
  // (most protocol timers are cancelled long before their far-future
  // deadlines), so an unconditional notify here is a context switch per
  // arm — the single largest scaling cost in the live runtime.
  if (when < sleeping_until_) cv_.NotifyAll();
  return EventId{id};
}

void LiveEventLoop::Cancel(EventId id) {
  if (!id.valid()) return;
  MutexLock lock(mu_);
  // Erase immediately instead of tombstoning: protocol timers are long
  // (seconds) and cancels are frequent, so deferred cleanup would grow the
  // task map without bound. The orphaned heap entry is dropped when it
  // reaches the top, and RunTask treats a missing id as cancelled (the
  // strong-cancel path).
  tasks_.erase(id.seq);
}

void LiveEventLoop::BindThreadExecutor(const Executor* executor) {
  t_executor = executor;
}

const LiveEventLoop::Executor* LiveEventLoop::CurrentThreadExecutor() {
  return t_executor;
}

size_t LiveEventLoop::PendingTimers() const {
  MutexLock lock(mu_);
  size_t pending = 0;
  for (const auto& [id, task] : tasks_) {
    if (!task.cancelled && !task.dispatched) ++pending;
  }
  return pending;
}

void LiveEventLoop::RunTask(uint64_t id) {
  Callback cb;
  {
    MutexLock lock(mu_);
    auto it = tasks_.find(id);
    if (it == tasks_.end() || it->second.cancelled) {
      // Cancelled between dispatch and execution — the strong-cancel case.
      tasks_.erase(id);
      return;
    }
    cb = std::move(it->second.cb);
    tasks_.erase(it);
  }
  cb();
}

void LiveEventLoop::TimerThreadMain() {
  MutexLock lock(mu_);
  while (running_) {
    // Drop stale heap heads (cancelled, never dispatched).
    while (!heap_.empty()) {
      auto [deadline, id] = heap_.top();
      auto it = tasks_.find(id);
      if (it == tasks_.end() || (it->second.cancelled && !it->second.dispatched)) {
        if (it != tasks_.end()) tasks_.erase(it);
        heap_.pop();
        continue;
      }
      break;
    }
    if (heap_.empty()) {
      sleeping_until_ = std::numeric_limits<SimTime>::max();
      cv_.Wait(mu_);
      sleeping_until_ = 0;
      continue;
    }
    SimTime deadline = heap_.top().first;
    SimTime now = Now();
    if (deadline > now) {
      sleeping_until_ = deadline;
      cv_.WaitFor(mu_, std::chrono::microseconds(deadline - now));
      sleeping_until_ = 0;
      continue;  // re-evaluate: new earlier timers or stop may have arrived
    }
    uint64_t id = heap_.top().second;
    heap_.pop();
    auto it = tasks_.find(id);
    if (it == tasks_.end() || it->second.cancelled) {
      if (it != tasks_.end()) tasks_.erase(it);
      continue;
    }
    const Executor* executor = it->second.executor;
    if (executor == nullptr) {
      // Unbound: run inline on the timer thread, outside the lock.
      Callback cb = std::move(it->second.cb);
      tasks_.erase(it);
      lock.Unlock();
      cb();
      lock.Lock();
      continue;
    }
    it->second.dispatched = true;
    lock.Unlock();
    (*executor)([this, id]() { RunTask(id); });
    lock.Lock();
  }
}

}  // namespace runtime
}  // namespace prany
