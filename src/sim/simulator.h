// Deterministic single-threaded discrete-event simulation kernel.
//
// All activity in the reproduced system — message deliveries, log-device
// latencies, timeouts, crashes, recoveries, workload arrivals — is an event
// on one priority queue ordered by (time, sequence number). Determinism is
// total: the same seed and scenario replay the exact same history, which is
// what lets the Theorem-1/3 tests enumerate the precise failure timings the
// paper's proofs quantify over.

#ifndef PRANY_SIM_SIMULATOR_H_
#define PRANY_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <queue>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/trace.h"
#include "common/types.h"
#include "runtime/event_loop.h"

namespace prany {

/// Outcome of Simulator::Run.
struct RunStats {
  uint64_t events_executed = 0;
  SimTime end_time = 0;
  bool hit_event_limit = false;
  bool hit_time_limit = false;
};

/// The simulated event loop. Owns simulated time and the master RNG.
class Simulator : public EventLoop {
 public:
  using Callback = EventLoop::Callback;

  explicit Simulator(uint64_t seed = 1);

  /// Current simulated time (microseconds).
  SimTime Now() const override { return now_; }

  /// Schedules `cb` to run at Now() + delay. `label` shows up in traces.
  EventId Schedule(SimDuration delay, Callback cb,
                   std::string label = "") override;

  /// Schedules `cb` at an absolute time >= Now().
  EventId ScheduleAt(SimTime when, Callback cb,
                     std::string label = "") override;

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a no-op.
  void Cancel(EventId id) override;

  /// Runs the next pending event. Returns false if the queue is empty.
  bool Step();

  /// Runs until the queue is empty, `max_events` have executed, or
  /// simulated time would exceed `until`.
  RunStats Run(uint64_t max_events = std::numeric_limits<uint64_t>::max(),
               SimTime until = std::numeric_limits<SimTime>::max());

  /// Number of pending (non-cancelled) events.
  size_t PendingEvents() const { return queue_.size() - cancelled_.size(); }

  /// Time of the earliest pending non-cancelled event, or nullopt when the
  /// queue is empty. Prunes cancelled events from the front as Run() does.
  std::optional<SimTime> NextEventTime();

  /// (time, label) of every pending non-cancelled event in firing order.
  /// Lets the model checker fold outstanding timers into state fingerprints.
  std::vector<std::pair<SimTime, std::string>> PendingEventSummaries() const;

  /// Master RNG (fork children for subsystems).
  Rng& rng() { return rng_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
    std::string label;
  };
  struct EventOrder {
    // std::priority_queue is a max-heap; invert for earliest-first, with
    // sequence number as the deterministic tie-break.
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<uint64_t> cancelled_;
  Rng rng_;
};

}  // namespace prany

#endif  // PRANY_SIM_SIMULATOR_H_
