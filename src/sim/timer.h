// Restartable one-shot and periodic timers over an EventLoop (works
// identically over the deterministic Simulator and the live runtime loop).
//
// Protocol engines use these for decision retransmission and participant
// in-doubt inquiries. Timers are owned by their engine and automatically
// cancel on destruction, so a forgotten transaction leaves no stray events
// keeping the simulation alive.

#ifndef PRANY_SIM_TIMER_H_
#define PRANY_SIM_TIMER_H_

#include <functional>
#include <string>
#include <utility>

#include "sim/simulator.h"

namespace prany {

/// One-shot timer. Arm() replaces any pending firing.
class OneShotTimer {
 public:
  explicit OneShotTimer(EventLoop* sim) : sim_(sim) {}
  ~OneShotTimer() { Cancel(); }

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// Schedules `cb` to fire after `delay`, replacing any pending firing.
  void Arm(SimDuration delay, std::function<void()> cb,
           std::string label = "timer");

  /// Cancels the pending firing (no-op if not armed).
  void Cancel();

  bool armed() const { return pending_.valid(); }

 private:
  EventLoop* sim_;
  EventId pending_;
};

/// Periodic timer: fires every `period` until stopped. The callback runs
/// before the next firing is scheduled, so it may Stop() the timer.
class PeriodicTimer {
 public:
  explicit PeriodicTimer(EventLoop* sim) : sim_(sim) {}
  ~PeriodicTimer() { Stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts firing every `period`, first firing after `period`.
  void Start(SimDuration period, std::function<void()> cb,
             std::string label = "periodic");

  void Stop();

  bool running() const { return running_; }

 private:
  void FireAndReschedule();

  EventLoop* sim_;
  SimDuration period_ = 0;
  std::function<void()> cb_;
  std::string label_;
  EventId pending_;
  bool running_ = false;
};

}  // namespace prany

#endif  // PRANY_SIM_TIMER_H_
