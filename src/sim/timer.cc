#include "sim/timer.h"

namespace prany {

void OneShotTimer::Arm(SimDuration delay, std::function<void()> cb,
                       std::string label) {
  Cancel();
  pending_ = sim_->Schedule(
      delay,
      [this, cb = std::move(cb)]() {
        pending_ = EventId{};
        cb();
      },
      std::move(label));
}

void OneShotTimer::Cancel() {
  if (pending_.valid()) {
    sim_->Cancel(pending_);
    pending_ = EventId{};
  }
}

void PeriodicTimer::Start(SimDuration period, std::function<void()> cb,
                          std::string label) {
  Stop();
  period_ = period;
  cb_ = std::move(cb);
  label_ = std::move(label);
  running_ = true;
  pending_ = sim_->Schedule(period_, [this]() { FireAndReschedule(); },
                            label_);
}

void PeriodicTimer::Stop() {
  if (pending_.valid()) {
    sim_->Cancel(pending_);
    pending_ = EventId{};
  }
  running_ = false;
}

void PeriodicTimer::FireAndReschedule() {
  pending_ = EventId{};
  cb_();
  if (running_) {
    pending_ = sim_->Schedule(period_, [this]() { FireAndReschedule(); },
                              label_);
  }
}

}  // namespace prany
