#include "sim/simulator.h"

#include <utility>

#include "common/status.h"

namespace prany {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventId Simulator::Schedule(SimDuration delay, Callback cb,
                            std::string label) {
  return ScheduleAt(now_ + delay, std::move(cb), std::move(label));
}

EventId Simulator::ScheduleAt(SimTime when, Callback cb, std::string label) {
  PRANY_CHECK_MSG(when >= now_, "cannot schedule into the past");
  PRANY_CHECK(cb != nullptr);
  uint64_t seq = next_seq_++;
  queue_.push(Event{when, seq, std::move(cb), std::move(label)});
  return EventId{seq};
}

void Simulator::Cancel(EventId id) {
  if (!id.valid()) return;
  cancelled_.insert(id.seq);
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ev.cb();
    return true;
  }
  return false;
}

std::optional<SimTime> Simulator::NextEventTime() {
  while (!queue_.empty() && cancelled_.count(queue_.top().seq) > 0) {
    cancelled_.erase(queue_.top().seq);
    queue_.pop();
  }
  if (queue_.empty()) return std::nullopt;
  return queue_.top().time;
}

std::vector<std::pair<SimTime, std::string>> Simulator::PendingEventSummaries()
    const {
  std::vector<std::pair<SimTime, std::string>> out;
  auto copy = queue_;
  while (!copy.empty()) {
    const Event& ev = copy.top();
    if (cancelled_.count(ev.seq) == 0) out.emplace_back(ev.time, ev.label);
    copy.pop();
  }
  return out;
}

RunStats Simulator::Run(uint64_t max_events, SimTime until) {
  RunStats stats;
  while (true) {
    // Drop cancelled events from the front without counting them.
    while (!queue_.empty() && cancelled_.count(queue_.top().seq) > 0) {
      cancelled_.erase(queue_.top().seq);
      queue_.pop();
    }
    if (queue_.empty()) break;
    if (queue_.top().time > until) {
      stats.hit_time_limit = true;
      break;
    }
    if (stats.events_executed >= max_events) {
      stats.hit_event_limit = true;
      break;
    }
    Step();
    ++stats.events_executed;
  }
  stats.end_time = now_;
  return stats;
}

}  // namespace prany
