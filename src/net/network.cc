#include "net/network.h"

#include "common/status.h"
#include "common/string_util.h"

namespace prany {

TraceEvent NetTraceEvent(TraceEventKind kind, const Message& msg,
                         bool at_receiver) {
  TraceEvent e;
  e.kind = kind;
  e.txn = msg.txn;
  e.site = at_receiver ? msg.to : msg.from;
  e.peer = at_receiver ? msg.from : msg.to;
  e.label = ToString(msg.type);
  switch (msg.type) {
    case MessageType::kVote:
      e.detail = ToString(msg.vote);
      break;
    case MessageType::kDecision:
    case MessageType::kAck:
      e.outcome = msg.outcome;
      break;
    case MessageType::kInquiryReply:
      e.outcome = msg.outcome;
      e.by_presumption = msg.by_presumption;
      break;
    default:
      break;
  }
  return e;
}

Network::Network(Simulator* sim, MetricsRegistry* metrics)
    : sim_(sim), metrics_(metrics), rng_(sim->rng().Fork()) {
  default_latency_ = std::make_unique<FixedLatency>(500);
}

void Network::RegisterEndpoint(SiteId site, NetworkEndpoint* endpoint) {
  PRANY_CHECK(endpoint != nullptr);
  endpoints_[site] = endpoint;
}

void Network::SetDefaultLatency(std::unique_ptr<LatencyModel> model) {
  PRANY_CHECK(model != nullptr);
  default_latency_ = std::move(model);
}

void Network::SetLinkLatency(SiteId from, SiteId to,
                             std::unique_ptr<LatencyModel> model) {
  PRANY_CHECK(model != nullptr);
  link_latency_[{from, to}] = std::move(model);
}

void Network::SetDropProbability(double p) { drop_probability_ = p; }

void Network::SetDuplicateProbability(double p) {
  duplicate_probability_ = p;
}

void Network::Partition(const std::set<SiteId>& group_a,
                        const std::set<SiteId>& group_b) {
  for (SiteId a : group_a) {
    for (SiteId b : group_b) {
      blocked_links_.insert({a, b});
      blocked_links_.insert({b, a});
    }
  }
}

void Network::HealPartition() { blocked_links_.clear(); }

void Network::DropNext(MessageType type, TxnId txn, SiteId from, SiteId to) {
  drop_rules_.push_back(DropRule{type, txn, from, to});
}

void Network::DropSendIndex(uint64_t index) {
  drop_send_indexes_.insert(index);
}

bool Network::IsBlocked(SiteId from, SiteId to) const {
  return blocked_links_.count({from, to}) > 0;
}

bool Network::MatchesDropRule(const Message& msg) {
  for (auto it = drop_rules_.begin(); it != drop_rules_.end(); ++it) {
    if (it->type == msg.type && it->txn == msg.txn && it->from == msg.from &&
        it->to == msg.to) {
      drop_rules_.erase(it);
      return true;
    }
  }
  return false;
}

LatencyModel* Network::ModelFor(SiteId from, SiteId to) {
  auto it = link_latency_.find({from, to});
  if (it != link_latency_.end()) return it->second.get();
  return default_latency_.get();
}

void Network::Send(const Message& msg) {
  PRANY_CHECK(msg.from != kInvalidSite && msg.to != kInvalidSite);
  std::vector<uint8_t> wire = msg.Encode();
  ++stats_.messages_sent;
  stats_.bytes_sent += wire.size();
  if (metrics_ != nullptr) {
    metrics_->Add("net.msg." + ToString(msg.type));
    metrics_->Add("net.bytes", static_cast<int64_t>(wire.size()));
  }
  const bool tracing = sim_->trace().enabled();
  if (tracing) {
    TraceEvent e = NetTraceEvent(TraceEventKind::kMsgSend, msg, false);
    e.value = wire.size();
    sim_->Emit(std::move(e));
  }

  if (send_interceptor_ && send_interceptor_(msg, wire)) return;

  if (IsBlocked(msg.from, msg.to)) {
    ++stats_.messages_blocked;
    if (tracing) {
      sim_->Emit(NetTraceEvent(TraceEventKind::kMsgBlocked, msg, false));
    }
    return;
  }
  if (MatchesDropRule(msg)) {
    ++stats_.messages_dropped;
    if (tracing) {
      TraceEvent e = NetTraceEvent(TraceEventKind::kMsgDrop, msg, false);
      e.detail = "targeted";
      sim_->Emit(std::move(e));
    }
    return;
  }
  if (drop_send_indexes_.count(++send_index_) > 0) {
    ++stats_.messages_dropped;
    if (tracing) {
      TraceEvent e = NetTraceEvent(TraceEventKind::kMsgDrop, msg, false);
      e.detail = StrFormat("indexed #%llu",
                           static_cast<unsigned long long>(send_index_));
      sim_->Emit(std::move(e));
    }
    return;
  }
  if (rng_.Bernoulli(drop_probability_)) {
    ++stats_.messages_dropped;
    if (tracing) {
      TraceEvent e = NetTraceEvent(TraceEventKind::kMsgDrop, msg, false);
      e.detail = "random";
      sim_->Emit(std::move(e));
    }
    return;
  }

  ScheduleDelivery(msg, wire);
  if (rng_.Bernoulli(duplicate_probability_)) {
    ++stats_.messages_duplicated;
    if (tracing) {
      sim_->Emit(NetTraceEvent(TraceEventKind::kMsgDuplicate, msg, false));
    }
    ScheduleDelivery(msg, wire);
  }
}

void Network::ScheduleDelivery(const Message& msg,
                               const std::vector<uint8_t>& wire) {
  SimDuration latency = ModelFor(msg.from, msg.to)->Draw(&rng_, wire.size());
  SimTime deliver_at = sim_->Now() + latency;
  if (fifo_links_) {
    // Session ordering: never deliver before anything sent earlier on the
    // same directed link (ties resolve in send order via event seq).
    SimTime& last = last_delivery_[{msg.from, msg.to}];
    if (deliver_at < last) deliver_at = last;
    last = deliver_at;
  }
  sim_->ScheduleAt(deliver_at, [this, wire]() { Deliver(wire); },
                   "net.deliver");
}

void Network::Deliver(const std::vector<uint8_t>& wire) {
  Result<Message> decoded = Message::Decode(wire);
  // The fail-stop network never corrupts frames; a decode failure here is
  // a codec bug.
  PRANY_CHECK_MSG(decoded.ok(), decoded.status().ToString());
  const Message& msg = *decoded;
  auto it = endpoints_.find(msg.to);
  PRANY_CHECK_MSG(it != endpoints_.end(), "unknown destination site");
  if (!it->second->IsUp()) {
    ++stats_.messages_lost_down;
    if (sim_->trace().enabled()) {
      sim_->Emit(NetTraceEvent(TraceEventKind::kMsgLostDown, msg, true));
    }
    return;
  }
  ++stats_.messages_delivered;
  if (sim_->trace().enabled()) {
    sim_->Emit(NetTraceEvent(TraceEventKind::kMsgDeliver, msg, true));
  }
  it->second->OnMessage(msg);
}

}  // namespace prany
