#include "net/network.h"

#include "common/status.h"
#include "common/string_util.h"

namespace prany {

Network::Network(Simulator* sim, MetricsRegistry* metrics)
    : sim_(sim), metrics_(metrics), rng_(sim->rng().Fork()) {
  default_latency_ = std::make_unique<FixedLatency>(500);
}

void Network::RegisterEndpoint(SiteId site, NetworkEndpoint* endpoint) {
  PRANY_CHECK(endpoint != nullptr);
  endpoints_[site] = endpoint;
}

void Network::SetDefaultLatency(std::unique_ptr<LatencyModel> model) {
  PRANY_CHECK(model != nullptr);
  default_latency_ = std::move(model);
}

void Network::SetLinkLatency(SiteId from, SiteId to,
                             std::unique_ptr<LatencyModel> model) {
  PRANY_CHECK(model != nullptr);
  link_latency_[{from, to}] = std::move(model);
}

void Network::SetDropProbability(double p) { drop_probability_ = p; }

void Network::SetDuplicateProbability(double p) {
  duplicate_probability_ = p;
}

void Network::Partition(const std::set<SiteId>& group_a,
                        const std::set<SiteId>& group_b) {
  for (SiteId a : group_a) {
    for (SiteId b : group_b) {
      blocked_links_.insert({a, b});
      blocked_links_.insert({b, a});
    }
  }
}

void Network::HealPartition() { blocked_links_.clear(); }

void Network::DropNext(MessageType type, TxnId txn, SiteId from, SiteId to) {
  drop_rules_.push_back(DropRule{type, txn, from, to});
}

void Network::DropSendIndex(uint64_t index) {
  drop_send_indexes_.insert(index);
}

bool Network::IsBlocked(SiteId from, SiteId to) const {
  return blocked_links_.count({from, to}) > 0;
}

bool Network::MatchesDropRule(const Message& msg) {
  for (auto it = drop_rules_.begin(); it != drop_rules_.end(); ++it) {
    if (it->type == msg.type && it->txn == msg.txn && it->from == msg.from &&
        it->to == msg.to) {
      drop_rules_.erase(it);
      return true;
    }
  }
  return false;
}

LatencyModel* Network::ModelFor(SiteId from, SiteId to) {
  auto it = link_latency_.find({from, to});
  if (it != link_latency_.end()) return it->second.get();
  return default_latency_.get();
}

void Network::Send(const Message& msg) {
  PRANY_CHECK(msg.from != kInvalidSite && msg.to != kInvalidSite);
  std::vector<uint8_t> wire = msg.Encode();
  ++stats_.messages_sent;
  stats_.bytes_sent += wire.size();
  if (metrics_ != nullptr) {
    metrics_->Add("net.msg." + ToString(msg.type));
    metrics_->Add("net.bytes", static_cast<int64_t>(wire.size()));
  }
  sim_->Trace(StrFormat("net send %s", msg.ToString().c_str()));

  if (IsBlocked(msg.from, msg.to)) {
    ++stats_.messages_blocked;
    sim_->Trace(StrFormat("net blocked %s", msg.ToString().c_str()));
    return;
  }
  if (MatchesDropRule(msg)) {
    ++stats_.messages_dropped;
    sim_->Trace(StrFormat("net targeted-drop %s", msg.ToString().c_str()));
    return;
  }
  if (drop_send_indexes_.count(++send_index_) > 0) {
    ++stats_.messages_dropped;
    sim_->Trace(StrFormat("net indexed-drop #%llu %s",
                          static_cast<unsigned long long>(send_index_),
                          msg.ToString().c_str()));
    return;
  }
  if (rng_.Bernoulli(drop_probability_)) {
    ++stats_.messages_dropped;
    sim_->Trace(StrFormat("net random-drop %s", msg.ToString().c_str()));
    return;
  }

  ScheduleDelivery(msg, wire);
  if (rng_.Bernoulli(duplicate_probability_)) {
    ++stats_.messages_duplicated;
    ScheduleDelivery(msg, wire);
  }
}

void Network::ScheduleDelivery(const Message& msg,
                               const std::vector<uint8_t>& wire) {
  SimDuration latency = ModelFor(msg.from, msg.to)->Draw(&rng_, wire.size());
  SimTime deliver_at = sim_->Now() + latency;
  if (fifo_links_) {
    // Session ordering: never deliver before anything sent earlier on the
    // same directed link (ties resolve in send order via event seq).
    SimTime& last = last_delivery_[{msg.from, msg.to}];
    if (deliver_at < last) deliver_at = last;
    last = deliver_at;
  }
  sim_->ScheduleAt(
      deliver_at,
      [this, wire]() {
        Result<Message> decoded = Message::Decode(wire);
        // The fail-stop network never corrupts frames; a decode failure
        // here is a codec bug.
        PRANY_CHECK_MSG(decoded.ok(), decoded.status().ToString());
        const Message& msg = *decoded;
        auto it = endpoints_.find(msg.to);
        PRANY_CHECK_MSG(it != endpoints_.end(), "unknown destination site");
        if (!it->second->IsUp()) {
          ++stats_.messages_lost_down;
          sim_->Trace(StrFormat("net lost(down) %s", msg.ToString().c_str()));
          return;
        }
        ++stats_.messages_delivered;
        sim_->Trace(StrFormat("net deliver %s", msg.ToString().c_str()));
        it->second->OnMessage(msg);
      },
      "net.deliver");
}

}  // namespace prany
