// Pluggable one-way message latency models.
//
// The cost-table and trace tests use FixedLatency for byte-exact
// determinism; throughput/latency benches use uniform or exponential
// models to exercise reordering and timeout paths.

#ifndef PRANY_NET_LATENCY_MODEL_H_
#define PRANY_NET_LATENCY_MODEL_H_

#include <memory>

#include "common/rng.h"
#include "common/types.h"

namespace prany {

/// Draws a one-way delivery latency for a message of `bytes` size.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual SimDuration Draw(Rng* rng, size_t bytes) = 0;
};

/// Constant latency; messages between a pair never reorder.
class FixedLatency : public LatencyModel {
 public:
  explicit FixedLatency(SimDuration latency) : latency_(latency) {}
  SimDuration Draw(Rng* rng, size_t bytes) override;

 private:
  SimDuration latency_;
};

/// Uniform latency in [lo, hi].
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(SimDuration lo, SimDuration hi);
  SimDuration Draw(Rng* rng, size_t bytes) override;

 private:
  SimDuration lo_;
  SimDuration hi_;
};

/// base + Exp(mean) tail — a common WAN approximation.
class ExponentialLatency : public LatencyModel {
 public:
  ExponentialLatency(SimDuration base, double mean_tail);
  SimDuration Draw(Rng* rng, size_t bytes) override;

 private:
  SimDuration base_;
  double mean_tail_;
};

/// propagation + bytes/bandwidth transmission delay.
class BandwidthLatency : public LatencyModel {
 public:
  /// `bytes_per_us` must be > 0.
  BandwidthLatency(SimDuration propagation, double bytes_per_us);
  SimDuration Draw(Rng* rng, size_t bytes) override;

 private:
  SimDuration propagation_;
  double bytes_per_us_;
};

}  // namespace prany

#endif  // PRANY_NET_LATENCY_MODEL_H_
