// Length-prefixed wire framing for the socket transport.
//
// A frame on the wire is:
//
//   [u32 LE payload_len][u8 FrameType][payload_len - 1 bytes of body]
//
// where the length covers everything after the prefix (type byte
// included). kMessage bodies are exactly Message::Encode() bytes; kControl
// bodies are opaque to the transport (the runtime uses them for
// transaction-setup records that must order before the PREPAREs that
// follow on the same link).
//
// FrameParser is the receive half: it consumes arbitrary byte chunks as a
// TCP stream hands them over — a chunk may hold a partial length prefix,
// many whole frames, or the middle of a large one — and yields complete
// frames in order. A parse error (oversized or zero length) is sticky and
// means the stream is corrupt; the connection must be dropped and the
// parser Reset() before reuse.

#ifndef PRANY_NET_WIRE_H_
#define PRANY_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace prany {
namespace net {

/// What a frame carries. Values are wire-stable.
enum class FrameType : uint8_t {
  kMessage = 1,  ///< Body is Message::Encode() bytes.
  kControl = 2,  ///< Body is runtime-defined (transaction setup).
};

/// Frames larger than this are rejected as corruption. Protocol messages
/// are tens of bytes; control records are small too — a huge length means
/// a desynchronized or garbage stream, and honoring it would buffer
/// unbounded memory.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

/// Appends one framed payload to `out` (which may already hold frames —
/// senders batch several per writev-sized buffer).
void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 const uint8_t* body, size_t body_size);
void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 const std::vector<uint8_t>& body);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kMessage;
  std::vector<uint8_t> body;
};

/// Incremental frame decoder over a byte stream (see header comment).
class FrameParser {
 public:
  explicit FrameParser(uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends `n` stream bytes. Call Next() until it stops yielding.
  void Feed(const uint8_t* data, size_t n);

  /// Pops the next complete frame into `out`. Returns OK with *got=true
  /// when a frame was produced, OK with *got=false when more bytes are
  /// needed, and Corruption (sticky) on a malformed length.
  Status Next(Frame* out, bool* got);

  /// Drops all buffered state (new connection, after an error).
  void Reset();

  /// Bytes buffered but not yet returned as frames.
  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  uint32_t max_payload_;
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  ///< Prefix of buf_ already returned as frames.
  bool corrupt_ = false;
};

}  // namespace net
}  // namespace prany

#endif  // PRANY_NET_WIRE_H_
