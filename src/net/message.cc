#include "net/message.h"

#include "common/string_util.h"

namespace prany {

namespace {
// Wire format version byte; bumping it invalidates old frames.
constexpr uint8_t kWireVersion = 1;
}  // namespace

std::string ToString(MessageType type) {
  switch (type) {
    case MessageType::kPrepare:
      return "PREPARE";
    case MessageType::kVote:
      return "VOTE";
    case MessageType::kDecision:
      return "DECISION";
    case MessageType::kAck:
      return "ACK";
    case MessageType::kInquiry:
      return "INQUIRY";
    case MessageType::kInquiryReply:
      return "INQUIRY_REPLY";
  }
  return "UNKNOWN";
}

Message Message::Prepare(TxnId txn, SiteId from, SiteId to) {
  Message m;
  m.type = MessageType::kPrepare;
  m.txn = txn;
  m.from = from;
  m.to = to;
  return m;
}

Message Message::MakeVote(TxnId txn, SiteId from, SiteId to, Vote vote) {
  Message m;
  m.type = MessageType::kVote;
  m.txn = txn;
  m.from = from;
  m.to = to;
  m.vote = vote;
  return m;
}

Message Message::Decision(TxnId txn, SiteId from, SiteId to,
                          Outcome outcome) {
  Message m;
  m.type = MessageType::kDecision;
  m.txn = txn;
  m.from = from;
  m.to = to;
  m.outcome = outcome;
  return m;
}

Message Message::Ack(TxnId txn, SiteId from, SiteId to, Outcome outcome) {
  Message m;
  m.type = MessageType::kAck;
  m.txn = txn;
  m.from = from;
  m.to = to;
  m.outcome = outcome;
  return m;
}

Message Message::Inquiry(TxnId txn, SiteId from, SiteId to) {
  Message m;
  m.type = MessageType::kInquiry;
  m.txn = txn;
  m.from = from;
  m.to = to;
  return m;
}

Message Message::InquiryReply(TxnId txn, SiteId from, SiteId to,
                              Outcome outcome, bool by_presumption) {
  Message m;
  m.type = MessageType::kInquiryReply;
  m.txn = txn;
  m.from = from;
  m.to = to;
  m.outcome = outcome;
  m.by_presumption = by_presumption;
  return m;
}

std::vector<uint8_t> Message::Encode() const {
  std::vector<uint8_t> out;
  EncodeInto(&out);
  return out;
}

void Message::EncodeInto(std::vector<uint8_t>* out) const {
  ByteWriter w(std::move(*out));
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(txn);
  w.PutU32(from);
  w.PutU32(to);
  w.PutU8(static_cast<uint8_t>(vote));
  w.PutU8(static_cast<uint8_t>(outcome));
  w.PutU8(by_presumption ? 1 : 0);
  *out = w.TakeBytes();
}

Result<Message> Message::Decode(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint8_t version = 0;
  PRANY_RETURN_NOT_OK(r.GetU8(&version));
  if (version != kWireVersion) {
    return Status::Corruption("unsupported wire version");
  }
  Message m;
  uint8_t type = 0, vote = 0, outcome = 0, by_presumption = 0;
  PRANY_RETURN_NOT_OK(r.GetU8(&type));
  if (type > static_cast<uint8_t>(MessageType::kInquiryReply)) {
    return Status::Corruption("unknown message type");
  }
  m.type = static_cast<MessageType>(type);
  PRANY_RETURN_NOT_OK(r.GetU64(&m.txn));
  PRANY_RETURN_NOT_OK(r.GetU32(&m.from));
  PRANY_RETURN_NOT_OK(r.GetU32(&m.to));
  PRANY_RETURN_NOT_OK(r.GetU8(&vote));
  if (vote > static_cast<uint8_t>(Vote::kReadOnly)) {
    return Status::Corruption("invalid vote");
  }
  m.vote = static_cast<Vote>(vote);
  PRANY_RETURN_NOT_OK(r.GetU8(&outcome));
  if (outcome > static_cast<uint8_t>(Outcome::kAbort)) {
    return Status::Corruption("invalid outcome");
  }
  m.outcome = static_cast<Outcome>(outcome);
  PRANY_RETURN_NOT_OK(r.GetU8(&by_presumption));
  if (by_presumption > 1) {
    return Status::Corruption("non-canonical boolean");
  }
  m.by_presumption = by_presumption == 1;
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after message");
  }
  return m;
}

size_t Message::WireSize() const { return Encode().size(); }

std::string Message::ToString() const {
  std::string head = prany::ToString(type);
  switch (type) {
    case MessageType::kVote:
      head += StrFormat("(%s)", prany::ToString(vote).c_str());
      break;
    case MessageType::kDecision:
    case MessageType::kAck:
      head += StrFormat("(%s)", prany::ToString(outcome).c_str());
      break;
    case MessageType::kInquiryReply:
      head += StrFormat("(%s%s)", prany::ToString(outcome).c_str(),
                        by_presumption ? ",presumed" : "");
      break;
    default:
      break;
  }
  return StrFormat("%s txn=%llu %u->%u", head.c_str(),
                   static_cast<unsigned long long>(txn), from, to);
}

bool Message::operator==(const Message& other) const {
  return type == other.type && txn == other.txn && from == other.from &&
         to == other.to && vote == other.vote && outcome == other.outcome &&
         by_presumption == other.by_presumption;
}

}  // namespace prany
