#include "net/latency_model.h"

#include <cmath>

#include "common/status.h"

namespace prany {

SimDuration FixedLatency::Draw(Rng* rng, size_t bytes) {
  (void)rng;
  (void)bytes;
  return latency_;
}

UniformLatency::UniformLatency(SimDuration lo, SimDuration hi)
    : lo_(lo), hi_(hi) {
  PRANY_CHECK(lo <= hi);
}

SimDuration UniformLatency::Draw(Rng* rng, size_t bytes) {
  (void)bytes;
  return rng->Uniform(lo_, hi_);
}

ExponentialLatency::ExponentialLatency(SimDuration base, double mean_tail)
    : base_(base), mean_tail_(mean_tail) {
  PRANY_CHECK(mean_tail > 0.0);
}

SimDuration ExponentialLatency::Draw(Rng* rng, size_t bytes) {
  (void)bytes;
  return base_ + static_cast<SimDuration>(
                     std::llround(rng->Exponential(mean_tail_)));
}

BandwidthLatency::BandwidthLatency(SimDuration propagation,
                                   double bytes_per_us)
    : propagation_(propagation), bytes_per_us_(bytes_per_us) {
  PRANY_CHECK(bytes_per_us > 0.0);
}

SimDuration BandwidthLatency::Draw(Rng* rng, size_t bytes) {
  (void)rng;
  return propagation_ + static_cast<SimDuration>(std::llround(
                            static_cast<double>(bytes) / bytes_per_us_));
}

}  // namespace prany
