// Simulated message-passing network connecting the sites.
//
// Failure semantics (matching the paper's omission-failure model, §1):
//   - Messages may be lost (per-network drop probability, plus targeted
//     one-shot drop rules for scenario construction).
//   - Messages may be duplicated.
//   - Links may be partitioned (both directions blocked until healed).
//   - A message delivered while its destination is down is lost — exactly
//     the behaviour the paper's recovery procedures must tolerate.
// Messages are never corrupted in flight (fail-stop model); the codec's
// corruption handling is exercised by the WAL crash-tail path and tests.
//
// Ordering: links are FIFO per directed (src, dst) pair by default,
// modelling the session-ordered channels (e.g. TCP) the paper's protocols
// implicitly assume. This matters: with arbitrary per-message reordering
// a decision can overtake its own PREPARE, a memoryless participant
// acknowledges the decision (footnote 5), the coordinator forgets, and
// the late PREPARE then creates an in-doubt participant that must be
// answered by presumption — which no forgetful protocol can always answer
// consistently. SetFifoLinks(false) exposes that mode for adversarial
// tests (see tests/integration/reordering_test.cc).

#ifndef PRANY_NET_NETWORK_H_
#define PRANY_NET_NETWORK_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "net/latency_model.h"
#include "net/message.h"
#include "net/transport.h"
#include "sim/simulator.h"

namespace prany {

/// Aggregate network statistics.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;       ///< Random or rule-based drops.
  uint64_t messages_lost_down = 0;     ///< Destination was down.
  uint64_t messages_blocked = 0;       ///< Partitioned link.
  uint64_t messages_duplicated = 0;
  uint64_t bytes_sent = 0;
};

/// The simulated network fabric. One per System.
class Network : public ITransport {
 public:
  /// `metrics` may be null; when set, per-message-type counters are kept
  /// there under "net.msg.<TYPE>".
  Network(Simulator* sim, MetricsRegistry* metrics = nullptr);

  /// Registers the handler for `site`. A site must be registered before
  /// any message addressed to it is delivered.
  void RegisterEndpoint(SiteId site, NetworkEndpoint* endpoint) override;

  /// Default latency model for all links (fixed 500us if never set).
  void SetDefaultLatency(std::unique_ptr<LatencyModel> model);

  /// Overrides the latency model for the directed link from->to.
  void SetLinkLatency(SiteId from, SiteId to,
                      std::unique_ptr<LatencyModel> model);

  /// Per-directed-link FIFO delivery (default true; see the header
  /// comment for why turning it off breaks every forgetful protocol).
  void SetFifoLinks(bool fifo) { fifo_links_ = fifo; }

  /// Probability that any message is silently dropped.
  void SetDropProbability(double p);

  /// Probability that a delivered message is delivered twice.
  void SetDuplicateProbability(double p);

  /// Blocks both directions between every pair (a, b) with a in group_a and
  /// b in group_b, until HealPartition().
  void Partition(const std::set<SiteId>& group_a,
                 const std::set<SiteId>& group_b);

  /// Removes all partition rules.
  void HealPartition();

  /// Installs a one-shot targeted drop: the next message matching
  /// (type, txn, from, to) is dropped. Used to build the paper's
  /// counterexample timings deterministically.
  void DropNext(MessageType type, TxnId txn, SiteId from, SiteId to);

  /// Drops the `index`-th message handed to Send (1-based, counted over
  /// the network's lifetime). The workhorse of the exhaustive
  /// single-omission sweeps: enumerate a failure-free run's sends, then
  /// re-run the scenario once per index.
  void DropSendIndex(uint64_t index);

  /// Messages handed to Send so far (the index space of DropSendIndex).
  uint64_t SendsSoFar() const { return send_index_; }

  /// Serializes, routes and schedules delivery of `msg` (msg.from/to must
  /// be set). Send never fails from the sender's perspective: losses are
  /// silent, per the omission model.
  void Send(const Message& msg) override;

  /// Hook invoked by Send() for every message, right after accounting and
  /// tracing but before the loss/latency pipeline. Returning true means the
  /// interceptor took ownership of delivery and the normal path is skipped.
  /// The model checker's schedule controller uses this to capture every
  /// in-flight message and enumerate delivery orders itself.
  using SendInterceptor =
      std::function<bool(const Message& msg, const std::vector<uint8_t>& wire)>;
  void SetSendInterceptor(SendInterceptor interceptor) {
    send_interceptor_ = std::move(interceptor);
  }

  /// Delivers an encoded frame to its destination at the current simulated
  /// time, bypassing latency/drop/duplication models (a down destination
  /// still loses it). Counterpart of SetSendInterceptor for controllers
  /// that re-inject captured messages in an order of their choosing.
  void DeliverNow(const std::vector<uint8_t>& wire) { Deliver(wire); }

  const NetworkStats& stats() const { return stats_; }

  Simulator* sim() { return sim_; }

 private:
  struct DropRule {
    MessageType type;
    TxnId txn;
    SiteId from;
    SiteId to;
  };

  bool IsBlocked(SiteId from, SiteId to) const;
  bool MatchesDropRule(const Message& msg);
  LatencyModel* ModelFor(SiteId from, SiteId to);
  void ScheduleDelivery(const Message& msg, const std::vector<uint8_t>& wire);
  void Deliver(const std::vector<uint8_t>& wire);

  Simulator* sim_;
  MetricsRegistry* metrics_;
  Rng rng_;
  std::map<SiteId, NetworkEndpoint*> endpoints_;
  std::unique_ptr<LatencyModel> default_latency_;
  std::map<std::pair<SiteId, SiteId>, std::unique_ptr<LatencyModel>>
      link_latency_;
  double drop_probability_ = 0.0;
  double duplicate_probability_ = 0.0;
  bool fifo_links_ = true;
  std::map<std::pair<SiteId, SiteId>, SimTime> last_delivery_;
  std::set<std::pair<SiteId, SiteId>> blocked_links_;
  std::vector<DropRule> drop_rules_;
  uint64_t send_index_ = 0;
  std::set<uint64_t> drop_send_indexes_;
  SendInterceptor send_interceptor_;
  NetworkStats stats_;
};

}  // namespace prany

#endif  // PRANY_NET_NETWORK_H_
