// Transport seam: how protocol engines hand messages to the fabric.
//
// Three implementations:
//   - net::Network — the simulated fabric (latency models, loss,
//     duplication, partitions) running over the Simulator.
//   - runtime::LiveTransport — in-process multithreaded channels with
//     per-site inboxes, running over the LiveEventLoop.
//   - runtime::SocketTransport — real TCP/UDS sockets between site
//     processes, with length-prefixed framing (net/wire.h) and
//     reconnect-with-backoff.
//
// All emit the same structured trace events (MSG_SEND / MSG_DELIVER with
// identical field conventions), which is what lets the sim-vs-live
// equivalence tests compare protocol exchanges across backends.

#ifndef PRANY_NET_TRANSPORT_H_
#define PRANY_NET_TRANSPORT_H_

#include "common/trace.h"
#include "net/message.h"

namespace prany {

/// Builds a structured net event for `msg` with the shared field
/// conventions (send-side kinds attribute to the sender's track, delivery-
/// side kinds to the receiver's; votes/decisions carry their payload).
/// Every ITransport implementation emits through this so traces are
/// comparable across backends.
TraceEvent NetTraceEvent(TraceEventKind kind, const Message& msg,
                         bool at_receiver);

/// Receives delivered messages. Implemented by harness::Site.
class NetworkEndpoint {
 public:
  virtual ~NetworkEndpoint() = default;

  /// Called at delivery time with the decoded message.
  virtual void OnMessage(const Message& msg) = 0;

  /// Down endpoints lose the message (omission failure).
  virtual bool IsUp() const = 0;
};

/// Message fabric interface. One per System/LiveSystem.
class ITransport {
 public:
  virtual ~ITransport() = default;

  /// Registers the handler for `site`. A site must be registered before
  /// any message addressed to it is delivered.
  virtual void RegisterEndpoint(SiteId site, NetworkEndpoint* endpoint) = 0;

  /// Serializes, routes and schedules delivery of `msg` (msg.from/to must
  /// be set). Send never fails from the sender's perspective: losses are
  /// silent, per the omission model. Implementations must preserve
  /// per-directed-link FIFO order — two messages sent A→B by the same
  /// thread are delivered in send order (a DECISION must never overtake
  /// the PREPARE it answers) — but may drop messages (down endpoint, dead
  /// connection, full queue); the protocols recover via timers and
  /// inquiry. Send must not block indefinitely and must be safe to call
  /// from any thread, including while the caller holds an engine mutex.
  virtual void Send(const Message& msg) = 0;
};

}  // namespace prany

#endif  // PRANY_NET_TRANSPORT_H_
