#include "net/wire.h"

#include <cstring>

#include "common/bytes.h"
#include "common/string_util.h"

namespace prany {
namespace net {

void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 const uint8_t* body, size_t body_size) {
  const uint32_t payload = static_cast<uint32_t>(body_size) + 1;
  out->reserve(out->size() + 4 + payload);
  for (size_t i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(payload >> (8 * i)));
  }
  out->push_back(static_cast<uint8_t>(type));
  out->insert(out->end(), body, body + body_size);
}

void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 const std::vector<uint8_t>& body) {
  AppendFrame(out, type, body.data(), body.size());
}

void FrameParser::Feed(const uint8_t* data, size_t n) {
  if (corrupt_) return;  // the connection is dead; don't buffer more
  // Compact lazily: only when the consumed prefix dominates the buffer,
  // so steady-state small frames don't memmove per frame.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

Status FrameParser::Next(Frame* out, bool* got) {
  *got = false;
  if (corrupt_) return Status::Corruption("frame stream corrupt");
  const size_t avail = buf_.size() - consumed_;
  if (avail < 4) return Status::OK();
  const uint8_t* p = buf_.data() + consumed_;
  uint32_t payload = 0;
  for (size_t i = 0; i < 4; ++i) {
    payload |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  if (payload == 0 || payload > max_payload_ + 1) {
    corrupt_ = true;
    return Status::Corruption(
        StrFormat("bad frame length %u", payload));
  }
  if (avail < 4 + static_cast<size_t>(payload)) return Status::OK();
  out->type = static_cast<FrameType>(p[4]);
  out->body.assign(p + 5, p + 4 + payload);
  consumed_ += 4 + static_cast<size_t>(payload);
  *got = true;
  return Status::OK();
}

void FrameParser::Reset() {
  buf_.clear();
  consumed_ = 0;
  corrupt_ = false;
}

}  // namespace net
}  // namespace prany
