// Wire messages exchanged by the commit protocols, plus a binary codec.
//
// The message vocabulary is exactly the paper's (Figures 1-4):
//   PREPARE        coordinator -> participant   (voting phase request)
//   VOTE           participant -> coordinator   (yes / no)
//   DECISION       coordinator -> participant   (commit / abort)
//   ACK            participant -> coordinator   (decision acknowledgment)
//   INQUIRY        participant -> coordinator   (in-doubt recovery question)
//   INQUIRY_REPLY  coordinator -> participant   (decision or presumption)
//
// Messages are serialized on send and deserialized on delivery so that the
// simulation measures realistic byte volumes and exercises a real codec.

#ifndef PRANY_NET_MESSAGE_H_
#define PRANY_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/types.h"

namespace prany {

/// Kind of protocol message.
enum class MessageType : uint8_t {
  kPrepare = 0,
  kVote = 1,
  kDecision = 2,
  kAck = 3,
  kInquiry = 4,
  kInquiryReply = 5,
};

/// Human-readable message-type name ("PREPARE", ...).
std::string ToString(MessageType type);

/// One protocol message. Fields beyond (type, txn, from, to) are only
/// meaningful for the message types that carry them.
struct Message {
  MessageType type = MessageType::kPrepare;
  TxnId txn = kInvalidTxn;
  SiteId from = kInvalidSite;
  SiteId to = kInvalidSite;

  /// For kVote.
  Vote vote = Vote::kYes;

  /// For kDecision, kAck and kInquiryReply: which outcome.
  Outcome outcome = Outcome::kCommit;

  /// For kInquiryReply: true when the coordinator answered from memory or
  /// log; false when it answered *by presumption* after forgetting the
  /// transaction. Carried for observability (history/ checkers); protocol
  /// logic never branches on it.
  bool by_presumption = false;

  static Message Prepare(TxnId txn, SiteId from, SiteId to);
  static Message MakeVote(TxnId txn, SiteId from, SiteId to, Vote vote);
  static Message Decision(TxnId txn, SiteId from, SiteId to, Outcome outcome);
  static Message Ack(TxnId txn, SiteId from, SiteId to, Outcome outcome);
  static Message Inquiry(TxnId txn, SiteId from, SiteId to);
  static Message InquiryReply(TxnId txn, SiteId from, SiteId to,
                              Outcome outcome, bool by_presumption);

  /// Serializes to wire bytes.
  std::vector<uint8_t> Encode() const;

  /// Serializes into `out`, replacing its contents but reusing its
  /// capacity — the allocation-free path for pooled wire buffers.
  void EncodeInto(std::vector<uint8_t>* out) const;

  /// Parses wire bytes; rejects truncated or malformed frames.
  static Result<Message> Decode(const std::vector<uint8_t>& bytes);

  /// Encoded size in bytes (used for network byte accounting).
  size_t WireSize() const;

  /// One-line rendering for traces, e.g. "DECISION(commit) txn=7 3->1".
  std::string ToString() const;

  bool operator==(const Message& other) const;
};

}  // namespace prany

#endif  // PRANY_NET_MESSAGE_H_
