#include "protocol/coordinator_pra.h"

namespace prany {

bool CoordinatorPrA::WritesInitiation(ProtocolKind mode) const {
  (void)mode;
  return false;
}

DecisionLogPolicy CoordinatorPrA::DecisionPolicy(ProtocolKind mode,
                                                 Outcome outcome) const {
  (void)mode;
  return outcome == Outcome::kCommit ? DecisionLogPolicy::kForced
                                     : DecisionLogPolicy::kNone;
}

bool CoordinatorPrA::DecisionNamesParticipants(ProtocolKind mode) const {
  (void)mode;
  return true;
}

std::set<SiteId> CoordinatorPrA::ExpectedAckers(const CoordTxnState& st,
                                                Outcome outcome) const {
  if (outcome == Outcome::kAbort) return {};  // Aborts are fire-and-forget.
  return SitesOf(st.participants);
}

std::pair<Outcome, bool> CoordinatorPrA::AnswerUnknownInquiry(
    TxnId txn, SiteId inquirer) {
  (void)txn;
  (void)inquirer;
  return {Outcome::kAbort, /*by_presumption=*/true};
}

void CoordinatorPrA::RecoverTxn(const TxnLogSummary& summary) {
  // Only commits are ever logged under PrA; aborted transactions left no
  // trace and are covered by the presumption.
  if (!summary.coord_decision.has_value()) return;
  ReinitiateDecision(summary.txn, ProtocolKind::kPrA, summary.participants,
                     *summary.coord_decision, SitesOf(summary.participants));
}

}  // namespace prany
