// Presumed-commit coordinator — Figure 4 of the paper.
//
// Interprets missing information as *commit*. To make that sound, the
// coordinator force-writes an initiation record (with the participant
// identities) before the voting phase; a forced commit record then
// logically eliminates it and the transaction is forgotten immediately —
// no commit acknowledgments. Aborts are the expensive side: not logged,
// but every participant must acknowledge before the END record closes the
// open initiation.

#ifndef PRANY_PROTOCOL_COORDINATOR_PRC_H_
#define PRANY_PROTOCOL_COORDINATOR_PRC_H_

#include <utility>

#include "protocol/coordinator_base.h"

namespace prany {

class CoordinatorPrC : public CoordinatorBase {
 public:
  explicit CoordinatorPrC(EngineContext ctx)
      : CoordinatorBase(std::move(ctx), ProtocolKind::kPrC) {}

 protected:
  bool WritesInitiation(ProtocolKind mode) const override;
  DecisionLogPolicy DecisionPolicy(ProtocolKind mode,
                                   Outcome outcome) const override;
  bool DecisionNamesParticipants(ProtocolKind mode) const override;
  std::set<SiteId> ExpectedAckers(const CoordTxnState& st,
                                  Outcome outcome) const override;
  std::pair<Outcome, bool> AnswerUnknownInquiry(TxnId txn,
                                                SiteId inquirer) override;
  void RecoverTxn(const TxnLogSummary& summary) override;
};

}  // namespace prany

#endif  // PRANY_PROTOCOL_COORDINATOR_PRC_H_
