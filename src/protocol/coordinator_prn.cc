#include "protocol/coordinator_prn.h"

namespace prany {

bool CoordinatorPrN::WritesInitiation(ProtocolKind mode) const {
  (void)mode;
  return false;
}

DecisionLogPolicy CoordinatorPrN::DecisionPolicy(ProtocolKind mode,
                                                 Outcome outcome) const {
  (void)mode;
  (void)outcome;
  // PrN explicitly logs every decision, forced (Figure 2).
  return DecisionLogPolicy::kForced;
}

bool CoordinatorPrN::DecisionNamesParticipants(ProtocolKind mode) const {
  (void)mode;
  return true;  // No initiation record: recovery reads them from here.
}

std::set<SiteId> CoordinatorPrN::ExpectedAckers(const CoordTxnState& st,
                                                Outcome outcome) const {
  (void)outcome;
  return SitesOf(st.participants);  // Everyone acknowledges everything.
}

std::pair<Outcome, bool> CoordinatorPrN::AnswerUnknownInquiry(
    TxnId txn, SiteId inquirer) {
  (void)txn;
  (void)inquirer;
  // The hidden presumption: an unknown transaction was active at the time
  // of a failure and is considered aborted.
  return {Outcome::kAbort, /*by_presumption=*/true};
}

void CoordinatorPrN::RecoverTxn(const TxnLogSummary& summary) {
  // The only coordinator-side PrN records are decision records (with the
  // participant list) and END records; the base skips ended transactions.
  if (!summary.coord_decision.has_value()) return;
  ReinitiateDecision(summary.txn, ProtocolKind::kPrN, summary.participants,
                     *summary.coord_decision, SitesOf(summary.participants));
}

}  // namespace prany
