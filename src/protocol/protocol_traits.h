// Participant-side behavioural differences between PrN, PrA and PrC,
// transcribed from Figures 2, 3 and 4 of the paper.
//
//            | acks commit | acks abort | forces commit rec | forces abort rec
//   PrN      |    yes      |    yes     |       yes         |      yes
//   PrA      |    yes      |    no      |       yes         |      no
//   PrC      |    no       |    yes     |       no          |      yes
//
// The asymmetry is the whole point: each presumed protocol skips the ack
// and the forced decision write on the outcome its presumption covers.

#ifndef PRANY_PROTOCOL_PROTOCOL_TRAITS_H_
#define PRANY_PROTOCOL_PROTOCOL_TRAITS_H_

#include <set>
#include <vector>

#include "common/types.h"

namespace prany {

/// Participant behaviour knobs for one base protocol.
struct ParticipantTraits {
  bool ack_commit = true;
  bool ack_abort = true;
  bool force_commit_record = true;
  bool force_abort_record = true;
};

/// Traits for a base protocol (PrN/PrA/PrC). CHECKs on non-base kinds.
const ParticipantTraits& TraitsFor(ProtocolKind kind);

/// Whether a `kind` participant acknowledges a `outcome` decision.
bool ParticipantAcks(ProtocolKind kind, Outcome outcome);

/// Whether a `kind` participant force-writes its `outcome` decision
/// record (non-forced otherwise).
bool ParticipantForcesDecision(ProtocolKind kind, Outcome outcome);

/// The subset of `participants` whose protocol acknowledges `outcome`.
std::set<SiteId> AckersAmong(const std::vector<ParticipantInfo>& participants,
                             Outcome outcome);

/// All participant sites.
std::set<SiteId> SitesOf(const std::vector<ParticipantInfo>& participants);

}  // namespace prany

#endif  // PRANY_PROTOCOL_PROTOCOL_TRAITS_H_
