// Participant-side behavioural differences between PrN, PrA and PrC,
// transcribed from Figures 2, 3 and 4 of the paper.
//
//            | acks commit | acks abort | forces commit rec | forces abort rec
//   PrN      |    yes      |    yes     |       yes         |      yes
//   PrA      |    yes      |    no      |       yes         |      no
//   PrC      |    no       |    yes     |       no          |      yes
//
// The asymmetry is the whole point: each presumed protocol skips the ack
// and the forced decision write on the outcome its presumption covers.

#ifndef PRANY_PROTOCOL_PROTOCOL_TRAITS_H_
#define PRANY_PROTOCOL_PROTOCOL_TRAITS_H_

#include <optional>
#include <set>
#include <vector>

#include "common/types.h"

namespace prany {

/// Participant behaviour knobs for one base protocol.
struct ParticipantTraits {
  bool ack_commit = true;
  bool ack_abort = true;
  bool force_commit_record = true;
  bool force_abort_record = true;
};

/// Traits for a base protocol (PrN/PrA/PrC). CHECKs on non-base kinds.
const ParticipantTraits& TraitsFor(ProtocolKind kind);

/// Whether a `kind` participant acknowledges a `outcome` decision.
bool ParticipantAcks(ProtocolKind kind, Outcome outcome);

/// Whether a `kind` participant force-writes its `outcome` decision
/// record (non-forced otherwise).
bool ParticipantForcesDecision(ProtocolKind kind, Outcome outcome);

/// The subset of `participants` whose protocol acknowledges `outcome`.
std::set<SiteId> AckersAmong(const std::vector<ParticipantInfo>& participants,
                             Outcome outcome);

/// All participant sites.
std::set<SiteId> SitesOf(const std::vector<ParticipantInfo>& participants);

// --- Compile-time presumption model ---------------------------------------
//
// The constexpr mirror of the table above, used by the presumption-
// consistency lint (and static_asserts in protocol_traits.cc) to cross-
// check the PCP table against the traits: a participant relying on
// presumption P paired with a coordinator that presumes Q != P is exactly
// Theorem 1's root cause, expressed as a table property instead of a
// schedule.

/// Compile-time traits for a base protocol. Non-base kinds yield PrN's
/// all-yes row (they never appear as participant protocols).
constexpr ParticipantTraits BaseTraits(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPrA:
      return ParticipantTraits{true, false, true, false};
    case ProtocolKind::kPrC:
      return ParticipantTraits{false, true, false, true};
    case ProtocolKind::kPrN:
    default:
      return ParticipantTraits{true, true, true, true};
  }
}

/// The outcome a base *participant* protocol leaves to presumption: the
/// decision it neither acknowledges nor force-logs, trusting the
/// coordinator's answer to a later inquiry. PrN presumes nothing (it acks
/// and forces both outcomes).
constexpr std::optional<Outcome> ParticipantRelianceOutcome(
    ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPrA:
      return Outcome::kAbort;
    case ProtocolKind::kPrC:
      return Outcome::kCommit;
    default:
      return std::nullopt;
  }
}

/// The fixed outcome a *coordinator* protocol answers for inquiries about
/// transactions it has forgotten. U2PC answers with its native protocol's
/// presumption regardless of who asks (the §2 flaw). PrAny adopts the
/// inquirer's own presumption and C2PC never forgets before every ack, so
/// neither has a fixed presumption.
constexpr std::optional<Outcome> CoordinatorFixedPresumption(
    ProtocolKind kind, ProtocolKind u2pc_native = ProtocolKind::kPrN) {
  switch (kind) {
    case ProtocolKind::kPrN:  // "active at failure time" => presumed abort.
    case ProtocolKind::kPrA:
      return Outcome::kAbort;
    case ProtocolKind::kPrC:
      return Outcome::kCommit;
    case ProtocolKind::kU2PC:
      return u2pc_native == ProtocolKind::kU2PC
                 ? std::nullopt
                 : CoordinatorFixedPresumption(u2pc_native);
    default:
      return std::nullopt;  // PrAny, C2PC.
  }
}

}  // namespace prany

#endif  // PRANY_PROTOCOL_PROTOCOL_TRAITS_H_
