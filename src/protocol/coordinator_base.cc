#include "protocol/coordinator_base.h"

#include "common/status.h"
#include "common/string_util.h"

namespace prany {

namespace {

TraceEvent CoordEvent(TraceEventKind kind, TxnId txn) {
  TraceEvent e;
  e.kind = kind;
  e.txn = txn;
  return e;
}

}  // namespace

CoordinatorBase::CoordinatorBase(EngineContext ctx, ProtocolKind kind)
    : ctx_(std::move(ctx)), kind_(kind) {
  // Resolve hot-path metric handles at construction, not lazily at first
  // use: the lazy branches sat on the measured begin/forget paths, and a
  // fresh site's first transactions are exactly what a cold-start latency
  // cell measures. Per-mode counters stay lazy — they are keyed by the
  // modes actually exercised, and pre-creating all of them would invent
  // zero rows in every metrics export.
  if (ctx_.metrics != nullptr) {
    m_begin_ = ctx_.metrics->CounterHandle("coord.begin");
    m_forget_ = ctx_.metrics->CounterHandle("coord.forget");
    m_latency_ = ctx_.metrics->DistributionHandle("coord.latency_us");
    m_commit_latency_ =
        ctx_.metrics->DistributionHandle("coord.commit_latency_us");
    m_abort_latency_ =
        ctx_.metrics->DistributionHandle("coord.abort_latency_us");
  }
}

CoordinatorBase::~CoordinatorBase() = default;

ProtocolKind CoordinatorBase::SelectMode(const Transaction& txn) {
  (void)txn;
  return kind_;
}

void CoordinatorBase::BeginCommit(const Transaction& txn) {
  Status valid = txn.Validate();
  PRANY_CHECK_MSG(valid.ok(), valid.ToString());
  PRANY_CHECK_MSG(txn.coordinator == ctx_.self,
                  "transaction coordinated elsewhere");

  ProtocolKind mode = SelectMode(txn);
  CoordTxnState st;
  st.txn = txn.id;
  st.mode = mode;
  st.participants = txn.participants;
  st.phase = CoordPhase::kVoting;
  st.begin_time = ctx_.sim->Now();
  CoordTxnState& entry = table_.Insert(std::move(st));

  ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                .type = SigEventType::kTxnSubmitted,
                                .site = ctx_.self,
                                .txn = txn.id});
  if (ctx_.metrics != nullptr) {
    m_begin_->fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Counter*& mode_counter =
        m_mode_[static_cast<size_t>(mode)];
    if (mode_counter == nullptr) {
      mode_counter =
          ctx_.metrics->CounterHandle("coord.mode." + ToString(mode));
    }
    mode_counter->fetch_add(1, std::memory_order_relaxed);
  }
  {
    TraceEvent e = CoordEvent(TraceEventKind::kCoordBegin, txn.id);
    e.protocol = mode;
    e.value = txn.participants.size();
    ctx_.Event(std::move(e));
  }
  DidBegin(entry);

  SimDuration send_delay = 0;
  if (WritesInitiation(mode)) {
    if (ctx_.pipeline_forces) {
      // Pipelined initiation force: queue the record and return; the WAL
      // sync thread releases the PREPAREs the moment the fdatasync
      // covering the record is acknowledged (force-before-send holds
      // physically — no participant can become prepared for a
      // transaction whose initiation the coordinator could fail to
      // recover). The completion task then re-enters the engine to arm
      // the vote timer.
      TxnId id = txn.id;
      std::vector<ParticipantInfo> participants = txn.participants;
      entry.prepares_sent = false;
      ctx_.log->AppendPipelined(
          LogRecord::Initiation(id, mode, participants),
          [this, id, participants]() {
            for (const ParticipantInfo& p : participants) {
              ctx_.Send(Message::Prepare(id, ctx_.self, p.site));
            }
            ctx_.PostTask([this, id]() { FinishPipelinedBegin(id); });
          });
      return;
    }
    ctx_.log->Append(
        LogRecord::Initiation(txn.id, mode, txn.participants),
        /*force=*/true);
    if (ctx_.MaybeCrash(CrashPoint::kCoordAfterInitiationLogged, txn.id)) {
      return;
    }
    send_delay = ctx_.timing.forced_write_latency;
  }

  for (const ParticipantInfo& p : txn.participants) {
    ctx_.Send(Message::Prepare(txn.id, ctx_.self, p.site), send_delay);
  }
  if (ctx_.MaybeCrash(CrashPoint::kCoordAfterPreparesSent, txn.id)) return;

  StartVoteTimer(txn.id);
}

void CoordinatorBase::FinishPipelinedBegin(TxnId txn) {
  ctx_.log->ReconcileDurability();
  if (ctx_.MaybeCrash(CrashPoint::kCoordAfterInitiationLogged, txn)) return;
  if (ctx_.MaybeCrash(CrashPoint::kCoordAfterPreparesSent, txn)) return;
  CoordTxnState* st = table_.Find(txn);
  if (st == nullptr || st->phase != CoordPhase::kVoting) {
    // The site crashed and wiped the entry (the crash teardown re-drives
    // everything from the stable prefix) — no timer to arm.
    return;
  }
  // Decisions were held back while the PREPAREs were in flight (see
  // CoordTxnState::prepares_sent); votes that arrived in that window are
  // in the tally. Re-evaluate the decision condition now, under the
  // engine lock, so any decision message is sent strictly after every
  // PREPARE.
  st->prepares_sent = true;
  if (!st->no_votes.empty()) {
    Decide(txn, Outcome::kAbort);
    return;
  }
  if (st->yes_votes.size() + st->read_only.size() ==
      st->participants.size()) {
    Decide(txn, Outcome::kCommit);
    return;
  }
  StartVoteTimer(txn);
}

void CoordinatorBase::OnVote(const Message& msg) {
  CoordTxnState* st = table_.Find(msg.txn);
  if (st == nullptr) {
    ctx_.Count("coord.vote_for_unknown_txn");
    return;
  }
  if (st->phase != CoordPhase::kVoting) {
    ctx_.Count("coord.vote_after_decision");
    return;
  }
  if (!st->HasParticipant(msg.from)) {
    ctx_.Count("coord.vote_from_non_participant");
    return;
  }
  if (msg.vote == Vote::kNo) {
    st->no_votes.insert(msg.from);
    st->yes_votes.erase(msg.from);
    Decide(msg.txn, Outcome::kAbort);
    return;
  }
  if (msg.vote == Vote::kReadOnly) {
    st->read_only.insert(msg.from);
    ctx_.Count("coord.read_only_vote");
  } else {
    st->yes_votes.insert(msg.from);
  }
  if (st->yes_votes.size() + st->read_only.size() ==
      st->participants.size()) {
    Decide(msg.txn, Outcome::kCommit);
  }
}

void CoordinatorBase::Decide(TxnId txn, Outcome outcome) {
  CoordTxnState* st = table_.Find(txn);
  if (st == nullptr || st->phase != CoordPhase::kVoting) return;
  // PREPAREs still leaving the site (pipelined initiation): deciding now
  // could put a DECISION on a link ahead of its PREPARE. The votes are
  // already tallied; FinishPipelinedBegin re-evaluates.
  if (!st->prepares_sent) return;

  st->phase = CoordPhase::kDeciding;
  st->decision = outcome;
  vote_timers_.erase(txn);

  // Commit goes to everyone that stayed in the protocol; abort
  // additionally skips no-voters (they aborted unilaterally). Read-only
  // voters left at voting time (§5's optimization) and get nothing. A
  // silent participant may be prepared with its vote lost, so it stays a
  // recipient (a never-prepared one harmlessly acknowledges, footnote 5).
  std::set<SiteId> recipients = SitesOf(st->participants);
  for (SiteId ro : st->read_only) recipients.erase(ro);
  if (outcome == Outcome::kAbort) {
    for (SiteId no_voter : st->no_votes) recipients.erase(no_voter);
  }

  DecisionLogPolicy policy = DecisionPolicy(st->mode, outcome);
  if (recipients.empty()) {
    // Nobody is prepared (all read-only and/or unilaterally aborted):
    // there is no decision phase to recover, so nothing is logged — the
    // fully-read-only fast path of the R* optimization.
    policy = DecisionLogPolicy::kNone;
  }
  if (policy == DecisionLogPolicy::kForced && ctx_.pipeline_forces) {
    // Pipelined decision force: queue the record and return. The WAL
    // sync thread records the Decide on the history (waking the awaiting
    // client — the commit latency path ends at the fdatasync, not at a
    // worker wakeup) and releases the decision messages, still strictly
    // after durability; the completion task re-enters the engine for the
    // ack bookkeeping. The ack sets are computed *now*, before any
    // decision leaves, because an ack can race back and be dispatched
    // ahead of the completion task.
    std::set<SiteId> ackers = ExpectedAckers(*st, outcome);
    st->pending_acks.clear();
    for (SiteId s : ackers) {
      if (recipients.count(s) > 0) st->pending_acks.insert(s);
    }
    st->acks_expected = !st->pending_acks.empty();

    LogRecord rec = DecisionNamesParticipants(st->mode)
                        ? LogRecord::DecisionWithParticipants(
                              txn, outcome, st->participants)
                        : LogRecord::Decision(txn, outcome);
    ProtocolKind mode = st->mode;
    ctx_.log->AppendPipelined(
        rec, [this, txn, outcome, mode, recipients]() {
          ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                        .type = SigEventType::kCoordDecide,
                                        .site = ctx_.self,
                                        .txn = txn,
                                        .outcome = outcome});
          {
            TraceEvent e = CoordEvent(TraceEventKind::kCoordDecide, txn);
            e.protocol = mode;
            e.outcome = outcome;
            ctx_.Event(std::move(e));
          }
          for (SiteId site : recipients) {
            ctx_.Send(Message::Decision(txn, ctx_.self, site, outcome));
          }
          ctx_.PostTask([this, txn, outcome]() {
            FinishPipelinedDecide(txn, outcome);
          });
        });
    return;
  }
  if (policy == DecisionLogPolicy::kForced) {
    LogRecord rec = DecisionNamesParticipants(st->mode)
                        ? LogRecord::DecisionWithParticipants(
                              txn, outcome, st->participants)
                        : LogRecord::Decision(txn, outcome);
    ctx_.log->Append(rec, /*force=*/true);
  }
  // Unforced decisions are exactly the ones the presumption reconstructs,
  // so they count as durable immediately; a forced decision is durable
  // only now that the append above returned.
  st->decision_durable = true;
  ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                .type = SigEventType::kCoordDecide,
                                .site = ctx_.self,
                                .txn = txn,
                                .outcome = outcome});
  ctx_.Count(outcome == Outcome::kCommit ? "coord.decide_commit"
                                         : "coord.decide_abort");
  {
    TraceEvent e = CoordEvent(TraceEventKind::kCoordDecide, txn);
    e.protocol = st->mode;
    e.outcome = outcome;
    ctx_.Event(std::move(e));
  }
  if (ctx_.MaybeCrash(CrashPoint::kCoordAfterDecisionMade, txn)) return;

  std::set<SiteId> ackers = ExpectedAckers(*st, outcome);
  st->pending_acks.clear();
  for (SiteId s : ackers) {
    if (recipients.count(s) > 0) st->pending_acks.insert(s);
  }
  st->acks_expected = !st->pending_acks.empty();

  SimDuration delay = policy == DecisionLogPolicy::kForced
                          ? ctx_.timing.forced_write_latency
                          : 0;
  SendDecisionMessages(*st, recipients, delay);
  if (ctx_.MaybeCrash(CrashPoint::kCoordAfterDecisionSent, txn)) return;

  if (!st->pending_acks.empty()) {
    StartResendTimer(txn);
  }
  MaybeComplete(txn);
}

void CoordinatorBase::FinishPipelinedDecide(TxnId txn, Outcome outcome) {
  // Promote the mirror past the decision record first: if the entry was
  // already forgotten below, its Truncate ran while the record still sat
  // in the volatile buffer and deliberately left the release mark behind.
  ctx_.log->ReconcileDurability();
  ctx_.Count(outcome == Outcome::kCommit ? "coord.decide_commit"
                                         : "coord.decide_abort");
  if (ctx_.MaybeCrash(CrashPoint::kCoordAfterDecisionMade, txn)) return;
  if (ctx_.MaybeCrash(CrashPoint::kCoordAfterDecisionSent, txn)) return;
  CoordTxnState* st = table_.Find(txn);
  if (st == nullptr || st->phase != CoordPhase::kDeciding ||
      !st->decision.has_value() || *st->decision != outcome) {
    // Every expected ack raced the completion task and MaybeComplete
    // already forgot the transaction — collect its now-promoted records.
    ctx_.log->Truncate();
    return;
  }
  st->decision_durable = true;
  if (!st->pending_acks.empty()) {
    StartResendTimer(txn);
  }
  MaybeComplete(txn);
}

void CoordinatorBase::SendDecisionMessages(const CoordTxnState& st,
                                           const std::set<SiteId>& recipients,
                                           SimDuration delay) {
  for (SiteId site : recipients) {
    ctx_.Send(Message::Decision(st.txn, ctx_.self, site, *st.decision),
              delay);
  }
}

void CoordinatorBase::OnAck(const Message& msg) {
  CoordTxnState* st = table_.Find(msg.txn);
  if (st == nullptr) {
    // Acknowledgment for a forgotten transaction (e.g. a duplicate, or a
    // footnote-5 ack racing with completion). Nothing to do.
    ctx_.Count("coord.ack_for_unknown_txn");
    return;
  }
  if (st->phase != CoordPhase::kDeciding || !st->decision.has_value() ||
      msg.outcome != *st->decision) {
    ctx_.Count("coord.stale_ack");
    return;
  }
  if (st->pending_acks.erase(msg.from) == 0) {
    // An acknowledgment this coordinator's protocol does not expect — the
    // "violation" a U2PC coordinator ignores (§2).
    ctx_.Count("coord.ignored_unexpected_ack");
    return;
  }
  MaybeComplete(msg.txn);
}

void CoordinatorBase::MaybeComplete(TxnId txn) {
  CoordTxnState* st = table_.Find(txn);
  if (st == nullptr || st->phase != CoordPhase::kDeciding ||
      !st->pending_acks.empty()) {
    return;
  }
  if (ctx_.MaybeCrash(CrashPoint::kCoordBeforeForget, txn)) return;

  // An END record is needed exactly when acknowledgments were awaited:
  // it closes the open decision (PrN/PrA commit, C2PC) or initiation
  // (PrC/PrAny abort, PrAny commit) state in the log.
  if (st->acks_expected) {
    ctx_.log->Append(LogRecord::End(txn), /*force=*/false);
  }

  WillForget(*st);
  if (ctx_.metrics != nullptr) {
    double latency =
        static_cast<double>(ctx_.sim->Now() - st->begin_time);
    m_latency_->Observe(latency);
    (*st->decision == Outcome::kCommit ? m_commit_latency_
                                       : m_abort_latency_)
        ->Observe(latency);
    m_forget_->fetch_add(1, std::memory_order_relaxed);
  }
  {
    TraceEvent e = CoordEvent(TraceEventKind::kCoordForget, txn);
    e.outcome = st->decision;
    ctx_.Event(std::move(e));
  }
  ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                .type = SigEventType::kCoordForget,
                                .site = ctx_.self,
                                .txn = txn});
  resend_timers_.erase(txn);
  table_.Erase(txn);
  ctx_.log->ReleaseTransaction(txn, LogSide::kCoordinator);
  ctx_.log->Truncate();
}

void CoordinatorBase::OnInquiry(const Message& msg) {
  ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                .type = SigEventType::kCoordInquiryRecv,
                                .site = ctx_.self,
                                .txn = msg.txn,
                                .peer = msg.from});
  ctx_.Count("coord.inquiry");
  {
    TraceEvent e = CoordEvent(TraceEventKind::kCoordInquiryRecv, msg.txn);
    e.peer = msg.from;
    ctx_.Event(std::move(e));
  }

  CoordTxnState* st = table_.Find(msg.txn);
  Outcome outcome;
  bool by_presumption;
  if (st != nullptr && st->decision.has_value() && st->decision_durable) {
    outcome = *st->decision;
    by_presumption = false;
  } else if (st != nullptr) {
    // Still collecting votes, or the decision's forced write is still in
    // flight — a not-yet-stable decision must not be exposed (a crash
    // could tear the record away and recovery would re-decide by
    // presumption, contradicting the reply). The inquirer will retry.
    ctx_.Count("coord.inquiry_during_voting");
    return;
  } else {
    std::tie(outcome, by_presumption) =
        AnswerUnknownInquiry(msg.txn, msg.from);
    if (by_presumption) ctx_.Count("coord.answered_by_presumption");
  }

  ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                .type = SigEventType::kCoordRespond,
                                .site = ctx_.self,
                                .txn = msg.txn,
                                .outcome = outcome,
                                .peer = msg.from,
                                .by_presumption = by_presumption});
  {
    TraceEvent e = CoordEvent(TraceEventKind::kCoordReply, msg.txn);
    e.peer = msg.from;
    e.outcome = outcome;
    e.by_presumption = by_presumption;
    ctx_.Event(std::move(e));
  }
  ctx_.Send(Message::InquiryReply(msg.txn, ctx_.self, msg.from, outcome,
                                  by_presumption));
}

void CoordinatorBase::StartVoteTimer(TxnId txn) {
  auto timer = std::make_unique<OneShotTimer>(ctx_.sim);
  timer->Arm(
      ctx_.timing.vote_timeout,
      [this, txn]() {
        CoordTxnState* st = table_.Find(txn);
        if (st == nullptr || st->phase != CoordPhase::kVoting) return;
        ctx_.Count("coord.vote_timeout");
        ctx_.Event(CoordEvent(TraceEventKind::kCoordVoteTimeout, txn));
        Decide(txn, Outcome::kAbort);
      },
      StrFormat("coord.vote_timeout txn=%llu",
                static_cast<unsigned long long>(txn)));
  vote_timers_[txn] = std::move(timer);
}

void CoordinatorBase::StartResendTimer(TxnId txn) {
  ResendState state;
  state.timer = std::make_unique<PeriodicTimer>(ctx_.sim);
  PeriodicTimer* timer = state.timer.get();
  timer->Start(
      ctx_.timing.decision_resend_interval,
      [this, txn, timer]() {
        CoordTxnState* st = table_.Find(txn);
        if (st == nullptr || st->phase != CoordPhase::kDeciding ||
            st->pending_acks.empty()) {
          timer->Stop();
          return;
        }
        auto it = resend_timers_.find(txn);
        PRANY_CHECK(it != resend_timers_.end());
        uint32_t cap = ctx_.timing.max_decision_resends;
        if (cap != 0 && it->second.resends >= cap) {
          // Give up pushing; in-doubt participants still converge by
          // pulling with inquiries. The entry stays in the table — for
          // C2PC, forever (Theorem 2).
          timer->Stop();
          return;
        }
        ++it->second.resends;
        ctx_.Count("coord.decision_resend");
        {
          TraceEvent e = CoordEvent(TraceEventKind::kCoordResend, txn);
          e.value = st->pending_acks.size();
          ctx_.Event(std::move(e));
        }
        SendDecisionMessages(*st, st->pending_acks, /*delay=*/0);
      },
      StrFormat("coord.resend txn=%llu",
                static_cast<unsigned long long>(txn)));
  resend_timers_[txn] = std::move(state);
}

void CoordinatorBase::ReinitiateDecision(
    TxnId txn, ProtocolKind mode, std::vector<ParticipantInfo> participants,
    Outcome outcome, const std::set<SiteId>& recipients) {
  CoordTxnState st;
  st.txn = txn;
  st.mode = mode;
  st.participants = std::move(participants);
  st.phase = CoordPhase::kDeciding;
  st.decision = outcome;
  // Either read back from the stable log or chosen by the presumption a
  // repeated recovery would reapply — stable by construction.
  st.decision_durable = true;
  st.begin_time = ctx_.sim->Now();
  CoordTxnState& entry = table_.Insert(std::move(st));
  DidBegin(entry);

  ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                .type = SigEventType::kCoordDecide,
                                .site = ctx_.self,
                                .txn = txn,
                                .outcome = outcome});
  ctx_.Count("coord.recovery_reinitiate");
  {
    TraceEvent e = CoordEvent(TraceEventKind::kCoordRecover, txn);
    e.protocol = mode;
    e.outcome = outcome;
    e.detail = "reinitiate decision";
    ctx_.Event(std::move(e));
  }

  std::set<SiteId> ackers = ExpectedAckers(entry, outcome);
  entry.pending_acks.clear();
  for (SiteId s : ackers) {
    if (recipients.count(s) > 0) entry.pending_acks.insert(s);
  }
  entry.acks_expected = !entry.pending_acks.empty();
  SendDecisionMessages(entry, recipients, /*delay=*/0);
  if (!entry.pending_acks.empty()) {
    StartResendTimer(txn);
  }
  MaybeComplete(txn);
}

void CoordinatorBase::Crash() {
  vote_timers_.clear();
  resend_timers_.clear();
  table_.Clear();
}

void CoordinatorBase::Recover() {
  auto summaries = LogAnalyzer::Analyze(ctx_.log->StableRecords());
  for (const auto& [txn, summary] : summaries) {
    // A dual-role site's log interleaves both roles' records for the same
    // transaction, so participant-side evidence (has_prepared, a redo
    // decision record) must not suppress coordinator recovery — classify
    // by the records' role instead of skipping on has_prepared.
    if (!summary.HasCoordinatorRecords()) {
      continue;  // Participant-side (or stray) records only.
    }
    if (summary.has_end) {
      // Completed before the crash; only the garbage collection was lost.
      ctx_.log->ReleaseTransaction(txn, LogSide::kCoordinator);
      continue;
    }
    if (table_.Find(txn) != nullptr) continue;  // Already re-initiated.
    if (summary.coord_decision.has_value() && !ctx_.history->HasDecide(txn)) {
      // The decision record is stable, but its Decide event may be
      // missing from the recorded history: a crash during the decision
      // force's durability wait unwinds the handler even when the record
      // made it into the surviving batch. H follows the stable log — a
      // decision exists once durably written — so re-record it unless a
      // Decide is already present (the common case on restart, since the
      // physical log replays completed transactions too).
      ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                    .type = SigEventType::kCoordDecide,
                                    .site = ctx_.self,
                                    .txn = txn,
                                    .outcome = *summary.coord_decision});
    }
    RecoverTxn(summary);
  }
  ctx_.log->Truncate();
}

}  // namespace prany
