// Presumed-nothing (basic 2PC) coordinator — Figure 2 of the paper.
//
// Treats commits and aborts uniformly: the decision record is always
// force-written (naming the participants — there is no initiation record),
// every participant must acknowledge, and an END record closes the
// transaction. After a coordinator failure, transactions with no log
// records are answered "abort" — PrN's *hidden* presumption (appendix).

#ifndef PRANY_PROTOCOL_COORDINATOR_PRN_H_
#define PRANY_PROTOCOL_COORDINATOR_PRN_H_

#include <utility>

#include "protocol/coordinator_base.h"

namespace prany {

class CoordinatorPrN : public CoordinatorBase {
 public:
  explicit CoordinatorPrN(EngineContext ctx)
      : CoordinatorBase(std::move(ctx), ProtocolKind::kPrN) {}

 protected:
  bool WritesInitiation(ProtocolKind mode) const override;
  DecisionLogPolicy DecisionPolicy(ProtocolKind mode,
                                   Outcome outcome) const override;
  bool DecisionNamesParticipants(ProtocolKind mode) const override;
  std::set<SiteId> ExpectedAckers(const CoordTxnState& st,
                                  Outcome outcome) const override;
  std::pair<Outcome, bool> AnswerUnknownInquiry(TxnId txn,
                                                SiteId inquirer) override;
  void RecoverTxn(const TxnLogSummary& summary) override;
};

}  // namespace prany

#endif  // PRANY_PROTOCOL_COORDINATOR_PRN_H_
