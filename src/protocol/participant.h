// The participant-side protocol engine.
//
// One engine per site handles all transactions in which the site
// participates. PrN, PrA and PrC participants share this engine — their
// behavioural differences (which decisions they acknowledge, which
// decision records they force) are entirely captured by ParticipantTraits,
// exactly as Figures 2-4 of the paper differ only in those columns.
//
// Lifecycle per transaction:
//   PREPARE arrives -> vote no  -> enforce local abort, reply VOTE(no),
//                                  forget immediately
//                   -> vote yes -> force-write PREPARED, reply VOTE(yes),
//                                  start the in-doubt inquiry timer
//   DECISION / INQUIRY_REPLY arrives while prepared
//                   -> write decision record (forced per traits), enforce,
//                      acknowledge per traits, forget
//   DECISION for an unknown transaction
//                   -> acknowledge per traits (footnote 5 of the paper: a
//                      participant with no memory has already enforced and
//                      forgotten the decision)
//   crash           -> volatile state lost; recovery re-builds from the
//                      stable log: in-doubt transactions resume inquiring,
//                      decided ones re-enforce (redo) and are forgotten.

#ifndef PRANY_PROTOCOL_PARTICIPANT_H_
#define PRANY_PROTOCOL_PARTICIPANT_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/types.h"
#include "protocol/engine_context.h"
#include "protocol/protocol_traits.h"
#include "sim/timer.h"

namespace prany {

/// Participant engine for one site.
class ParticipantEngine {
 public:
  /// `protocol` must be a base protocol (PrN, PrA or PrC).
  ParticipantEngine(EngineContext ctx, ProtocolKind protocol);
  ~ParticipantEngine();

  ParticipantEngine(const ParticipantEngine&) = delete;
  ParticipantEngine& operator=(const ParticipantEngine&) = delete;

  ProtocolKind protocol() const { return protocol_; }

  /// Registers how this site will vote for `txn` when asked to prepare
  /// (defaults to yes). Models the outcome of local execution.
  void SetPlannedVote(TxnId txn, Vote vote);

  /// Message entry points (called by the Site's dispatcher).
  void OnPrepare(const Message& msg);
  void OnDecision(const Message& msg);        // kDecision
  void OnInquiryReply(const Message& msg);    // kInquiryReply

  /// Switches this engine to pipelined forced writes: the PREPARED force
  /// stops blocking the handler and the yes-vote rides the WAL sync
  /// thread's durability callback instead (see
  /// CoordinatorBase::EnablePipelinedForces). Installed by the live
  /// runtime after construction, before traffic.
  void EnablePipelinedForces(
      std::function<void(std::function<void()>)> post_task) {
    ctx_.pipeline_forces = true;
    ctx_.post_task = std::move(post_task);
  }

  /// Site crash: volatile state is wiped (the stable log is crashed by the
  /// Site, which owns it).
  void Crash();

  /// Site recovery: rebuild from the stable log (already crash-truncated).
  void Recover();

  /// In-flight (prepared, in-doubt) transactions.
  size_t ActiveTxns() const { return prepared_.size(); }
  bool IsInDoubt(TxnId txn) const { return prepared_.count(txn) > 0; }

  /// Ids of all in-doubt transactions, ascending. Used by the model
  /// checker's state fingerprint.
  std::vector<TxnId> InDoubtTxns() const {
    std::vector<TxnId> out;
    out.reserve(prepared_.size());
    for (const auto& [txn, entry] : prepared_) out.push_back(txn);
    return out;
  }

 private:
  struct PreparedTxn {
    SiteId coordinator = kInvalidSite;
    std::unique_ptr<PeriodicTimer> inquiry_timer;
  };

  /// Shared tail of OnDecision/OnInquiryReply.
  void HandleOutcome(TxnId txn, SiteId coordinator, Outcome outcome);

  void StartInquiryTimer(TxnId txn, SiteId coordinator);
  void SendAckIfExpected(TxnId txn, SiteId coordinator, Outcome outcome);
  void EnforceAndForget(TxnId txn, Outcome outcome);

  /// Engine-side completion of a pipelined PREPARED force (posted by the
  /// durability callback): arms the in-doubt inquiry timer unless the
  /// decision already arrived and the entry is gone.
  void FinishPipelinedPrepare(TxnId txn, SiteId coordinator);

  EngineContext ctx_;
  ProtocolKind protocol_;
  std::map<TxnId, Vote> planned_votes_;
  std::map<TxnId, PreparedTxn> prepared_;
  /// Cached registry handle for the per-transaction prepared count (the
  /// only counter on the participant's commit fast path).
  MetricsRegistry::Counter* m_prepared_ = nullptr;
};

}  // namespace prany

#endif  // PRANY_PROTOCOL_PARTICIPANT_H_
