#include "protocol/coordinator_c2pc.h"

#include "wal/log_analyzer.h"

namespace prany {

namespace {
EngineContext WithResendCap(EngineContext ctx, uint32_t cap) {
  if (ctx.timing.max_decision_resends == 0) {
    ctx.timing.max_decision_resends = cap;
  }
  return ctx;
}
}  // namespace

CoordinatorC2PC::CoordinatorC2PC(EngineContext ctx,
                                 uint32_t max_decision_resends)
    : CoordinatorBase(WithResendCap(std::move(ctx), max_decision_resends),
                      ProtocolKind::kC2PC) {}

bool CoordinatorC2PC::WritesInitiation(ProtocolKind mode) const {
  (void)mode;
  return false;
}

DecisionLogPolicy CoordinatorC2PC::DecisionPolicy(ProtocolKind mode,
                                                  Outcome outcome) const {
  (void)mode;
  (void)outcome;
  // Every decision is forced so inquiries never need a presumption.
  return DecisionLogPolicy::kForced;
}

bool CoordinatorC2PC::DecisionNamesParticipants(ProtocolKind mode) const {
  (void)mode;
  return true;
}

std::set<SiteId> CoordinatorC2PC::ExpectedAckers(const CoordTxnState& st,
                                                 Outcome outcome) const {
  (void)outcome;
  // The defining rule: wait for everyone — even participants whose
  // protocol will never acknowledge this outcome (Theorem 2).
  return SitesOf(st.participants);
}

std::pair<Outcome, bool> CoordinatorC2PC::AnswerUnknownInquiry(
    TxnId txn, SiteId inquirer) {
  (void)inquirer;
  // Never presume: consult the stable log. Since every decision is
  // force-logged, absence of a decision record proves no decision was
  // made, and abort is a sound answer.
  auto summaries = LogAnalyzer::Analyze(ctx().log->StableRecords());
  auto it = summaries.find(txn);
  if (it != summaries.end() && it->second.decision.has_value()) {
    return {*it->second.decision, /*by_presumption=*/false};
  }
  return {Outcome::kAbort, /*by_presumption=*/false};
}

void CoordinatorC2PC::RecoverTxn(const TxnLogSummary& summary) {
  if (!summary.coord_decision.has_value()) return;
  ReinitiateDecision(summary.txn, ProtocolKind::kC2PC, summary.participants,
                     *summary.coord_decision,
                     SitesOf(summary.participants));
}

}  // namespace prany
