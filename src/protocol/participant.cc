#include "protocol/participant.h"

#include "common/status.h"
#include "common/string_util.h"
#include "net/message.h"
#include "wal/log_analyzer.h"

namespace prany {

namespace {

TraceEvent PartEvent(TraceEventKind kind, TxnId txn) {
  TraceEvent e;
  e.kind = kind;
  e.txn = txn;
  return e;
}

}  // namespace

ParticipantEngine::ParticipantEngine(EngineContext ctx, ProtocolKind protocol)
    : ctx_(std::move(ctx)), protocol_(protocol) {
  PRANY_CHECK_MSG(IsBaseProtocol(protocol),
                  "participants speak PrN, PrA or PrC");
  // Resolved up-front so the first prepare of a fresh site pays no
  // string-keyed registry lookup on its measured path.
  if (ctx_.metrics != nullptr) {
    m_prepared_ = ctx_.metrics->CounterHandle("part.prepared");
  }
}

ParticipantEngine::~ParticipantEngine() = default;

void ParticipantEngine::SetPlannedVote(TxnId txn, Vote vote) {
  planned_votes_[txn] = vote;
}

void ParticipantEngine::OnPrepare(const Message& msg) {
  TxnId txn = msg.txn;
  if (ctx_.MaybeCrash(CrashPoint::kPartOnPrepareReceived, txn)) return;

  auto it = prepared_.find(txn);
  if (it != prepared_.end()) {
    if (it->second.inquiry_timer == nullptr) {
      // A pipelined PREPARED force for this transaction is still in
      // flight (the entry exists but its timer is only armed by the
      // completion task). The original yes-vote has not left the site
      // yet — resending here would leak a vote for a not-yet-durable
      // record. Drop the duplicate; the in-flight vote answers it.
      ctx_.Count("part.duplicate_prepare_inflight");
      return;
    }
    // Duplicate PREPARE (network duplication): we are prepared, so the
    // original vote was yes — resend it.
    ctx_.Send(Message::MakeVote(txn, ctx_.self, msg.from, Vote::kYes));
    return;
  }

  Vote vote = Vote::kYes;
  if (auto planned = planned_votes_.find(txn);
      planned != planned_votes_.end()) {
    vote = planned->second;
  }

  if (vote == Vote::kReadOnly) {
    // Read-only optimization (§5 / R*): nothing was written here, so the
    // outcome is irrelevant to this site — vote read-only, log nothing,
    // release everything and leave the protocol immediately. The
    // coordinator will not send this site the decision.
    ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                  .type = SigEventType::kPartForget,
                                  .site = ctx_.self,
                                  .txn = txn});
    ctx_.Count("part.vote_read_only");
    {
      TraceEvent e = PartEvent(TraceEventKind::kPartVote, txn);
      e.peer = msg.from;
      e.detail = ToString(Vote::kReadOnly);
      ctx_.Event(std::move(e));
    }
    ctx_.Send(Message::MakeVote(txn, ctx_.self, msg.from, Vote::kReadOnly));
    return;
  }

  if (vote == Vote::kNo) {
    // Local failure: abort unilaterally, tell the coordinator, and forget.
    // Nothing was logged, so there is nothing to recover (§ appendix:
    // a participant that never voted yes may abort on its own).
    ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                  .type = SigEventType::kPartEnforce,
                                  .site = ctx_.self,
                                  .txn = txn,
                                  .outcome = Outcome::kAbort});
    ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                  .type = SigEventType::kPartForget,
                                  .site = ctx_.self,
                                  .txn = txn});
    ctx_.Count("part.vote_no");
    {
      TraceEvent e = PartEvent(TraceEventKind::kPartVote, txn);
      e.peer = msg.from;
      e.detail = ToString(Vote::kNo);
      ctx_.Event(std::move(e));
    }
    ctx_.Send(Message::MakeVote(txn, ctx_.self, msg.from, Vote::kNo));
    return;
  }

  // Vote yes: force-write PREPARED before the vote leaves the site
  // (Figures 1-4: every variant forces the prepared record).
  if (ctx_.pipeline_forces) {
    // Pipelined: queue the force and return; the WAL sync thread
    // releases the vote right after the covering fdatasync, preserving
    // force-before-send without a worker wakeup on the vote path. The
    // prepared entry is inserted *now* — a decision can arrive the
    // moment the vote is out, racing the completion task — with its
    // inquiry timer unarmed; the completion task arms it back under the
    // engine lock (see the duplicate-PREPARE guard above for the
    // timer-as-in-flight-marker convention).
    SiteId coordinator = msg.from;
    PreparedTxn entry;
    entry.coordinator = coordinator;
    prepared_[txn] = std::move(entry);
    ctx_.log->AppendPipelined(
        LogRecord::Prepared(txn, coordinator),
        [this, txn, coordinator]() {
          ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                        .type = SigEventType::kPartPrepared,
                                        .site = ctx_.self,
                                        .txn = txn});
          {
            TraceEvent e = PartEvent(TraceEventKind::kPartPrepared, txn);
            e.peer = coordinator;
            ctx_.Event(std::move(e));
          }
          {
            TraceEvent e = PartEvent(TraceEventKind::kPartVote, txn);
            e.peer = coordinator;
            e.detail = ToString(Vote::kYes);
            ctx_.Event(std::move(e));
          }
          ctx_.Send(
              Message::MakeVote(txn, ctx_.self, coordinator, Vote::kYes));
          ctx_.PostTask([this, txn, coordinator]() {
            FinishPipelinedPrepare(txn, coordinator);
          });
        });
    return;
  }
  ctx_.log->Append(LogRecord::Prepared(txn, msg.from), /*force=*/true);
  ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                .type = SigEventType::kPartPrepared,
                                .site = ctx_.self,
                                .txn = txn});
  {
    TraceEvent e = PartEvent(TraceEventKind::kPartPrepared, txn);
    e.peer = msg.from;
    ctx_.Event(std::move(e));
  }
  if (ctx_.MaybeCrash(CrashPoint::kPartAfterPreparedLogged, txn)) return;

  StartInquiryTimer(txn, msg.from);
  if (ctx_.metrics != nullptr) {
    m_prepared_->fetch_add(1, std::memory_order_relaxed);
  }
  {
    TraceEvent e = PartEvent(TraceEventKind::kPartVote, txn);
    e.peer = msg.from;
    e.detail = ToString(Vote::kYes);
    ctx_.Event(std::move(e));
  }
  ctx_.Send(Message::MakeVote(txn, ctx_.self, msg.from, Vote::kYes),
            ctx_.timing.forced_write_latency);
  if (ctx_.MaybeCrash(CrashPoint::kPartAfterVoteSent, txn)) return;
}

void ParticipantEngine::FinishPipelinedPrepare(TxnId txn,
                                               SiteId coordinator) {
  // Promote the mirror past the PREPARED record; if the decision raced
  // ahead and the entry is already enforced-and-forgotten, its Truncate
  // left the release mark for exactly this promotion.
  ctx_.log->ReconcileDurability();
  if (ctx_.MaybeCrash(CrashPoint::kPartAfterPreparedLogged, txn)) return;
  if (ctx_.MaybeCrash(CrashPoint::kPartAfterVoteSent, txn)) return;
  if (ctx_.metrics != nullptr) {
    m_prepared_->fetch_add(1, std::memory_order_relaxed);
  }
  auto it = prepared_.find(txn);
  if (it == prepared_.end()) {
    // Decided (and forgotten) before the completion task ran: collect
    // the now-promoted released records.
    ctx_.log->Truncate();
    return;
  }
  if (it->second.inquiry_timer == nullptr) {
    StartInquiryTimer(txn, coordinator);
  }
}

void ParticipantEngine::OnDecision(const Message& msg) {
  if (ctx_.MaybeCrash(CrashPoint::kPartOnDecisionReceived, msg.txn)) return;
  HandleOutcome(msg.txn, msg.from, msg.outcome);
}

void ParticipantEngine::OnInquiryReply(const Message& msg) {
  // An inquiry reply *is* the final decision as far as the participant is
  // concerned; the handling is identical (§4.2).
  if (ctx_.MaybeCrash(CrashPoint::kPartOnDecisionReceived, msg.txn)) return;
  HandleOutcome(msg.txn, msg.from, msg.outcome);
}

void ParticipantEngine::HandleOutcome(TxnId txn, SiteId coordinator,
                                      Outcome outcome) {
  auto it = prepared_.find(txn);
  if (it == prepared_.end()) {
    // Footnote 5: a participant without any memory of the transaction is
    // assumed to have already enforced the decision — simply acknowledge.
    ctx_.Count("part.no_memory_ack");
    SendAckIfExpected(txn, coordinator, outcome);
    return;
  }

  // Write the decision record; whether it is forced is the protocol's
  // signature cost (PrA: aborts lazy; PrC: commits lazy; PrN: both forced).
  bool force = ParticipantForcesDecision(protocol_, outcome);
  ctx_.log->Append(LogRecord::Decision(txn, outcome, LogSide::kParticipant),
                   force);
  if (ctx_.MaybeCrash(CrashPoint::kPartAfterDecisionLogged, txn)) return;

  EnforceAndForget(txn, outcome);
  SendAckIfExpected(txn, coordinator, outcome);
  if (ctx_.MaybeCrash(CrashPoint::kPartAfterAckSent, txn)) return;
}

void ParticipantEngine::EnforceAndForget(TxnId txn, Outcome outcome) {
  ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                .type = SigEventType::kPartEnforce,
                                .site = ctx_.self,
                                .txn = txn,
                                .outcome = outcome});
  ctx_.Count(outcome == Outcome::kCommit ? "part.enforced_commit"
                                         : "part.enforced_abort");
  {
    TraceEvent e = PartEvent(TraceEventKind::kPartEnforce, txn);
    e.outcome = outcome;
    ctx_.Event(std::move(e));
  }
  prepared_.erase(txn);
  ctx_.log->ReleaseTransaction(txn, LogSide::kParticipant);
  ctx_.log->Truncate();
  ctx_.Event(PartEvent(TraceEventKind::kPartForget, txn));
  ctx_.history->Record(SigEvent{.time = ctx_.sim->Now(),
                                .type = SigEventType::kPartForget,
                                .site = ctx_.self,
                                .txn = txn});
}

void ParticipantEngine::SendAckIfExpected(TxnId txn, SiteId coordinator,
                                          Outcome outcome) {
  if (!ParticipantAcks(protocol_, outcome)) return;
  // Acks that follow a forced decision write are delayed by the write.
  SimDuration delay = ParticipantForcesDecision(protocol_, outcome)
                          ? ctx_.timing.forced_write_latency
                          : 0;
  ctx_.Send(Message::Ack(txn, ctx_.self, coordinator, outcome), delay);
}

void ParticipantEngine::StartInquiryTimer(TxnId txn, SiteId coordinator) {
  PreparedTxn entry;
  entry.coordinator = coordinator;
  entry.inquiry_timer = std::make_unique<PeriodicTimer>(ctx_.sim);
  SiteId self = ctx_.self;
  ITransport* net = ctx_.net;
  EventLoop* sim = ctx_.sim;
  entry.inquiry_timer->Start(
      ctx_.timing.inquiry_interval,
      [net, sim, txn, self, coordinator]() {
        if (sim->trace().enabled()) {
          TraceEvent e = PartEvent(TraceEventKind::kPartInquiry, txn);
          e.site = self;
          e.peer = coordinator;
          sim->Emit(std::move(e));
        }
        net->Send(Message::Inquiry(txn, self, coordinator));
      },
      StrFormat("part.inquiry txn=%llu",
                static_cast<unsigned long long>(txn)));
  prepared_[txn] = std::move(entry);
}

void ParticipantEngine::Crash() { prepared_.clear(); }

void ParticipantEngine::Recover() {
  auto summaries = LogAnalyzer::Analyze(ctx_.log->StableRecords());
  for (const auto& [txn, summary] : summaries) {
    if (!summary.has_prepared) continue;  // Coordinator-side records.
    if (summary.decision.has_value()) {
      // Crashed between writing the decision record and forgetting:
      // re-enforce (redo; idempotent) and forget. If the coordinator still
      // needs an acknowledgment it will retransmit the decision and the
      // no-memory path will acknowledge it.
      {
        TraceEvent e = PartEvent(TraceEventKind::kPartRecover, txn);
        e.outcome = summary.decision;
        e.detail = "redo";
        ctx_.Event(std::move(e));
      }
      EnforceAndForget(txn, *summary.decision);
      continue;
    }
    // In doubt: resume periodic inquiries and ask immediately (§4.2).
    StartInquiryTimer(txn, summary.coordinator);
    ctx_.Count("part.recovered_in_doubt");
    {
      TraceEvent e = PartEvent(TraceEventKind::kPartRecover, txn);
      e.peer = summary.coordinator;
      e.detail = "in doubt";
      ctx_.Event(std::move(e));
    }
    {
      TraceEvent e = PartEvent(TraceEventKind::kPartInquiry, txn);
      e.peer = summary.coordinator;
      ctx_.Event(std::move(e));
    }
    ctx_.net->Send(Message::Inquiry(txn, ctx_.self, summary.coordinator));
  }
}

}  // namespace prany
