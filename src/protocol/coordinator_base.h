// Shared coordinator-side two-phase-commit machinery.
//
// Every coordinator variant in the paper runs the same two phases: send
// PREPARE and collect votes; then decide, log per its policy, send the
// decision, await the acknowledgments it expects, and finally forget the
// transaction. The variants differ ONLY in five policy dimensions, which
// subclasses provide:
//
//   1. whether an initiation record is forced before the voting phase
//      (PrC, PrAny);
//   2. which decision records are logged, whether they are forced, and
//      whether they name the participants (PrN/PrA decision records must:
//      they have no initiation record for recovery to consult);
//   3. which participants' acknowledgments are awaited before forgetting;
//   4. how an inquiry about a forgotten/unknown transaction is answered
//      (the protocol's *presumption* — fixed for PrN/PrA/PrC/U2PC,
//      dynamic per inquirer for PrAny, never-presume for C2PC);
//   5. how a transaction found in the log during crash recovery is
//      re-initiated (§4.2).
//
// A uniform consequence the base exploits: an END record is written
// exactly when at least one acknowledgment was expected — true for every
// variant in Figures 1-4.

#ifndef PRANY_PROTOCOL_COORDINATOR_BASE_H_
#define PRANY_PROTOCOL_COORDINATOR_BASE_H_

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "net/message.h"
#include "protocol/engine_context.h"
#include "protocol/protocol_traits.h"
#include "sim/timer.h"
#include "txn/protocol_table.h"
#include "txn/transaction.h"
#include "wal/log_analyzer.h"

namespace prany {

/// How a decision is logged at the coordinator.
enum class DecisionLogPolicy : uint8_t {
  kForced = 0,  ///< Force-written before the decision is sent.
  kNone = 1,    ///< Not logged at all (the presumed outcome).
};

/// Base class for all coordinator variants.
class CoordinatorBase {
 public:
  CoordinatorBase(EngineContext ctx, ProtocolKind kind);
  virtual ~CoordinatorBase();

  CoordinatorBase(const CoordinatorBase&) = delete;
  CoordinatorBase& operator=(const CoordinatorBase&) = delete;

  /// The coordinator's protocol (kPrN..kPrAny).
  ProtocolKind kind() const { return kind_; }

  /// Starts commit processing for a finished transaction whose coordinator
  /// is this site. `txn` must validate.
  void BeginCommit(const Transaction& txn);

  /// Message entry points (called by the Site's dispatcher).
  void OnVote(const Message& msg);
  void OnAck(const Message& msg);
  void OnInquiry(const Message& msg);

  /// Unilaterally aborts a transaction still in its voting phase (e.g. the
  /// transaction was picked as a global-deadlock victim). No-op once a
  /// decision exists. This is how the figure-exact abort flows — all
  /// participants prepared, decision abort — are produced.
  void ForceAbort(TxnId txn) { Decide(txn, Outcome::kAbort); }

  /// Site crash: wipes the protocol table and all timers.
  void Crash();

  /// Site recovery: re-builds the protocol table from the stable log and
  /// re-initiates unfinished decision phases (§4.2).
  void Recover();

  /// The volatile protocol table (exposed for checkers and tests).
  const ProtocolTable& table() const { return table_; }

  /// Switches this engine to pipelined forced writes (see
  /// EngineContext::pipeline_forces): the decision and initiation forces
  /// stop blocking the handler; the sends they gate run from the WAL
  /// sync thread's durability callback and the engine-side completion
  /// (ack bookkeeping, timers, forget) continues via `post_task`.
  /// Installed by the live runtime after construction, before traffic.
  void EnablePipelinedForces(
      std::function<void(std::function<void()>)> post_task) {
    ctx_.pipeline_forces = true;
    ctx_.post_task = std::move(post_task);
  }

 protected:
  // ---- policy hooks -----------------------------------------------------

  /// Commit protocol used for this transaction. Pure protocols return
  /// their own kind; PrAny selects per §4.1.
  virtual ProtocolKind SelectMode(const Transaction& txn);

  /// Whether `mode` force-writes an initiation record before voting.
  virtual bool WritesInitiation(ProtocolKind mode) const = 0;

  /// Logging policy for a decision under `mode`.
  virtual DecisionLogPolicy DecisionPolicy(ProtocolKind mode,
                                           Outcome outcome) const = 0;

  /// Whether the coordinator decision record names the participants.
  virtual bool DecisionNamesParticipants(ProtocolKind mode) const = 0;

  /// Participants whose acknowledgment must arrive before forgetting.
  virtual std::set<SiteId> ExpectedAckers(const CoordTxnState& st,
                                          Outcome outcome) const = 0;

  /// Reply for an inquiry about a transaction absent from the protocol
  /// table. Returns (outcome, answered_by_presumption).
  virtual std::pair<Outcome, bool> AnswerUnknownInquiry(TxnId txn,
                                                        SiteId inquirer) = 0;

  /// Re-initiates one unfinished transaction found in the log (§4.2).
  virtual void RecoverTxn(const TxnLogSummary& summary) = 0;

  /// Notification hooks (PrAny maintains its APP table here).
  virtual void DidBegin(const CoordTxnState& st) { (void)st; }
  virtual void WillForget(const CoordTxnState& st) { (void)st; }

  // ---- shared machinery for subclasses ----------------------------------

  /// Transitions `txn` to the decision phase with `outcome`: logs per
  /// policy, sends the decision, arms retransmission, and completes
  /// immediately if no acknowledgment is expected.
  void Decide(TxnId txn, Outcome outcome);

  /// Recovery helper: re-inserts a protocol-table entry in the decision
  /// phase and re-sends `outcome` to `recipients` (PrAny restricts the
  /// recipients per footnote 4; other protocols send to everyone).
  void ReinitiateDecision(TxnId txn, ProtocolKind mode,
                          std::vector<ParticipantInfo> participants,
                          Outcome outcome,
                          const std::set<SiteId>& recipients);

  EngineContext& ctx() { return ctx_; }
  ProtocolTable& mutable_table() { return table_; }

 private:
  void SendDecisionMessages(const CoordTxnState& st,
                            const std::set<SiteId>& recipients,
                            SimDuration delay);
  void StartVoteTimer(TxnId txn);
  void StartResendTimer(TxnId txn);
  void MaybeComplete(TxnId txn);

  /// Engine-side completion of a pipelined decision force (runs under
  /// the engine lock, posted by the durability callback): reconciles the
  /// WAL mirror, marks the decision durable, arms retransmission and
  /// completes if the acks already raced in.
  void FinishPipelinedDecide(TxnId txn, Outcome outcome);

  /// Ditto for a pipelined initiation force: arms the vote timer unless
  /// the votes (sent only after the durability callback released the
  /// PREPAREs) already produced a decision.
  void FinishPipelinedBegin(TxnId txn);

  EngineContext ctx_;
  ProtocolKind kind_;
  ProtocolTable table_;

  /// Lazily resolved registry handles for the per-transaction metrics, so
  /// the commit path never rebuilds key strings or takes the registry
  /// mutex. Null until first use; only touched when ctx_.metrics is set.
  MetricsRegistry::Counter* m_begin_ = nullptr;
  MetricsRegistry::Counter* m_forget_ = nullptr;
  MetricsRegistry::Counter* m_mode_[6] = {};
  MetricsRegistry::Distribution* m_latency_ = nullptr;
  MetricsRegistry::Distribution* m_commit_latency_ = nullptr;
  MetricsRegistry::Distribution* m_abort_latency_ = nullptr;

  struct ResendState {
    std::unique_ptr<PeriodicTimer> timer;
    uint32_t resends = 0;
  };
  std::map<TxnId, std::unique_ptr<OneShotTimer>> vote_timers_;
  std::map<TxnId, ResendState> resend_timers_;
};

}  // namespace prany

#endif  // PRANY_PROTOCOL_COORDINATOR_BASE_H_
