#include "protocol/coordinator_u2pc.h"

#include "common/status.h"

namespace prany {

CoordinatorU2PC::CoordinatorU2PC(EngineContext ctx, ProtocolKind native)
    : CoordinatorBase(std::move(ctx), ProtocolKind::kU2PC), native_(native) {
  PRANY_CHECK_MSG(IsBaseProtocol(native),
                  "U2PC wraps a base protocol (PrN, PrA or PrC)");
}

ProtocolKind CoordinatorU2PC::SelectMode(const Transaction& txn) {
  (void)txn;
  return native_;  // U2PC always speaks its own protocol.
}

bool CoordinatorU2PC::WritesInitiation(ProtocolKind mode) const {
  return mode == ProtocolKind::kPrC;
}

DecisionLogPolicy CoordinatorU2PC::DecisionPolicy(ProtocolKind mode,
                                                  Outcome outcome) const {
  if (mode == ProtocolKind::kPrN) return DecisionLogPolicy::kForced;
  // PrA and PrC both skip logging the outcome their presumption covers.
  Outcome presumed =
      mode == ProtocolKind::kPrA ? Outcome::kAbort : Outcome::kCommit;
  // PrC presumes commit yet *forces* commit records (they eliminate the
  // initiation record); only aborts go unlogged. PrA skips abort records.
  if (mode == ProtocolKind::kPrC) {
    return outcome == Outcome::kCommit ? DecisionLogPolicy::kForced
                                       : DecisionLogPolicy::kNone;
  }
  return outcome == presumed ? DecisionLogPolicy::kNone
                             : DecisionLogPolicy::kForced;
}

bool CoordinatorU2PC::DecisionNamesParticipants(ProtocolKind mode) const {
  return mode != ProtocolKind::kPrC;
}

bool CoordinatorU2PC::NativeExpectsAcks(Outcome outcome) const {
  switch (native_) {
    case ProtocolKind::kPrN:
      return true;
    case ProtocolKind::kPrA:
      return outcome == Outcome::kCommit;
    case ProtocolKind::kPrC:
      return outcome == Outcome::kAbort;
    default:
      return true;
  }
}

std::set<SiteId> CoordinatorU2PC::ExpectedAckers(const CoordTxnState& st,
                                                 Outcome outcome) const {
  if (!NativeExpectsAcks(outcome)) return {};
  // The U2PC adjustment (§2): among the participants the native protocol
  // would await, wait only for those whose own protocol actually
  // acknowledges this outcome — the others would block completion forever.
  return AckersAmong(st.participants, outcome);
}

std::pair<Outcome, bool> CoordinatorU2PC::AnswerUnknownInquiry(
    TxnId txn, SiteId inquirer) {
  (void)txn;
  (void)inquirer;
  // The native presumption, regardless of who asks — the root cause of
  // the Theorem 1 violations.
  Outcome presumed = native_ == ProtocolKind::kPrC ? Outcome::kCommit
                                                   : Outcome::kAbort;
  return {presumed, /*by_presumption=*/true};
}

void CoordinatorU2PC::RecoverTxn(const TxnLogSummary& summary) {
  if (summary.has_initiation) {  // Native PrC.
    if (summary.coord_decision == Outcome::kCommit) {
      ctx().log->ReleaseTransaction(summary.txn, LogSide::kCoordinator);
      return;
    }
    ReinitiateDecision(summary.txn, native_, summary.participants,
                       Outcome::kAbort, SitesOf(summary.participants));
    return;
  }
  if (!summary.coord_decision.has_value()) return;
  ReinitiateDecision(summary.txn, native_, summary.participants,
                     *summary.coord_decision, SitesOf(summary.participants));
}

}  // namespace prany
