// Union two-phase commit (U2PC) — the strawman integration of §2.
//
// A U2PC coordinator follows its *native* protocol (PrN, PrA or PrC) while
// talking to heterogeneous participants. It knows which participants will
// never acknowledge a given outcome, so it waits only for the ones that
// will ("the coordinator forgets the outcome once it has received the
// acknowledgment of the PrC participant, knowing that the PrA will never
// acknowledge such a decision"), and it ignores acknowledgments its
// protocol does not expect. Crucially, it answers inquiries about
// forgotten transactions with its *native* presumption.
//
// Theorem 1 shows this forgets too early: a participant whose presumption
// disagrees with the coordinator's can be told the wrong outcome. This
// class exists so the theorem is reproduced by running code — see
// tests/integration/u2pc_violation_test.cc and bench_violation_rates.

#ifndef PRANY_PROTOCOL_COORDINATOR_U2PC_H_
#define PRANY_PROTOCOL_COORDINATOR_U2PC_H_

#include <utility>

#include "protocol/coordinator_base.h"

namespace prany {

class CoordinatorU2PC : public CoordinatorBase {
 public:
  /// `native` must be a base protocol; it is the protocol this coordinator
  /// "speaks" (logging, end records, presumption).
  CoordinatorU2PC(EngineContext ctx, ProtocolKind native);

  ProtocolKind native() const { return native_; }

 protected:
  ProtocolKind SelectMode(const Transaction& txn) override;
  bool WritesInitiation(ProtocolKind mode) const override;
  DecisionLogPolicy DecisionPolicy(ProtocolKind mode,
                                   Outcome outcome) const override;
  bool DecisionNamesParticipants(ProtocolKind mode) const override;
  std::set<SiteId> ExpectedAckers(const CoordTxnState& st,
                                  Outcome outcome) const override;
  std::pair<Outcome, bool> AnswerUnknownInquiry(TxnId txn,
                                                SiteId inquirer) override;
  void RecoverTxn(const TxnLogSummary& summary) override;

 private:
  /// Whether the native protocol awaits acknowledgments for `outcome`.
  bool NativeExpectsAcks(Outcome outcome) const;

  ProtocolKind native_;
};

}  // namespace prany

#endif  // PRANY_PROTOCOL_COORDINATOR_U2PC_H_
