// Named instrumentation points where a site may be crashed.
//
// The paper's proofs quantify over failure *timings* ("the participant
// fails after it has received the final outcome but before writing it in
// its stable log"). Each such timing is a named point; the protocol
// engines probe the failure injector at every point, and a positive probe
// crashes the site exactly there. This turns the proofs' adversarial
// schedules into deterministic, enumerable test inputs.

#ifndef PRANY_PROTOCOL_CRASH_POINTS_H_
#define PRANY_PROTOCOL_CRASH_POINTS_H_

#include <array>
#include <cstdint>
#include <string>

namespace prany {

/// Where, within the protocol, a crash is injected.
enum class CrashPoint : uint8_t {
  // Coordinator-side points.
  kCoordAfterInitiationLogged = 0,  ///< Initiation record durable, no
                                    ///< PREPAREs sent yet.
  kCoordAfterPreparesSent = 1,
  kCoordAfterDecisionMade = 2,      ///< Decision durable (or chosen, for
                                    ///< never-logged aborts); nothing sent.
  kCoordAfterDecisionSent = 3,      ///< Decision messages out, acks pending.
  kCoordBeforeForget = 4,           ///< All acks in, end record not yet
                                    ///< written.

  // Participant-side points.
  kPartOnPrepareReceived = 5,       ///< PREPARE arrived, nothing logged.
  kPartAfterPreparedLogged = 6,     ///< PREPARED durable, vote not sent.
  kPartAfterVoteSent = 7,
  kPartOnDecisionReceived = 8,      ///< Decision arrived, decision record
                                    ///< not yet written — the Theorem 1
                                    ///< window.
  kPartAfterDecisionLogged = 9,     ///< Decision record appended (maybe
                                    ///< non-forced), ack not sent.
  kPartAfterAckSent = 10,
};

inline constexpr std::array<CrashPoint, 11> kAllCrashPoints = {
    CrashPoint::kCoordAfterInitiationLogged,
    CrashPoint::kCoordAfterPreparesSent,
    CrashPoint::kCoordAfterDecisionMade,
    CrashPoint::kCoordAfterDecisionSent,
    CrashPoint::kCoordBeforeForget,
    CrashPoint::kPartOnPrepareReceived,
    CrashPoint::kPartAfterPreparedLogged,
    CrashPoint::kPartAfterVoteSent,
    CrashPoint::kPartOnDecisionReceived,
    CrashPoint::kPartAfterDecisionLogged,
    CrashPoint::kPartAfterAckSent,
};

inline constexpr std::array<CrashPoint, 5> kCoordinatorCrashPoints = {
    CrashPoint::kCoordAfterInitiationLogged,
    CrashPoint::kCoordAfterPreparesSent,
    CrashPoint::kCoordAfterDecisionMade,
    CrashPoint::kCoordAfterDecisionSent,
    CrashPoint::kCoordBeforeForget,
};

inline constexpr std::array<CrashPoint, 6> kParticipantCrashPoints = {
    CrashPoint::kPartOnPrepareReceived,
    CrashPoint::kPartAfterPreparedLogged,
    CrashPoint::kPartAfterVoteSent,
    CrashPoint::kPartOnDecisionReceived,
    CrashPoint::kPartAfterDecisionLogged,
    CrashPoint::kPartAfterAckSent,
};

/// Human-readable point name.
std::string ToString(CrashPoint point);

}  // namespace prany

#endif  // PRANY_PROTOCOL_CRASH_POINTS_H_
