// Coordinator two-phase commit (C2PC) — the second strawman of §3.
//
// C2PC repairs U2PC's premature forgetting by *never* forgetting a
// transaction until every participant has acknowledged the decision, and
// by never answering an inquiry with a presumption. To make the
// no-presumption rule sound across coordinator crashes, this concretization
// force-logs every decision (PrN-style, naming the participants); an
// unknown transaction with no decision record then provably never decided,
// so "abort" is a sound answer, not a presumption.
//
// The price is Theorem 2: PrA participants never acknowledge aborts and
// PrC participants never acknowledge commits, so entries for
// mixed-presumption transactions stay in the protocol table — and their
// records in the log — forever. Decision retransmission is therefore
// capped (in-doubt participants still converge by inquiring); the leaked
// entries are what bench_c2pc_memory measures.

#ifndef PRANY_PROTOCOL_COORDINATOR_C2PC_H_
#define PRANY_PROTOCOL_COORDINATOR_C2PC_H_

#include <utility>

#include "protocol/coordinator_base.h"

namespace prany {

class CoordinatorC2PC : public CoordinatorBase {
 public:
  /// Retransmission is capped (default 3) so runs quiesce despite entries
  /// that can never complete.
  explicit CoordinatorC2PC(EngineContext ctx,
                           uint32_t max_decision_resends = 3);

 protected:
  bool WritesInitiation(ProtocolKind mode) const override;
  DecisionLogPolicy DecisionPolicy(ProtocolKind mode,
                                   Outcome outcome) const override;
  bool DecisionNamesParticipants(ProtocolKind mode) const override;
  std::set<SiteId> ExpectedAckers(const CoordTxnState& st,
                                  Outcome outcome) const override;
  std::pair<Outcome, bool> AnswerUnknownInquiry(TxnId txn,
                                                SiteId inquirer) override;
  void RecoverTxn(const TxnLogSummary& summary) override;
};

}  // namespace prany

#endif  // PRANY_PROTOCOL_COORDINATOR_C2PC_H_
