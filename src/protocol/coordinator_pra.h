// Presumed-abort coordinator — Figure 3 of the paper.
//
// Makes PrN's hidden abort presumption explicit: aborted transactions are
// never logged and never acknowledged — the coordinator forgets them the
// moment the abort messages leave. Commits still force a decision record
// (naming the participants), await every acknowledgment, and write END.
// Any inquiry about an unknown transaction is answered "abort", by
// presumption.

#ifndef PRANY_PROTOCOL_COORDINATOR_PRA_H_
#define PRANY_PROTOCOL_COORDINATOR_PRA_H_

#include <utility>

#include "protocol/coordinator_base.h"

namespace prany {

class CoordinatorPrA : public CoordinatorBase {
 public:
  explicit CoordinatorPrA(EngineContext ctx)
      : CoordinatorBase(std::move(ctx), ProtocolKind::kPrA) {}

 protected:
  bool WritesInitiation(ProtocolKind mode) const override;
  DecisionLogPolicy DecisionPolicy(ProtocolKind mode,
                                   Outcome outcome) const override;
  bool DecisionNamesParticipants(ProtocolKind mode) const override;
  std::set<SiteId> ExpectedAckers(const CoordTxnState& st,
                                  Outcome outcome) const override;
  std::pair<Outcome, bool> AnswerUnknownInquiry(TxnId txn,
                                                SiteId inquirer) override;
  void RecoverTxn(const TxnLogSummary& summary) override;
};

}  // namespace prany

#endif  // PRANY_PROTOCOL_COORDINATOR_PRA_H_
