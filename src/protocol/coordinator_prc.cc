#include "protocol/coordinator_prc.h"

namespace prany {

bool CoordinatorPrC::WritesInitiation(ProtocolKind mode) const {
  (void)mode;
  return true;
}

DecisionLogPolicy CoordinatorPrC::DecisionPolicy(ProtocolKind mode,
                                                 Outcome outcome) const {
  (void)mode;
  return outcome == Outcome::kCommit ? DecisionLogPolicy::kForced
                                     : DecisionLogPolicy::kNone;
}

bool CoordinatorPrC::DecisionNamesParticipants(ProtocolKind mode) const {
  (void)mode;
  return false;  // The initiation record already names them.
}

std::set<SiteId> CoordinatorPrC::ExpectedAckers(const CoordTxnState& st,
                                                Outcome outcome) const {
  if (outcome == Outcome::kCommit) return {};  // Commit is fire-and-forget.
  return SitesOf(st.participants);
}

std::pair<Outcome, bool> CoordinatorPrC::AnswerUnknownInquiry(
    TxnId txn, SiteId inquirer) {
  (void)txn;
  (void)inquirer;
  return {Outcome::kCommit, /*by_presumption=*/true};
}

void CoordinatorPrC::RecoverTxn(const TxnLogSummary& summary) {
  if (summary.coord_decision == Outcome::kCommit) {
    // Initiation + commit: the commit record eliminated the initiation;
    // the transaction was already forgotten, only GC remained. (Only the
    // coordinator-side record counts: on a dual-role site a participant
    // redo record says nothing about this role's progress.)
    ctx().log->ReleaseTransaction(summary.txn, LogSide::kCoordinator);
    return;
  }
  // Initiation without a commit record: abort per PrC's recovery rule and
  // collect the acknowledgments the END record needs.
  ReinitiateDecision(summary.txn, ProtocolKind::kPrC, summary.participants,
                     Outcome::kAbort, SitesOf(summary.participants));
}

}  // namespace prany
