#include "protocol/protocol_traits.h"

#include "common/status.h"
#include "protocol/crash_points.h"

namespace prany {

namespace {

// Compile-time consistency of the presumption model with the traits table.
// A presumed protocol must skip the ack exactly when it skips the forced
// decision record, and the outcome it skips must be the one its presumption
// covers — otherwise "no news" would be ambiguous and the protocol unsound.
constexpr bool AcksOutcome(ProtocolKind kind, Outcome o) {
  const ParticipantTraits t = BaseTraits(kind);
  return o == Outcome::kCommit ? t.ack_commit : t.ack_abort;
}
constexpr bool ForcesOutcome(ProtocolKind kind, Outcome o) {
  const ParticipantTraits t = BaseTraits(kind);
  return o == Outcome::kCommit ? t.force_commit_record : t.force_abort_record;
}
constexpr bool AckMatchesForce(ProtocolKind kind) {
  return AcksOutcome(kind, Outcome::kCommit) ==
             ForcesOutcome(kind, Outcome::kCommit) &&
         AcksOutcome(kind, Outcome::kAbort) ==
             ForcesOutcome(kind, Outcome::kAbort);
}
constexpr bool RelianceMatchesSkippedAck(ProtocolKind kind) {
  const std::optional<Outcome> r = ParticipantRelianceOutcome(kind);
  if (!r.has_value()) {  // PrN: acks (and forces) both outcomes.
    return AcksOutcome(kind, Outcome::kCommit) &&
           AcksOutcome(kind, Outcome::kAbort);
  }
  // The presumed outcome is the un-acked one; the other must be acked.
  const Outcome other =
      *r == Outcome::kCommit ? Outcome::kAbort : Outcome::kCommit;
  return !AcksOutcome(kind, *r) && AcksOutcome(kind, other);
}
static_assert(AckMatchesForce(ProtocolKind::kPrN));
static_assert(AckMatchesForce(ProtocolKind::kPrA));
static_assert(AckMatchesForce(ProtocolKind::kPrC));
static_assert(RelianceMatchesSkippedAck(ProtocolKind::kPrN));
static_assert(RelianceMatchesSkippedAck(ProtocolKind::kPrA));
static_assert(RelianceMatchesSkippedAck(ProtocolKind::kPrC));
// A base coordinator's fixed presumption must cover its own participants'
// reliance (homogeneous deployments are self-consistent).
static_assert(CoordinatorFixedPresumption(ProtocolKind::kPrA) ==
              ParticipantRelianceOutcome(ProtocolKind::kPrA));
static_assert(CoordinatorFixedPresumption(ProtocolKind::kPrC) ==
              ParticipantRelianceOutcome(ProtocolKind::kPrC));
// PrAny and C2PC must never presume a fixed outcome.
static_assert(!CoordinatorFixedPresumption(ProtocolKind::kPrAny).has_value());
static_assert(!CoordinatorFixedPresumption(ProtocolKind::kC2PC).has_value());

}  // namespace

const ParticipantTraits& TraitsFor(ProtocolKind kind) {
  // Figures 2-4 of the paper, column by column.
  static const ParticipantTraits kPrNTraits{/*ack_commit=*/true,
                                            /*ack_abort=*/true,
                                            /*force_commit_record=*/true,
                                            /*force_abort_record=*/true};
  static const ParticipantTraits kPrATraits{/*ack_commit=*/true,
                                            /*ack_abort=*/false,
                                            /*force_commit_record=*/true,
                                            /*force_abort_record=*/false};
  static const ParticipantTraits kPrCTraits{/*ack_commit=*/false,
                                            /*ack_abort=*/true,
                                            /*force_commit_record=*/false,
                                            /*force_abort_record=*/true};
  switch (kind) {
    case ProtocolKind::kPrN:
      return kPrNTraits;
    case ProtocolKind::kPrA:
      return kPrATraits;
    case ProtocolKind::kPrC:
      return kPrCTraits;
    default:
      PRANY_CHECK_MSG(false, "traits exist only for base protocols");
      return kPrNTraits;
  }
}

bool ParticipantAcks(ProtocolKind kind, Outcome outcome) {
  const ParticipantTraits& t = TraitsFor(kind);
  return outcome == Outcome::kCommit ? t.ack_commit : t.ack_abort;
}

bool ParticipantForcesDecision(ProtocolKind kind, Outcome outcome) {
  const ParticipantTraits& t = TraitsFor(kind);
  return outcome == Outcome::kCommit ? t.force_commit_record
                                     : t.force_abort_record;
}

std::set<SiteId> AckersAmong(const std::vector<ParticipantInfo>& participants,
                             Outcome outcome) {
  std::set<SiteId> out;
  for (const ParticipantInfo& p : participants) {
    if (ParticipantAcks(p.protocol, outcome)) out.insert(p.site);
  }
  return out;
}

std::set<SiteId> SitesOf(const std::vector<ParticipantInfo>& participants) {
  std::set<SiteId> out;
  for (const ParticipantInfo& p : participants) out.insert(p.site);
  return out;
}

std::string ToString(CrashPoint point) {
  switch (point) {
    case CrashPoint::kCoordAfterInitiationLogged:
      return "coord.after_initiation_logged";
    case CrashPoint::kCoordAfterPreparesSent:
      return "coord.after_prepares_sent";
    case CrashPoint::kCoordAfterDecisionMade:
      return "coord.after_decision_made";
    case CrashPoint::kCoordAfterDecisionSent:
      return "coord.after_decision_sent";
    case CrashPoint::kCoordBeforeForget:
      return "coord.before_forget";
    case CrashPoint::kPartOnPrepareReceived:
      return "part.on_prepare_received";
    case CrashPoint::kPartAfterPreparedLogged:
      return "part.after_prepared_logged";
    case CrashPoint::kPartAfterVoteSent:
      return "part.after_vote_sent";
    case CrashPoint::kPartOnDecisionReceived:
      return "part.on_decision_received";
    case CrashPoint::kPartAfterDecisionLogged:
      return "part.after_decision_logged";
    case CrashPoint::kPartAfterAckSent:
      return "part.after_ack_sent";
  }
  return "unknown";
}

}  // namespace prany
