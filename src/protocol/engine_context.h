// Services a protocol engine (coordinator or participant) receives from
// its hosting Site: the event loop, the network, its stable log, the
// shared history recorder, metrics, and the failure-injection probe.

#ifndef PRANY_PROTOCOL_ENGINE_CONTEXT_H_
#define PRANY_PROTOCOL_ENGINE_CONTEXT_H_

#include <functional>

#include "common/metrics.h"
#include "history/event_log.h"
#include "net/transport.h"
#include "protocol/crash_points.h"
#include "runtime/event_loop.h"
#include "wal/stable_log.h"

namespace prany {

/// Timeout and retry policy shared by all engines of a system.
struct TimingConfig {
  /// Coordinator: how long to wait for votes before deciding abort.
  SimDuration vote_timeout = 50'000;  // 50 ms

  /// Coordinator: decision retransmission period while acks are missing.
  SimDuration decision_resend_interval = 20'000;

  /// Coordinator: 0 = retransmit until acked. C2PC sets a finite cap so
  /// runs quiesce even though its entries can never complete (the
  /// participant side still converges via pull-based inquiries).
  uint32_t max_decision_resends = 0;

  /// Participant: period between in-doubt INQUIRY retries.
  SimDuration inquiry_interval = 20'000;

  /// Simulated latency of one forced log write (charged before the write
  /// "completes"; non-forced appends are free at append time).
  SimDuration forced_write_latency = 0;
};

/// Dependency bundle handed to engines by their Site. The `sim` and `net`
/// fields are the env seam: under the simulator they point at a Simulator
/// and Network, under the live runtime at a LiveEventLoop and
/// LiveTransport — the engines cannot tell the difference.
struct EngineContext {
  SiteId self = kInvalidSite;
  EventLoop* sim = nullptr;
  ITransport* net = nullptr;
  StableLog* log = nullptr;
  EventLog* history = nullptr;
  MetricsRegistry* metrics = nullptr;  ///< May be null.
  TimingConfig timing;

  /// Failure-injection probe. Called by engines at every CrashPoint; when
  /// it returns true the site has *already crashed* (volatile state is
  /// gone) and the engine must return immediately without touching its
  /// members. Null means "never crash here".
  std::function<bool(CrashPoint, TxnId)> crash_probe;

  /// Liveness query for deferred sends (null means "always up").
  std::function<bool()> is_up;

  /// Posts a closure onto the engine's serialization domain (the live
  /// site's worker queue; runs under the engine mutex). Installed by the
  /// live runtime alongside `pipeline_forces`; null means "run inline".
  /// Used by the pipelined decision path to get back under the engine
  /// lock after a durability callback fired on the WAL sync thread.
  std::function<void(std::function<void()>)> post_task;

  /// When true, engines detach the durability wait of latency-critical
  /// forced writes (StableLog::AppendPipelined): the handler returns as
  /// soon as the record is queued, and the send the force gates runs as
  /// a callback from the log's sync thread immediately after the
  /// fdatasync — physically preserving force-before-send (R1-R4) while
  /// skipping the worker wakeup on the commit path. Default off: the
  /// simulator keeps the exact synchronous schedule.
  bool pipeline_forces = false;

  /// Convenience: probe the failure injector at `point`.
  bool MaybeCrash(CrashPoint point, TxnId txn) const {
    return crash_probe != nullptr && crash_probe(point, txn);
  }

  /// Runs `fn` under the engine serialization domain: posted through
  /// `post_task` when installed, inline otherwise.
  void PostTask(std::function<void()> fn) const {
    if (post_task != nullptr) {
      post_task(std::move(fn));
    } else {
      fn();
    }
  }

  void Count(const std::string& name, int64_t delta = 1) const {
    if (metrics != nullptr) metrics->Add(name, delta);
  }

  void Trace(std::string text) const { sim->Trace(std::move(text)); }

  /// Emits a structured trace event stamped with the current time and this
  /// engine's site id. No-op when tracing is disabled.
  void Event(TraceEvent event) const {
    if (!sim->trace().enabled()) return;
    event.site = self;
    sim->Emit(std::move(event));
  }

  /// Sends `msg` after `delay` (used to charge forced-write latency to the
  /// messages that depend on the write). The send is suppressed if the
  /// site crashed in the meantime. delay == 0 sends immediately.
  void Send(const Message& msg, SimDuration delay = 0) const {
    if (delay == 0) {
      net->Send(msg);
      return;
    }
    ITransport* net_ptr = net;
    std::function<bool()> up = is_up;
    sim->Schedule(
        delay,
        [net_ptr, up, msg]() {
          if (up == nullptr || up()) net_ptr->Send(msg);
        },
        "ctx.deferred_send");
  }
};

}  // namespace prany

#endif  // PRANY_PROTOCOL_ENGINE_CONTEXT_H_
