// ACTA-style history of significant events (§3 of the paper).
//
// The paper expresses its safety criterion in ACTA, a first-order logic
// over the complete execution history H with a precedence relation (->).
// We reproduce that machinery executably: every run records the paper's
// significant events — DecideC, DeletePT (forgetting), INQ, RespondC,
// participant enforcement/forgetting, crashes and recoveries — into one
// globally ordered EventLog, and the correctness criteria (Definition 1,
// Definition 2) are evaluated as predicates over the recorded history.

#ifndef PRANY_HISTORY_EVENT_LOG_H_
#define PRANY_HISTORY_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/sync.h"
#include "common/types.h"

namespace prany {

/// The significant-event vocabulary.
enum class SigEventType : uint8_t {
  kTxnSubmitted = 0,       ///< Commit processing begins at the coordinator.
  kCoordDecide = 1,        ///< DecideC(Commit/Abort) — outcome is durable
                           ///< (or, for never-logged aborts, chosen).
  kCoordForget = 2,        ///< DeletePT(T) — entry erased from the
                           ///< protocol table.
  kCoordInquiryRecv = 3,   ///< INQ_ti received from participant `peer`.
  kCoordRespond = 4,       ///< RespondC(Outcome_ti) to participant `peer`.
  kPartPrepared = 5,       ///< Participant force-logged PREPARED, voted yes.
  kPartEnforce = 6,        ///< Participant enforced (applied) an outcome.
  kPartForget = 7,         ///< Participant discarded all info for the txn.
  kSiteCrash = 8,
  kSiteRecover = 9,
};

/// Human-readable type name.
std::string ToString(SigEventType type);

/// One significant event. `seq` is the global precedence order (the
/// paper's ->): e precedes e' iff e.seq < e'.seq.
struct SigEvent {
  uint64_t seq = 0;
  SimTime time = 0;
  SigEventType type = SigEventType::kTxnSubmitted;
  SiteId site = kInvalidSite;  ///< Where the event happened.
  TxnId txn = kInvalidTxn;     ///< kInvalidTxn for crash/recover.
  std::optional<Outcome> outcome;  ///< Decide/Respond/Enforce.
  SiteId peer = kInvalidSite;  ///< Inquiry/Respond counterpart.
  bool by_presumption = false; ///< Respond answered by presumption.

  std::string ToString() const;
};

/// The complete, globally ordered history of one run.
///
/// Record() is thread-safe and contention-free in the common case: the
/// sequence number comes from one atomic fetch_add, and the event is
/// stored in the shard the sequence selects — concurrent recorders take
/// different shard locks, so the history is never a global serialization
/// point for the live runtime's sites. Causal order survives: if one
/// Record completes before another begins (same thread, or ordered by a
/// message send/receive), the first gets the smaller seq, which is all
/// the checkers' precedence relation (->) needs. The read accessors are
/// for quiescent use — after the run — and merge the shards by seq into
/// a cached view on first access.
class EventLog {
 public:
  /// Records an event; assigns its sequence number and returns it. The
  /// returned reference stays valid for the life of the log (shards are
  /// deques, which never relocate stored events), even while other
  /// threads record.
  const SigEvent& Record(SigEvent event);

  /// Called with every recorded event (a copy, outside the log's lock).
  /// The live runtime uses this to detect transaction completion without
  /// polling. Install/clear only while no recorder is running.
  using Observer = std::function<void(const SigEvent&)>;
  void SetObserver(Observer observer) { observer_ = std::move(observer); }

  /// All events merged across shards in seq order. Quiescent use only:
  /// the merge is rebuilt when events were recorded since the last call,
  /// and the returned reference is invalidated by the next rebuild.
  const std::deque<SigEvent>& events() const;

  /// All events of `txn`, in order.
  std::vector<const SigEvent*> ForTxn(TxnId txn) const;

  /// True iff a Decide event for `txn` has been recorded. Thread-safe and
  /// O(1) — recovery uses it on its hot path to avoid re-recording
  /// decisions read back from the stable log.
  bool HasDecide(TxnId txn) const;

  /// First event matching the predicate, or nullptr.
  const SigEvent* FirstWhere(
      const std::function<bool(const SigEvent&)>& pred) const;

  /// The precedence relation: true iff `a` happened before `b`.
  static bool Precedes(const SigEvent& a, const SigEvent& b) {
    return a.seq < b.seq;
  }

  /// Transactions that appear in the history.
  std::vector<TxnId> Txns() const;

  void Clear();

  /// Multi-line dump for diagnostics.
  std::string ToString() const;

 private:
  // Power of two; seq & (kShards - 1) picks the shard, so consecutive
  // events land on different shards and concurrent recorders almost
  // never contend on one lock.
  static constexpr size_t kShards = 16;

  // Deques, not vectors: the live runtime appends hundreds of thousands
  // of events per run, and a vector regrowth would both copy the shard
  // inside its lock and invalidate every reference Record ever returned.
  struct Shard {
    /// Leaf lock (metrics rank): held for one push_back or one bulk copy,
    /// never while acquiring anything else.
    Mutex mu PRANY_ACQUIRED_AFTER(lock_order::kCrashRank);
    std::deque<SigEvent> events PRANY_GUARDED_BY(mu);
  };

  std::atomic<uint64_t> next_seq_{1};
  mutable Shard shards_[kShards];
  /// Leaf lock (metrics rank) for the O(1) decide index.
  mutable Mutex decided_mu_ PRANY_ACQUIRED_AFTER(lock_order::kCrashRank);
  std::unordered_set<TxnId> decided_txns_ PRANY_GUARDED_BY(decided_mu_);
  /// Unguarded by contract: installed/cleared only while no recorder
  /// runs (see SetObserver), then read-only from recorder threads.
  Observer observer_;

  /// Merged seq-ordered view, rebuilt lazily by events(). merged_count_
  /// is how many events the current merge covers; a mismatch with
  /// next_seq_ marks it stale.
  mutable Mutex merged_mu_ PRANY_ACQUIRED_AFTER(lock_order::kCrashRank);
  mutable std::deque<SigEvent> merged_ PRANY_GUARDED_BY(merged_mu_);
  mutable uint64_t merged_count_ PRANY_GUARDED_BY(merged_mu_) = 0;
};

}  // namespace prany

#endif  // PRANY_HISTORY_EVENT_LOG_H_
