// ACTA-style history of significant events (§3 of the paper).
//
// The paper expresses its safety criterion in ACTA, a first-order logic
// over the complete execution history H with a precedence relation (->).
// We reproduce that machinery executably: every run records the paper's
// significant events — DecideC, DeletePT (forgetting), INQ, RespondC,
// participant enforcement/forgetting, crashes and recoveries — into one
// globally ordered EventLog, and the correctness criteria (Definition 1,
// Definition 2) are evaluated as predicates over the recorded history.

#ifndef PRANY_HISTORY_EVENT_LOG_H_
#define PRANY_HISTORY_EVENT_LOG_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace prany {

/// The significant-event vocabulary.
enum class SigEventType : uint8_t {
  kTxnSubmitted = 0,       ///< Commit processing begins at the coordinator.
  kCoordDecide = 1,        ///< DecideC(Commit/Abort) — outcome is durable
                           ///< (or, for never-logged aborts, chosen).
  kCoordForget = 2,        ///< DeletePT(T) — entry erased from the
                           ///< protocol table.
  kCoordInquiryRecv = 3,   ///< INQ_ti received from participant `peer`.
  kCoordRespond = 4,       ///< RespondC(Outcome_ti) to participant `peer`.
  kPartPrepared = 5,       ///< Participant force-logged PREPARED, voted yes.
  kPartEnforce = 6,        ///< Participant enforced (applied) an outcome.
  kPartForget = 7,         ///< Participant discarded all info for the txn.
  kSiteCrash = 8,
  kSiteRecover = 9,
};

/// Human-readable type name.
std::string ToString(SigEventType type);

/// One significant event. `seq` is the global precedence order (the
/// paper's ->): e precedes e' iff e.seq < e'.seq.
struct SigEvent {
  uint64_t seq = 0;
  SimTime time = 0;
  SigEventType type = SigEventType::kTxnSubmitted;
  SiteId site = kInvalidSite;  ///< Where the event happened.
  TxnId txn = kInvalidTxn;     ///< kInvalidTxn for crash/recover.
  std::optional<Outcome> outcome;  ///< Decide/Respond/Enforce.
  SiteId peer = kInvalidSite;  ///< Inquiry/Respond counterpart.
  bool by_presumption = false; ///< Respond answered by presumption.

  std::string ToString() const;
};

/// The complete, globally ordered history of one run.
///
/// Record() is thread-safe (the live runtime's sites record concurrently);
/// the read accessors are for quiescent use — after the run — as they hand
/// out references into the live vector.
class EventLog {
 public:
  /// Records an event; assigns its sequence number and returns it. The
  /// returned reference is only stable while no other thread records.
  const SigEvent& Record(SigEvent event);

  /// Called with every recorded event (a copy, outside the log's lock).
  /// The live runtime uses this to detect transaction completion without
  /// polling. Install/clear only while no recorder is running.
  using Observer = std::function<void(const SigEvent&)>;
  void SetObserver(Observer observer) { observer_ = std::move(observer); }

  const std::vector<SigEvent>& events() const { return events_; }

  /// All events of `txn`, in order.
  std::vector<const SigEvent*> ForTxn(TxnId txn) const;

  /// True iff a Decide event for `txn` has been recorded. Thread-safe and
  /// O(1) — recovery uses it on its hot path to avoid re-recording
  /// decisions read back from the stable log.
  bool HasDecide(TxnId txn) const;

  /// First event matching the predicate, or nullptr.
  const SigEvent* FirstWhere(
      const std::function<bool(const SigEvent&)>& pred) const;

  /// The precedence relation: true iff `a` happened before `b`.
  static bool Precedes(const SigEvent& a, const SigEvent& b) {
    return a.seq < b.seq;
  }

  /// Transactions that appear in the history.
  std::vector<TxnId> Txns() const;

  void Clear();

  /// Multi-line dump for diagnostics.
  std::string ToString() const;

 private:
  mutable std::mutex mu_;  ///< Guards next_seq_, events_ and decided_txns_.
  uint64_t next_seq_ = 1;
  std::vector<SigEvent> events_;
  std::unordered_set<TxnId> decided_txns_;  ///< Txns with a Decide event.
  Observer observer_;
};

}  // namespace prany

#endif  // PRANY_HISTORY_EVENT_LOG_H_
