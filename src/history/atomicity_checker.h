// Functional-correctness (global atomicity) checker.
//
// Evaluates, over a recorded history, the property Theorem 1 shows U2PC
// violates: all sites that enforce an outcome for a transaction enforce
// the *same* outcome, and that outcome matches every decision the
// coordinator made for the transaction.

#ifndef PRANY_HISTORY_ATOMICITY_CHECKER_H_
#define PRANY_HISTORY_ATOMICITY_CHECKER_H_

#include <string>
#include <vector>

#include "history/event_log.h"

namespace prany {

/// One detected atomicity violation.
struct AtomicityViolation {
  TxnId txn = kInvalidTxn;
  std::string description;
};

/// Result of an atomicity check.
struct AtomicityReport {
  std::vector<AtomicityViolation> violations;
  uint64_t txns_checked = 0;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

/// Checks global atomicity over a history.
class AtomicityChecker {
 public:
  static AtomicityReport Check(const EventLog& history);
};

}  // namespace prany

#endif  // PRANY_HISTORY_ATOMICITY_CHECKER_H_
