#include "history/atomicity_checker.h"

#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace prany {

std::string AtomicityReport::ToString() const {
  std::ostringstream out;
  out << "atomicity: " << (ok() ? "OK" : "VIOLATED") << " ("
      << txns_checked << " txns checked, " << violations.size()
      << " violations)\n";
  for (const AtomicityViolation& v : violations) {
    out << "  txn " << v.txn << ": " << v.description << "\n";
  }
  return out.str();
}

AtomicityReport AtomicityChecker::Check(const EventLog& history) {
  struct TxnFacts {
    std::optional<Outcome> decided;
    bool decided_conflicting = false;
    // site -> outcomes it enforced (re-enforcement after recovery is legal
    // if the outcome is unchanged).
    std::map<SiteId, std::set<Outcome>> enforced;
  };

  std::map<TxnId, TxnFacts> facts;
  for (const SigEvent& e : history.events()) {
    if (e.txn == kInvalidTxn) continue;
    TxnFacts& f = facts[e.txn];
    switch (e.type) {
      case SigEventType::kCoordDecide:
        if (f.decided.has_value() && *f.decided != *e.outcome) {
          f.decided_conflicting = true;
        }
        f.decided = *e.outcome;
        break;
      case SigEventType::kPartEnforce:
        f.enforced[e.site].insert(*e.outcome);
        break;
      default:
        break;
    }
  }

  AtomicityReport report;
  report.txns_checked = facts.size();
  for (const auto& [txn, f] : facts) {
    if (f.decided_conflicting) {
      report.violations.push_back(
          {txn, "coordinator decided both commit and abort"});
    }
    std::set<Outcome> all_enforced;
    for (const auto& [site, outcomes] : f.enforced) {
      if (outcomes.size() > 1) {
        report.violations.push_back(
            {txn, StrFormat("site %u enforced both commit and abort", site)});
      }
      all_enforced.insert(outcomes.begin(), outcomes.end());
    }
    if (all_enforced.size() > 1) {
      report.violations.push_back(
          {txn, "different sites enforced different outcomes"});
    }
    if (f.decided.has_value() && all_enforced.size() == 1 &&
        *all_enforced.begin() != *f.decided) {
      // A site enforced the opposite of the coordinator's decision. With
      // yes-votes required for commit, the only legal divergence is a
      // unilateral abort *before* any commit decision — which cannot
      // coexist with a commit decision at all; flag everything else.
      report.violations.push_back(
          {txn,
           StrFormat("coordinator decided %s but sites enforced %s",
                     ToString(*f.decided).c_str(),
                     ToString(*all_enforced.begin()).c_str())});
    }
  }
  return report;
}

}  // namespace prany
