// Operational-correctness checker (Definition 1 of the paper).
//
// The integration of ACPs is operationally correct iff
//   (1) coordinator and participants reach consistent decisions regardless
//       of failures (functional correctness / atomicity),
//   (2) the coordinator can eventually discard all information pertaining
//       to terminated transactions from its protocol table and garbage
//       collect its log,
//   (3) all participants can eventually forget transactions and garbage
//       collect their logs.
//
// Clause 1 is evaluated over the history; clauses 2 and 3 are evaluated
// over the sites' end-of-run state (protocol/participant tables and
// unreleased log transactions) once the system has quiesced. C2PC fails
// clause 2 by construction (Theorem 2); PrAny passes all three
// (Theorem 3).

#ifndef PRANY_HISTORY_OPERATIONAL_CHECKER_H_
#define PRANY_HISTORY_OPERATIONAL_CHECKER_H_

#include <set>
#include <string>
#include <vector>

#include "history/atomicity_checker.h"
#include "history/event_log.h"

namespace prany {

/// End-of-run snapshot of one site, assembled by the harness.
struct SiteEndState {
  SiteId site = kInvalidSite;
  size_t coord_table_size = 0;       ///< In-flight protocol-table entries.
  size_t participant_entries = 0;    ///< In-flight participant entries.
  std::set<TxnId> unreleased_txns;   ///< Log records not GC-able.
  size_t stable_log_records = 0;
};

/// Result of the Definition-1 evaluation.
struct OperationalReport {
  AtomicityReport atomicity;                   ///< Clause 1.
  bool coordinators_forget = true;             ///< Clause 2.
  bool participants_forget = true;             ///< Clause 3.
  std::vector<std::string> problems;

  bool ok() const {
    return atomicity.ok() && coordinators_forget && participants_forget;
  }
  std::string ToString() const;
};

/// Evaluates Definition 1 over a quiesced run.
class OperationalChecker {
 public:
  static OperationalReport Check(const EventLog& history,
                                 const std::vector<SiteEndState>& sites);
};

}  // namespace prany

#endif  // PRANY_HISTORY_OPERATIONAL_CHECKER_H_
