// Write-ahead-logging discipline checker over a structured trace.
//
// The paper's protocols are defined as much by *when* records hit stable
// storage as by which messages flow: a decision message must never outrun
// its forced decision record, a yes vote must never outrun the forced
// PREPARED record, and an enforcement that the traits table says is
// force-logged must actually have been force-logged first. These are the
// invariants whose violation would re-open exactly the windows the
// presumptions paper closes, so the model checker runs this oracle over
// every explored execution.
//
// Rules (all conditional on both events appearing in the trace, so
// protocols that legitimately skip a record — e.g. a PrA coordinator's
// unlogged abort — are not flagged):
//   R1 force-before-send (coordinator): when a site both appends a
//      COMMIT/ABORT record and sends DECISION(outcome) for a transaction,
//      the first such append must be forced and precede the first send.
//   R2 prepared-before-vote (participant): the first VOTE(yes) a site
//      sends for a transaction must be preceded by its forced PREPARED
//      append.
//   R3 log-before-enforce (participant): when a prepared participant
//      (forced PREPARED append precedes the enforcement) enforces an
//      outcome its protocol force-logs per ParticipantForcesDecision, a
//      forced decision record must precede the enforcement. Vote-no
//      unilateral aborts and footnote-5 no-memory acknowledgements write
//      no records and are exempt by the PREPARED precondition.
//   R4 initiation-before-prepare (coordinator): an INITIATION append must
//      be forced and precede the first PREPARE sent for its transaction.
// INQUIRY_REPLY sends are deliberately exempt: answering by presumption
// without any log access is the defining feature of presumed protocols.

#ifndef PRANY_HISTORY_WAL_DISCIPLINE_CHECKER_H_
#define PRANY_HISTORY_WAL_DISCIPLINE_CHECKER_H_

#include <map>
#include <string>
#include <vector>

#include "common/trace.h"

namespace prany {

/// One detected WAL-discipline violation.
struct WalViolation {
  SiteId site = kInvalidSite;
  TxnId txn = kInvalidTxn;
  std::string rule;  ///< "force-before-send", "prepared-before-vote", ...
  std::string description;
};

/// Result of a WAL-discipline check.
struct WalDisciplineReport {
  std::vector<WalViolation> violations;
  uint64_t events_checked = 0;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

/// Checks logging discipline over a recorded trace.
class WalDisciplineChecker {
 public:
  /// `participant_protocols` maps participant sites to their base protocol
  /// (needed for R3's force-logging obligation); sites absent from the map
  /// are exempt from R3.
  static WalDisciplineReport Check(
      const std::vector<TraceEvent>& trace,
      const std::map<SiteId, ProtocolKind>& participant_protocols);
};

}  // namespace prany

#endif  // PRANY_HISTORY_WAL_DISCIPLINE_CHECKER_H_
