#include "history/event_log.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace prany {

std::string ToString(SigEventType type) {
  switch (type) {
    case SigEventType::kTxnSubmitted:
      return "TxnSubmitted";
    case SigEventType::kCoordDecide:
      return "Decide";
    case SigEventType::kCoordForget:
      return "DeletePT";
    case SigEventType::kCoordInquiryRecv:
      return "Inquiry";
    case SigEventType::kCoordRespond:
      return "Respond";
    case SigEventType::kPartPrepared:
      return "Prepared";
    case SigEventType::kPartEnforce:
      return "Enforce";
    case SigEventType::kPartForget:
      return "PartForget";
    case SigEventType::kSiteCrash:
      return "Crash";
    case SigEventType::kSiteRecover:
      return "Recover";
  }
  return "Unknown";
}

std::string SigEvent::ToString() const {
  std::string out = StrFormat(
      "#%llu t=%llu %s site=%u", static_cast<unsigned long long>(seq),
      static_cast<unsigned long long>(time),
      prany::ToString(type).c_str(), site);
  if (txn != kInvalidTxn) {
    out += StrFormat(" txn=%llu", static_cast<unsigned long long>(txn));
  }
  if (outcome.has_value()) {
    out += StrFormat(" outcome=%s", prany::ToString(*outcome).c_str());
  }
  if (peer != kInvalidSite) {
    out += StrFormat(" peer=%u", peer);
  }
  if (by_presumption) {
    out += " by_presumption";
  }
  return out;
}

const SigEvent& EventLog::Record(SigEvent event) {
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  if (event.type == SigEventType::kCoordDecide) {
    MutexLock lock(decided_mu_);
    decided_txns_.insert(event.txn);
  }
  Shard& shard = shards_[event.seq & (kShards - 1)];
  const SigEvent* stored;
  {
    MutexLock lock(shard.mu);
    shard.events.push_back(std::move(event));
    stored = &shard.events.back();
  }
  // Notify outside the lock so the observer may call back into readers.
  // The stored event is immutable once published and the deque never
  // relocates it, so the reference is safe to hand out.
  if (observer_) observer_(*stored);
  return *stored;
}

const std::deque<SigEvent>& EventLog::events() const {
  MutexLock merged_lock(merged_mu_);
  const uint64_t claimed = next_seq_.load(std::memory_order_acquire) - 1;
  if (merged_count_ == claimed) return merged_;
  std::vector<SigEvent> all;
  all.reserve(static_cast<size_t>(claimed));
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    all.insert(all.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const SigEvent& a, const SigEvent& b) { return a.seq < b.seq; });
  merged_.assign(std::make_move_iterator(all.begin()),
                 std::make_move_iterator(all.end()));
  // A recorder racing this merge may have claimed a seq it has not yet
  // published; the merged view then covers fewer events than were
  // claimed, the counts mismatch, and the next call rebuilds.
  merged_count_ = merged_.size();
  return merged_;
}

std::vector<const SigEvent*> EventLog::ForTxn(TxnId txn) const {
  std::vector<const SigEvent*> out;
  for (const SigEvent& e : events()) {
    if (e.txn == txn) out.push_back(&e);
  }
  return out;
}

const SigEvent* EventLog::FirstWhere(
    const std::function<bool(const SigEvent&)>& pred) const {
  for (const SigEvent& e : events()) {
    if (pred(e)) return &e;
  }
  return nullptr;
}

std::vector<TxnId> EventLog::Txns() const {
  std::set<TxnId> seen;
  for (const SigEvent& e : events()) {
    if (e.txn != kInvalidTxn) seen.insert(e.txn);
  }
  return std::vector<TxnId>(seen.begin(), seen.end());
}

void EventLog::Clear() {
  MutexLock merged_lock(merged_mu_);
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.events.clear();
  }
  {
    MutexLock lock(decided_mu_);
    decided_txns_.clear();
  }
  merged_.clear();
  merged_count_ = 0;
  next_seq_.store(1, std::memory_order_relaxed);
}

bool EventLog::HasDecide(TxnId txn) const {
  MutexLock lock(decided_mu_);
  return decided_txns_.count(txn) != 0;
}

std::string EventLog::ToString() const {
  std::ostringstream out;
  for (const SigEvent& e : events()) {
    out << e.ToString() << "\n";
  }
  return out.str();
}

}  // namespace prany
