#include "history/event_log.h"

#include <set>
#include <sstream>

#include "common/string_util.h"

namespace prany {

std::string ToString(SigEventType type) {
  switch (type) {
    case SigEventType::kTxnSubmitted:
      return "TxnSubmitted";
    case SigEventType::kCoordDecide:
      return "Decide";
    case SigEventType::kCoordForget:
      return "DeletePT";
    case SigEventType::kCoordInquiryRecv:
      return "Inquiry";
    case SigEventType::kCoordRespond:
      return "Respond";
    case SigEventType::kPartPrepared:
      return "Prepared";
    case SigEventType::kPartEnforce:
      return "Enforce";
    case SigEventType::kPartForget:
      return "PartForget";
    case SigEventType::kSiteCrash:
      return "Crash";
    case SigEventType::kSiteRecover:
      return "Recover";
  }
  return "Unknown";
}

std::string SigEvent::ToString() const {
  std::string out = StrFormat(
      "#%llu t=%llu %s site=%u", static_cast<unsigned long long>(seq),
      static_cast<unsigned long long>(time),
      prany::ToString(type).c_str(), site);
  if (txn != kInvalidTxn) {
    out += StrFormat(" txn=%llu", static_cast<unsigned long long>(txn));
  }
  if (outcome.has_value()) {
    out += StrFormat(" outcome=%s", prany::ToString(*outcome).c_str());
  }
  if (peer != kInvalidSite) {
    out += StrFormat(" peer=%u", peer);
  }
  if (by_presumption) {
    out += " by_presumption";
  }
  return out;
}

const SigEvent& EventLog::Record(SigEvent event) {
  const SigEvent* stored;
  SigEvent copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    event.seq = next_seq_++;
    if (event.type == SigEventType::kCoordDecide) {
      decided_txns_.insert(event.txn);
    }
    events_.push_back(std::move(event));
    stored = &events_.back();
    if (observer_) copy = *stored;
  }
  // Notify outside the lock so the observer may call back into readers.
  if (observer_) observer_(copy);
  return *stored;
}

std::vector<const SigEvent*> EventLog::ForTxn(TxnId txn) const {
  std::vector<const SigEvent*> out;
  for (const SigEvent& e : events_) {
    if (e.txn == txn) out.push_back(&e);
  }
  return out;
}

const SigEvent* EventLog::FirstWhere(
    const std::function<bool(const SigEvent&)>& pred) const {
  for (const SigEvent& e : events_) {
    if (pred(e)) return &e;
  }
  return nullptr;
}

std::vector<TxnId> EventLog::Txns() const {
  std::set<TxnId> seen;
  for (const SigEvent& e : events_) {
    if (e.txn != kInvalidTxn) seen.insert(e.txn);
  }
  return std::vector<TxnId>(seen.begin(), seen.end());
}

void EventLog::Clear() {
  events_.clear();
  decided_txns_.clear();
  next_seq_ = 1;
}

bool EventLog::HasDecide(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return decided_txns_.count(txn) != 0;
}

std::string EventLog::ToString() const {
  std::ostringstream out;
  for (const SigEvent& e : events_) {
    out << e.ToString() << "\n";
  }
  return out.str();
}

}  // namespace prany
