#include "history/wal_discipline_checker.h"

#include <optional>
#include <utility>

#include "common/string_util.h"
#include "protocol/protocol_traits.h"

namespace prany {

namespace {

/// Per-(site, txn) digest of the trace positions the rules compare.
///
/// Decision appends are split by writing role (the append event's `detail`
/// carries "coord"/"part"): a dual-role site interleaves both roles'
/// records for one transaction, and each rule constrains one role —
/// R1 the coordinator's decision record, R3 the participant's. An event
/// without a role tag (hand-built traces) conservatively feeds both.
struct SiteTxnFacts {
  // Appends (trace index of the first occurrence; forced flag of that
  // first occurrence).
  std::optional<size_t> initiation_append;
  bool initiation_forced = false;
  std::optional<size_t> forced_prepared_append;
  // Coordinator-side decision appends (rule R1).
  std::optional<size_t> commit_append;    // first, any force flag
  bool commit_append_forced = false;
  std::optional<size_t> abort_append;
  bool abort_append_forced = false;
  // Forced decision appends from either role (rule R3): on a dual-role
  // site the co-located coordinator's forced decision record in the same
  // physical log makes the outcome durable for the participant too (its
  // recovery redoes from that record without writing its own).
  std::optional<size_t> forced_commit_append;
  std::optional<size_t> forced_abort_append;

  // Sends.
  std::optional<size_t> first_prepare_send;
  std::optional<size_t> first_yes_vote_send;
  std::optional<size_t> first_commit_decision_send;
  std::optional<size_t> first_abort_decision_send;

  // Enforcements (every occurrence, in trace order).
  std::vector<std::pair<size_t, Outcome>> enforces;
};

const char* OutcomeName(Outcome o) {
  return o == Outcome::kCommit ? "commit" : "abort";
}

}  // namespace

WalDisciplineReport WalDisciplineChecker::Check(
    const std::vector<TraceEvent>& trace,
    const std::map<SiteId, ProtocolKind>& participant_protocols) {
  WalDisciplineReport report;
  report.events_checked = trace.size();

  std::map<std::pair<SiteId, TxnId>, SiteTxnFacts> facts;
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    if (e.site == kInvalidSite || e.txn == kInvalidTxn) continue;
    SiteTxnFacts& f = facts[{e.site, e.txn}];
    switch (e.kind) {
      case TraceEventKind::kWalAppend:
        if (e.label == "INITIATION" && !f.initiation_append) {
          f.initiation_append = i;
          f.initiation_forced = e.forced;
        } else if (e.label == "PREPARED" && e.forced &&
                   !f.forced_prepared_append) {
          f.forced_prepared_append = i;
        } else if (e.label == "COMMIT" || e.label == "ABORT") {
          const bool coord_side = e.detail != "part";
          const bool is_commit = e.label == "COMMIT";
          if (coord_side) {
            auto& append = is_commit ? f.commit_append : f.abort_append;
            bool& append_forced =
                is_commit ? f.commit_append_forced : f.abort_append_forced;
            if (!append) {
              append = i;
              append_forced = e.forced;
            }
          }
          if (e.forced) {
            auto& forced = is_commit ? f.forced_commit_append
                                     : f.forced_abort_append;
            if (!forced) forced = i;
          }
        }
        break;
      case TraceEventKind::kMsgSend:
        if (e.label == "PREPARE" && !f.first_prepare_send) {
          f.first_prepare_send = i;
        } else if (e.label == "VOTE" && e.detail == "yes" &&
                   !f.first_yes_vote_send) {
          f.first_yes_vote_send = i;
        } else if (e.label == "DECISION" && e.outcome.has_value()) {
          auto& slot = *e.outcome == Outcome::kCommit
                           ? f.first_commit_decision_send
                           : f.first_abort_decision_send;
          if (!slot) slot = i;
        }
        break;
      case TraceEventKind::kPartEnforce:
        if (e.outcome.has_value()) f.enforces.emplace_back(i, *e.outcome);
        break;
      default:
        break;
    }
  }

  auto violate = [&report](SiteId site, TxnId txn, const char* rule,
                           std::string description) {
    report.violations.push_back(
        WalViolation{site, txn, rule, std::move(description)});
  };

  for (const auto& [key, f] : facts) {
    const auto [site, txn] = key;

    // R1: decision record (when written) is forced and precedes the first
    // matching decision send from the same site.
    for (Outcome o : {Outcome::kCommit, Outcome::kAbort}) {
      const bool is_commit = o == Outcome::kCommit;
      const auto& append = is_commit ? f.commit_append : f.abort_append;
      const bool append_forced =
          is_commit ? f.commit_append_forced : f.abort_append_forced;
      const auto& send = is_commit ? f.first_commit_decision_send
                                   : f.first_abort_decision_send;
      if (!append || !send) continue;
      if (!append_forced) {
        violate(site, txn, "force-before-send",
                StrFormat("site %u sent DECISION(%s) for txn %llu but its "
                          "first %s record was appended without force",
                          site, OutcomeName(o),
                          static_cast<unsigned long long>(txn),
                          OutcomeName(o)));
      } else if (*append > *send) {
        violate(site, txn, "force-before-send",
                StrFormat("site %u sent DECISION(%s) for txn %llu before "
                          "forcing the %s record",
                          site, OutcomeName(o),
                          static_cast<unsigned long long>(txn),
                          OutcomeName(o)));
      }
    }

    // R2: yes vote implies an earlier forced PREPARED record.
    if (f.first_yes_vote_send &&
        (!f.forced_prepared_append ||
         *f.forced_prepared_append > *f.first_yes_vote_send)) {
      violate(site, txn, "prepared-before-vote",
              StrFormat("site %u voted yes for txn %llu without a forced "
                        "PREPARED record preceding the vote",
                        site, static_cast<unsigned long long>(txn)));
    }

    // R3: a prepared participant enforcing a force-logged outcome must have
    // the forced decision record first.
    auto proto_it = participant_protocols.find(site);
    if (proto_it != participant_protocols.end() && f.forced_prepared_append) {
      for (const auto& [idx, outcome] : f.enforces) {
        if (*f.forced_prepared_append > idx) continue;  // not prepared yet
        if (!ParticipantForcesDecision(proto_it->second, outcome)) continue;
        const auto& forced = outcome == Outcome::kCommit
                                 ? f.forced_commit_append
                                 : f.forced_abort_append;
        if (!forced || *forced > idx) {
          violate(site, txn, "log-before-enforce",
                  StrFormat("site %u (%s) enforced %s for txn %llu while "
                            "prepared without a prior forced %s record",
                            site, ToString(proto_it->second).c_str(),
                            OutcomeName(outcome),
                            static_cast<unsigned long long>(txn),
                            OutcomeName(outcome)));
        }
      }
    }

    // R4: an INITIATION record is forced and precedes the first PREPARE.
    if (f.initiation_append) {
      if (!f.initiation_forced) {
        violate(site, txn, "initiation-before-prepare",
                StrFormat("site %u appended INITIATION for txn %llu "
                          "without force",
                          site, static_cast<unsigned long long>(txn)));
      } else if (f.first_prepare_send &&
                 *f.initiation_append > *f.first_prepare_send) {
        violate(site, txn, "initiation-before-prepare",
                StrFormat("site %u sent PREPARE for txn %llu before "
                          "forcing the INITIATION record",
                          site, static_cast<unsigned long long>(txn)));
      }
    }
  }
  return report;
}

std::string WalDisciplineReport::ToString() const {
  std::string out = StrFormat(
      "wal-discipline: %zu violation(s) over %llu trace events\n",
      violations.size(), static_cast<unsigned long long>(events_checked));
  for (const WalViolation& v : violations) {
    out += StrFormat("  [%s] %s\n", v.rule.c_str(), v.description.c_str());
  }
  return out;
}

}  // namespace prany
