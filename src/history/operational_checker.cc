#include "history/operational_checker.h"

#include <sstream>

#include "common/string_util.h"

namespace prany {

std::string OperationalReport::ToString() const {
  std::ostringstream out;
  out << "operational correctness: " << (ok() ? "OK" : "FAILED") << "\n";
  out << "  clause 1 (consistent decisions):   "
      << (atomicity.ok() ? "OK" : "VIOLATED") << "\n";
  out << "  clause 2 (coordinators forget):    "
      << (coordinators_forget ? "OK" : "FAILED") << "\n";
  out << "  clause 3 (participants forget):    "
      << (participants_forget ? "OK" : "FAILED") << "\n";
  for (const std::string& p : problems) {
    out << "  - " << p << "\n";
  }
  return out.str();
}

OperationalReport OperationalChecker::Check(
    const EventLog& history, const std::vector<SiteEndState>& sites) {
  OperationalReport report;
  report.atomicity = AtomicityChecker::Check(history);
  for (const AtomicityViolation& v : report.atomicity.violations) {
    report.problems.push_back(
        StrFormat("txn %llu: %s", static_cast<unsigned long long>(v.txn),
                  v.description.c_str()));
  }

  for (const SiteEndState& s : sites) {
    if (s.coord_table_size > 0) {
      report.coordinators_forget = false;
      report.problems.push_back(StrFormat(
          "site %u still holds %zu protocol-table entries at quiescence",
          s.site, s.coord_table_size));
    }
    if (s.participant_entries > 0) {
      report.participants_forget = false;
      report.problems.push_back(StrFormat(
          "site %u still holds %zu participant entries at quiescence",
          s.site, s.participant_entries));
    }
    if (!s.unreleased_txns.empty()) {
      // Attribute the leak to whichever role the site played; the harness
      // snapshot does not distinguish, so report it against both clauses
      // via a shared problem line and the coordinator clause (the only
      // protocol that leaks log records in this codebase is a
      // coordinator-side one).
      report.coordinators_forget = false;
      report.problems.push_back(StrFormat(
          "site %u cannot garbage collect %zu transactions from its log",
          s.site, s.unreleased_txns.size()));
    }
  }
  return report;
}

}  // namespace prany
