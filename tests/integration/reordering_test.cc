// Message reordering: with randomized per-message latency, messages of
// the same transaction overtake each other (votes arrive after the
// timeout-abort, retransmitted decisions race inquiry replies, prepares
// land after the coordinator decided). The protocols must converge to a
// correct quiescent state regardless.

#include <gtest/gtest.h>

#include "harness/run_result.h"
#include "harness/workload.h"

namespace prany {
namespace {

std::unique_ptr<System> JitterySystem(uint64_t seed, SimDuration min_lat,
                                      SimDuration max_lat) {
  SystemConfig cfg;
  cfg.seed = seed;
  cfg.max_events = 10'000'000;
  auto system = std::make_unique<System>(cfg);
  system->net().SetDefaultLatency(
      std::make_unique<UniformLatency>(min_lat, max_lat));
  system->AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system->AddSite(ProtocolKind::kPrN);
  system->AddSite(ProtocolKind::kPrA);
  system->AddSite(ProtocolKind::kPrC);
  return system;
}

TEST(ReorderingTest, ModerateJitterWorkload) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto system = JitterySystem(seed, 100, 5'000);
    WorkloadConfig wl;
    wl.num_txns = 40;
    wl.min_participants = 2;
    wl.max_participants = 3;
    wl.no_vote_probability = 0.2;
    wl.mean_interarrival_us = 1'000;
    wl.coordinators = {0};
    wl.participant_pool = {1, 2, 3};
    WorkloadGenerator gen(system.get(), wl);
    gen.GenerateAndSchedule();
    RunStats run = system->Run();
    ASSERT_FALSE(run.hit_event_limit) << "seed " << seed;
    RunSummary s = Summarize(*system);
    EXPECT_TRUE(s.AllCorrect()) << "seed " << seed << "\n" << s.ToString();
  }
}

TEST(ReorderingTest, LatencyExceedingVoteTimeout) {
  // Latencies can exceed the 50ms vote timeout: the coordinator aborts
  // while PREPAREs and votes are still in flight. Late-prepared
  // participants are resolved by their inquiries and the coordinator's
  // answers (from the table or by presumption).
  for (uint64_t seed = 20; seed <= 26; ++seed) {
    auto system = JitterySystem(seed, 1'000, 80'000);
    for (int i = 0; i < 10; ++i) {
      system->Submit(0, {1, 2, 3});
    }
    RunStats run = system->Run();
    ASSERT_FALSE(run.hit_event_limit) << "seed " << seed;
    RunSummary s = Summarize(*system);
    EXPECT_TRUE(s.AllCorrect()) << "seed " << seed << "\n" << s.ToString();
    // With these latencies some transactions must have timed out.
    EXPECT_GT(s.vote_timeouts + s.commits, 0);
  }
}

TEST(ReorderingTest, LateVoteAfterDecisionIsCountedAndIgnored) {
  auto system = JitterySystem(42, 100, 100);  // deterministic base
  // Slow down one vote past the timeout window using a slow link.
  system->net().SetLinkLatency(2, 0,
                               std::make_unique<FixedLatency>(70'000));
  system->Submit(0, {1, 2});
  system->Run();
  // The slow voter's YES arrived after the timeout abort.
  EXPECT_EQ(system->metrics().Get("coord.vote_timeout"), 1);
  EXPECT_GE(system->metrics().Get("coord.vote_after_decision") +
                system->metrics().Get("coord.vote_for_unknown_txn"),
            1);
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
}

TEST(ReorderingTest, JitterPlusLossPlusCrashes) {
  for (uint64_t seed = 30; seed <= 34; ++seed) {
    auto system = JitterySystem(seed, 100, 10'000);
    system->net().SetDropProbability(0.05);
    system->injector().SetRandomCrashes(0.004, 5'000, 120'000);
    system->injector().SetRandomCrashBudget(10);
    WorkloadConfig wl;
    wl.num_txns = 30;
    wl.min_participants = 2;
    wl.max_participants = 3;
    wl.no_vote_probability = 0.15;
    wl.coordinators = {0};
    wl.participant_pool = {1, 2, 3};
    WorkloadGenerator gen(system.get(), wl);
    gen.GenerateAndSchedule();
    RunStats run = system->Run();
    ASSERT_FALSE(run.hit_event_limit) << "seed " << seed;
    RunSummary s = Summarize(*system);
    EXPECT_TRUE(s.AllCorrect()) << "seed " << seed << "\n" << s.ToString();
  }
}

TEST(ReorderingTest, WithoutFifoLinksADecisionCanOvertakeItsPrepare) {
  // The model-boundary demonstration (see net/network.h): on a link with
  // arbitrary per-message reordering, an abort overtakes a slow PREPARE
  // to a PrC participant. Having no memory of the transaction, the
  // participant acknowledges the abort (footnote 5); the coordinator
  // forgets; the stale PREPARE then makes the participant prepared and
  // in-doubt, and the only available answer is the PrC presumption —
  // commit — while everyone else aborted. Even PrAny cannot survive
  // unordered channels; the paper's protocols assume session ordering.
  auto run = [](bool fifo) {
    SystemConfig cfg;
    cfg.seed = 5;
    System system(cfg);
    system.net().SetFifoLinks(fifo);
    system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
    system.AddSite(ProtocolKind::kPrN);
    system.AddSite(ProtocolKind::kPrC);
    // The PREPARE to the PrC site is pathologically slow (past the vote
    // timeout); every later 0->2 message is fast.
    system.net().SetLinkLatency(0, 2,
                                std::make_unique<FixedLatency>(80'000));
    TxnId txn = system.Submit(0, {1, 2});
    system.sim().ScheduleAt(100, [&system]() {
      system.net().SetLinkLatency(0, 2,
                                  std::make_unique<FixedLatency>(500));
    });
    system.Run();
    (void)txn;
    return AtomicityChecker::Check(system.history()).ok();
  };
  EXPECT_FALSE(run(/*fifo=*/false));  // unordered links: divergence
  EXPECT_TRUE(run(/*fifo=*/true));    // session ordering restores safety
}

TEST(BlockingTest, InDoubtParticipantBlocksWhileCoordinatorIsDown) {
  // The classic 2PC blocking property (the paper's premise: "ACPs are
  // blocking in the case of failures"): a prepared participant cannot
  // resolve while the coordinator is down — it stays in doubt, inquiring
  // fruitlessly — and resolves promptly once the coordinator recovers.
  SystemConfig cfg;
  cfg.seed = 50;
  System system(cfg);
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  TxnId txn = system.Submit(0, {1, 2});
  // Coordinator crashes after deciding commit (record durable, nothing
  // sent) and stays down 300ms.
  system.injector().CrashAtPoint(0, CrashPoint::kCoordAfterDecisionMade,
                                 txn, /*downtime=*/300'000);
  // While the coordinator is down, both participants are in doubt.
  system.sim().Run(1'000'000, /*until=*/200'000);
  EXPECT_TRUE(system.site(1)->participant()->IsInDoubt(txn));
  EXPECT_TRUE(system.site(2)->participant()->IsInDoubt(txn));
  EXPECT_GT(system.metrics().Get("net.msg.INQUIRY"), 2);
  // After recovery everything resolves.
  system.Run();
  EXPECT_FALSE(system.site(1)->participant()->IsInDoubt(txn));
  EXPECT_FALSE(system.site(2)->participant()->IsInDoubt(txn));
  EXPECT_TRUE(system.CheckOperational().ok())
      << system.CheckOperational().ToString();
}

}  // namespace
}  // namespace prany
