// §2 of the paper, step by step. The section opens with two worked
// examples of a PrC-speaking U2PC coordinator over one PrA and one PrC
// participant — a commit that works (with an ignored "violation" ack) and
// an abort that silently arms the atomicity bug. These tests walk the
// narrative and assert every observable the text mentions.

#include <gtest/gtest.h>

#include "harness/run_result.h"
#include "harness/system.h"

namespace prany {
namespace {

std::unique_ptr<System> Section2System(uint64_t seed = 1) {
  SystemConfig cfg;
  cfg.seed = seed;
  auto system = std::make_unique<System>(cfg);
  // "the coordinator and one of the participants employ PrC while the
  // other participant employs PrA"
  system->AddSite(ProtocolKind::kPrC, ProtocolKind::kU2PC,
                  ProtocolKind::kPrC);
  system->AddSite(ProtocolKind::kPrA);  // 1
  system->AddSite(ProtocolKind::kPrC);  // 2
  return system;
}

TEST(PaperSection2Test, FirstExampleCommitWithIgnoredAck) {
  // "In the event that the coordinator ... makes a commit final decision,
  // in accordance to PrC, the coordinator does not expect any commit
  // acknowledgment messages. However, the PrA participant will
  // acknowledge the commit decision. ... the coordinator will not
  // consider this message since this message is a violation of its
  // protocol."
  auto system = Section2System();
  TxnId txn = system->Submit(0, {1, 2});
  system->Run();

  // The commit succeeded at both participants.
  int commits = 0;
  for (const SigEvent& e : system->history().events()) {
    if (e.txn == txn && e.type == SigEventType::kPartEnforce) {
      EXPECT_EQ(*e.outcome, Outcome::kCommit);
      ++commits;
    }
  }
  EXPECT_EQ(commits, 2);

  // The PrA participant did send its commit ack...
  EXPECT_EQ(system->metrics().Get("net.msg.ACK"), 1);
  // ...and the coordinator did not consider it: having forgotten the
  // transaction the moment the commit record was forced, the ack arrives
  // for an unknown transaction and is dropped.
  EXPECT_EQ(system->metrics().Get("coord.ack_for_unknown_txn") +
                system->metrics().Get("coord.ignored_unexpected_ack"),
            1);

  // "it will be able to forget about the transaction ... once it makes
  // the commit final decision": the commit record is the last
  // coordinator-side write; no END record is ever written.
  EXPECT_EQ(system->site(0)->wal()->stats().appends, 2u);  // init + commit
  EXPECT_EQ(system->site(0)->coordinator()->table().Size(), 0u);
  EXPECT_TRUE(system->CheckOperational().ok());
}

TEST(PaperSection2Test, FirstExampleLateInquiryAnsweredByPrCPresumption) {
  // "Since the coordinator employs PrC, it will always be able to respond
  // to the inquiries of the participants in case of a failure with a
  // commit final decision, using the PrC presumption."
  auto system = Section2System();
  TxnId txn = system->Submit(0, {1, 2});
  // The PrC participant misses the commit and recovers much later.
  system->injector().CrashAtPoint(2, CrashPoint::kPartOnDecisionReceived,
                                  txn, /*downtime=*/400'000);
  system->Run();
  const SigEvent* respond = system->history().FirstWhere(
      [&](const SigEvent& e) {
        return e.txn == txn && e.type == SigEventType::kCoordRespond &&
               e.peer == 2;
      });
  ASSERT_NE(respond, nullptr);
  EXPECT_EQ(*respond->outcome, Outcome::kCommit);
  EXPECT_TRUE(respond->by_presumption);
  // Commit case: presumptions agree, everything stays correct.
  EXPECT_TRUE(system->CheckOperational().ok());
}

TEST(PaperSection2Test, SecondExampleAbortForgetsOnPrCAckAlone) {
  // "the coordinator forgets the outcome of the transaction once it has
  // received the acknowledgment of the PrC participant, knowing that the
  // PrA will never acknowledge such a decision."
  auto system = Section2System();
  TxnId txn = system->Submit(0, {1, 2});
  system->sim().ScheduleAt(800, [sys = system.get(), txn]() {
    sys->site(0)->coordinator()->ForceAbort(txn);
  });
  system->Run();
  // One ack total (the PrC participant's), and the transaction is gone
  // from the protocol table.
  EXPECT_EQ(system->metrics().Get("net.msg.ACK"), 1);
  EXPECT_EQ(system->site(0)->coordinator()->table().Size(), 0u);
  // Failure-free, the premature forgetting is invisible.
  EXPECT_TRUE(system->CheckAtomicity().ok());
}

TEST(PaperSection2Test, SecondExampleTheAtomicityViolation) {
  // "if the PrA participant fails after it has received the final outcome
  // but before writing it in its stable log, the participant will inquire
  // ... the coordinator ... will wrongly respond with a commit final
  // decision (using the PrC presumption) which clearly violates the
  // atomicity of the transaction."
  auto system = Section2System();
  TxnId txn = system->Submit(0, {1, 2});
  system->sim().ScheduleAt(800, [sys = system.get(), txn]() {
    sys->site(0)->coordinator()->ForceAbort(txn);
  });
  system->injector().CrashAtPoint(1, CrashPoint::kPartOnDecisionReceived,
                                  txn, /*downtime=*/400'000);
  system->Run();

  // The wrong reply happened, by presumption:
  const SigEvent* respond = system->history().FirstWhere(
      [&](const SigEvent& e) {
        return e.txn == txn && e.type == SigEventType::kCoordRespond &&
               e.peer == 1;
      });
  ASSERT_NE(respond, nullptr);
  EXPECT_EQ(*respond->outcome, Outcome::kCommit);
  EXPECT_TRUE(respond->by_presumption);

  // And the atomicity of the transaction is violated exactly as stated:
  std::map<SiteId, Outcome> enforced;
  for (const SigEvent& e : system->history().events()) {
    if (e.txn == txn && e.type == SigEventType::kPartEnforce) {
      enforced[e.site] = *e.outcome;
    }
  }
  EXPECT_EQ(enforced.at(1), Outcome::kCommit);  // PrA wrongly committed
  EXPECT_EQ(enforced.at(2), Outcome::kAbort);   // PrC aborted
  EXPECT_FALSE(system->CheckAtomicity().ok());
  EXPECT_FALSE(system->CheckSafeState().ok());
}

TEST(PaperSection2Test, PrAnyRepairsBothExamples) {
  // Re-run both §2 schedules under PrAny: the commit case answers the
  // PrC inquirer commit, the abort case answers the PrA inquirer abort —
  // "a PrAny coordinator dynamically adopts the presumption of an
  // inquiring participant's protocol" (§4.2).
  for (Outcome outcome : {Outcome::kCommit, Outcome::kAbort}) {
    SystemConfig cfg;
    System system(cfg);
    system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrAny);
    system.AddSite(ProtocolKind::kPrA);
    system.AddSite(ProtocolKind::kPrC);
    TxnId txn = system.Submit(0, {1, 2});
    if (outcome == Outcome::kAbort) {
      system.sim().ScheduleAt(800, [&system, txn]() {
        system.site(0)->coordinator()->ForceAbort(txn);
      });
    }
    SiteId victim = outcome == Outcome::kCommit ? 2 : 1;
    system.injector().CrashAtPoint(
        victim, CrashPoint::kPartOnDecisionReceived, txn, 400'000);
    system.Run();
    EXPECT_TRUE(system.CheckAtomicity().ok()) << ToString(outcome);
    EXPECT_TRUE(system.CheckSafeState().ok()) << ToString(outcome);
    EXPECT_TRUE(system.CheckOperational().ok()) << ToString(outcome);
  }
}

}  // namespace
}  // namespace prany
