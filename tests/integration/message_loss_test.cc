// Omission failures on the wire: every protocol message of every type can
// be lost; timeouts, retransmission, inquiries and presumptions must
// still drive every run to a correct, quiescent end state.

#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "harness/workload.h"

namespace prany {
namespace {

std::unique_ptr<System> MixedSystem(uint64_t seed, double drop_p,
                                    double dup_p = 0.0) {
  SystemConfig cfg;
  cfg.seed = seed;
  cfg.drop_probability = drop_p;
  cfg.duplicate_probability = dup_p;
  cfg.max_events = 5'000'000;
  auto system = std::make_unique<System>(cfg);
  system->AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system->AddSite(ProtocolKind::kPrN);
  system->AddSite(ProtocolKind::kPrA);
  system->AddSite(ProtocolKind::kPrC);
  return system;
}

TEST(MessageLossTest, TargetedLossOfEachMessageType) {
  struct Case {
    MessageType type;
    SiteId from, to;
  };
  // One run per lost message kind on a mixed {PrA, PrC} commit.
  std::vector<Case> cases = {
      {MessageType::kPrepare, 0, 2},   // PrA never hears the prepare
      {MessageType::kPrepare, 0, 3},
      {MessageType::kVote, 2, 0},      // a vote is lost -> timeout abort
      {MessageType::kVote, 3, 0},
      {MessageType::kDecision, 0, 2},  // decision lost -> inquiry
      {MessageType::kDecision, 0, 3},
      {MessageType::kAck, 2, 0},       // ack lost -> decision resend
  };
  for (const Case& c : cases) {
    auto system = MixedSystem(/*seed=*/17, /*drop_p=*/0.0);
    TxnId txn = system->Submit(0, {2, 3});
    system->net().DropNext(c.type, txn, c.from, c.to);
    RunStats run = system->Run();
    ASSERT_FALSE(run.hit_event_limit) << ToString(c.type);
    EXPECT_TRUE(system->CheckAtomicity().ok())
        << ToString(c.type) << " " << c.from << "->" << c.to;
    EXPECT_TRUE(system->CheckOperational().ok())
        << ToString(c.type) << "\n"
        << system->CheckOperational().ToString();
  }
}

TEST(MessageLossTest, LostVoteForcesTimeoutAbortNotInconsistency) {
  auto system = MixedSystem(29, 0.0);
  TxnId txn = system->Submit(0, {2, 3});
  system->net().DropNext(MessageType::kVote, txn, 2, 0);
  system->Run();
  EXPECT_EQ(system->metrics().Get("coord.vote_timeout"), 1);
  EXPECT_EQ(system->metrics().Get("coord.decide_abort"), 1);
  // The prepared participant whose vote vanished still aborts (via the
  // abort decision or its own inquiry).
  int aborts = 0;
  for (const SigEvent& e : system->history().events()) {
    if (e.type == SigEventType::kPartEnforce) {
      EXPECT_EQ(*e.outcome, Outcome::kAbort);
      ++aborts;
    }
  }
  EXPECT_EQ(aborts, 2);
}

TEST(MessageLossTest, LostPrCCommitDecisionResolvesByPresumption) {
  // PrC commits draw no acks, so the coordinator cannot detect the loss;
  // the participant's own inquiry plus the commit presumption must close
  // the gap — the classic argument for PrC.
  auto system = MixedSystem(31, 0.0);
  TxnId txn = system->Submit(0, {2, 3});
  system->net().DropNext(MessageType::kDecision, txn, 0, 3);
  system->Run();
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
  const SigEvent* enforce = system->history().FirstWhere(
      [&](const SigEvent& e) {
        return e.txn == txn && e.site == 3 &&
               e.type == SigEventType::kPartEnforce;
      });
  ASSERT_NE(enforce, nullptr);
  EXPECT_EQ(*enforce->outcome, Outcome::kCommit);
}

class RandomLossTest : public ::testing::TestWithParam<double> {};

TEST_P(RandomLossTest, WorkloadSurvivesUniformLoss) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto system = MixedSystem(seed, GetParam());
    WorkloadConfig cfg;
    cfg.num_txns = 30;
    cfg.min_participants = 2;
    cfg.max_participants = 3;
    cfg.no_vote_probability = 0.2;
    cfg.coordinators = {0};
    cfg.participant_pool = {1, 2, 3};
    WorkloadGenerator gen(system.get(), cfg);
    gen.GenerateAndSchedule();
    RunStats run = system->Run();
    ASSERT_FALSE(run.hit_event_limit) << "seed " << seed;
    EXPECT_TRUE(system->CheckAtomicity().ok()) << "seed " << seed;
    EXPECT_TRUE(system->CheckSafeState().ok()) << "seed " << seed;
    EXPECT_TRUE(system->CheckOperational().ok())
        << "seed " << seed << "\n"
        << system->CheckOperational().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, RandomLossTest,
                         ::testing::Values(0.01, 0.05, 0.15),
                         [](const auto& info) {
                           return "p" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST(MessageLossTest, DuplicationIsHarmless) {
  auto system = MixedSystem(37, /*drop_p=*/0.0, /*dup_p=*/1.0);
  system->Submit(0, {1, 2, 3});
  RunStats run = system->Run();
  ASSERT_FALSE(run.hit_event_limit);
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
  EXPECT_GT(system->net().stats().messages_duplicated, 0u);
}

TEST(MessageLossTest, LossPlusDuplicationPlusCrash) {
  auto system = MixedSystem(41, /*drop_p=*/0.05, /*dup_p=*/0.2);
  TxnId txn = system->Submit(0, {2, 3});
  system->injector().CrashAtPoint(3, CrashPoint::kPartOnDecisionReceived,
                                  txn, /*downtime=*/200'000);
  RunStats run = system->Run();
  ASSERT_FALSE(run.hit_event_limit);
  EXPECT_TRUE(system->CheckAtomicity().ok());
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
}

TEST(MessageLossTest, TemporaryPartitionHealsAndCompletes) {
  auto system = MixedSystem(43, 0.0);
  TxnId txn = system->Submit(0, {2, 3});
  (void)txn;
  // Partition the coordinator from the PrC participant during the
  // decision phase; heal after 200ms.
  system->sim().ScheduleAt(900, [sys = system.get()]() {
    sys->net().Partition({0}, {3});
  });
  system->sim().ScheduleAt(200'000, [sys = system.get()]() {
    sys->net().HealPartition();
  });
  RunStats run = system->Run();
  ASSERT_FALSE(run.hit_event_limit);
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
  EXPECT_GT(system->net().stats().messages_blocked, 0u);
}

}  // namespace
}  // namespace prany
