// Exhaustive single-omission sweeps: for every protocol configuration and
// outcome, every individual message of the flow is dropped in its own
// run. Retransmission (push), inquiries (pull) and presumptions must
// absorb any single loss — a model-checking-flavoured guarantee the
// random loss tests only sample.

#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace prany {
namespace {

std::string JoinFailures(const SweepResult& sweep) {
  std::string all;
  for (const auto& d : sweep.failure_descriptions) all += d + "\n";
  return all;
}

struct OmissionCase {
  ProtocolKind coordinator;
  ProtocolKind native;
  std::vector<ProtocolKind> participants;
};

class OmissionSweepTest : public ::testing::TestWithParam<OmissionCase> {};

TEST_P(OmissionSweepTest, EverySingleMessageLossIsAbsorbed) {
  const OmissionCase& c = GetParam();
  for (Outcome outcome : {Outcome::kCommit, Outcome::kAbort}) {
    SweepResult sweep = RunSingleOmissionSweep(c.coordinator, c.native,
                                               c.participants, outcome);
    EXPECT_GT(sweep.scenarios, 4u);
    EXPECT_TRUE(sweep.AllCorrect())
        << ToString(outcome) << "\n"
        << JoinFailures(sweep);
  }
}

std::string CaseName(const ::testing::TestParamInfo<OmissionCase>& info) {
  std::string name = ToString(info.param.coordinator);
  if (info.param.coordinator == ProtocolKind::kU2PC) {
    name += "_" + ToString(info.param.native);
  }
  for (ProtocolKind p : info.param.participants) name += ToString(p);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, OmissionSweepTest,
    ::testing::Values(
        // Homogeneous pure protocols.
        OmissionCase{ProtocolKind::kPrN, ProtocolKind::kPrN,
                     {ProtocolKind::kPrN, ProtocolKind::kPrN}},
        OmissionCase{ProtocolKind::kPrA, ProtocolKind::kPrA,
                     {ProtocolKind::kPrA, ProtocolKind::kPrA}},
        OmissionCase{ProtocolKind::kPrC, ProtocolKind::kPrC,
                     {ProtocolKind::kPrC, ProtocolKind::kPrC}},
        // PrAny over the paper's mix and the three-way mix.
        OmissionCase{ProtocolKind::kPrAny, ProtocolKind::kPrN,
                     {ProtocolKind::kPrA, ProtocolKind::kPrC}},
        OmissionCase{ProtocolKind::kPrAny, ProtocolKind::kPrN,
                     {ProtocolKind::kPrN, ProtocolKind::kPrA,
                      ProtocolKind::kPrC}}),
    CaseName);

TEST(OmissionSweepTest, SingleMessageLossAloneBreaksU2PC) {
  // A sharper form of Theorem 1 surfaced by the sweep: no site ever
  // crashes — losing just the abort DECISION to the PrA participant is
  // enough. The PrA site stays in doubt, the PrC participant's ack lets
  // the U2PC(PrC) coordinator forget, and the inquiry is answered with
  // the native commit presumption.
  SweepResult abort_sweep = RunSingleOmissionSweep(
      ProtocolKind::kU2PC, ProtocolKind::kPrC,
      {ProtocolKind::kPrA, ProtocolKind::kPrC}, Outcome::kAbort);
  EXPECT_GT(abort_sweep.atomicity_failures, 0u);
  // The agreeing-presumption direction stays safe under any single loss.
  SweepResult commit_sweep = RunSingleOmissionSweep(
      ProtocolKind::kU2PC, ProtocolKind::kPrC,
      {ProtocolKind::kPrA, ProtocolKind::kPrC}, Outcome::kCommit);
  EXPECT_TRUE(commit_sweep.AllCorrect());
}

TEST(OmissionSweepTest, DoubleOmissionOnThePaperMix) {
  // Drop every *pair* of the first 8 messages of the PrAny commit flow —
  // coarse but cheap double-fault coverage.
  for (uint64_t i = 1; i <= 8; ++i) {
    for (uint64_t j = i + 1; j <= 8; ++j) {
      SystemConfig cfg;
      cfg.seed = 3;
      cfg.max_events = 500'000;
      System system(cfg);
      system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
      system.AddSite(ProtocolKind::kPrA);
      system.AddSite(ProtocolKind::kPrC);
      system.net().DropSendIndex(i);
      system.net().DropSendIndex(j);
      system.Submit(0, {1, 2});
      RunStats run = system.Run();
      ASSERT_FALSE(run.hit_event_limit) << i << "," << j;
      EXPECT_TRUE(system.CheckAtomicity().ok() &&
                  system.CheckOperational().ok())
          << "dropped #" << i << " and #" << j << "\n"
          << system.CheckOperational().ToString();
    }
  }
}

}  // namespace
}  // namespace prany
