// Theorem 2, executably: a C2PC coordinator achieves functional
// correctness (atomicity) but not operational correctness — entries for
// transactions with a mixed-presumption participant set can never be
// deleted from its protocol table, and their log records can never be
// garbage collected.

#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "harness/workload.h"

namespace prany {
namespace {

std::unique_ptr<System> C2pcSystem() {
  SystemConfig cfg;
  cfg.seed = 5;
  auto system = std::make_unique<System>(cfg);
  system->AddSite(ProtocolKind::kPrN, ProtocolKind::kC2PC);
  system->AddSite(ProtocolKind::kPrN);  // 1
  system->AddSite(ProtocolKind::kPrA);  // 2
  system->AddSite(ProtocolKind::kPrC);  // 3
  return system;
}

TEST(Theorem2Test, PartI_CommitWithPrCParticipantNeverForgets) {
  auto system = C2pcSystem();
  TxnId txn = system->Submit(0, {2, 3});  // {PrA, PrC}, commit
  system->Run();
  // Functionally correct: both participants committed.
  EXPECT_TRUE(system->CheckAtomicity().ok());
  // Operationally incorrect: the PrC participant never acks a commit, so
  // the entry and its log records are stuck.
  EXPECT_EQ(system->site(0)->coordinator()->table().Size(), 1u);
  EXPECT_EQ(system->site(0)->wal()->UnreleasedTxns().count(txn), 1u);
  OperationalReport op = system->CheckOperational();
  EXPECT_TRUE(op.atomicity.ok());
  EXPECT_FALSE(op.coordinators_forget);
}

TEST(Theorem2Test, PartIII_AbortWithPrAParticipantNeverForgets) {
  auto system = C2pcSystem();
  TxnId txn = system->Submit(0, {2, 3});
  system->sim().ScheduleAt(800, [sys = system.get(), txn]() {
    sys->site(0)->coordinator()->ForceAbort(txn);
  });
  system->Run();
  EXPECT_TRUE(system->CheckAtomicity().ok());
  // The PrA participant never acks an abort.
  EXPECT_EQ(system->site(0)->coordinator()->table().Size(), 1u);
  EXPECT_FALSE(system->CheckOperational().ok());
}

TEST(Theorem2Test, CompatibleOutcomesDoComplete) {
  // The stuckness is outcome-dependent: aborts complete against
  // {PrN, PrC} (both ack aborts), commits against {PrN, PrA}.
  auto commit_system = C2pcSystem();
  commit_system->Submit(0, {1, 2});  // {PrN, PrA} commit: both ack
  commit_system->Run();
  EXPECT_TRUE(commit_system->CheckOperational().ok())
      << commit_system->CheckOperational().ToString();

  auto abort_system = C2pcSystem();
  TxnId txn = abort_system->Submit(0, {1, 3});  // {PrN, PrC}
  abort_system->sim().ScheduleAt(800, [sys = abort_system.get(), txn]() {
    sys->site(0)->coordinator()->ForceAbort(txn);
  });
  abort_system->Run();
  EXPECT_TRUE(abort_system->CheckOperational().ok());
}

TEST(Theorem2Test, ProtocolTableGrowsWithoutBoundUnderMixedLoad) {
  // The operational consequence: table size is monotone in the number of
  // mixed-presumption transactions — C2PC "remembers forever".
  auto system = C2pcSystem();
  constexpr int kTxns = 40;
  for (int i = 0; i < kTxns; ++i) {
    system->Submit(0, {2, 3});  // every commit pins an entry
  }
  system->Run();
  EXPECT_TRUE(system->CheckAtomicity().ok());
  EXPECT_EQ(system->site(0)->coordinator()->table().Size(),
            static_cast<size_t>(kTxns));
  EXPECT_EQ(system->site(0)->wal()->UnreleasedTxns().size(),
            static_cast<size_t>(kTxns));
}

TEST(Theorem2Test, PrAnyUnderTheSameLoadStaysFlat) {
  // The control for the memory experiment (and Theorem 3's clause 2).
  SystemConfig cfg;
  cfg.seed = 5;
  System system(cfg);
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  for (int i = 0; i < 40; ++i) system.Submit(0, {1, 2});
  system.Run();
  EXPECT_EQ(system.site(0)->coordinator()->table().Size(), 0u);
  EXPECT_TRUE(system.site(0)->wal()->UnreleasedTxns().empty());
  EXPECT_TRUE(system.CheckOperational().ok());
}

TEST(Theorem2Test, StuckEntriesStillAnswerInquiriesCorrectly) {
  // Functional correctness is preserved *because* C2PC never presumes:
  // a late inquirer is answered from the table entry that never died.
  auto system = C2pcSystem();
  TxnId txn = system->Submit(0, {2, 3});
  // The PrC participant crashes on the decision and recovers much later.
  system->injector().CrashAtPoint(3, CrashPoint::kPartOnDecisionReceived,
                                  txn, /*downtime=*/1'000'000);
  system->Run();
  EXPECT_TRUE(system->CheckAtomicity().ok());
  EXPECT_TRUE(system->CheckSafeState().ok());
  // It answered from memory, not by presumption.
  EXPECT_EQ(system->metrics().Get("coord.answered_by_presumption"), 0);
  const SigEvent* respond =
      system->history().FirstWhere([&](const SigEvent& e) {
        return e.txn == txn && e.type == SigEventType::kCoordRespond;
      });
  ASSERT_NE(respond, nullptr);
  EXPECT_EQ(*respond->outcome, Outcome::kCommit);
  EXPECT_FALSE(respond->by_presumption);
}

TEST(Theorem2Test, ResendCapKeepsRunsQuiescent) {
  // Without the retransmission cap a stuck entry would retransmit
  // forever; verify the run quiesces and the resend count respects the
  // cap.
  auto system = C2pcSystem();
  system->Submit(0, {2, 3});
  RunStats stats = system->Run();
  EXPECT_FALSE(stats.hit_event_limit);
  EXPECT_LE(system->metrics().Get("coord.decision_resend"), 3);
}

TEST(Theorem2Test, MixedWorkloadFunctionallyCorrectOperationallyLeaky) {
  auto system = C2pcSystem();
  WorkloadConfig cfg;
  cfg.num_txns = 60;
  cfg.min_participants = 2;
  cfg.max_participants = 3;
  cfg.no_vote_probability = 0.25;
  cfg.coordinators = {0};
  cfg.participant_pool = {1, 2, 3};
  WorkloadGenerator gen(system.get(), cfg);
  gen.GenerateAndSchedule();
  system->Run();
  EXPECT_TRUE(system->CheckAtomicity().ok());
  EXPECT_FALSE(system->CheckOperational().ok());
  EXPECT_GT(system->site(0)->coordinator()->table().Size(), 0u);
}

}  // namespace
}  // namespace prany
