// Randomized soak: many seeds x (message loss + duplication + random
// crash injection at protocol points + timed crashes) over a mixed
// federation, asserting full correctness for PrAny on every run — the
// statistical complement of the exhaustive sweeps.

#include <gtest/gtest.h>

#include "harness/run_result.h"
#include "harness/scenario.h"
#include "harness/workload.h"

namespace prany {
namespace {

RunSummary SoakOnce(uint64_t seed, ProtocolKind coordinator_kind,
                    double drop_p, double crash_p, bool* quiesced) {
  SystemConfig cfg;
  cfg.seed = seed;
  cfg.drop_probability = drop_p;
  cfg.duplicate_probability = 0.05;
  cfg.max_events = 8'000'000;
  System system(cfg);
  // Two coordinators, six participants across all three protocols.
  system.AddSite(ProtocolKind::kPrN, coordinator_kind);
  system.AddSite(ProtocolKind::kPrA, coordinator_kind);
  system.AddSite(ProtocolKind::kPrN);
  system.AddSite(ProtocolKind::kPrN);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  system.AddSite(ProtocolKind::kPrC);

  system.injector().SetRandomCrashes(crash_p, /*min_downtime=*/1'000,
                                     /*max_downtime=*/150'000);
  system.injector().SetRandomCrashBudget(25);

  WorkloadConfig wl;
  wl.num_txns = 60;
  wl.min_participants = 2;
  wl.max_participants = 5;
  wl.no_vote_probability = 0.15;
  wl.mean_interarrival_us = 3'000;
  wl.coordinators = {0, 1};
  wl.participant_pool = {2, 3, 4, 5, 6, 7};
  WorkloadGenerator gen(&system, wl);
  gen.GenerateAndSchedule();

  RunStats run = system.Run();
  *quiesced = !run.hit_event_limit;
  return Summarize(system);
}

TEST(SoakTest, PrAnyManySeedsWithLossAndCrashes) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    bool quiesced = false;
    RunSummary summary = SoakOnce(seed, ProtocolKind::kPrAny,
                                  /*drop_p=*/0.03, /*crash_p=*/0.004,
                                  &quiesced);
    ASSERT_TRUE(quiesced) << "seed " << seed;
    EXPECT_TRUE(summary.AllCorrect())
        << "seed " << seed << "\n"
        << summary.ToString();
    // Not every begun transaction reaches a decision: one that vanishes
    // in a coordinator crash during its voting phase (pure PrN/PrA modes
    // log nothing before deciding) is resolved purely by participant-side
    // presumptions; and recovery re-initiations inflate txns_begun.
    EXPECT_GT(summary.commits + summary.aborts, 0);
    EXPECT_LE(summary.commits + summary.aborts, summary.txns_begun);
  }
}

TEST(SoakTest, PrAnyHeavyLoss) {
  bool quiesced = false;
  RunSummary summary = SoakOnce(99, ProtocolKind::kPrAny, /*drop_p=*/0.2,
                                /*crash_p=*/0.0, &quiesced);
  ASSERT_TRUE(quiesced);
  EXPECT_TRUE(summary.AllCorrect()) << summary.ToString();
  EXPECT_GT(summary.decision_resends, 0);
}

TEST(SoakTest, PrAnyCrashHeavy) {
  for (uint64_t seed = 200; seed < 206; ++seed) {
    bool quiesced = false;
    RunSummary summary = SoakOnce(seed, ProtocolKind::kPrAny,
                                  /*drop_p=*/0.0, /*crash_p=*/0.02,
                                  &quiesced);
    ASSERT_TRUE(quiesced) << "seed " << seed;
    EXPECT_TRUE(summary.AllCorrect())
        << "seed " << seed << "\n"
        << summary.ToString();
    EXPECT_GT(summary.crashes, 0u) << "seed " << seed;
  }
}

TEST(SoakTest, C2PCSoakIsAtomicButLeaky) {
  // The same chaos against C2PC: clause 1 must hold on every seed; the
  // leak shows up whenever a mixed-presumption transaction completed.
  uint64_t leaky_runs = 0;
  for (uint64_t seed = 50; seed < 56; ++seed) {
    bool quiesced = false;
    RunSummary summary = SoakOnce(seed, ProtocolKind::kC2PC,
                                  /*drop_p=*/0.02, /*crash_p=*/0.002,
                                  &quiesced);
    ASSERT_TRUE(quiesced) << "seed " << seed;
    EXPECT_TRUE(summary.atomicity.ok())
        << "seed " << seed << "\n"
        << summary.ToString();
    EXPECT_TRUE(summary.safe_state.ok()) << "seed " << seed;
    if (summary.residual_table_entries > 0) ++leaky_runs;
  }
  EXPECT_GT(leaky_runs, 0u);
}

TEST(SoakTest, DeterministicReplay) {
  bool q1 = false, q2 = false;
  RunSummary a = SoakOnce(7, ProtocolKind::kPrAny, 0.05, 0.005, &q1);
  RunSummary b = SoakOnce(7, ProtocolKind::kPrAny, 0.05, 0.005, &q2);
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.forced_appends, b.forced_appends);
}

}  // namespace
}  // namespace prany
