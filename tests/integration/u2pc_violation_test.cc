// Theorem 1, executably: "It is impossible to ensure global atomicity of
// distributed transactions executed at both PrA and PrC participants with
// a coordinator using U2PC." Each part of the proof is one deterministic
// failure schedule whose atomicity violation the checkers must detect —
// and PrAny, under the *identical* schedule, must not violate.

#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace prany {
namespace {

// Part I: PrN-native U2PC coordinator, commit decision. The PrC
// participant fails on receiving the commit, recovers after the
// coordinator forgot (the PrA participant's ack sufficed), inquires, and
// is told "abort" by PrN's hidden presumption.
TEST(Theorem1Test, PartI_PrNCoordinatorCommitViolation) {
  ScenarioResult r = RunIncompatiblePresumptionScenario(
      ProtocolKind::kU2PC, ProtocolKind::kPrN, Outcome::kCommit);
  ASSERT_FALSE(r.summary.atomicity.ok());
  // Exactly the proof's final state: PrA committed, PrC aborted.
  EXPECT_EQ(r.enforced.at(1), Outcome::kCommit);  // PrA participant
  EXPECT_EQ(r.enforced.at(2), Outcome::kAbort);   // PrC participant
  EXPECT_FALSE(r.summary.safe_state.ok());
  EXPECT_FALSE(r.summary.operational.ok());
  // The wrong answer was given *by presumption*.
  EXPECT_GT(r.summary.presumed_answers, 0);
}

// Part II: same schedule, PrA-native coordinator.
TEST(Theorem1Test, PartII_PrACoordinatorCommitViolation) {
  ScenarioResult r = RunIncompatiblePresumptionScenario(
      ProtocolKind::kU2PC, ProtocolKind::kPrA, Outcome::kCommit);
  ASSERT_FALSE(r.summary.atomicity.ok());
  EXPECT_EQ(r.enforced.at(1), Outcome::kCommit);
  EXPECT_EQ(r.enforced.at(2), Outcome::kAbort);
}

// Part III (the paper's §2 motivating example): PrC-native coordinator,
// abort decision. The PrA participant fails after receiving the abort but
// before logging it, recovers after the coordinator forgot (the PrC
// participant's ack sufficed), inquires, and is told "commit" by PrC's
// presumption.
TEST(Theorem1Test, PartIII_PrCCoordinatorAbortViolation) {
  ScenarioResult r = RunIncompatiblePresumptionScenario(
      ProtocolKind::kU2PC, ProtocolKind::kPrC, Outcome::kAbort);
  ASSERT_FALSE(r.summary.atomicity.ok());
  EXPECT_EQ(r.enforced.at(1), Outcome::kCommit);  // PrA wrongly commits
  EXPECT_EQ(r.enforced.at(2), Outcome::kAbort);   // PrC correctly aborted
}

// The complementary schedules where the native presumption happens to
// agree with the outcome do NOT violate — the violation is specifically
// a cross-presumption phenomenon.
TEST(Theorem1Test, AgreeingPresumptionSchedulesAreSafe) {
  // PrN/PrA coordinators + abort: the late PrA inquirer is told abort.
  for (ProtocolKind native : {ProtocolKind::kPrN, ProtocolKind::kPrA}) {
    ScenarioResult r = RunIncompatiblePresumptionScenario(
        ProtocolKind::kU2PC, native, Outcome::kAbort);
    EXPECT_TRUE(r.summary.atomicity.ok()) << ToString(native);
  }
  // PrC coordinator + commit: the late PrC inquirer is told commit.
  ScenarioResult r = RunIncompatiblePresumptionScenario(
      ProtocolKind::kU2PC, ProtocolKind::kPrC, Outcome::kCommit);
  EXPECT_TRUE(r.summary.atomicity.ok());
}

// Control: PrAny under every one of the theorem's schedules stays atomic.
class PrAnyControlTest
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, Outcome>> {};

TEST_P(PrAnyControlTest, PrAnySurvivesTheTheoremSchedule) {
  auto [native, outcome] = GetParam();
  (void)native;  // PrAny takes no native protocol; sweep outcomes only.
  ScenarioResult r = RunIncompatiblePresumptionScenario(
      ProtocolKind::kPrAny, ProtocolKind::kPrN, outcome);
  EXPECT_TRUE(r.summary.AllCorrect())
      << r.summary.operational.ToString();
  // Both participants enforce the decided outcome.
  ASSERT_EQ(r.enforced.size(), 2u);
  for (const auto& [site, enforced] : r.enforced) {
    EXPECT_EQ(enforced, outcome) << "site " << site;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, PrAnyControlTest,
    ::testing::Combine(::testing::Values(ProtocolKind::kPrN),
                       ::testing::Values(Outcome::kCommit,
                                         Outcome::kAbort)),
    [](const auto& info) {
      return ToString(std::get<1>(info.param)) + "_schedule";
    });

// The violation requires the coordinator to forget before the inquiry:
// if the victim recovers while the coordinator still remembers, U2PC
// answers correctly from its protocol table.
TEST(Theorem1Test, EarlyRecoveryMasksTheBug) {
  SystemConfig cfg;
  System system(cfg);
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kU2PC,
                 ProtocolKind::kPrN);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  TxnId txn = system.Submit(0, {1, 2});
  // PrC participant crashes on the decision but recovers quickly; the
  // PrA ack arrives ~1 RTT later, so holding the PrA participant's ack
  // hostage is unnecessary: recover *before* the coordinator can forget.
  system.injector().CrashAtPoint(2, CrashPoint::kPartOnDecisionReceived,
                                 txn, /*downtime=*/100);
  system.net().DropNext(MessageType::kAck, txn, 1, 0);  // delay forget
  system.Run();
  EXPECT_TRUE(system.CheckAtomicity().ok());
}

// Under a workload of many transactions, every mixed-participant abort
// with the adversarial crash produces a violation; homogeneous
// transactions never do. (Bulk version of the theorem.)
TEST(Theorem1Test, RepeatedSchedulesViolateEveryTime) {
  int violations = 0;
  for (int i = 0; i < 10; ++i) {
    ScenarioResult r = RunIncompatiblePresumptionScenario(
        ProtocolKind::kU2PC, ProtocolKind::kPrC, Outcome::kAbort,
        /*seed=*/100 + i);
    if (!r.summary.atomicity.ok()) ++violations;
  }
  EXPECT_EQ(violations, 10);
}

}  // namespace
}  // namespace prany
