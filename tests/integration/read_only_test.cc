// The read-only optimization (§5 of the paper, via R* [15]): participants
// whose subtransaction wrote nothing vote read-only, leave the protocol at
// voting time, log nothing and never receive the decision — and the
// integration must stay operationally correct under crashes.

#include <gtest/gtest.h>

#include "harness/run_result.h"
#include "harness/scenario.h"

namespace prany {
namespace {

std::unique_ptr<System> MixedSystem(uint64_t seed = 1) {
  SystemConfig cfg;
  cfg.seed = seed;
  auto system = std::make_unique<System>(cfg);
  system->AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system->AddSite(ProtocolKind::kPrN);  // 1
  system->AddSite(ProtocolKind::kPrA);  // 2
  system->AddSite(ProtocolKind::kPrC);  // 3
  return system;
}

TEST(ReadOnlyTest, ReadOnlyVoterIsExcludedFromDecisionPhase) {
  auto system = MixedSystem();
  TxnId txn = system->Submit(0, {1, 2, 3}, {{2, Vote::kReadOnly}});
  system->Run();
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
  EXPECT_EQ(system->metrics().Get("coord.decide_commit"), 1);
  // Decision went to the two update participants only.
  EXPECT_EQ(system->metrics().Get("net.msg.DECISION"), 2);
  // The read-only site logged nothing at all.
  EXPECT_EQ(system->site(2)->wal()->stats().appends, 0u);
  // And never enforced an outcome for the txn.
  const SigEvent* enforce = system->history().FirstWhere(
      [&](const SigEvent& e) {
        return e.txn == txn && e.site == 2 &&
               e.type == SigEventType::kPartEnforce;
      });
  EXPECT_EQ(enforce, nullptr);
}

TEST(ReadOnlyTest, FullyReadOnlyTransactionSkipsTheDecisionPhase) {
  auto system = MixedSystem();
  system->Submit(0, {1, 2, 3},
                 {{1, Vote::kReadOnly},
                  {2, Vote::kReadOnly},
                  {3, Vote::kReadOnly}});
  system->Run();
  EXPECT_TRUE(system->CheckOperational().ok());
  EXPECT_EQ(system->metrics().Get("net.msg.DECISION"), 0);
  EXPECT_EQ(system->metrics().Get("net.msg.ACK"), 0);
  // No participant logged anything; the PrAny coordinator paid only its
  // initiation record (forced before the votes could reveal the fast
  // path).
  for (SiteId s : {SiteId{1}, SiteId{2}, SiteId{3}}) {
    EXPECT_EQ(system->site(s)->wal()->stats().appends, 0u) << s;
  }
  EXPECT_EQ(system->site(0)->wal()->stats().appends, 1u);
}

TEST(ReadOnlyTest, ReadOnlyVotePlusNoVoteAborts) {
  auto system = MixedSystem();
  TxnId txn = system->Submit(0, {1, 2, 3},
                             {{1, Vote::kReadOnly}, {2, Vote::kNo}});
  system->Run();
  EXPECT_TRUE(system->CheckOperational().ok());
  EXPECT_EQ(system->metrics().Get("coord.decide_abort"), 1);
  // Only the yes-voter (site 3) gets the abort.
  EXPECT_EQ(system->metrics().Get("net.msg.DECISION"), 1);
  const SigEvent* enforce = system->history().FirstWhere(
      [&](const SigEvent& e) {
        return e.txn == txn && e.site == 3 &&
               e.type == SigEventType::kPartEnforce;
      });
  ASSERT_NE(enforce, nullptr);
  EXPECT_EQ(*enforce->outcome, Outcome::kAbort);
}

TEST(ReadOnlyTest, AllReadOnlyOrNoVotersLogsNothingAnywhere) {
  auto system = MixedSystem();
  system->Submit(0, {1, 2}, {{1, Vote::kReadOnly}, {2, Vote::kNo}});
  system->Run();
  EXPECT_TRUE(system->CheckOperational().ok());
  // Abort with no prepared participants: nothing to send, nothing to log
  // — not even at a PrAny coordinator... except the initiation record,
  // which is forced before the votes arrive.
  EXPECT_EQ(system->metrics().Get("net.msg.DECISION"), 0);
  EXPECT_LE(system->site(0)->wal()->stats().appends, 1u);
}

TEST(ReadOnlyTest, LostReadOnlyVoteDegradesToTimeoutAbort) {
  auto system = MixedSystem();
  TxnId txn = system->Submit(0, {2, 3}, {{2, Vote::kReadOnly}});
  system->net().DropNext(MessageType::kVote, txn, 2, 0);
  system->Run();
  EXPECT_EQ(system->metrics().Get("coord.vote_timeout"), 1);
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
}

TEST(ReadOnlyTest, ReadOnlySiteCrashAfterVotingIsInvisible) {
  auto system = MixedSystem();
  TxnId txn = system->Submit(0, {2, 3}, {{2, Vote::kReadOnly}});
  system->injector().CrashAtPoint(2, CrashPoint::kPartAfterVoteSent, txn,
                                  /*downtime=*/500'000);
  system->Run();
  EXPECT_TRUE(system->CheckOperational().ok());
  // The read-only site logged nothing, so its recovery has nothing to do
  // and it never inquires.
  EXPECT_EQ(system->metrics().Get("net.msg.INQUIRY"), 0);
}

TEST(ReadOnlyTest, CoordinatorCrashWithReadOnlyVotersRecovers) {
  // PrAny coordinator crashes after the (forced) commit record; the
  // read-only participant must never be contacted during recovery.
  auto system = MixedSystem();
  TxnId txn = system->Submit(0, {1, 2, 3}, {{2, Vote::kReadOnly}});
  system->injector().CrashAtPoint(0, CrashPoint::kCoordAfterDecisionMade,
                                  txn, /*downtime=*/10'000);
  system->Run();
  EXPECT_TRUE(system->CheckAtomicity().ok());
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
  // No message of any kind was ever addressed to the read-only site after
  // its vote: prepare only.
  // (Recovery re-sends the commit to the PrN participant; PrC is excluded
  // by footnote-4 handling; the read-only PrA site already left.)
  const SigEvent* enforce = system->history().FirstWhere(
      [&](const SigEvent& e) {
        return e.txn == txn && e.site == 2 &&
               e.type == SigEventType::kPartEnforce;
      });
  EXPECT_EQ(enforce, nullptr);
}

TEST(ReadOnlyTest, CostSavingIsMeasurable) {
  // Same transaction shape with and without a read-only member: the
  // optimized run saves the member's two log writes and its decision/ack
  // messages.
  auto baseline = MixedSystem(7);
  baseline->Submit(0, {1, 2, 3});
  baseline->Run();
  RunSummary base = Summarize(*baseline);

  auto optimized = MixedSystem(7);
  optimized->Submit(0, {1, 2, 3}, {{1, Vote::kReadOnly}});
  optimized->Run();
  RunSummary opt = Summarize(*optimized);

  EXPECT_TRUE(base.AllCorrect());
  EXPECT_TRUE(opt.AllCorrect());
  EXPECT_LT(opt.messages_total, base.messages_total);
  EXPECT_LT(opt.forced_appends, base.forced_appends);
}

class ReadOnlyCrashSweepTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ReadOnlyCrashSweepTest, EveryCrashPointWithAReadOnlyMember) {
  // One read-only member (site 1) + two update members; crash each site
  // at each of its points; everything must stay correct.
  uint64_t seed = 1000;
  for (Outcome outcome : {Outcome::kCommit, Outcome::kAbort}) {
    struct Target {
      SiteId site;
      CrashPoint point;
    };
    std::vector<Target> targets;
    for (CrashPoint p : kCoordinatorCrashPoints) targets.push_back({0, p});
    for (SiteId s : {SiteId{1}, SiteId{2}, SiteId{3}}) {
      for (CrashPoint p : kParticipantCrashPoints) targets.push_back({s, p});
    }
    for (const Target& t : targets) {
      SystemConfig cfg;
      cfg.seed = ++seed;
      cfg.max_events = 500'000;
      System system(cfg);
      system.AddSite(ProtocolKind::kPrN, GetParam(), ProtocolKind::kPrN);
      // A PrAny coordinator handles a mixed set; the pure-PrN control
      // runs over its own homogeneous participants.
      bool mixed = GetParam() == ProtocolKind::kPrAny;
      system.AddSite(mixed ? ProtocolKind::kPrA : ProtocolKind::kPrN);
      system.AddSite(ProtocolKind::kPrN);
      system.AddSite(mixed ? ProtocolKind::kPrC : ProtocolKind::kPrN);
      Transaction txn = system.MakeTransaction(
          0, {1, 2, 3}, {{1, Vote::kReadOnly}});
      system.SubmitAt(0, txn);
      if (outcome == Outcome::kAbort) {
        system.sim().ScheduleAt(800, [&system, &txn]() {
          system.site(0)->coordinator()->ForceAbort(txn.id);
        });
      }
      system.injector().CrashAtPoint(t.site, t.point, txn.id, 200'000);
      RunStats run = system.Run();
      ASSERT_FALSE(run.hit_event_limit);
      EXPECT_TRUE(system.CheckAtomicity().ok() &&
                  system.CheckSafeState().ok() &&
                  system.CheckOperational().ok())
          << ToString(outcome) << " site" << t.site << "@"
          << ToString(t.point) << "\n"
          << system.CheckOperational().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Coordinators, ReadOnlyCrashSweepTest,
                         ::testing::Values(ProtocolKind::kPrAny,
                                           ProtocolKind::kPrN),
                         [](const auto& info) {
                           return ToString(info.param);
                         });

}  // namespace
}  // namespace prany
