// Theorem 3, executably: PrAny satisfies the operational correctness
// criterion. The proof's case analysis becomes an exhaustive sweep over
// participant-protocol mixes x outcomes x crash points x crash targets,
// with the safe-state predicate (Definition 2) and all three clauses of
// Definition 1 machine-checked on every run.

#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace prany {
namespace {

std::string JoinFailures(const SweepResult& sweep) {
  std::string all;
  for (const auto& d : sweep.failure_descriptions) all += d + "\n";
  return all;
}

TEST(Theorem3Test, ExhaustiveCrashSweepOverStandardMixes) {
  SweepResult sweep = RunCrashSweep(ProtocolKind::kPrAny,
                                    ProtocolKind::kPrN, StandardMixes());
  EXPECT_GT(sweep.scenarios, 300u);
  EXPECT_TRUE(sweep.AllCorrect()) << JoinFailures(sweep);
}

TEST(Theorem3Test, SweepWithLongOutages) {
  // Longer downtime exercises the forgotten-transaction / dynamic-
  // presumption paths rather than the protocol-table paths.
  SweepResult sweep =
      RunCrashSweep(ProtocolKind::kPrAny, ProtocolKind::kPrN,
                    {{ProtocolKind::kPrA, ProtocolKind::kPrC},
                     {ProtocolKind::kPrN, ProtocolKind::kPrA,
                      ProtocolKind::kPrC}},
                    /*downtime=*/5'000'000);
  EXPECT_TRUE(sweep.AllCorrect()) << JoinFailures(sweep);
}

TEST(Theorem3Test, SweepWithShortOutages) {
  // Short downtime exercises races between recovery, retransmission and
  // inquiry traffic.
  SweepResult sweep =
      RunCrashSweep(ProtocolKind::kPrAny, ProtocolKind::kPrN,
                    {{ProtocolKind::kPrA, ProtocolKind::kPrC},
                     {ProtocolKind::kPrA, ProtocolKind::kPrA,
                      ProtocolKind::kPrC}},
                    /*downtime=*/1'000);
  EXPECT_TRUE(sweep.AllCorrect()) << JoinFailures(sweep);
}

TEST(Theorem3Test, U2PCFailsTheSameSweepPrAnyPasses) {
  // Head-to-head on the paper's mix: same scenarios, opposite verdicts.
  std::vector<std::vector<ProtocolKind>> mixes = {
      {ProtocolKind::kPrA, ProtocolKind::kPrC}};
  SweepResult prany =
      RunCrashSweep(ProtocolKind::kPrAny, ProtocolKind::kPrN, mixes);
  SweepResult u2pc_prn =
      RunCrashSweep(ProtocolKind::kU2PC, ProtocolKind::kPrN, mixes);
  SweepResult u2pc_prc =
      RunCrashSweep(ProtocolKind::kU2PC, ProtocolKind::kPrC, mixes);
  EXPECT_TRUE(prany.AllCorrect()) << JoinFailures(prany);
  EXPECT_GT(u2pc_prn.atomicity_failures + u2pc_prc.atomicity_failures, 0u);
}

TEST(Theorem3Test, C2PCFailsOnlyTheOperationalClauses) {
  std::vector<std::vector<ProtocolKind>> mixes = {
      {ProtocolKind::kPrA, ProtocolKind::kPrC}};
  SweepResult c2pc =
      RunCrashSweep(ProtocolKind::kC2PC, ProtocolKind::kPrN, mixes);
  EXPECT_EQ(c2pc.atomicity_failures, 0u) << JoinFailures(c2pc);
  EXPECT_EQ(c2pc.safe_state_failures, 0u);
  EXPECT_GT(c2pc.operational_failures, 0u);
}

TEST(Theorem3Test, DoubleFaultSchedules) {
  // Coordinator and one participant crash in the same transaction, at
  // every coordinator-point x participant-point combination, on the
  // paper's mix, both outcomes.
  const std::vector<ProtocolKind> mix = {ProtocolKind::kPrA,
                                         ProtocolKind::kPrC};
  uint64_t scenarios = 0;
  for (Outcome outcome : {Outcome::kCommit, Outcome::kAbort}) {
    for (CrashPoint coord_point : kCoordinatorCrashPoints) {
      for (CrashPoint part_point : kParticipantCrashPoints) {
        for (SiteId victim : {SiteId{1}, SiteId{2}}) {
          ++scenarios;
          SystemConfig cfg;
          cfg.seed = scenarios;
          cfg.max_events = 500'000;
          System system(cfg);
          system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
          system.AddSite(mix[0]);
          system.AddSite(mix[1]);
          TxnId txn = system.Submit(0, {1, 2});
          if (outcome == Outcome::kAbort) {
            system.sim().ScheduleAt(800, [&system, txn]() {
              system.site(0)->coordinator()->ForceAbort(txn);
            });
          }
          system.injector().CrashAtPoint(0, coord_point, txn, 40'000);
          system.injector().CrashAtPoint(victim, part_point, txn, 70'000);
          RunStats run = system.Run();
          ASSERT_FALSE(run.hit_event_limit)
              << ToString(coord_point) << " + " << ToString(part_point);
          EXPECT_TRUE(system.CheckAtomicity().ok() &&
                      system.CheckSafeState().ok() &&
                      system.CheckOperational().ok())
              << ToString(outcome) << " coord@" << ToString(coord_point)
              << " site" << victim << "@" << ToString(part_point) << "\n"
              << system.CheckOperational().ToString();
        }
      }
    }
  }
  EXPECT_EQ(scenarios, 2u * 5u * 6u * 2u);
}

TEST(Theorem3Test, RepeatedCrashesOfTheSameSite) {
  // The same participant crashes on the decision *and again* on the
  // inquiry reply after recovering — eventual delivery must still hold.
  SystemConfig cfg;
  cfg.seed = 77;
  System system(cfg);
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  TxnId txn = system.Submit(0, {1, 2});
  system.injector().CrashAtPoint(2, CrashPoint::kPartOnDecisionReceived,
                                 txn, /*downtime=*/100'000);
  // The second rule hits the *inquiry reply* delivery (same crash point).
  system.injector().CrashAtPoint(2, CrashPoint::kPartOnDecisionReceived,
                                 txn, /*downtime=*/100'000);
  system.Run();
  EXPECT_TRUE(system.CheckOperational().ok())
      << system.CheckOperational().ToString();
  EXPECT_EQ(system.site(2)->crash_count(), 2u);
  const SigEvent* enforce = system.history().FirstWhere(
      [&](const SigEvent& e) {
        return e.txn == txn && e.type == SigEventType::kPartEnforce &&
               e.site == 2;
      });
  ASSERT_NE(enforce, nullptr);
  EXPECT_EQ(*enforce->outcome, Outcome::kCommit);
}

TEST(Theorem3Test, ConcurrentMixedTransactionsWithCrashes) {
  SystemConfig cfg;
  cfg.seed = 13;
  cfg.max_events = 2'000'000;
  System system(cfg);
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrN);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  for (int i = 0; i < 20; ++i) {
    system.Submit(0, {1, 2, 3});
    system.Submit(0, {2, 3});
  }
  // Timed mid-flight crashes of participants and the coordinator.
  system.ScheduleCrash(2, 1'200, 30'000);
  system.ScheduleCrash(3, 2'000, 50'000);
  system.ScheduleCrash(0, 2'500, 20'000);
  RunStats run = system.Run();
  ASSERT_FALSE(run.hit_event_limit);
  EXPECT_TRUE(system.CheckAtomicity().ok())
      << system.CheckAtomicity().ToString();
  EXPECT_TRUE(system.CheckSafeState().ok());
  EXPECT_TRUE(system.CheckOperational().ok())
      << system.CheckOperational().ToString();
}

}  // namespace
}  // namespace prany
