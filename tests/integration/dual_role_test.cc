// Sites play both roles at once: a site coordinates some transactions
// while participating in others, and a single crash hits both roles'
// state simultaneously (shared stable log, both engines recovered from
// the same scan).

#include <gtest/gtest.h>

#include "harness/run_result.h"
#include "harness/system.h"

namespace prany {
namespace {

std::unique_ptr<System> DualSystem(uint64_t seed = 1) {
  SystemConfig cfg;
  cfg.seed = seed;
  auto system = std::make_unique<System>(cfg);
  // Every site can coordinate (PrAny) and participates with its own base
  // protocol.
  system->AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);  // 0
  system->AddSite(ProtocolKind::kPrA, ProtocolKind::kPrAny);  // 1
  system->AddSite(ProtocolKind::kPrC, ProtocolKind::kPrAny);  // 2
  return system;
}

TEST(DualRoleTest, CrossCoordinatedTransactionsComplete) {
  auto system = DualSystem();
  // Each site coordinates one transaction over the other two.
  system->Submit(0, {1, 2});
  system->Submit(1, {0, 2});
  system->Submit(2, {0, 1});
  system->Run();
  EXPECT_EQ(system->metrics().Get("coord.decide_commit"), 3);
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
}

TEST(DualRoleTest, SharedLogHoldsBothRolesRecords) {
  auto system = DualSystem();
  TxnId coordinated = system->Submit(0, {1, 2});
  TxnId participated = system->Submit(1, {0, 2});
  (void)coordinated;
  (void)participated;
  // Freeze GC observation: check during the run that site 0's log carried
  // both coordinator-side (initiation) and participant-side (prepared)
  // records by looking at the metrics after completion.
  system->Run();
  // Everything was eventually released on site 0 despite the mixed
  // content.
  EXPECT_TRUE(system->site(0)->wal()->UnreleasedTxns().empty());
  EXPECT_GT(system->site(0)->wal()->stats().appends, 2u);
  EXPECT_TRUE(system->CheckOperational().ok());
}

TEST(DualRoleTest, CrashHitsBothRolesAtOnce) {
  auto system = DualSystem(9);
  // Site 0 coordinates txn A and participates in txn B; it crashes right
  // after logging its commit decision for A — which is also after it
  // prepared for B (same wall-clock window).
  TxnId a = system->Submit(0, {1, 2});
  TxnId b = system->Submit(1, {0, 2});
  system->injector().CrashAtPoint(0, CrashPoint::kCoordAfterDecisionMade,
                                  a, /*downtime=*/40'000);
  system->Run();
  EXPECT_TRUE(system->CheckAtomicity().ok())
      << system->CheckAtomicity().ToString();
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
  // Txn A was re-initiated by site 0's coordinator recovery; txn B was
  // resolved for site 0 either before the crash or via its participant
  // recovery (prepared record -> inquiry).
  int enforced_a = 0, enforced_b_site0 = 0;
  for (const SigEvent& e : system->history().events()) {
    if (e.type != SigEventType::kPartEnforce) continue;
    if (e.txn == a) ++enforced_a;
    if (e.txn == b && e.site == 0) ++enforced_b_site0;
  }
  EXPECT_EQ(enforced_a, 2);
  EXPECT_GE(enforced_b_site0, 1);
}

TEST(DualRoleTest, ParticipantCrashDoesNotDisturbItsCoordinatorRole) {
  auto system = DualSystem(11);
  // Site 1 participates in txn A (crashing on the decision) while
  // coordinating txn B, submitted after it recovers.
  TxnId a = system->Submit(0, {1, 2});
  system->injector().CrashAtPoint(1, CrashPoint::kPartOnDecisionReceived,
                                  a, /*downtime=*/30'000);
  Transaction b = system->MakeTransaction(1, {0, 2});
  system->SubmitAt(/*when=*/100'000, b);
  system->Run();
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
  EXPECT_EQ(system->metrics().Get("coord.decide_commit"), 2);
}

TEST(DualRoleTest, ManyInterleavedDualRoleTransactionsUnderChaos) {
  SystemConfig cfg;
  cfg.seed = 31;
  cfg.drop_probability = 0.03;
  cfg.max_events = 10'000'000;
  System system(cfg);
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA, ProtocolKind::kPrAny);
  system.injector().SetRandomCrashes(0.003, 5'000, 100'000);
  system.injector().SetRandomCrashBudget(15);
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    SiteId coordinator = static_cast<SiteId>(rng.Index(4));
    std::vector<SiteId> participants;
    for (SiteId s = 0; s < 4; ++s) {
      if (s != coordinator) participants.push_back(s);
    }
    Transaction txn = system.MakeTransaction(coordinator, participants);
    system.SubmitAt(static_cast<SimTime>(i) * 2'000, txn);
  }
  RunStats run = system.Run();
  ASSERT_FALSE(run.hit_event_limit);
  EXPECT_TRUE(system.CheckAtomicity().ok())
      << system.CheckAtomicity().ToString();
  EXPECT_TRUE(system.CheckSafeState().ok());
  EXPECT_TRUE(system.CheckOperational().ok())
      << system.CheckOperational().ToString();
}

// ---------------------------------------------------------------------------
// Same-transaction dual role: the coordinator is one of its own
// participants, so one physical log interleaves both roles' records for a
// single transaction.

TEST(DualRoleTest, CoordinatorAsOwnParticipantCommits) {
  auto system = DualSystem();
  // Site 0 coordinates {0, 1}: it must prepare, vote, receive its own
  // decision and acknowledge it over the regular transport.
  TxnId txn = system->Submit(0, {0, 1});
  system->Run();
  EXPECT_EQ(system->metrics().Get("coord.decide_commit"), 1);
  int enforced = 0;
  for (const SigEvent& e : system->history().events()) {
    if (e.type == SigEventType::kPartEnforce && e.txn == txn) ++enforced;
  }
  EXPECT_EQ(enforced, 2);  // Site 0 (self) and site 1.
  EXPECT_TRUE(system->site(0)->wal()->UnreleasedTxns().empty());
  EXPECT_TRUE(system->CheckAtomicity().ok())
      << system->CheckAtomicity().ToString();
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
}

// The regression the `has_prepared` skip caused: site 0 coordinates a PrC
// transaction it also participates in, and crashes after its *participant*
// force (PREPARED durable) but before its *coordinator* decision force —
// there is an initiation record and a prepared record, and no decision.
// Meanwhile site 1 votes no and unilaterally aborts.
//
// The old Recover() saw has_prepared and skipped the summary entirely, so
// the initiation record never re-initiated the abort; site 0's in-doubt
// participant then inquired its own (empty) coordinator and was answered
// by PrC's commit presumption: site 0 enforced commit, site 1 had enforced
// abort — an atomicity violation. Role-classified recovery re-initiates
// the abort instead.
TEST(DualRoleTest, CrashBetweenParticipantForceAndCoordinatorDecision) {
  SystemConfig cfg;
  cfg.seed = 17;
  System system(cfg);
  system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrC);  // 0 (dual role)
  system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrC);  // 1
  Transaction txn = system.MakeTransaction(0, {0, 1});
  txn.planned_votes[1] = Vote::kNo;  // Site 1 aborts unilaterally.
  system.injector().CrashAtPoint(0, CrashPoint::kPartAfterPreparedLogged,
                                 txn.id, /*downtime=*/50'000);
  system.SubmitAt(0, txn);
  system.Run();

  EXPECT_TRUE(system.CheckAtomicity().ok())
      << system.CheckAtomicity().ToString();

  // The coordinator side reached a decision after recovery (the abort
  // re-initiated from the surviving initiation record) ...
  const SigEvent* decide = system.history().FirstWhere(
      [&](const SigEvent& e) {
        return e.type == SigEventType::kCoordDecide && e.txn == txn.id;
      });
  ASSERT_NE(decide, nullptr);
  EXPECT_EQ(*decide->outcome, Outcome::kAbort);

  // ... and both participants enforced that same abort.
  std::map<SiteId, Outcome> enforced;
  for (const SigEvent& e : system.history().events()) {
    if (e.type == SigEventType::kPartEnforce && e.txn == txn.id) {
      enforced[e.site] = *e.outcome;
    }
  }
  ASSERT_EQ(enforced.count(0), 1u);
  ASSERT_EQ(enforced.count(1), 1u);
  EXPECT_EQ(enforced[0], Outcome::kAbort);
  EXPECT_EQ(enforced[1], Outcome::kAbort);

  // Both roles eventually released the shared log.
  EXPECT_TRUE(system.site(0)->wal()->UnreleasedTxns().empty());
  EXPECT_TRUE(system.CheckOperational().ok())
      << system.CheckOperational().ToString();
}

// Chaos sweep where every transaction is dual-role (the coordinator always
// participates), across mixed protocols, random crashes and message loss.
TEST(DualRoleTest, SameTxnDualRoleChaosStaysAtomic) {
  SystemConfig cfg;
  cfg.seed = 43;
  cfg.drop_probability = 0.02;
  cfg.max_events = 10'000'000;
  System system(cfg);
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA, ProtocolKind::kPrAny);
  system.injector().SetRandomCrashes(0.003, 5'000, 100'000);
  system.injector().SetRandomCrashBudget(15);
  Rng rng(19);
  for (int i = 0; i < 60; ++i) {
    SiteId coordinator = static_cast<SiteId>(rng.Index(4));
    std::vector<SiteId> participants = {coordinator};  // Dual role.
    for (SiteId s = 0; s < 4; ++s) {
      if (s != coordinator && rng.Bernoulli(0.8)) participants.push_back(s);
    }
    Transaction txn = system.MakeTransaction(coordinator, participants);
    if (rng.Bernoulli(0.15)) {
      txn.planned_votes[participants[rng.Index(participants.size())]] =
          Vote::kNo;
    }
    system.SubmitAt(static_cast<SimTime>(i) * 2'000, txn);
  }
  RunStats run = system.Run();
  ASSERT_FALSE(run.hit_event_limit);
  EXPECT_TRUE(system.CheckAtomicity().ok())
      << system.CheckAtomicity().ToString();
  EXPECT_TRUE(system.CheckSafeState().ok());
  EXPECT_TRUE(system.CheckOperational().ok())
      << system.CheckOperational().ToString();
}

}  // namespace
}  // namespace prany
