#include "harness/site.h"

#include <gtest/gtest.h>

#include "harness/system.h"

namespace prany {
namespace {

TEST(SiteTest, ExposesItsConfiguration) {
  System system;
  Site* site = system.AddSite(ProtocolKind::kPrA, ProtocolKind::kU2PC,
                              ProtocolKind::kPrC);
  EXPECT_EQ(site->id(), 0u);
  EXPECT_EQ(site->participant_protocol(), ProtocolKind::kPrA);
  EXPECT_EQ(site->coordinator()->kind(), ProtocolKind::kU2PC);
  EXPECT_TRUE(site->IsUp());
  EXPECT_EQ(site->crash_count(), 0u);
}

TEST(SiteTest, EveryCoordinatorKindConstructs) {
  System system;
  EXPECT_EQ(system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrN)
                ->coordinator()
                ->kind(),
            ProtocolKind::kPrN);
  EXPECT_EQ(system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrA)
                ->coordinator()
                ->kind(),
            ProtocolKind::kPrA);
  EXPECT_EQ(system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrC)
                ->coordinator()
                ->kind(),
            ProtocolKind::kPrC);
  EXPECT_EQ(system.AddSite(ProtocolKind::kPrN, ProtocolKind::kU2PC)
                ->coordinator()
                ->kind(),
            ProtocolKind::kU2PC);
  EXPECT_EQ(system.AddSite(ProtocolKind::kPrN, ProtocolKind::kC2PC)
                ->coordinator()
                ->kind(),
            ProtocolKind::kC2PC);
  EXPECT_EQ(system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny)
                ->coordinator()
                ->kind(),
            ProtocolKind::kPrAny);
}

TEST(SiteTest, CrashTakesStateDownAndRecoveryRestoresLiveness) {
  System system;
  Site* site = system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  site->wal()->Append(LogRecord::End(1), /*force=*/false);
  EXPECT_EQ(site->wal()->VolatileSize(), 1u);
  site->Crash(/*downtime=*/1'000);
  EXPECT_FALSE(site->IsUp());
  EXPECT_EQ(site->crash_count(), 1u);
  // The volatile log tail is gone.
  EXPECT_EQ(site->wal()->VolatileSize(), 0u);
  system.sim().Run();
  EXPECT_TRUE(site->IsUp());
}

TEST(SiteTest, DownSiteIgnoresDirectMessages) {
  System system;
  Site* coordinator_site =
      system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  coordinator_site->Crash(10'000);
  // Defensive-path check: even a direct OnMessage call while down is a
  // no-op (the network already drops messages to down sites).
  coordinator_site->OnMessage(Message::Inquiry(5, 1, 0));
  system.sim().Run();
  EXPECT_EQ(system.history().FirstWhere([](const SigEvent& e) {
    return e.type == SigEventType::kCoordInquiryRecv;
  }),
            nullptr);
}

TEST(SiteTest, MessageDispatchRoutesByType) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  Site* participant = system.AddSite(ProtocolKind::kPrA);
  // A PREPARE routed to the participant engine produces a vote.
  participant->OnMessage(Message::Prepare(7, 0, 1));
  system.sim().Run(100, 2'000);
  EXPECT_EQ(system.metrics().Get("net.msg.VOTE"), 1);
  EXPECT_TRUE(participant->participant()->IsInDoubt(7));
}

TEST(SiteTest, EndStateSnapshotsTables) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  Site* participant = system.AddSite(ProtocolKind::kPrA);
  participant->OnMessage(Message::Prepare(7, 0, 1));
  system.sim().Run(100, 2'000);
  SiteEndState state = participant->EndState();
  EXPECT_EQ(state.site, 1u);
  EXPECT_EQ(state.participant_entries, 1u);   // in doubt
  EXPECT_EQ(state.coord_table_size, 0u);
  EXPECT_EQ(state.unreleased_txns.size(), 1u);  // its prepared record
}

TEST(SiteTest, CrashProbeHandlerDrivesInjectedCrashes) {
  System system;
  Site* coordinator_site =
      system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  int probes = 0;
  coordinator_site->SetCrashProbeHandler(
      [&](SiteId site, CrashPoint point, TxnId txn)
          -> std::optional<SimDuration> {
        ++probes;
        EXPECT_EQ(site, 0u);
        (void)point;
        (void)txn;
        return std::nullopt;
      });
  system.Submit(0, {1});
  system.Run();
  EXPECT_GT(probes, 0);
  EXPECT_EQ(coordinator_site->crash_count(), 0u);
}

TEST(SiteDeathTest, CrashingADownSiteAborts) {
  System system;
  Site* site = system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  site->Crash(1'000);
  EXPECT_DEATH({ site->Crash(1'000); }, "already down");
}

}  // namespace
}  // namespace prany
