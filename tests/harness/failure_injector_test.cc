#include "harness/failure_injector.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

FailureInjector MakeInjector() { return FailureInjector(Rng(1)); }

TEST(FailureInjectorTest, NoRulesNeverCrashes) {
  FailureInjector injector = MakeInjector();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector
                     .Probe(0, CrashPoint::kPartOnDecisionReceived, 1)
                     .has_value());
  }
  EXPECT_EQ(injector.crashes_injected(), 0u);
}

TEST(FailureInjectorTest, PointRuleFiresOnceOnExactMatch) {
  FailureInjector injector = MakeInjector();
  injector.CrashAtPoint(2, CrashPoint::kPartOnDecisionReceived, 7,
                        /*downtime=*/1'000);
  // Wrong site / point / txn: no fire.
  EXPECT_FALSE(injector
                   .Probe(1, CrashPoint::kPartOnDecisionReceived, 7)
                   .has_value());
  EXPECT_FALSE(
      injector.Probe(2, CrashPoint::kPartAfterAckSent, 7).has_value());
  EXPECT_FALSE(injector
                   .Probe(2, CrashPoint::kPartOnDecisionReceived, 8)
                   .has_value());
  // Exact match fires with the configured downtime...
  auto downtime = injector.Probe(2, CrashPoint::kPartOnDecisionReceived, 7);
  ASSERT_TRUE(downtime.has_value());
  EXPECT_EQ(*downtime, 1'000u);
  // ...and only once.
  EXPECT_FALSE(injector
                   .Probe(2, CrashPoint::kPartOnDecisionReceived, 7)
                   .has_value());
  EXPECT_EQ(injector.crashes_injected(), 1u);
}

TEST(FailureInjectorTest, WildcardTxnMatchesAny) {
  FailureInjector injector = MakeInjector();
  injector.CrashAtPoint(2, CrashPoint::kPartAfterVoteSent, kInvalidTxn,
                        500);
  EXPECT_TRUE(
      injector.Probe(2, CrashPoint::kPartAfterVoteSent, 42).has_value());
}

TEST(FailureInjectorTest, SkipCountDelaysFiring) {
  FailureInjector injector = MakeInjector();
  injector.CrashAtPoint(0, CrashPoint::kCoordAfterDecisionMade, kInvalidTxn,
                        500, /*skip=*/2);
  EXPECT_FALSE(injector
                   .Probe(0, CrashPoint::kCoordAfterDecisionMade, 1)
                   .has_value());
  EXPECT_FALSE(injector
                   .Probe(0, CrashPoint::kCoordAfterDecisionMade, 2)
                   .has_value());
  EXPECT_TRUE(injector
                  .Probe(0, CrashPoint::kCoordAfterDecisionMade, 3)
                  .has_value());
}

TEST(FailureInjectorTest, MultipleRulesFireIndependently) {
  FailureInjector injector = MakeInjector();
  injector.CrashAtPoint(1, CrashPoint::kPartAfterVoteSent, kInvalidTxn, 100);
  injector.CrashAtPoint(2, CrashPoint::kPartAfterVoteSent, kInvalidTxn, 200);
  EXPECT_EQ(*injector.Probe(2, CrashPoint::kPartAfterVoteSent, 1), 200u);
  EXPECT_EQ(*injector.Probe(1, CrashPoint::kPartAfterVoteSent, 1), 100u);
  EXPECT_EQ(injector.crashes_injected(), 2u);
}

TEST(FailureInjectorTest, RandomCrashesRespectProbabilityAndRange) {
  FailureInjector injector = MakeInjector();
  injector.SetRandomCrashes(0.5, 100, 200);
  int fires = 0;
  constexpr int kTrials = 2'000;
  for (int i = 0; i < kTrials; ++i) {
    auto downtime = injector.Probe(0, CrashPoint::kPartAfterVoteSent, 1);
    if (downtime.has_value()) {
      ++fires;
      EXPECT_GE(*downtime, 100u);
      EXPECT_LE(*downtime, 200u);
    }
  }
  EXPECT_NEAR(static_cast<double>(fires) / kTrials, 0.5, 0.05);
}

TEST(FailureInjectorTest, RandomCrashBudgetCapsInjections) {
  FailureInjector injector = MakeInjector();
  injector.SetRandomCrashes(1.0, 100, 100);
  injector.SetRandomCrashBudget(3);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.Probe(0, CrashPoint::kPartAfterVoteSent, 1).has_value()) {
      ++fires;
    }
  }
  EXPECT_EQ(fires, 3);
}

TEST(FailureInjectorTest, PointRulesTakePriorityOverBudgetAccounting) {
  FailureInjector injector = MakeInjector();
  injector.SetRandomCrashes(0.0, 0, 0);
  injector.CrashAtPoint(0, CrashPoint::kPartAfterVoteSent, kInvalidTxn, 50);
  EXPECT_TRUE(
      injector.Probe(0, CrashPoint::kPartAfterVoteSent, 1).has_value());
}

}  // namespace
}  // namespace prany
