#include "harness/system.h"

#include <gtest/gtest.h>

#include "harness/run_result.h"

namespace prany {
namespace {

TEST(SystemTest, AddSiteAssignsSequentialIdsAndRegistersPcp) {
  System system;
  Site* a = system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  Site* b = system.AddSite(ProtocolKind::kPrA);
  EXPECT_EQ(a->id(), 0u);
  EXPECT_EQ(b->id(), 1u);
  EXPECT_EQ(system.pcp().ProtocolFor(0), ProtocolKind::kPrN);
  EXPECT_EQ(system.pcp().ProtocolFor(1), ProtocolKind::kPrA);
  EXPECT_EQ(system.site_count(), 2u);
}

TEST(SystemTest, MakeTransactionResolvesProtocolsFromPcp) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  Transaction txn = system.MakeTransaction(0, {1, 2});
  EXPECT_EQ(txn.ProtocolOf(1), ProtocolKind::kPrA);
  EXPECT_EQ(txn.ProtocolOf(2), ProtocolKind::kPrC);
  EXPECT_TRUE(txn.Validate().ok());
}

TEST(SystemTest, TxnIdsAreUniqueAcrossSubmissions) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  TxnId a = system.Submit(0, {1});
  TxnId b = system.Submit(0, {1});
  EXPECT_NE(a, b);
}

TEST(SystemTest, SingleTransactionCommitsCleanly) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  system.Submit(0, {1, 2});
  RunStats stats = system.Run();
  EXPECT_FALSE(stats.hit_event_limit);
  EXPECT_TRUE(system.CheckOperational().ok());
  EXPECT_EQ(system.metrics().Get("coord.decide_commit"), 1);
}

TEST(SystemTest, PlannedNoVoteAborts) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  system.Submit(0, {1}, {{1, Vote::kNo}});
  system.Run();
  EXPECT_EQ(system.metrics().Get("coord.decide_abort"), 1);
  EXPECT_TRUE(system.CheckOperational().ok());
}

TEST(SystemTest, SubmitToDownCoordinatorIsDropped) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  system.ScheduleCrash(0, /*when=*/10, /*downtime=*/1'000);
  Transaction txn = system.MakeTransaction(0, {1});
  system.SubmitAt(/*when=*/500, txn);  // while the coordinator is down
  system.Run();
  EXPECT_EQ(system.metrics().Get("system.dropped_submissions"), 1);
  EXPECT_EQ(system.metrics().Get("coord.begin"), 0);
}

TEST(SystemTest, ScheduledCrashTakesSiteDownAndRecovers) {
  System system;
  Site* site = system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.ScheduleCrash(0, /*when=*/100, /*downtime=*/400);
  system.sim().Run(1'000, /*until=*/300);
  EXPECT_FALSE(site->IsUp());
  system.Run();
  EXPECT_TRUE(site->IsUp());
  EXPECT_EQ(site->crash_count(), 1u);
  // The history records both events.
  int crashes = 0, recoveries = 0;
  for (const SigEvent& e : system.history().events()) {
    if (e.type == SigEventType::kSiteCrash) ++crashes;
    if (e.type == SigEventType::kSiteRecover) ++recoveries;
  }
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(recoveries, 1);
}

TEST(SystemTest, CrashOfDownSiteIsIgnored) {
  System system;
  Site* site = system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.ScheduleCrash(0, 100, 1'000);
  system.ScheduleCrash(0, 500, 1'000);  // already down: ignored
  system.Run();
  EXPECT_EQ(site->crash_count(), 1u);
}

TEST(SystemTest, ConcurrentTransactionsInterleaveCorrectly) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  for (int i = 0; i < 4; ++i) system.AddSite(ProtocolKind::kPrA);
  for (int i = 0; i < 10; ++i) {
    system.Submit(0, {1, 2});
    system.Submit(0, {3, 4});
  }
  system.Run();
  EXPECT_EQ(system.metrics().Get("coord.decide_commit"), 20);
  EXPECT_TRUE(system.CheckOperational().ok());
  EXPECT_GE(system.site(0)->coordinator()->table().MaxSize(), 2u);
}

TEST(SystemTest, MultipleCoordinators) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrC);
  system.Submit(0, {1, 2});
  system.Submit(1, {0, 2});
  system.Run();
  EXPECT_EQ(system.metrics().Get("coord.decide_commit"), 2);
  EXPECT_TRUE(system.CheckOperational().ok());
}

TEST(SystemTest, EndStatesReflectQuiescence) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  system.Submit(0, {1});
  system.Run();
  std::vector<SiteEndState> states = system.EndStates();
  ASSERT_EQ(states.size(), 2u);
  for (const SiteEndState& s : states) {
    EXPECT_EQ(s.coord_table_size, 0u);
    EXPECT_EQ(s.participant_entries, 0u);
    EXPECT_TRUE(s.unreleased_txns.empty());
  }
}

TEST(SystemTest, SummarizeCollectsConsistentCounts) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  system.Submit(0, {1, 2});
  system.Submit(0, {1, 2}, {{1, Vote::kNo}});
  system.Run();
  RunSummary summary = Summarize(system);
  EXPECT_EQ(summary.txns_begun, 2);
  EXPECT_EQ(summary.commits, 1);
  EXPECT_EQ(summary.aborts, 1);
  EXPECT_GT(summary.messages_total, 0);
  EXPECT_GT(summary.forced_appends, 0u);
  EXPECT_EQ(summary.residual_table_entries, 0u);
  EXPECT_TRUE(summary.AllCorrect());
  EXPECT_EQ(summary.commit_latency.count, 1u);
  std::string s = summary.ToString();
  EXPECT_NE(s.find("commits=1"), std::string::npos);
}

TEST(SystemTest, DeterministicAcrossIdenticalSeeds) {
  auto run = [](uint64_t seed) {
    SystemConfig cfg;
    cfg.seed = seed;
    cfg.drop_probability = 0.05;
    System system(cfg);
    system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
    system.AddSite(ProtocolKind::kPrA);
    system.AddSite(ProtocolKind::kPrC);
    for (int i = 0; i < 5; ++i) system.Submit(0, {1, 2});
    system.Run();
    return std::make_pair(system.sim().Now(),
                          system.net().stats().messages_sent);
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // and the seed actually matters
}

TEST(SystemTest, DynamicMembershipJoinMidRun) {
  // The PCP "is updated when a new site joins or leaves the distributed
  // environment" (§4): a site added after traffic has already flowed is
  // immediately usable, including for PrAny's dynamic presumption.
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  system.Submit(0, {1});
  system.Run();
  ASSERT_TRUE(system.CheckOperational().ok());

  Site* joined = system.AddSite(ProtocolKind::kPrC);
  EXPECT_EQ(system.pcp().ProtocolFor(joined->id()), ProtocolKind::kPrC);
  TxnId txn = system.Submit(0, {1, joined->id()});
  // The newcomer crashes on its first decision and recovers after the
  // coordinator forgot: the dynamic presumption must already know it.
  system.injector().CrashAtPoint(joined->id(),
                                 CrashPoint::kPartOnDecisionReceived, txn,
                                 /*downtime=*/300'000);
  system.Run();
  EXPECT_TRUE(system.CheckOperational().ok())
      << system.CheckOperational().ToString();
  EXPECT_GT(system.metrics().Get("coord.answered_by_presumption"), 0);
}

TEST(SystemTest, AddSiteWithSpecHonorsAblationKnob) {
  System system;
  CoordinatorSpec spec;
  spec.kind = ProtocolKind::kPrAny;
  spec.prany_always_mixed_mode = true;
  system.AddSiteWithSpec(ProtocolKind::kPrN, spec);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrA);
  system.Submit(0, {1, 2});  // homogeneous PrA set
  system.Run();
  // Without the selector, even the homogeneous set runs PrAny mode.
  EXPECT_EQ(system.metrics().Get("coord.mode.PrAny"), 1);
  EXPECT_EQ(system.metrics().Get("coord.mode.PrA"), 0);
  EXPECT_TRUE(system.CheckOperational().ok());
}

TEST(SystemDeathTest, UnknownSiteAborts) {
  System system;
  EXPECT_DEATH({ system.site(5); }, "unknown site");
}

TEST(SystemDeathTest, TransactionWithUnregisteredParticipantAborts) {
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  EXPECT_DEATH({ system.MakeTransaction(0, {9}); }, "not registered");
}

}  // namespace
}  // namespace prany
