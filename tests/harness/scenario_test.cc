#include "harness/scenario.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(ScenarioTest, RunFlowReportsConsistentTotals) {
  FlowResult r = RunFlow(ProtocolKind::kPrN, ProtocolKind::kPrN,
                         {ProtocolKind::kPrN, ProtocolKind::kPrN},
                         Outcome::kCommit);
  int64_t sum = 0;
  for (const auto& [type, count] : r.messages) {
    (void)type;
    sum += count;
  }
  EXPECT_EQ(sum, r.total_messages);
  EXPECT_TRUE(r.correct);
  EXPECT_GE(r.coord_appends, r.coord_forced);
  EXPECT_GE(r.part_appends, r.part_forced);
}

TEST(ScenarioTest, RunFlowIsDeterministic) {
  auto run = [] {
    return RunFlow(ProtocolKind::kPrAny, ProtocolKind::kPrN,
                   {ProtocolKind::kPrA, ProtocolKind::kPrC},
                   Outcome::kCommit, /*seed=*/3);
  };
  FlowResult a = run();
  FlowResult b = run();
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.completion_latency_us, b.completion_latency_us);
  EXPECT_EQ(a.coord_forced, b.coord_forced);
}

TEST(ScenarioTest, ForcedWriteLatencyShiftsTheTimeline) {
  FlowResult fast = RunFlow(ProtocolKind::kPrN, ProtocolKind::kPrN,
                            {ProtocolKind::kPrN}, Outcome::kCommit,
                            /*seed=*/1, /*forced_write_latency=*/0);
  FlowResult slow = RunFlow(ProtocolKind::kPrN, ProtocolKind::kPrN,
                            {ProtocolKind::kPrN}, Outcome::kCommit,
                            /*seed=*/1, /*forced_write_latency=*/2'000);
  EXPECT_GT(slow.completion_latency_us, fast.completion_latency_us);
  // Same logical protocol, identical counts.
  EXPECT_EQ(slow.total_messages, fast.total_messages);
}

TEST(ScenarioTest, IncompatiblePresumptionScenarioShape) {
  ScenarioResult r = RunIncompatiblePresumptionScenario(
      ProtocolKind::kPrAny, ProtocolKind::kPrN, Outcome::kCommit);
  // Sites 1 (PrA) and 2 (PrC) both enforced; one site crashed exactly
  // once (the victim).
  EXPECT_EQ(r.enforced.size(), 2u);
  EXPECT_EQ(r.summary.crashes, 1u);
  EXPECT_FALSE(r.run.hit_event_limit);
}

TEST(ScenarioTest, SweepCountsScenariosExactly) {
  // One 2-participant mix: (5 coord + 2x6 participant points) x 2
  // outcomes = 34.
  SweepResult sweep = RunCrashSweep(
      ProtocolKind::kPrAny, ProtocolKind::kPrN,
      {{ProtocolKind::kPrA, ProtocolKind::kPrC}});
  EXPECT_EQ(sweep.scenarios, 34u);
  EXPECT_TRUE(sweep.AllCorrect());
}

TEST(ScenarioTest, SweepRecordsFailureDescriptions) {
  SweepResult sweep = RunCrashSweep(
      ProtocolKind::kU2PC, ProtocolKind::kPrC,
      {{ProtocolKind::kPrA, ProtocolKind::kPrC}});
  EXPECT_GT(sweep.atomicity_failures, 0u);
  ASSERT_FALSE(sweep.failure_descriptions.empty());
  EXPECT_NE(sweep.failure_descriptions[0].find("mix=["), std::string::npos);
}

TEST(ScenarioTest, StandardMixesCoverHomogeneousAndMixedSets) {
  auto mixes = StandardMixes();
  EXPECT_GE(mixes.size(), 8u);
  int homogeneous = 0, mixed = 0;
  for (const auto& mix : mixes) {
    bool homo = true;
    for (ProtocolKind p : mix) homo = homo && p == mix.front();
    homo ? ++homogeneous : ++mixed;
    // The paper's participants are always base-protocol sites.
    for (ProtocolKind p : mix) EXPECT_TRUE(IsBaseProtocol(p));
  }
  EXPECT_GE(homogeneous, 3);
  EXPECT_GE(mixed, 4);
  // The paper's motivating mix is present.
  bool has_paper_mix = false;
  for (const auto& mix : mixes) {
    has_paper_mix |= mix == std::vector<ProtocolKind>{ProtocolKind::kPrA,
                                                      ProtocolKind::kPrC};
  }
  EXPECT_TRUE(has_paper_mix);
}

}  // namespace
}  // namespace prany
