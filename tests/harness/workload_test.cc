#include "harness/workload.h"

#include <gtest/gtest.h>

#include "harness/run_result.h"

namespace prany {
namespace {

std::unique_ptr<System> MakeFederation(uint64_t seed = 1) {
  SystemConfig cfg;
  cfg.seed = seed;
  auto system = std::make_unique<System>(cfg);
  system->AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);  // coordinator
  system->AddSite(ProtocolKind::kPrN);
  system->AddSite(ProtocolKind::kPrA);
  system->AddSite(ProtocolKind::kPrA);
  system->AddSite(ProtocolKind::kPrC);
  system->AddSite(ProtocolKind::kPrC);
  return system;
}

WorkloadConfig BaseConfig() {
  WorkloadConfig cfg;
  cfg.num_txns = 50;
  cfg.min_participants = 2;
  cfg.max_participants = 4;
  cfg.coordinators = {0};
  cfg.participant_pool = {1, 2, 3, 4, 5};
  return cfg;
}

TEST(WorkloadTest, GeneratesRequestedNumberOfTxns) {
  auto system = MakeFederation();
  WorkloadGenerator gen(system.get(), BaseConfig());
  std::vector<TxnId> ids = gen.GenerateAndSchedule();
  EXPECT_EQ(ids.size(), 50u);
  system->Run();
  EXPECT_EQ(system->metrics().Get("coord.begin"), 50);
  EXPECT_TRUE(system->CheckOperational().ok());
}

TEST(WorkloadTest, AllYesWorkloadOnlyCommits) {
  auto system = MakeFederation();
  WorkloadConfig cfg = BaseConfig();
  cfg.no_vote_probability = 0.0;
  WorkloadGenerator gen(system.get(), cfg);
  gen.GenerateAndSchedule();
  system->Run();
  EXPECT_EQ(system->metrics().Get("coord.decide_commit"), 50);
  EXPECT_EQ(system->metrics().Get("coord.decide_abort"), 0);
}

TEST(WorkloadTest, NoVoteProbabilityOneOnlyAborts) {
  auto system = MakeFederation();
  WorkloadConfig cfg = BaseConfig();
  cfg.no_vote_probability = 1.0;
  WorkloadGenerator gen(system.get(), cfg);
  gen.GenerateAndSchedule();
  system->Run();
  EXPECT_EQ(system->metrics().Get("coord.decide_commit"), 0);
  EXPECT_EQ(system->metrics().Get("coord.decide_abort"), 50);
  EXPECT_TRUE(system->CheckOperational().ok());
}

TEST(WorkloadTest, MixedAbortRateLandsBetween) {
  auto system = MakeFederation();
  WorkloadConfig cfg = BaseConfig();
  cfg.num_txns = 200;
  cfg.no_vote_probability = 0.3;
  WorkloadGenerator gen(system.get(), cfg);
  gen.GenerateAndSchedule();
  system->Run();
  int64_t aborts = system->metrics().Get("coord.decide_abort");
  EXPECT_GT(aborts, 30);
  EXPECT_LT(aborts, 90);
  EXPECT_TRUE(system->CheckOperational().ok());
}

TEST(WorkloadTest, ParticipantCountsRespectBounds) {
  auto system = MakeFederation();
  WorkloadConfig cfg = BaseConfig();
  cfg.min_participants = 3;
  cfg.max_participants = 3;
  WorkloadGenerator gen(system.get(), cfg);
  gen.GenerateAndSchedule();
  system->Run();
  // Every txn has exactly 3 participants: 3 prepares each.
  EXPECT_EQ(system->metrics().Get("net.msg.PREPARE"), 50 * 3);
}

TEST(WorkloadTest, CoordinatorNeverParticipatesInItsOwnTxns) {
  auto system = MakeFederation();
  WorkloadConfig cfg = BaseConfig();
  cfg.participant_pool = {0, 1, 2};  // pool includes the coordinator
  WorkloadGenerator gen(system.get(), cfg);
  gen.GenerateAndSchedule();
  system->Run();
  // Would CHECK-fail inside Transaction::Validate otherwise; also verify
  // no prepares were addressed to site 0.
  EXPECT_TRUE(system->CheckOperational().ok());
}

TEST(WorkloadTest, DeterministicForFixedSeed) {
  auto run = [](uint64_t seed) {
    auto system = MakeFederation(seed);
    WorkloadGenerator gen(system.get(), BaseConfig());
    gen.GenerateAndSchedule();
    system->Run();
    return system->net().stats().messages_sent;
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(WorkloadTest, MultipleCoordinatorsShareTheLoad) {
  SystemConfig sys_cfg;
  auto system = std::make_unique<System>(sys_cfg);
  system->AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system->AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  for (int i = 0; i < 4; ++i) system->AddSite(ProtocolKind::kPrA);
  WorkloadConfig cfg = BaseConfig();
  cfg.coordinators = {0, 1};
  cfg.participant_pool = {2, 3, 4, 5};
  cfg.num_txns = 100;
  WorkloadGenerator gen(system.get(), cfg);
  gen.GenerateAndSchedule();
  system->Run();
  size_t max0 = system->site(0)->coordinator()->table().MaxSize();
  size_t max1 = system->site(1)->coordinator()->table().MaxSize();
  EXPECT_GT(max0, 0u);
  EXPECT_GT(max1, 0u);
  EXPECT_TRUE(system->CheckOperational().ok());
}

TEST(WorkloadDeathTest, InvalidConfigAborts) {
  auto system = MakeFederation();
  WorkloadConfig cfg = BaseConfig();
  cfg.coordinators.clear();
  EXPECT_DEATH({ WorkloadGenerator bad(system.get(), cfg); },
               "PRANY_CHECK");
  cfg = BaseConfig();
  cfg.min_participants = 5;
  cfg.max_participants = 2;
  EXPECT_DEATH({ WorkloadGenerator bad(system.get(), cfg); },
               "PRANY_CHECK");
}

}  // namespace
}  // namespace prany
