// Scenario files must round-trip exactly (the choice vector's meaning
// depends on every budget field) and replay to the violation they record.

#include "mc/scenario_file.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

McScenario SampleScenario() {
  McScenario s;
  s.config.coordinator = ProtocolKind::kU2PC;
  s.config.u2pc_native = ProtocolKind::kPrC;
  s.config.participants = {ProtocolKind::kPrA, ProtocolKind::kPrC};
  s.config.votes = {{2, Vote::kNo}};
  s.config.seed = 7;
  s.config.budget.max_choice_points = 77;
  s.config.budget.max_steps = 555;
  s.config.budget.loss_budget = 2;
  s.config.budget.dup_budget = 1;
  s.config.budget.crash_budget = 3;
  s.config.budget.timer_choice_budget = 2;
  s.config.budget.crash_downtime = 123'456;
  s.choices = {0, 0, 3, 0, 1};
  s.oracle = "atomicity";
  s.description = "different sites enforced different outcomes";
  return s;
}

TEST(ScenarioFileTest, RoundTripsEveryField) {
  McScenario original = SampleScenario();
  Result<McScenario> parsed = ParseScenario(SerializeScenario(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const McScenario& got = *parsed;
  EXPECT_EQ(got.config.coordinator, original.config.coordinator);
  EXPECT_EQ(got.config.u2pc_native, original.config.u2pc_native);
  EXPECT_EQ(got.config.participants, original.config.participants);
  EXPECT_EQ(got.config.votes, original.config.votes);
  EXPECT_EQ(got.config.seed, original.config.seed);
  EXPECT_EQ(got.config.budget.max_choice_points,
            original.config.budget.max_choice_points);
  EXPECT_EQ(got.config.budget.max_steps, original.config.budget.max_steps);
  EXPECT_EQ(got.config.budget.loss_budget,
            original.config.budget.loss_budget);
  EXPECT_EQ(got.config.budget.dup_budget, original.config.budget.dup_budget);
  EXPECT_EQ(got.config.budget.crash_budget,
            original.config.budget.crash_budget);
  EXPECT_EQ(got.config.budget.timer_choice_budget,
            original.config.budget.timer_choice_budget);
  EXPECT_EQ(got.config.budget.crash_downtime,
            original.config.budget.crash_downtime);
  EXPECT_EQ(got.choices, original.choices);
  EXPECT_EQ(got.oracle, original.oracle);
  EXPECT_EQ(got.description, original.description);
}

TEST(ScenarioFileTest, RejectsUnknownKeysAndMalformedLines) {
  EXPECT_FALSE(ParseScenario("protocol=U2PC\nbogus_key=1\n").ok());
  EXPECT_FALSE(ParseScenario("protocol U2PC\n").ok());
  EXPECT_FALSE(ParseScenario("participants=PrA,NotAProtocol\n").ok());
  EXPECT_FALSE(
      ParseScenario("participants=PrA\nvotes=nonsense\n").ok());
  EXPECT_FALSE(ParseScenario("participants=PrA\nseed=12x\n").ok());
  // Missing participants is the one required field.
  EXPECT_FALSE(ParseScenario("protocol=PrAny\n").ok());
}

TEST(ScenarioFileTest, IgnoresCommentsAndBlankLines) {
  Result<McScenario> parsed = ParseScenario(
      "# a comment\n"
      "\n"
      "protocol=PrAny\n"
      "  participants = PrA , PrC \n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->config.participants.size(), 2u);
}

TEST(ScenarioFileTest, ReplayReproducesRecordedViolation) {
  // Find a real counterexample, serialize it, parse it back, replay it:
  // the recorded oracle must fire again.
  McConfig config;
  config.coordinator = ProtocolKind::kU2PC;
  config.u2pc_native = ProtocolKind::kPrN;
  config.participants = {ProtocolKind::kPrA, ProtocolKind::kPrC};
  config.budget = SmallBudget();
  McResult result = McExplorer(config).Explore();
  ASSERT_TRUE(result.HasOracle("atomicity"));
  for (const McCounterexample& ce : result.counterexamples) {
    McScenario scenario;
    scenario.config = config;
    scenario.choices = ce.choices;
    scenario.oracle = ce.oracle;
    scenario.description = ce.description;
    Result<McScenario> parsed = ParseScenario(SerializeScenario(scenario));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ReplayOutcome outcome = ReplayScenario(*parsed);
    EXPECT_TRUE(outcome.reproduced)
        << ce.oracle << " did not reproduce on replay";
  }
}

TEST(ScenarioFileTest, ReplayOfCleanScheduleReportsNoViolations) {
  McScenario scenario;
  scenario.config.coordinator = ProtocolKind::kPrAny;
  scenario.config.participants = {ProtocolKind::kPrA, ProtocolKind::kPrC};
  scenario.config.budget = SmallBudget();
  ReplayOutcome outcome = ReplayScenario(scenario);
  EXPECT_TRUE(outcome.reproduced);  // no oracle recorded
  EXPECT_TRUE(outcome.report.violations.empty());
  EXPECT_TRUE(outcome.report.quiescent);
}

}  // namespace
}  // namespace prany
