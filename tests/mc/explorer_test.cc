// The model checker's own contract: it must rediscover the paper's
// Theorem 1 violations from nothing but the choice-point enumeration, stay
// silent on the correct protocols, execute deterministically, and minimize
// counterexamples down to their essential deviation.

#include "mc/explorer.h"

#include <gtest/gtest.h>

#include "mc/schedule_controller.h"

namespace prany {
namespace {

McConfig U2pcConfig(ProtocolKind native, std::map<SiteId, Vote> votes) {
  McConfig config;
  config.coordinator = ProtocolKind::kU2PC;
  config.u2pc_native = native;
  config.participants = {ProtocolKind::kPrA, ProtocolKind::kPrC};
  config.votes = std::move(votes);
  config.budget = SmallBudget();
  return config;
}

TEST(McExplorerTest, RediscoversTheorem1CommitCase) {
  // Theorem 1 (a)/(b) shape: all-yes commit under a native-PrN U2PC
  // coordinator; crashing the PrC participant in the decision window makes
  // it recover into a presumed-abort answer for a committed transaction.
  McExplorer explorer(U2pcConfig(ProtocolKind::kPrN, {}));
  McResult result = explorer.Explore();
  ASSERT_TRUE(result.HasOracle("atomicity")) << "no atomicity counterexample";
  for (const McCounterexample& ce : result.counterexamples) {
    EXPECT_TRUE(ce.replay_deterministic)
        << ce.oracle << " counterexample did not replay deterministically";
  }
}

TEST(McExplorerTest, RediscoversTheorem1AbortCase) {
  // Theorem 1 (c) shape: native-PrC coordinator, the PrC participant votes
  // no; the crashed PrA participant recovers into presumed-commit for an
  // aborted transaction.
  McExplorer explorer(
      U2pcConfig(ProtocolKind::kPrC, {{2, Vote::kNo}}));
  McResult result = explorer.Explore();
  EXPECT_TRUE(result.HasOracle("atomicity"));
}

TEST(McExplorerTest, MinimizedCounterexampleIsEssential) {
  McExplorer explorer(U2pcConfig(ProtocolKind::kPrN, {}));
  McResult result = explorer.Explore();
  ASSERT_TRUE(result.HasOracle("atomicity"));
  for (const McCounterexample& ce : result.counterexamples) {
    if (ce.oracle != "atomicity") continue;
    // The violation needs exactly one deviation from the default schedule:
    // the crash flip in the decision window. Minimization must reduce the
    // discovered schedule to non-default choices only at that flip.
    uint32_t non_default = 0;
    for (uint32_t c : ce.choices) non_default += c != 0 ? 1 : 0;
    EXPECT_EQ(non_default, 1u)
        << "minimized schedule still has " << non_default
        << " non-default choices";
    EXPECT_LE(ce.choices.size(), ce.original_choices.size());
  }
}

TEST(McExplorerTest, PrAnyIsCleanAtSmallBudget) {
  McConfig config;
  config.coordinator = ProtocolKind::kPrAny;
  config.participants = {ProtocolKind::kPrA, ProtocolKind::kPrC};
  config.budget = SmallBudget();
  McResult result = McExplorer(config).Explore();
  EXPECT_TRUE(result.Clean()) << result.counterexamples.front().oracle << ": "
                              << result.counterexamples.front().description;
  EXPECT_TRUE(result.lint.empty());
}

TEST(McExplorerTest, BaseProtocolsCleanAtSmallBudget) {
  for (ProtocolKind kind :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    McConfig config;
    config.coordinator = kind;
    config.participants = {kind, kind};
    config.budget = SmallBudget();
    McResult result = McExplorer(config).Explore();
    EXPECT_TRUE(result.Clean())
        << ToString(kind) << ": "
        << (result.counterexamples.empty()
                ? ""
                : result.counterexamples.front().description);
  }
}

TEST(McExplorerTest, U2pcLintFlagsIncompatiblePairing) {
  // Native-PrN U2PC presumes abort for forgotten transactions; the PrC
  // participant relies on presumed commit. The lint must flag exactly the
  // PrC site.
  McResult result = McExplorer(U2pcConfig(ProtocolKind::kPrN, {})).Explore();
  ASSERT_EQ(result.lint.size(), 1u);
  EXPECT_EQ(result.lint[0].participant, ProtocolKind::kPrC);
  EXPECT_EQ(result.lint[0].participant_relies_on, Outcome::kCommit);
  EXPECT_EQ(result.lint[0].coordinator_presumes, Outcome::kAbort);
}

TEST(ScheduleControllerTest, DefaultScheduleIsDeterministic) {
  McConfig config = U2pcConfig(ProtocolKind::kPrN, {});
  McExecution a;
  McExecution b;
  McExplorer::RunSchedule(config, {}, nullptr, &a);
  McExplorer::RunSchedule(config, {}, nullptr, &b);
  EXPECT_EQ(a.run_hash, b.run_hash);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.points.size(), b.points.size());
  EXPECT_TRUE(a.quiescent);
}

TEST(ScheduleControllerTest, DefaultScheduleQuiescesWithinBudget) {
  for (ProtocolKind kind : {ProtocolKind::kPrN, ProtocolKind::kPrAny}) {
    McConfig config;
    config.coordinator = kind;
    config.participants =
        kind == ProtocolKind::kPrAny
            ? std::vector<ProtocolKind>{ProtocolKind::kPrA,
                                        ProtocolKind::kPrC}
            : std::vector<ProtocolKind>{kind, kind};
    config.budget = SmallBudget();
    McExecution exec;
    McExplorer::RunSchedule(config, {}, nullptr, &exec);
    EXPECT_TRUE(exec.quiescent) << ToString(kind);
    EXPECT_FALSE(exec.truncated) << ToString(kind);
  }
}

TEST(ScheduleControllerTest, CrashChoiceSurvivesTheDowntime) {
  // Flipping one crash choice must still produce a terminating execution:
  // the small budget has to be deep enough to ride out the coordinator's
  // resend loop across the victim's downtime.
  McConfig config;
  config.coordinator = ProtocolKind::kPrN;
  config.participants = {ProtocolKind::kPrN, ProtocolKind::kPrN};
  config.budget = SmallBudget();
  // Probe points appear early in the default run; flip the first dozen one
  // at a time and require quiescence each time.
  for (size_t flip = 0; flip < 12; ++flip) {
    std::vector<uint32_t> choices(flip + 1, 0);
    choices[flip] = 1;
    McExecution exec;
    McExplorer::RunSchedule(config, choices, nullptr, &exec);
    EXPECT_TRUE(exec.quiescent || exec.truncated);
  }
}

TEST(StandardConfigsTest, EnumeratesVoteAndNativeVariants) {
  std::vector<McConfig> u2pc = StandardModelCheckConfigs(
      ProtocolKind::kU2PC, 2, SmallBudget(), /*seed=*/1);
  // 3 natives x (all-yes + 2 single-no-voter) vote patterns.
  EXPECT_EQ(u2pc.size(), 9u);

  std::vector<McConfig> filtered = StandardModelCheckConfigs(
      ProtocolKind::kU2PC, 2, SmallBudget(), 1, ProtocolKind::kPrC);
  EXPECT_EQ(filtered.size(), 3u);
  for (const McConfig& c : filtered) {
    EXPECT_EQ(c.u2pc_native, ProtocolKind::kPrC);
  }

  std::vector<McConfig> base = StandardModelCheckConfigs(
      ProtocolKind::kPrA, 2, SmallBudget(), 1);
  EXPECT_EQ(base.size(), 3u);
  for (const McConfig& c : base) {
    for (ProtocolKind p : c.participants) EXPECT_EQ(p, ProtocolKind::kPrA);
  }
}

}  // namespace
}  // namespace prany
