// The model checker's view of the event queue: NextEventTime and
// PendingEventSummaries must see exactly the pending non-cancelled events.

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace prany {
namespace {

TEST(SimulatorIntrospectionTest, NextEventTimeTracksEarliestPending) {
  Simulator sim;
  EXPECT_FALSE(sim.NextEventTime().has_value());

  sim.ScheduleAt(200, [] {}, "later");
  sim.ScheduleAt(100, [] {}, "sooner");
  ASSERT_TRUE(sim.NextEventTime().has_value());
  EXPECT_EQ(*sim.NextEventTime(), 100u);

  ASSERT_TRUE(sim.Step());
  EXPECT_EQ(sim.Now(), 100u);
  EXPECT_EQ(*sim.NextEventTime(), 200u);
  ASSERT_TRUE(sim.Step());
  EXPECT_FALSE(sim.NextEventTime().has_value());
}

TEST(SimulatorIntrospectionTest, NextEventTimeSkipsCancelledEvents) {
  Simulator sim;
  EventId first = sim.ScheduleAt(100, [] {}, "cancelled");
  sim.ScheduleAt(300, [] {}, "kept");
  sim.Cancel(first);
  ASSERT_TRUE(sim.NextEventTime().has_value());
  EXPECT_EQ(*sim.NextEventTime(), 300u);

  EventId second = sim.ScheduleAt(50, [] {}, "also cancelled");
  sim.Cancel(second);
  EXPECT_EQ(*sim.NextEventTime(), 300u);
}

TEST(SimulatorIntrospectionTest, SummariesListPendingInFiringOrder) {
  Simulator sim;
  sim.ScheduleAt(300, [] {}, "c");
  sim.ScheduleAt(100, [] {}, "a");
  EventId cancelled = sim.ScheduleAt(200, [] {}, "b");
  sim.Cancel(cancelled);

  std::vector<std::pair<SimTime, std::string>> pending =
      sim.PendingEventSummaries();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].first, 100u);
  EXPECT_EQ(pending[0].second, "a");
  EXPECT_EQ(pending[1].first, 300u);
  EXPECT_EQ(pending[1].second, "c");

  // Introspection must not consume the queue.
  EXPECT_EQ(sim.PendingEvents(), 2u);
  EXPECT_TRUE(sim.Step());
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorIntrospectionTest, SameTimeEventsKeepScheduleOrder) {
  Simulator sim;
  sim.ScheduleAt(100, [] {}, "first");
  sim.ScheduleAt(100, [] {}, "second");
  std::vector<std::pair<SimTime, std::string>> pending =
      sim.PendingEventSummaries();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].second, "first");
  EXPECT_EQ(pending[1].second, "second");
}

}  // namespace
}  // namespace prany
