#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(SimulatorTest, TimeStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0u);
}

TEST(SimulatorTest, StepAdvancesToEventTime) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(100, [&]() { fired = true; });
  EXPECT_TRUE(sim.Step());
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(SimulatorTest, StepOnEmptyQueueReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(300, [&]() { order.push_back(3); });
  sim.Schedule(100, [&]() { order.push_back(1); });
  sim.Schedule(200, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, TieBreakIsScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(100, [&]() { order.push_back(1); });
  sim.Schedule(100, [&]() { order.push_back(2); });
  sim.Schedule(100, [&]() { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) sim.Schedule(10, recurse);
  };
  sim.Schedule(10, recurse);
  RunStats stats = sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(stats.events_executed, 5u);
  EXPECT_EQ(sim.Now(), 50u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(100, [&]() { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelOneOfMany) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(100, [&]() { order.push_back(1); });
  EventId id = sim.Schedule(200, [&]() { order.push_back(2); });
  sim.Schedule(300, [&]() { order.push_back(3); });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimulatorTest, CancelAfterFiringIsNoOp) {
  Simulator sim;
  EventId id = sim.Schedule(10, []() {});
  sim.Run();
  sim.Cancel(id);  // must not affect later events
  bool fired = false;
  sim.Schedule(10, [&]() { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelInvalidIdIsNoOp) {
  Simulator sim;
  sim.Cancel(EventId{});
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, RunHonorsEventLimit) {
  Simulator sim;
  int count = 0;
  std::function<void()> forever = [&]() {
    ++count;
    sim.Schedule(1, forever);
  };
  sim.Schedule(1, forever);
  RunStats stats = sim.Run(/*max_events=*/50);
  EXPECT_TRUE(stats.hit_event_limit);
  EXPECT_EQ(count, 50);
}

TEST(SimulatorTest, RunHonorsTimeLimit) {
  Simulator sim;
  int count = 0;
  std::function<void()> forever = [&]() {
    ++count;
    sim.Schedule(10, forever);
  };
  sim.Schedule(10, forever);
  RunStats stats = sim.Run(1'000'000, /*until=*/100);
  EXPECT_TRUE(stats.hit_time_limit);
  EXPECT_EQ(count, 10);  // events at t=10..100
  EXPECT_LE(sim.Now(), 100u);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator sim;
  sim.Schedule(10, []() {});
  EventId id = sim.Schedule(20, []() {});
  EXPECT_EQ(sim.PendingEvents(), 2u);
  sim.Cancel(id);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  sim.Schedule(50, []() {});
  sim.Step();
  SimTime fired_at = 0;
  sim.ScheduleAt(120, [&]() { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fired_at, 120u);
}

TEST(SimulatorTest, TraceRecordsWhenEnabled) {
  Simulator sim;
  sim.trace().Enable();
  sim.Schedule(10, [&]() { sim.Trace("hello"); });
  sim.Run();
  ASSERT_EQ(sim.trace().events().size(), 1u);
  EXPECT_EQ(sim.trace().events()[0].time, 10u);
  EXPECT_EQ(sim.trace().events()[0].detail, "hello");
}

TEST(SimulatorTest, TraceDisabledByDefault) {
  Simulator sim;
  sim.Trace("dropped");
  EXPECT_TRUE(sim.trace().events().empty());
}

TEST(SimulatorDeathTest, SchedulingIntoThePastAborts) {
  Simulator sim;
  sim.Schedule(100, []() {});
  sim.Step();
  EXPECT_DEATH({ sim.ScheduleAt(50, []() {}); }, "past");
}

}  // namespace
}  // namespace prany
