#include "sim/timer.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(OneShotTimerTest, FiresOnce) {
  Simulator sim;
  OneShotTimer timer(&sim);
  int fired = 0;
  timer.Arm(100, [&]() { ++fired; });
  EXPECT_TRUE(timer.armed());
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(OneShotTimerTest, RearmReplacesPending) {
  Simulator sim;
  OneShotTimer timer(&sim);
  std::vector<int> fired;
  timer.Arm(100, [&]() { fired.push_back(1); });
  timer.Arm(200, [&]() { fired.push_back(2); });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<int>{2}));
  EXPECT_EQ(sim.Now(), 200u);
}

TEST(OneShotTimerTest, CancelPreventsFiring) {
  Simulator sim;
  OneShotTimer timer(&sim);
  bool fired = false;
  timer.Arm(100, [&]() { fired = true; });
  timer.Cancel();
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(OneShotTimerTest, DestructionCancels) {
  Simulator sim;
  bool fired = false;
  {
    OneShotTimer timer(&sim);
    timer.Arm(100, [&]() { fired = true; });
  }
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(OneShotTimerTest, CanRearmFromOwnCallback) {
  Simulator sim;
  OneShotTimer timer(&sim);
  int fired = 0;
  std::function<void()> cb = [&]() {
    if (++fired < 3) timer.Arm(50, cb);
  };
  timer.Arm(50, cb);
  sim.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.Now(), 150u);
}

TEST(PeriodicTimerTest, FiresEveryPeriod) {
  Simulator sim;
  PeriodicTimer timer(&sim);
  std::vector<SimTime> times;
  timer.Start(100, [&]() {
    times.push_back(sim.Now());
    if (times.size() == 4) timer.Stop();
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{100, 200, 300, 400}));
}

TEST(PeriodicTimerTest, StopFromOutsideCallback) {
  Simulator sim;
  PeriodicTimer timer(&sim);
  int fired = 0;
  timer.Start(100, [&]() { ++fired; });
  sim.Schedule(250, [&]() { timer.Stop(); });
  sim.Run();
  EXPECT_EQ(fired, 2);  // t=100, t=200
}

TEST(PeriodicTimerTest, DestructionStops) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTimer timer(&sim);
    timer.Start(10, [&]() { ++fired; });
  }
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(PeriodicTimerTest, RestartResetsPhase) {
  Simulator sim;
  PeriodicTimer timer(&sim);
  std::vector<SimTime> times;
  timer.Start(100, [&]() { times.push_back(sim.Now()); });
  sim.Schedule(150, [&]() {
    timer.Start(100, [&]() {
      times.push_back(sim.Now());
      if (times.size() >= 3) timer.Stop();
    });
  });
  sim.Run();
  // First firing at 100, then restart at 150 -> firings at 250, 350.
  EXPECT_EQ(times, (std::vector<SimTime>{100, 250, 350}));
}

TEST(PeriodicTimerTest, RunningFlag) {
  Simulator sim;
  PeriodicTimer timer(&sim);
  EXPECT_FALSE(timer.running());
  timer.Start(10, []() {});
  EXPECT_TRUE(timer.running());
  timer.Stop();
  EXPECT_FALSE(timer.running());
}

}  // namespace
}  // namespace prany
