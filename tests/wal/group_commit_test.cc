// Group-commit window policy tests.
//
// The adaptive curve (ComputeAdaptiveWindow) is a pure function, so its
// edges — trigger depth, cold start, sparse arrivals, floor and ceiling —
// are pinned exactly. The one behavioral regression here guards the
// trigger's mid-linger semantics on a real FileStableLog: a force that
// raises the pending queue to queue_depth_trigger while the sync thread
// is lingering must cut the batch immediately, not after the window
// expires. That early-cut is what bounds worst-case commit latency when
// a burst lands inside a long window.

#include "wal/file_stable_log.h"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>

#include <gtest/gtest.h>

namespace prany {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_gc_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

GroupCommitConfig AdaptiveConfig() {
  GroupCommitConfig config;
  config.batch_window_us = 0;
  config.adaptive = true;
  config.queue_depth_trigger = 8;
  config.adaptive_min_window_us = 5;
  config.adaptive_max_window_us = 200;
  return config;
}

TEST(AdaptiveWindowTest, TriggerDepthCutsImmediately) {
  GroupCommitConfig config = AdaptiveConfig();
  // At or above the trigger the batch is already worth syncing.
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 8, 10.0, 100.0), 0u);
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 9, 10.0, 100.0), 0u);
}

TEST(AdaptiveWindowTest, ShallowQueueNeverLingers) {
  GroupCommitConfig config = AdaptiveConfig();
  // Below adaptive_min_depth the backlog hasn't proven the device is the
  // bottleneck; in a closed loop the arrivals a linger would wait for
  // stop once every in-flight transaction is queued, so a shallow queue
  // syncs immediately even when the rate model would suggest a window.
  ASSERT_EQ(config.adaptive_min_depth, 4u);
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 1, 10.0, 100.0), 0u);
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 3, 10.0, 100.0), 0u);
  // At the gate the same rates earn a window again.
  EXPECT_GT(FileStableLog::ComputeAdaptiveWindow(config, 4, 10.0, 100.0), 0u);
}

TEST(AdaptiveWindowTest, ColdStartNeverLingers) {
  GroupCommitConfig config = AdaptiveConfig();
  // No arrival or sync estimate yet: don't stall a commit on a guess.
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 4, 0.0, 100.0), 0u);
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 4, 10.0, 0.0), 0u);
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 4, 0.0, 0.0), 0u);
}

TEST(AdaptiveWindowTest, SparseArrivalsNeverLinger) {
  GroupCommitConfig config = AdaptiveConfig();
  // When the next force is further away than a whole sync, waiting for
  // it costs more latency than the sync it would coalesce.
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 4, 100.0, 100.0),
            0u);
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 4, 250.0, 100.0),
            0u);
}

TEST(AdaptiveWindowTest, WindowIsExpectedFillTime) {
  GroupCommitConfig config = AdaptiveConfig();
  // 10us between forces, 4 more forces until the trigger: linger 40us.
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 4, 10.0, 100.0),
            40u);
}

TEST(AdaptiveWindowTest, FloorApplies) {
  GroupCommitConfig config = AdaptiveConfig();
  // One force short of the trigger at a 1us arrival gap: the raw fill
  // time (1us) is below the floor — a window that short collects nobody.
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 7, 1.0, 100.0),
            config.adaptive_min_window_us);
}

TEST(AdaptiveWindowTest, CeilingIsMeasuredSyncDuration) {
  GroupCommitConfig config = AdaptiveConfig();
  // Fill time (70us * 4 = 280us) exceeds both caps; the tighter cap is
  // the measured fdatasync (150us < configured 200us) — lingering longer
  // than a sync takes can never pay for itself.
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 4, 70.0, 150.0),
            150u);
}

TEST(AdaptiveWindowTest, CeilingIsConfiguredMaximum) {
  GroupCommitConfig config = AdaptiveConfig();
  // Slow device (800us syncs): the configured ceiling keeps the window
  // bounded even though a sync-length linger would allow 800us.
  EXPECT_EQ(FileStableLog::ComputeAdaptiveWindow(config, 4, 70.0, 800.0),
            config.adaptive_max_window_us);
}

// Regression: a force that lands exactly at queue_depth_trigger while
// the sync thread is mid-linger must cut the batch immediately. With a
// deliberately huge fixed window (2s) the test only passes through the
// early-cut path; if that path regresses, the callbacks arrive after the
// window expires and the elapsed bound fails loudly.
TEST(GroupCommitTriggerTest, ForceAtTriggerDepthCutsLingerImmediately) {
  std::string dir = MakeTempDir();
  GroupCommitConfig config;
  config.batch_window_us = 2'000'000;  // 2s: never expires in this test.
  config.queue_depth_trigger = 4;
  FileStableLog log(dir + "/site.wal", "wal", nullptr, config);
  ASSERT_TRUE(log.Open().ok());

  std::mutex mu;
  std::condition_variable cv;
  int durable = 0;
  auto on_durable = [&]() {
    std::lock_guard<std::mutex> lk(mu);
    ++durable;
    cv.notify_all();
  };

  const auto start = std::chrono::steady_clock::now();
  for (TxnId txn = 1; txn <= 4; ++txn) {
    log.AppendPipelined(LogRecord::Prepared(txn, 0), on_durable);
  }
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(10),
                            [&]() { return durable == 4; }))
        << "only " << durable << " of 4 pipelined forces became durable";
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The fixed window is 2s; the trigger cut must beat it by an order of
  // magnitude even on a loaded CI box.
  EXPECT_LT(elapsed, std::chrono::milliseconds(500))
      << "trigger-depth force did not cut the linger";
  log.Close();
}

// The same cut must fire when the queue reaches the trigger *before* the
// sync thread ever starts lingering (the window-selection branch, not
// the mid-wait predicate).
TEST(GroupCommitTriggerTest, TriggerDeepQueueSkipsWindowSelection) {
  std::string dir = MakeTempDir();
  GroupCommitConfig config;
  config.batch_window_us = 2'000'000;
  config.queue_depth_trigger = 1;  // every force is already a full batch
  FileStableLog log(dir + "/site.wal", "wal", nullptr, config);
  ASSERT_TRUE(log.Open().ok());

  const auto start = std::chrono::steady_clock::now();
  log.Append(LogRecord::Prepared(1, 0), /*force=*/true);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));
  log.Close();
}

}  // namespace
}  // namespace prany
