#include "wal/log_record.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

std::vector<ParticipantInfo> SampleParticipants() {
  return {{1, ProtocolKind::kPrA}, {2, ProtocolKind::kPrC},
          {3, ProtocolKind::kPrN}};
}

TEST(LogRecordTest, FactoriesSetFields) {
  LogRecord init = LogRecord::Initiation(7, ProtocolKind::kPrAny,
                                         SampleParticipants());
  EXPECT_EQ(init.type, LogRecordType::kInitiation);
  EXPECT_EQ(init.txn, 7u);
  EXPECT_EQ(init.commit_protocol, ProtocolKind::kPrAny);
  EXPECT_EQ(init.participants.size(), 3u);

  LogRecord prep = LogRecord::Prepared(7, 0);
  EXPECT_EQ(prep.type, LogRecordType::kPrepared);
  EXPECT_EQ(prep.coordinator, 0u);

  EXPECT_EQ(LogRecord::Commit(7).type, LogRecordType::kCommit);
  EXPECT_EQ(LogRecord::Abort(7).type, LogRecordType::kAbort);
  EXPECT_EQ(LogRecord::End(7).type, LogRecordType::kEnd);
}

TEST(LogRecordTest, DecisionHelper) {
  EXPECT_EQ(LogRecord::Decision(1, Outcome::kCommit).type,
            LogRecordType::kCommit);
  EXPECT_EQ(LogRecord::Decision(1, Outcome::kAbort).type,
            LogRecordType::kAbort);
}

TEST(LogRecordTest, DecisionWithParticipants) {
  LogRecord rec = LogRecord::DecisionWithParticipants(
      5, Outcome::kCommit, SampleParticipants());
  EXPECT_EQ(rec.type, LogRecordType::kCommit);
  EXPECT_EQ(rec.participants.size(), 3u);
}

TEST(LogRecordTest, IsDecisionAndOutcome) {
  EXPECT_TRUE(LogRecord::Commit(1).IsDecision());
  EXPECT_TRUE(LogRecord::Abort(1).IsDecision());
  EXPECT_FALSE(LogRecord::End(1).IsDecision());
  EXPECT_FALSE(LogRecord::Prepared(1, 0).IsDecision());
  EXPECT_EQ(LogRecord::Commit(1).DecisionOutcome(), Outcome::kCommit);
  EXPECT_EQ(LogRecord::Abort(1).DecisionOutcome(), Outcome::kAbort);
}

TEST(LogRecordTest, RoundTripAllTypes) {
  std::vector<LogRecord> records = {
      LogRecord::Initiation(1, ProtocolKind::kPrC, SampleParticipants()),
      LogRecord::Initiation(2, ProtocolKind::kPrAny, {}),
      LogRecord::Prepared(3, 42),
      LogRecord::Commit(4),
      LogRecord::Abort(5),
      LogRecord::End(6),
      LogRecord::DecisionWithParticipants(7, Outcome::kAbort,
                                          SampleParticipants()),
  };
  for (const LogRecord& rec : records) {
    Result<LogRecord> decoded = LogRecord::Decode(rec.Encode());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, rec) << rec.ToString();
  }
}

TEST(LogRecordTest, RoundTripLargeParticipantList) {
  std::vector<ParticipantInfo> many;
  for (uint32_t i = 0; i < 1000; ++i) {
    many.push_back({i, static_cast<ProtocolKind>(i % 3)});
  }
  LogRecord rec = LogRecord::Initiation(9, ProtocolKind::kPrAny, many);
  Result<LogRecord> decoded = LogRecord::Decode(rec.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->participants.size(), 1000u);
  EXPECT_EQ(*decoded, rec);
}

TEST(LogRecordTest, DecodeRejectsTruncation) {
  std::vector<uint8_t> bytes =
      LogRecord::Initiation(1, ProtocolKind::kPrC, SampleParticipants())
          .Encode();
  for (size_t cut = 1; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_TRUE(LogRecord::Decode(truncated).status().IsCorruption())
        << "cut=" << cut;
  }
}

TEST(LogRecordTest, DecodeRejectsTrailingGarbage) {
  std::vector<uint8_t> bytes = LogRecord::Commit(1).Encode();
  bytes.push_back(0xff);
  EXPECT_TRUE(LogRecord::Decode(bytes).status().IsCorruption());
}

TEST(LogRecordTest, DecodeRejectsBadVersionAndType) {
  std::vector<uint8_t> bytes = LogRecord::Commit(1).Encode();
  std::vector<uint8_t> bad_version = bytes;
  bad_version[0] = 0;
  EXPECT_TRUE(LogRecord::Decode(bad_version).status().IsCorruption());
  std::vector<uint8_t> bad_type = bytes;
  bad_type[1] = 50;
  EXPECT_TRUE(LogRecord::Decode(bad_type).status().IsCorruption());
}

TEST(LogRecordTest, DecodeRejectsInvalidProtocol) {
  std::vector<uint8_t> bytes =
      LogRecord::Initiation(1, ProtocolKind::kPrC, {}).Encode();
  // commit_protocol byte follows version(1) + type(1) + txn(8).
  bytes[10] = 77;
  EXPECT_TRUE(LogRecord::Decode(bytes).status().IsCorruption());
}

TEST(LogRecordTest, ToStringShowsStructure) {
  LogRecord rec = LogRecord::Initiation(
      7, ProtocolKind::kPrAny, {{1, ProtocolKind::kPrA}});
  std::string s = rec.ToString();
  EXPECT_NE(s.find("INITIATION"), std::string::npos);
  EXPECT_NE(s.find("txn=7"), std::string::npos);
  EXPECT_NE(s.find("protocol=PrAny"), std::string::npos);
  EXPECT_NE(s.find("1:PrA"), std::string::npos);

  EXPECT_NE(LogRecord::Prepared(7, 3).ToString().find("coordinator=3"),
            std::string::npos);
}

TEST(LogRecordTest, TypeNames) {
  EXPECT_EQ(ToString(LogRecordType::kInitiation), "INITIATION");
  EXPECT_EQ(ToString(LogRecordType::kPrepared), "PREPARED");
  EXPECT_EQ(ToString(LogRecordType::kCommit), "COMMIT");
  EXPECT_EQ(ToString(LogRecordType::kAbort), "ABORT");
  EXPECT_EQ(ToString(LogRecordType::kEnd), "END");
}

TEST(LogRecordDeathTest, DecisionOutcomeOnNonDecisionAborts) {
  EXPECT_DEATH({ LogRecord::End(1).DecisionOutcome(); }, "PRANY_CHECK");
}

}  // namespace
}  // namespace prany
