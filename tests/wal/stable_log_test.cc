#include "wal/stable_log.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(StableLogTest, ForcedAppendIsImmediatelyStable) {
  StableLog log;
  log.Append(LogRecord::Commit(1), /*force=*/true);
  EXPECT_EQ(log.StableSize(), 1u);
  EXPECT_EQ(log.VolatileSize(), 0u);
}

TEST(StableLogTest, NonForcedAppendStaysVolatile) {
  StableLog log;
  log.Append(LogRecord::End(1), /*force=*/false);
  EXPECT_EQ(log.StableSize(), 0u);
  EXPECT_EQ(log.VolatileSize(), 1u);
}

TEST(StableLogTest, ForcedAppendFlushesEarlierBufferedRecords) {
  // A forced write is a group flush: everything queued before it becomes
  // durable too — the non-forced records are *lazy*, not skippable.
  StableLog log;
  log.Append(LogRecord::End(1), false);
  log.Append(LogRecord::Commit(2), true);
  EXPECT_EQ(log.StableSize(), 2u);
  EXPECT_EQ(log.stats().flushes, 1u);
}

TEST(StableLogTest, CrashLosesVolatileTailOnly) {
  StableLog log;
  log.Append(LogRecord::Prepared(1, 0), true);
  log.Append(LogRecord::Abort(1), false);  // the PrA-participant window
  log.Crash();
  std::vector<LogRecord> records = log.StableRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, LogRecordType::kPrepared);
}

TEST(StableLogTest, LsnsAreMonotoneAcrossCrash) {
  StableLog log;
  uint64_t a = log.Append(LogRecord::Commit(1), true);
  log.Append(LogRecord::End(1), false);
  log.Crash();
  uint64_t c = log.Append(LogRecord::Commit(2), true);
  EXPECT_LT(a, c);
  std::vector<LogRecord> records = log.StableRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_LT(records[0].lsn, records[1].lsn);
}

TEST(StableLogTest, StableRecordsDecodeRoundTrip) {
  StableLog log;
  LogRecord init = LogRecord::Initiation(
      5, ProtocolKind::kPrAny,
      {{1, ProtocolKind::kPrA}, {2, ProtocolKind::kPrC}});
  log.Append(init, true);
  std::vector<LogRecord> records = log.StableRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], init);
}

TEST(StableLogTest, HasRecordsFor) {
  StableLog log;
  log.Append(LogRecord::Commit(1), true);
  EXPECT_TRUE(log.HasRecordsFor(1));
  EXPECT_FALSE(log.HasRecordsFor(2));
}

TEST(StableLogTest, TruncateRemovesOnlyReleasedTxns) {
  StableLog log;
  log.Append(LogRecord::Commit(1), true);
  log.Append(LogRecord::End(1), true);
  log.Append(LogRecord::Commit(2), true);
  log.ReleaseTransaction(1);
  EXPECT_EQ(log.Truncate(), 2u);
  EXPECT_FALSE(log.HasRecordsFor(1));
  EXPECT_TRUE(log.HasRecordsFor(2));
}

TEST(StableLogTest, TruncateWithoutReleaseIsNoOp) {
  StableLog log;
  log.Append(LogRecord::Commit(1), true);
  EXPECT_EQ(log.Truncate(), 0u);
  EXPECT_EQ(log.StableSize(), 1u);
}

TEST(StableLogTest, ReleaseCoversLaterFlushedRecords) {
  // A non-forced record of an already-released txn that flushes later must
  // still be collectible.
  StableLog log;
  log.Append(LogRecord::End(1), false);
  log.ReleaseTransaction(1);
  log.Flush();
  EXPECT_TRUE(log.UnreleasedTxns().empty());
  EXPECT_EQ(log.Truncate(), 1u);
}

TEST(StableLogTest, UnreleasedTxns) {
  StableLog log;
  log.Append(LogRecord::Commit(1), true);
  log.Append(LogRecord::Commit(2), true);
  log.Append(LogRecord::Commit(3), true);
  log.ReleaseTransaction(2);
  std::set<TxnId> unreleased = log.UnreleasedTxns();
  EXPECT_EQ(unreleased, (std::set<TxnId>{1, 3}));
}

TEST(StableLogTest, StatsCountAppendsAndFlushes) {
  StableLog log;
  log.Append(LogRecord::Commit(1), true);
  log.Append(LogRecord::End(1), false);
  log.Append(LogRecord::Commit(2), true);
  const LogStats& stats = log.stats();
  EXPECT_EQ(stats.appends, 3u);
  EXPECT_EQ(stats.forced_appends, 2u);
  EXPECT_EQ(stats.flushes, 2u);
  EXPECT_GT(stats.bytes_flushed, 0u);
}

TEST(StableLogTest, ExplicitFlushDrainsBuffer) {
  StableLog log;
  log.Append(LogRecord::End(1), false);
  log.Append(LogRecord::End(2), false);
  log.Flush();
  EXPECT_EQ(log.StableSize(), 2u);
  EXPECT_EQ(log.stats().flushes, 1u);
  log.Flush();  // empty buffer: no extra I/O
  EXPECT_EQ(log.stats().flushes, 1u);
}

TEST(StableLogTest, MetricsIntegration) {
  MetricsRegistry metrics;
  StableLog log("wal", &metrics);
  log.Append(LogRecord::Commit(1), true);
  log.Append(LogRecord::End(1), false);
  EXPECT_EQ(metrics.Get("wal.appends"), 2);
  EXPECT_EQ(metrics.Get("wal.forced_appends"), 1);
  EXPECT_EQ(metrics.Get("wal.append.COMMIT"), 1);
  EXPECT_EQ(metrics.Get("wal.append.END"), 1);
  log.ReleaseTransaction(1);
  log.Truncate();
  EXPECT_EQ(metrics.Get("wal.truncated"), 1);
}

TEST(StableLogTest, CrashThenTruncateInteraction) {
  StableLog log;
  log.Append(LogRecord::Commit(1), true);
  log.Append(LogRecord::End(1), false);
  log.Crash();  // END lost
  log.ReleaseTransaction(1);
  EXPECT_EQ(log.Truncate(), 1u);  // only the stable COMMIT existed
  EXPECT_EQ(log.StableSize(), 0u);
}

}  // namespace
}  // namespace prany
