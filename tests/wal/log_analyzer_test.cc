#include "wal/log_analyzer.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(LogAnalyzerTest, EmptyLog) {
  EXPECT_TRUE(LogAnalyzer::Analyze({}).empty());
}

TEST(LogAnalyzerTest, GroupsByTransaction) {
  auto summaries = LogAnalyzer::Analyze({
      LogRecord::Commit(1),
      LogRecord::Prepared(2, 0),
      LogRecord::End(1),
  });
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_TRUE(summaries.at(1).has_end);
  EXPECT_EQ(summaries.at(1).decision, Outcome::kCommit);
  EXPECT_TRUE(summaries.at(2).has_prepared);
}

TEST(LogAnalyzerTest, InitiationCarriesParticipantsAndMode) {
  auto summaries = LogAnalyzer::Analyze({LogRecord::Initiation(
      5, ProtocolKind::kPrAny,
      {{1, ProtocolKind::kPrA}, {2, ProtocolKind::kPrC}})});
  const TxnLogSummary& s = summaries.at(5);
  EXPECT_TRUE(s.has_initiation);
  EXPECT_EQ(s.commit_protocol, ProtocolKind::kPrAny);
  ASSERT_EQ(s.participants.size(), 2u);
  EXPECT_EQ(s.participants[1].protocol, ProtocolKind::kPrC);
}

TEST(LogAnalyzerTest, CoordinatorDecisionRecordSuppliesParticipants) {
  // PrN/PrA-style decision record: no initiation, participants embedded.
  auto summaries = LogAnalyzer::Analyze({LogRecord::DecisionWithParticipants(
      7, Outcome::kCommit, {{3, ProtocolKind::kPrN}})});
  const TxnLogSummary& s = summaries.at(7);
  EXPECT_FALSE(s.has_initiation);
  EXPECT_EQ(s.decision, Outcome::kCommit);
  ASSERT_EQ(s.participants.size(), 1u);
}

TEST(LogAnalyzerTest, ParticipantSideDecisionLeavesParticipantsEmpty) {
  auto summaries = LogAnalyzer::Analyze({
      LogRecord::Prepared(7, 0),
      LogRecord::Commit(7),
  });
  const TxnLogSummary& s = summaries.at(7);
  EXPECT_TRUE(s.has_prepared);
  EXPECT_EQ(s.coordinator, 0u);
  EXPECT_EQ(s.decision, Outcome::kCommit);
  EXPECT_TRUE(s.participants.empty());
  EXPECT_FALSE(s.InDoubt());
}

TEST(LogAnalyzerTest, InDoubtDetection) {
  auto summaries = LogAnalyzer::Analyze({LogRecord::Prepared(9, 4)});
  EXPECT_TRUE(summaries.at(9).InDoubt());
  EXPECT_EQ(summaries.at(9).coordinator, 4u);
}

TEST(LogAnalyzerTest, AbortDecision) {
  auto summaries = LogAnalyzer::Analyze({
      LogRecord::Prepared(3, 0),
      LogRecord::Abort(3),
  });
  EXPECT_EQ(summaries.at(3).decision, Outcome::kAbort);
}

TEST(LogAnalyzerTest, FullPrAnyCommitSequence) {
  auto summaries = LogAnalyzer::Analyze({
      LogRecord::Initiation(1, ProtocolKind::kPrAny,
                            {{1, ProtocolKind::kPrA}}),
      LogRecord::Commit(1),
      LogRecord::End(1),
  });
  const TxnLogSummary& s = summaries.at(1);
  EXPECT_TRUE(s.has_initiation);
  EXPECT_EQ(s.decision, Outcome::kCommit);
  EXPECT_TRUE(s.has_end);
}

TEST(LogAnalyzerTest, LaterRecordsOverrideDecision) {
  // Not expected in real runs, but analysis must be last-writer-wins.
  auto summaries = LogAnalyzer::Analyze({
      LogRecord::Abort(2),
      LogRecord::Commit(2),
  });
  EXPECT_EQ(summaries.at(2).decision, Outcome::kCommit);
}

}  // namespace
}  // namespace prany
