#include "txn/pcp_table.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(PcpTableTest, RegisterAndLookup) {
  PcpTable pcp;
  ASSERT_TRUE(pcp.RegisterSite(1, ProtocolKind::kPrA).ok());
  ASSERT_TRUE(pcp.RegisterSite(2, ProtocolKind::kPrC).ok());
  EXPECT_EQ(pcp.ProtocolFor(1), ProtocolKind::kPrA);
  EXPECT_EQ(pcp.ProtocolFor(2), ProtocolKind::kPrC);
  EXPECT_FALSE(pcp.ProtocolFor(3).has_value());
  EXPECT_EQ(pcp.Size(), 2u);
}

TEST(PcpTableTest, ReRegistrationUpdatesProtocol) {
  // A site upgrading its DBMS (the PCP "is updated when a new site joins
  // or leaves").
  PcpTable pcp;
  ASSERT_TRUE(pcp.RegisterSite(1, ProtocolKind::kPrN).ok());
  ASSERT_TRUE(pcp.RegisterSite(1, ProtocolKind::kPrC).ok());
  EXPECT_EQ(pcp.ProtocolFor(1), ProtocolKind::kPrC);
  EXPECT_EQ(pcp.Size(), 1u);
}

TEST(PcpTableTest, RejectsInvalidSiteAndProtocol) {
  PcpTable pcp;
  EXPECT_TRUE(pcp.RegisterSite(kInvalidSite, ProtocolKind::kPrA)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      pcp.RegisterSite(1, ProtocolKind::kPrAny).IsInvalidArgument());
  EXPECT_TRUE(
      pcp.RegisterSite(1, ProtocolKind::kU2PC).IsInvalidArgument());
}

TEST(PcpTableTest, Unregister) {
  PcpTable pcp;
  ASSERT_TRUE(pcp.RegisterSite(1, ProtocolKind::kPrA).ok());
  EXPECT_TRUE(pcp.UnregisterSite(1).ok());
  EXPECT_FALSE(pcp.ProtocolFor(1).has_value());
  EXPECT_TRUE(pcp.UnregisterSite(1).IsNotFound());
}

TEST(PcpTableTest, AllSites) {
  PcpTable pcp;
  ASSERT_TRUE(pcp.RegisterSite(2, ProtocolKind::kPrC).ok());
  ASSERT_TRUE(pcp.RegisterSite(1, ProtocolKind::kPrA).ok());
  std::vector<ParticipantInfo> all = pcp.AllSites();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].site, 1u);  // sorted by site id
  EXPECT_EQ(all[1].site, 2u);
}

TEST(AppTableTest, ActivateRequiresPcpMembership) {
  PcpTable pcp;
  AppTable app(&pcp);
  EXPECT_TRUE(app.Activate(1).IsNotFound());
  ASSERT_TRUE(pcp.RegisterSite(1, ProtocolKind::kPrA).ok());
  EXPECT_TRUE(app.Activate(1).ok());
  EXPECT_TRUE(app.IsActive(1));
}

TEST(AppTableTest, RefcountedActivation) {
  PcpTable pcp;
  ASSERT_TRUE(pcp.RegisterSite(1, ProtocolKind::kPrA).ok());
  AppTable app(&pcp);
  ASSERT_TRUE(app.Activate(1).ok());
  ASSERT_TRUE(app.Activate(1).ok());
  ASSERT_TRUE(app.Deactivate(1).ok());
  EXPECT_TRUE(app.IsActive(1));  // one activation still live
  ASSERT_TRUE(app.Deactivate(1).ok());
  EXPECT_FALSE(app.IsActive(1));
  EXPECT_TRUE(app.Deactivate(1).IsNotFound());
}

TEST(AppTableTest, ProtocolForFallsBackToPcp) {
  PcpTable pcp;
  ASSERT_TRUE(pcp.RegisterSite(1, ProtocolKind::kPrC).ok());
  AppTable app(&pcp);
  EXPECT_EQ(app.ProtocolFor(1), ProtocolKind::kPrC);  // miss: not active
  EXPECT_EQ(app.CacheMisses(), 1u);
  ASSERT_TRUE(app.Activate(1).ok());
  EXPECT_EQ(app.ProtocolFor(1), ProtocolKind::kPrC);  // hit
  EXPECT_EQ(app.CacheMisses(), 1u);
}

TEST(AppTableTest, ClearIsVolatileLoss) {
  PcpTable pcp;
  ASSERT_TRUE(pcp.RegisterSite(1, ProtocolKind::kPrA).ok());
  AppTable app(&pcp);
  ASSERT_TRUE(app.Activate(1).ok());
  app.Clear();
  EXPECT_FALSE(app.IsActive(1));
  EXPECT_EQ(app.ActiveSites(), 0u);
  // The stable PCP still answers.
  EXPECT_EQ(app.ProtocolFor(1), ProtocolKind::kPrA);
}

TEST(AppTableTest, ActiveSitesCount) {
  PcpTable pcp;
  ASSERT_TRUE(pcp.RegisterSite(1, ProtocolKind::kPrA).ok());
  ASSERT_TRUE(pcp.RegisterSite(2, ProtocolKind::kPrC).ok());
  AppTable app(&pcp);
  ASSERT_TRUE(app.Activate(1).ok());
  ASSERT_TRUE(app.Activate(2).ok());
  ASSERT_TRUE(app.Activate(2).ok());
  EXPECT_EQ(app.ActiveSites(), 2u);
}

}  // namespace
}  // namespace prany
