#include "txn/protocol_table.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

CoordTxnState MakeState(TxnId txn) {
  CoordTxnState st;
  st.txn = txn;
  st.mode = ProtocolKind::kPrAny;
  st.participants = {{1, ProtocolKind::kPrA}, {2, ProtocolKind::kPrC}};
  return st;
}

TEST(ProtocolTableTest, InsertAndFind) {
  ProtocolTable table;
  table.Insert(MakeState(1));
  ASSERT_NE(table.Find(1), nullptr);
  EXPECT_EQ(table.Find(1)->mode, ProtocolKind::kPrAny);
  EXPECT_EQ(table.Find(2), nullptr);
}

TEST(ProtocolTableTest, EraseForgets) {
  ProtocolTable table;
  table.Insert(MakeState(1));
  EXPECT_TRUE(table.Erase(1));
  EXPECT_EQ(table.Find(1), nullptr);
  EXPECT_FALSE(table.Erase(1));
}

TEST(ProtocolTableTest, SizeAndMaxSize) {
  ProtocolTable table;
  table.Insert(MakeState(1));
  table.Insert(MakeState(2));
  table.Insert(MakeState(3));
  EXPECT_EQ(table.Size(), 3u);
  table.Erase(2);
  EXPECT_EQ(table.Size(), 2u);
  EXPECT_EQ(table.MaxSize(), 3u);  // high-water mark persists
}

TEST(ProtocolTableTest, ClearWipesEntriesButKeepsHighWaterMark) {
  ProtocolTable table;
  table.Insert(MakeState(1));
  table.Insert(MakeState(2));
  table.Clear();
  EXPECT_EQ(table.Size(), 0u);
  EXPECT_EQ(table.MaxSize(), 2u);
}

TEST(ProtocolTableTest, TxnIdsSorted) {
  ProtocolTable table;
  table.Insert(MakeState(5));
  table.Insert(MakeState(2));
  table.Insert(MakeState(9));
  EXPECT_EQ(table.TxnIds(), (std::vector<TxnId>{2, 5, 9}));
}

TEST(ProtocolTableTest, InsertReturnsLiveReference) {
  ProtocolTable table;
  CoordTxnState& ref = table.Insert(MakeState(1));
  ref.yes_votes.insert(1);
  EXPECT_EQ(table.Find(1)->yes_votes.size(), 1u);
}

TEST(CoordTxnStateTest, ProtocolOfAndHasParticipant) {
  CoordTxnState st = MakeState(1);
  EXPECT_EQ(st.ProtocolOf(1), ProtocolKind::kPrA);
  EXPECT_EQ(st.ProtocolOf(2), ProtocolKind::kPrC);
  EXPECT_TRUE(st.HasParticipant(2));
  EXPECT_FALSE(st.HasParticipant(7));
}

TEST(ProtocolTableDeathTest, DuplicateInsertAborts) {
  ProtocolTable table;
  table.Insert(MakeState(1));
  EXPECT_DEATH({ table.Insert(MakeState(1)); }, "duplicate");
}

TEST(CoordTxnStateDeathTest, ProtocolOfNonParticipantAborts) {
  CoordTxnState st = MakeState(1);
  EXPECT_DEATH({ st.ProtocolOf(99); }, "not a participant");
}

}  // namespace
}  // namespace prany
