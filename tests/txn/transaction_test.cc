#include "txn/transaction.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

Transaction MakeValid() {
  Transaction txn;
  txn.id = 1;
  txn.coordinator = 0;
  txn.participants = {{1, ProtocolKind::kPrA}, {2, ProtocolKind::kPrC}};
  return txn;
}

TEST(TransactionTest, ValidTransactionValidates) {
  EXPECT_TRUE(MakeValid().Validate().ok());
}

TEST(TransactionTest, ParticipantSites) {
  EXPECT_EQ(MakeValid().ParticipantSites(), (std::vector<SiteId>{1, 2}));
}

TEST(TransactionTest, ProtocolOf) {
  Transaction txn = MakeValid();
  EXPECT_EQ(txn.ProtocolOf(1), ProtocolKind::kPrA);
  EXPECT_EQ(txn.ProtocolOf(2), ProtocolKind::kPrC);
}

TEST(TransactionTest, HasParticipant) {
  Transaction txn = MakeValid();
  EXPECT_TRUE(txn.HasParticipant(1));
  EXPECT_FALSE(txn.HasParticipant(9));
}

TEST(TransactionTest, AllVotesYesByDefault) {
  EXPECT_TRUE(MakeValid().AllVotesYes());
}

TEST(TransactionTest, NoVoteDetected) {
  Transaction txn = MakeValid();
  txn.planned_votes[2] = Vote::kNo;
  EXPECT_FALSE(txn.AllVotesYes());
  txn.planned_votes[2] = Vote::kYes;
  EXPECT_TRUE(txn.AllVotesYes());
}

TEST(TransactionTest, ValidationRejectsMissingId) {
  Transaction txn = MakeValid();
  txn.id = kInvalidTxn;
  EXPECT_TRUE(txn.Validate().IsInvalidArgument());
}

TEST(TransactionTest, ValidationRejectsMissingCoordinator) {
  Transaction txn = MakeValid();
  txn.coordinator = kInvalidSite;
  EXPECT_TRUE(txn.Validate().IsInvalidArgument());
}

TEST(TransactionTest, ValidationRejectsEmptyParticipants) {
  Transaction txn = MakeValid();
  txn.participants.clear();
  EXPECT_TRUE(txn.Validate().IsInvalidArgument());
}

TEST(TransactionTest, ValidationRejectsDuplicateParticipants) {
  Transaction txn = MakeValid();
  txn.participants.push_back({1, ProtocolKind::kPrN});
  EXPECT_TRUE(txn.Validate().IsInvalidArgument());
}

TEST(TransactionTest, ValidationRejectsNonBaseProtocol) {
  Transaction txn = MakeValid();
  txn.participants[0].protocol = ProtocolKind::kPrAny;
  EXPECT_TRUE(txn.Validate().IsInvalidArgument());
}

TEST(TransactionTest, ValidationAcceptsCoordinatorAsParticipant) {
  // Dual-role transactions are legal: the coordinator site also runs a
  // participant engine for the same transaction (shared stable log).
  Transaction txn = MakeValid();
  txn.participants.push_back({0, ProtocolKind::kPrN});
  EXPECT_TRUE(txn.Validate().ok());
}

TEST(TransactionTest, ValidationRejectsVoteForNonParticipant) {
  Transaction txn = MakeValid();
  txn.planned_votes[42] = Vote::kNo;
  EXPECT_TRUE(txn.Validate().IsInvalidArgument());
}

TEST(TransactionTest, ToStringShowsParticipants) {
  std::string s = MakeValid().ToString();
  EXPECT_NE(s.find("txn 1"), std::string::npos);
  EXPECT_NE(s.find("coord=0"), std::string::npos);
  EXPECT_NE(s.find("1:PrA"), std::string::npos);
  EXPECT_NE(s.find("2:PrC"), std::string::npos);
}

TEST(TxnIdGeneratorTest, MonotoneFromOne) {
  TxnIdGenerator gen;
  EXPECT_EQ(gen.Next(), 1u);
  EXPECT_EQ(gen.Next(), 2u);
  EXPECT_EQ(gen.Next(), 3u);
}

TEST(TransactionDeathTest, ProtocolOfUnknownSiteAborts) {
  EXPECT_DEATH({ MakeValid().ProtocolOf(9); }, "not a participant");
}

}  // namespace
}  // namespace prany
